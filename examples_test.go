package fdlsp_test

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestExamplesRun executes every example binary end-to-end and checks for
// the markers that prove the scenario completed (schedules valid, traffic
// delivered, repairs applied). Skipped under -short: each example builds
// and runs a full simulation.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are slow; run without -short")
	}
	cases := []struct {
		dir     string
		markers []string
	}{
		{"quickstart", []string{"radio check: every receiver hears exactly its transmitter", "distMIS:"}},
		{"datacollection", []string{"convergecast:", "commands:", "sustained:"}},
		{"asyncdfs", []string{"still valid", "policy max-degree"}},
		{"comparison", []string{"d-mgc", "exact optimum"}},
		{"churn", []string{"schedule still valid", "sensor 0 failed: schedule valid=true"}},
		{"weighted", []string{"weighted schedule:", "busiest link"}},
		{"service", []string{"service scheduled", "service round trip complete"}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.dir, func(t *testing.T) {
			t.Parallel()
			start := time.Now()
			cmd := exec.Command("go", "run", "./examples/"+tc.dir)
			cmd.Dir = "."
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example failed after %v: %v\n%s", time.Since(start), err, out)
			}
			for _, m := range tc.markers {
				if !strings.Contains(string(out), m) {
					t.Errorf("output missing %q:\n%s", m, out)
				}
			}
		})
	}
}
