package fdlsp

import (
	"fdlsp/internal/core"
	"fdlsp/internal/obs"
)

// Observability types. A MetricsRegistry collects counters, gauges and
// histograms; hand one to DistMISOptions.Metrics / DFSOptions.Metrics and
// the run publishes its per-phase cost, slot count, crash/rejoin accounting
// and the engine/transport counters into it. Registry renderings are
// byte-deterministic for a fixed state (families and series sorted), so two
// runs of the same seed produce identical snapshots.
type (
	// MetricsRegistry is a dependency-free metrics registry with a
	// Prometheus text exposition (Text, WriteText, Handler) and a
	// deterministic structured Snapshot.
	MetricsRegistry = obs.Registry
	// MetricsFamily is one named family in a registry snapshot.
	MetricsFamily = obs.FamilySnapshot
	// MetricsSeries is one labelled series of a family.
	MetricsSeries = obs.SeriesSnapshot
	// MetricsLabel is a key/value label pair of a series.
	MetricsLabel = obs.Label
)

// NewMetricsRegistry returns an empty registry.
var NewMetricsRegistry = obs.NewRegistry

// RegisterMetrics pre-creates every metric family the scheduling stack can
// emit (core, sim, transport) in reg without recording samples, so a scrape
// exposes the full schema before the first run. Idempotent.
func RegisterMetrics(reg *MetricsRegistry) { core.RegisterMetrics(reg) }
