// Service: run the scheduling library as a network service and drive it as
// a client would — the deployment story for a base station that receives
// topology reports from the field and pushes back verified TDMA frames.
// The example starts fdlspd's handler in-process, submits a network over
// HTTP, verifies the returned frame through the verification endpoint, and
// fetches bounds and an SVG rendering.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"

	"fdlsp"
	"fdlsp/internal/httpapi"
)

func main() {
	// In production: `fdlspd -addr :8080`. Here the same mux runs on an
	// ephemeral test server so the example is self-contained.
	srv := httptest.NewServer(httpapi.NewMux())
	defer srv.Close()
	fmt.Println("scheduling service at", srv.URL)

	// A field reports its topology.
	rng := rand.New(rand.NewSource(77))
	g, _ := fdlsp.RandomUDG(60, 8, 1.5, rng)
	fmt.Printf("reporting topology: %d sensors, %d links\n", g.N(), g.M())

	// Ask the service for a DFS schedule.
	var schedResp struct {
		Algorithm string          `json:"algorithm"`
		Slots     int             `json:"slots"`
		Rounds    int64           `json:"rounds"`
		Valid     bool            `json:"valid"`
		Lower     int             `json:"lower_bound"`
		Upper     int             `json:"upper_bound"`
		Schedule  *fdlsp.Schedule `json:"schedule"`
	}
	postJSON(srv.URL+"/v1/schedule", map[string]any{
		"graph":     g,
		"algorithm": "dfs",
		"seed":      7,
	}, &schedResp)
	fmt.Printf("service scheduled %d slots with %s (valid=%v, bounds [%d,%d])\n",
		schedResp.Slots, schedResp.Algorithm, schedResp.Valid, schedResp.Lower, schedResp.Upper)

	// Independently re-verify the frame through the service.
	var verifyResp struct {
		Valid      bool     `json:"valid"`
		Violations []string `json:"violations"`
	}
	postJSON(srv.URL+"/v1/verify", map[string]any{
		"graph":    g,
		"schedule": schedResp.Schedule,
	}, &verifyResp)
	fmt.Printf("verification endpoint: valid=%v (%d violations)\n", verifyResp.Valid, len(verifyResp.Violations))

	// Bounds endpoint.
	var boundsResp struct {
		Lower int `json:"lower_bound"`
		Upper int `json:"upper_bound"`
		Nodes int `json:"nodes"`
		Edges int `json:"edges"`
	}
	postJSON(srv.URL+"/v1/bounds", map[string]any{"graph": g}, &boundsResp)
	fmt.Printf("bounds endpoint: %d ≤ optimum ≤ %d for n=%d m=%d\n",
		boundsResp.Lower, boundsResp.Upper, boundsResp.Nodes, boundsResp.Edges)

	if !schedResp.Valid || !verifyResp.Valid {
		log.Fatal("service returned an invalid schedule")
	}
	fmt.Println("service round trip complete")
}

func postJSON(url string, body, out any) {
	data, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("service returned status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
