// Quickstart: generate a sensor network, schedule it with the paper's
// DistMIS algorithm, verify the schedule and inspect the TDMA frame.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fdlsp"
)

func main() {
	// A 100-sensor field: 15x15 plan, transmission radius 1.5.
	rng := rand.New(rand.NewSource(42))
	g, _ := fdlsp.RandomUDG(100, 15, 1.5, rng)
	fmt.Printf("network: %d sensors, %d links, max degree %d\n", g.N(), g.M(), g.MaxDegree())
	fmt.Printf("theory:  at least %d and at most %d slots\n", fdlsp.LowerBound(g), fdlsp.UpperBound(g))

	// Run the synchronous MIS-based distributed algorithm (Algorithm 1).
	res, err := fdlsp.DistMIS(g, fdlsp.DistMISOptions{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distMIS: %d slots in %d communication rounds (%d messages)\n",
		res.Slots, res.Stats.Rounds, res.Stats.Messages)

	// Every schedule is checkable: no shared endpoints, no hidden terminals.
	if !fdlsp.Valid(g, res.Assignment) {
		log.Fatal("schedule failed verification")
	}

	// Turn the arc coloring into an operational TDMA frame.
	frame, err := fdlsp.BuildSchedule(g, res.Assignment)
	if err != nil {
		log.Fatal(err)
	}
	st := frame.Stats()
	fmt.Printf("frame:   length %d, %d scheduled links, avg %.1f concurrent transmissions/slot\n",
		st.FrameLength, st.Links, st.AvgConcurrency)

	// Radio-level sanity: simulate every slot; each receiver must hear
	// exactly its intended transmitter.
	if collisions := frame.RadioCheck(g); len(collisions) > 0 {
		log.Fatalf("radio check failed: %v", collisions[0])
	}
	fmt.Println("radio check: every receiver hears exactly its transmitter in every slot")

	// Example: when does sensor 0 talk and listen?
	fmt.Printf("sensor 0 transmit slots: %v\n", frame.NodeTX[0])
	fmt.Printf("sensor 0 receive slots:  %v\n", frame.NodeRX[0])
}
