// Asynchronous DFS: run the paper's token-passing algorithm (Algorithm 2)
// on a general-graph topology, under adversarial message delays, and
// compare the token-passing policies. The schedule must stay valid no
// matter how the network reorders or delays messages, and the round count
// stays O(n).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fdlsp"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	g := fdlsp.ConnectedGNM(150, 600, rng)
	fmt.Printf("network: %d nodes, %d links, max degree %d\n", g.N(), g.M(), g.MaxDegree())
	fmt.Printf("bounds:  [%d, %d] slots\n", fdlsp.LowerBound(g), fdlsp.UpperBound(g))

	// Policy comparison: which unvisited neighbor gets the token next.
	for _, pol := range []fdlsp.ChildPolicy{fdlsp.ChildMaxDegree, fdlsp.ChildMinID, fdlsp.ChildRandom} {
		res, err := fdlsp.DFS(g, fdlsp.DFSOptions{Seed: 11, Policy: pol})
		if err != nil {
			log.Fatal(err)
		}
		if !fdlsp.Valid(g, res.Assignment) {
			log.Fatalf("policy %v produced an invalid schedule", pol)
		}
		fmt.Printf("policy %-11v: %3d slots, %6d async time units, %7d messages\n",
			pol, res.Slots, res.Stats.Rounds, res.Stats.Messages)
	}

	// Failure injection: every message suffers a random extra delay of up
	// to 8 time units. Validity is unconditional; only the clock stretches.
	delay := func(from, to int, rng *rand.Rand) int64 { return rng.Int63n(9) }
	res, err := fdlsp.DFS(g, fdlsp.DFSOptions{Seed: 11, Delay: delay})
	if err != nil {
		log.Fatal(err)
	}
	if !fdlsp.Valid(g, res.Assignment) {
		log.Fatal("delayed run produced an invalid schedule")
	}
	fmt.Printf("with adversarial delays: %d slots, %d time units — still valid\n",
		res.Slots, res.Stats.Rounds)

	// O(n) behavior: time units scale with nodes, not edges.
	for _, n := range []int{50, 100, 200, 400} {
		gg := fdlsp.ConnectedGNM(n, 4*n, rand.New(rand.NewSource(3)))
		r, err := fdlsp.DFS(gg, fdlsp.DFSOptions{Seed: 3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("n=%3d: %5d async time units (%.1f per node)\n",
			n, r.Stats.Rounds, float64(r.Stats.Rounds)/float64(n))
	}
}
