// Churn: a living sensor network. Nodes move, fail and join; links appear
// and disappear. The schedule is repaired locally after every event (the
// paper's future-work direction) instead of being rebuilt, and the example
// reports how much cheaper repair is. It also demonstrates the extension
// layers: the quasi-UDG network model, the SINR physical check, and the
// broadcast-scheduling comparison from the paper's introduction.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fdlsp"
)

func main() {
	rng := rand.New(rand.NewSource(33))

	// A quasi unit disk network: links certain within 0.7·1.5, impossible
	// beyond 1.5, coin-flipped in between — rougher than a UDG, closer to
	// real radios.
	g, pts := fdlsp.RandomQUDG(100, 12, 1.5, 0.7, 0.5, rng)
	fmt.Printf("QUDG field: %d sensors, %d links, Δ=%d\n", g.N(), g.M(), g.MaxDegree())
	fb := fdlsp.GrowthBound(g, 3)
	fmt.Printf("empirical growth bound f(1..3) = %v (polynomially bounded → GBG assumption holds)\n", fb[1:])

	// Initial schedule.
	res, err := fdlsp.DistMIS(g, fdlsp.DistMISOptions{Seed: 33})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial schedule: %d slots\n", res.Slots)

	// Physical-model check of the graph-based schedule.
	frame, err := fdlsp.BuildSchedule(g, res.Assignment)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SINR-feasible receptions: %.1f%% (graph model vs physical model gap)\n",
		100*frame.SINRFeasibleFraction(pts, fdlsp.DefaultSINRParams()))

	// Broadcast-scheduling comparison (paper, Section 1).
	bc := fdlsp.BroadcastGreedy(g)
	fmt.Printf("broadcast schedule: %d slots; serving every directed link once needs %d broadcast slots vs %d link slots\n",
		fdlsp.BroadcastSlots(bc), fdlsp.BroadcastLinkServiceSlots(g, bc), res.Slots)

	// Now the network lives: 300 random churn events with local repair.
	net, err := fdlsp.NewDynamic(g, res.Assignment)
	if err != nil {
		log.Fatal(err)
	}
	for step := 0; step < 300; step++ {
		u, v := rng.Intn(g.N()), rng.Intn(g.N())
		if u == v {
			continue
		}
		kind := fdlsp.EventLinkUp
		if net.Graph().HasEdge(u, v) {
			kind = fdlsp.EventLinkDown
		}
		if err := net.Apply(fdlsp.TopologyEvent{Kind: kind, U: u, V: v}); err != nil {
			log.Fatal(err)
		}
		if !fdlsp.Valid(net.Graph(), net.Assignment()) {
			log.Fatalf("schedule invalid after event %d", step)
		}
	}
	st := net.Stats()
	fmt.Printf("\nafter %d churn events:\n", st.Events)
	fmt.Printf("  schedule still valid, frame drifted to %d slots\n", net.Slots())
	fmt.Printf("  repair cost: %d new arcs, %d recolored, %.1f nodes touched/event\n",
		st.NewArcs, st.RecoloredArcs, float64(st.TouchedNodes)/float64(st.Events))
	rebuild := net.Rebuild()
	fmt.Printf("  full rebuild would recolor %d arcs per event (frame %d)\n",
		2*net.Graph().M(), rebuild.NumColors())
	perEvent := float64(st.NewArcs+st.RecoloredArcs) / float64(st.Events)
	fmt.Printf("  incremental repair touches %.2f arcs/event — %.0fx cheaper\n",
		perEvent, float64(2*net.Graph().M())/perEvent)

	// A sensor dies; the schedule survives.
	if err := net.Apply(fdlsp.TopologyEvent{Kind: fdlsp.EventNodeFail, U: 0}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsensor 0 failed: schedule valid=%v, %d slots\n",
		fdlsp.Valid(net.Graph(), net.Assignment()), net.Slots())
}
