// Data collection: the workload the paper's introduction motivates. A
// sensor field periodically reports readings to a base station over a
// multi-hop network. We schedule the links with DistMIS, then run the
// packet-level traffic simulator over the TDMA frame: a convergecast that
// drains every reading to the base station, plus the reverse command
// traffic that full duplex scheduling guarantees a slot for.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fdlsp"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	var g *fdlsp.Graph
	for {
		g, _ = fdlsp.RandomUDG(80, 10, 1.6, rng)
		if g.Connected() {
			break
		}
	}
	fmt.Printf("field: %d sensors, %d links, max degree %d\n", g.N(), g.M(), g.MaxDegree())

	res, err := fdlsp.DistMIS(g, fdlsp.DistMISOptions{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	frame, err := fdlsp.BuildSchedule(g, res.Assignment)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("schedule: %d slots (lower bound %d), built in %d distributed rounds\n",
		res.Slots, fdlsp.LowerBound(g), res.Stats.Rounds)

	// Upstream: every sensor reports one reading to the base station
	// (node 0) over shortest paths, forwarded exactly when the frame
	// schedules each next-hop link.
	const sink = 0
	up, err := fdlsp.SimulateTraffic(g, frame, fdlsp.ConvergecastFlows(g, sink), 10_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("convergecast: %d/%d readings delivered in %d frames (%d slots); avg latency %.1f slots, max %d; peak queue %d\n",
		up.Delivered, up.TotalPackets, up.Frames, up.SlotsElapsed, up.AvgLatency, up.MaxLatency, up.MaxQueue)

	// Downstream: full duplex means the reverse direction of every link is
	// also scheduled, so the base station can command any sensor over the
	// same frame. Broadcast a command to the 10 farthest sensors.
	dist := g.BFSFrom(sink)
	var far []int
	for v := range dist {
		far = append(far, v)
	}
	// Pick the 10 sensors with the largest hop distance.
	for i := 0; i < len(far); i++ {
		for j := i + 1; j < len(far); j++ {
			if dist[far[j]] > dist[far[i]] {
				far[i], far[j] = far[j], far[i]
			}
		}
	}
	var down []fdlsp.Flow
	for _, v := range far[:10] {
		if v != sink {
			down = append(down, fdlsp.Flow{Src: sink, Dst: v, Packets: 1})
		}
	}
	dn, err := fdlsp.SimulateTraffic(g, frame, down, 10_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("commands:     %d/%d delivered downstream in %d frames; avg latency %.1f slots\n",
		dn.Delivered, dn.TotalPackets, dn.Frames, dn.AvgLatency)

	// Periodic reporting: 5 readings per sensor to gauge sustained load.
	var periodic []fdlsp.Flow
	for v := 1; v < g.N(); v++ {
		periodic = append(periodic, fdlsp.Flow{Src: v, Dst: sink, Packets: 5})
	}
	sus, err := fdlsp.SimulateTraffic(g, frame, periodic, 100_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sustained:    %d readings drained in %d frames (%.1f readings/frame at the sink)\n",
		sus.Delivered, sus.Frames, float64(sus.Delivered)/float64(sus.Frames))
}
