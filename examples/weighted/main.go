// Weighted: demand-aware TDMA scheduling. Real sensor fields carry uneven
// traffic — links near the base station forward everyone's readings, so
// they need more slots per frame than leaf links. This example sizes each
// upstream link's demand by its convergecast subtree, schedules the field
// with the weighted token-passing algorithm, and shows the resulting frame
// drains a full report in a single frame (versus many frames for the
// unit-demand schedule).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fdlsp"
)

func main() {
	rng := rand.New(rand.NewSource(21))
	var g *fdlsp.Graph
	for {
		g, _ = fdlsp.RandomUDG(70, 9, 1.6, rng)
		if g.Connected() {
			break
		}
	}
	const sink = 0
	fmt.Printf("field: %d sensors, %d links, Δ=%d, base station %d\n", g.N(), g.M(), g.MaxDegree(), sink)

	// Convergecast routing tree toward the sink; a link's upstream demand
	// is the number of sensors whose reports cross it each frame.
	next := fdlsp.NextHops(g, sink)
	subtree := make([]int, g.N())
	for v := range subtree {
		subtree[v] = 1 // each sensor contributes its own reading
	}
	// Accumulate along paths (nodes sorted by decreasing hop distance).
	dist := g.BFSFrom(sink)
	order := make([]int, g.N())
	for i := range order {
		order[i] = i
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if dist[order[j]] > dist[order[i]] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	demand := fdlsp.LinkDemand{PerArc: map[fdlsp.Arc]int{}, Default: 1}
	for _, v := range order {
		if v == sink || next[v] < 0 {
			continue
		}
		demand.PerArc[fdlsp.Arc{From: v, To: next[v]}] = subtree[v]
		subtree[next[v]] += subtree[v]
	}

	// Schedule with the weighted token-passing algorithm.
	as, stats, err := fdlsp.WeightedDFS(g, demand, 21)
	if err != nil {
		log.Fatal(err)
	}
	if v := fdlsp.VerifyWeighted(g, demand, as); len(v) != 0 {
		log.Fatalf("invalid weighted schedule: %v", v[0])
	}
	fmt.Printf("weighted schedule: %d slots (lower bound %d), %d async time units, %d messages\n",
		as.Slots(), fdlsp.WeightedLowerBound(g, demand), stats.Rounds, stats.Messages)

	// The busiest link (adjacent to the sink) holds many slots per frame.
	busiest, w := fdlsp.Arc{}, 0
	for a, k := range demand.PerArc {
		if k > w {
			busiest, w = a, k
		}
	}
	fmt.Printf("busiest link %v carries %d readings/frame and owns slots %v\n", busiest, w, as[busiest])

	// Compare against the unit-demand frame replayed w times.
	unit, err := fdlsp.WeightedGreedy(g, fdlsp.UniformDemand(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one full report per frame: weighted frame = %d slots; unit frame (%d slots) must repeat ~%d times (%d slots) for the same throughput\n",
		as.Slots(), unit.Slots(), w, unit.Slots()*w)
}
