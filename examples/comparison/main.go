// Comparison: schedule the same sensor network with every algorithm in the
// repository — the paper's DistMIS and DFS, the D-MGC baseline, the greedy
// sequential reference, and (on a small instance) the exact optimum — and
// print a side-by-side summary against the theoretical bounds.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"fdlsp"
)

func main() {
	rng := rand.New(rand.NewSource(2012))
	g, _ := fdlsp.RandomUDG(120, 12, 1.4, rng)
	fmt.Printf("network: %d sensors, %d links, Δ=%d, avg degree %.1f\n",
		g.N(), g.M(), g.MaxDegree(), g.AvgDegree())
	lb, ub := fdlsp.LowerBound(g), fdlsp.UpperBound(g)
	fmt.Printf("bounds:  %d ≤ optimum ≤ %d\n\n", lb, ub)
	fmt.Printf("%-28s %6s %9s %10s\n", "algorithm", "slots", "rounds", "messages")

	report := func(name string, slots int, rounds, msgs int64, as fdlsp.Assignment) {
		if !fdlsp.Valid(g, as) {
			log.Fatalf("%s produced an invalid schedule", name)
		}
		if rounds == 0 && msgs == 0 {
			fmt.Printf("%-28s %6d %9s %10s\n", name, slots, "-", "-")
		} else {
			fmt.Printf("%-28s %6d %9d %10d\n", name, slots, rounds, msgs)
		}
	}

	if r, err := fdlsp.DistMIS(g, fdlsp.DistMISOptions{Seed: 1}); err == nil {
		report(r.Algorithm, r.Slots, r.Stats.Rounds, r.Stats.Messages, r.Assignment)
	} else {
		log.Fatal(err)
	}
	if r, err := fdlsp.DistMIS(g, fdlsp.DistMISOptions{Seed: 1, Variant: fdlsp.VariantGeneral}); err == nil {
		report(r.Algorithm, r.Slots, r.Stats.Rounds, r.Stats.Messages, r.Assignment)
	} else {
		log.Fatal(err)
	}
	if r, err := fdlsp.DistMIS(g, fdlsp.DistMISOptions{Seed: 1, Drawer: fdlsp.MISLowestID()}); err == nil {
		report(r.Algorithm, r.Slots, r.Stats.Rounds, r.Stats.Messages, r.Assignment)
	} else {
		log.Fatal(err)
	}
	if r, err := fdlsp.DFS(g, fdlsp.DFSOptions{Seed: 1}); err == nil {
		report(r.Algorithm, r.Slots, r.Stats.Rounds, r.Stats.Messages, r.Assignment)
	} else {
		log.Fatal(err)
	}
	if r, err := fdlsp.DMGC(g); err == nil {
		report(r.Algorithm, r.Slots, 0, 0, r.Assignment)
	} else {
		log.Fatal(err)
	}
	greedy := fdlsp.GreedySchedule(g)
	report("greedy (centralized ref)", greedy.NumColors(), 0, 0, greedy)

	// Exact optimum on a small instance, where branch-and-bound is viable.
	small, _ := fdlsp.RandomUDG(14, 4, 1.5, rng)
	as, k, proved := fdlsp.OptimalSlots(small)
	fmt.Printf("\nsmall instance (n=%d, m=%d): exact optimum %d slots (proved=%v, valid=%v)\n",
		small.N(), small.M(), k, proved, fdlsp.Valid(small, as))
	if r, err := fdlsp.DFS(small, fdlsp.DFSOptions{Seed: 1}); err == nil {
		fmt.Printf("DFS on the same instance: %d slots (approximation ratio %.2f)\n",
			r.Slots, float64(r.Slots)/float64(k))
	}
}
