package fdlsp_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation in reduced form (few trials per iteration so `go test -bench`
// stays tractable; cmd/experiments runs the full campaigns) and adds
// micro-benchmarks for the hot substrate paths plus ablations for the
// design choices discussed in DESIGN.md.
//
// Figure/table benchmarks report the measured quantities via b.ReportMetric
// (slots/frame, rounds, …), so `go test -bench . -benchmem` doubles as a
// compact reproduction report.

import (
	"fmt"
	"math/rand"
	"testing"

	"fdlsp"
	"fdlsp/internal/coloring"
	"fdlsp/internal/core"
	"fdlsp/internal/dmgc"
	"fdlsp/internal/exact"
	"fdlsp/internal/expt"
	"fdlsp/internal/graph"
	"fdlsp/internal/mis"
	"fdlsp/internal/sim"
)

// --- Table 1 ---------------------------------------------------------------

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.RunTable1(int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.ReportMetric(float64(r.Optimal), "opt_"+r.Name)
			}
		}
	}
}

// --- Figures 8–10: UDG slot counts ------------------------------------------

func benchUDGFigure(b *testing.B, side float64) {
	for i := 0; i < b.N; i++ {
		pts, err := expt.RunUDG(expt.UDGConfig{
			Side: side, Radius: 0.5,
			NodeCounts: []int{50, 100, 200, 300},
			Trials:     2, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			last := pts[len(pts)-1]
			b.ReportMetric(last.DistMIS.Mean(), "distMIS_slots_n300")
			b.ReportMetric(last.DFS.Mean(), "dfs_slots_n300")
			b.ReportMetric(last.DMGC.Mean(), "dmgc_slots_n300")
		}
	}
}

func BenchmarkFigure8(b *testing.B)  { benchUDGFigure(b, 15) }
func BenchmarkFigure9(b *testing.B)  { benchUDGFigure(b, 17) }
func BenchmarkFigure10(b *testing.B) { benchUDGFigure(b, 20) }

// --- Figures 11–12: general-graph slot counts -------------------------------

func benchGeneralFigure(b *testing.B, nodes int, edges []int) []*expt.Point {
	var last []*expt.Point
	for i := 0; i < b.N; i++ {
		pts, err := expt.RunGeneral(expt.GeneralConfig{
			Nodes: nodes, EdgeCounts: edges, Trials: 1, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		last = pts
	}
	return last
}

func BenchmarkFigure11(b *testing.B) {
	pts := benchGeneralFigure(b, 200, []int{300, 600, 1200})
	b.ReportMetric(pts[len(pts)-1].DFS.Mean(), "dfs_slots_m1200")
	b.ReportMetric(pts[len(pts)-1].DMGC.Mean(), "dmgc_slots_m1200")
}

func BenchmarkFigure12(b *testing.B) {
	pts := benchGeneralFigure(b, 500, []int{750, 1500})
	b.ReportMetric(pts[len(pts)-1].DFS.Mean(), "dfs_slots_m1500")
	b.ReportMetric(pts[len(pts)-1].DMGC.Mean(), "dmgc_slots_m1500")
}

// --- Figures 13–15: DistMIS communication rounds ----------------------------

func BenchmarkFigure13(b *testing.B) {
	// Rounds vs edges in UDG: fixed nodes, density swept via the plan side.
	var rounds float64
	for i := 0; i < b.N; i++ {
		for _, side := range []float64{20, 15, 10} {
			pts, err := expt.RunUDG(expt.UDGConfig{
				Side: side, Radius: 0.5, NodeCounts: []int{100},
				Trials: 2, Seed: int64(i),
			})
			if err != nil {
				b.Fatal(err)
			}
			rounds = pts[0].DistMISRounds.Mean()
		}
	}
	b.ReportMetric(rounds, "distMIS_rounds_dense")
}

func BenchmarkFigure14(b *testing.B) {
	pts := benchGeneralFigure(b, 500, []int{750, 1500})
	b.ReportMetric(pts[len(pts)-1].DistMISRounds.Mean(), "distMIS_rounds_m1500")
}

func BenchmarkFigure15(b *testing.B) {
	pts := benchGeneralFigure(b, 200, []int{300, 600, 1200})
	b.ReportMetric(pts[len(pts)-1].DistMISRounds.Mean(), "distMIS_rounds_m1200")
}

// --- Micro-benchmarks: substrate hot paths ----------------------------------

func benchGraph(n, m int, seed int64) *graph.Graph {
	return graph.ConnectedGNM(n, m, rand.New(rand.NewSource(seed)))
}

func BenchmarkConflictPredicate(b *testing.B) {
	g := benchGraph(200, 1000, 1)
	arcs := g.Arcs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := arcs[i%len(arcs)]
		c := arcs[(i*7+3)%len(arcs)]
		coloring.Conflict(g, a, c)
	}
}

func BenchmarkConflictingArcs(b *testing.B) {
	g := benchGraph(200, 1000, 1)
	arcs := g.Arcs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coloring.ConflictingArcs(g, arcs[i%len(arcs)])
	}
}

func BenchmarkGreedyColoring(b *testing.B) {
	g := benchGraph(200, 1000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		as := coloring.Greedy(g, nil)
		if len(as) == 0 {
			b.Fatal("empty coloring")
		}
	}
}

func BenchmarkVerifier(b *testing.B) {
	g := benchGraph(200, 1000, 1)
	as := coloring.Greedy(g, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !coloring.Valid(g, as) {
			b.Fatal("invalid")
		}
	}
}

func BenchmarkLowerBound(b *testing.B) {
	g := benchGraph(200, 1000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fdlsp.LowerBound(g)
	}
}

func BenchmarkMisraGries(b *testing.B) {
	g := benchGraph(300, 1500, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dmgc.MisraGries(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSyncEngineMIS(b *testing.B) {
	g := benchGraph(400, 2000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mis.Run(g, int64(i), mis.Luby()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAsyncEngineDFS(b *testing.B) {
	g := benchGraph(200, 600, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.DFS(g, core.DFSOptions{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactSolverSmallUDG(b *testing.B) {
	g, _ := fdlsp.RandomUDG(12, 4, 1.5, rand.New(rand.NewSource(4)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exact.MinSlots(g, exact.Options{})
	}
}

// --- Ablations ---------------------------------------------------------------

// BenchmarkAblationMISStrategy compares the pluggable MIS value strategies
// inside DistMIS (Luby's randomized values vs deterministic IDs vs one-shot
// ranks) — a substitution DESIGN.md calls out.
func BenchmarkAblationMISStrategy(b *testing.B) {
	g := benchGraph(150, 450, 2)
	for _, d := range mis.Strategies() {
		b.Run(d.Name(), func(b *testing.B) {
			var slots, rounds float64
			for i := 0; i < b.N; i++ {
				res, err := core.DistMIS(g, core.Options{Seed: int64(i), Drawer: d})
				if err != nil {
					b.Fatal(err)
				}
				slots = float64(res.Slots)
				rounds = float64(res.Stats.Rounds)
			}
			b.ReportMetric(slots, "slots")
			b.ReportMetric(rounds, "rounds")
		})
	}
}

// BenchmarkAblationVariant compares the paper's two DistMIS flavours: the
// GBG distance-3 secondary MIS (all incident arcs) against the general
// distance-2 secondary MIS (outgoing arcs only, Section 6's Δ-factor
// reduction).
func BenchmarkAblationVariant(b *testing.B) {
	g := benchGraph(150, 450, 2)
	for _, v := range []core.Variant{core.GBG, core.General} {
		b.Run(v.String(), func(b *testing.B) {
			var slots, rounds float64
			for i := 0; i < b.N; i++ {
				res, err := core.DistMIS(g, core.Options{Seed: int64(i), Variant: v})
				if err != nil {
					b.Fatal(err)
				}
				slots = float64(res.Slots)
				rounds = float64(res.Stats.Rounds)
			}
			b.ReportMetric(slots, "slots")
			b.ReportMetric(rounds, "rounds")
		})
	}
}

// BenchmarkAblationDFSPolicy compares token-passing child policies; the
// paper prescribes max-degree-first.
func BenchmarkAblationDFSPolicy(b *testing.B) {
	g := benchGraph(150, 450, 2)
	for _, p := range []core.ChildPolicy{core.MaxDegree, core.MinID, core.RandomChild} {
		b.Run(p.String(), func(b *testing.B) {
			var slots float64
			for i := 0; i < b.N; i++ {
				res, err := core.DFS(g, core.DFSOptions{Seed: int64(i), Policy: p})
				if err != nil {
					b.Fatal(err)
				}
				slots = float64(res.Slots)
			}
			b.ReportMetric(slots, "slots")
		})
	}
}

// BenchmarkSyncEngineParallelism measures raw engine round throughput (the
// HPC-relevant metric: node steps run on a worker pool).
func BenchmarkSyncEngineParallelism(b *testing.B) {
	g := benchGraph(1000, 5000, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := sim.NewSyncEngine(g, int64(i), func(id int) sim.SyncNode {
			return roundCounter{}
		})
		if err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

type roundCounter struct{}

func (roundCounter) Step(env *sim.SyncEnv, inbox []sim.Message) bool {
	if env.Round < 10 {
		env.Broadcast(env.Round)
		return false
	}
	return true
}

// --- Extension benchmarks ----------------------------------------------------

// BenchmarkAblationRandomized pits the discarded randomized algorithm
// against DistMIS (the paper's §5 aside: longer schedules).
func BenchmarkAblationRandomized(b *testing.B) {
	g := benchGraph(150, 450, 2)
	b.Run("randomized", func(b *testing.B) {
		var slots float64
		for i := 0; i < b.N; i++ {
			res, err := core.Randomized(g, int64(i))
			if err != nil {
				b.Fatal(err)
			}
			slots = float64(res.Slots)
		}
		b.ReportMetric(slots, "slots")
	})
	b.Run("distmis", func(b *testing.B) {
		var slots float64
		for i := 0; i < b.N; i++ {
			res, err := core.DistMIS(g, core.Options{Seed: int64(i)})
			if err != nil {
				b.Fatal(err)
			}
			slots = float64(res.Slots)
		}
		b.ReportMetric(slots, "slots")
	})
}

// BenchmarkDynamicRepair measures per-event incremental repair versus the
// full greedy rebuild (the paper's future-work fault tolerance).
func BenchmarkDynamicRepair(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	g, _ := fdlsp.RandomUDG(150, 12, 1.3, rng)
	net, err := fdlsp.NewDynamic(g, fdlsp.GreedySchedule(g))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u, v := rng.Intn(150), rng.Intn(150)
		if u == v {
			continue
		}
		kind := fdlsp.EventLinkUp
		if net.Graph().HasEdge(u, v) {
			kind = fdlsp.EventLinkDown
		}
		if err := net.Apply(fdlsp.TopologyEvent{Kind: kind, U: u, V: v}); err != nil {
			b.Fatal(err)
		}
	}
	if b.N > 0 {
		st := net.Stats()
		b.ReportMetric(float64(st.NewArcs+st.RecoloredArcs)/float64(st.Events), "arcs/event")
	}
}

func BenchmarkDynamicRebuildBaseline(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	g, _ := fdlsp.RandomUDG(150, 12, 1.3, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fdlsp.GreedySchedule(g)
	}
}

func BenchmarkBroadcastScheduling(b *testing.B) {
	g := benchGraph(200, 600, 7)
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fdlsp.BroadcastGreedy(g)
		}
	})
	b.Run("distributed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := fdlsp.BroadcastDistributed(g, int64(i), nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkTrafficConvergecast(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	g := fdlsp.ConnectedGNM(120, 360, rng)
	frame, err := fdlsp.BuildSchedule(g, fdlsp.GreedySchedule(g))
	if err != nil {
		b.Fatal(err)
	}
	flows := fdlsp.ConvergecastFlows(g, 0)
	b.ResetTimer()
	var latency float64
	for i := 0; i < b.N; i++ {
		res, err := fdlsp.SimulateTraffic(g, frame, flows, 100_000)
		if err != nil {
			b.Fatal(err)
		}
		latency = res.AvgLatency
	}
	b.ReportMetric(latency, "avg_latency_slots")
}

func BenchmarkSINRCheck(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	g, pts := fdlsp.RandomUDG(200, 14, 1.3, rng)
	frame, err := fdlsp.BuildSchedule(g, fdlsp.GreedySchedule(g))
	if err != nil {
		b.Fatal(err)
	}
	params := fdlsp.DefaultSINRParams()
	b.ResetTimer()
	var frac float64
	for i := 0; i < b.N; i++ {
		frac = frame.SINRFeasibleFraction(pts, params)
	}
	b.ReportMetric(frac, "sinr_feasible_fraction")
}

// BenchmarkCVForestColoring measures the deterministic O(log* n) pipeline;
// the reported rounds barely move across two orders of magnitude of n.
func BenchmarkCVForestColoring(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		g := graph.RandomTree(n, rand.New(rand.NewSource(4)))
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			var rounds float64
			for i := 0; i < b.N; i++ {
				_, stats, err := fdlsp.CVColorForest(g)
				if err != nil {
					b.Fatal(err)
				}
				rounds = float64(stats.Rounds)
			}
			b.ReportMetric(rounds, "rounds")
		})
	}
}

// BenchmarkWeightedDFS measures demand-aware token scheduling.
func BenchmarkWeightedDFS(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := fdlsp.ConnectedGNM(100, 300, rng)
	d := fdlsp.LinkDemand{PerArc: map[fdlsp.Arc]int{}, Default: 1}
	for _, a := range g.Arcs() {
		d.PerArc[a] = 1 + rng.Intn(3)
	}
	b.ResetTimer()
	var slots float64
	for i := 0; i < b.N; i++ {
		as, _, err := fdlsp.WeightedDFS(g, d, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		slots = float64(as.Slots())
	}
	b.ReportMetric(slots, "slots")
}

// BenchmarkScheduleImprove measures the offline post-optimization pipeline
// and reports how many slots it reclaims from a DistMIS frame.
func BenchmarkScheduleImprove(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	g, _ := fdlsp.RandomUDG(120, 10, 1.4, rng)
	res, err := fdlsp.DistMIS(g, fdlsp.DistMISOptions{Seed: 6})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var saved float64
	for i := 0; i < b.N; i++ {
		improved := fdlsp.ImproveSchedule(g, res.Assignment, 9, int64(i))
		saved = float64(res.Slots - improved.NumColors())
	}
	b.ReportMetric(saved, "slots_saved")
}

// BenchmarkEnergyAccounting measures the per-frame energy model.
func BenchmarkEnergyAccounting(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	g, _ := fdlsp.RandomUDG(200, 14, 1.3, rng)
	frame, err := fdlsp.BuildSchedule(g, fdlsp.GreedySchedule(g))
	if err != nil {
		b.Fatal(err)
	}
	m := fdlsp.DefaultEnergyModel()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fdlsp.LinkEnergy(g, frame, m)
	}
}

// BenchmarkAblationDMGCPhase1 compares D-MGC's Vizing Δ+1 phase 1 against
// the fully distributed (2Δ-1) randomized edge coloring: slots vs rounds,
// quantifying why the baseline pays for the expensive construction.
func BenchmarkAblationDMGCPhase1(b *testing.B) {
	g := benchGraph(150, 450, 8)
	b.Run("vizing", func(b *testing.B) {
		var slots float64
		for i := 0; i < b.N; i++ {
			res, err := fdlsp.DMGC(g)
			if err != nil {
				b.Fatal(err)
			}
			slots = float64(res.Slots)
		}
		b.ReportMetric(slots, "slots")
	})
	b.Run("distributed-2d-1", func(b *testing.B) {
		var slots, rounds float64
		for i := 0; i < b.N; i++ {
			res, err := fdlsp.DMGCDistributed(g, int64(i))
			if err != nil {
				b.Fatal(err)
			}
			slots = float64(res.Slots)
			rounds = float64(res.Stats.Rounds)
		}
		b.ReportMetric(slots, "slots")
		b.ReportMetric(rounds, "phase1_rounds")
	})
	b.Run("vizing-distributed", func(b *testing.B) {
		var slots, rounds float64
		for i := 0; i < b.N; i++ {
			res, err := fdlsp.DMGCVizingDistributed(g, int64(i))
			if err != nil {
				b.Fatal(err)
			}
			slots = float64(res.Slots)
			rounds = float64(res.Stats.Rounds)
		}
		b.ReportMetric(slots, "slots")
		b.ReportMetric(rounds, "phase1_rounds")
	})
}
