package fdlsp_test

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"

	"fdlsp"
)

// TestEndToEndPipeline is the headline integration test: generate a sensor
// network, schedule it with every algorithm, verify each schedule with the
// conflict verifier AND the radio-level frame simulator, and round-trip the
// frame through JSON.
func TestEndToEndPipeline(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g, _ := fdlsp.RandomUDG(80, 10, 1.5, rng)
	lb, ub := fdlsp.LowerBound(g), fdlsp.UpperBound(g)

	type runner struct {
		name string
		run  func() (fdlsp.Assignment, error)
	}
	runners := []runner{
		{"distmis-gbg", func() (fdlsp.Assignment, error) {
			r, err := fdlsp.DistMIS(g, fdlsp.DistMISOptions{Seed: 1})
			if err != nil {
				return nil, err
			}
			return r.Assignment, nil
		}},
		{"distmis-general", func() (fdlsp.Assignment, error) {
			r, err := fdlsp.DistMIS(g, fdlsp.DistMISOptions{Seed: 1, Variant: fdlsp.VariantGeneral})
			if err != nil {
				return nil, err
			}
			return r.Assignment, nil
		}},
		{"dfs", func() (fdlsp.Assignment, error) {
			r, err := fdlsp.DFS(g, fdlsp.DFSOptions{Seed: 1})
			if err != nil {
				return nil, err
			}
			return r.Assignment, nil
		}},
		{"dmgc", func() (fdlsp.Assignment, error) {
			r, err := fdlsp.DMGC(g)
			if err != nil {
				return nil, err
			}
			return r.Assignment, nil
		}},
		{"greedy", func() (fdlsp.Assignment, error) { return fdlsp.GreedySchedule(g), nil }},
	}
	for _, r := range runners {
		t.Run(r.name, func(t *testing.T) {
			as, err := r.run()
			if err != nil {
				t.Fatal(err)
			}
			if viols := fdlsp.Verify(g, as); len(viols) != 0 {
				t.Fatalf("invalid: %v", viols[0])
			}
			slots := as.NumColors()
			if slots < lb || slots > ub {
				t.Errorf("slots %d outside [%d,%d]", slots, lb, ub)
			}
			frame, err := fdlsp.BuildSchedule(g, as)
			if err != nil {
				t.Fatal(err)
			}
			if col := frame.RadioCheck(g); len(col) != 0 {
				t.Fatalf("radio collision: %v", col[0])
			}
			data, err := json.Marshal(frame)
			if err != nil {
				t.Fatal(err)
			}
			var back fdlsp.Schedule
			if err := json.Unmarshal(data, &back); err != nil {
				t.Fatal(err)
			}
			if back.FrameLength != frame.FrameLength {
				t.Error("JSON round trip changed the frame")
			}
		})
	}
}

// TestDeltaApproximation spot-checks Theorem 2 empirically: on instances
// where the exact optimum is computable, both distributed algorithms stay
// within factor Δ of it.
func TestDeltaApproximation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 8; trial++ {
		g, _ := fdlsp.RandomUDG(12, 4, 1.5, rng)
		if g.M() == 0 {
			continue
		}
		_, opt, proved := fdlsp.OptimalSlots(g)
		if !proved {
			continue
		}
		d := g.MaxDegree()
		dm, err := fdlsp.DistMIS(g, fdlsp.DistMISOptions{Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		df, err := fdlsp.DFS(g, fdlsp.DFSOptions{Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		if dm.Slots > d*opt {
			t.Errorf("trial %d: distMIS %d > Δ·opt = %d·%d", trial, dm.Slots, d, opt)
		}
		if df.Slots > d*opt {
			t.Errorf("trial %d: DFS %d > Δ·opt = %d·%d", trial, df.Slots, d, opt)
		}
	}
}

func TestComputeMIS(t *testing.T) {
	g := fdlsp.ConnectedGNM(60, 150, rand.New(rand.NewSource(2)))
	inMIS, stats, err := fdlsp.ComputeMIS(g, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds == 0 || stats.Messages == 0 {
		t.Error("no communication recorded")
	}
	// Independence + maximality.
	for v := 0; v < g.N(); v++ {
		dominated := inMIS[v]
		for _, u := range g.Neighbors(v) {
			if inMIS[v] && inMIS[u] {
				t.Fatalf("adjacent MIS members %d,%d", v, u)
			}
			if inMIS[u] {
				dominated = true
			}
		}
		if !dominated {
			t.Fatalf("node %d neither in MIS nor dominated", v)
		}
	}
}

func TestConflictFacade(t *testing.T) {
	g := fdlsp.Path(4)
	if !fdlsp.Conflict(g, fdlsp.Arc{From: 0, To: 1}, fdlsp.Arc{From: 2, To: 3}) {
		t.Error("hidden terminal should conflict")
	}
	if fdlsp.Conflict(g, fdlsp.Arc{From: 1, To: 0}, fdlsp.Arc{From: 2, To: 3}) {
		t.Error("parallel transmitters should not conflict")
	}
}

func TestExportILP(t *testing.T) {
	s := fdlsp.ExportILP(fdlsp.Path(3), 4)
	if len(s) == 0 {
		t.Fatal("empty LP export")
	}
}

func TestSolveILPSmall(t *testing.T) {
	res, err := fdlsp.SolveILP(fdlsp.Path(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || res.Slots != 4 {
		t.Errorf("P3 ILP: optimal=%v slots=%d, want 4", res.Optimal, res.Slots)
	}
}

// Property: all three algorithms produce verifier-clean schedules on
// arbitrary random graphs (the repository's central invariant).
func TestAllAlgorithmsValidQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(18)
		g := fdlsp.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		dm, err := fdlsp.DistMIS(g, fdlsp.DistMISOptions{Seed: seed})
		if err != nil || !fdlsp.Valid(g, dm.Assignment) {
			return false
		}
		df, err := fdlsp.DFS(g, fdlsp.DFSOptions{Seed: seed})
		if err != nil || !fdlsp.Valid(g, df.Assignment) {
			return false
		}
		dg, err := fdlsp.DMGC(g)
		if err != nil || !fdlsp.Valid(g, dg.Assignment) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
