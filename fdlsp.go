// Package fdlsp is a library for TDMA link scheduling in wireless sensor
// networks, reproducing "Distributed Algorithms for TDMA Link Scheduling in
// Sensor Networks" (Alsulaiman, Prasad, Zelikovsky; APDCM/IPDPS 2012).
//
// The Full Duplex Link Scheduling Problem (FDLSP) asks for an assignment of
// TDMA time slots to directed links (both directions of every radio link)
// such that every node can act as transmitter and as receiver on each of
// its links, the hidden terminal problem never occurs, and the TDMA frame
// is as short as possible. The paper formulates this as distance-2 edge
// coloring of a bi-directed graph; this package exposes:
//
//   - graph construction and generators (unit disk graphs, random general
//     graphs, trees, grids, complete and complete bipartite graphs);
//   - the two distributed algorithms of the paper — the synchronous
//     MIS-based DistMIS (Algorithm 1) and the asynchronous token-passing
//     DFS (Algorithm 2) — executed on a message-passing simulator that
//     counts communication rounds and messages;
//   - the D-MGC baseline the paper compares against;
//   - exact optima for small instances (conflict-graph branch-and-bound and
//     the paper's ILP solved by a built-in simplex branch-and-bound);
//   - the paper's theoretical lower and upper bounds;
//   - schedule verification, a radio-level frame simulator and TDMA frame
//     utilities.
//
// Quick start:
//
//	g, _ := fdlsp.RandomUDG(100, 15, 0.5, rand.New(rand.NewSource(1)))
//	res, err := fdlsp.DistMIS(g, fdlsp.DistMISOptions{Seed: 1})
//	if err != nil { ... }
//	fmt.Println(res.Slots, fdlsp.Valid(g, res.Assignment)) // frame length, true
package fdlsp

import (
	"math/rand"

	"fdlsp/internal/bounds"
	"fdlsp/internal/coloring"
	"fdlsp/internal/core"
	"fdlsp/internal/dmgc"
	"fdlsp/internal/exact"
	"fdlsp/internal/geom"
	"fdlsp/internal/graph"
	"fdlsp/internal/ilp"
	"fdlsp/internal/mis"
	"fdlsp/internal/sched"
	"fdlsp/internal/sim"
)

// Core graph types.
type (
	// Graph is an undirected communication graph over nodes 0..N()-1.
	Graph = graph.Graph
	// Edge is an undirected link with U < V.
	Edge = graph.Edge
	// Arc is a directed link: From transmits, To receives.
	Arc = graph.Arc
	// Point is a sensor position in the plane.
	Point = geom.Point
)

// Scheduling types.
type (
	// Assignment maps every arc to a TDMA slot (1-based; 0 = unassigned).
	Assignment = coloring.Assignment
	// Violation is a pair of conflicting same-slot arcs found by Verify.
	Violation = coloring.Violation
	// Result is the outcome of a scheduling run: the assignment, the frame
	// length (Slots) and the communication cost (Stats).
	Result = core.Result
	// Stats counts communication rounds and messages of a run.
	Stats = sim.Stats
	// Schedule is an operational TDMA frame built from an Assignment.
	Schedule = sched.Schedule
	// ScheduleStats summarizes frame occupancy.
	ScheduleStats = sched.Stats
	// Collision is a radio-level failure reported by Schedule.RadioCheck.
	Collision = sched.Collision
)

// Algorithm options.
type (
	// DistMISOptions configures the synchronous MIS-based algorithm.
	DistMISOptions = core.Options
	// DFSOptions configures the asynchronous DFS algorithm.
	DFSOptions = core.DFSOptions
	// Variant selects the growth-bounded-graph or general-graph DistMIS.
	Variant = core.Variant
	// ChildPolicy selects the DFS token-passing order.
	ChildPolicy = core.ChildPolicy
	// MISDrawer is a pluggable MIS value strategy.
	MISDrawer = mis.Drawer
	// DelayFn injects per-message delivery delays in asynchronous runs.
	DelayFn = sim.DelayFn
)

// Re-exported enum values.
const (
	// VariantGBG is DistMIS for growth bounded graphs (Section 5).
	VariantGBG = core.GBG
	// VariantGeneral is DistMIS for general graphs (Section 6).
	VariantGeneral = core.General
	// ChildMaxDegree passes the DFS token to the max-degree neighbor.
	ChildMaxDegree = core.MaxDegree
	// ChildMinID passes the DFS token to the lowest-ID neighbor.
	ChildMinID = core.MinID
	// ChildRandom passes the DFS token to a random neighbor.
	ChildRandom = core.RandomChild
)

// Graph constructors.
var (
	// NewGraph returns an empty graph with n nodes.
	NewGraph = graph.New
	// Complete returns K_n.
	Complete = graph.Complete
	// CompleteBipartite returns K_{a,b}.
	CompleteBipartite = graph.CompleteBipartite
	// Cycle returns C_n.
	Cycle = graph.Cycle
	// Path returns the n-node path.
	Path = graph.Path
	// Star returns the n-node star.
	Star = graph.Star
	// Grid returns the rows×cols grid graph.
	Grid = graph.Grid
	// RandomTree returns a random labelled tree.
	RandomTree = graph.RandomTree
	// GNM returns a uniform random graph with n nodes and m edges.
	GNM = graph.GNM
	// ConnectedGNM returns a connected random graph (tree + extra edges).
	ConnectedGNM = graph.ConnectedGNM
	// UnitDisk builds the UDG of a point set with a transmission radius.
	UnitDisk = geom.UnitDisk
	// RandomPoints places n points uniformly in a side×side plan.
	RandomPoints = geom.RandomPoints
)

// RandomUDG places n sensors uniformly in a side×side plan and links nodes
// within the transmission radius — the paper's evaluation workload.
func RandomUDG(n int, side, radius float64, rng *rand.Rand) (*Graph, []Point) {
	return geom.RandomUDG(n, side, radius, rng)
}

// DistMIS runs the paper's synchronous MIS-based distributed algorithm
// (Algorithm 1) and returns the schedule with its round/message cost.
func DistMIS(g *Graph, opts DistMISOptions) (*Result, error) { return core.DistMIS(g, opts) }

// DFS runs the paper's asynchronous token-passing algorithm (Algorithm 2).
func DFS(g *Graph, opts DFSOptions) (*Result, error) { return core.DFS(g, opts) }

// DMGC runs the D-MGC baseline of Gandham et al. [8] the paper compares
// against (Δ+1 edge coloring, direction assignment, color injection,
// full duplex doubling).
func DMGC(g *Graph) (*Result, error) { return dmgc.Schedule(g) }

// GreedySchedule is the sequential greedy distance-2 edge coloring — the
// Δ-approximation reference algorithm of the paper's Lemma 9/Theorem 2.
func GreedySchedule(g *Graph) Assignment { return coloring.Greedy(g, nil) }

// OptimalSlots returns a provably optimal schedule for small instances via
// exact conflict-graph coloring; ok is false if the search budget was
// exhausted before proving optimality.
func OptimalSlots(g *Graph) (Assignment, int, bool) {
	as, col := exact.MinSlots(g, exact.Options{})
	return as, col.K, col.Optimal
}

// SolveILP builds the paper's Section 4 integer linear program for g and
// solves it with the built-in simplex branch-and-bound. maxColors of 0 uses
// the greedy schedule's palette. Intended for small instances.
func SolveILP(g *Graph, maxColors int) (*ilp.FDLSPResult, error) {
	return ilp.SolveFDLSP(g, maxColors, ilp.SolveOptions{})
}

// ExportILP renders the paper's ILP for g in CPLEX LP text format.
func ExportILP(g *Graph, maxColors int) string {
	m, _ := ilp.BuildFDLSP(g, maxColors)
	return m.WriteLP()
}

// Verify returns all violations of as on g: uncolored arcs, shared
// endpoints, hidden terminals. An empty result means a feasible schedule.
func Verify(g *Graph, as Assignment) []Violation { return coloring.Verify(g, as) }

// Valid reports whether as is a complete, feasible FDLSP schedule for g.
func Valid(g *Graph, as Assignment) bool { return coloring.Valid(g, as) }

// Conflict reports whether two arcs may not share a TDMA slot in g
// (Definition 2: shared endpoint, or one's head adjacent to the other's
// tail — the hidden terminal problem).
func Conflict(g *Graph, a, b Arc) bool { return coloring.Conflict(g, a, b) }

// LowerBound returns the paper's Theorem 1 lower bound on the frame length.
func LowerBound(g *Graph) int { return bounds.LowerBound(g) }

// UpperBound returns the paper's 2Δ² upper bound (Lemma 6).
func UpperBound(g *Graph) int { return bounds.UpperBound(g) }

// BuildSchedule assembles the operational TDMA frame for an assignment.
func BuildSchedule(g *Graph, as Assignment) (*Schedule, error) { return sched.Build(g, as) }

// ComputeMIS runs the classic synchronous distributed maximal-independent-
// set protocol on g (drawer nil = Luby) and returns the membership vector
// with the round/message cost.
func ComputeMIS(g *Graph, seed int64, drawer MISDrawer) ([]bool, Stats, error) {
	if drawer == nil {
		drawer = mis.Luby()
	}
	return mis.Run(g, seed, drawer)
}

// MIS strategies for DistMISOptions.Drawer and ComputeMIS.
var (
	// MISLuby draws a fresh random value each iteration (default).
	MISLuby = mis.Luby
	// MISLowestID uses node IDs (deterministic).
	MISLowestID = mis.LowestID
	// MISRank uses one random rank drawn up front.
	MISRank = mis.Rank
)
