package fdlsp_test

// Fuzz targets for the core substrates. The seeds run as ordinary tests;
// `go test -fuzz=FuzzX .` explores further. Each target rebuilds a graph
// deterministically from the fuzzed bytes, so crashes are reproducible.

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"fdlsp"
	"fdlsp/internal/conformance"
	"fdlsp/internal/graph"
)

// graphFromBytes builds a small graph deterministically from fuzz input.
func graphFromBytes(data []byte) *fdlsp.Graph {
	if len(data) == 0 {
		return fdlsp.NewGraph(0)
	}
	n := int(data[0])%16 + 1
	g := fdlsp.NewGraph(n)
	for i := 1; i+1 < len(data); i += 2 {
		u, v := int(data[i])%n, int(data[i+1])%n
		if u != v && !g.HasEdge(u, v) {
			g.AddEdge(u, v)
		}
	}
	return g
}

func FuzzGreedyScheduleAlwaysValid(f *testing.F) {
	f.Add([]byte{5, 0, 1, 1, 2, 2, 3})
	f.Add([]byte{12, 0, 1, 0, 2, 0, 3, 1, 2, 4, 5})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := graphFromBytes(data)
		as := fdlsp.GreedySchedule(g)
		if !fdlsp.Valid(g, as) {
			t.Fatalf("greedy invalid on fuzzed graph %v", g)
		}
		d := g.MaxDegree()
		if as.NumColors() > 2*d*d {
			t.Fatalf("greedy exceeded 2Δ² on %v", g)
		}
	})
}

func FuzzConflictSymmetricAndIrreflexive(f *testing.F) {
	f.Add([]byte{6, 0, 1, 1, 2, 2, 3, 3, 4}, uint16(0), uint16(1))
	f.Fuzz(func(t *testing.T, data []byte, ai, bi uint16) {
		g := graphFromBytes(data)
		arcs := g.Arcs()
		if len(arcs) == 0 {
			return
		}
		a := arcs[int(ai)%len(arcs)]
		b := arcs[int(bi)%len(arcs)]
		if fdlsp.Conflict(g, a, a) {
			t.Fatal("self conflict")
		}
		if fdlsp.Conflict(g, a, b) != fdlsp.Conflict(g, b, a) {
			t.Fatalf("asymmetric conflict %v %v", a, b)
		}
	})
}

func FuzzEdgeListParser(f *testing.F) {
	f.Add("3 2\n0 1\n1 2\n")
	f.Add("# comment\n2 1\n0 1\n")
	f.Add("p edge 3 1\ne 1 2\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		// Must never panic; on success the graph must round-trip.
		g, err := graph.ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatal(err)
		}
		h, err := graph.ReadEdgeList(&buf)
		if err != nil || !g.Equal(h) {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}

func FuzzDIMACSParser(f *testing.F) {
	f.Add("p edge 3 2\ne 1 2\ne 2 3\n")
	f.Add("c x\np edge 1 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := graph.ReadDIMACS(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := g.WriteDIMACS(&buf); err != nil {
			t.Fatal(err)
		}
		h, err := graph.ReadDIMACS(&buf)
		if err != nil || !g.Equal(h) {
			t.Fatalf("round trip failed: %v", err)
		}
	})
}

// FuzzFaultyRunsTerminateAndVerify throws arbitrary graphs and fault plans
// (loss up to 0.6, duplication, reordering, an optional crash) at both
// distributed algorithms over the reliable transport at its default
// configuration. The contract: the run terminates without error and the
// verifier accepts the schedule on the surviving subgraph. The defaults
// suffice even at the top of the fuzzed loss range because a spurious ARQ
// give-up on a live peer is no longer terminal — the next frame or gossip
// vouch from that peer rescinds it with PeerUp and the protocols resume.
func FuzzFaultyRunsTerminateAndVerify(f *testing.F) {
	f.Add([]byte{9, 0, 1, 1, 2, 2, 3, 3, 4, 4, 0}, int64(1), uint8(20), uint8(10), uint8(3), uint8(41))
	f.Add([]byte{12, 0, 1, 0, 2, 0, 3, 1, 2, 4, 5, 5, 6}, int64(7), uint8(55), uint8(0), uint8(0), uint8(0))
	f.Add([]byte{4, 0, 1, 1, 2, 2, 3, 0, 3}, int64(3), uint8(5), uint8(30), uint8(1), uint8(9))
	f.Fuzz(func(t *testing.T, data []byte, seed int64, lossB, dupB, crashB, atB uint8) {
		g := graphFromBytes(data)
		if g.N() == 0 || g.M() == 0 {
			return
		}
		plan := &fdlsp.FaultPlan{
			Seed:    seed,
			Loss:    float64(lossB%61) / 100, // [0, 0.60]
			Dup:     float64(dupB%41) / 100,  // [0, 0.40]
			Reorder: int64(dupB % 3),
		}
		if crashB%2 == 1 {
			plan.Crashes = []fdlsp.Crash{{Node: int(crashB) % g.N(), At: int64(atB)%80 + 1}}
		}
		check := func(label string, res *fdlsp.Result, err error) {
			if err != nil {
				t.Fatalf("%s did not survive plan %+v: %v", label, plan, err)
			}
			surv := fdlsp.SurvivingGraph(g, res.Crashed)
			if viols := fdlsp.Verify(surv, res.Assignment); len(viols) != 0 {
				t.Fatalf("%s: invalid on surviving subgraph (crashed %v): %v",
					label, res.Crashed, viols[0])
			}
		}
		res, err := fdlsp.DistMIS(g, fdlsp.DistMISOptions{Seed: seed, Fault: plan})
		check("distMIS", res, err)
		res, err = fdlsp.DFS(g, fdlsp.DFSOptions{Seed: seed, Fault: plan})
		check("dfs", res, err)
	})
}

// FuzzChurnSoakStabilizes throws fuzzed churn regimes at the continuous
// soak: arbitrary move/crash/leave rates, message loss on the periodic
// protocol reschedules, and both adversarial initial colorings. The
// contract extends FuzzFaultyRunsTerminateAndVerify from one run to
// continuous operation: every epoch re-stabilizes to a conflict-free,
// fully-usable schedule, and a repeated run with the same seed produces a
// byte-identical metrics snapshot.
func FuzzChurnSoakStabilizes(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(5), uint8(2), uint8(25), uint8(0))
	f.Add(int64(9), uint8(33), uint8(12), uint8(0), uint8(0), uint8(1))
	f.Add(int64(4), uint8(0), uint8(15), uint8(8), uint8(30), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, moveB, crashB, leaveB, lossB, initB uint8) {
		init := [...]fdlsp.ChurnInit{fdlsp.ChurnInitGreedy, fdlsp.ChurnInitZero,
			fdlsp.ChurnInitConflict}[initB%3]
		run := func(reg *fdlsp.MetricsRegistry) {
			cfg := fdlsp.ChurnConfig{
				Seed: seed, N: 16, Side: 7,
				MoveRate:   float64(moveB%41) / 100,  // [0, 0.40]
				CrashRate:  float64(crashB%16) / 100, // [0, 0.15]
				LeaveRate:  float64(leaveB%9) / 100,  // [0, 0.08]
				Loss:       float64(lossB%31) / 100,  // [0, 0.30]
				Init:       init,
				ProbeEvery: 15,
				Metrics:    reg,
			}
			s, err := fdlsp.NewChurnSoak(cfg)
			if err != nil {
				t.Fatalf("config %+v rejected: %v", cfg, err)
			}
			for i := 0; i < 30; i++ {
				rep, err := s.Step()
				if err != nil {
					t.Fatalf("epoch %d under %+v: %v", i, cfg, err)
				}
				if rep.Usable != 1 || rep.Residual != 0 {
					t.Fatalf("epoch %d did not re-stabilize: %+v", i, rep)
				}
			}
			if viols := fdlsp.Verify(s.Graph(), s.Assignment()); len(viols) != 0 {
				t.Fatalf("soak left an invalid schedule: %v", viols[0])
			}
		}
		ra, rb := fdlsp.NewMetricsRegistry(), fdlsp.NewMetricsRegistry()
		run(ra)
		run(rb)
		if ra.Text() != rb.Text() {
			t.Fatal("same seed, different metrics snapshot")
		}
	})
}

// FuzzParallelMatchesSerial pins the parallel sync engine's determinism
// contract at the API surface: for a fuzzed topology, seed, worker count,
// and (optionally) fault plan, DistMIS on the sharded engine must produce
// results and metrics snapshots byte-identical to the forced-serial engine
// (Workers=1). Zero loss keeps the run on the destination-sharded delivery
// fast path; any loss moves it to the sequential fault path with parallel
// steps — both must match. The seed corpus is checked into
// testdata/fuzz/FuzzParallelMatchesSerial.
func FuzzParallelMatchesSerial(f *testing.F) {
	f.Add([]byte{9, 0, 1, 1, 2, 2, 3, 3, 4, 4, 0}, int64(1), uint8(2), uint8(0))
	f.Add([]byte{12, 0, 1, 0, 2, 0, 3, 1, 2, 4, 5, 5, 6}, int64(7), uint8(8), uint8(20))
	f.Add([]byte{15, 0, 1, 1, 2, 2, 3, 0, 3, 4, 5, 6, 7, 8, 9}, int64(42), uint8(3), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, seed int64, workersB, lossB uint8) {
		g := graphFromBytes(data)
		if g.N() == 0 {
			return
		}
		workers := 2 + int(workersB)%7 // [2, 8]
		var plan *fdlsp.FaultPlan
		if loss := float64(lossB%31) / 100; loss > 0 {
			plan = &fdlsp.FaultPlan{Seed: seed, Loss: loss, Reorder: int64(lossB % 3)}
		}
		run := func(workers int) (*fdlsp.Result, string) {
			reg := fdlsp.NewMetricsRegistry()
			res, err := fdlsp.DistMIS(g, fdlsp.DistMISOptions{
				Seed: seed, Fault: plan, Metrics: reg, Workers: workers,
			})
			if err != nil {
				t.Fatalf("workers=%d failed on fuzzed graph %v: %v", workers, g, err)
			}
			return res, reg.Text()
		}
		serialRes, serialSnap := run(1)
		parallelRes, parallelSnap := run(workers)
		if !reflect.DeepEqual(serialRes, parallelRes) {
			t.Fatalf("workers=%d diverged from serial on %v:\nserial:   %+v\nparallel: %+v",
				workers, g, serialRes, parallelRes)
		}
		if serialSnap != parallelSnap {
			t.Fatalf("workers=%d: metrics snapshot diverged from serial on %v", workers, g)
		}
	})
}

func FuzzScheduleJSON(f *testing.F) {
	f.Add(int64(1))
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		g := fdlsp.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		frame, err := fdlsp.BuildSchedule(g, fdlsp.GreedySchedule(g))
		if err != nil {
			t.Fatal(err)
		}
		data, err := frame.MarshalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var back fdlsp.Schedule
		if err := back.UnmarshalJSON(data); err != nil {
			t.Fatal(err)
		}
		if back.FrameLength != frame.FrameLength {
			t.Fatal("frame length changed through JSON")
		}
	})
}

// FuzzPatchMatchesRebuild is the fuzzed half of the cache-patch conformance
// oracle: an arbitrary topology and an arbitrary event stream — including
// invalid events, which both sides must reject identically — drive one
// rescheduling session maintained by incremental distance-2 conflict-cache
// patches against one that rebuilds the cache on every mutation. Reports,
// schedules, and every conflict row must stay byte-identical throughout.
func FuzzPatchMatchesRebuild(f *testing.F) {
	f.Add([]byte{8, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5}, []byte{0, 0, 2, 1, 0, 1, 2, 3, 4})
	f.Add([]byte{6, 0, 1, 1, 2, 2, 3}, []byte{4, 0, 0, 5, 1, 2, 3, 3, 1, 0, 4, 5})
	f.Add([]byte{12, 0, 1, 0, 2, 0, 3, 1, 2, 4, 5}, []byte{2, 0, 1, 0, 0, 1})
	f.Add([]byte{5, 0, 1}, []byte{})
	f.Fuzz(func(t *testing.T, gdata, edata []byte) {
		g := graphFromBytes(gdata)
		if g.N() < 2 {
			return
		}
		var batches [][]fdlsp.TopologyEvent
		var batch []fdlsp.TopologyEvent
		for i := 0; i+2 < len(edata); i += 3 {
			// One kind value past NodeMove stays in the decode range on
			// purpose: unknown kinds must be rejected identically too.
			kind := fdlsp.TopologyEventKind(int(edata[i]) % 6)
			u, v := int(edata[i+1])%g.N(), int(edata[i+2])%g.N()
			ev := fdlsp.TopologyEvent{Kind: kind, U: u, V: v}
			if kind == fdlsp.EventNodeJoin || kind == fdlsp.EventNodeMove {
				ev.V = 0
				ev.Peers = []int{v}
			}
			batch = append(batch, ev)
			if len(batch) == 3 {
				batches = append(batches, batch)
				batch = nil
			}
		}
		if len(batch) > 0 {
			batches = append(batches, batch)
		}
		if err := conformance.PatchRebuildStream(g, batches); err != nil {
			t.Fatal(err)
		}
	})
}
