package fdlsp_test

import (
	"math/rand"
	"strings"
	"testing"

	"fdlsp"
)

// TestFacadeExtensions exercises every extension entry point through the
// public API, pinning the surface a downstream user programs against.
func TestFacadeExtensions(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g, pts := fdlsp.RandomQUDG(60, 8, 1.4, 0.7, 0.5, rng)

	t.Run("randomized", func(t *testing.T) {
		res, err := fdlsp.Randomized(g, 1)
		if err != nil || !fdlsp.Valid(g, res.Assignment) {
			t.Fatalf("err=%v valid=%v", err, err == nil && fdlsp.Valid(g, res.Assignment))
		}
	})

	t.Run("growth-bound", func(t *testing.T) {
		f := fdlsp.GrowthBound(g, 2)
		if len(f) != 3 || f[1] < 1 {
			t.Fatalf("growth bound %v", f)
		}
	})

	t.Run("dynamic", func(t *testing.T) {
		net, err := fdlsp.NewDynamic(g, fdlsp.GreedySchedule(g))
		if err != nil {
			t.Fatal(err)
		}
		ev := fdlsp.TopologyEvent{Kind: fdlsp.EventNodeFail, U: 0}
		if err := net.Apply(ev); err != nil {
			t.Fatal(err)
		}
		if !fdlsp.Valid(net.Graph(), net.Assignment()) {
			t.Fatal("invalid after repair")
		}
		if net.Stats().Events != 1 {
			t.Fatal("stats not recorded")
		}
	})

	t.Run("broadcast", func(t *testing.T) {
		colors := fdlsp.BroadcastGreedy(g)
		if !fdlsp.BroadcastVerify(g, colors) {
			t.Fatal("greedy broadcast invalid")
		}
		dist, stats, err := fdlsp.BroadcastDistributed(g, 1, nil)
		if err != nil || !fdlsp.BroadcastVerify(g, dist) {
			t.Fatalf("distributed broadcast err=%v", err)
		}
		if g.M() > 0 && stats.Messages == 0 {
			t.Fatal("no messages")
		}
		if fdlsp.BroadcastLinkServiceSlots(g, colors) < fdlsp.BroadcastSlots(colors) {
			t.Fatal("link service below frame")
		}
	})

	t.Run("sinr-and-energy", func(t *testing.T) {
		frame, err := fdlsp.BuildSchedule(g, fdlsp.GreedySchedule(g))
		if err != nil {
			t.Fatal(err)
		}
		if f := frame.SINRFeasibleFraction(pts, fdlsp.DefaultSINRParams()); f < 0 || f > 1 {
			t.Fatalf("fraction %v", f)
		}
		rep := fdlsp.LinkEnergy(g, frame, fdlsp.DefaultEnergyModel())
		if rep.Total <= 0 && g.M() > 0 {
			t.Fatal("no energy accounted")
		}
		link, bcast, err := fdlsp.PerLinkServiceEnergy(g, frame, fdlsp.BroadcastGreedy(g), fdlsp.DefaultEnergyModel())
		if err != nil || link <= 0 || bcast <= 0 {
			t.Fatalf("service energy link=%v bcast=%v err=%v", link, bcast, err)
		}
	})

	t.Run("traffic", func(t *testing.T) {
		var cg *fdlsp.Graph
		for {
			cg = fdlsp.ConnectedGNM(30, 70, rng)
			if cg.Connected() {
				break
			}
		}
		frame, err := fdlsp.BuildSchedule(cg, fdlsp.GreedySchedule(cg))
		if err != nil {
			t.Fatal(err)
		}
		res, err := fdlsp.SimulateTraffic(cg, frame, fdlsp.ConvergecastFlows(cg, 0), 10_000)
		if err != nil || res.Delivered != cg.N()-1 {
			t.Fatalf("delivered %d err=%v", res.Delivered, err)
		}
		if next := fdlsp.NextHops(cg, 0); next[0] != -1 {
			t.Fatal("sink next hop")
		}
	})

	t.Run("weighted", func(t *testing.T) {
		d := fdlsp.UniformDemand(2)
		as, err := fdlsp.WeightedGreedy(g, d)
		if err != nil || len(fdlsp.VerifyWeighted(g, d, as)) != 0 {
			t.Fatalf("weighted greedy err=%v", err)
		}
		if as.Slots() < fdlsp.WeightedLowerBound(g, d) && g.M() > 0 {
			t.Fatal("below demand bound")
		}
		das, _, err := fdlsp.WeightedDFS(g, d, 1)
		if err != nil || len(fdlsp.VerifyWeighted(g, d, das)) != 0 {
			t.Fatalf("weighted dfs err=%v", err)
		}
	})

	t.Run("optimize", func(t *testing.T) {
		as := fdlsp.GreedySchedule(g)
		comp := fdlsp.CompactSchedule(g, as)
		if comp.NumColors() > as.NumColors() || !fdlsp.Valid(g, comp) {
			t.Fatal("compaction regressed")
		}
		imp := fdlsp.ImproveSchedule(g, as, 4, 1)
		if imp.NumColors() > as.NumColors() || !fdlsp.Valid(g, imp) {
			t.Fatal("improve regressed")
		}
	})

	t.Run("cv", func(t *testing.T) {
		tree := fdlsp.RandomTree(60, rng)
		colors, stats, err := fdlsp.CVColorForest(tree)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range tree.Edges() {
			if colors[e.U] == colors[e.V] {
				t.Fatal("improper CV coloring")
			}
		}
		if stats.Rounds > 40 {
			t.Fatalf("CV rounds %d not log*-ish", stats.Rounds)
		}
		inMIS, _, err := fdlsp.CVForestMIS(tree)
		if err != nil || len(inMIS) != tree.N() {
			t.Fatalf("forest MIS err=%v", err)
		}
		if fdlsp.LogStar(65536) != 4 {
			t.Fatal("log*")
		}
	})

	t.Run("viz", func(t *testing.T) {
		svg := fdlsp.RenderNetwork(g, pts, fdlsp.VizStyle{})
		if !strings.Contains(svg, "<svg") {
			t.Fatal("no svg")
		}
		frame, err := fdlsp.BuildSchedule(g, fdlsp.GreedySchedule(g))
		if err != nil {
			t.Fatal(err)
		}
		if frame.FrameLength > 0 {
			if _, err := fdlsp.RenderSlot(g, pts, frame, 1, fdlsp.VizStyle{}); err != nil {
				t.Fatal(err)
			}
			if _, err := fdlsp.RenderFrame(g, pts, frame, 2, fdlsp.VizStyle{}); err != nil {
				t.Fatal(err)
			}
		}
		if !strings.Contains(fdlsp.RenderSlotHistogram(frame), "<rect") {
			t.Fatal("histogram")
		}
	})

	t.Run("conformance", func(t *testing.T) {
		s := func(gg *fdlsp.Graph, seed int64) (fdlsp.Assignment, error) {
			return fdlsp.GreedySchedule(gg), nil
		}
		if fails := fdlsp.CheckConformance(s, fdlsp.ConformanceOptions{Seeds: []int64{1}}); len(fails) != 0 {
			t.Fatalf("greedy not conformant via facade: %v", fails[0])
		}
	})

	t.Run("delays", func(t *testing.T) {
		var cg *fdlsp.Graph
		for {
			cg = fdlsp.ConnectedGNM(25, 60, rng)
			if cg.Connected() {
				break
			}
		}
		for name, d := range map[string]fdlsp.DelayFn{
			"none": fdlsp.NoDelay(),
			"unif": fdlsp.UniformDelay(4),
			"tail": fdlsp.HeavyTailDelay(20),
			"link": fdlsp.SlowLinkDelay(10, func(u, v int) bool { return u == 0 }),
			"node": fdlsp.SlowNodeDelay(10, 1),
		} {
			res, err := fdlsp.DFS(cg, fdlsp.DFSOptions{Seed: 2, Delay: d})
			if err != nil || !fdlsp.Valid(cg, res.Assignment) {
				t.Fatalf("%s: err=%v", name, err)
			}
		}
	})
}
