module fdlsp

go 1.22
