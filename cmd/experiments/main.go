// Command experiments regenerates every table and figure of the paper's
// evaluation (Section 8). Each experiment prints the table of averages that
// underlies the corresponding plot; see EXPERIMENTS.md for the recorded
// paper-versus-measured comparison.
//
// Usage:
//
//	experiments                     # run everything with default sizes
//	experiments -exp table1
//	experiments -exp fig8,fig9,fig10 -trials 75
//	experiments -exp fig11 -trials 10 -csv
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"fdlsp/internal/expt"
)

// slug turns a table title into a file name.
func slug(title string) string {
	title = strings.ToLower(title)
	var b strings.Builder
	dash := false
	for _, r := range title {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			dash = false
		default:
			if !dash && b.Len() > 0 {
				b.WriteByte('-')
				dash = true
			}
		}
	}
	return strings.TrimSuffix(b.String(), "-")
}

func main() {
	var (
		exps   = flag.String("exp", "all", "comma-separated: table1,fig8,fig9,fig10,fig11,fig12,fig13,fig14,fig15 or all")
		trials = flag.Int("trials", 0, "instances per configuration (0 = paper defaults: 75 UDG, 10 general)")
		seed   = flag.Int64("seed", 2012, "base random seed")
		csv    = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		outDir = flag.String("out", "", "also write each table as CSV into this directory")
		plot   = flag.Bool("plot", false, "also render figures as log-scale ASCII plots")
	)
	flag.Parse()

	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	sel := func(name string) bool { return all || want[name] }

	udgTrials := *trials
	if udgTrials == 0 {
		udgTrials = 75 // the paper generates 75 UDGs per node count
	}
	genTrials := *trials
	if genTrials == 0 {
		genTrials = 10
	}

	emit := func(title string, t *expt.Table) {
		fmt.Printf("== %s ==\n", title)
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Print(t.String())
		}
		fmt.Println()
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			name := filepath.Join(*outDir, slug(title)+".csv")
			if err := os.WriteFile(name, []byte(t.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
	}
	timed := func(name string, f func() error) {
		if !sel(name) {
			return
		}
		start := time.Now()
		if err := f(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s finished in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	timed("table1", func() error {
		rows, err := expt.RunTable1(*seed)
		if err != nil {
			return err
		}
		emit("Table 1: optimal (ILP/exact) vs DFS on complete bipartite and complete graphs", expt.Table1Table(rows))
		return nil
	})

	// Figures 8–10: UDG slot counts for plan sides 15, 17, 20.
	udgSides := []struct {
		name string
		side float64
	}{{"fig8", 15}, {"fig9", 17}, {"fig10", 20}}
	for _, fc := range udgSides {
		fc := fc
		timed(fc.name, func() error {
			pts, err := expt.RunUDG(expt.UDGConfig{
				Side: fc.side, Radius: 0.5,
				NodeCounts: []int{50, 100, 200, 300},
				Trials:     udgTrials, Seed: *seed,
			})
			if err != nil {
				return err
			}
			title := fmt.Sprintf("Figure %s: time slots in UDG, plan %gx%g (avg over %d graphs)",
				strings.TrimPrefix(fc.name, "fig"), fc.side, fc.side, udgTrials)
			emit(title, expt.SlotsTable(pts))
			if *plot {
				fmt.Print(expt.SlotsPlot(title, pts))
			}
			return nil
		})
	}

	// Figures 11 and 15 share the 200-node general-graph campaign (slots
	// and DistMIS rounds respectively); Figures 12 and 14 share the
	// 500-node campaign. Each campaign runs once.
	var general200, general500 []*expt.Point
	if sel("fig11") || sel("fig15") {
		timed("general-200", func() error {
			var err error
			general200, err = expt.RunGeneral(expt.GeneralConfig{
				Nodes: 200, EdgeCounts: []int{300, 600, 1200, 2400, 4800},
				Trials: genTrials, Seed: *seed,
			})
			return err
		})
	}
	if sel("fig12") || sel("fig14") {
		timed("general-500", func() error {
			var err error
			general500, err = expt.RunGeneral(expt.GeneralConfig{
				Nodes: 500, EdgeCounts: []int{750, 1500, 3000, 6000},
				Trials: genTrials, Seed: *seed,
			})
			return err
		})
	}
	if sel("fig11") && general200 != nil {
		emit("Figure 11: time slots in general graphs, 200 nodes", expt.SlotsTable(general200))
		if *plot {
			fmt.Print(expt.SlotsPlot("Figure 11", general200))
		}
	}
	if sel("fig12") && general500 != nil {
		emit("Figure 12: time slots in general graphs, 500 nodes", expt.SlotsTable(general500))
		if *plot {
			fmt.Print(expt.SlotsPlot("Figure 12", general500))
		}
	}

	// Figure 13: DistMIS rounds vs edges in UDG (density swept via the plan
	// side for fixed node counts).
	timed("fig13", func() error {
		for _, n := range []int{100, 200, 300} {
			var pts []*expt.Point
			for _, side := range []float64{20, 17, 15, 12, 10} {
				p, err := expt.RunUDG(expt.UDGConfig{
					Side: side, Radius: 0.5, NodeCounts: []int{n},
					Trials: udgTrials / 3, Seed: *seed,
				})
				if err != nil {
					return err
				}
				pts = append(pts, p...)
			}
			emit(fmt.Sprintf("Figure 13: distMIS communication rounds in UDG, %d nodes", n), expt.RoundsTable(pts))
		}
		return nil
	})

	// Figures 14–15: DistMIS rounds vs edges in general graphs (views over
	// the campaigns above).
	if sel("fig14") && general500 != nil {
		emit("Figure 14: distMIS communication rounds in general graphs, 500 nodes", expt.RoundsTable(general500))
		if *plot {
			fmt.Print(expt.RoundsPlot("Figure 14", general500))
		}
	}
	if sel("fig15") && general200 != nil {
		emit("Figure 15: distMIS communication rounds in general graphs, 200 nodes", expt.RoundsTable(general200))
		if *plot {
			fmt.Print(expt.RoundsPlot("Figure 15", general200))
		}
	}

	// Extension experiments (not part of the paper's figures; select with
	// -exp ext or individually). They quantify the repository's additions:
	// the randomized algorithm the paper discarded, the broadcast-vs-link
	// argument of Section 1, incremental repair (future work), and the
	// quasi-UDG model.
	ext := func(name string) bool {
		if want["ext"] {
			want[name] = true // so the timed() selection check passes too
		}
		return want[name]
	}
	extTrials := *trials
	if extTrials == 0 {
		extTrials = 10
	}
	if ext("ext-randomized") {
		timed("ext-randomized", func() error {
			tb, err := expt.RandomizedComparison([]int{50, 100, 200}, 10, 1.2, extTrials, *seed)
			if err != nil {
				return err
			}
			emit("Extension: randomized algorithm vs DistMIS (paper §5 aside)", tb)
			return nil
		})
	}
	if ext("ext-broadcast") {
		timed("ext-broadcast", func() error {
			tb, err := expt.BroadcastComparison([]int{50, 100, 200}, 10, 1.2, extTrials, *seed)
			if err != nil {
				return err
			}
			emit("Extension: broadcast vs link scheduling (paper §1 motivation)", tb)
			return nil
		})
	}
	if ext("ext-churn") {
		timed("ext-churn", func() error {
			tb, err := expt.ChurnExperiment(100, 10, 1.2, 300, extTrials, *seed)
			if err != nil {
				return err
			}
			emit("Extension: incremental schedule repair under churn (paper §9 future work)", tb)
			return nil
		})
	}
	if ext("ext-energy") {
		timed("ext-energy", func() error {
			tb, err := expt.EnergyComparison([]int{50, 100, 200}, 10, 1.2, extTrials, *seed)
			if err != nil {
				return err
			}
			emit("Extension: transceiver energy, link vs broadcast scheduling (paper §1)", tb)
			return nil
		})
	}
	if ext("ext-dmgc") {
		timed("ext-dmgc", func() error {
			tb, err := expt.DMGCPhaseOneAblation(100, 300, extTrials, *seed)
			if err != nil {
				return err
			}
			emit("Extension: D-MGC phase-1 ablation (Misra-Gries vs distributed colorings)", tb)
			return nil
		})
	}
	if ext("ext-faults") {
		timed("ext-faults", func() error {
			faultTrials := extTrials
			if faultTrials > 5 {
				faultTrials = 5 // lossy runs are expensive; cap the default
			}
			tb, err := expt.FaultOverhead(30, 12, 4, []float64{0, 0.05, 0.1, 0.2}, faultTrials, *seed)
			if err != nil {
				return err
			}
			emit("Extension: message/round overhead of reliable transport vs loss rate", tb)
			return nil
		})
	}
	if ext("ext-rejoin") {
		timed("ext-rejoin", func() error {
			rejoinTrials := extTrials
			if rejoinTrials > 3 {
				rejoinTrials = 3 // each trial runs both faulty and fault-free instances
			}
			tb, err := expt.RejoinRepair(24, 10, 4, []float64{0, 0.1, 0.3}, 2, rejoinTrials, *seed)
			if err != nil {
				return err
			}
			emit("Extension: in-protocol crash rejoin vs out-of-band schedule repair", tb)
			return nil
		})
	}
	if ext("ext-qudg") {
		timed("ext-qudg", func() error {
			tb, err := expt.QUDGComparison(150, 10, 1.2, extTrials, *seed)
			if err != nil {
				return err
			}
			emit("Extension: UDG vs quasi-UDG connectivity models", tb)
			return nil
		})
	}
}
