// Command fdlsbench writes the repository's benchmark baseline: it times
// end-to-end scheduling (DistMIS on the synchronous engine, DFS on the
// asynchronous engine) on seeded G(n, 3n) instances and emits the
// measurements as JSON.
//
//	fdlsbench -out BENCH_sim.json                  # full grid, n ∈ {64, 256, 1024, 4096}
//	fdlsbench -short -out /tmp/smoke.json          # CI smoke grid, n ∈ {16, 64}
//	fdlsbench -short -baseline BENCH_sim.json      # smoke run + regression gate
//
// The schedule-cost columns (slots, rounds, messages) are deterministic per
// seed; the timing columns are machine-dependent. With -baseline the fresh
// run is held against the committed report: allocation regressions beyond
// -max-growth and any drift in the deterministic cost columns exit nonzero,
// wall-clock movement is reported but advisory (machine-dependent).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"fdlsp/internal/benchkit"
)

func main() {
	out := flag.String("out", "BENCH_sim.json", "output file (- for stdout)")
	short := flag.Bool("short", false, "run the reduced smoke grid")
	baseline := flag.String("baseline", "", "baseline report to gate against (specs are matched by name)")
	maxGrowth := flag.Float64("max-growth", 0.25, "tolerated fractional allocs/bytes growth vs the baseline")
	flag.Parse()

	suite := "baseline"
	if *short {
		suite = "smoke"
	}
	rep, err := benchkit.Run(suite, benchkit.DefaultSpecs(*short))
	if err != nil {
		log.Fatalf("fdlsbench: %v", err)
	}
	data, err := rep.JSON()
	if err != nil {
		log.Fatalf("fdlsbench: %v", err)
	}
	if *out == "-" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatalf("fdlsbench: %v", err)
		}
		fmt.Println("wrote", *out)
	}

	w := tabwriter.NewWriter(os.Stderr, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "spec\titers\tns/op\tallocs/op\tB/op\tslots\trounds\tmessages")
	for _, m := range rep.Results {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			m.Name, m.Iterations, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp, m.Slots, m.Rounds, m.Messages)
	}
	w.Flush()

	if *baseline == "" {
		return
	}
	raw, err := os.ReadFile(*baseline)
	if err != nil {
		log.Fatalf("fdlsbench: %v", err)
	}
	base, err := benchkit.Load(raw)
	if err != nil {
		log.Fatalf("fdlsbench: %v", err)
	}
	cmp := benchkit.Compare(base, rep, *maxGrowth)
	for _, s := range cmp.Advisory {
		fmt.Fprintln(os.Stderr, "advisory:", s)
	}
	for _, s := range cmp.Fatal {
		fmt.Fprintln(os.Stderr, "FAIL:", s)
	}
	if len(cmp.Fatal) > 0 {
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "baseline gate passed (%s, max growth %.0f%%)\n", *baseline, 100**maxGrowth)
}
