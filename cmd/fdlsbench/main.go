// Command fdlsbench writes the repository's benchmark baseline: it times
// end-to-end scheduling (DistMIS on the synchronous engine, DFS on the
// asynchronous engine) on seeded G(n, 3n) instances and emits the
// measurements as JSON.
//
//	fdlsbench -out BENCH_sim.json          # full grid, n ∈ {64, 256, 1024}
//	fdlsbench -short -out /tmp/smoke.json  # CI smoke grid, n ∈ {16, 64}
//
// The schedule-cost columns (slots, rounds, messages) are deterministic per
// seed; the timing columns are machine-dependent. Compare a fresh run
// against the committed BENCH_sim.json to spot performance or cost
// regressions.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"fdlsp/internal/benchkit"
)

func main() {
	out := flag.String("out", "BENCH_sim.json", "output file (- for stdout)")
	short := flag.Bool("short", false, "run the reduced smoke grid")
	flag.Parse()

	suite := "baseline"
	if *short {
		suite = "smoke"
	}
	rep, err := benchkit.Run(suite, benchkit.DefaultSpecs(*short))
	if err != nil {
		log.Fatalf("fdlsbench: %v", err)
	}
	data, err := rep.JSON()
	if err != nil {
		log.Fatalf("fdlsbench: %v", err)
	}
	if *out == "-" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatalf("fdlsbench: %v", err)
		}
		fmt.Println("wrote", *out)
	}

	w := tabwriter.NewWriter(os.Stderr, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "spec\tns/op\tallocs/op\tB/op\tslots\trounds\tmessages")
	for _, m := range rep.Results {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\n",
			m.Name, m.NsPerOp, m.AllocsPerOp, m.BytesPerOp, m.Slots, m.Rounds, m.Messages)
	}
	w.Flush()
}
