// Command fdlspd serves the scheduling library over JSON/HTTP:
//
//	POST /v1/schedule  {"graph": {...}, "algorithm": "distmis", "seed": 1}
//	POST /v1/verify    {"graph": {...}, "schedule": {...}}
//	POST /v1/bounds    {"graph": {...}}
//	POST /v1/render    {"graph": {...}, "points": [...], "schedule": {...}, "slot": 1}
//	GET  /healthz
//
// Graphs use the same JSON shape cmd/graphgen emits ({"n": ..,
// "edges": [[u,v], ...]}); schedules are the frame JSON cmd/fdlsp -json
// prints. Example:
//
//	fdlspd -addr :8080 &
//	graphgen -gen udg -n 100 -format json |
//	  jq '{graph: ., algorithm: "dfs"}' |
//	  curl -sd @- localhost:8080/v1/schedule
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"fdlsp/internal/httpapi"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           httpapi.NewMux(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      5 * time.Minute, // large instances take a while
	}
	log.Printf("fdlspd listening on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}
