// Command fdlspd serves the scheduling library over JSON/HTTP:
//
//	POST   /v1/schedule            {"graph": {...}, "algorithm": "distmis", "seed": 1}
//	POST   /v1/verify              {"graph": {...}, "schedule": {...}}
//	POST   /v1/bounds              {"graph": {...}}
//	POST   /v1/render              {"graph": {...}, "points": [...], "schedule": {...}, "slot": 1}
//	POST   /v1/traffic             {"graph": {...}, "schedule": {...}, "sink": 0}
//	POST   /v1/energy              {"graph": {...}, "schedule": {...}}
//	POST   /v1/session             {"graph": {...}, "algorithm": "greedy", "seed": 1}
//	GET    /v1/session/{id}
//	POST   /v1/session/{id}/update {"events": [{"kind": "link-up", "u": 3, "v": 7}, ...]}
//	DELETE /v1/session/{id}
//	GET    /healthz
//	GET    /metrics                Prometheus text exposition of the whole stack
//
// The session routes are the incremental rescheduling service: create a
// long-lived schedule session from a graph, then stream topology deltas at
// it; each update answers with the minimal recolor set, the repair-round
// count, and the new frame length (see internal/incr).
//
// On SIGINT/SIGTERM the server drains: the listener closes, in-flight
// requests (including live session updates) run to completion within the
// -drain deadline, and only then does the process exit.
//
// With -pprof the standard net/http/pprof profiling endpoints are mounted
// under /debug/pprof/ on the same listener (off by default: the profiles
// expose internals and cost CPU, so only enable them when diagnosing).
//
// Graphs use the same JSON shape cmd/graphgen emits ({"n": ..,
// "edges": [[u,v], ...]}); schedules are the frame JSON cmd/fdlsp -json
// prints. Example:
//
//	fdlspd -addr :8080 &
//	graphgen -gen udg -n 100 -format json |
//	  jq '{graph: ., algorithm: "dfs"}' |
//	  curl -sd @- localhost:8080/v1/schedule
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"syscall"
	"time"

	"fdlsp/internal/httpapi"
	"fdlsp/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	withPprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	drain := flag.Duration("drain", 15*time.Second, "in-flight request drain deadline on SIGINT/SIGTERM")
	flag.Parse()

	srv := &http.Server{
		Handler:           newHandler(*withPprof),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      5 * time.Minute, // large instances take a while
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	log.Printf("fdlspd listening on %s", ln.Addr())
	if err := serve(ctx, srv, ln, *drain); err != nil {
		log.Fatal(err)
	}
	log.Printf("fdlspd drained and stopped")
}

// serve runs srv on ln until the server fails or ctx is cancelled (the
// signal path). On cancellation it shuts down gracefully: the listener
// closes so no new work arrives, and in-flight requests — live session
// updates included — get up to drain to finish before the connections are
// torn down. A clean drain returns nil.
func serve(ctx context.Context, srv *http.Server, ln net.Listener, drain time.Duration) error {
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		srv.Close()
		return fmt.Errorf("drain deadline exceeded: %w", err)
	}
	<-errc // Serve has returned http.ErrServerClosed
	return nil
}

// newHandler assembles the service mux — API routes plus /metrics — and,
// when asked, the pprof endpoints. pprof handlers are mounted explicitly
// rather than via the package's DefaultServeMux side effect so they only
// exist behind the flag.
func newHandler(withPprof bool) http.Handler {
	mux := httpapi.NewMuxWith(obs.NewRegistry())
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}
