// Command fdlspd serves the scheduling library over JSON/HTTP:
//
//	POST /v1/schedule  {"graph": {...}, "algorithm": "distmis", "seed": 1}
//	POST /v1/verify    {"graph": {...}, "schedule": {...}}
//	POST /v1/bounds    {"graph": {...}}
//	POST /v1/render    {"graph": {...}, "points": [...], "schedule": {...}, "slot": 1}
//	GET  /healthz
//	GET  /metrics      Prometheus text exposition of the whole stack
//
// With -pprof the standard net/http/pprof profiling endpoints are mounted
// under /debug/pprof/ on the same listener (off by default: the profiles
// expose internals and cost CPU, so only enable them when diagnosing).
//
// Graphs use the same JSON shape cmd/graphgen emits ({"n": ..,
// "edges": [[u,v], ...]}); schedules are the frame JSON cmd/fdlsp -json
// prints. Example:
//
//	fdlspd -addr :8080 &
//	graphgen -gen udg -n 100 -format json |
//	  jq '{graph: ., algorithm: "dfs"}' |
//	  curl -sd @- localhost:8080/v1/schedule
package main

import (
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"time"

	"fdlsp/internal/httpapi"
	"fdlsp/internal/obs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	withPprof := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           newHandler(*withPprof),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      5 * time.Minute, // large instances take a while
	}
	log.Printf("fdlspd listening on %s", *addr)
	log.Fatal(srv.ListenAndServe())
}

// newHandler assembles the service mux — API routes plus /metrics — and,
// when asked, the pprof endpoints. pprof handlers are mounted explicitly
// rather than via the package's DefaultServeMux side effect so they only
// exist behind the flag.
func newHandler(withPprof bool) http.Handler {
	mux := httpapi.NewMuxWith(obs.NewRegistry())
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}
