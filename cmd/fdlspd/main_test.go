package main

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestPprofGatedByFlag(t *testing.T) {
	get := func(h http.Handler, path string) int {
		t.Helper()
		s := httptest.NewServer(h)
		defer s.Close()
		resp, err := http.Get(s.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get(newHandler(false), "/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("pprof off: /debug/pprof/ status %d, want 404", code)
	}
	if code := get(newHandler(true), "/debug/pprof/"); code != http.StatusOK {
		t.Errorf("pprof on: /debug/pprof/ status %d, want 200", code)
	}
	// The API surface is mounted either way.
	if code := get(newHandler(false), "/metrics"); code != http.StatusOK {
		t.Errorf("/metrics status %d, want 200", code)
	}
	if code := get(newHandler(false), "/healthz"); code != http.StatusOK {
		t.Errorf("/healthz status %d, want 200", code)
	}
}
