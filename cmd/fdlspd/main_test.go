package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestPprofGatedByFlag(t *testing.T) {
	get := func(h http.Handler, path string) int {
		t.Helper()
		s := httptest.NewServer(h)
		defer s.Close()
		resp, err := http.Get(s.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get(newHandler(false), "/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("pprof off: /debug/pprof/ status %d, want 404", code)
	}
	if code := get(newHandler(true), "/debug/pprof/"); code != http.StatusOK {
		t.Errorf("pprof on: /debug/pprof/ status %d, want 200", code)
	}
	// The API surface is mounted either way.
	if code := get(newHandler(false), "/metrics"); code != http.StatusOK {
		t.Errorf("/metrics status %d, want 200", code)
	}
	if code := get(newHandler(false), "/healthz"); code != http.StatusOK {
		t.Errorf("/healthz status %d, want 200", code)
	}
}

// TestServeDrainsInFlightRequests pins the graceful-shutdown path: a request
// that is mid-handler when the stop signal arrives must run to completion
// and reach the client before serve returns nil.
func TestServeDrainsInFlightRequests(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
		fmt.Fprint(w, "drained ok")
	})
	srv := &http.Server{Handler: mux}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())

	serveErr := make(chan error, 1)
	go func() { serveErr <- serve(ctx, srv, ln, 5*time.Second) }()

	var wg sync.WaitGroup
	wg.Add(1)
	var body string
	var status int
	go func() {
		defer wg.Done()
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err != nil {
			t.Errorf("in-flight request failed: %v", err)
			return
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		body, status = string(data), resp.StatusCode
	}()

	<-started
	cancel() // the SIGINT/SIGTERM path
	// Shutdown is now in progress; the handler is still blocked. Prove the
	// listener is closed to new work, then let the in-flight request finish.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	if status != http.StatusOK || body != "drained ok" {
		t.Fatalf("in-flight request got status %d body %q", status, body)
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("serve returned %v, want nil after clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after drain")
	}
}

// TestServeDrainDeadline pins the other side: a handler that never finishes
// must not hold the process past the drain deadline, and serve must report
// the failure.
func TestServeDrainDeadline(t *testing.T) {
	hang := make(chan struct{})
	defer close(hang)
	mux := http.NewServeMux()
	started := make(chan struct{})
	mux.HandleFunc("/hang", func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-hang
	})
	srv := &http.Server{Handler: mux}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())

	serveErr := make(chan error, 1)
	go func() { serveErr <- serve(ctx, srv, ln, 100*time.Millisecond) }()
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/hang")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started
	cancel()
	select {
	case err := <-serveErr:
		if err == nil {
			t.Fatal("serve returned nil despite a hung handler")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve hung past the drain deadline")
	}
}
