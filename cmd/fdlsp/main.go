// Command fdlsp schedules one network instance with a chosen algorithm and
// prints the resulting TDMA frame, its verification status and the
// communication cost.
//
// Usage examples:
//
//	fdlsp -gen udg -n 100 -side 15 -radius 0.5 -algo distmis
//	fdlsp -gen gnm -n 200 -m 1200 -algo dfs -json
//	fdlsp -in network.txt -algo dmgc
//	fdlsp -gen complete -n 5 -algo exact
//	fdlsp -gen grid -rows 4 -cols 4 -algo distmis -metrics
//	fdlsp -churn 500 -n 32 -loss 0.1 -churn-crash 0.05 -churn-probe 100
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"

	"fdlsp"
	"fdlsp/internal/graph"
	"fdlsp/internal/viz"
)

func main() {
	if err := cliMain(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fdlsp:", err)
		os.Exit(1)
	}
}

// cliMain is the testable body of the command: it parses argv, schedules the
// instance and writes the report to out. The golden-file tests in
// main_test.go drive it directly with a buffer.
func cliMain(argv []string, out io.Writer) error {
	fs := flag.NewFlagSet("fdlsp", flag.ContinueOnError)
	var (
		gen     = fs.String("gen", "udg", "generator: udg|gnm|tree|complete|bipartite|cycle|path|grid|star")
		in      = fs.String("in", "", "read graph from edge-list file instead of generating")
		n       = fs.Int("n", 50, "node count (generators)")
		m       = fs.Int("m", 0, "edge count (gnm; 0 = 3n)")
		a       = fs.Int("a", 3, "first part size (bipartite)")
		b       = fs.Int("b", 3, "second part size (bipartite)")
		rows    = fs.Int("rows", 5, "grid rows")
		cols    = fs.Int("cols", 5, "grid cols")
		side    = fs.Float64("side", 15, "UDG plan side length")
		radius  = fs.Float64("radius", 0.5, "UDG transmission radius")
		algo    = fs.String("algo", "distmis", "algorithm: distmis|distmis-general|dfs|dmgc|randomized|greedy|exact|ilp")
		seed    = fs.Int64("seed", 1, "random seed")
		asJSON  = fs.Bool("json", false, "emit the schedule as JSON")
		verbose = fs.Bool("v", false, "print the full slot table")
		trace   = fs.Bool("trace", false, "record and summarize simulation events (distmis/dfs)")
		optim   = fs.Bool("optimize", false, "post-optimize the schedule offline (compaction + iterated greedy)")
		compare = fs.Bool("compare", false, "run every algorithm on the instance and print a comparison table")
		svg     = fs.String("svg", "", "write SVG renderings with this path prefix (UDG generator only)")
		loss    = fs.Float64("loss", 0, "per-message drop probability in [0,1) (distmis/dfs)")
		dup     = fs.Float64("dup", 0, "per-message duplication probability in [0,1) (distmis/dfs)")
		reorder = fs.Int64("reorder", 0, "max extra delivery jitter for reordering (distmis/dfs)")
		crash   = fs.String("crash", "", "comma-separated crash specs node@time[:restart], e.g. 3@40,7@60:90")
		rto     = fs.Int64("rto", 0, "initial/floor retransmission timeout of the reliable transport (0 = default)")
		retries = fs.Int("retries", 0, "transport retransmissions per segment before giving up (0 = default, -1 = send once)")
		metrics = fs.Bool("metrics", false, "dump the metrics registry snapshot (Prometheus text) after the run")
		workers = fs.Int("workers", 0, "sync-engine worker pool size for distmis (0 = GOMAXPROCS, 1 = serial; results are identical at any setting)")

		churn       = fs.Int("churn", 0, "run a continuous churn soak for this many epochs instead of a single scheduling run")
		churnInit   = fs.String("churn-init", "greedy", "soak initial coloring: greedy|zero|conflict")
		churnMove   = fs.Float64("churn-move", 0.2, "per-node per-epoch movement probability (soak)")
		churnCrash  = fs.Float64("churn-crash", 0.05, "per-node per-epoch crash probability (soak)")
		churnLeave  = fs.Float64("churn-leave", 0.02, "per-node per-epoch leave probability (soak)")
		churnProbe  = fs.Int64("churn-probe", 0, "soak: reschedule via a full protocol run every k epochs (0 = never)")
		churnReport = fs.Int("churn-report", 0, "soak: summary-table row every k epochs (0 = epochs/20)")
	)
	if err := fs.Parse(argv); err != nil {
		return err
	}

	if *churn > 0 {
		cf := churnFlags{
			epochs: *churn, n: *n, seed: *seed, loss: *loss, init: *churnInit,
			moveRate: *churnMove, crashRate: *churnCrash, leaveRate: *churnLeave,
			probeEvery: *churnProbe, report: *churnReport, metrics: *metrics,
		}
		// -side/-radius default to the single-run UDG geometry, far too
		// sparse for a soak; only honor them when set explicitly, otherwise
		// let the soak pick its own defaults.
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "side":
				cf.side = *side
			case "radius":
				cf.radius = *radius
			}
		})
		return runChurn(out, cf)
	}

	plan, err := faultPlan(*loss, *dup, *reorder, *crash, *seed)
	if err != nil {
		return err
	}

	g, pts, err := buildGraph(*in, *gen, *n, *m, *a, *b, *rows, *cols, *side, *radius, *seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "graph: n=%d m=%d Δ=%d avg-deg=%.2f connected=%v\n",
		g.N(), g.M(), g.MaxDegree(), g.AvgDegree(), g.Connected())
	fmt.Fprintf(out, "bounds: lower=%d upper=%d\n", fdlsp.LowerBound(g), fdlsp.UpperBound(g))

	// The registry gets the full metric schema up front so even runs that
	// never reach the core layer (greedy, exact, ...) dump a well-formed
	// snapshot.
	var reg *fdlsp.MetricsRegistry
	if *metrics {
		reg = fdlsp.NewMetricsRegistry()
		fdlsp.RegisterMetrics(reg)
	}

	if *compare {
		return runComparison(out, g, *seed)
	}

	var rec *fdlsp.TraceRecorder
	if *trace {
		// The summary only needs the aggregate counters; retaining events is
		// only worth the memory when a timeline rendering was asked for.
		rec = &fdlsp.TraceRecorder{Cap: 1}
		if *svg != "" {
			rec.Cap = 1 << 20
		}
	}
	topt := fdlsp.TransportOptions{RTO: *rto, MaxRetries: *retries}
	as, label, stats, faults, err := run(g, *algo, *seed, rec, plan, topt, reg, *workers)
	if err != nil {
		return err
	}
	// A faulty run is accountable for the surviving subgraph: the crashed
	// nodes' arcs are excluded from verification and frame assembly. Nodes
	// that rejoined in-protocol are live again and stay covered.
	target := g
	if faults != nil {
		target = fdlsp.SurvivingGraph(g, faults.crashed)
		fmt.Fprintf(out, "faults: loss=%.2f dup=%.2f reorder=%d crashed=%v\n",
			*loss, *dup, *reorder, faults.crashed)
		fmt.Fprintf(out, "transport: %v\n", faults.transport)
		if len(faults.rejoin.Returned) > 0 {
			fmt.Fprintf(out, "rejoin: returned=%v resync-msgs=%d rebased=%d\n",
				faults.rejoin.Returned, faults.rejoin.ResyncMsgs, faults.rejoin.Rebased)
		}
	}
	if viols := fdlsp.Verify(target, as); len(viols) != 0 {
		return fmt.Errorf("INVALID schedule: %d violations, first: %v", len(viols), viols[0])
	}
	if *optim {
		raw := as.NumColors()
		as = fdlsp.ImproveSchedule(target, as, 12, *seed)
		fmt.Fprintf(out, "post-optimization: %d -> %d slots\n", raw, as.NumColors())
	}
	schedule, err := fdlsp.BuildSchedule(target, as)
	if err != nil {
		return err
	}
	if collisions := schedule.RadioCheck(target); len(collisions) != 0 {
		return fmt.Errorf("radio check failed: %v", collisions[0])
	}

	st := schedule.Stats()
	fmt.Fprintf(out, "algorithm: %s\n", label)
	fmt.Fprintf(out, "slots: %d  links: %d  max-concurrency: %d  avg-concurrency: %.2f\n",
		st.FrameLength, st.Links, st.MaxConcurrency, st.AvgConcurrency)
	// Complete fault-free greedy schedules use every slot, so the line only
	// appears when crash recovery (or offline optimization) left gaps.
	if dc := as.DistinctColors(); dc != st.FrameLength {
		fmt.Fprintf(out, "distinct-colors: %d (%d idle slots in the frame)\n", dc, st.FrameLength-dc)
	}
	if stats != nil {
		fmt.Fprintf(out, "cost: %d rounds, %d messages\n", stats.Rounds, stats.Messages)
	}
	if faults != nil {
		fmt.Fprintln(out, "verification: schedule valid on surviving subgraph, radio check clean")
	} else {
		fmt.Fprintln(out, "verification: schedule valid, radio check clean")
	}
	if rec != nil {
		fmt.Fprint(out, "trace summary:\n", rec.Summary())
	}
	if *svg != "" {
		if pts == nil {
			return fmt.Errorf("-svg needs a geometric placement (use -gen udg)")
		}
		files := map[string]string{
			*svg + "-network.svg":   viz.Network(g, pts, viz.Style{}),
			*svg + "-histogram.svg": viz.SlotHistogram(schedule),
		}
		if rec != nil {
			files[*svg+"-timeline.svg"] = fdlsp.RenderTimeline(rec.Events(), g.N(), viz.Style{})
		}
		if schedule.FrameLength > 0 {
			slot1, err := viz.Slot(target, pts, schedule, 1, viz.Style{})
			if err != nil {
				return err
			}
			files[*svg+"-slot1.svg"] = slot1
		}
		names := make([]string, 0, len(files))
		for name := range files {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if err := os.WriteFile(name, []byte(files[name]), 0o644); err != nil {
				return err
			}
			fmt.Fprintln(out, "wrote", name)
		}
	}

	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(schedule); err != nil {
			return err
		}
	} else if *verbose {
		for i, slot := range schedule.Slots {
			fmt.Fprintf(out, "slot %3d:", i+1)
			for _, arc := range slot {
				fmt.Fprintf(out, " %v", arc)
			}
			fmt.Fprintln(out)
		}
	}

	if reg != nil {
		fmt.Fprint(out, "metrics snapshot:\n", reg.Text())
	}
	return nil
}

func buildGraph(in, gen string, n, m, a, b, rows, cols int, side, radius float64, seed int64) (*fdlsp.Graph, []fdlsp.Point, error) {
	if in != "" {
		data, err := os.ReadFile(in)
		if err != nil {
			return nil, nil, err
		}
		// Sniff the format: DIMACS lines start with 'c' or 'p', JSON with
		// '{'; otherwise assume the plain edge list.
		trimmed := strings.TrimLeft(string(data), " \t\r\n")
		switch {
		case strings.HasPrefix(trimmed, "{"):
			var g fdlsp.Graph
			if err := json.Unmarshal(data, &g); err != nil {
				return nil, nil, err
			}
			return &g, nil, nil
		case strings.HasPrefix(trimmed, "c") || strings.HasPrefix(trimmed, "p"):
			g, err := graph.ReadDIMACS(strings.NewReader(string(data)))
			return g, nil, err
		default:
			g, err := graph.ReadEdgeList(strings.NewReader(string(data)))
			return g, nil, err
		}
	}
	rng := rand.New(rand.NewSource(seed))
	switch gen {
	case "udg":
		g, pts := fdlsp.RandomUDG(n, side, radius, rng)
		return g, pts, nil
	case "gnm":
		if m == 0 {
			m = 3 * n
		}
		return fdlsp.ConnectedGNM(n, m, rng), nil, nil
	case "tree":
		return fdlsp.RandomTree(n, rng), nil, nil
	case "complete":
		return fdlsp.Complete(n), nil, nil
	case "bipartite":
		return fdlsp.CompleteBipartite(a, b), nil, nil
	case "cycle":
		return fdlsp.Cycle(n), nil, nil
	case "path":
		return fdlsp.Path(n), nil, nil
	case "grid":
		return fdlsp.Grid(rows, cols), nil, nil
	case "star":
		return fdlsp.Star(n), nil, nil
	default:
		return nil, nil, fmt.Errorf("unknown generator %q", gen)
	}
}

// faultResult carries the fault-specific outcome of a run: which nodes the
// plan actually crashed (still down at termination), the rejoin accounting
// for bounded outages the protocol repaired, and the transport counters.
type faultResult struct {
	crashed   []int
	rejoin    fdlsp.RejoinStats
	transport fdlsp.TransportTotals
}

// faultPlan assembles the CLI fault flags into a FaultPlan, or nil when no
// fault injection was requested. Crash specs are node@time[:restart].
func faultPlan(loss, dup float64, reorder int64, crash string, seed int64) (*fdlsp.FaultPlan, error) {
	var crashes []fdlsp.Crash
	for _, spec := range strings.Split(crash, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		var c fdlsp.Crash
		if _, err := fmt.Sscanf(spec, "%d@%d:%d", &c.Node, &c.At, &c.RestartAt); err != nil {
			if _, err := fmt.Sscanf(spec, "%d@%d", &c.Node, &c.At); err != nil {
				return nil, fmt.Errorf("bad -crash spec %q (want node@time[:restart])", spec)
			}
		}
		crashes = append(crashes, c)
	}
	if loss == 0 && dup == 0 && reorder == 0 && len(crashes) == 0 {
		return nil, nil
	}
	if loss < 0 || loss >= 1 || dup < 0 || dup >= 1 || reorder < 0 {
		return nil, fmt.Errorf("fault rates out of range: loss and dup in [0,1), reorder >= 0")
	}
	return &fdlsp.FaultPlan{Seed: seed, Loss: loss, Dup: dup, Reorder: reorder, Crashes: crashes}, nil
}

func run(g *fdlsp.Graph, algo string, seed int64, rec *fdlsp.TraceRecorder, plan *fdlsp.FaultPlan, topt fdlsp.TransportOptions, reg *fdlsp.MetricsRegistry, workers int) (fdlsp.Assignment, string, *fdlsp.Stats, *faultResult, error) {
	var tracer fdlsp.Tracer
	if rec != nil {
		tracer = rec
	}
	faulty := func(res *fdlsp.Result) *faultResult {
		if plan == nil {
			return nil
		}
		return &faultResult{crashed: res.Crashed, rejoin: res.Rejoin, transport: res.Transport}
	}
	switch algo {
	case "distmis":
		res, err := fdlsp.DistMIS(g, fdlsp.DistMISOptions{Seed: seed, Trace: tracer, Fault: plan, Transport: topt, Metrics: reg, Workers: workers})
		if err != nil {
			return nil, "", nil, nil, err
		}
		return res.Assignment, res.Algorithm, &res.Stats, faulty(res), nil
	case "distmis-general":
		res, err := fdlsp.DistMIS(g, fdlsp.DistMISOptions{Seed: seed, Variant: fdlsp.VariantGeneral, Trace: tracer, Fault: plan, Transport: topt, Metrics: reg, Workers: workers})
		if err != nil {
			return nil, "", nil, nil, err
		}
		return res.Assignment, res.Algorithm, &res.Stats, faulty(res), nil
	case "dfs":
		res, err := fdlsp.DFS(g, fdlsp.DFSOptions{Seed: seed, Trace: tracer, Fault: plan, Transport: topt, Metrics: reg})
		if err != nil {
			return nil, "", nil, nil, err
		}
		return res.Assignment, res.Algorithm, &res.Stats, faulty(res), nil
	}
	if plan != nil {
		return nil, "", nil, nil, fmt.Errorf("algorithm %q does not support fault injection (-loss/-dup/-reorder/-crash)", algo)
	}
	switch algo {
	case "dmgc":
		res, err := fdlsp.DMGC(g)
		if err != nil {
			return nil, "", nil, nil, err
		}
		return res.Assignment, res.Algorithm, nil, nil, nil
	case "randomized":
		res, err := fdlsp.Randomized(g, seed)
		if err != nil {
			return nil, "", nil, nil, err
		}
		return res.Assignment, res.Algorithm, &res.Stats, nil, nil
	case "greedy":
		return fdlsp.GreedySchedule(g), "greedy (sequential reference)", nil, nil, nil
	case "exact":
		as, k, proved := fdlsp.OptimalSlots(g)
		label := fmt.Sprintf("exact optimum (%d slots, proved=%v)", k, proved)
		return as, label, nil, nil, nil
	case "ilp":
		res, err := fdlsp.SolveILP(g, 0)
		if err != nil {
			return nil, "", nil, nil, err
		}
		label := fmt.Sprintf("ILP (optimal=%v, %d B&B nodes)", res.Optimal, res.Nodes)
		return res.Assignment, label, nil, nil, nil
	default:
		return nil, "", nil, nil, fmt.Errorf("unknown algorithm %q", algo)
	}
}

// runComparison schedules the instance with every algorithm and writes a
// side-by-side table to out.
func runComparison(out io.Writer, g *fdlsp.Graph, seed int64) error {
	fmt.Fprintf(out, "%-28s %6s %9s %10s\n", "algorithm", "slots", "rounds", "messages")
	row := func(name string, slots int, rounds, msgs int64, as fdlsp.Assignment) error {
		if !fdlsp.Valid(g, as) {
			return fmt.Errorf("%s produced an invalid schedule", name)
		}
		if rounds == 0 && msgs == 0 {
			fmt.Fprintf(out, "%-28s %6d %9s %10s\n", name, slots, "-", "-")
		} else {
			fmt.Fprintf(out, "%-28s %6d %9d %10d\n", name, slots, rounds, msgs)
		}
		return nil
	}
	r, err := fdlsp.DistMIS(g, fdlsp.DistMISOptions{Seed: seed})
	if err != nil {
		return err
	}
	if err := row(r.Algorithm, r.Slots, r.Stats.Rounds, r.Stats.Messages, r.Assignment); err != nil {
		return err
	}
	r, err = fdlsp.DistMIS(g, fdlsp.DistMISOptions{Seed: seed, Variant: fdlsp.VariantGeneral})
	if err != nil {
		return err
	}
	if err := row(r.Algorithm, r.Slots, r.Stats.Rounds, r.Stats.Messages, r.Assignment); err != nil {
		return err
	}
	r, err = fdlsp.DFS(g, fdlsp.DFSOptions{Seed: seed})
	if err != nil {
		return err
	}
	if err := row(r.Algorithm, r.Slots, r.Stats.Rounds, r.Stats.Messages, r.Assignment); err != nil {
		return err
	}
	r, err = fdlsp.Randomized(g, seed)
	if err != nil {
		return err
	}
	if err := row(r.Algorithm, r.Slots, r.Stats.Rounds, r.Stats.Messages, r.Assignment); err != nil {
		return err
	}
	r, err = fdlsp.DMGC(g)
	if err != nil {
		return err
	}
	if err := row(r.Algorithm, r.Slots, 0, 0, r.Assignment); err != nil {
		return err
	}
	r, err = fdlsp.DMGCVizingDistributed(g, seed)
	if err != nil {
		return err
	}
	if err := row(r.Algorithm, r.Slots, r.Stats.Rounds, r.Stats.Messages, r.Assignment); err != nil {
		return err
	}
	greedy := fdlsp.GreedySchedule(g)
	if err := row("greedy (centralized ref)", greedy.NumColors(), 0, 0, greedy); err != nil {
		return err
	}
	improved := fdlsp.ImproveSchedule(g, greedy, 9, seed)
	return row("greedy + offline improve", improved.NumColors(), 0, 0, improved)
}
