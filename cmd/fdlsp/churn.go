package main

import (
	"fmt"
	"io"

	"fdlsp"
)

// churnFlags carries the -churn* flag values from cliMain.
type churnFlags struct {
	epochs     int
	n          int
	side       float64
	radius     float64
	seed       int64
	loss       float64
	init       string
	moveRate   float64
	crashRate  float64
	leaveRate  float64
	probeEvery int64
	report     int
	metrics    bool
}

// runChurn drives a bounded churn soak and writes a live summary table:
// one row per reporting interval, one line per protocol-level reschedule,
// and the aggregate at the end. Output is a pure function of the flags.
func runChurn(out io.Writer, cf churnFlags) error {
	cfg := fdlsp.ChurnConfig{
		Seed: cf.seed, N: cf.n, Side: cf.side, Radius: cf.radius,
		MoveRate: cf.moveRate, CrashRate: cf.crashRate, LeaveRate: cf.leaveRate,
		Init: fdlsp.ChurnInit(cf.init), Loss: cf.loss, ProbeEvery: cf.probeEvery,
	}
	var reg *fdlsp.MetricsRegistry
	if cf.metrics {
		reg = fdlsp.NewMetricsRegistry()
		cfg.Metrics = reg
	}
	s, err := fdlsp.NewChurnSoak(cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "churn soak: n=%d epochs=%d seed=%d loss=%.2f init=%s move=%.2f crash=%.2f leave=%.2f\n",
		cf.n, cf.epochs, cf.seed, cf.loss, cf.init, cf.moveRate, cf.crashRate, cf.leaveRate)
	fmt.Fprintf(out, "%6s %5s %6s %6s %6s %5s %11s %6s\n",
		"epoch", "live", "links", "churn", "dirty", "conv", "min-usable", "slots")

	every := cf.report
	if every <= 0 {
		every = cf.epochs / 20
	}
	if every < 1 {
		every = 1
	}
	sum := fdlsp.ChurnSummary{MinUsable: 1}
	for i := 0; i < cf.epochs; i++ {
		rep, err := s.Step()
		if err != nil {
			return err
		}
		churn := rep.Crashes + rep.Restarts + rep.Leaves + rep.Joins +
			rep.Moves + rep.LinksUp + rep.LinksDown
		sum.Epochs++
		sum.TotalPerturbations += int64(churn)
		if rep.ConvergenceRounds > sum.MaxConvergence {
			sum.MaxConvergence = rep.ConvergenceRounds
		}
		sum.SumConvergence += int64(rep.ConvergenceRounds)
		if rep.MinUsable < sum.MinUsable {
			sum.MinUsable = rep.MinUsable
		}
		sum.FinalSlots, sum.FinalLive = rep.Slots, rep.Live
		if (i+1)%every == 0 || i == cf.epochs-1 || rep.EngineProbe != nil {
			fmt.Fprintf(out, "%6d %5d %6d %6d %6d %5d %11.3f %6d\n",
				rep.Epoch, rep.Live, s.Graph().M(), churn,
				rep.DirtyArcs, rep.ConvergenceRounds, rep.MinUsable, rep.Slots)
		}
		if pr := rep.EngineProbe; pr != nil {
			sum.EngineProbes++
			fmt.Fprintf(out, "       reschedule@%d: %d rounds, %d msgs, %d returned, converged@%d, %d slots\n",
				pr.Epoch, pr.Rounds, pr.Messages, pr.Returned, pr.ConvergedAt, pr.Slots)
		}
	}
	fmt.Fprintf(out, "summary: %d epochs, %d perturbations, convergence mean %.2f max %d rounds, min usable %.3f, %d reschedules\n",
		sum.Epochs, sum.TotalPerturbations, sum.MeanConvergence(), sum.MaxConvergence,
		sum.MinUsable, sum.EngineProbes)
	fmt.Fprintf(out, "final: live=%d slots=%d, schedule valid every epoch\n", sum.FinalLive, sum.FinalSlots)
	if reg != nil {
		fmt.Fprint(out, "metrics snapshot:\n", reg.Text())
	}
	return nil
}
