package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update rewrites the golden files from the current output:
//
//	go test ./cmd/fdlsp -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

// golden invocations: small deterministic instances covering the main
// report, the verbose slot table, JSON output, the comparison table, and
// the -metrics snapshot. Every case must be fully seed-deterministic.
var goldenCases = []struct {
	name string
	args []string
}{
	{"distmis_grid", []string{"-gen", "grid", "-rows", "4", "-cols", "4", "-algo", "distmis", "-seed", "7"}},
	{"dfs_path_verbose", []string{"-gen", "path", "-n", "8", "-algo", "dfs", "-seed", "3", "-v"}},
	{"greedy_complete_json", []string{"-gen", "complete", "-n", "5", "-algo", "greedy", "-json"}},
	{"compare_cycle", []string{"-gen", "cycle", "-n", "9", "-algo", "distmis", "-seed", "2", "-compare"}},
	{"metrics_grid", []string{"-gen", "grid", "-rows", "3", "-cols", "3", "-algo", "distmis", "-seed", "1", "-metrics"}},
	{"metrics_dfs_tree", []string{"-gen", "tree", "-n", "10", "-algo", "dfs", "-seed", "5", "-metrics"}},
	{"churn_soak", []string{"-churn", "40", "-n", "20", "-seed", "9", "-loss", "0.1", "-churn-probe", "20", "-churn-report", "10"}},
	{"churn_conflict_metrics", []string{"-churn", "12", "-n", "16", "-seed", "2", "-churn-init", "conflict", "-churn-report", "4", "-metrics"}},
}

func TestGolden(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := cliMain(tc.args, &buf); err != nil {
				t.Fatalf("cliMain(%v): %v", tc.args, err)
			}
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("output drifted from %s (re-run with -update if intended)\n--- got ---\n%s\n--- want ---\n%s",
					golden, buf.String(), want)
			}
		})
	}
}

// TestMetricsSnapshotDeterministic runs the same seeded instance twice and
// requires byte-identical output including the registry snapshot — the
// tentpole's per-seed determinism contract at the CLI surface.
func TestMetricsSnapshotDeterministic(t *testing.T) {
	args := []string{"-gen", "grid", "-rows", "4", "-cols", "3", "-algo", "distmis", "-seed", "11", "-metrics"}
	var a, b bytes.Buffer
	if err := cliMain(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := cliMain(args, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two runs of the same seed produced different -metrics output")
	}
}

// TestWorkersFlagInvariant pins the -workers contract at the CLI surface:
// the full output — schedule, stats, metrics snapshot — is byte-identical
// whether the sync engine runs serial or on an oversubscribed worker pool.
func TestWorkersFlagInvariant(t *testing.T) {
	base := []string{"-gen", "gnm", "-n", "40", "-algo", "distmis", "-seed", "5", "-metrics", "-loss", "0.1"}
	var serial bytes.Buffer
	if err := cliMain(append([]string{"-workers", "1"}, base...), &serial); err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"0", "4", "8"} {
		var buf bytes.Buffer
		if err := cliMain(append([]string{"-workers", w}, base...), &buf); err != nil {
			t.Fatalf("-workers %s: %v", w, err)
		}
		if !bytes.Equal(serial.Bytes(), buf.Bytes()) {
			t.Errorf("-workers %s output differs from -workers 1", w)
		}
	}
}

// TestMetricsFlagCoversFamilies sanity-checks the snapshot carries the
// core and sim families after a distmis run.
func TestMetricsFlagCoversFamilies(t *testing.T) {
	var buf bytes.Buffer
	if err := cliMain([]string{"-gen", "star", "-n", "6", "-algo", "distmis", "-metrics"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"metrics snapshot:",
		`fdlsp_core_runs_total{algorithm="distmis"} 1`,
		`fdlsp_sim_runs_total{engine="sync"}`,
		"# TYPE fdlsp_transport_segments_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-metrics output missing %q", want)
		}
	}
}

func TestCLIErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := cliMain([]string{"-gen", "nope"}, &buf); err == nil {
		t.Error("unknown generator accepted")
	}
	if err := cliMain([]string{"-gen", "path", "-n", "4", "-algo", "nope"}, &buf); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := cliMain([]string{"-gen", "path", "-n", "4", "-algo", "greedy", "-loss", "0.5"}, &buf); err == nil {
		t.Error("fault injection on unsupported algorithm accepted")
	}
	if err := cliMain([]string{"-crash", "zap"}, &buf); err == nil {
		t.Error("bad crash spec accepted")
	}
	if err := cliMain([]string{"-churn", "5", "-churn-init", "nope"}, &buf); err == nil {
		t.Error("bad churn init mode accepted")
	}
	if err := cliMain([]string{"-churn", "5", "-churn-crash", "1.5"}, &buf); err == nil {
		t.Error("out-of-range churn crash rate accepted")
	}
}

// TestChurnSnapshotDeterministic reruns a seeded soak with -metrics and
// requires byte-identical output — the soak's determinism contract at the
// CLI surface.
func TestChurnSnapshotDeterministic(t *testing.T) {
	args := []string{"-churn", "30", "-n", "18", "-seed", "6", "-loss", "0.1",
		"-churn-probe", "15", "-metrics"}
	var a, b bytes.Buffer
	if err := cliMain(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := cliMain(args, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two runs of the same churn seed produced different output")
	}
	for _, want := range []string{"reschedule@15", "fdlsp_soak_epochs_total 30", "fdlsp_soak_engine_probes_total 1"} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("churn output missing %q", want)
		}
	}
}
