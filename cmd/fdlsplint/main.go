// Command fdlsplint runs the repository's determinism and ownership
// analyzers (internal/lint) over the module and exits nonzero on findings.
//
// Usage:
//
//	go run ./cmd/fdlsplint [-only detrand,mapiter] [pattern ...]
//
// Patterns are package directories relative to the module root; "dir/..."
// expands recursively and the default is "./...". Diagnostics print as
//
//	file:line:col: [analyzer] message
//
// and are suppressed by `//lint:ignore <analyzer> <reason>` on the
// reported line or the line above. The detrand analyzer applies only to
// packages under internal/ — the protocol, simulation, and analysis code
// whose runs must be reproducible per seed; commands may read the clock.
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"fdlsp/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated subset of analyzers to run")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			fatalf("unknown analyzer %q (see -list)", name)
		}
		analyzers = sel
	}

	root, module, err := findModule()
	if err != nil {
		fatalf("%v", err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		fatalf("%v", err)
	}

	importPaths := make(map[string]string, len(dirs)) // dir -> import path
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			fatalf("%v", err)
		}
		if rel == "." {
			importPaths[dir] = module
		} else {
			importPaths[dir] = module + "/" + filepath.ToSlash(rel)
		}
	}

	// Load in dependency order so the loader's import cache is already
	// seeded with a package's module-local imports when it is typechecked —
	// each package (and the stdlib) is then checked exactly once per run.
	// Diagnostics still print in the stable alphabetical directory order.
	loader := lint.NewLoader()
	lines := make(map[string][]string, len(dirs))
	exit := 0
	for _, dir := range dependencyOrder(dirs, importPaths) {
		importPath := importPaths[dir]
		pkg, err := loader.LoadDir(dir, importPath)
		if err != nil {
			fatalf("%v", err)
		}
		diags, err := lint.Run(pkg, scoped(analyzers, importPath, module))
		if err != nil {
			fatalf("%v", err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			file := pos.Filename
			if r, err := filepath.Rel(root, file); err == nil {
				file = r
			}
			lines[dir] = append(lines[dir],
				fmt.Sprintf("%s:%d:%d: [%s] %s", file, pos.Line, pos.Column, d.Analyzer, d.Message))
			exit = 1
		}
	}
	for _, dir := range dirs {
		for _, line := range lines[dir] {
			fmt.Println(line)
		}
	}
	os.Exit(exit)
}

// dependencyOrder sorts the package directories so module-local imports
// come before their importers (ties and unrelated packages stay in the
// incoming alphabetical order). Import lists are read with a cheap
// imports-only parse; cycles cannot occur in compilable Go, and if the
// parse fails the directory is simply ordered as-is — LoadDir will report
// the real error.
func dependencyOrder(dirs []string, importPaths map[string]string) []string {
	byPath := make(map[string]string, len(dirs)) // import path -> dir
	for dir, path := range importPaths {
		byPath[path] = dir
	}
	imports := make(map[string][]string, len(dirs)) // dir -> module-local import dirs
	fset := token.NewFileSet()
	for _, dir := range dirs {
		ents, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		seen := map[string]bool{}
		for _, e := range ents {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") ||
				strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
			if err != nil {
				continue
			}
			for _, spec := range f.Imports {
				path, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					continue
				}
				if dep, ok := byPath[path]; ok && dep != dir && !seen[dep] {
					seen[dep] = true
					imports[dir] = append(imports[dir], dep)
				}
			}
		}
		sort.Strings(imports[dir])
	}
	ordered := make([]string, 0, len(dirs))
	state := make(map[string]int, len(dirs)) // 0 new, 1 visiting, 2 done
	var visit func(dir string)
	visit = func(dir string) {
		if state[dir] != 0 {
			return
		}
		state[dir] = 1
		for _, dep := range imports[dir] {
			visit(dep)
		}
		state[dir] = 2
		ordered = append(ordered, dir)
	}
	for _, dir := range dirs {
		visit(dir)
	}
	return ordered
}

// scoped restricts detrand to internal/ packages: protocol and analysis
// code must be seed-deterministic, while commands (timers, servers) are
// entitled to the wall clock.
func scoped(analyzers []*lint.Analyzer, importPath, module string) []*lint.Analyzer {
	if strings.HasPrefix(importPath, module+"/internal/") {
		return analyzers
	}
	var out []*lint.Analyzer
	for _, a := range analyzers {
		if a.Name != lint.DetRand.Name {
			out = append(out, a)
		}
	}
	return out
}

// findModule locates the enclosing go.mod (walking up from the working
// directory) and returns its directory and module path.
func findModule() (root, module string, err error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("fdlsplint: no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("fdlsplint: no go.mod found (run inside the module)")
		}
		dir = parent
	}
}

// expandPatterns resolves the command-line patterns into package
// directories, skipping testdata, vendor, hidden, and underscore dirs.
func expandPatterns(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
			if pat == "." || pat == "" {
				pat = root
			}
		}
		if !filepath.IsAbs(pat) {
			pat = filepath.Join(root, pat)
		}
		if !recursive {
			// An explicitly named directory must exist and contain Go files;
			// only the recursive walk skips silently.
			if st, err := os.Stat(pat); err != nil {
				return nil, err
			} else if !st.IsDir() {
				return nil, fmt.Errorf("%s is not a directory", pat)
			}
			if !hasGoFiles(pat) {
				return nil, fmt.Errorf("no Go files in %s", pat)
			}
			add(pat)
			continue
		}
		err := filepath.WalkDir(pat, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != pat && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "fdlsplint: "+format+"\n", args...)
	os.Exit(2)
}
