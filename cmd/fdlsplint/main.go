// Command fdlsplint runs the repository's determinism and ownership
// analyzers (internal/lint) over the module and exits nonzero on findings.
//
// Usage:
//
//	go run ./cmd/fdlsplint [-only detrand,mapiter] [-json] [pattern ...]
//
// Patterns are package directories relative to the module root; "dir/..."
// expands recursively and the default is "./...". Diagnostics print as
//
//	file:line:col: [analyzer] message
//
// or, with -json, as a JSON array of {file, line, col, analyzer, message}
// objects for machine consumption. Diagnostics are suppressed by
// `//lint:ignore <analyzer> <reason>` on the reported line or the line
// above; a directive that suppresses nothing is itself reported (analyzer
// "lint") so the escape-hatch inventory cannot silently go stale. The
// detrand analyzer applies only to packages under internal/ — the
// protocol, simulation, and analysis code whose runs must be reproducible
// per seed; commands may read the clock.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"fdlsp/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// jsonDiagnostic is the machine-readable form of one finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// run is the driver body, factored out of main for testing. It returns the
// process exit code: 0 clean, 1 findings, 2 usage or load error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fdlsplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated subset of analyzers to run")
	list := fs.Bool("list", false, "list analyzers and exit")
	asJSON := fs.Bool("json", false, "emit diagnostics as a JSON array")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "fdlsplint: "+format+"\n", a...)
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *only != "" {
		want := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
		var sel []*lint.Analyzer
		for _, a := range analyzers {
			if want[a.Name] {
				sel = append(sel, a)
				delete(want, a.Name)
			}
		}
		for name := range want {
			return fail("unknown analyzer %q (see -list)", name)
		}
		analyzers = sel
	}

	wd, err := os.Getwd()
	if err != nil {
		return fail("%v", err)
	}
	root, module, err := lint.FindModule(wd)
	if err != nil {
		return fail("%v", err)
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := lint.ExpandPatterns(root, patterns)
	if err != nil {
		return fail("%v", err)
	}

	importPaths := make(map[string]string, len(dirs)) // dir -> import path
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return fail("%v", err)
		}
		if rel == "." {
			importPaths[dir] = module
		} else {
			importPaths[dir] = module + "/" + filepath.ToSlash(rel)
		}
	}

	// Load in dependency order so the loader's import cache is already
	// seeded with a package's module-local imports when it is typechecked —
	// each package (and the stdlib) is then checked exactly once per run.
	// Diagnostics still print in the stable alphabetical directory order.
	loader := lint.NewLoader()
	found := make(map[string][]jsonDiagnostic, len(dirs))
	exit := 0
	for _, dir := range lint.DependencyOrder(dirs, importPaths) {
		importPath := importPaths[dir]
		pkg, err := loader.LoadDir(dir, importPath)
		if err != nil {
			return fail("%v", err)
		}
		diags, err := lint.RunWith(pkg, scoped(analyzers, importPath, module),
			lint.RunOptions{ReportUnused: true})
		if err != nil {
			return fail("%v", err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			file := pos.Filename
			if r, err := filepath.Rel(root, file); err == nil {
				file = filepath.ToSlash(r)
			}
			found[dir] = append(found[dir], jsonDiagnostic{
				File: file, Line: pos.Line, Col: pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
			exit = 1
		}
	}

	if *asJSON {
		all := []jsonDiagnostic{}
		for _, dir := range dirs {
			all = append(all, found[dir]...)
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(all); err != nil {
			return fail("%v", err)
		}
		return exit
	}
	for _, dir := range dirs {
		for _, d := range found[dir] {
			fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message)
		}
	}
	return exit
}

// scoped restricts detrand to internal/ packages: protocol and analysis
// code must be seed-deterministic, while commands (timers, servers) are
// entitled to the wall clock.
func scoped(analyzers []*lint.Analyzer, importPath, module string) []*lint.Analyzer {
	if strings.HasPrefix(importPath, module+"/internal/") {
		return analyzers
	}
	var out []*lint.Analyzer
	for _, a := range analyzers {
		if a.Name != lint.DetRand.Name {
			out = append(out, a)
		}
	}
	return out
}
