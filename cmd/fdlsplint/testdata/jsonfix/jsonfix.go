// Package jsonfix is a driver fixture with a known diagnostic surface: one
// envowner escape and one stale suppression directive. The golden JSON
// output in ../jsonfix.golden pins the machine-readable format.
package jsonfix

// AsyncEnv mirrors the simulator's per-node handle; envowner matches the
// type name.
type AsyncEnv struct{ id int }

type holder struct{ env *AsyncEnv }

var shared holder

// stash leaks the caller's env handle into package state.
func stash(env *AsyncEnv) {
	shared.env = env
}

// clean carries a directive that suppresses nothing; the driver reports it
// as stale.
func clean() int {
	x := 1
	//lint:ignore mapiter deliberately stale for the golden test
	return x
}
