package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current output")

// TestRunJSONGolden pins the machine-readable output format: running the
// full suite over the jsonfix fixture must reproduce the golden JSON
// byte-for-byte (file, line, col, analyzer, message per finding, including
// the stale-directive report) and exit 1.
func TestRunJSONGolden(t *testing.T) {
	var out, errs bytes.Buffer
	code := run([]string{"-json", "cmd/fdlsplint/testdata/jsonfix"}, &out, &errs)
	if code != 1 {
		t.Fatalf("run exit = %d, want 1 (fixture has findings); stderr: %s", code, errs.String())
	}
	if errs.Len() != 0 {
		t.Errorf("unexpected stderr: %s", errs.String())
	}

	golden := filepath.Join("testdata", "jsonfix.golden")
	if *update {
		if err := os.WriteFile(golden, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(want) {
		t.Errorf("JSON output does not match %s (re-run with -update after intended changes)\n got:\n%s\nwant:\n%s",
			golden, out.String(), want)
	}

	// The golden bytes must also be a well-formed array of the documented
	// object shape — guards against a hand-edited golden drifting from what
	// consumers parse.
	var parsed []jsonDiagnostic
	if err := json.Unmarshal(out.Bytes(), &parsed); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(parsed) != 2 {
		t.Fatalf("want 2 diagnostics, got %d", len(parsed))
	}
	for _, d := range parsed {
		if d.File == "" || d.Line == 0 || d.Col == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("diagnostic with empty field: %+v", d)
		}
		if filepath.IsAbs(d.File) {
			t.Errorf("file path should be module-relative, got %q", d.File)
		}
	}
}

// TestRunJSONCleanIsEmptyArray: a run with no findings emits a valid empty
// JSON array (not "null") and exits 0. Selecting only detrand over a
// non-internal package yields an empty analyzer set, and the partial run
// must not condemn the fixture's stale mapiter directive — unused
// reporting is scoped to analyzers that actually ran.
func TestRunJSONCleanIsEmptyArray(t *testing.T) {
	var out, errs bytes.Buffer
	code := run([]string{"-json", "-only", "detrand", "cmd/fdlsplint/testdata/jsonfix"}, &out, &errs)
	if code != 0 {
		t.Fatalf("run exit = %d, want 0; stdout: %s stderr: %s", code, out.String(), errs.String())
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("clean JSON output = %q, want []", got)
	}
}

// TestRunList exercises -list: every analyzer name appears and the exit is 0.
func TestRunList(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run([]string{"-list"}, &out, &errs); code != 0 {
		t.Fatalf("run -list exit = %d; stderr: %s", code, errs.String())
	}
	for _, name := range []string{"detrand", "envowner", "mapiter", "msgshare", "pooledlife"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %s:\n%s", name, out.String())
		}
	}
}

// TestRunUnknownAnalyzer: a bogus -only selection is a usage error (exit 2)
// reported on stderr.
func TestRunUnknownAnalyzer(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run([]string{"-only", "nope"}, &out, &errs); code != 2 {
		t.Fatalf("run exit = %d, want 2", code)
	}
	if !strings.Contains(errs.String(), "unknown analyzer") {
		t.Errorf("stderr should name the unknown analyzer, got: %s", errs.String())
	}
}
