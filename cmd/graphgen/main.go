// Command graphgen generates network instances (unit disk graphs, random
// general graphs, trees and the fixed families) and writes them as edge
// lists or JSON, for feeding to cmd/fdlsp or external tools.
//
// Usage examples:
//
//	graphgen -gen udg -n 300 -side 20 -radius 0.5 -seed 3 > net.txt
//	graphgen -gen gnm -n 500 -m 3000 -format json > net.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"fdlsp"
)

func main() {
	var (
		gen    = flag.String("gen", "udg", "generator: udg|gnm|tree|complete|bipartite|cycle|path|grid|star")
		n      = flag.Int("n", 100, "node count")
		m      = flag.Int("m", 0, "edge count (gnm; 0 = 3n)")
		a      = flag.Int("a", 3, "first part size (bipartite)")
		b      = flag.Int("b", 3, "second part size (bipartite)")
		rows   = flag.Int("rows", 5, "grid rows")
		cols   = flag.Int("cols", 5, "grid cols")
		side   = flag.Float64("side", 15, "UDG plan side")
		radius = flag.Float64("radius", 0.5, "UDG radius")
		seed   = flag.Int64("seed", 1, "random seed")
		format = flag.String("format", "edgelist", "output: edgelist|json|dimacs")
	)
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	var g *fdlsp.Graph
	switch *gen {
	case "udg":
		g, _ = fdlsp.RandomUDG(*n, *side, *radius, rng)
	case "gnm":
		mm := *m
		if mm == 0 {
			mm = 3 * *n
		}
		g = fdlsp.ConnectedGNM(*n, mm, rng)
	case "tree":
		g = fdlsp.RandomTree(*n, rng)
	case "complete":
		g = fdlsp.Complete(*n)
	case "bipartite":
		g = fdlsp.CompleteBipartite(*a, *b)
	case "cycle":
		g = fdlsp.Cycle(*n)
	case "path":
		g = fdlsp.Path(*n)
	case "grid":
		g = fdlsp.Grid(*rows, *cols)
	case "star":
		g = fdlsp.Star(*n)
	default:
		fmt.Fprintf(os.Stderr, "graphgen: unknown generator %q\n", *gen)
		os.Exit(1)
	}

	switch *format {
	case "edgelist":
		if err := g.WriteEdgeList(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
	case "json":
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(g); err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
	case "dimacs":
		if err := g.WriteDIMACS(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "graphgen: unknown format %q\n", *format)
		os.Exit(1)
	}
}
