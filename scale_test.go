package fdlsp_test

import (
	"math/rand"
	"testing"

	"fdlsp"
)

// TestScaleSoak validates the full pipeline at a scale beyond the paper's
// evaluation (1000-node fields): both distributed algorithms stay valid,
// within bounds, and DFS stays linear in rounds. Skipped under -short.
func TestScaleSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test; run without -short")
	}
	rng := rand.New(rand.NewSource(2024))
	g, _ := fdlsp.RandomUDG(1000, 30, 1.5, rng)
	t.Logf("soak graph: n=%d m=%d Δ=%d", g.N(), g.M(), g.MaxDegree())

	dm, err := fdlsp.DistMIS(g, fdlsp.DistMISOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !fdlsp.Valid(g, dm.Assignment) {
		t.Fatal("distMIS invalid at scale")
	}
	if dm.Slots < fdlsp.LowerBound(g) || dm.Slots > fdlsp.UpperBound(g) {
		t.Fatalf("distMIS %d slots outside bounds [%d,%d]", dm.Slots, fdlsp.LowerBound(g), fdlsp.UpperBound(g))
	}

	df, err := fdlsp.DFS(g, fdlsp.DFSOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !fdlsp.Valid(g, df.Assignment) {
		t.Fatal("DFS invalid at scale")
	}
	// The constant accounts for the per-turn announce/ack barrier (each
	// token turn costs O(1) virtual time: ask/reply plus a TTL-bounded
	// acknowledged flood), observed ~14.5 rounds/node at this scale. The
	// schedule is byte-deterministic per seed but Rounds is not (virtual
	// clocks also advance on duplicate flood deliveries, whose order
	// depends on goroutine scheduling), so leave real headroom.
	if df.Stats.Rounds > int64(20*g.N()) {
		t.Fatalf("DFS rounds %d not linear at scale", df.Stats.Rounds)
	}

	// The operational layers hold up too.
	frame, err := fdlsp.BuildSchedule(g, df.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	if col := frame.RadioCheck(g); len(col) != 0 {
		t.Fatalf("radio collision at scale: %v", col[0])
	}
	t.Logf("distMIS: %d slots in %d rounds; DFS: %d slots in %d rounds",
		dm.Slots, dm.Stats.Rounds, df.Slots, df.Stats.Rounds)
}
