package fdlsp_test

import (
	"strings"
	"testing"

	"fdlsp"
)

// TestMetricsFacade exercises the public observability surface: a registry
// handed into a run collects the core/sim/transport families, renders
// deterministically, and exposes the structured snapshot.
func TestMetricsFacade(t *testing.T) {
	reg := fdlsp.NewMetricsRegistry()
	fdlsp.RegisterMetrics(reg)
	g := fdlsp.Grid(4, 4)
	res, err := fdlsp.DistMIS(g, fdlsp.DistMISOptions{Seed: 3, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	text := reg.Text()
	if !strings.Contains(text, `fdlsp_core_runs_total{algorithm="distmis"} 1`) {
		t.Error("run not recorded in registry")
	}
	if !strings.Contains(text, `fdlsp_sim_runs_total{engine="sync"}`) {
		t.Error("engine family missing")
	}
	var slots float64
	for _, fam := range reg.Snapshot() {
		if fam.Name == "fdlsp_core_slots" {
			for _, s := range fam.Series {
				slots = s.Value
			}
		}
	}
	if int(slots) != res.Slots {
		t.Errorf("snapshot slots gauge %v, run reported %d", slots, res.Slots)
	}

	// Determinism across runs of the same seed.
	reg2 := fdlsp.NewMetricsRegistry()
	fdlsp.RegisterMetrics(reg2)
	if _, err := fdlsp.DistMIS(g, fdlsp.DistMISOptions{Seed: 3, Metrics: reg2}); err != nil {
		t.Fatal(err)
	}
	if reg2.Text() != text {
		t.Error("same seed produced a different registry snapshot")
	}
}
