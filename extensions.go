package fdlsp

import (
	"math/rand"

	"fdlsp/internal/broadcast"
	"fdlsp/internal/coloring"
	"fdlsp/internal/conformance"
	"fdlsp/internal/core"
	"fdlsp/internal/cv"
	"fdlsp/internal/dmgc"
	"fdlsp/internal/dynamic"
	"fdlsp/internal/energy"
	"fdlsp/internal/geom"
	"fdlsp/internal/incr"
	"fdlsp/internal/opt"
	"fdlsp/internal/sched"
	"fdlsp/internal/sim"
	"fdlsp/internal/traffic"
	"fdlsp/internal/viz"
	"fdlsp/internal/weighted"
)

// This file exposes the extension layers built on top of the paper's core:
// the randomized algorithm the paper reports attempting, fault-tolerant
// schedule maintenance (the paper's future work), the quasi-UDG network
// model, broadcast scheduling for the Section 1 comparison, and the SINR
// physical-model validation.

// Randomized runs the randomized synchronous algorithm (no MIS
// coordination; repeated feasible color gambles with priority conflict
// resolution). Per the paper's observation it tends to produce longer
// schedules than DistMIS at comparable speed — kept as an ablation.
func Randomized(g *Graph, seed int64) (*Result, error) { return core.Randomized(g, seed) }

// Dynamic schedule maintenance -------------------------------------------------

type (
	// DynamicNetwork maintains a valid FDLSP schedule under topology churn
	// with local repairs.
	DynamicNetwork = dynamic.Network
	// TopologyEvent is one churn event (link up/down, node join/fail/move).
	TopologyEvent = dynamic.Event
	// TopologyEventKind discriminates TopologyEvent.
	TopologyEventKind = dynamic.EventKind
	// RepairStats accumulates incremental-repair cost.
	RepairStats = dynamic.RepairStats
)

// Topology event kinds.
const (
	EventLinkUp   = dynamic.LinkUp
	EventLinkDown = dynamic.LinkDown
	EventNodeFail = dynamic.NodeFail
	EventNodeJoin = dynamic.NodeJoin
	EventNodeMove = dynamic.NodeMove
)

// NewDynamic wraps a valid schedule for incremental maintenance.
func NewDynamic(g *Graph, as Assignment) (*DynamicNetwork, error) { return dynamic.New(g, as) }

// Incremental rescheduling service ---------------------------------------------

type (
	// IncrementalUpdater is a long-lived schedule that accepts batches of
	// topology deltas and answers each with the minimal recolor set plus the
	// repair-round count — the engine behind fdlspd's session API.
	IncrementalUpdater = incr.Updater
	// UpdateReport is the outcome of one applied batch.
	UpdateReport = incr.Report
	// ArcSlot is one arc→slot binding of a recolor delta.
	ArcSlot = incr.ArcSlot
)

// ErrBadDelta marks client-side validation failures of an update batch
// (errors.Is-matchable through IncrementalUpdater.Apply errors).
var ErrBadDelta = incr.ErrBadDelta

// NewIncremental wraps a valid schedule for batched incremental
// rescheduling; failed batches roll back atomically.
func NewIncremental(g *Graph, as Assignment) (*IncrementalUpdater, error) { return incr.New(g, as) }

// StabilizeSchedule repairs as from the given dirty set with the shared
// distributed-round local rule (≤|dirty| rounds; see DESIGN.md §11/§12),
// returning the round count and the worst usable-frame fraction observed
// while repair was in progress. The dirty map is consumed.
func StabilizeSchedule(g *Graph, as Assignment, dirty map[Arc]bool) (rounds int, minUsable float64, err error) {
	return coloring.Stabilize(g, as, dirty)
}

// Quasi unit disk graphs and growth bounds -------------------------------------

// RandomQUDG places n sensors in a side×side plan and links them under the
// quasi unit disk model: certain within alpha·radius, never beyond radius,
// probability p in between.
func RandomQUDG(n int, side, radius, alpha, p float64, rng *rand.Rand) (*Graph, []Point) {
	return geom.RandomQUDG(n, side, radius, alpha, p, rng)
}

// QuasiUnitDisk builds the QUDG of an explicit placement.
func QuasiUnitDisk(pts []Point, radius, alpha, p float64, rng *rand.Rand) *Graph {
	return geom.QuasiUnitDisk(pts, radius, alpha, p, rng)
}

// GrowthBound empirically measures the growth-bounding function f(r) of a
// graph (the paper's network-model assumption): the largest independent set
// packed in any radius-r ball, for r = 1..maxR.
func GrowthBound(g *Graph, maxR int) []int { return geom.GrowthBound(g, maxR) }

// Broadcast scheduling ----------------------------------------------------------

// BroadcastGreedy computes a centralized distance-2 node coloring (TDMA
// broadcast schedule), the scheme the paper's introduction compares link
// scheduling against.
func BroadcastGreedy(g *Graph) []int { return broadcast.Greedy(g) }

// BroadcastDistributed computes the broadcast schedule distributedly with
// iterated radius-2 MIS competitions (drawer nil = Luby).
func BroadcastDistributed(g *Graph, seed int64, drawer MISDrawer) ([]int, Stats, error) {
	return broadcast.Distributed(g, seed, drawer)
}

// BroadcastVerify checks a broadcast schedule (distance-2 node coloring).
func BroadcastVerify(g *Graph, colors []int) bool {
	ok, _ := broadcast.Verify(g, colors)
	return ok
}

// BroadcastSlots returns a broadcast schedule's frame length.
func BroadcastSlots(colors []int) int { return broadcast.Slots(colors) }

// BroadcastLinkServiceSlots returns the slots broadcast scheduling needs to
// serve every directed link once (frame · Δ) — the apples-to-apples
// comparison with an FDLSP frame.
func BroadcastLinkServiceSlots(g *Graph, colors []int) int {
	return broadcast.LinkServiceSlots(g, colors)
}

// SINR physical model ------------------------------------------------------------

type (
	// SINRParams parameterizes the physical channel model.
	SINRParams = sched.SINRParams
	// SINRViolation is one failed reception under the physical model.
	SINRViolation = sched.SINRViolation
)

// DefaultSINRParams returns a conventional SINR parameterization (α=4).
func DefaultSINRParams() SINRParams { return sched.DefaultSINRParams() }

// Traffic simulation --------------------------------------------------------------

type (
	// Flow is a unicast traffic demand over the scheduled network.
	Flow = traffic.Flow
	// TrafficResult reports delivery, latency and queueing of a simulation.
	TrafficResult = traffic.Result
)

// SimulateTraffic routes the flows over shortest paths and forwards packets
// slot by slot, exactly when the TDMA frame schedules each next-hop link.
func SimulateTraffic(g *Graph, s *Schedule, flows []Flow, maxFrames int) (*TrafficResult, error) {
	return traffic.Simulate(g, s, flows, maxFrames)
}

// ConvergecastFlows is the canonical sensor-network demand: one packet from
// every node to the sink.
func ConvergecastFlows(g *Graph, sink int) []Flow { return traffic.ConvergecastFlows(g, sink) }

// NextHops returns shortest-path next hops toward dst (-1 when unreachable).
func NextHops(g *Graph, dst int) []int { return traffic.NextHops(g, dst) }

// Observability --------------------------------------------------------------------

type (
	// Tracer observes simulation events (rounds, sends, deliveries, node
	// terminations); set it on DistMISOptions.Trace or DFSOptions.Trace.
	Tracer = sim.Tracer
	// TraceRecorder is a bounded thread-safe Tracer with per-kind and
	// per-payload-type counters.
	TraceRecorder = sim.Recorder
	// TraceEvent is one recorded simulation event.
	TraceEvent = sim.Event
)

// Schedule post-optimization --------------------------------------------------------

// CompactSchedule recolors arcs downward until a fixpoint; the frame never
// gets longer and usually gets shorter. Feasibility is preserved.
func CompactSchedule(g *Graph, as Assignment) Assignment {
	out, _ := opt.Compact(g, as)
	return out
}

// ImproveSchedule runs the full offline post-optimization pipeline
// (compaction + iterated greedy over permuted color classes + compaction).
// Useful at a base station after a distributed algorithm produced the
// initial frame.
func ImproveSchedule(g *Graph, as Assignment, iters int, seed int64) Assignment {
	return opt.Improve(g, as, iters, seed)
}

// Visualization ---------------------------------------------------------------------

// VizStyle bundles SVG rendering options.
type VizStyle = viz.Style

// RenderNetwork renders the sensor field (nodes and links) as SVG.
func RenderNetwork(g *Graph, pts []Point, st VizStyle) string { return viz.Network(g, pts, st) }

// RenderSlot renders one TDMA slot: transmissions as arrows, transmitters
// and receivers color-coded.
func RenderSlot(g *Graph, pts []Point, s *Schedule, slot int, st VizStyle) (string, error) {
	return viz.Slot(g, pts, s, slot, st)
}

// RenderFrame renders the schedule as a strip of per-slot panels.
func RenderFrame(g *Graph, pts []Point, s *Schedule, maxSlots int, st VizStyle) (string, error) {
	return viz.Frame(g, pts, s, maxSlots, st)
}

// RenderSlotHistogram renders transmissions-per-slot as a bar chart.
func RenderSlotHistogram(s *Schedule) string { return viz.SlotHistogram(s) }

// Demand-aware (weighted) scheduling -----------------------------------------------

type (
	// LinkDemand maps directed links to per-frame slot demands.
	LinkDemand = weighted.Demand
	// WeightedAssignment maps each arc to its (sorted) slot set.
	WeightedAssignment = weighted.Assignment
	// WeightedViolation is one infeasibility found by VerifyWeighted.
	WeightedViolation = weighted.Violation
)

// UniformDemand gives every directed link the same demand.
func UniformDemand(w int) LinkDemand { return weighted.UniformDemand(w) }

// WeightedGreedy schedules heterogeneous link demands centrally: each arc
// receives its demand of smallest feasible slots.
func WeightedGreedy(g *Graph, d LinkDemand) (WeightedAssignment, error) {
	return weighted.Greedy(g, d)
}

// WeightedDFS schedules heterogeneous link demands with the token-passing
// discipline of Algorithm 2 generalized to multi-slot demands.
func WeightedDFS(g *Graph, d LinkDemand, seed int64) (WeightedAssignment, Stats, error) {
	return weighted.DFS(g, d, seed)
}

// VerifyWeighted checks a demand-aware schedule.
func VerifyWeighted(g *Graph, d LinkDemand, as WeightedAssignment) []WeightedViolation {
	return weighted.Verify(g, d, as)
}

// WeightedLowerBound returns the demand-aware frame-length lower bound.
func WeightedLowerBound(g *Graph, d LinkDemand) int { return weighted.LowerBound(g, d) }

// Energy accounting ----------------------------------------------------------------

type (
	// EnergyModel holds per-slot radio costs (transmit, receive, idle
	// listen, sleep).
	EnergyModel = energy.Model
	// EnergyReport is the per-frame energy accounting of one schedule.
	EnergyReport = energy.Report
)

// DefaultEnergyModel returns typical low-power-radio cost ratios.
func DefaultEnergyModel() EnergyModel { return energy.DefaultModel() }

// LinkEnergy accounts a full duplex link schedule: nodes sleep outside
// their own TX/RX slots.
func LinkEnergy(g *Graph, s *Schedule, m EnergyModel) EnergyReport {
	return energy.LinkSchedule(g, s, m)
}

// BroadcastEnergy accounts a broadcast schedule under unicast traffic:
// nodes idle-listen in every neighbor-owned slot (the paper's §1 power
// argument against broadcast scheduling).
func BroadcastEnergy(g *Graph, colors []int, m EnergyModel) (EnergyReport, error) {
	return energy.BroadcastSchedule(g, colors, m)
}

// PerLinkServiceEnergy compares the mean per-node energy to serve every
// directed link once under link versus broadcast scheduling.
func PerLinkServiceEnergy(g *Graph, s *Schedule, colors []int, m EnergyModel) (link, bcast float64, err error) {
	return energy.PerLinkServiceEnergy(g, s, colors, m)
}

// Deterministic symmetry breaking (Cole–Vishkin) -------------------------------------

// CVColorForest 3-colors a forest deterministically in O(log* n)
// synchronous rounds with Cole–Vishkin bit reduction — the technique behind
// the O(log* n) MIS algorithms the paper's round bounds cite.
func CVColorForest(g *Graph) ([]int, Stats, error) {
	root, err := cv.RootForest(g)
	if err != nil {
		return nil, Stats{}, err
	}
	return cv.ColorForest(g, root)
}

// CVForestMIS computes a deterministic MIS of a forest in O(log* n) rounds
// via the CV 3-coloring.
func CVForestMIS(g *Graph) ([]bool, Stats, error) { return cv.ForestMIS(g) }

// LogStar returns log₂*(n).
func LogStar(n float64) int { return cv.LogStar(n) }

// Conformance -----------------------------------------------------------------------

type (
	// Scheduler is any function producing a complete FDLSP assignment;
	// implementations can be validated with CheckConformance.
	Scheduler = conformance.Scheduler
	// ConformanceOptions tunes the validation battery.
	ConformanceOptions = conformance.Options
	// ConformanceFailure is one violated invariant.
	ConformanceFailure = conformance.Failure
)

// CheckConformance runs the full invariant battery (verifier, bounds
// sandwich, radio feasibility, per-seed determinism) against a scheduler
// over a spread of graph families. An empty result means conformant.
func CheckConformance(s Scheduler, opts ConformanceOptions) []ConformanceFailure {
	return conformance.Check(s, opts)
}

// Failure-injection delay presets for asynchronous runs ------------------------------

// NoDelay is the identity delay (one unit per hop).
func NoDelay() DelayFn { return sim.NoDelay() }

// UniformDelay adds 0..max extra units per message.
func UniformDelay(max int64) DelayFn { return sim.UniformDelay(max) }

// HeavyTailDelay is mostly fast with occasional large spikes.
func HeavyTailDelay(spike int64) DelayFn { return sim.HeavyTailDelay(spike) }

// SlowLinkDelay penalizes selected links by a fixed amount.
func SlowLinkDelay(penalty int64, slow func(u, v int) bool) DelayFn {
	return sim.SlowLinkDelay(penalty, slow)
}

// SlowNodeDelay penalizes every message sent by the given nodes.
func SlowNodeDelay(penalty int64, nodes ...int) DelayFn {
	return sim.SlowNodeDelay(penalty, nodes...)
}

// DMGCDistributed is the D-MGC variant whose phase 1 is a fully measured
// distributed (2Δ-1)-color randomized edge coloring instead of the Vizing
// Δ+1 construction — no fans, inversions or locks, O(log m) rounds w.h.p.,
// at the price of a longer frame (the ablation benchmarks quantify the
// gap, which is exactly why [8] pays for the Vizing phase).
func DMGCDistributed(g *Graph, seed int64) (*Result, error) {
	return dmgc.ScheduleDistributed(g, seed)
}

// ScheduleDiff returns, per affected node, the transmit/receive timetable
// changes between two schedules — the minimal set of sensors to re-flash
// after an incremental repair.
func ScheduleDiff(old, new Assignment) []NodeScheduleDelta { return dynamic.Diff(old, new) }

// NodeScheduleDelta is one node's timetable change set.
type NodeScheduleDelta = dynamic.NodeDelta

// DMGCVizingDistributed is D-MGC with the protocol-faithful distributed
// phase 1: Vizing fans, cd-path inversions walked by messages, and
// wound-wait locking — the machinery the paper describes for the baseline
// — with a measured asynchronous cost.
func DMGCVizingDistributed(g *Graph, seed int64) (*Result, error) {
	return dmgc.ScheduleVizingDistributed(g, seed)
}

// CompactWeightedSchedule compacts a demand-aware schedule: each arc's slot
// set is recolored to the smallest feasible set, never lengthening the
// frame.
func CompactWeightedSchedule(g *Graph, d LinkDemand, as WeightedAssignment) WeightedAssignment {
	out, _ := opt.CompactWeighted(g, d, as)
	return out
}
