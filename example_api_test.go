package fdlsp_test

import (
	"fmt"
	"math/rand"

	"fdlsp"
)

// ExampleDistMIS schedules a small field with the synchronous MIS-based
// algorithm and verifies the result.
func ExampleDistMIS() {
	g, _ := fdlsp.RandomUDG(40, 6, 1.5, rand.New(rand.NewSource(7)))
	res, err := fdlsp.DistMIS(g, fdlsp.DistMISOptions{Seed: 7})
	if err != nil {
		panic(err)
	}
	fmt.Println("valid:", fdlsp.Valid(g, res.Assignment))
	fmt.Println("within bounds:", res.Slots >= fdlsp.LowerBound(g) && res.Slots <= fdlsp.UpperBound(g))
	// Output:
	// valid: true
	// within bounds: true
}

// ExampleDFS runs the asynchronous token-passing algorithm.
func ExampleDFS() {
	g := fdlsp.ConnectedGNM(30, 70, rand.New(rand.NewSource(3)))
	res, err := fdlsp.DFS(g, fdlsp.DFSOptions{Seed: 3})
	if err != nil {
		panic(err)
	}
	fmt.Println("valid:", fdlsp.Valid(g, res.Assignment))
	fmt.Println("linear rounds:", res.Stats.Rounds < int64(20*g.N()))
	// Output:
	// valid: true
	// linear rounds: true
}

// ExampleGreedySchedule shows the deterministic centralized reference and
// the frame it induces.
func ExampleGreedySchedule() {
	g := fdlsp.Path(3) // 0-1-2: four directed links
	as := fdlsp.GreedySchedule(g)
	frame, _ := fdlsp.BuildSchedule(g, as)
	fmt.Println("slots:", frame.FrameLength)
	fmt.Println("radio collisions:", len(frame.RadioCheck(g)))
	// Output:
	// slots: 4
	// radio collisions: 0
}

// ExampleOptimalSlots proves a tiny instance optimal.
func ExampleOptimalSlots() {
	_, slots, proved := fdlsp.OptimalSlots(fdlsp.Complete(4))
	fmt.Println(slots, proved)
	// Output: 12 true
}

// ExampleConflict demonstrates the hidden terminal rule on a path.
func ExampleConflict() {
	g := fdlsp.Path(4) // 0-1-2-3
	// 2 transmitting disturbs 1 while it receives from 0:
	fmt.Println(fdlsp.Conflict(g, fdlsp.Arc{From: 0, To: 1}, fdlsp.Arc{From: 2, To: 3}))
	// Two transmitters side by side are fine:
	fmt.Println(fdlsp.Conflict(g, fdlsp.Arc{From: 1, To: 0}, fdlsp.Arc{From: 2, To: 3}))
	// Output:
	// true
	// false
}

// ExampleNewDynamic repairs a schedule after a link appears.
func ExampleNewDynamic() {
	g := fdlsp.Path(4)
	net, _ := fdlsp.NewDynamic(g, fdlsp.GreedySchedule(g))
	_ = net.Apply(fdlsp.TopologyEvent{Kind: fdlsp.EventLinkUp, U: 0, V: 3})
	fmt.Println("valid after repair:", fdlsp.Valid(net.Graph(), net.Assignment()))
	// Output: valid after repair: true
}

// ExampleSimulateTraffic drains a convergecast over the frame.
func ExampleSimulateTraffic() {
	g := fdlsp.Path(5)
	frame, _ := fdlsp.BuildSchedule(g, fdlsp.GreedySchedule(g))
	res, _ := fdlsp.SimulateTraffic(g, frame, fdlsp.ConvergecastFlows(g, 0), 1000)
	fmt.Println("delivered:", res.Delivered)
	// Output: delivered: 4
}
