package fdlsp

import (
	"fdlsp/internal/core"
	"fdlsp/internal/dynamic"
	"fdlsp/internal/sim"
	"fdlsp/internal/transport"
	"fdlsp/internal/viz"
)

// This file exposes the fault-injection and reliable-transport layer: a
// seeded FaultPlan scripting message loss, duplication, reordering and node
// crashes; the ARQ transport both distributed algorithms run over when a
// plan is set; and the helpers for reasoning about the surviving subgraph a
// faulty run actually schedules.

type (
	// FaultPlan is a seeded, deterministic fault script: per-link message
	// loss, duplication, bounded reordering and node crashes at virtual
	// times. Set it on DistMISOptions.Fault or DFSOptions.Fault to run the
	// algorithm over the lossy channel (the engines then route protocol
	// traffic through the reliable transport automatically).
	FaultPlan = sim.FaultPlan
	// Crash schedules one node outage inside a FaultPlan: crash-stop when
	// RestartAt is zero, a bounded outage otherwise.
	Crash = sim.Crash
	// TransportOptions tunes the ack/retransmit transport (RTO, backoff
	// cap, max retries); the zero value selects sane defaults.
	TransportOptions = transport.Options
	// TransportTotals aggregates the transport-layer accounting of a run:
	// retransmissions, duplicates suppressed, acks, peers given up on.
	TransportTotals = transport.Totals
	// RejoinStats accounts a run's protocol-level crash recovery: nodes that
	// returned from bounded outages, resync-handshake message cost, and
	// driver re-launches (see Result.Rejoin).
	RejoinStats = core.RejoinStats
)

// SurvivingGraph returns g minus every edge incident to a crashed node —
// the subgraph a faulty run is accountable for. Verify the Assignment of a
// run that reported Crashed nodes against this graph, not the original.
func SurvivingGraph(g *Graph, crashed []int) *Graph { return core.SurvivingGraph(g, crashed) }

// CrashEventsFromPlan converts a FaultPlan's crash schedule into the
// topology events the dynamic maintenance layer understands (NodeFail per
// crash, NodeJoin per restart with the then-alive neighbor set), so
// schedule-repair cost under the same fault script can be measured with
// DynamicNetwork.Apply. Nodes the protocol already reintegrated in-band
// (Result.Rejoin.Returned) go in rejoined; their crash/restart pair is
// omitted so the repair is not double-counted.
func CrashEventsFromPlan(g *Graph, plan *FaultPlan, rejoined []int) []TopologyEvent {
	return dynamic.CrashEvents(g, plan, rejoined)
}

// RenderTimeline renders a recorded trace as a message-sequence chart with
// fault annotations: per-node lanes over virtual time, deliveries, dropped
// and duplicated messages, and crash/restart outage bands.
func RenderTimeline(events []TraceEvent, n int, st VizStyle) string {
	return viz.Timeline(events, n, st)
}
