package sched

import (
	"math/rand"
	"testing"

	"fdlsp/internal/coloring"
	"fdlsp/internal/geom"
	"fdlsp/internal/graph"
)

func TestSINRSingleTransmissionPasses(t *testing.T) {
	g := graph.Path(2)
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}
	as := coloring.NewAssignment(g)
	as.Set(graph.Arc{From: 0, To: 1}, 1)
	as.Set(graph.Arc{From: 1, To: 0}, 2)
	s, err := Build(g, as)
	if err != nil {
		t.Fatal(err)
	}
	if v := s.SINRCheck(pts, DefaultSINRParams()); len(v) != 0 {
		t.Fatalf("lone unit-distance transmission fails SINR: %v", v)
	}
	if f := s.SINRFeasibleFraction(pts, DefaultSINRParams()); f != 1 {
		t.Errorf("fraction = %v", f)
	}
}

func TestSINRNearInterfererFails(t *testing.T) {
	// Receiver 1 at distance 1 from its transmitter 0, with a simultaneous
	// transmitter 2 just beyond graph range but physically close: the graph
	// model allows it, the physical model does not.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 2.2, Y: 0}, {X: 3.2, Y: 0}}
	s := &Schedule{FrameLength: 1, Slots: [][]graph.Arc{{{From: 0, To: 1}, {From: 2, To: 3}}}}
	v := s.SINRCheck(pts, SINRParams{Power: 1, PathLoss: 2, Noise: 0.01, Threshold: 2})
	if len(v) == 0 {
		t.Fatal("near interferer should break SINR at receiver 1")
	}
}

func TestSINRCoLocatedInterferer(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 0}, {X: 5, Y: 0}}
	s := &Schedule{FrameLength: 1, Slots: [][]graph.Arc{{{From: 0, To: 1}, {From: 2, To: 3}}}}
	found := false
	for _, v := range s.SINRCheck(pts, DefaultSINRParams()) {
		if v.Receiver == 1 && v.SINR == 0 {
			found = true
		}
	}
	if !found {
		t.Error("co-located interferer not fatal")
	}
}

func TestSINRFractionOnRealScheduleIsHigh(t *testing.T) {
	// A distance-2 schedule on a UDG keeps interferers at least one radio
	// range away from every receiver, so with α=4 the overwhelming majority
	// of receptions meet a moderate threshold.
	rng := rand.New(rand.NewSource(7))
	g, pts := geom.RandomUDG(120, 12, 1.2, rng)
	as := coloring.Greedy(g, nil)
	s, err := Build(g, as)
	if err != nil {
		t.Fatal(err)
	}
	f := s.SINRFeasibleFraction(pts, DefaultSINRParams())
	if f < 0.8 {
		t.Errorf("SINR-feasible fraction %.3f suspiciously low for a distance-2 schedule", f)
	}
	t.Logf("SINR-feasible fraction: %.3f", f)
}
