package sched

import (
	"fmt"
	"math"

	"fdlsp/internal/geom"
	"fdlsp/internal/graph"
)

// SINRParams configures the physical (signal-to-interference-plus-noise
// ratio) channel model of the paper's related-work discussion: a
// transmission from u to v succeeds when
//
//	(P·d(u,v)^-α) / (N + Σ_w P·d(w,v)^-α) ≥ β
//
// summing over the other simultaneous transmitters w. Graph-based
// schedules do not guarantee SINR feasibility (the paper argues the SINR
// model "has not been studied sufficiently from algorithmic point of
// view"); SINRCheck quantifies how close a distance-2 schedule gets.
type SINRParams struct {
	Power     float64 // transmit power P
	PathLoss  float64 // path-loss exponent α (2 free space … 6 indoor)
	Noise     float64 // ambient noise floor N
	Threshold float64 // reception threshold β
}

// DefaultSINRParams returns a conventional parameterization: α = 4,
// β = 2 (≈3 dB), unit power, and a noise floor that lets a lone
// transmission succeed comfortably at unit distance.
func DefaultSINRParams() SINRParams {
	return SINRParams{Power: 1, PathLoss: 4, Noise: 0.01, Threshold: 2}
}

// SINRViolation is one failed reception in the physical simulation.
type SINRViolation struct {
	Slot        int
	Transmitter int
	Receiver    int
	SINR        float64
}

func (v SINRViolation) String() string {
	return fmt.Sprintf("slot %d: link %d->%d achieves SINR %.3f", v.Slot, v.Transmitter, v.Receiver, v.SINR)
}

// SINRCheck replays every slot of the frame under the physical model using
// the sensors' actual positions and returns each scheduled reception whose
// SINR falls below the threshold. Co-located points (zero distance to an
// interferer) count as violations.
func (s *Schedule) SINRCheck(pts []geom.Point, p SINRParams) []SINRViolation {
	var out []SINRViolation
	for i, slot := range s.Slots {
		slotNo := i + 1
		transmitters := make([]int, 0, len(slot))
		for _, a := range slot {
			transmitters = append(transmitters, a.From)
		}
		for _, a := range slot {
			sinr := s.sinrAt(pts, p, a, transmitters)
			if sinr < p.Threshold {
				out = append(out, SINRViolation{Slot: slotNo, Transmitter: a.From, Receiver: a.To, SINR: sinr})
			}
		}
	}
	return out
}

// SINRFeasibleFraction returns the fraction of scheduled receptions that
// meet the threshold — the headline number of a physical-model evaluation.
func (s *Schedule) SINRFeasibleFraction(pts []geom.Point, p SINRParams) float64 {
	total := 0
	for _, slot := range s.Slots {
		total += len(slot)
	}
	if total == 0 {
		return 1
	}
	bad := len(s.SINRCheck(pts, p))
	return float64(total-bad) / float64(total)
}

func (s *Schedule) sinrAt(pts []geom.Point, p SINRParams, a graph.Arc, transmitters []int) float64 {
	rx := pts[a.To]
	signal := p.Power * math.Pow(pts[a.From].Dist(rx), -p.PathLoss)
	if math.IsInf(signal, 1) {
		// Transmitter co-located with the receiver: infinitely strong.
		return math.Inf(1)
	}
	interference := p.Noise
	for _, w := range transmitters {
		if w == a.From {
			continue
		}
		d := pts[w].Dist(rx)
		if d == 0 {
			return 0 // co-located interferer drowns the signal
		}
		interference += p.Power * math.Pow(d, -p.PathLoss)
	}
	return signal / interference
}
