package sched

import (
	"encoding/json"
	"math/rand"
	"testing"
	"testing/quick"

	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
)

func validSchedule(tb testing.TB, g *graph.Graph) (*Schedule, coloring.Assignment) {
	tb.Helper()
	as := coloring.Greedy(g, nil)
	s, err := Build(g, as)
	if err != nil {
		tb.Fatal(err)
	}
	return s, as
}

func TestBuildBasics(t *testing.T) {
	g := graph.Path(4)
	s, as := validSchedule(t, g)
	if s.FrameLength != as.NumColors() {
		t.Errorf("frame %d != colors %d", s.FrameLength, as.NumColors())
	}
	total := 0
	for _, slot := range s.Slots {
		total += len(slot)
	}
	if total != 2*g.M() {
		t.Errorf("scheduled %d links, want %d", total, 2*g.M())
	}
	// Timetables invert each other.
	for v, tx := range s.NodeTX {
		for slot, to := range tx {
			if s.NodeRX[to][slot] != v {
				t.Errorf("TX/RX mismatch: %d->%d slot %d", v, to, slot)
			}
		}
	}
}

func TestBuildRejectsIncomplete(t *testing.T) {
	g := graph.Path(3)
	as := coloring.NewAssignment(g)
	as.Set(graph.Arc{From: 0, To: 1}, 1)
	if _, err := Build(g, as); err == nil {
		t.Fatal("expected error for incomplete assignment")
	}
}

func TestBuildRejectsDoubleTransmit(t *testing.T) {
	g := graph.Star(3) // center 0 with leaves 1,2
	as := coloring.NewAssignment(g)
	as.Set(graph.Arc{From: 0, To: 1}, 1)
	as.Set(graph.Arc{From: 0, To: 2}, 1) // same slot, same transmitter
	as.Set(graph.Arc{From: 1, To: 0}, 2)
	as.Set(graph.Arc{From: 2, To: 0}, 3)
	if _, err := Build(g, as); err == nil {
		t.Fatal("expected error: node 0 transmits twice in slot 1")
	}
}

func TestRadioCheckCleanOnValidSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(25)
		g := graph.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		s, _ := validSchedule(t, g)
		if col := s.RadioCheck(g); len(col) != 0 {
			t.Fatalf("trial %d: valid schedule has radio collisions: %v", trial, col[0])
		}
	}
}

func TestRadioCheckDetectsHiddenTerminal(t *testing.T) {
	// Path 0-1-2-3 with (0,1) and (2,3) in the same slot: node 1 hears both
	// 0 and 2.
	g := graph.Path(4)
	s := &Schedule{
		FrameLength: 1,
		Slots:       [][]graph.Arc{{{From: 0, To: 1}, {From: 2, To: 3}}},
	}
	col := s.RadioCheck(g)
	if len(col) == 0 {
		t.Fatal("hidden terminal not detected")
	}
	found := false
	for _, c := range col {
		if c.Receiver == 1 && len(c.Heard) == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("expected receiver 1 hearing two transmitters, got %v", col)
	}
}

func TestRadioCheckDetectsTransmittingReceiver(t *testing.T) {
	g := graph.Path(3)
	s := &Schedule{
		FrameLength: 1,
		Slots:       [][]graph.Arc{{{From: 0, To: 1}, {From: 1, To: 2}}},
	}
	if col := s.RadioCheck(g); len(col) == 0 {
		t.Fatal("receiver that also transmits not detected")
	}
}

func TestStats(t *testing.T) {
	g := graph.Star(4)
	s, _ := validSchedule(t, g)
	st := s.Stats()
	if st.Links != 2*g.M() {
		t.Errorf("links = %d", st.Links)
	}
	if st.FrameLength != s.FrameLength {
		t.Error("frame length mismatch")
	}
	if st.MaxConcurrency < 1 || st.AvgConcurrency <= 0 {
		t.Error("concurrency stats")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.GNM(12, 25, rng)
	s, as := validSchedule(t, g)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.FrameLength != s.FrameLength {
		t.Error("frame length lost")
	}
	got := back.Assignment()
	for a, c := range as {
		if got[a] != c {
			t.Fatalf("arc %v: %d -> %d after round trip", a, c, got[a])
		}
	}
	// Timetables rebuilt.
	if back.NodeTX == nil || len(back.NodeTX) != len(s.NodeTX) {
		t.Error("timetables not rebuilt")
	}
}

// Property: RadioCheck is clean exactly when the coloring verifier is
// clean, for assignments satisfying the unicast invariant (each node
// transmits at most once per slot — enforced by Build on real schedules).
// Without that invariant the two notions genuinely differ: two same-slot
// arcs out of one transmitter violate ILP constraint 4 (the node can only
// serve one outgoing link per slot) but cause no physical collision, since
// a single transmission reaching both receivers is just a broadcast.
func TestRadioCheckEquivalentToVerifier(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		g := graph.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		if g.M() == 0 {
			return true
		}
		// Random complete (possibly invalid) assignment with few colors to
		// provoke conflicts, but with distinct colors per transmitter so the
		// unicast invariant holds.
		as := coloring.NewAssignment(g)
		maxOut := 0
		for v := 0; v < g.N(); v++ {
			if d := g.Degree(v); d > maxOut {
				maxOut = d
			}
		}
		k := maxOut + rng.Intn(6)
		for v := 0; v < g.N(); v++ {
			perm := rng.Perm(k)
			for i, a := range g.OutArcs(v) {
				as.Set(a, 1+perm[i])
			}
		}
		validByVerifier := coloring.Valid(g, as)
		s := &Schedule{FrameLength: as.NumColors(), Slots: make([][]graph.Arc, as.NumColors())}
		for _, a := range g.Arcs() {
			s.Slots[as[a]-1] = append(s.Slots[as[a]-1], a)
		}
		validByRadio := len(s.RadioCheck(g)) == 0
		return validByVerifier == validByRadio
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestRadioCheckSameTailGap pins down the one intended difference between
// the radio simulation and the verifier: same-transmitter duplicates are a
// protocol violation (caught by Build and the verifier) but not a physical
// collision.
func TestRadioCheckSameTailGap(t *testing.T) {
	g := graph.Star(3) // 0-1, 0-2
	as := coloring.NewAssignment(g)
	as.Set(graph.Arc{From: 0, To: 1}, 1)
	as.Set(graph.Arc{From: 0, To: 2}, 1) // same transmitter, same slot
	as.Set(graph.Arc{From: 1, To: 0}, 2)
	as.Set(graph.Arc{From: 2, To: 0}, 3)
	if coloring.Valid(g, as) {
		t.Fatal("verifier must reject the same-tail duplicate")
	}
	if _, err := Build(g, as); err == nil {
		t.Fatal("Build must reject the same-tail duplicate")
	}
	s := &Schedule{FrameLength: 3, Slots: [][]graph.Arc{
		{{From: 0, To: 1}, {From: 0, To: 2}},
		{{From: 1, To: 0}},
		{{From: 2, To: 0}},
	}}
	if col := s.RadioCheck(g); len(col) != 0 {
		t.Fatalf("radio check should accept the physical broadcast: %v", col)
	}
}
