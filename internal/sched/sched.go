// Package sched turns an arc coloring into an operational TDMA schedule:
// the frame layout (which links transmit in which slot), per-node transmit
// and receive timetables, JSON serialization, occupancy statistics, and a
// radio-level frame simulator that re-validates the schedule from first
// principles — every receiver must hear exactly its intended transmitter,
// which is precisely the absence of the hidden terminal problem.
package sched

import (
	"encoding/json"
	"fmt"
	"sort"

	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
)

// Schedule is a concrete TDMA frame.
type Schedule struct {
	FrameLength int                 `json:"frame_length"`
	Slots       [][]graph.Arc       `json:"slots"` // Slots[i] = links active in slot i+1
	NodeTX      map[int]map[int]int `json:"-"`     // node -> slot -> receiver
	NodeRX      map[int]map[int]int `json:"-"`     // node -> slot -> transmitter
}

// Build assembles a Schedule from a complete assignment. It returns an
// error if any arc of g is uncolored.
func Build(g *graph.Graph, as coloring.Assignment) (*Schedule, error) {
	frame := as.NumColors()
	s := &Schedule{
		FrameLength: frame,
		Slots:       make([][]graph.Arc, frame),
		NodeTX:      make(map[int]map[int]int),
		NodeRX:      make(map[int]map[int]int),
	}
	for _, a := range g.Arcs() {
		c := as[a]
		if c == coloring.None {
			return nil, fmt.Errorf("sched: arc %v uncolored", a)
		}
		s.Slots[c-1] = append(s.Slots[c-1], a)
		if s.NodeTX[a.From] == nil {
			s.NodeTX[a.From] = make(map[int]int)
		}
		if s.NodeRX[a.To] == nil {
			s.NodeRX[a.To] = make(map[int]int)
		}
		if prev, dup := s.NodeTX[a.From][c]; dup {
			return nil, fmt.Errorf("sched: node %d transmits to both %d and %d in slot %d", a.From, prev, a.To, c)
		}
		if prev, dup := s.NodeRX[a.To][c]; dup {
			return nil, fmt.Errorf("sched: node %d receives from both %d and %d in slot %d", a.To, prev, a.From, c)
		}
		s.NodeTX[a.From][c] = a.To
		s.NodeRX[a.To][c] = a.From
	}
	for i := range s.Slots {
		sort.Slice(s.Slots[i], func(a, b int) bool {
			if s.Slots[i][a].From != s.Slots[i][b].From {
				return s.Slots[i][a].From < s.Slots[i][b].From
			}
			return s.Slots[i][a].To < s.Slots[i][b].To
		})
	}
	return s, nil
}

// Collision describes a radio-level failure in one simulated slot.
type Collision struct {
	Slot     int
	Receiver int
	// Heard lists the transmitting neighbors audible at Receiver (more than
	// one, or the wrong one, is a failure).
	Heard []int
}

func (c Collision) String() string {
	return fmt.Sprintf("slot %d: receiver %d hears transmitters %v", c.Slot, c.Receiver, c.Heard)
}

// RadioCheck simulates every slot of the frame at the radio level: each
// scheduled transmitter radiates to all its neighbors; each intended
// receiver must (a) not be transmitting itself and (b) hear exactly one
// transmitting neighbor — its intended one. Any deviation is returned. A
// correct distance-2 edge coloring yields no collisions; together with the
// unicast invariant Build enforces (one outgoing link per node per slot —
// a protocol rule, not a physics rule) this is an independent, physical
// restatement of the verifier in package coloring.
func (s *Schedule) RadioCheck(g *graph.Graph) []Collision {
	var out []Collision
	for i, slot := range s.Slots {
		slotNo := i + 1
		transmitting := make(map[int]bool, len(slot))
		for _, a := range slot {
			transmitting[a.From] = true
		}
		for _, a := range slot {
			if transmitting[a.To] {
				out = append(out, Collision{Slot: slotNo, Receiver: a.To, Heard: []int{a.To}})
				continue
			}
			var heard []int
			for _, w := range g.Neighbors(a.To) {
				if transmitting[w] {
					heard = append(heard, w)
				}
			}
			if len(heard) != 1 || heard[0] != a.From {
				out = append(out, Collision{Slot: slotNo, Receiver: a.To, Heard: heard})
			}
		}
	}
	return out
}

// Stats summarises frame utilization.
type Stats struct {
	FrameLength    int     `json:"frame_length"`
	Links          int     `json:"links"` // total arcs scheduled
	MaxConcurrency int     `json:"max_concurrency"`
	AvgConcurrency float64 `json:"avg_concurrency"`
}

// Stats computes occupancy statistics of the frame.
func (s *Schedule) Stats() Stats {
	st := Stats{FrameLength: s.FrameLength}
	for _, slot := range s.Slots {
		st.Links += len(slot)
		if len(slot) > st.MaxConcurrency {
			st.MaxConcurrency = len(slot)
		}
	}
	if s.FrameLength > 0 {
		st.AvgConcurrency = float64(st.Links) / float64(s.FrameLength)
	}
	return st
}

// jsonSchedule is the serialized form.
type jsonSchedule struct {
	FrameLength int         `json:"frame_length"`
	Slots       [][]jsonArc `json:"slots"`
}

type jsonArc struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// MarshalJSON implements json.Marshaler.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	js := jsonSchedule{FrameLength: s.FrameLength, Slots: make([][]jsonArc, len(s.Slots))}
	for i, slot := range s.Slots {
		for _, a := range slot {
			js.Slots[i] = append(js.Slots[i], jsonArc{From: a.From, To: a.To})
		}
	}
	return json.Marshal(js)
}

// UnmarshalJSON implements json.Unmarshaler; node timetables are rebuilt.
func (s *Schedule) UnmarshalJSON(data []byte) error {
	var js jsonSchedule
	if err := json.Unmarshal(data, &js); err != nil {
		return err
	}
	s.FrameLength = js.FrameLength
	s.Slots = make([][]graph.Arc, len(js.Slots))
	s.NodeTX = make(map[int]map[int]int)
	s.NodeRX = make(map[int]map[int]int)
	for i, slot := range js.Slots {
		for _, ja := range slot {
			a := graph.Arc{From: ja.From, To: ja.To}
			s.Slots[i] = append(s.Slots[i], a)
			if s.NodeTX[a.From] == nil {
				s.NodeTX[a.From] = make(map[int]int)
			}
			if s.NodeRX[a.To] == nil {
				s.NodeRX[a.To] = make(map[int]int)
			}
			s.NodeTX[a.From][i+1] = a.To
			s.NodeRX[a.To][i+1] = a.From
		}
	}
	return nil
}

// Assignment converts the schedule back to an arc coloring.
func (s *Schedule) Assignment() coloring.Assignment {
	as := make(coloring.Assignment)
	for i, slot := range s.Slots {
		for _, a := range slot {
			as[a] = i + 1
		}
	}
	return as
}
