// Package mis provides distributed maximal-independent-set machinery: a
// generic synchronous "competition" state machine that computes an MIS among
// competitors at a configurable hop radius (radius 1 is the classic
// distributed MIS; radius 2 and 3 are the secondary MIS computations of the
// paper's DistMIS algorithm, where non-competing nodes act as bridges), a
// set of value-drawing strategies (Luby-style randomized, lowest-ID
// deterministic, one-shot random rank), and a standalone distributed MIS
// runner with verification helpers.
//
// The paper uses the Schneider–Wattenhofer O(log* n) MIS for growth bounded
// graphs and an O(Δ + log* n) algorithm for general graphs; any correct MIS
// per phase yields the same DistMIS guarantees (see DESIGN.md,
// "Substitutions"), so strategies are pluggable here and the default is
// Luby's algorithm.
package mis

import (
	"math/rand"
	"sort"

	"fdlsp/internal/graph"
)

// Status is a node's state within one MIS computation.
type Status int

const (
	// Undecided nodes are still competing.
	Undecided Status = iota
	// InMIS nodes joined the independent set.
	InMIS
	// Dominated nodes have an InMIS competitor and are out.
	Dominated
)

func (s Status) String() string {
	switch s {
	case Undecided:
		return "undecided"
	case InMIS:
		return "in-MIS"
	case Dominated:
		return "dominated"
	default:
		return "invalid"
	}
}

// Drawer produces, per node, the per-iteration competition value. Smaller
// (value, id) pairs win, so every iteration the global minimum among
// undecided competitors joins the MIS and the protocol always terminates.
type Drawer interface {
	// Name identifies the strategy in reports and benchmarks.
	Name() string
	// New returns the value function for one node; rng is the node's
	// private generator.
	New(id int, rng *rand.Rand) func(iter int) int64
}

type lubyDrawer struct{}

func (lubyDrawer) Name() string { return "luby" }
func (lubyDrawer) New(id int, rng *rand.Rand) func(int) int64 {
	return func(int) int64 { return rng.Int63() }
}

type lowestIDDrawer struct{}

func (lowestIDDrawer) Name() string { return "lowest-id" }
func (lowestIDDrawer) New(id int, rng *rand.Rand) func(int) int64 {
	return func(int) int64 { return int64(id) }
}

type rankDrawer struct{}

func (rankDrawer) Name() string { return "rank" }
func (rankDrawer) New(id int, rng *rand.Rand) func(int) int64 {
	r := rng.Int63()
	return func(int) int64 { return r }
}

// Luby returns the randomized strategy: a fresh random value per iteration
// (Luby 1986). Expected O(log n) iterations.
func Luby() Drawer { return lubyDrawer{} }

// LowestID returns the deterministic strategy: the node ID is the value, so
// the protocol computes the lexicographically-first MIS. Worst case O(n)
// iterations on a path, fast on the bounded-degree graphs used here.
func LowestID() Drawer { return lowestIDDrawer{} }

// Rank returns the one-shot random rank strategy: a single random priority
// drawn up front, behaving like LowestID over a random ID permutation.
func Rank() Drawer { return rankDrawer{} }

// Strategies lists all built-in drawers (for benchmarks and ablations).
func Strategies() []Drawer { return []Drawer{Luby(), LowestID(), Rank()} }

// Verify checks that inMIS is an independent and maximal set among the
// nodes for which eligible is true (pass nil for "all nodes"); edges to
// ineligible nodes are ignored, matching a residual-graph MIS. It returns
// true plus an empty slice on success, or false plus the offending nodes.
func Verify(g *graph.Graph, inMIS []bool, eligible []bool) (bool, []int) {
	ok := func(v int) bool { return eligible == nil || eligible[v] }
	var bad []int
	for v := 0; v < g.N(); v++ {
		if !ok(v) {
			continue
		}
		if inMIS[v] {
			// Independence: no two adjacent members.
			for _, u := range g.Neighbors(v) {
				if ok(u) && inMIS[u] && u > v {
					bad = append(bad, v, u)
				}
			}
			continue
		}
		// Maximality: a non-member must have a member neighbor.
		dominated := false
		for _, u := range g.Neighbors(v) {
			if ok(u) && inMIS[u] {
				dominated = true
				break
			}
		}
		if !dominated {
			bad = append(bad, v)
		}
	}
	sort.Ints(bad)
	return len(bad) == 0, bad
}

// SequentialGreedy returns the MIS obtained by scanning nodes in the given
// order (all nodes ascending when order is nil) — the reference MIS used in
// tests.
func SequentialGreedy(g *graph.Graph, order []int) []bool {
	if order == nil {
		order = make([]int, g.N())
		for i := range order {
			order[i] = i
		}
	}
	inMIS := make([]bool, g.N())
	blocked := make([]bool, g.N())
	for _, v := range order {
		if blocked[v] {
			continue
		}
		inMIS[v] = true
		blocked[v] = true
		for _, u := range g.Neighbors(v) {
			blocked[u] = true
		}
	}
	return inMIS
}
