package mis

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fdlsp/internal/graph"
)

func TestStatusString(t *testing.T) {
	if Undecided.String() != "undecided" || InMIS.String() != "in-MIS" || Dominated.String() != "dominated" {
		t.Error("status strings")
	}
	if Status(99).String() != "invalid" {
		t.Error("invalid status string")
	}
}

func TestDrawers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// LowestID is constant and equals the id.
	f := LowestID().New(7, rng)
	if f(0) != 7 || f(5) != 7 {
		t.Error("lowest-id drawer")
	}
	// Rank is constant across iterations.
	r := Rank().New(3, rng)
	if r(0) != r(1) || r(1) != r(99) {
		t.Error("rank drawer should be constant")
	}
	// Luby redraws (astronomically unlikely to collide twice).
	l := Luby().New(3, rng)
	if l(0) == l(1) && l(1) == l(2) {
		t.Error("luby drawer looks constant")
	}
	names := map[string]bool{}
	for _, d := range Strategies() {
		names[d.Name()] = true
	}
	if !names["luby"] || !names["lowest-id"] || !names["rank"] {
		t.Errorf("strategies: %v", names)
	}
}

func TestSequentialGreedyIsMIS(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(30)
		g := graph.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		inMIS := SequentialGreedy(g, nil)
		if ok, bad := Verify(g, inMIS, nil); !ok {
			t.Fatalf("trial %d: not an MIS, offenders %v", trial, bad)
		}
	}
}

func TestVerifyCatchesBadSets(t *testing.T) {
	g := graph.Path(3)
	// Not independent.
	if ok, _ := Verify(g, []bool{true, true, false}, nil); ok {
		t.Error("accepted dependent set")
	}
	// Not maximal.
	if ok, _ := Verify(g, []bool{false, false, false}, nil); ok {
		t.Error("accepted non-maximal set")
	}
	// Correct MIS.
	if ok, bad := Verify(g, []bool{true, false, true}, nil); !ok {
		t.Errorf("rejected valid MIS: %v", bad)
	}
	// Eligibility: with only node 1 eligible, {1} is the MIS.
	if ok, bad := Verify(g, []bool{false, true, false}, []bool{false, true, false}); !ok {
		t.Errorf("eligible-restricted MIS rejected: %v", bad)
	}
}

func TestRunProducesMISAllStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(40)
		g := graph.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		for _, d := range Strategies() {
			inMIS, stats, err := Run(g, int64(trial), d)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, d.Name(), err)
			}
			if ok, bad := Verify(g, inMIS, nil); !ok {
				t.Fatalf("trial %d %s: invalid MIS, offenders %v", trial, d.Name(), bad)
			}
			if stats.Rounds < 1 && g.N() > 0 {
				t.Errorf("trial %d %s: suspicious zero rounds", trial, d.Name())
			}
		}
	}
}

func TestRunLowestIDMatchesLexicographicMIS(t *testing.T) {
	// The lowest-ID strategy computes exactly the greedy-by-ID MIS.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(25)
		g := graph.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		got, _, err := Run(g, 0, LowestID())
		if err != nil {
			t.Fatal(err)
		}
		want := SequentialGreedy(g, nil)
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("trial %d node %d: distributed %v, sequential %v", trial, v, got[v], want[v])
			}
		}
	}
}

func TestCompetitionSingleNode(t *testing.T) {
	c := NewCompetition(0, 1, true, func(int) int64 { return 5 })
	if c.Done() {
		t.Fatal("fresh competitor already done")
	}
	c.StartRound(0) // draws value, no peers
	c.StartRound(1) // decides: wins alone
	if c.Status() != InMIS || !c.Done() {
		t.Fatalf("lone competitor status %v", c.Status())
	}
}

func TestCompetitionBridgeRelays(t *testing.T) {
	c := NewCompetition(1, 3, false, nil)
	if !c.Done() || c.Status() != Dominated {
		t.Fatal("bridge should be done/dominated")
	}
	f := Flood{Kind: KindValue, Origin: 9, Iter: 0, Value: 3, TTL: 3}
	relay, ok := c.Observe(f)
	if !ok || relay.TTL != 2 {
		t.Fatalf("bridge relay: ok=%v ttl=%d", ok, relay.TTL)
	}
	// Duplicate is swallowed.
	if _, ok := c.Observe(f); ok {
		t.Error("duplicate flood relayed")
	}
	// Exhausted TTL is not relayed.
	if _, ok := c.Observe(Flood{Kind: KindValue, Origin: 8, Iter: 0, TTL: 1}); ok {
		t.Error("TTL-1 flood relayed")
	}
}

func TestCompetitionTwoCompetitorsTieBreakByID(t *testing.T) {
	a := NewCompetition(0, 1, true, func(int) int64 { return 7 })
	b := NewCompetition(1, 1, true, func(int) int64 { return 7 })
	fa := a.StartRound(0)
	fb := b.StartRound(0)
	// Deliver values to each other.
	a.Observe(fb[0])
	b.Observe(fa[0])
	ja := a.StartRound(1)
	jb := b.StartRound(1)
	if len(ja) != 1 || a.Status() != InMIS {
		t.Fatalf("node 0 should win the tie: %v", a.Status())
	}
	if len(jb) != 0 {
		t.Fatal("node 1 must not join")
	}
	b.Observe(ja[0])
	if b.Status() != Dominated {
		t.Fatalf("node 1 should be dominated, is %v", b.Status())
	}
}

// Property: Run yields an independent and maximal set on arbitrary random
// graphs with random seeds.
func TestRunPropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		g := graph.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		inMIS, _, err := Run(g, seed, Luby())
		if err != nil {
			return false
		}
		ok, _ := Verify(g, inMIS, nil)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
