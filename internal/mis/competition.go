package mis

// Competition is the synchronous state machine computing an MIS among
// competitors at hop radius Radius: two competitors are "adjacent" when
// their hop distance through relaying nodes is at most Radius. Radius 1 is
// the classic distributed MIS; the paper's DistMIS algorithm uses Radius 3
// (growth bounded graphs) or 2 (general graphs) for its secondary MIS, with
// dominated and bridge nodes relaying the competition floods.
//
// Round layout (period = 2·Radius rounds):
//
//	round 2kR       competitors draw value k, originate a Value flood
//	round 2kR + R   all iteration-k values have arrived (a flood sent at
//	                round r reaches hop distance j exactly at round r+j);
//	                the strict (value,id) minimum joins and floods Join
//	round 2(k+1)R   Join floods have arrived; losers become Dominated
//
// The owner drives the machine: call StartRound at the beginning of every
// engine round and send the returned floods; call Observe for every flood
// received and relay the returned forward copies. Both competing and
// bridge-only nodes must relay.
type Competition struct {
	id        int
	radius    int
	competing bool
	draw      func(iter int) int64

	status  Status
	iter    int
	curVal  int64
	recv    map[int]int64 // origin -> value for the current iteration
	seen    map[floodKey]struct{}
	started bool
}

// FloodKind discriminates competition flood payloads.
type FloodKind uint8

const (
	// KindValue carries a competitor's per-iteration value.
	KindValue FloodKind = iota
	// KindJoin announces that the origin joined the MIS.
	KindJoin
)

// Flood is a competition message flooded up to Radius hops.
type Flood struct {
	Kind   FloodKind
	Origin int
	Iter   int
	Value  int64
	TTL    int
}

type floodKey struct {
	kind   FloodKind
	origin int
	iter   int
}

// NewCompetition builds the state machine for one node. Bridge-only nodes
// pass competing=false (and a nil draw); they relay floods and report
// Dominated-like completion immediately.
func NewCompetition(id, radius int, competing bool, draw func(iter int) int64) *Competition {
	c := &Competition{
		id:        id,
		radius:    radius,
		competing: competing,
		draw:      draw,
		recv:      make(map[int]int64),
		seen:      make(map[floodKey]struct{}),
	}
	if !competing {
		c.status = Dominated
	}
	return c
}

// Reset re-arms the machine for a fresh competition with new parameters,
// reusing the allocated maps: after Reset the machine is indistinguishable
// from NewCompetition(id, radius, competing, draw) with the same id. Drivers
// that run many competition phases (DistMIS) reset instead of reallocating.
func (c *Competition) Reset(radius int, competing bool, draw func(iter int) int64) {
	c.radius = radius
	c.competing = competing
	c.draw = draw
	c.status = Undecided
	if !competing {
		c.status = Dominated
	}
	c.iter = 0
	c.curVal = 0
	c.started = false
	clear(c.recv)
	clear(c.seen)
}

// Status returns the node's current competition status. Bridge-only nodes
// report Dominated.
func (c *Competition) Status() Status { return c.status }

// Done reports whether this node has decided (bridges are always done; they
// still relay through Observe).
func (c *Competition) Done() bool { return c.status != Undecided }

// StartRound advances the machine to engine round r (0-based, consecutive)
// and returns the floods this node originates in that round, already marked
// seen so echoes are not re-relayed.
func (c *Competition) StartRound(r int) []Flood {
	if !c.competing || c.status != Undecided {
		return nil
	}
	period := 2 * c.radius
	var out []Flood
	switch r % period {
	case 0:
		c.iter = r / period
		c.curVal = c.draw(c.iter)
		clear(c.recv)
		f := Flood{Kind: KindValue, Origin: c.id, Iter: c.iter, Value: c.curVal, TTL: c.radius}
		c.markSeen(f)
		out = append(out, f)
	case c.radius:
		if c.winner() {
			c.status = InMIS
			f := Flood{Kind: KindJoin, Origin: c.id, Iter: c.iter, TTL: c.radius}
			c.markSeen(f)
			out = append(out, f)
		}
	}
	return out
}

// winner reports whether (curVal, id) is strictly smaller than every value
// received this iteration.
func (c *Competition) winner() bool {
	for origin, v := range c.recv {
		if v < c.curVal || (v == c.curVal && origin < c.id) {
			return false
		}
	}
	return true
}

// Observe records an incoming flood and returns the copy to relay onward
// (ok=false when the flood is exhausted or already seen). A Join flood from
// a competitor immediately dominates an undecided node — floods travel at
// most Radius hops, so only true G'-neighbors can dominate.
func (c *Competition) Observe(f Flood) (relay Flood, ok bool) {
	key := floodKey{kind: f.Kind, origin: f.Origin, iter: f.Iter}
	if _, dup := c.seen[key]; dup {
		return Flood{}, false
	}
	c.seen[key] = struct{}{}
	if f.Origin != c.id {
		switch f.Kind {
		case KindValue:
			if c.competing && c.status == Undecided && f.Iter == c.iter {
				c.recv[f.Origin] = f.Value
			}
		case KindJoin:
			if c.competing && c.status == Undecided {
				c.status = Dominated
			}
		}
	}
	if f.TTL > 1 {
		f.TTL--
		return f, true
	}
	return Flood{}, false
}

func (c *Competition) markSeen(f Flood) {
	c.seen[floodKey{kind: f.Kind, origin: f.Origin, iter: f.Iter}] = struct{}{}
}
