package mis

import (
	"fdlsp/internal/graph"
	"fdlsp/internal/sim"
)

// node adapts a Competition to the synchronous engine for the standalone
// distance-1 distributed MIS. The competition is created on the first step,
// when the engine-owned per-node RNG becomes available.
type node struct {
	drawer Drawer
	comp   *Competition
}

func (nd *node) Step(env *sim.SyncEnv, inbox []sim.Message) bool {
	if nd.comp == nil {
		nd.comp = NewCompetition(env.ID, 1, true, nd.drawer.New(env.ID, env.Rand))
	}
	for _, m := range inbox {
		if f, ok := m.Payload.(Flood); ok {
			if relay, ok := nd.comp.Observe(f); ok {
				env.Broadcast(relay)
			}
		}
	}
	for _, f := range nd.comp.StartRound(env.Round) {
		env.Broadcast(f)
	}
	return nd.comp.Done()
}

// Run computes a maximal independent set of g with the classic synchronous
// distributed protocol (radius-1 competition) under the given drawing
// strategy. It returns the membership vector and the engine's round and
// message accounting.
func Run(g *graph.Graph, seed int64, d Drawer) ([]bool, sim.Stats, error) {
	nodes := make([]*node, g.N())
	eng := sim.NewSyncEngine(g, seed, func(id int) sim.SyncNode {
		nodes[id] = &node{drawer: d}
		return nodes[id]
	})
	if err := eng.Run(); err != nil {
		return nil, sim.Stats{}, err
	}
	inMIS := make([]bool, g.N())
	for id, nd := range nodes {
		inMIS[id] = nd.comp != nil && nd.comp.Status() == InMIS
	}
	return inMIS, eng.Stats(), nil
}
