// Package weighted generalizes FDLSP to demand-aware scheduling: every
// directed link carries an integer demand (packets per frame) and must
// receive that many distinct TDMA slots, all pairwise-compatible with the
// slots of conflicting links under the same distance-2 rules. With unit
// demands this degenerates exactly to the base problem. The package
// provides the multi-slot assignment type, a verifier, demand-aware lower
// bounds, a centralized greedy scheduler and a distributed token-passing
// (DFS-style) scheduler built on the async engine.
package weighted

import (
	"fmt"
	"sort"

	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
)

// Demand maps each arc to the number of slots it needs per frame. Arcs
// absent from the map default to DefaultDemand.
type Demand struct {
	PerArc  map[graph.Arc]int
	Default int
}

// UniformDemand gives every arc the same demand w.
func UniformDemand(w int) Demand { return Demand{Default: w} }

// Of returns the demand of arc a.
func (d Demand) Of(a graph.Arc) int {
	if w, ok := d.PerArc[a]; ok {
		return w
	}
	if d.Default > 0 {
		return d.Default
	}
	return 1
}

// Validate checks all demands are positive for the arcs of g.
func (d Demand) Validate(g *graph.Graph) error {
	for _, a := range g.Arcs() {
		if d.Of(a) < 1 {
			return fmt.Errorf("weighted: arc %v has demand %d", a, d.Of(a))
		}
	}
	return nil
}

// Assignment maps each arc to its slot set (sorted, distinct, 1-based).
type Assignment map[graph.Arc][]int

// Slots returns the frame length (largest slot in use).
func (as Assignment) Slots() int {
	max := 0
	for _, ss := range as {
		for _, s := range ss {
			if s > max {
				max = s
			}
		}
	}
	return max
}

// Flatten expands the multi-slot assignment into per-slot arc lists.
func (as Assignment) Flatten() [][]graph.Arc {
	out := make([][]graph.Arc, as.Slots())
	for a, ss := range as {
		for _, s := range ss {
			out[s-1] = append(out[s-1], a)
		}
	}
	for i := range out {
		sort.Slice(out[i], func(x, y int) bool {
			if out[i][x].From != out[i][y].From {
				return out[i][x].From < out[i][y].From
			}
			return out[i][x].To < out[i][y].To
		})
	}
	return out
}

// Violation describes one infeasibility.
type Violation struct {
	A, B graph.Arc // B == A for demand shortfalls
	Slot int       // 0 for demand shortfalls
}

func (v Violation) String() string {
	if v.A == v.B {
		return fmt.Sprintf("arc %v underserved", v.A)
	}
	return fmt.Sprintf("arcs %v and %v share slot %d", v.A, v.B, v.Slot)
}

// Verify checks the assignment: every arc gets exactly its demand in
// distinct slots, and no two conflicting arcs share any slot.
func Verify(g *graph.Graph, d Demand, as Assignment) []Violation {
	var out []Violation
	bySlot := make(map[int][]graph.Arc)
	for _, a := range g.Arcs() {
		ss := as[a]
		distinct := make(map[int]bool, len(ss))
		for _, s := range ss {
			distinct[s] = true
		}
		if len(distinct) != d.Of(a) || len(distinct) != len(ss) {
			out = append(out, Violation{A: a, B: a})
		}
		for s := range distinct {
			bySlot[s] = append(bySlot[s], a)
		}
	}
	slots := make([]int, 0, len(bySlot))
	for s := range bySlot {
		slots = append(slots, s)
	}
	sort.Ints(slots)
	for _, s := range slots {
		class := bySlot[s]
		for i := 0; i < len(class); i++ {
			for j := i + 1; j < len(class); j++ {
				if coloring.Conflict(g, class[i], class[j]) {
					out = append(out, Violation{A: class[i], B: class[j], Slot: s})
				}
			}
		}
	}
	return out
}

// Valid reports whether as satisfies demand d on g.
func Valid(g *graph.Graph, d Demand, as Assignment) bool { return len(Verify(g, d, as)) == 0 }

// LowerBound returns a demand-aware frame-length lower bound: for every
// arc, the arc's own demand plus the demands of all arcs conflicting with
// it must fit in disjoint slot sets, so the frame is at least
// max_a (w(a) + ... ) over any pairwise-conflicting set; we use the
// per-node form — the total demand of all arcs incident to one node is a
// clique in the conflict graph — plus the base Theorem-1 bound scaled by
// the minimum demand.
func LowerBound(g *graph.Graph, d Demand) int {
	best := 0
	for v := 0; v < g.N(); v++ {
		sum := 0
		for _, a := range g.IncidentArcs(v) {
			sum += d.Of(a)
		}
		if sum > best {
			best = sum
		}
	}
	return best
}

// Greedy assigns every arc its demand of smallest feasible slots, arcs in
// lexicographic order — the centralized reference.
func Greedy(g *graph.Graph, d Demand) (Assignment, error) {
	if err := d.Validate(g); err != nil {
		return nil, err
	}
	as := make(Assignment)
	for _, a := range g.Arcs() {
		as[a] = pickSlots(g, d, as, a)
	}
	return as, nil
}

// pickSlots returns the w smallest slots feasible for a against as.
func pickSlots(g *graph.Graph, d Demand, as Assignment, a graph.Arc) []int {
	used := make(map[int]bool)
	for _, b := range coloring.ConflictingArcs(g, a) {
		for _, s := range as[b] {
			used[s] = true
		}
	}
	w := d.Of(a)
	out := make([]int, 0, w)
	for s := 1; len(out) < w; s++ {
		if !used[s] {
			out = append(out, s)
		}
	}
	return out
}
