package weighted

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
)

func randomDemand(g *graph.Graph, rng *rand.Rand, maxW int) Demand {
	d := Demand{PerArc: make(map[graph.Arc]int), Default: 1}
	for _, a := range g.Arcs() {
		d.PerArc[a] = 1 + rng.Intn(maxW)
	}
	return d
}

func TestDemandDefaults(t *testing.T) {
	d := Demand{}
	if d.Of(graph.Arc{From: 0, To: 1}) != 1 {
		t.Error("zero demand should default to 1")
	}
	d = UniformDemand(3)
	if d.Of(graph.Arc{From: 0, To: 1}) != 3 {
		t.Error("uniform demand")
	}
	g := graph.Path(2)
	bad := Demand{PerArc: map[graph.Arc]int{{From: 0, To: 1}: 0}, Default: 1}
	if err := bad.Validate(g); err == nil {
		t.Error("zero per-arc demand should be rejected")
	}
}

func TestGreedyUnitDemandMatchesBaseProblem(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(20)
		g := graph.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		as, err := Greedy(g, UniformDemand(1))
		if err != nil {
			t.Fatal(err)
		}
		if !Valid(g, UniformDemand(1), as) {
			t.Fatalf("trial %d: invalid", trial)
		}
		base := coloring.Greedy(g, nil)
		if as.Slots() != base.NumColors() {
			t.Errorf("trial %d: unit-demand weighted %d slots, base greedy %d", trial, as.Slots(), base.NumColors())
		}
		// Slot sets must match the base coloring exactly (same order, same
		// smallest-feasible rule).
		for _, a := range g.Arcs() {
			if len(as[a]) != 1 || as[a][0] != base[a] {
				t.Fatalf("trial %d: arc %v slots %v vs base %d", trial, a, as[a], base[a])
			}
		}
	}
}

func TestGreedyRandomDemands(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(15)
		g := graph.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		d := randomDemand(g, rng, 4)
		as, err := Greedy(g, d)
		if err != nil {
			t.Fatal(err)
		}
		if viols := Verify(g, d, as); len(viols) != 0 {
			t.Fatalf("trial %d: %v", trial, viols[0])
		}
		if g.M() > 0 && as.Slots() < LowerBound(g, d) {
			t.Fatalf("trial %d: %d slots below demand lower bound %d", trial, as.Slots(), LowerBound(g, d))
		}
	}
}

func TestVerifyCatchesProblems(t *testing.T) {
	g := graph.Path(3)
	d := UniformDemand(2)
	as, err := Greedy(g, d)
	if err != nil {
		t.Fatal(err)
	}
	// Underserve one arc.
	broken := make(Assignment)
	for a, ss := range as {
		broken[a] = ss
	}
	a0 := graph.Arc{From: 0, To: 1}
	broken[a0] = broken[a0][:1]
	if Valid(g, d, broken) {
		t.Error("underserved arc not caught")
	}
	// Duplicate slots within one arc.
	broken[a0] = []int{broken[a0][0], broken[a0][0]}
	if Valid(g, d, broken) {
		t.Error("duplicate slot not caught")
	}
	// Conflicting arcs sharing a slot.
	broken2 := make(Assignment)
	for a := range as {
		broken2[a] = []int{1, 2}
	}
	if Valid(g, d, broken2) {
		t.Error("shared conflicting slots not caught")
	}
}

func TestLowerBound(t *testing.T) {
	g := graph.Star(4) // center 0, three leaves; 6 arcs touch the center
	if got := LowerBound(g, UniformDemand(1)); got != 6 {
		t.Errorf("star unit lower bound = %d, want 6", got)
	}
	if got := LowerBound(g, UniformDemand(3)); got != 18 {
		t.Errorf("star weighted lower bound = %d, want 18", got)
	}
}

func TestFlatten(t *testing.T) {
	g := graph.Path(2)
	as, err := Greedy(g, UniformDemand(2))
	if err != nil {
		t.Fatal(err)
	}
	slots := as.Flatten()
	if len(slots) != as.Slots() {
		t.Fatalf("flatten length %d vs %d", len(slots), as.Slots())
	}
	total := 0
	for _, s := range slots {
		total += len(s)
	}
	if total != 4 { // 2 arcs × demand 2
		t.Errorf("total placements %d", total)
	}
}

func TestDFSWeightedValid(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(25)
		g := graph.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		d := randomDemand(g, rng, 3)
		as, stats, err := DFS(g, d, int64(trial))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if viols := Verify(g, d, as); len(viols) != 0 {
			t.Fatalf("trial %d: %v", trial, viols[0])
		}
		if g.M() > 0 && stats.Messages == 0 {
			t.Errorf("trial %d: no messages recorded", trial)
		}
	}
}

func TestDFSWeightedUnitMatchesDemandOne(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.ConnectedGNM(25, 60, rng)
	as, _, err := DFS(g, UniformDemand(1), 9)
	if err != nil {
		t.Fatal(err)
	}
	if !Valid(g, UniformDemand(1), as) {
		t.Fatal("invalid")
	}
	for _, ss := range as {
		if len(ss) != 1 {
			t.Fatalf("unit demand produced slot set %v", ss)
		}
	}
}

// Property: DFS-weighted schedules are always valid.
func TestDFSWeightedPropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		g := graph.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		d := randomDemand(g, rng, 3)
		as, _, err := DFS(g, d, seed)
		return err == nil && Valid(g, d, as)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
