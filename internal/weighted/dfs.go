package weighted

import (
	"fmt"
	"sort"

	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
	"fdlsp/internal/sim"
)

// DFS schedules g under demand d with the token-passing discipline of the
// paper's Algorithm 2, generalized to multi-slot demands: the token walks
// the network depth-first (max-degree-first children) and each node, with
// distance-2 knowledge of already assigned slot sets, grabs the smallest
// feasible slots for every still-unserved incident arc. Disconnected
// inputs are scheduled per component.
func DFS(g *graph.Graph, d Demand, seed int64) (Assignment, sim.Stats, error) {
	if err := d.Validate(g); err != nil {
		return nil, sim.Stats{}, err
	}
	as := make(Assignment)
	var total sim.Stats
	for ci, comp := range g.Components() {
		sub, ids := g.InducedSubgraph(comp)
		subDemand := Demand{PerArc: make(map[graph.Arc]int), Default: d.Default}
		for _, a := range sub.Arcs() {
			subDemand.PerArc[a] = d.Of(graph.Arc{From: ids[a.From], To: ids[a.To]})
		}
		subAs, stats, err := dfsConnected(sub, subDemand, seed+int64(ci)*95_279)
		if err != nil {
			return nil, sim.Stats{}, err
		}
		for a, ss := range subAs {
			as[graph.Arc{From: ids[a.From], To: ids[a.To]}] = ss
		}
		if stats.Rounds > total.Rounds {
			total.Rounds = stats.Rounds
		}
		total.Messages += stats.Messages
	}
	return as, total, nil
}

// Message payloads (distinct types from core's so engines cannot be mixed
// up accidentally).
type (
	wStart  struct{}
	wToken  struct{}
	wBounce struct{}
	wAsk    struct{}
	wReply  struct{ Table map[graph.Arc][]int }
	// wAnnounce floods an arc's final slot set from each endpoint two hops.
	wAnnounce struct {
		Arc    graph.Arc
		Slots  []int
		Origin int
		TTL    int
	}
)

type wNode struct {
	g       *graph.Graph
	d       Demand
	id      int
	degrees map[int]int

	know       Assignment
	originated map[graph.Arc]bool
	seen       map[[2]any]bool

	owned []graph.Arc // arcs this node assigned (for assembly)
}

func (nd *wNode) learn(a graph.Arc, ss []int) {
	if cur, ok := nd.know[a]; ok {
		if len(cur) != len(ss) {
			panic(fmt.Sprintf("weighted: arc %v reassigned", a))
		}
		return
	}
	cp := append([]int(nil), ss...)
	sort.Ints(cp)
	nd.know[a] = cp
}

// announce returns the endpoint floods for arcs this node just learned and
// is incident to.
func (nd *wNode) announce(id int, arcs []graph.Arc) []wAnnounce {
	var out []wAnnounce
	for _, a := range arcs {
		if nd.originated[a] {
			continue
		}
		nd.originated[a] = true
		nd.seen[[2]any{id, a}] = true
		out = append(out, wAnnounce{Arc: a, Slots: append([]int(nil), nd.know[a]...), Origin: id, TTL: 2})
	}
	return out
}

func (nd *wNode) Run(env *sim.AsyncEnv) {
	visited := make(map[int]bool)
	selfVisited := false
	parent := -1
	awaitingChild := -1
	pendingReplies := 0

	serve := func() {
		// Assign every unserved incident arc its demand of smallest
		// feasible slots.
		arcs := nd.g.IncidentArcs(env.ID)
		var newly []graph.Arc
		for _, a := range arcs {
			if _, done := nd.know[a]; done {
				continue
			}
			nd.know[a] = nd.pick(a)
			nd.owned = append(nd.owned, a)
			newly = append(newly, a)
		}
		for _, f := range nd.announce(env.ID, newly) {
			env.Broadcast(f)
		}
		nd.passToken(env, visited, parent, &awaitingChild)
	}

	begin := func() {
		if len(env.Neighbors) == 0 {
			serve()
			return
		}
		pendingReplies = len(env.Neighbors)
		for _, u := range env.Neighbors {
			env.Send(u, wAsk{})
		}
	}

	for {
		m, ok := env.Recv()
		if !ok {
			return
		}
		switch p := m.Payload.(type) {
		case wStart:
			selfVisited = true
			begin()
		case wAsk:
			visited[m.From] = true
			env.Send(m.From, wReply{Table: nd.localTable()})
		case wReply:
			for a, ss := range p.Table {
				nd.learn(a, ss)
			}
			if pendingReplies > 0 {
				pendingReplies--
				if pendingReplies == 0 {
					serve()
				}
			}
		case wToken:
			switch {
			case !selfVisited:
				selfVisited = true
				parent = m.From
				visited[m.From] = true
				begin()
			case m.From == awaitingChild:
				awaitingChild = -1
				nd.passToken(env, visited, parent, &awaitingChild)
			default:
				env.Send(m.From, wBounce{})
			}
		case wBounce:
			if m.From == awaitingChild {
				awaitingChild = -1
				nd.passToken(env, visited, parent, &awaitingChild)
			}
		case wAnnounce:
			key := [2]any{p.Origin, p.Arc}
			if nd.seen[key] {
				break
			}
			nd.seen[key] = true
			nd.learn(p.Arc, p.Slots)
			if p.TTL > 1 {
				relay := p
				relay.TTL--
				env.Broadcast(relay)
			}
			if p.Arc.From == env.ID || p.Arc.To == env.ID {
				for _, f := range nd.announce(env.ID, []graph.Arc{p.Arc}) {
					env.Broadcast(f)
				}
			}
		default:
			panic(fmt.Sprintf("weighted: node %d got %T", env.ID, m.Payload))
		}
	}
}

// pick returns the demand-many smallest slots feasible for a.
func (nd *wNode) pick(a graph.Arc) []int {
	used := make(map[int]bool)
	for _, b := range coloring.ConflictingArcs(nd.g, a) {
		for _, s := range nd.know[b] {
			used[s] = true
		}
	}
	w := nd.d.Of(a)
	out := make([]int, 0, w)
	for s := 1; len(out) < w; s++ {
		if !used[s] {
			out = append(out, s)
		}
	}
	return out
}

// localTable is the distance-1 view shipped in replies: slot sets of arcs
// incident to this node or one of its neighbors.
func (nd *wNode) localTable() map[graph.Arc][]int {
	local := map[int]bool{nd.id: true}
	for u := range nd.degrees {
		local[u] = true
	}
	out := make(map[graph.Arc][]int)
	for a, ss := range nd.know {
		if local[a.From] || local[a.To] {
			out[a] = append([]int(nil), ss...)
		}
	}
	return out
}

func (nd *wNode) passToken(env *sim.AsyncEnv, visited map[int]bool, parent int, awaitingChild *int) {
	var cands []int
	for _, u := range env.Neighbors {
		if !visited[u] {
			cands = append(cands, u)
		}
	}
	if len(cands) > 0 {
		sort.Ints(cands)
		next := cands[0]
		for _, u := range cands[1:] {
			if nd.degrees[u] > nd.degrees[next] {
				next = u
			}
		}
		visited[next] = true
		*awaitingChild = next
		env.Send(next, wToken{})
		return
	}
	if parent >= 0 {
		env.Send(parent, wToken{})
		return
	}
	env.FinishAll()
}

func dfsConnected(g *graph.Graph, d Demand, seed int64) (Assignment, sim.Stats, error) {
	if g.N() == 0 {
		return Assignment{}, sim.Stats{}, nil
	}
	root := 0
	for v := 1; v < g.N(); v++ {
		if g.Degree(v) > g.Degree(root) {
			root = v
		}
	}
	nodes := make([]*wNode, g.N())
	eng := sim.NewAsyncEngine(g, seed, func(id int) sim.AsyncNode {
		degs := make(map[int]int)
		for _, u := range g.Neighbors(id) {
			degs[u] = g.Degree(u)
		}
		nodes[id] = &wNode{
			g:          g,
			d:          d,
			degrees:    degs,
			id:         id,
			know:       make(Assignment),
			originated: make(map[graph.Arc]bool),
			seen:       make(map[[2]any]bool),
		}
		return nodes[id]
	})
	eng.Inject(root, wStart{})
	if err := eng.Run(); err != nil {
		return nil, sim.Stats{}, err
	}
	as := make(Assignment)
	for _, nd := range nodes {
		for _, a := range nd.owned {
			as[a] = nd.know[a]
		}
	}
	for _, a := range g.Arcs() {
		if len(as[a]) == 0 {
			return nil, sim.Stats{}, fmt.Errorf("weighted: arc %v unserved", a)
		}
	}
	return as, eng.Stats(), nil
}
