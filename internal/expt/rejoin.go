package expt

import (
	"fmt"
	"math/rand"

	"fdlsp/internal/core"
	"fdlsp/internal/dynamic"
	"fdlsp/internal/geom"
	"fdlsp/internal/sim"
)

// RejoinRepair measures what recovering from bounded node outages costs when
// the protocol repairs itself in-band (the crash-rejoin handshake: resync
// requests, replies and generation-tagged re-announcements, counted by
// Result.Rejoin.ResyncMsgs) versus the out-of-band baseline: compute the
// schedule fault-free, then replay the same crash script through the dynamic
// maintenance layer as NodeFail/NodeJoin topology events and count the nodes
// its repairs touch (the maintenance layer's message proxy). Every crash in
// the script is a bounded outage, so in-protocol runs should reintegrate all
// of them (returned = crashes) and hand the maintenance layer nothing —
// that is what the rejoin-aware CrashEvents bridge encodes.
func RejoinRepair(n int, side, radius float64, losses []float64, crashes, trials int, seed int64) (*Table, error) {
	t := NewTable("algo", "loss", "returned", "resync-msgs", "oob-touched", "oob-repaired-arcs", "in/oob")
	for _, algo := range []string{"distMIS", "dfs"} {
		for _, loss := range losses {
			var returned, resync, touched, repaired Sample
			for trial := 0; trial < trials; trial++ {
				rng := rand.New(rand.NewSource(seed + int64(trial)*977))
				g, _ := geom.RandomUDG(n, side, radius, rng)
				plan := &sim.FaultPlan{Seed: seed + int64(trial), Loss: loss}
				used := map[int]bool{}
				for len(plan.Crashes) < crashes {
					v := rng.Intn(g.N())
					if used[v] {
						continue
					}
					used[v] = true
					at := int64(5 + rng.Intn(30))
					plan.Crashes = append(plan.Crashes,
						sim.Crash{Node: v, At: at, RestartAt: at + int64(15+rng.Intn(20))})
				}
				algoSeed := rng.Int63()
				run := func(fault *sim.FaultPlan) (*core.Result, error) {
					if algo == "distMIS" {
						return core.DistMIS(g, core.Options{Seed: algoSeed, Fault: fault})
					}
					return core.DFS(g, core.DFSOptions{Seed: algoSeed, Fault: fault})
				}
				res, err := run(plan)
				if err != nil {
					return nil, fmt.Errorf("rejoin repair %s loss=%g: %w", algo, loss, err)
				}
				base, err := run(nil)
				if err != nil {
					return nil, fmt.Errorf("rejoin repair %s baseline: %w", algo, err)
				}
				net, err := dynamic.New(g, base.Assignment)
				if err != nil {
					return nil, fmt.Errorf("rejoin repair %s baseline: %w", algo, err)
				}
				for _, ev := range dynamic.CrashEvents(g, plan, nil) {
					if err := net.Apply(ev); err != nil {
						return nil, fmt.Errorf("rejoin repair %s replay %v: %w", algo, ev, err)
					}
				}
				st := net.Stats()
				returned.Add(float64(len(res.Rejoin.Returned)))
				resync.Add(float64(res.Rejoin.ResyncMsgs))
				touched.Add(float64(st.TouchedNodes))
				repaired.Add(float64(st.NewArcs + st.RecoloredArcs))
			}
			ratio := "-"
			if touched.Mean() > 0 {
				ratio = fmt.Sprintf("%.2fx", resync.Mean()/touched.Mean())
			}
			t.AddRow(algo, loss, returned.Mean(), resync.Mean(), touched.Mean(), repaired.Mean(), ratio)
		}
	}
	return t, nil
}
