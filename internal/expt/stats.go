// Package expt is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Section 8): workload generators for the
// UDG and general-graph campaigns, runners that execute DistMIS, DFS and
// D-MGC over repeated random instances, aggregation, and plain-text table /
// series rendering used by cmd/experiments and the repository benchmarks.
package expt

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Sample accumulates observations and reports summary statistics.
type Sample struct {
	xs []float64
}

// Add records one observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// N returns the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Std returns the sample standard deviation (0 for fewer than 2 points).
func (s *Sample) Std() float64 {
	if len(s.xs) < 2 {
		return 0
	}
	m := s.Mean()
	ss := 0.0
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(s.xs)-1))
}

// Min returns the smallest observation (+Inf for an empty sample).
func (s *Sample) Min() float64 {
	m := math.Inf(1)
	for _, x := range s.xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest observation (-Inf for an empty sample).
func (s *Sample) Max() float64 {
	m := math.Inf(-1)
	for _, x := range s.xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median (0 for an empty sample).
func (s *Sample) Median() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), s.xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Table renders aligned plain-text tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
		}
		return s
	}
	all := append([][]string{t.header}, t.rows...)
	for _, r := range all {
		for i, c := range r {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
