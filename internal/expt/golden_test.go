package expt

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// -update rewrites the golden files from the current output:
//
//	go test ./internal/expt -run TestBroadcastComparisonGolden -update
var update = flag.Bool("update", false, "rewrite golden files")

// TestBroadcastComparisonGolden pins the rendered table (and its CSV form)
// of one ext-* experiment on a tiny seeded configuration. The experiment is
// fully deterministic per seed, so any drift here means the algorithms, the
// statistics, or the table formatting changed — all of which should be
// deliberate, reviewed via the golden diff.
func TestBroadcastComparisonGolden(t *testing.T) {
	tbl, err := BroadcastComparison([]int{10, 14}, 4, 1.5, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	got := tbl.String() + "\n--- csv ---\n" + tbl.CSV()
	golden := filepath.Join("testdata", "broadcast_comparison.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got != string(want) {
		t.Errorf("experiment table drifted (re-run with -update if intended)\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
