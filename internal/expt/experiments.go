package expt

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"fdlsp/internal/bounds"
	"fdlsp/internal/core"
	"fdlsp/internal/dmgc"
	"fdlsp/internal/geom"
	"fdlsp/internal/graph"
	"fdlsp/internal/mis"
)

// Point aggregates one x-axis position of a slot/rounds figure: a fixed
// workload configuration measured over repeated random instances.
type Point struct {
	Label string
	Nodes int

	Edges  Sample // per-instance edge counts
	AvgDeg Sample

	// Slots per algorithm.
	DistMIS Sample
	DFS     Sample
	DMGC    Sample

	// Theoretical bounds (Theorem 1 lower, 2Δ² upper).
	Lower Sample
	Upper Sample

	// Communication cost of DistMIS (Figures 13–15) and DFS, plus the
	// D-MGC baseline's measured-phase-1 + estimated-phase-2 rounds.
	DistMISRounds Sample
	DistMISMsgs   Sample
	DFSRounds     Sample
	DFSMsgs       Sample
	DMGCRounds    Sample
}

// UDGConfig is the workload of Figures 8–10 and 13: random unit disk graphs
// in a Side×Side plan with the given transmission Radius.
type UDGConfig struct {
	Side       float64
	Radius     float64
	NodeCounts []int
	Trials     int
	Seed       int64
	// Drawer selects the MIS strategy for DistMIS (nil = Luby).
	Drawer mis.Drawer
}

// RunUDG executes the UDG campaign: for every node count, Trials random
// placements, each scheduled by DistMIS (GBG variant), DFS and D-MGC.
func RunUDG(cfg UDGConfig) ([]*Point, error) {
	var points []*Point
	for _, n := range cfg.NodeCounts {
		pt := &Point{Nodes: n}
		err := runTrials(cfg.Trials, func(trial int) (trialResult, error) {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(n)*1_000_003 + int64(trial)))
			g, _ := geom.RandomUDG(n, cfg.Side, cfg.Radius, rng)
			return runAll(g, core.Options{Seed: rng.Int63(), Drawer: cfg.Drawer, Variant: core.GBG})
		}, pt)
		if err != nil {
			return nil, err
		}
		pt.Label = fmt.Sprintf("%d,%.1f", n, pt.AvgDeg.Mean())
		points = append(points, pt)
	}
	return points, nil
}

// GeneralConfig is the workload of Figures 11–12 and 14–15: uniform random
// graphs with a fixed node count and a sweep of edge counts.
type GeneralConfig struct {
	Nodes      int
	EdgeCounts []int
	Trials     int
	Seed       int64
	Drawer     mis.Drawer
}

// RunGeneral executes the general-graph campaign with the paper's Section 6
// DistMIS variant (distance-2 secondary MIS, outgoing arcs only).
func RunGeneral(cfg GeneralConfig) ([]*Point, error) {
	var points []*Point
	for _, m := range cfg.EdgeCounts {
		pt := &Point{Nodes: cfg.Nodes}
		err := runTrials(cfg.Trials, func(trial int) (trialResult, error) {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(m)*7_368_787 + int64(trial)))
			g := graph.ConnectedGNM(cfg.Nodes, m, rng)
			return runAll(g, core.Options{Seed: rng.Int63(), Drawer: cfg.Drawer, Variant: core.General})
		}, pt)
		if err != nil {
			return nil, err
		}
		pt.Label = fmt.Sprintf("%d,%.1f", m, pt.AvgDeg.Mean())
		points = append(points, pt)
	}
	return points, nil
}

// trialResult is the measurement of a single instance.
type trialResult struct {
	edges  int
	avgDeg float64
	lower  int
	upper  int

	distMISSlots  int
	distMISRounds int64
	distMISMsgs   int64
	dfsSlots      int
	dfsRounds     int64
	dfsMsgs       int64
	dmgcSlots     int
	dmgcRounds    int64
}

// runAll schedules g with all three algorithms.
func runAll(g *graph.Graph, opts core.Options) (trialResult, error) {
	tr := trialResult{
		edges:  g.M(),
		avgDeg: g.AvgDegree(),
		lower:  bounds.LowerBound(g),
		upper:  bounds.UpperBound(g),
	}
	dm, err := core.DistMIS(g, opts)
	if err != nil {
		return tr, fmt.Errorf("distMIS: %w", err)
	}
	tr.distMISSlots = dm.Slots
	tr.distMISRounds = dm.Stats.Rounds
	tr.distMISMsgs = dm.Stats.Messages

	df, err := core.DFS(g, core.DFSOptions{Seed: opts.Seed + 1})
	if err != nil {
		return tr, fmt.Errorf("dfs: %w", err)
	}
	tr.dfsSlots = df.Slots
	tr.dfsRounds = df.Stats.Rounds
	tr.dfsMsgs = df.Stats.Messages

	dg, err := dmgc.Schedule(g)
	if err != nil {
		return tr, fmt.Errorf("d-mgc: %w", err)
	}
	tr.dmgcSlots = dg.Slots
	tr.dmgcRounds, err = dmgc.MeasuredRounds(g, opts.Seed+2)
	if err != nil {
		return tr, fmt.Errorf("d-mgc rounds: %w", err)
	}
	return tr, nil
}

// runTrials executes trials in parallel on a bounded worker pool and folds
// the results into pt deterministically (by trial index).
func runTrials(trials int, one func(trial int) (trialResult, error), pt *Point) error {
	if trials <= 0 {
		trials = 1
	}
	results := make([]trialResult, trials)
	errs := make([]error, trials)
	workers := runtime.GOMAXPROCS(0)
	if workers > trials {
		workers = trials
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range next {
				results[t], errs[t] = one(t)
			}
		}()
	}
	for t := 0; t < trials; t++ {
		next <- t
	}
	close(next)
	wg.Wait()
	for t, err := range errs {
		if err != nil {
			return fmt.Errorf("trial %d: %w", t, err)
		}
	}
	for _, tr := range results {
		pt.Edges.Add(float64(tr.edges))
		pt.AvgDeg.Add(tr.avgDeg)
		pt.Lower.Add(float64(tr.lower))
		pt.Upper.Add(float64(tr.upper))
		pt.DistMIS.Add(float64(tr.distMISSlots))
		pt.DistMISRounds.Add(float64(tr.distMISRounds))
		pt.DistMISMsgs.Add(float64(tr.distMISMsgs))
		pt.DFS.Add(float64(tr.dfsSlots))
		pt.DFSRounds.Add(float64(tr.dfsRounds))
		pt.DFSMsgs.Add(float64(tr.dfsMsgs))
		pt.DMGC.Add(float64(tr.dmgcSlots))
		pt.DMGCRounds.Add(float64(tr.dmgcRounds))
	}
	return nil
}

// SlotsTable renders a campaign as the slot-count table behind Figures
// 8–12 (averages over the trials; bounds included as in the paper's plots).
func SlotsTable(points []*Point) *Table {
	t := NewTable("nodes,avg-deg", "edges", "lower", "distMIS", "DFS", "D-MGC", "upper")
	for _, p := range points {
		t.AddRow(p.Label, p.Edges.Mean(), p.Lower.Mean(), p.DistMIS.Mean(), p.DFS.Mean(), p.DMGC.Mean(), p.Upper.Mean())
	}
	return t
}

// RoundsTable renders the communication-round series of Figures 13–15,
// with the D-MGC baseline's rounds (measured phase 1 plus the paper's own
// per-color DFS estimate for phase 2) for context.
func RoundsTable(points []*Point) *Table {
	t := NewTable("edges", "nodes", "distMIS rounds", "distMIS msgs", "DFS rounds", "D-MGC rounds")
	for _, p := range points {
		t.AddRow(int(p.Edges.Mean()+0.5), p.Nodes, p.DistMISRounds.Mean(), p.DistMISMsgs.Mean(), p.DFSRounds.Mean(), p.DMGCRounds.Mean())
	}
	return t
}
