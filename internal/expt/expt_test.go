package expt

import (
	"strings"
	"testing"
)

func TestRunUDGSmall(t *testing.T) {
	pts, err := RunUDG(UDGConfig{Side: 8, Radius: 1.0, NodeCounts: []int{30, 50}, Trials: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("want 2 points, got %d", len(pts))
	}
	for _, p := range pts {
		if p.DistMIS.N() != 3 || p.DFS.N() != 3 || p.DMGC.N() != 3 {
			t.Errorf("point %s: wrong sample sizes", p.Label)
		}
		if p.DistMIS.Mean() < p.Lower.Mean()-1e-9 {
			t.Errorf("point %s: distMIS mean %v below lower bound mean %v", p.Label, p.DistMIS.Mean(), p.Lower.Mean())
		}
		if p.DistMIS.Mean() > p.Upper.Mean()+1e-9 {
			t.Errorf("point %s: distMIS mean %v above upper bound mean %v", p.Label, p.DistMIS.Mean(), p.Upper.Mean())
		}
	}
	out := SlotsTable(pts).String()
	if !strings.Contains(out, "distMIS") {
		t.Errorf("table rendering missing header: %s", out)
	}
}

func TestRunGeneralSmall(t *testing.T) {
	pts, err := RunGeneral(GeneralConfig{Nodes: 40, EdgeCounts: []int{60, 120}, Trials: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("want 2 points, got %d", len(pts))
	}
	if pts[0].Edges.Mean() != 60 || pts[1].Edges.Mean() != 120 {
		t.Errorf("edge counts not honored: %v %v", pts[0].Edges.Mean(), pts[1].Edges.Mean())
	}
	out := RoundsTable(pts).String()
	if !strings.Contains(out, "distMIS rounds") {
		t.Errorf("rounds table missing header: %s", out)
	}
}

func TestRunTable1(t *testing.T) {
	rows, err := RunTable1(7)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"K2,2": 4, "K3,3": 9, "K4,4": 16, "K4": 12, "K5": 20}
	for _, r := range rows {
		if !r.Proved {
			t.Errorf("%s: optimum not proved", r.Name)
		}
		if r.Optimal != want[r.Name] {
			t.Errorf("%s: optimum %d, want %d", r.Name, r.Optimal, want[r.Name])
		}
		if r.ILPChecked && !r.ILPAgrees {
			t.Errorf("%s: ILP disagrees with exact solver", r.Name)
		}
		if r.DFS < r.Optimal {
			t.Errorf("%s: DFS %d below optimum %d", r.Name, r.DFS, r.Optimal)
		}
	}
	_ = Table1Table(rows).String()
}

func TestSampleStats(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("mean = %v, want 5", got)
	}
	if got := s.Std(); got < 2.13 || got > 2.15 {
		t.Errorf("std = %v, want ~2.138", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
	if got := s.Median(); got != 4.5 {
		t.Errorf("median = %v, want 4.5", got)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("x,y", 1.5)
	csv := tb.CSV()
	if !strings.Contains(csv, "\"x,y\"") || !strings.Contains(csv, "1.50") {
		t.Errorf("bad csv: %q", csv)
	}
}

func TestAsciiPlot(t *testing.T) {
	out := AsciiPlot("demo", []string{"a", "b", "c"}, []Series{
		{Label: "s1", Values: []float64{1, 10, 100}},
		{Label: "s2", Values: []float64{5, 50, 500}},
	}, 10)
	for _, want := range []string{"demo", "log10", "legend", "*=s1", "o=s2"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(AsciiPlot("empty", nil, nil, 5), "no positive data") {
		t.Error("empty plot handling")
	}
}

func TestSlotsAndRoundsPlots(t *testing.T) {
	pts, err := RunUDG(UDGConfig{Side: 8, Radius: 1.0, NodeCounts: []int{20, 40}, Trials: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sp := SlotsPlot("fig", pts)
	if !strings.Contains(sp, "distMIS") || !strings.Contains(sp, "D-MGC") {
		t.Errorf("slots plot incomplete:\n%s", sp)
	}
	rp := RoundsPlot("rounds", pts)
	if !strings.Contains(rp, "distMIS rounds") {
		t.Errorf("rounds plot incomplete:\n%s", rp)
	}
}
