package expt

import (
	"strings"
	"testing"
)

func TestRandomizedComparisonSmall(t *testing.T) {
	tb, err := RandomizedComparison([]int{20}, 6, 1.2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	if !strings.Contains(out, "rand slots") {
		t.Errorf("missing column: %s", out)
	}
}

func TestBroadcastComparisonSmall(t *testing.T) {
	tb, err := BroadcastComparison([]int{20}, 6, 1.2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.String(), "broadcast link-service") {
		t.Error("missing column")
	}
}

func TestChurnExperimentSmall(t *testing.T) {
	tb, err := ChurnExperiment(25, 6, 1.2, 40, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.String(), "repair arcs/event") {
		t.Error("missing column")
	}
}

func TestQUDGComparisonSmall(t *testing.T) {
	tb, err := QUDGComparison(25, 6, 1.2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	if !strings.Contains(out, "udg") || !strings.Contains(out, "qudg") {
		t.Errorf("missing models: %s", out)
	}
}

func TestEnergyComparisonSmall(t *testing.T) {
	tb, err := EnergyComparison([]int{20}, 6, 1.2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.String(), "bcast energy/service") {
		t.Error("missing column")
	}
}

func TestFaultOverheadSmall(t *testing.T) {
	tb, err := FaultOverhead(16, 6, 2.5, []float64{0, 0.1}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	if !strings.Contains(out, "msg-overhead") || !strings.Contains(out, "x") {
		t.Errorf("missing overhead column: %s", out)
	}
}

func TestDMGCPhaseOneAblationSmall(t *testing.T) {
	tb, err := DMGCPhaseOneAblation(20, 45, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	if !strings.Contains(out, "misra-gries") || !strings.Contains(out, "vizing+locks") {
		t.Errorf("missing variants: %s", out)
	}
}
