package expt

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plottable line: a label and y-values aligned with the
// shared x-labels of a Plot.
type Series struct {
	Label  string
	Values []float64
}

// AsciiPlot renders series as a log-scale ASCII chart, mirroring the
// paper's figures (which plot slot counts on a log10 axis). Each series
// gets a marker; points landing on the same cell show the later series'
// marker. Intended for terminal inspection of the campaign results.
func AsciiPlot(title string, xLabels []string, series []Series, height int) string {
	if height <= 0 {
		height = 16
	}
	markers := []byte{'*', 'o', '+', 'x', '#', '@'}
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, v := range s.Values {
			if v > 0 {
				minV = math.Min(minV, v)
				maxV = math.Max(maxV, v)
			}
		}
	}
	if math.IsInf(minV, 1) {
		return title + "\n(no positive data)\n"
	}
	logMin, logMax := math.Log10(minV), math.Log10(maxV)
	if logMax-logMin < 1e-9 {
		logMax = logMin + 1
	}
	row := func(v float64) int {
		if v <= 0 {
			return -1
		}
		frac := (math.Log10(v) - logMin) / (logMax - logMin)
		r := int(frac * float64(height-1))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}

	cols := len(xLabels)
	colW := 8
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", cols*colW))
	}
	for si, s := range series {
		mk := markers[si%len(markers)]
		for xi, v := range s.Values {
			if xi >= cols {
				break
			}
			r := row(v)
			if r < 0 {
				continue
			}
			grid[height-1-r][xi*colW+colW/2] = mk
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s  (log10 scale)\n", title)
	for i, line := range grid {
		// Left axis: value at this row.
		frac := float64(height-1-i) / float64(height-1)
		val := math.Pow(10, logMin+frac*(logMax-logMin))
		fmt.Fprintf(&b, "%8.1f |%s\n", val, string(line))
	}
	b.WriteString(strings.Repeat(" ", 9) + "+" + strings.Repeat("-", cols*colW) + "\n")
	b.WriteString(strings.Repeat(" ", 10))
	for _, xl := range xLabels {
		fmt.Fprintf(&b, "%-*s", colW, truncate(xl, colW-1))
	}
	b.WriteString("\n  legend: ")
	for si, s := range series {
		fmt.Fprintf(&b, "%c=%s  ", markers[si%len(markers)], s.Label)
	}
	b.WriteString("\n")
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// SlotsPlot renders a campaign as the paper's slot figures: one line per
// algorithm plus the bounds, log scale.
func SlotsPlot(title string, points []*Point) string {
	xs := make([]string, len(points))
	lower := Series{Label: "lower"}
	upper := Series{Label: "upper"}
	dm := Series{Label: "distMIS"}
	df := Series{Label: "DFS"}
	dg := Series{Label: "D-MGC"}
	for i, p := range points {
		xs[i] = p.Label
		lower.Values = append(lower.Values, p.Lower.Mean())
		upper.Values = append(upper.Values, p.Upper.Mean())
		dm.Values = append(dm.Values, p.DistMIS.Mean())
		df.Values = append(df.Values, p.DFS.Mean())
		dg.Values = append(dg.Values, p.DMGC.Mean())
	}
	return AsciiPlot(title, xs, []Series{lower, dm, df, dg, upper}, 16)
}

// RoundsPlot renders a campaign's DistMIS round series.
func RoundsPlot(title string, points []*Point) string {
	xs := make([]string, len(points))
	dm := Series{Label: "distMIS rounds"}
	df := Series{Label: "DFS rounds"}
	for i, p := range points {
		xs[i] = fmt.Sprintf("%d", int(p.Edges.Mean()+0.5))
		dm.Values = append(dm.Values, p.DistMISRounds.Mean())
		df.Values = append(df.Values, p.DFSRounds.Mean())
	}
	return AsciiPlot(title, xs, []Series{dm, df}, 12)
}
