package expt

import (
	"fmt"
	"math/rand"

	"fdlsp/internal/core"
	"fdlsp/internal/geom"
	"fdlsp/internal/sim"
)

// FaultOverhead sweeps the per-message loss rate and reports what fault
// tolerance costs each distributed algorithm: slots, rounds, messages and
// transport retransmissions per loss level, plus the message overhead
// relative to the fault-free baseline of the same instances. Loss 0 runs
// the plain engines (no transport layer), so the first row is the paper's
// reliable-channel cost and every later row is the price of the ARQ
// machinery under that loss rate.
func FaultOverhead(n int, side, radius float64, losses []float64, trials int, seed int64) (*Table, error) {
	t := NewTable("algo", "loss", "slots", "rounds", "messages", "retries", "msg-overhead")
	for _, algo := range []string{"distMIS", "dfs"} {
		var baseline float64
		for _, loss := range losses {
			var slots, rounds, msgs, retries Sample
			for trial := 0; trial < trials; trial++ {
				rng := rand.New(rand.NewSource(seed + int64(trial)*167))
				g, _ := geom.RandomUDG(n, side, radius, rng)
				var plan *sim.FaultPlan
				if loss > 0 {
					plan = &sim.FaultPlan{Seed: seed + int64(trial), Loss: loss}
				}
				var res *core.Result
				var err error
				switch algo {
				case "distMIS":
					res, err = core.DistMIS(g, core.Options{Seed: rng.Int63(), Fault: plan})
				default:
					res, err = core.DFS(g, core.DFSOptions{Seed: rng.Int63(), Fault: plan})
				}
				if err != nil {
					return nil, fmt.Errorf("fault overhead %s loss=%g: %w", algo, loss, err)
				}
				slots.Add(float64(res.Slots))
				rounds.Add(float64(res.Stats.Rounds))
				msgs.Add(float64(res.Stats.Messages))
				retries.Add(float64(res.Transport.Retries))
			}
			if loss == 0 {
				baseline = msgs.Mean()
			}
			overhead := "-"
			if baseline > 0 && loss > 0 {
				overhead = fmt.Sprintf("%.1fx", msgs.Mean()/baseline)
			}
			t.AddRow(algo, loss, slots.Mean(), rounds.Mean(), msgs.Mean(), retries.Mean(), overhead)
		}
	}
	return t, nil
}
