package expt

import (
	"fmt"

	"fdlsp/internal/coloring"
	"fdlsp/internal/core"
	"fdlsp/internal/exact"
	"fdlsp/internal/graph"
	"fdlsp/internal/ilp"
)

// Table1Row is one line of the paper's Table 1: the optimal slot count
// (paper: ILP) versus the DFS algorithm on complete bipartite and complete
// graphs.
type Table1Row struct {
	Name       string
	Optimal    int  // exact optimum under the paper's Definition 2 / ILP
	Proved     bool // optimality proved by the exact solver
	ILPAgrees  bool // cross-checked with our ILP solver (small cases only)
	ILPChecked bool
	DFS        int
	PaperILP   int // value printed in the paper, for comparison
	PaperDFS   int
}

// Table1Instances returns the paper's Table 1 graphs.
func Table1Instances() []struct {
	Name string
	G    *graph.Graph
} {
	return []struct {
		Name string
		G    *graph.Graph
	}{
		{"K2,2", graph.CompleteBipartite(2, 2)},
		{"K3,3", graph.CompleteBipartite(3, 3)},
		{"K4,4", graph.CompleteBipartite(4, 4)},
		{"K4", graph.Complete(4)},
		{"K5", graph.Complete(5)},
	}
}

// RunTable1 reproduces Table 1. The optimum column is computed by the exact
// conflict-graph solver; on the smallest instances the paper's ILP
// (package ilp, solved by our own simplex branch-and-bound) is additionally
// run and must agree. Paper-reported values are attached for EXPERIMENTS.md
// (note the documented K4,4 discrepancy: the paper prints 15, but 16 is a
// proved lower bound under its own Definition 2).
func RunTable1(seed int64) ([]Table1Row, error) {
	paperILP := map[string]int{"K2,2": 4, "K3,3": 9, "K4,4": 15, "K4": 12, "K5": 20}
	paperDFS := map[string]int{"K2,2": 4, "K3,3": 10, "K4,4": 18, "K4": 12, "K5": 20}
	// The ILP cross-check uses the clique-strengthened formulation
	// (ilp.SolveFDLSPStrong) where it stays fast; K3,3 takes ~40s and
	// K4,4 exceeds the budget, so those rely on the exact solver alone
	// (package ilp's tests cover additional tiny instances).
	ilpCheck := map[string]bool{"K2,2": true, "K4": true, "K5": true}

	var rows []Table1Row
	for _, inst := range Table1Instances() {
		as, col := exact.MinSlots(inst.G, exact.Options{})
		if viols := coloring.Verify(inst.G, as); len(viols) != 0 {
			return nil, fmt.Errorf("table1 %s: exact schedule invalid: %v", inst.Name, viols[0])
		}
		row := Table1Row{
			Name:     inst.Name,
			Optimal:  col.K,
			Proved:   col.Optimal,
			PaperILP: paperILP[inst.Name],
			PaperDFS: paperDFS[inst.Name],
		}
		if ilpCheck[inst.Name] {
			res, err := ilp.SolveFDLSPStrong(inst.G, 0, ilp.SolveOptions{MaxNodes: 500_000})
			if err != nil {
				return nil, fmt.Errorf("table1 %s: ILP: %w", inst.Name, err)
			}
			row.ILPChecked = true
			row.ILPAgrees = res.Optimal && res.Slots == col.K
		}
		df, err := core.DFS(inst.G, core.DFSOptions{Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("table1 %s: DFS: %w", inst.Name, err)
		}
		row.DFS = df.Slots
		rows = append(rows, row)
	}
	return rows, nil
}

// Table1Table renders the rows.
func Table1Table(rows []Table1Row) *Table {
	t := NewTable("graph", "optimal", "proved", "ILP-xcheck", "DFS", "paper-ILP", "paper-DFS")
	for _, r := range rows {
		check := "-"
		if r.ILPChecked {
			if r.ILPAgrees {
				check = "agree"
			} else {
				check = "DISAGREE"
			}
		}
		t.AddRow(r.Name, r.Optimal, r.Proved, check, r.DFS, r.PaperILP, r.PaperDFS)
	}
	return t
}
