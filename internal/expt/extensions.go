package expt

import (
	"fmt"
	"math/rand"

	"fdlsp/internal/bounds"
	"fdlsp/internal/broadcast"
	"fdlsp/internal/coloring"
	"fdlsp/internal/core"
	"fdlsp/internal/dmgc"
	"fdlsp/internal/dynamic"
	"fdlsp/internal/energy"
	"fdlsp/internal/geom"
	"fdlsp/internal/graph"
	"fdlsp/internal/sched"
)

// The extension experiments quantify the repository's additions beyond the
// paper's figures: the randomized algorithm the paper reports discarding,
// the broadcast-versus-link-scheduling comparison its introduction argues
// qualitatively, and the incremental-repair cost for its future-work
// fault-tolerance direction.

// RandomizedComparison runs DistMIS and the randomized algorithm on the
// same instances and reports average slots and rounds for both — checking
// the paper's stated reason for rejecting the randomized approach ("longer
// schedule with speed that is close to the independent set based
// algorithm").
func RandomizedComparison(nodeCounts []int, side, radius float64, trials int, seed int64) (*Table, error) {
	t := NewTable("nodes", "avg-deg", "distMIS slots", "rand slots", "distMIS rounds", "rand rounds")
	for _, n := range nodeCounts {
		var deg, mSlots, rSlots, mRounds, rRounds Sample
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(seed + int64(n)*131 + int64(trial)))
			g, _ := geom.RandomUDG(n, side, radius, rng)
			deg.Add(g.AvgDegree())
			m, err := core.DistMIS(g, core.Options{Seed: rng.Int63()})
			if err != nil {
				return nil, fmt.Errorf("randomized comparison distMIS: %w", err)
			}
			r, err := core.Randomized(g, rng.Int63())
			if err != nil {
				return nil, fmt.Errorf("randomized comparison randomized: %w", err)
			}
			mSlots.Add(float64(m.Slots))
			rSlots.Add(float64(r.Slots))
			mRounds.Add(float64(m.Stats.Rounds))
			rRounds.Add(float64(r.Stats.Rounds))
		}
		t.AddRow(n, deg.Mean(), mSlots.Mean(), rSlots.Mean(), mRounds.Mean(), rRounds.Mean())
	}
	return t, nil
}

// BroadcastComparison reproduces the introduction's argument with numbers:
// the slots needed to serve every directed link once under broadcast
// scheduling (frame · Δ) versus one FDLSP frame.
func BroadcastComparison(nodeCounts []int, side, radius float64, trials int, seed int64) (*Table, error) {
	t := NewTable("nodes", "avg-deg", "broadcast frame", "broadcast link-service", "FDLSP frame (distMIS)")
	for _, n := range nodeCounts {
		var deg, bFrame, bService, lFrame Sample
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(seed + int64(n)*137 + int64(trial)))
			g, _ := geom.RandomUDG(n, side, radius, rng)
			deg.Add(g.AvgDegree())
			colors := broadcast.Greedy(g)
			if ok, bad := broadcast.Verify(g, colors); !ok {
				return nil, fmt.Errorf("broadcast comparison: invalid schedule %v", bad)
			}
			m, err := core.DistMIS(g, core.Options{Seed: rng.Int63()})
			if err != nil {
				return nil, fmt.Errorf("broadcast comparison distMIS: %w", err)
			}
			bFrame.Add(float64(broadcast.Slots(colors)))
			bService.Add(float64(broadcast.LinkServiceSlots(g, colors)))
			lFrame.Add(float64(m.Slots))
		}
		t.AddRow(n, deg.Mean(), bFrame.Mean(), bService.Mean(), lFrame.Mean())
	}
	return t, nil
}

// ChurnExperiment measures incremental repair against full rebuilds: random
// link churn on a UDG, reporting per-event repair cost, frame drift, and
// the arcs a rebuild would recolor.
func ChurnExperiment(n int, side, radius float64, events, trials int, seed int64) (*Table, error) {
	t := NewTable("trial", "events", "repair arcs/event", "touched nodes/event", "frame start", "frame end", "distinct end", "rebuild frame", "rebuild arcs")
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(seed + int64(trial)*149))
		g, _ := geom.RandomUDG(n, side, radius, rng)
		as := coloring.Greedy(g, nil)
		net, err := dynamic.New(g, as)
		if err != nil {
			return nil, err
		}
		start := net.Slots()
		applied := 0
		for applied < events {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			kind := dynamic.LinkUp
			if net.Graph().HasEdge(u, v) {
				kind = dynamic.LinkDown
			}
			if err := net.Apply(dynamic.Event{Kind: kind, U: u, V: v}); err != nil {
				return nil, err
			}
			applied++
			if viols := coloring.Verify(net.Graph(), net.Assignment()); len(viols) != 0 {
				return nil, fmt.Errorf("churn: invalid after %d events: %v", applied, viols[0])
			}
		}
		st := net.Stats()
		rebuild := net.Rebuild()
		// Incremental repair can retire colors without compacting the frame:
		// "distinct end" < "frame end" quantifies the idle slots a rebuild
		// would reclaim.
		t.AddRow(trial,
			st.Events,
			float64(st.NewArcs+st.RecoloredArcs)/float64(st.Events),
			float64(st.TouchedNodes)/float64(st.Events),
			start, net.Slots(), net.Assignment().DistinctColors(), rebuild.NumColors(), 2*net.Graph().M())
	}
	return t, nil
}

// QUDGComparison schedules the same placements under UDG and quasi-UDG
// connectivity, showing the algorithms are model-agnostic (the paper's GBG
// claim) — slot counts track density, not the specific geometric model.
func QUDGComparison(n int, side, radius float64, trials int, seed int64) (*Table, error) {
	t := NewTable("model", "edges", "avg-deg", "distMIS slots", "DFS slots", "lower", "upper")
	type cfg struct {
		name  string
		alpha float64
		p     float64
	}
	for _, c := range []cfg{{"udg", 1, 0}, {"qudg a=0.75 p=0.5", 0.75, 0.5}, {"qudg a=0.5 p=0.3", 0.5, 0.3}} {
		var edges, deg, mis, dfs, lo, hi Sample
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(seed + int64(trial)*151))
			pts := geom.RandomPoints(n, side, rng)
			g := geom.QuasiUnitDisk(pts, radius, c.alpha, c.p, rng)
			edges.Add(float64(g.M()))
			deg.Add(g.AvgDegree())
			m, err := core.DistMIS(g, core.Options{Seed: rng.Int63()})
			if err != nil {
				return nil, err
			}
			d, err := core.DFS(g, core.DFSOptions{Seed: rng.Int63()})
			if err != nil {
				return nil, err
			}
			mis.Add(float64(m.Slots))
			dfs.Add(float64(d.Slots))
			lo.Add(float64(lowerOf(g)))
			hi.Add(float64(upperOf(g)))
		}
		t.AddRow(c.name, edges.Mean(), deg.Mean(), mis.Mean(), dfs.Mean(), lo.Mean(), hi.Mean())
	}
	return t, nil
}

func lowerOf(g *graph.Graph) int { return bounds.LowerBound(g) }
func upperOf(g *graph.Graph) int { return bounds.UpperBound(g) }

// EnergyComparison quantifies the paper's §1 power argument: per-node
// energy per frame and per full link service under link versus broadcast
// scheduling, using typical low-power-radio cost ratios.
func EnergyComparison(nodeCounts []int, side, radius float64, trials int, seed int64) (*Table, error) {
	t := NewTable("nodes", "avg-deg", "link energy/frame", "bcast energy/frame", "link energy/service", "bcast energy/service")
	model := energy.DefaultModel()
	for _, n := range nodeCounts {
		var deg, lFrame, bFrame, lServ, bServ Sample
		for trial := 0; trial < trials; trial++ {
			rng := rand.New(rand.NewSource(seed + int64(n)*157 + int64(trial)))
			g, _ := geom.RandomUDG(n, side, radius, rng)
			deg.Add(g.AvgDegree())
			s, err := sched.Build(g, coloring.Greedy(g, nil))
			if err != nil {
				return nil, err
			}
			colors := broadcast.Greedy(g)
			lr := energy.LinkSchedule(g, s, model)
			br, err := energy.BroadcastSchedule(g, colors, model)
			if err != nil {
				return nil, err
			}
			link, bcast, err := energy.PerLinkServiceEnergy(g, s, colors, model)
			if err != nil {
				return nil, err
			}
			lFrame.Add(lr.Mean)
			bFrame.Add(br.Mean)
			lServ.Add(link)
			bServ.Add(bcast)
		}
		t.AddRow(n, deg.Mean(), lFrame.Mean(), bFrame.Mean(), lServ.Mean(), bServ.Mean())
	}
	return t, nil
}

// DMGCPhaseOneAblation compares the three phase-1 strategies for D-MGC on
// the same instances: centralized Misra–Gries (output-faithful), the fully
// distributed (2Δ-1) randomized coloring, and the protocol-faithful
// distributed Vizing with locks — slots and measured rounds.
func DMGCPhaseOneAblation(nodes, edges, trials int, seed int64) (*Table, error) {
	t := NewTable("variant", "slots", "phase-1 rounds", "messages")
	var mgSlots, dSlots, dRounds, dMsgs, vSlots, vRounds, vMsgs Sample
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(seed + int64(trial)*163))
		g := graph.ConnectedGNM(nodes, edges, rng)
		a, err := dmgc.Schedule(g)
		if err != nil {
			return nil, err
		}
		b, err := dmgc.ScheduleDistributed(g, int64(trial))
		if err != nil {
			return nil, err
		}
		c, err := dmgc.ScheduleVizingDistributed(g, int64(trial))
		if err != nil {
			return nil, err
		}
		mgSlots.Add(float64(a.Slots))
		dSlots.Add(float64(b.Slots))
		dRounds.Add(float64(b.Stats.Rounds))
		dMsgs.Add(float64(b.Stats.Messages))
		vSlots.Add(float64(c.Slots))
		vRounds.Add(float64(c.Stats.Rounds))
		vMsgs.Add(float64(c.Stats.Messages))
	}
	t.AddRow("misra-gries (centralized)", mgSlots.Mean(), "-", "-")
	t.AddRow("distributed 2Δ-1", dSlots.Mean(), dRounds.Mean(), dMsgs.Mean())
	t.AddRow("distributed vizing+locks", vSlots.Mean(), vRounds.Mean(), vMsgs.Mean())
	return t, nil
}
