// Package traffic runs packet-level simulations over an FDLSP TDMA frame:
// flows are routed along shortest paths and forwarded slot by slot exactly
// when the frame schedules their next-hop link. It turns a schedule from a
// static coloring into an operated network — measuring delivery latency,
// drain time and queue growth for the data-collection workloads that
// motivate the paper (multi-hop convergecast to a base station, plus
// arbitrary unicast flows).
package traffic

import (
	"fmt"
	"sort"

	"fdlsp/internal/graph"
	"fdlsp/internal/sched"
)

// Flow is a demand: Packets packets from Src to Dst.
type Flow struct {
	Src, Dst int
	Packets  int
}

// Result summarizes one simulation.
type Result struct {
	TotalPackets int
	Delivered    int
	Frames       int     // frames elapsed until the network drained
	SlotsElapsed int64   // Frames · frame length
	AvgLatency   float64 // slots from injection to delivery, averaged
	MaxLatency   int64
	MaxQueue     int // peak per-node queue length observed
}

// packet is one in-flight datagram.
type packet struct {
	dst  int
	born int64 // global slot index at injection
}

// NextHops returns, for destination dst, the next-hop neighbor of every
// node along a shortest path (-1 for dst itself and for unreachable nodes).
func NextHops(g *graph.Graph, dst int) []int {
	dist := g.BFSFrom(dst)
	next := make([]int, g.N())
	for v := range next {
		next[v] = -1
		if v == dst || dist[v] < 0 {
			continue
		}
		for _, u := range g.Neighbors(v) {
			if dist[u] == dist[v]-1 {
				next[v] = u
				break
			}
		}
	}
	return next
}

// ConvergecastFlows returns the canonical sensor-network demand: one packet
// from every other node to the sink.
func ConvergecastFlows(g *graph.Graph, sink int) []Flow {
	var flows []Flow
	for v := 0; v < g.N(); v++ {
		if v != sink {
			flows = append(flows, Flow{Src: v, Dst: sink, Packets: 1})
		}
	}
	return flows
}

// Simulate injects all flows at slot 0 and runs the TDMA frame repeatedly
// until every packet is delivered or maxFrames elapse (error). In each slot
// every scheduled link (u,v) forwards at most one queued packet from u whose
// shortest-path next hop is v — FIFO per node.
func Simulate(g *graph.Graph, s *sched.Schedule, flows []Flow, maxFrames int) (*Result, error) {
	if maxFrames <= 0 {
		maxFrames = 100_000
	}
	res := &Result{}

	// Per-destination routing tables, computed once per distinct dst.
	next := make(map[int][]int)
	for _, f := range flows {
		if f.Src < 0 || f.Src >= g.N() || f.Dst < 0 || f.Dst >= g.N() {
			return nil, fmt.Errorf("traffic: flow %v out of range", f)
		}
		if f.Src == f.Dst {
			return nil, fmt.Errorf("traffic: flow %v routes to itself", f)
		}
		if _, ok := next[f.Dst]; !ok {
			next[f.Dst] = NextHops(g, f.Dst)
		}
		if next[f.Dst][f.Src] < 0 {
			return nil, fmt.Errorf("traffic: destination %d unreachable from %d", f.Dst, f.Src)
		}
		res.TotalPackets += f.Packets
	}

	queues := make([][]packet, g.N())
	for _, f := range flows {
		for i := 0; i < f.Packets; i++ {
			queues[f.Src] = append(queues[f.Src], packet{dst: f.Dst, born: 0})
		}
	}

	var latencySum int64
	remaining := res.TotalPackets
	globalSlot := int64(0)
	for frame := 0; remaining > 0; frame++ {
		if frame >= maxFrames {
			return nil, fmt.Errorf("traffic: %d packets undelivered after %d frames", remaining, maxFrames)
		}
		res.Frames = frame + 1
		for si := 0; si < s.FrameLength; si++ {
			globalSlot++
			// Deliveries land after the slot so a packet moves one hop per
			// slot at most; collect (node, packet) moves first.
			type move struct {
				to int
				p  packet
			}
			var moves []move
			for _, a := range s.Slots[si] {
				q := queues[a.From]
				for qi, p := range q {
					if next[p.dst] != nil && next[p.dst][a.From] == a.To {
						queues[a.From] = append(q[:qi:qi], q[qi+1:]...)
						moves = append(moves, move{to: a.To, p: p})
						break
					}
				}
			}
			sort.SliceStable(moves, func(i, j int) bool { return moves[i].to < moves[j].to })
			for _, m := range moves {
				if m.to == m.p.dst {
					res.Delivered++
					remaining--
					lat := globalSlot - m.p.born
					latencySum += lat
					if lat > res.MaxLatency {
						res.MaxLatency = lat
					}
				} else {
					queues[m.to] = append(queues[m.to], m.p)
				}
			}
			for _, q := range queues {
				if len(q) > res.MaxQueue {
					res.MaxQueue = len(q)
				}
			}
		}
	}
	res.SlotsElapsed = int64(res.Frames) * int64(s.FrameLength)
	if res.Delivered > 0 {
		res.AvgLatency = float64(latencySum) / float64(res.Delivered)
	}
	return res, nil
}
