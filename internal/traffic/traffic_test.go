package traffic

import (
	"math/rand"
	"testing"

	"fdlsp/internal/coloring"
	"fdlsp/internal/geom"
	"fdlsp/internal/graph"
	"fdlsp/internal/sched"
)

func frameOf(tb testing.TB, g *graph.Graph) *sched.Schedule {
	tb.Helper()
	s, err := sched.Build(g, coloring.Greedy(g, nil))
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

func TestNextHops(t *testing.T) {
	g := graph.Path(5)
	next := NextHops(g, 4)
	for v := 0; v < 4; v++ {
		if next[v] != v+1 {
			t.Errorf("next[%d] = %d, want %d", v, next[v], v+1)
		}
	}
	if next[4] != -1 {
		t.Error("destination should have no next hop")
	}
	g2 := graph.New(3)
	g2.AddEdge(0, 1)
	if next := NextHops(g2, 2); next[0] != -1 {
		t.Error("unreachable node should have next hop -1")
	}
}

func TestSimulateSingleFlowOnPath(t *testing.T) {
	g := graph.Path(5)
	s := frameOf(t, g)
	res, err := Simulate(g, s, []Flow{{Src: 0, Dst: 4, Packets: 1}}, 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 1 || res.TotalPackets != 1 {
		t.Fatalf("delivered %d/%d", res.Delivered, res.TotalPackets)
	}
	// 4 hops, one hop per slot minimum.
	if res.AvgLatency < 4 {
		t.Errorf("latency %v below hop count", res.AvgLatency)
	}
	if res.MaxLatency < int64(res.AvgLatency) {
		t.Error("max latency below average")
	}
}

func TestSimulateConvergecastDrains(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var g *graph.Graph
	for {
		g, _ = geom.RandomUDG(60, 8, 1.6, rng)
		if g.Connected() {
			break
		}
	}
	s := frameOf(t, g)
	flows := ConvergecastFlows(g, 0)
	res, err := Simulate(g, s, flows, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != g.N()-1 {
		t.Fatalf("delivered %d of %d", res.Delivered, g.N()-1)
	}
	if res.Frames < 1 || res.SlotsElapsed != int64(res.Frames)*int64(s.FrameLength) {
		t.Error("frame accounting wrong")
	}
	if res.MaxQueue < 1 {
		t.Error("convergecast must queue at the bottleneck")
	}
}

func TestSimulateMultiplePacketsAndCrossFlows(t *testing.T) {
	g := graph.Grid(4, 4)
	s := frameOf(t, g)
	flows := []Flow{
		{Src: 0, Dst: 15, Packets: 5},
		{Src: 15, Dst: 0, Packets: 5},
		{Src: 3, Dst: 12, Packets: 3},
	}
	res, err := Simulate(g, s, flows, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 13 {
		t.Fatalf("delivered %d, want 13", res.Delivered)
	}
}

func TestSimulateErrors(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	s := frameOf(t, g)
	if _, err := Simulate(g, s, []Flow{{Src: 0, Dst: 3, Packets: 1}}, 10); err == nil {
		t.Error("unreachable destination should error")
	}
	if _, err := Simulate(g, s, []Flow{{Src: 0, Dst: 0, Packets: 1}}, 10); err == nil {
		t.Error("self flow should error")
	}
	if _, err := Simulate(g, s, []Flow{{Src: 0, Dst: 9, Packets: 1}}, 10); err == nil {
		t.Error("out-of-range flow should error")
	}
}

func TestSimulateFullDuplexBothDirections(t *testing.T) {
	// Full duplex: opposite flows over the same edge both complete within
	// the same frame structure.
	g := graph.Path(2)
	s := frameOf(t, g)
	res, err := Simulate(g, s, []Flow{
		{Src: 0, Dst: 1, Packets: 1},
		{Src: 1, Dst: 0, Packets: 1},
	}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 2 || res.Frames != 1 {
		t.Errorf("full duplex exchange took %d frames, delivered %d", res.Frames, res.Delivered)
	}
}

func TestLatencyScalesWithSparserSchedules(t *testing.T) {
	// A frame twice as long cannot make delivery faster in slots.
	g := graph.Path(6)
	short := frameOf(t, g)
	// Build an artificially stretched schedule: same arcs, colors doubled.
	as := coloring.Greedy(g, nil)
	stretched := coloring.NewAssignment(g)
	for a, c := range as {
		stretched.Set(a, 2*c)
	}
	long, err := sched.Build(g, stretched)
	if err != nil {
		t.Fatal(err)
	}
	flow := []Flow{{Src: 0, Dst: 5, Packets: 2}}
	rs, err := Simulate(g, short, flow, 100)
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Simulate(g, long, flow, 100)
	if err != nil {
		t.Fatal(err)
	}
	if rl.SlotsElapsed < rs.SlotsElapsed {
		t.Errorf("stretched frame drained faster: %d < %d slots", rl.SlotsElapsed, rs.SlotsElapsed)
	}
}
