package exact

import (
	"math/rand"
	"testing"

	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
)

func TestMinVertexColoringKnownValues(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"empty1", graph.New(1), 1},
		{"path5", graph.Path(5), 2},
		{"cycle6", graph.Cycle(6), 2},
		{"cycle7", graph.Cycle(7), 3},
		{"k4", graph.Complete(4), 4},
		{"k6", graph.Complete(6), 6},
		{"k33", graph.CompleteBipartite(3, 3), 2},
		{"star9", graph.Star(9), 2},
		{"petersen-ish", graph.GNM(10, 15, rng), 0}, // checked for validity only
	}
	for _, tc := range cases {
		col := MinVertexColoring(tc.g, Options{})
		if !col.Optimal {
			t.Errorf("%s: not proved optimal", tc.name)
		}
		if tc.want > 0 && col.K != tc.want {
			t.Errorf("%s: got %d colors, want %d", tc.name, col.K, tc.want)
		}
		for v := 0; v < tc.g.N(); v++ {
			for _, u := range tc.g.Neighbors(v) {
				if col.Colors[v] == col.Colors[u] {
					t.Fatalf("%s: adjacent %d,%d share color %d", tc.name, v, u, col.Colors[v])
				}
			}
		}
	}
}

// bruteChromatic is an independent reference: try k = 1,2,... by exhaustive
// assignment.
func bruteChromatic(g *graph.Graph) int {
	n := g.N()
	if n == 0 {
		return 0
	}
	for k := 1; ; k++ {
		colors := make([]int, n)
		var try func(v int) bool
		try = func(v int) bool {
			if v == n {
				return true
			}
			for c := 1; c <= k; c++ {
				ok := true
				for _, u := range g.Neighbors(v) {
					if u < v && colors[u] == c {
						ok = false
						break
					}
				}
				if ok {
					colors[v] = c
					if try(v + 1) {
						return true
					}
				}
			}
			colors[v] = 0
			return false
		}
		if try(0) {
			return k
		}
	}
}

func TestMinVertexColoringAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(8)
		maxM := n * (n - 1) / 2
		g := graph.GNM(n, rng.Intn(maxM+1), rng)
		col := MinVertexColoring(g, Options{})
		want := bruteChromatic(g)
		if col.K != want {
			t.Fatalf("trial %d (%v): got %d colors, brute force %d", trial, g, col.K, want)
		}
	}
}

func TestMinSlotsTable1Values(t *testing.T) {
	// Table 1 of the paper: optimal slot counts from the ILP. One
	// documented deviation: the paper reports 15 for K4,4, but under its own
	// Definition 2 any two same-direction arcs of K_{a,b} conflict (the head
	// of one is always adjacent to the tail of the other across the parts),
	// so a slot holds at most one arc per direction and K_{a,b} needs
	// exactly a·b slots: K4,4 = 16 (see EXPERIMENTS.md).
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"K2,2", graph.CompleteBipartite(2, 2), 4},
		{"K3,3", graph.CompleteBipartite(3, 3), 9},
		{"K4,4", graph.CompleteBipartite(4, 4), 16},
		{"K4", graph.Complete(4), 12},
		{"K5", graph.Complete(5), 20},
	}
	for _, tc := range cases {
		as, col := MinSlots(tc.g, Options{})
		if !col.Optimal {
			t.Errorf("%s: not proved optimal (nodes=%d)", tc.name, col.Nodes)
			continue
		}
		if col.K != tc.want {
			t.Errorf("%s: got %d slots, paper's ILP says %d", tc.name, col.K, tc.want)
		}
		if viols := coloring.Verify(tc.g, as); len(viols) != 0 {
			t.Errorf("%s: invalid schedule: %v", tc.name, viols[0])
		}
	}
}

func TestMinSlotsCycles(t *testing.T) {
	// The paper's Section 3 Note (quoting [8]) claims 4 slots for even and
	// 6 for odd cycles, but that is inconsistent with its own Definition 2:
	// e.g. in C6 any feasible slot holds at most 2 of the 12 arcs (a third
	// arc always shares an endpoint or puts a transmitter next to a
	// receiver), forcing 6 slots. These are the proved Definition-2 optima
	// (see EXPERIMENTS.md).
	want := map[int]int{4: 4, 5: 5, 6: 6, 7: 5, 8: 4, 9: 5, 10: 5}
	for n := 4; n <= 10; n++ {
		_, col := MinSlots(graph.Cycle(n), Options{})
		if !col.Optimal {
			t.Errorf("C%d: not proved optimal", n)
			continue
		}
		if col.K != want[n] {
			t.Errorf("C%d: got %d slots, want %d", n, col.K, want[n])
		}
	}
}

func TestMinSlotsCompleteGraphsFormula(t *testing.T) {
	// K_n needs Δ²+Δ slots (every arc in its own slot).
	for _, n := range []int{3, 4, 5} {
		_, col := MinSlots(graph.Complete(n), Options{})
		want := (n-1)*(n-1) + (n - 1)
		if col.K != want {
			t.Errorf("K%d: got %d slots, want Δ²+Δ=%d", n, col.K, want)
		}
	}
}
