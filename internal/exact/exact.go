// Package exact computes optimal FDLSP schedules for small instances by
// exact minimum vertex coloring of the conflict graph (Lemma 6): DSATUR
// branch-and-bound with a clique lower bound. It serves as the optimum
// oracle for the paper's Table 1 and as a cross-check for the ILP of
// Section 4 (package ilp) — two independent exact methods that must agree.
package exact

import (
	"fdlsp/internal/bounds"
	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
)

// Options bounds the search.
type Options struct {
	// MaxNodes caps the number of branch-and-bound nodes explored; zero
	// means 50 million. When exhausted, the best coloring found so far is
	// returned with Optimal=false.
	MaxNodes int64
}

// Coloring is the result of an exact vertex-coloring search.
type Coloring struct {
	Colors  []int // per-vertex colors, 1-based
	K       int   // number of colors used
	Optimal bool  // proved optimal within the node budget
	Nodes   int64 // branch-and-bound nodes explored
}

// MinVertexColoring returns a minimum proper vertex coloring of g.
func MinVertexColoring(g *graph.Graph, opts Options) Coloring {
	n := g.N()
	if n == 0 {
		return Coloring{Colors: nil, K: 0, Optimal: true}
	}
	maxNodes := opts.MaxNodes
	if maxNodes == 0 {
		maxNodes = 50_000_000
	}

	adj := make([][]int, n)
	for v := 0; v < n; v++ {
		adj[v] = g.Neighbors(v)
	}

	// Incumbent: greedy DSATUR coloring.
	best := dsaturGreedy(g, adj)
	bestK := 0
	for _, c := range best {
		if c > bestK {
			bestK = c
		}
	}
	// Lower bound: a clique of size k needs k colors.
	lower := bounds.MaxCliqueSize(g)
	if lower >= bestK {
		return Coloring{Colors: best, K: bestK, Optimal: true, Nodes: 0}
	}

	st := &search{
		adj:      adj,
		color:    make([]int, n),
		satCount: make([]int, n),
		satMask:  make([]map[int]int, n),
		best:     best,
		bestK:    bestK,
		lower:    lower,
		maxNodes: maxNodes,
	}
	for v := range st.satMask {
		st.satMask[v] = make(map[int]int)
	}
	st.branch(0, 0)
	return Coloring{Colors: st.best, K: st.bestK, Optimal: st.nodes < st.maxNodes, Nodes: st.nodes}
}

type search struct {
	adj      [][]int
	color    []int
	satCount []int         // saturation degree of uncolored vertices
	satMask  []map[int]int // vertex -> color -> count among colored neighbors
	best     []int
	bestK    int
	lower    int
	nodes    int64
	maxNodes int64
}

// branch colors vertices one at a time, always choosing the uncolored
// vertex of maximum saturation (ties: maximum degree, then lowest index).
// colored counts assigned vertices; usedK is the number of colors in use.
func (st *search) branch(colored, usedK int) {
	if st.nodes >= st.maxNodes || st.bestK == st.lower {
		return
	}
	st.nodes++
	n := len(st.color)
	if colored == n {
		if usedK < st.bestK {
			st.bestK = usedK
			copy(st.best, st.color)
		}
		return
	}
	// Select DSATUR vertex.
	v := -1
	for u := 0; u < n; u++ {
		if st.color[u] != 0 {
			continue
		}
		if v < 0 || st.satCount[u] > st.satCount[v] ||
			(st.satCount[u] == st.satCount[v] && len(st.adj[u]) > len(st.adj[v])) {
			v = u
		}
	}
	limit := usedK + 1
	if limit > st.bestK-1 {
		limit = st.bestK - 1 // using bestK or more colors cannot improve
	}
	for c := 1; c <= limit; c++ {
		if st.satMask[v][c] > 0 {
			continue
		}
		st.assign(v, c)
		nk := usedK
		if c > usedK {
			nk = c
		}
		st.branch(colored+1, nk)
		st.unassign(v, c)
		if st.nodes >= st.maxNodes || st.bestK == st.lower {
			return
		}
	}
}

func (st *search) assign(v, c int) {
	st.color[v] = c
	for _, u := range st.adj[v] {
		if st.color[u] == 0 {
			if st.satMask[u][c] == 0 {
				st.satCount[u]++
			}
			st.satMask[u][c]++
		}
	}
}

func (st *search) unassign(v, c int) {
	st.color[v] = 0
	for _, u := range st.adj[v] {
		if st.color[u] == 0 {
			st.satMask[u][c]--
			if st.satMask[u][c] == 0 {
				st.satCount[u]--
			}
		}
	}
}

// dsaturGreedy produces the DSATUR greedy coloring used as the incumbent.
func dsaturGreedy(g *graph.Graph, adj [][]int) []int {
	n := g.N()
	color := make([]int, n)
	sat := make([]map[int]bool, n)
	for v := range sat {
		sat[v] = make(map[int]bool)
	}
	for step := 0; step < n; step++ {
		v := -1
		for u := 0; u < n; u++ {
			if color[u] != 0 {
				continue
			}
			if v < 0 || len(sat[u]) > len(sat[v]) ||
				(len(sat[u]) == len(sat[v]) && len(adj[u]) > len(adj[v])) {
				v = u
			}
		}
		c := 1
		for sat[v][c] {
			c++
		}
		color[v] = c
		for _, u := range adj[v] {
			if color[u] == 0 {
				sat[u][c] = true
			}
		}
	}
	return color
}

// MinSlots computes the optimal FDLSP schedule of g: the minimum distance-2
// edge coloring of the bi-directed graph, via exact coloring of the
// conflict graph. Intended for the small instances of Table 1.
func MinSlots(g *graph.Graph, opts Options) (coloring.Assignment, Coloring) {
	cg, arcs := coloring.ConflictGraph(g)
	col := MinVertexColoring(cg, opts)
	as := coloring.NewAssignment(g)
	for i, a := range arcs {
		as.Set(a, col.Colors[i])
	}
	return as, col
}
