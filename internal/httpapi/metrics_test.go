package httpapi

import (
	"bytes"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fdlsp/internal/graph"
	"fdlsp/internal/obs"
)

// TestMetricsEndpointCoversAllFamilies is the end-to-end scrape check: after
// a couple of scheduling runs, GET /metrics must expose the http, sim,
// transport and core families in Prometheus text format.
func TestMetricsEndpointCoversAllFamilies(t *testing.T) {
	s := server(t)
	g := graph.ConnectedGNM(15, 30, rand.New(rand.NewSource(3)))
	for _, algo := range []string{"distmis", "dfs"} {
		if resp := post(t, s.URL+"/v1/schedule", scheduleRequest{Graph: g, Algorithm: algo, Seed: 1}); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s run: status %d", algo, resp.StatusCode)
		}
	}
	resp, err := http.Get(s.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		// HTTP middleware families, with the schedule route recorded.
		`fdlsp_http_requests_total{route="/v1/schedule",method="POST",code="200"} 2`,
		`fdlsp_http_request_duration_seconds_bucket{route="/v1/schedule",le="+Inf"} 2`,
		"# TYPE fdlsp_http_in_flight_requests gauge",
		// One run per algorithm reached the core layer.
		`fdlsp_core_runs_total{algorithm="distmis"} 1`,
		`fdlsp_core_runs_total{algorithm="dfs"} 1`,
		`fdlsp_core_phase_rounds_total{algorithm="dfs",phase="traversal"}`,
		// Engine and transport families registered on the same registry.
		`fdlsp_sim_runs_total{engine="sync"} `,
		`fdlsp_sim_runs_total{engine="async"} 1`,
		"# TYPE fdlsp_transport_segments_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestMetricsSchemaExposedBeforeFirstRequest asserts newService pre-registers
// every family, so a fresh server's very first scrape already shows the full
// schema (zero-valued where unlabeled).
func TestMetricsSchemaExposedBeforeFirstRequest(t *testing.T) {
	s := server(t)
	resp, err := http.Get(s.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, fam := range []string{
		"fdlsp_http_requests_total",
		"fdlsp_http_request_duration_seconds",
		"fdlsp_http_in_flight_requests",
		"fdlsp_core_runs_total",
		"fdlsp_core_rejoin_returned_total",
		"fdlsp_sim_rounds_total",
		"fdlsp_transport_retransmissions_total",
	} {
		if !strings.Contains(body, "# TYPE "+fam+" ") {
			t.Errorf("first scrape missing family %s", fam)
		}
	}
	// Unlabeled transport counters expose a zero sample immediately.
	if !strings.Contains(body, "fdlsp_transport_segments_total 0") {
		t.Error("unlabeled counter not exposed at zero")
	}
}

// TestInstrumentMiddleware drives the wrapper with a fake clock and checks
// the counter, status capture, and which latency bucket the observation
// lands in.
func TestInstrumentMiddleware(t *testing.T) {
	svc := newService(obs.NewRegistry())
	clock := time.Unix(1000, 0)
	// Each now() call advances 15ms: one at entry, one at exit → 15ms latency.
	svc.now = func() time.Time {
		clock = clock.Add(15 * time.Millisecond)
		return clock
	}
	h := svc.instrument("/test", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusTeapot)
	}))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/test", nil))
	if rr.Code != http.StatusTeapot {
		t.Fatalf("handler status %d", rr.Code)
	}
	text := svc.reg.Text()
	for _, want := range []string{
		`fdlsp_http_requests_total{route="/test",method="GET",code="418"} 1`,
		// 15ms falls in the (0.01, 0.025] bucket of DefLatencyBuckets.
		`fdlsp_http_request_duration_seconds_bucket{route="/test",le="0.01"} 0`,
		`fdlsp_http_request_duration_seconds_bucket{route="/test",le="0.025"} 1`,
		`fdlsp_http_request_duration_seconds_sum{route="/test"} 0.015`,
		`fdlsp_http_request_duration_seconds_count{route="/test"} 1`,
		// In-flight returned to zero after the request.
		"fdlsp_http_in_flight_requests 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("registry missing %q in:\n%s", want, text)
		}
	}
}

// TestInstrumentDefaultsTo200 checks handlers that never call WriteHeader
// are counted as 200s.
func TestInstrumentDefaultsTo200(t *testing.T) {
	svc := newService(obs.NewRegistry())
	h := svc.instrument("/ok", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("hi"))
	}))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/ok", nil))
	if !strings.Contains(svc.reg.Text(), `fdlsp_http_requests_total{route="/ok",method="GET",code="200"} 1`) {
		t.Fatal("implicit 200 not recorded")
	}
}

// TestMetricsEndpointWrongMethod: the route is registered GET-only, so the
// mux rejects a POST with 405 before it reaches the instrumented handler.
func TestMetricsEndpointWrongMethod(t *testing.T) {
	s := server(t)
	resp, err := http.Post(s.URL+"/metrics", "text/plain", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics: status %d", resp.StatusCode)
	}
}

// TestErrorResponsesCounted asserts the middleware records error statuses:
// a bad JSON body is a 400 in the requests counter.
func TestErrorResponsesCounted(t *testing.T) {
	reg := obs.NewRegistry()
	mux := NewMuxWith(reg)
	s := httptest.NewServer(mux)
	defer s.Close()
	resp, err := http.Post(s.URL+"/v1/bounds", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: status %d", resp.StatusCode)
	}
	if !strings.Contains(reg.Text(), `fdlsp_http_requests_total{route="/v1/bounds",method="POST",code="400"} 1`) {
		t.Fatal("400 not counted")
	}
}

// TestOversizedBodyRejected: readJSON caps bodies at 16 MiB via
// MaxBytesReader; a larger payload must produce a 400, not a hang or a 500.
func TestOversizedBodyRejected(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates a >16MiB payload")
	}
	s := server(t)
	var b bytes.Buffer
	b.WriteString(`{"algorithm":"`)
	b.Write(bytes.Repeat([]byte("a"), (16<<20)+1024))
	b.WriteString(`"}`)
	resp, err := http.Post(s.URL+"/v1/schedule", "application/json", &b)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body: status %d", resp.StatusCode)
	}
}

// TestScrapeDeterministic: two renderings of the same registry state are
// byte-identical, proving exposition itself is deterministic.
func TestScrapeDeterministic(t *testing.T) {
	reg := obs.NewRegistry()
	s := httptest.NewServer(NewMuxWith(reg))
	defer s.Close()
	// Take registry snapshots directly (not via HTTP) so the scrape's own
	// middleware samples don't perturb the comparison.
	a := reg.Text()
	b := reg.Text()
	if a != b {
		t.Fatal("idle registry rendering not deterministic")
	}
}
