package httpapi

import (
	"fmt"
	"net/http"
	"sync"

	"fdlsp/internal/dynamic"
	"fdlsp/internal/graph"
	"fdlsp/internal/incr"
	"fdlsp/internal/obs"
)

// The session API is the streaming face of the scheduler: POST /v1/session
// turns a graph into a long-lived schedule session, and each
// POST /v1/session/{id}/update applies a batch of topology deltas and
// answers with the minimal recolor set (see internal/incr). Handlers take
// the store lock only to resolve ids; updates serialize on a per-session
// mutex, so concurrent clients of one session are safe and different
// sessions repair in parallel.

// session is one live schedule under incremental maintenance. dead (guarded
// by mu) flips when the session is deleted: a handler that resolved the
// session before the delete must re-check it after acquiring mu and answer
// 404 instead of applying work — otherwise an update racing a DELETE would
// mutate a schedule nobody can read and resurrect per-session metric series
// the delete just unregistered.
type session struct {
	id   string
	mu   sync.Mutex
	dead bool
	up   *incr.Updater
}

// sessionStore maps ids to sessions. Ids are sequential ("s1", "s2", ...) —
// deterministic per server instance, which the session determinism tests
// rely on. The store owns the live-session gauge and updates it while still
// holding the store lock, so the published value is never a stale
// read-modify-write from two racing handlers.
type sessionStore struct {
	mu       sync.Mutex
	seq      int
	sessions map[string]*session
	active   *obs.Gauge
}

func newSessionStore(active *obs.Gauge) *sessionStore {
	return &sessionStore{sessions: make(map[string]*session), active: active}
}

func (st *sessionStore) add(up *incr.Updater) *session {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.seq++
	s := &session{id: fmt.Sprintf("s%d", st.seq), up: up}
	st.sessions[s.id] = s
	st.active.Set(float64(len(st.sessions)))
	return s
}

func (st *sessionStore) get(id string) *session {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.sessions[id]
}

func (st *sessionStore) remove(id string) *session {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := st.sessions[id]
	if s != nil {
		delete(st.sessions, id)
		st.active.Set(float64(len(st.sessions)))
	}
	return s
}

func (st *sessionStore) count() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.sessions)
}

// sessionCreateRequest is the input of POST /v1/session.
type sessionCreateRequest struct {
	Graph *graph.Graph `json:"graph"`
	// Algorithm computes the session's initial schedule; same names as
	// /v1/schedule, default greedy (the cheap deterministic choice —
	// sessions are expected to live through many updates, not to care
	// about the opening frame).
	Algorithm string `json:"algorithm"`
	Seed      int64  `json:"seed"`
}

// sessionInfoResponse is the output of POST /v1/session and
// GET /v1/session/{id}.
type sessionInfoResponse struct {
	ID        string `json:"id"`
	Algorithm string `json:"algorithm,omitempty"`
	Nodes     int    `json:"nodes"`
	Arcs      int    `json:"arcs"`
	Slots     int    `json:"slots"`
	Updates   int64  `json:"updates"`
}

// sessionUpdateRequest is the input of POST /v1/session/{id}/update.
type sessionUpdateRequest struct {
	Events []dynamic.Event `json:"events"`
}

// sessionUpdateResponse is the output of POST /v1/session/{id}/update: the
// minimal recolor delta plus repair accounting. For a fixed session history
// the body is byte-deterministic (recolor sets are sorted and nothing
// derives from map order or wall clock).
type sessionUpdateResponse struct {
	Events           int            `json:"events"`
	DirtyArcs        int            `json:"dirty_arcs"`
	Rounds           int            `json:"rounds"`
	MinUsable        float64        `json:"min_usable"`
	Recolored        []incr.ArcSlot `json:"recolored"`
	Dropped          []incr.ArcSlot `json:"dropped"`
	Slots            int            `json:"slots"`
	CachePatches     uint64         `json:"cache_patches"`
	CachePatchedArcs uint64         `json:"cache_patched_arcs"`
}

func (s *service) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req sessionCreateRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Graph == nil {
		httpError(w, http.StatusBadRequest, "missing graph")
		return
	}
	as, _, _, algo, err := s.runAlgorithm(req.Graph, req.Algorithm, "greedy", req.Seed)
	if err != nil {
		httpError(w, errStatus(err), err.Error())
		return
	}
	up, err := incr.New(req.Graph, as)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	sess := s.sessions.add(up)
	s.sessionsCreated.Inc()
	writeJSON(w, http.StatusOK, sessionInfoResponse{
		ID:        sess.id,
		Algorithm: algo,
		Nodes:     up.Graph().N(),
		Arcs:      2 * up.Graph().M(),
		Slots:     up.Slots(),
	})
}

func (s *service) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	sess := s.sessions.get(r.PathValue("id"))
	if sess == nil {
		httpError(w, http.StatusNotFound, "unknown session "+r.PathValue("id"))
		return
	}
	sess.mu.Lock()
	if sess.dead {
		sess.mu.Unlock()
		httpError(w, http.StatusNotFound, "unknown session "+r.PathValue("id"))
		return
	}
	resp := sessionInfoResponse{
		ID:      sess.id,
		Nodes:   sess.up.Graph().N(),
		Arcs:    2 * sess.up.Graph().M(),
		Slots:   sess.up.Slots(),
		Updates: sess.up.Updates(),
	}
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *service) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	sess := s.sessions.remove(r.PathValue("id"))
	if sess == nil {
		httpError(w, http.StatusNotFound, "unknown session "+r.PathValue("id"))
		return
	}
	// Mark the session dead under its own mutex. This waits out any update
	// that already resolved the session: such an update emits its metrics
	// before releasing the mutex, so once we hold it no late emission can
	// resurrect the label series removed below — per-session cardinality
	// stays bounded by the number of live sessions, not created ones.
	sess.mu.Lock()
	sess.dead = true
	sess.mu.Unlock()
	s.sessionUpdates.Delete(sess.id)
	s.sessionEvents.Delete(sess.id)
	s.sessionRecolored.Delete(sess.id)
	s.sessionCachePatch.Delete(sess.id)
	s.sessionCacheArcs.Delete(sess.id)
	s.sessionCacheBuilds.Delete(sess.id)
	s.sessionLatency.Delete(sess.id)
	writeJSON(w, http.StatusOK, map[string]string{"deleted": sess.id})
}

func (s *service) handleSessionUpdate(w http.ResponseWriter, r *http.Request) {
	sess := s.sessions.get(r.PathValue("id"))
	if sess == nil {
		httpError(w, http.StatusNotFound, "unknown session "+r.PathValue("id"))
		return
	}
	var req sessionUpdateRequest
	if !readJSON(w, r, &req) {
		return
	}
	if len(req.Events) == 0 {
		httpError(w, http.StatusBadRequest, "empty event batch")
		return
	}
	sess.mu.Lock()
	if sess.dead {
		// Lost the race with DELETE: the id resolved before the session was
		// removed from the store. Apply nothing and emit nothing.
		sess.mu.Unlock()
		httpError(w, http.StatusNotFound, "unknown session "+r.PathValue("id"))
		return
	}
	start := s.now()
	rep, err := sess.up.Apply(req.Events)
	elapsed := s.now().Sub(start)
	if err != nil {
		sess.mu.Unlock()
		httpError(w, errStatus(err), err.Error())
		return
	}
	// Per-session metrics are emitted while still holding the session mutex:
	// a concurrent DELETE marks the session dead under this mutex before
	// unregistering the label series, so emission and removal never
	// interleave.
	s.sessionUpdates.With(sess.id).Inc()
	s.sessionEvents.With(sess.id).Add(float64(rep.Events))
	s.sessionRecolored.With(sess.id).Add(float64(len(rep.Recolored)))
	s.sessionCachePatch.With(sess.id).Add(float64(rep.CachePatches))
	s.sessionCacheArcs.With(sess.id).Add(float64(rep.CachePatchedArcs))
	s.sessionCacheBuilds.With(sess.id).Add(float64(rep.CacheRebuilds))
	s.sessionRounds.Observe(float64(rep.Rounds))
	s.sessionLatency.With(sess.id).Observe(elapsed.Seconds())
	sess.mu.Unlock()
	resp := sessionUpdateResponse{
		Events:           rep.Events,
		DirtyArcs:        rep.DirtyArcs,
		Rounds:           rep.Rounds,
		MinUsable:        rep.MinUsable,
		Recolored:        rep.Recolored,
		Dropped:          rep.Dropped,
		Slots:            rep.FrameLength,
		CachePatches:     rep.CachePatches,
		CachePatchedArcs: rep.CachePatchedArcs,
	}
	if resp.Recolored == nil {
		resp.Recolored = []incr.ArcSlot{}
	}
	if resp.Dropped == nil {
		resp.Dropped = []incr.ArcSlot{}
	}
	writeJSON(w, http.StatusOK, resp)
}
