package httpapi

import (
	"fmt"
	"net/http"
	"sync"

	"fdlsp/internal/dynamic"
	"fdlsp/internal/graph"
	"fdlsp/internal/incr"
)

// The session API is the streaming face of the scheduler: POST /v1/session
// turns a graph into a long-lived schedule session, and each
// POST /v1/session/{id}/update applies a batch of topology deltas and
// answers with the minimal recolor set (see internal/incr). Handlers take
// the store lock only to resolve ids; updates serialize on a per-session
// mutex, so concurrent clients of one session are safe and different
// sessions repair in parallel.

// session is one live schedule under incremental maintenance.
type session struct {
	id string
	mu sync.Mutex
	up *incr.Updater
}

// sessionStore maps ids to sessions. Ids are sequential ("s1", "s2", ...) —
// deterministic per server instance, which the session determinism tests
// rely on.
type sessionStore struct {
	mu       sync.Mutex
	seq      int
	sessions map[string]*session
}

func newSessionStore() *sessionStore {
	return &sessionStore{sessions: make(map[string]*session)}
}

func (st *sessionStore) add(up *incr.Updater) *session {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.seq++
	s := &session{id: fmt.Sprintf("s%d", st.seq), up: up}
	st.sessions[s.id] = s
	return s
}

func (st *sessionStore) get(id string) *session {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.sessions[id]
}

func (st *sessionStore) remove(id string) *session {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := st.sessions[id]
	delete(st.sessions, id)
	return s
}

func (st *sessionStore) count() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.sessions)
}

// sessionCreateRequest is the input of POST /v1/session.
type sessionCreateRequest struct {
	Graph *graph.Graph `json:"graph"`
	// Algorithm computes the session's initial schedule; same names as
	// /v1/schedule, default greedy (the cheap deterministic choice —
	// sessions are expected to live through many updates, not to care
	// about the opening frame).
	Algorithm string `json:"algorithm"`
	Seed      int64  `json:"seed"`
}

// sessionInfoResponse is the output of POST /v1/session and
// GET /v1/session/{id}.
type sessionInfoResponse struct {
	ID        string `json:"id"`
	Algorithm string `json:"algorithm,omitempty"`
	Nodes     int    `json:"nodes"`
	Arcs      int    `json:"arcs"`
	Slots     int    `json:"slots"`
	Updates   int64  `json:"updates"`
}

// sessionUpdateRequest is the input of POST /v1/session/{id}/update.
type sessionUpdateRequest struct {
	Events []dynamic.Event `json:"events"`
}

// sessionUpdateResponse is the output of POST /v1/session/{id}/update: the
// minimal recolor delta plus repair accounting. For a fixed session history
// the body is byte-deterministic (recolor sets are sorted and nothing
// derives from map order or wall clock).
type sessionUpdateResponse struct {
	Events    int            `json:"events"`
	DirtyArcs int            `json:"dirty_arcs"`
	Rounds    int            `json:"rounds"`
	MinUsable float64        `json:"min_usable"`
	Recolored []incr.ArcSlot `json:"recolored"`
	Dropped   []incr.ArcSlot `json:"dropped"`
	Slots     int            `json:"slots"`
}

func (s *service) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	var req sessionCreateRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Graph == nil {
		httpError(w, http.StatusBadRequest, "missing graph")
		return
	}
	as, _, _, algo, err := s.runAlgorithm(req.Graph, req.Algorithm, "greedy", req.Seed)
	if err != nil {
		httpError(w, errStatus(err), err.Error())
		return
	}
	up, err := incr.New(req.Graph, as)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	sess := s.sessions.add(up)
	s.sessionsCreated.Inc()
	s.sessionsActive.Set(float64(s.sessions.count()))
	writeJSON(w, http.StatusOK, sessionInfoResponse{
		ID:        sess.id,
		Algorithm: algo,
		Nodes:     up.Graph().N(),
		Arcs:      2 * up.Graph().M(),
		Slots:     up.Slots(),
	})
}

func (s *service) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	sess := s.sessions.get(r.PathValue("id"))
	if sess == nil {
		httpError(w, http.StatusNotFound, "unknown session "+r.PathValue("id"))
		return
	}
	sess.mu.Lock()
	resp := sessionInfoResponse{
		ID:      sess.id,
		Nodes:   sess.up.Graph().N(),
		Arcs:    2 * sess.up.Graph().M(),
		Slots:   sess.up.Slots(),
		Updates: sess.up.Updates(),
	}
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *service) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	sess := s.sessions.remove(r.PathValue("id"))
	if sess == nil {
		httpError(w, http.StatusNotFound, "unknown session "+r.PathValue("id"))
		return
	}
	s.sessionsActive.Set(float64(s.sessions.count()))
	writeJSON(w, http.StatusOK, map[string]string{"deleted": sess.id})
}

func (s *service) handleSessionUpdate(w http.ResponseWriter, r *http.Request) {
	sess := s.sessions.get(r.PathValue("id"))
	if sess == nil {
		httpError(w, http.StatusNotFound, "unknown session "+r.PathValue("id"))
		return
	}
	var req sessionUpdateRequest
	if !readJSON(w, r, &req) {
		return
	}
	if len(req.Events) == 0 {
		httpError(w, http.StatusBadRequest, "empty event batch")
		return
	}
	sess.mu.Lock()
	start := s.now()
	rep, err := sess.up.Apply(req.Events)
	elapsed := s.now().Sub(start)
	sess.mu.Unlock()
	if err != nil {
		httpError(w, errStatus(err), err.Error())
		return
	}
	s.sessionUpdates.With(sess.id).Inc()
	s.sessionEvents.With(sess.id).Add(float64(rep.Events))
	s.sessionRecolored.With(sess.id).Add(float64(len(rep.Recolored)))
	s.sessionRounds.Observe(float64(rep.Rounds))
	s.sessionLatency.With(sess.id).Observe(elapsed.Seconds())
	resp := sessionUpdateResponse{
		Events:    rep.Events,
		DirtyArcs: rep.DirtyArcs,
		Rounds:    rep.Rounds,
		MinUsable: rep.MinUsable,
		Recolored: rep.Recolored,
		Dropped:   rep.Dropped,
		Slots:     rep.FrameLength,
	}
	if resp.Recolored == nil {
		resp.Recolored = []incr.ArcSlot{}
	}
	if resp.Dropped == nil {
		resp.Dropped = []incr.ArcSlot{}
	}
	writeJSON(w, http.StatusOK, resp)
}
