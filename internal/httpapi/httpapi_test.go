package httpapi

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fdlsp/internal/geom"
	"fdlsp/internal/graph"
)

func server(tb testing.TB) *httptest.Server {
	tb.Helper()
	s := httptest.NewServer(NewMux())
	tb.Cleanup(s.Close)
	return s
}

func post(tb testing.TB, url string, body any) *http.Response {
	tb.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		tb.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		tb.Fatal(err)
	}
	tb.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestHealth(t *testing.T) {
	s := server(t)
	resp, err := http.Get(s.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func TestScheduleEndpointAllAlgorithms(t *testing.T) {
	s := server(t)
	g := graph.ConnectedGNM(25, 60, rand.New(rand.NewSource(1)))
	for _, algo := range []string{"distmis", "distmis-general", "dfs", "dmgc", "randomized", "greedy", ""} {
		resp := post(t, s.URL+"/v1/schedule", scheduleRequest{Graph: g, Algorithm: algo, Seed: 4})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%q: status %d", algo, resp.StatusCode)
		}
		var out scheduleResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if !out.Valid {
			t.Fatalf("%q: service returned an invalid schedule", algo)
		}
		if out.Slots < out.Lower || out.Slots > out.Upper {
			t.Fatalf("%q: %d slots outside [%d,%d]", algo, out.Slots, out.Lower, out.Upper)
		}
		if out.Schedule == nil || out.Schedule.FrameLength != out.Slots {
			t.Fatalf("%q: schedule body inconsistent", algo)
		}
	}
}

func TestScheduleEndpointErrors(t *testing.T) {
	s := server(t)
	if resp := post(t, s.URL+"/v1/schedule", map[string]any{"algorithm": "dfs"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing graph: status %d", resp.StatusCode)
	}
	g := graph.Path(3)
	if resp := post(t, s.URL+"/v1/schedule", scheduleRequest{Graph: g, Algorithm: "nope"}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown algorithm: status %d", resp.StatusCode)
	}
	resp, err := http.Post(s.URL+"/v1/schedule", "application/json", strings.NewReader("{garbage"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body: status %d", resp.StatusCode)
	}
	// Wrong method.
	getResp, err := http.Get(s.URL + "/v1/schedule")
	if err != nil {
		t.Fatal(err)
	}
	defer getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on schedule: status %d", getResp.StatusCode)
	}
}

func TestVerifyEndpointRoundTrip(t *testing.T) {
	s := server(t)
	g := graph.Path(4)
	// Get a schedule from the service, feed it back to verify.
	resp := post(t, s.URL+"/v1/schedule", scheduleRequest{Graph: g, Algorithm: "greedy"})
	var sched scheduleResponse
	if err := json.NewDecoder(resp.Body).Decode(&sched); err != nil {
		t.Fatal(err)
	}
	vresp := post(t, s.URL+"/v1/verify", verifyRequest{Graph: g, Schedule: sched.Schedule})
	var out verifyResponse
	if err := json.NewDecoder(vresp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Valid || len(out.Violations) != 0 || len(out.Collisions) != 0 {
		t.Fatalf("round-tripped schedule should verify: %+v", out)
	}
}

func TestVerifyEndpointCatchesBadSchedule(t *testing.T) {
	s := server(t)
	g := graph.Path(4)
	// Hand-build a clashing schedule: (0,1) and (2,3) in the same slot.
	bad := map[string]any{
		"graph": g,
		"schedule": map[string]any{
			"frame_length": 4,
			"slots": [][]map[string]int{
				{{"from": 0, "to": 1}, {"from": 2, "to": 3}},
				{{"from": 1, "to": 0}},
				{{"from": 1, "to": 2}, {"from": 3, "to": 2}},
				{{"from": 2, "to": 1}},
			},
		},
	}
	resp := post(t, s.URL+"/v1/verify", bad)
	var out verifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Valid {
		t.Fatal("hidden terminal not reported")
	}
}

func TestBoundsEndpoint(t *testing.T) {
	s := server(t)
	resp := post(t, s.URL+"/v1/bounds", boundsRequest{Graph: graph.Complete(5)})
	var out boundsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Lower != 20 || out.Upper != 32 || out.MaxDegree != 4 {
		t.Fatalf("K5 bounds: %+v", out)
	}
}

func TestRenderEndpoint(t *testing.T) {
	s := server(t)
	rng := rand.New(rand.NewSource(2))
	g, pts := geom.RandomUDG(20, 5, 1.5, rng)
	resp := post(t, s.URL+"/v1/render", renderRequest{Graph: g, Points: pts})
	if ct := resp.Header.Get("Content-Type"); ct != "image/svg+xml" {
		t.Fatalf("content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Fatal("no SVG returned")
	}
	// Mismatched points.
	bad := post(t, s.URL+"/v1/render", renderRequest{Graph: g, Points: pts[:3]})
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("mismatched points: status %d", bad.StatusCode)
	}
}

func TestTrafficEndpoint(t *testing.T) {
	s := server(t)
	g := graph.Path(6)
	resp := post(t, s.URL+"/v1/schedule", scheduleRequest{Graph: g, Algorithm: "greedy"})
	var sr scheduleResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	tr := post(t, s.URL+"/v1/traffic", map[string]any{
		"graph":    g,
		"schedule": sr.Schedule,
		"sink":     0,
	})
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("status %d", tr.StatusCode)
	}
	var out struct {
		Delivered int `json:"Delivered"`
	}
	if err := json.NewDecoder(tr.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Delivered != g.N()-1 {
		t.Fatalf("delivered %d", out.Delivered)
	}
	// Unreachable flow → 400.
	g2 := graph.New(3)
	g2.AddEdge(0, 1)
	resp2 := post(t, s.URL+"/v1/schedule", scheduleRequest{Graph: g2, Algorithm: "greedy"})
	var sr2 scheduleResponse
	if err := json.NewDecoder(resp2.Body).Decode(&sr2); err != nil {
		t.Fatal(err)
	}
	bad := post(t, s.URL+"/v1/traffic", map[string]any{
		"graph": g2, "schedule": sr2.Schedule, "sink": 2,
	})
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("unreachable sink: status %d", bad.StatusCode)
	}
}

func TestEnergyEndpoint(t *testing.T) {
	s := server(t)
	g := graph.Star(6)
	resp := post(t, s.URL+"/v1/schedule", scheduleRequest{Graph: g, Algorithm: "greedy"})
	var sr scheduleResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	er := post(t, s.URL+"/v1/energy", map[string]any{"graph": g, "schedule": sr.Schedule})
	if er.StatusCode != http.StatusOK {
		t.Fatalf("status %d", er.StatusCode)
	}
	var out energyResponse
	if err := json.NewDecoder(er.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Total <= 0 || len(out.Nodes) != g.N() || out.Max < out.Mean {
		t.Fatalf("bad energy response: %+v", out)
	}
}
