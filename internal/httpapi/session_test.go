package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"

	"fdlsp/internal/dynamic"
	"fdlsp/internal/graph"
)

func createSession(tb testing.TB, url string, g *graph.Graph) sessionInfoResponse {
	tb.Helper()
	resp := post(tb, url+"/v1/session", sessionCreateRequest{Graph: g})
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		tb.Fatalf("create session: status %d: %s", resp.StatusCode, body)
	}
	var info sessionInfoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		tb.Fatal(err)
	}
	return info
}

func TestSessionLifecycle(t *testing.T) {
	s := server(t)
	g := graph.ConnectedGNM(16, 30, rand.New(rand.NewSource(1)))
	info := createSession(t, s.URL, g)
	if info.ID != "s1" || info.Algorithm != "greedy" || info.Nodes != 16 || info.Arcs != 60 || info.Slots < 1 {
		t.Fatalf("create response: %+v", info)
	}

	// Find a missing edge to bring up.
	u, v := -1, -1
	for a := 0; a < g.N() && u < 0; a++ {
		for b := a + 1; b < g.N(); b++ {
			if !g.HasEdge(a, b) {
				u, v = a, b
				break
			}
		}
	}
	resp := post(t, s.URL+"/v1/session/"+info.ID+"/update", sessionUpdateRequest{
		Events: []dynamic.Event{{Kind: dynamic.LinkUp, U: u, V: v}},
	})
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("update: status %d: %s", resp.StatusCode, body)
	}
	var up sessionUpdateResponse
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	if up.Events != 1 || up.Slots < 1 || up.Recolored == nil || up.Dropped == nil {
		t.Fatalf("update response: %+v", up)
	}
	// The new link's two arcs must appear in the recolor delta.
	found := 0
	for _, rc := range up.Recolored {
		if (rc.From == u && rc.To == v) || (rc.From == v && rc.To == u) {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("new link arcs missing from recolor delta: %+v", up.Recolored)
	}

	// GET reflects the update and the grown arc count.
	getResp, err := http.Get(s.URL + "/v1/session/" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer getResp.Body.Close()
	var got sessionInfoResponse
	if err := json.NewDecoder(getResp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Updates != 1 || got.Arcs != 62 {
		t.Fatalf("get after update: %+v", got)
	}

	// Delete, then every route on the id answers 404.
	req, _ := http.NewRequest(http.MethodDelete, s.URL+"/v1/session/"+info.ID, nil)
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d", delResp.StatusCode)
	}
	if r := post(t, s.URL+"/v1/session/"+info.ID+"/update", sessionUpdateRequest{
		Events: []dynamic.Event{{Kind: dynamic.LinkDown, U: u, V: v}},
	}); r.StatusCode != http.StatusNotFound {
		t.Errorf("update deleted session: status %d", r.StatusCode)
	}
	gone, err := http.Get(s.URL + "/v1/session/" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer gone.Body.Close()
	if gone.StatusCode != http.StatusNotFound {
		t.Errorf("get deleted session: status %d", gone.StatusCode)
	}
}

func TestSessionErrorsAreClientErrors(t *testing.T) {
	s := server(t)
	g := graph.ConnectedGNM(10, 15, rand.New(rand.NewSource(2)))
	info := createSession(t, s.URL, g)
	upURL := s.URL + "/v1/session/" + info.ID + "/update"

	// Unknown session id.
	if r := post(t, s.URL+"/v1/session/nope/update", sessionUpdateRequest{
		Events: []dynamic.Event{{Kind: dynamic.NodeFail, U: 0}},
	}); r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: status %d", r.StatusCode)
	}
	// Empty batch.
	if r := post(t, upURL, sessionUpdateRequest{}); r.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: status %d", r.StatusCode)
	}
	// Bad deltas must classify as 400, not 500.
	for name, ev := range map[string]dynamic.Event{
		"node out of range": {Kind: dynamic.LinkUp, U: 0, V: 99},
		"self link":         {Kind: dynamic.LinkUp, U: 3, V: 3},
		"missing link-down": {Kind: dynamic.LinkDown, U: 0, V: 0},
	} {
		if r := post(t, upURL, sessionUpdateRequest{Events: []dynamic.Event{ev}}); r.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d", name, r.StatusCode)
		}
	}
	// Unknown event kind dies in JSON decoding — still a 400.
	if r := post(t, upURL, map[string]any{
		"events": []map[string]any{{"kind": "teleport", "u": 1, "v": 2}},
	}); r.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown kind: status %d", r.StatusCode)
	}
	// Create with a missing graph / unknown algorithm.
	if r := post(t, s.URL+"/v1/session", map[string]any{"algorithm": "greedy"}); r.StatusCode != http.StatusBadRequest {
		t.Errorf("missing graph: status %d", r.StatusCode)
	}
	if r := post(t, s.URL+"/v1/session", map[string]any{
		"graph": g, "algorithm": "nope",
	}); r.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown algorithm: status %d", r.StatusCode)
	}
}

// TestInconsistentGraphJSONIsBadRequest pins the bug sweep's decode fix: a
// structurally well-formed body whose edges point outside the node range
// must answer 400, not panic the handler into a 500.
func TestInconsistentGraphJSONIsBadRequest(t *testing.T) {
	s := server(t)
	for _, target := range []string{"/v1/schedule", "/v1/session"} {
		for _, body := range []string{
			`{"graph":{"n":3,"edges":[[0,9]]}}`,
			`{"graph":{"n":3,"edges":[[1,1]]}}`,
			`{"graph":{"n":-2,"edges":[]}}`,
		} {
			resp, err := http.Post(s.URL+target, "application/json", bytes.NewReader([]byte(body)))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("%s %s: status %d, want 400", target, body, resp.StatusCode)
			}
		}
	}
}

// TestSessionConcurrentUpdates hammers one session from many goroutines (run
// under -race in CI). Each worker flips its own private link so every batch
// is valid regardless of interleaving; the session must serialize them and
// finish with a consistent update count.
func TestSessionConcurrentUpdates(t *testing.T) {
	s := server(t)
	const workers, flips = 8, 20
	// 2*workers isolated nodes pair up into per-worker links; a path over
	// the rest keeps the initial schedule non-trivial.
	g := graph.New(2*workers + 10)
	for i := 2 * workers; i < g.N()-1; i++ {
		g.AddEdge(i, i+1)
	}
	info := createSession(t, s.URL, g)
	upURL := s.URL + "/v1/session/" + info.ID + "/update"

	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			u, v := 2*w, 2*w+1
			for i := 0; i < flips; i++ {
				kind := dynamic.LinkUp
				if i%2 == 1 {
					kind = dynamic.LinkDown
				}
				body, _ := json.Marshal(sessionUpdateRequest{
					Events: []dynamic.Event{{Kind: kind, U: u, V: v}},
				})
				resp, err := http.Post(upURL, "application/json", bytes.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("worker %d flip %d: status %d: %s", w, i, resp.StatusCode, data)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	getResp, err := http.Get(s.URL + "/v1/session/" + info.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer getResp.Body.Close()
	var got sessionInfoResponse
	if err := json.NewDecoder(getResp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Updates != workers*flips {
		t.Fatalf("session counted %d updates, want %d", got.Updates, workers*flips)
	}
	if got.Arcs != 2*(g.N()-2*workers-1) {
		t.Fatalf("final arc count %d: a flip pair leaked", got.Arcs)
	}
}

// sessionTranscript replays a fixed seeded update stream against a fresh
// server and returns the concatenated raw response bodies.
func sessionTranscript(tb testing.TB, updates int) []byte {
	tb.Helper()
	srv := httptest.NewServer(NewMux())
	defer srv.Close()
	rng := rand.New(rand.NewSource(99))
	g := graph.ConnectedGNM(20, 45, rng)
	shadow := g.Clone()
	info := createSession(tb, srv.URL, g)
	upURL := srv.URL + "/v1/session/" + info.ID + "/update"

	var transcript bytes.Buffer
	targetM := shadow.M()
	for i := 0; i < updates; i++ {
		ev := randomLinkEvent(shadow, targetM, rng)
		body, _ := json.Marshal(sessionUpdateRequest{Events: []dynamic.Event{ev}})
		resp, err := http.Post(upURL, "application/json", bytes.NewReader(body))
		if err != nil {
			tb.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			tb.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			tb.Fatalf("update %d: status %d: %s", i, resp.StatusCode, data)
		}
		transcript.Write(data)
		transcript.WriteByte('\n')
	}
	return transcript.Bytes()
}

// randomLinkEvent draws a valid link flip against the shadow graph and
// applies it there, keeping client and session topology in lockstep. Flips
// alternate add/remove around the target edge count so density holds flat;
// drops keep every endpoint connected.
func randomLinkEvent(g *graph.Graph, targetM int, rng *rand.Rand) dynamic.Event {
	if g.M() > targetM {
		for {
			e := g.Edges()[rng.Intn(g.M())]
			if g.Degree(e.U) <= 1 || g.Degree(e.V) <= 1 {
				continue
			}
			g.RemoveEdge(e.U, e.V)
			return dynamic.Event{Kind: dynamic.LinkDown, U: e.U, V: e.V}
		}
	}
	for {
		u, v := rng.Intn(g.N()), rng.Intn(g.N())
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.AddEdge(u, v)
		return dynamic.Event{Kind: dynamic.LinkUp, U: u, V: v}
	}
}

// TestSessionDeterminismAcrossGOMAXPROCS replays the same seeded stream at
// GOMAXPROCS=1 and GOMAXPROCS=NumCPU and requires byte-identical response
// transcripts — the service-level determinism contract.
func TestSessionDeterminismAcrossGOMAXPROCS(t *testing.T) {
	const updates = 150
	prev := runtime.GOMAXPROCS(1)
	serial := sessionTranscript(t, updates)
	runtime.GOMAXPROCS(runtime.NumCPU())
	parallel := sessionTranscript(t, updates)
	runtime.GOMAXPROCS(prev)
	if !bytes.Equal(serial, parallel) {
		t.Fatal("session update transcripts differ across GOMAXPROCS")
	}
}

// TestSessionMetricsExposed checks the per-session observability surfaces in
// /metrics after traffic.
func TestSessionMetricsExposed(t *testing.T) {
	s := server(t)
	g := graph.ConnectedGNM(12, 20, rand.New(rand.NewSource(5)))
	shadow := g.Clone()
	info := createSession(t, s.URL, g)
	rng := rand.New(rand.NewSource(6))
	targetM := shadow.M()
	for i := 0; i < 3; i++ {
		ev := randomLinkEvent(shadow, targetM, rng)
		resp := post(t, s.URL+"/v1/session/"+info.ID+"/update", sessionUpdateRequest{Events: []dynamic.Event{ev}})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("update %d: status %d", i, resp.StatusCode)
		}
	}
	mresp, err := http.Get(s.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`fdlsp_session_created_total 1`,
		`fdlsp_session_active_sessions 1`,
		`fdlsp_session_updates_total{session="s1"} 3`,
		`fdlsp_session_events_total{session="s1"} 3`,
		`fdlsp_session_update_duration_seconds_count{session="s1"} 3`,
		`fdlsp_session_repair_rounds_count 3`,
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestSessionMetricsCardinalityBoundedUnderChurn: deleting a session must
// unregister its per-session label series, so a churn of short-lived
// sessions cannot grow the /metrics scrape without bound.
func TestSessionMetricsCardinalityBoundedUnderChurn(t *testing.T) {
	s := server(t)
	g := graph.ConnectedGNM(12, 20, rand.New(rand.NewSource(7)))
	const churn = 25
	for i := 0; i < churn; i++ {
		info := createSession(t, s.URL, g)
		u, v := -1, -1
		for a := 0; a < g.N() && u < 0; a++ {
			for b := a + 1; b < g.N(); b++ {
				if !g.HasEdge(a, b) {
					u, v = a, b
					break
				}
			}
		}
		resp := post(t, s.URL+"/v1/session/"+info.ID+"/update", sessionUpdateRequest{
			Events: []dynamic.Event{{Kind: dynamic.LinkUp, U: u, V: v}},
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("churn %d: update status %d", i, resp.StatusCode)
		}
		req, _ := http.NewRequest(http.MethodDelete, s.URL+"/v1/session/"+info.ID, nil)
		delResp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		delResp.Body.Close()
		if delResp.StatusCode != http.StatusOK {
			t.Fatalf("churn %d: delete status %d", i, delResp.StatusCode)
		}
	}
	// One session stays live: its series (and only its) may be scraped.
	live := createSession(t, s.URL, g)

	mresp, err := http.Get(s.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(body, []byte(`session="`)); n > 0 {
		t.Errorf("scrape still carries %d per-session series after churn (only %q is live):\n%s",
			n, live.ID, sessionLines(body))
	}
	if !bytes.Contains(body, []byte("fdlsp_session_active_sessions 1")) {
		t.Errorf("active-session gauge wrong after churn:\n%s", sessionLines(body))
	}
	if !bytes.Contains(body, []byte(fmt.Sprintf("fdlsp_session_created_total %d", churn+1))) {
		t.Errorf("created counter lost history:\n%s", sessionLines(body))
	}
}

// sessionLines filters a scrape down to the session families for failure
// messages.
func sessionLines(body []byte) string {
	var out bytes.Buffer
	for _, line := range bytes.Split(body, []byte("\n")) {
		if bytes.Contains(line, []byte("fdlsp_session_")) {
			out.Write(line)
			out.WriteByte('\n')
		}
	}
	return out.String()
}

// TestSessionUpdateDeleteRace races updates against DELETE on the same
// session (run under -race in CI): every update must either apply fully
// (200) or observe the deletion (404) — and once the delete has answered, no
// straggler may resurrect the session's metric series or mutate its
// schedule.
func TestSessionUpdateDeleteRace(t *testing.T) {
	s := server(t)
	const rounds = 20
	const workers = 4
	for round := 0; round < rounds; round++ {
		g := graph.New(2*workers + 6)
		for i := 2 * workers; i < g.N()-1; i++ {
			g.AddEdge(i, i+1)
		}
		info := createSession(t, s.URL, g)
		upURL := s.URL + "/v1/session/" + info.ID + "/update"

		var wg sync.WaitGroup
		errc := make(chan error, workers+1)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				u, v := 2*w, 2*w+1
				for i := 0; ; i++ {
					kind := dynamic.LinkUp
					if i%2 == 1 {
						kind = dynamic.LinkDown
					}
					body, _ := json.Marshal(sessionUpdateRequest{
						Events: []dynamic.Event{{Kind: kind, U: u, V: v}},
					})
					resp, err := http.Post(upURL, "application/json", bytes.NewReader(body))
					if err != nil {
						errc <- err
						return
					}
					resp.Body.Close()
					switch resp.StatusCode {
					case http.StatusOK:
						// Applied before the delete; keep going.
					case http.StatusNotFound:
						return // observed the deletion — done
					default:
						errc <- fmt.Errorf("round %d worker %d: status %d", round, w, resp.StatusCode)
						return
					}
				}
			}(w)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, _ := http.NewRequest(http.MethodDelete, upURL[:len(upURL)-len("/update")], nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				errc <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errc <- fmt.Errorf("round %d: delete status %d", round, resp.StatusCode)
			}
		}()
		wg.Wait()
		close(errc)
		for err := range errc {
			t.Fatal(err)
		}
	}

	// All sessions are gone and every straggler has answered: the scrape
	// must carry no per-session series and a zero active gauge.
	mresp, err := http.Get(s.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(body, []byte(`session="`)); n > 0 {
		t.Errorf("update/delete race left %d per-session series:\n%s", n, sessionLines(body))
	}
	if !bytes.Contains(body, []byte("fdlsp_session_active_sessions 0")) {
		t.Errorf("active-session gauge nonzero after all deletes:\n%s", sessionLines(body))
	}
}
