package httpapi

import (
	"net/http"
	"strconv"
	"time"

	"fdlsp/internal/core"
	"fdlsp/internal/obs"
)

// Metric families of the HTTP service itself. Every route is wrapped by the
// instrumentation middleware, which records a per-route/method/status
// request counter, a per-route latency histogram, and the in-flight gauge.
// The same registry also receives the fdlsp_core_*, fdlsp_sim_* and
// fdlsp_transport_* families fed by the scheduling runs the /v1/schedule
// handler performs, so one GET /metrics scrape covers the whole stack.
const (
	metricHTTPRequests = "fdlsp_http_requests_total"
	metricHTTPLatency  = "fdlsp_http_request_duration_seconds"
	metricHTTPInFlight = "fdlsp_http_in_flight_requests"
)

// service carries the HTTP handlers' shared dependencies: the metrics
// registry, the clock (overridable in tests so latency buckets can be
// asserted deterministically), and the live schedule sessions.
type service struct {
	reg      *obs.Registry
	now      func() time.Time
	requests *obs.CounterVec
	latency  *obs.HistogramVec
	inflight *obs.Gauge

	sessions           *sessionStore
	sessionsCreated    *obs.Counter
	sessionsActive     *obs.Gauge
	sessionUpdates     *obs.CounterVec
	sessionEvents      *obs.CounterVec
	sessionRecolored   *obs.CounterVec
	sessionCachePatch  *obs.CounterVec
	sessionCacheArcs   *obs.CounterVec
	sessionCacheBuilds *obs.CounterVec
	sessionRounds      *obs.Histogram
	sessionLatency     *obs.HistogramVec
}

// newService builds the handler set over reg and pre-registers every metric
// family the service can emit — http, session, core, sim, and transport —
// so a scrape exposes the full schema before the first request.
func newService(reg *obs.Registry) *service {
	// The live-session gauge is owned by the store: add/remove update it
	// while still holding the store lock, so its value is never a stale
	// read-modify-write from a racing handler.
	active := reg.Gauge("fdlsp_session_active_sessions",
		"Schedule sessions currently live.")
	s := &service{
		reg: reg,
		//lint:ignore detrand HTTP request latency is wall-clock by definition; tests inject a fake clock
		now:      time.Now,
		requests: reg.CounterVec(metricHTTPRequests, "HTTP requests served, by route, method and status code.", "route", "method", "code"),
		latency:  reg.HistogramVec(metricHTTPLatency, "HTTP request latency in seconds, by route.", obs.DefLatencyBuckets(), "route"),
		inflight: reg.Gauge(metricHTTPInFlight, "Requests currently being served."),

		sessions: newSessionStore(active),
		sessionsCreated: reg.Counter("fdlsp_session_created_total",
			"Schedule sessions created over the server's lifetime."),
		sessionsActive: active,
		sessionUpdates: reg.CounterVec("fdlsp_session_updates_total",
			"Update batches applied, by session.", "session"),
		sessionEvents: reg.CounterVec("fdlsp_session_events_total",
			"Topology events applied, by session.", "session"),
		sessionRecolored: reg.CounterVec("fdlsp_session_recolored_arcs_total",
			"Arcs recolored by incremental repair, by session.", "session"),
		sessionCachePatch: reg.CounterVec("fdlsp_session_cache_patches_total",
			"Incremental conflict-cache patches applied, by session.", "session"),
		sessionCacheArcs: reg.CounterVec("fdlsp_session_cache_patched_arcs_total",
			"Conflict rows rewritten by cache patches, by session.", "session"),
		sessionCacheBuilds: reg.CounterVec("fdlsp_session_cache_rebuilds_total",
			"Full conflict-cache rebuilds paid by update batches, by session.", "session"),
		sessionRounds: reg.Histogram("fdlsp_session_repair_rounds",
			"Distributed repair rounds per update batch.",
			[]float64{0, 1, 2, 4, 8, 16, 32, 64}),
		sessionLatency: reg.HistogramVec("fdlsp_session_update_duration_seconds",
			"Incremental update latency in seconds (repair only, excluding HTTP), by session.",
			obs.DefLatencyBuckets(), "session"),
	}
	core.RegisterMetrics(reg)
	return s
}

// statusWriter captures the status code a handler writes.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a route handler with request counting and latency
// observation. The route label is the registered pattern's path (bounded
// cardinality), never the raw URL.
func (s *service) instrument(route string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := s.now()
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h.ServeHTTP(sw, r)
		s.requests.With(route, r.Method, strconv.Itoa(sw.code)).Inc()
		s.latency.With(route).Observe(s.now().Sub(start).Seconds())
	})
}

// mux assembles the routing table with every route instrumented.
func (s *service) mux() *http.ServeMux {
	mux := http.NewServeMux()
	route := func(pattern, path string, h http.HandlerFunc) {
		mux.Handle(pattern, s.instrument(path, h))
	}
	route("GET /healthz", "/healthz", handleHealth)
	route("POST /v1/schedule", "/v1/schedule", s.handleSchedule)
	route("POST /v1/session", "/v1/session", s.handleSessionCreate)
	route("GET /v1/session/{id}", "/v1/session/{id}", s.handleSessionGet)
	route("DELETE /v1/session/{id}", "/v1/session/{id}", s.handleSessionDelete)
	route("POST /v1/session/{id}/update", "/v1/session/{id}/update", s.handleSessionUpdate)
	route("POST /v1/verify", "/v1/verify", handleVerify)
	route("POST /v1/bounds", "/v1/bounds", handleBounds)
	route("POST /v1/render", "/v1/render", handleRender)
	route("POST /v1/traffic", "/v1/traffic", handleTraffic)
	route("POST /v1/energy", "/v1/energy", handleEnergy)
	mux.Handle("GET /metrics", s.instrument("/metrics", s.reg.Handler()))
	return mux
}
