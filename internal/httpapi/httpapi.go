// Package httpapi exposes the scheduling library as a small JSON-over-HTTP
// service (cmd/fdlspd): clients POST a network and get back a verified TDMA
// schedule, bounds, or an SVG rendering. Handlers are plain http.Handlers,
// fully exercised by httptest in the package tests.
//
// Beyond the one-shot routes, the /v1/session routes hold long-lived
// schedules under incremental maintenance: a session is created from a
// graph, topology deltas stream at it, and every update answers with the
// minimal recolor set (see session.go and internal/incr). Input-shape
// problems — malformed graphs, unknown algorithms, invalid deltas — answer
// 400; only genuine service failures answer 500 (see errStatus).
//
// Every route is instrumented: per-route request counters and latency
// histograms feed an obs.Registry exposed at GET /metrics in Prometheus
// text format, alongside the fdlsp_core_*, fdlsp_sim_* and
// fdlsp_transport_* families the scheduling runs publish (see metrics.go).
package httpapi

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"fdlsp/internal/bounds"
	"fdlsp/internal/coloring"
	"fdlsp/internal/core"
	"fdlsp/internal/dmgc"
	"fdlsp/internal/energy"
	"fdlsp/internal/geom"
	"fdlsp/internal/graph"
	"fdlsp/internal/incr"
	"fdlsp/internal/obs"
	"fdlsp/internal/sched"
	"fdlsp/internal/traffic"
	"fdlsp/internal/viz"
)

// NewMux returns the service's routing table over a fresh metrics registry.
func NewMux() *http.ServeMux { return NewMuxWith(obs.NewRegistry()) }

// NewMuxWith returns the routing table with all instrumentation feeding
// reg; GET /metrics serves reg in Prometheus text format. Callers that also
// mount pprof or other endpoints on the same server pass their own registry
// here to keep one exposition surface.
func NewMuxWith(reg *obs.Registry) *http.ServeMux { return newService(reg).mux() }

// scheduleRequest is the input of POST /v1/schedule.
type scheduleRequest struct {
	// Graph is the network (same JSON shape cmd/graphgen emits).
	Graph *graph.Graph `json:"graph"`
	// Algorithm: distmis | distmis-general | dfs | dmgc | randomized |
	// greedy (default distmis).
	Algorithm string `json:"algorithm"`
	Seed      int64  `json:"seed"`
}

// scheduleResponse is the output of POST /v1/schedule.
type scheduleResponse struct {
	Algorithm string          `json:"algorithm"`
	Slots     int             `json:"slots"`
	Rounds    int64           `json:"rounds"`
	Messages  int64           `json:"messages"`
	Valid     bool            `json:"valid"`
	Lower     int             `json:"lower_bound"`
	Upper     int             `json:"upper_bound"`
	Schedule  *sched.Schedule `json:"schedule"`
}

func handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// errBadInput marks request failures that are the client's to fix —
// unknown algorithm names, inconsistent graphs, invalid deltas. errStatus
// turns it (and incr.ErrBadDelta) into a 400; everything else stays a 500,
// so clients can tell their bug from ours.
var errBadInput = errors.New("bad input")

// errStatus classifies a scheduling error into the HTTP status it deserves.
func errStatus(err error) int {
	if errors.Is(err, errBadInput) || errors.Is(err, incr.ErrBadDelta) {
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// runAlgorithm computes a schedule for g with the named algorithm (empty
// defaults to dflt), reporting the assignment plus protocol cost. Both
// POST /v1/schedule and POST /v1/session dispatch through here. An unknown
// name wraps errBadInput.
func (s *service) runAlgorithm(g *graph.Graph, algo string, dflt string, seed int64) (as coloring.Assignment, rounds, messages int64, name string, err error) {
	if algo == "" {
		algo = dflt
	}
	name = algo
	switch algo {
	case "distmis", "distmis-general":
		variant := core.GBG
		if algo == "distmis-general" {
			variant = core.General
		}
		res, rerr := core.DistMIS(g, core.Options{Seed: seed, Variant: variant, Metrics: s.reg})
		if rerr != nil {
			return nil, 0, 0, name, rerr
		}
		as, rounds, messages = res.Assignment, res.Stats.Rounds, res.Stats.Messages
	case "dfs":
		res, rerr := core.DFS(g, core.DFSOptions{Seed: seed, Metrics: s.reg})
		if rerr != nil {
			return nil, 0, 0, name, rerr
		}
		as, rounds, messages = res.Assignment, res.Stats.Rounds, res.Stats.Messages
	case "dmgc":
		res, rerr := dmgc.Schedule(g)
		if rerr != nil {
			return nil, 0, 0, name, rerr
		}
		as = res.Assignment
	case "randomized":
		res, rerr := core.Randomized(g, seed)
		if rerr != nil {
			return nil, 0, 0, name, rerr
		}
		as, rounds, messages = res.Assignment, res.Stats.Rounds, res.Stats.Messages
	case "greedy":
		as = coloring.Greedy(g, nil)
	default:
		return nil, 0, 0, name, fmt.Errorf("unknown algorithm %q: %w", algo, errBadInput)
	}
	return as, rounds, messages, name, nil
}

func (s *service) handleSchedule(w http.ResponseWriter, r *http.Request) {
	var req scheduleRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Graph == nil {
		httpError(w, http.StatusBadRequest, "missing graph")
		return
	}
	g := req.Graph

	as, rounds, messages, algo, err := s.runAlgorithm(g, req.Algorithm, "distmis", req.Seed)
	if err != nil {
		httpError(w, errStatus(err), err.Error())
		return
	}

	frame, err := sched.Build(g, as)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, scheduleResponse{
		Algorithm: algo,
		Slots:     frame.FrameLength,
		Rounds:    rounds,
		Messages:  messages,
		Valid:     coloring.Valid(g, as),
		Lower:     bounds.LowerBound(g),
		Upper:     bounds.UpperBound(g),
		Schedule:  frame,
	})
}

// verifyRequest is the input of POST /v1/verify.
type verifyRequest struct {
	Graph    *graph.Graph    `json:"graph"`
	Schedule *sched.Schedule `json:"schedule"`
}

type verifyResponse struct {
	Valid      bool     `json:"valid"`
	Violations []string `json:"violations,omitempty"`
	Collisions []string `json:"radio_collisions,omitempty"`
}

func handleVerify(w http.ResponseWriter, r *http.Request) {
	var req verifyRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Graph == nil || req.Schedule == nil {
		httpError(w, http.StatusBadRequest, "missing graph or schedule")
		return
	}
	as := req.Schedule.Assignment()
	var resp verifyResponse
	for _, v := range coloring.Verify(req.Graph, as) {
		resp.Violations = append(resp.Violations, v.String())
	}
	for _, c := range req.Schedule.RadioCheck(req.Graph) {
		resp.Collisions = append(resp.Collisions, c.String())
	}
	resp.Valid = len(resp.Violations) == 0 && len(resp.Collisions) == 0
	writeJSON(w, http.StatusOK, resp)
}

type boundsRequest struct {
	Graph *graph.Graph `json:"graph"`
}

type boundsResponse struct {
	Lower     int     `json:"lower_bound"`
	Upper     int     `json:"upper_bound"`
	MaxDegree int     `json:"max_degree"`
	AvgDegree float64 `json:"avg_degree"`
	Nodes     int     `json:"nodes"`
	Edges     int     `json:"edges"`
}

func handleBounds(w http.ResponseWriter, r *http.Request) {
	var req boundsRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Graph == nil {
		httpError(w, http.StatusBadRequest, "missing graph")
		return
	}
	g := req.Graph
	writeJSON(w, http.StatusOK, boundsResponse{
		Lower:     bounds.LowerBound(g),
		Upper:     bounds.UpperBound(g),
		MaxDegree: g.MaxDegree(),
		AvgDegree: g.AvgDegree(),
		Nodes:     g.N(),
		Edges:     g.M(),
	})
}

// renderRequest is the input of POST /v1/render.
type renderRequest struct {
	Graph  *graph.Graph `json:"graph"`
	Points []geom.Point `json:"points"`
	// Schedule is optional; when present Slot selects the slot to render
	// (0 renders the plain network).
	Schedule *sched.Schedule `json:"schedule,omitempty"`
	Slot     int             `json:"slot,omitempty"`
}

func handleRender(w http.ResponseWriter, r *http.Request) {
	var req renderRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Graph == nil || len(req.Points) != req.Graph.N() {
		httpError(w, http.StatusBadRequest, "graph and matching points required")
		return
	}
	var svg string
	if req.Schedule != nil && req.Slot > 0 {
		var err error
		svg, err = viz.Slot(req.Graph, req.Points, req.Schedule, req.Slot, viz.Style{})
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
	} else {
		svg = viz.Network(req.Graph, req.Points, viz.Style{})
	}
	w.Header().Set("Content-Type", "image/svg+xml")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte(svg))
}

// trafficRequest is the input of POST /v1/traffic.
type trafficRequest struct {
	Graph    *graph.Graph    `json:"graph"`
	Schedule *sched.Schedule `json:"schedule"`
	// Flows to inject; when empty, a convergecast to Sink is simulated.
	Flows     []traffic.Flow `json:"flows,omitempty"`
	Sink      int            `json:"sink"`
	MaxFrames int            `json:"max_frames"`
}

func handleTraffic(w http.ResponseWriter, r *http.Request) {
	var req trafficRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Graph == nil || req.Schedule == nil {
		httpError(w, http.StatusBadRequest, "missing graph or schedule")
		return
	}
	flows := req.Flows
	if len(flows) == 0 {
		if req.Sink < 0 || req.Sink >= req.Graph.N() {
			httpError(w, http.StatusBadRequest, "sink out of range")
			return
		}
		flows = traffic.ConvergecastFlows(req.Graph, req.Sink)
	}
	res, err := traffic.Simulate(req.Graph, req.Schedule, flows, req.MaxFrames)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// energyRequest is the input of POST /v1/energy.
type energyRequest struct {
	Graph    *graph.Graph    `json:"graph"`
	Schedule *sched.Schedule `json:"schedule"`
	// Model overrides the default radio cost model when non-zero.
	Model *energy.Model `json:"model,omitempty"`
}

type energyResponse struct {
	Mean  float64   `json:"mean_per_frame"`
	Max   float64   `json:"max_per_frame"`
	Total float64   `json:"total_per_frame"`
	Nodes []float64 `json:"per_node"`
}

func handleEnergy(w http.ResponseWriter, r *http.Request) {
	var req energyRequest
	if !readJSON(w, r, &req) {
		return
	}
	if req.Graph == nil || req.Schedule == nil {
		httpError(w, http.StatusBadRequest, "missing graph or schedule")
		return
	}
	model := energy.DefaultModel()
	if req.Model != nil {
		model = *req.Model
	}
	rep := energy.LinkSchedule(req.Graph, req.Schedule, model)
	writeJSON(w, http.StatusOK, energyResponse{
		Mean: rep.Mean, Max: rep.Max, Total: rep.Total, Nodes: rep.PerNode,
	})
}

// readJSON decodes the body into dst, reporting 400 on failure.
func readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
