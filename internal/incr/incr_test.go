package incr

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"fdlsp/internal/coloring"
	"fdlsp/internal/dynamic"
	"fdlsp/internal/graph"
)

func newUpdater(t *testing.T, n, m int, seed int64) *Updater {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := graph.ConnectedGNM(n, m, rng)
	up, err := New(g, coloring.Greedy(g, nil))
	if err != nil {
		t.Fatal(err)
	}
	return up
}

// randomEvent draws a valid link flip against the updater's current
// topology, mirroring what a well-behaved client (tracking its own shadow
// graph) would send. Flips alternate add/remove around the current edge
// count so the stream holds density flat instead of drifting toward a
// complete graph; drops keep every endpoint's degree positive.
func randomEvent(up *Updater, targetM int, rng *rand.Rand) dynamic.Event {
	g := up.Graph()
	if g.M() > targetM {
		for {
			e := g.Edges()[rng.Intn(g.M())]
			if g.Degree(e.U) <= 1 || g.Degree(e.V) <= 1 {
				continue
			}
			return dynamic.Event{Kind: dynamic.LinkDown, U: e.U, V: e.V}
		}
	}
	for {
		u, v := rng.Intn(g.N()), rng.Intn(g.N())
		if u == v || g.HasEdge(u, v) {
			continue
		}
		return dynamic.Event{Kind: dynamic.LinkUp, U: u, V: v}
	}
}

// TestApplyKeepsScheduleValid drives a long random stream of single-event
// and multi-event batches and verifies the maintained schedule is complete
// and conflict-free after every update.
func TestApplyKeepsScheduleValid(t *testing.T) {
	up := newUpdater(t, 24, 60, 1)
	targetM := up.Graph().M()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 400; i++ {
		rep, err := up.Apply([]dynamic.Event{randomEvent(up, targetM, rng)})
		if err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		if viols := coloring.Verify(up.Graph(), up.Assignment()); len(viols) != 0 {
			t.Fatalf("update %d: %d violations, first %v", i, len(viols), viols[0])
		}
		if rep.FrameLength != up.Slots() {
			t.Fatalf("update %d: reported frame %d, live %d", i, rep.FrameLength, up.Slots())
		}
	}
}

// TestRecolorSetConfinedToTwoHops is the acceptance criterion: every arc an
// update recolors lies within the 2-hop neighborhood of the batch's delta
// endpoints.
func TestRecolorSetConfinedToTwoHops(t *testing.T) {
	up := newUpdater(t, 40, 100, 3)
	targetM := up.Graph().M()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		ev := randomEvent(up, targetM, rng)
		rep, err := up.Apply([]dynamic.Event{ev})
		if err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		near := map[int]bool{ev.U: true, ev.V: true}
		for _, x := range []int{ev.U, ev.V} {
			for _, w := range up.Graph().Within(x, 2) {
				near[w] = true
			}
		}
		for _, rc := range rep.Recolored {
			if !near[rc.From] && !near[rc.To] {
				t.Fatalf("update %d (%v): recolored arc (%d,%d) outside the 2-hop neighborhood",
					i, ev, rc.From, rc.To)
			}
		}
		for _, d := range rep.Dropped {
			if d.From != ev.U && d.From != ev.V && d.To != ev.U && d.To != ev.V {
				t.Fatalf("update %d (%v): dropped arc (%d,%d) not incident to the delta",
					i, ev, d.From, d.To)
			}
		}
	}
}

// TestRecolorDeltaIsMinimal asserts the delta names only arcs whose slot
// actually changed: replaying Recolored+Dropped onto the pre-batch schedule
// must reproduce the post-batch schedule exactly.
func TestRecolorDeltaIsMinimal(t *testing.T) {
	up := newUpdater(t, 24, 60, 5)
	targetM := up.Graph().M()
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		before := up.Assignment().Clone()
		ev := randomEvent(up, targetM, rng)
		rep, err := up.Apply([]dynamic.Event{ev})
		if err != nil {
			t.Fatal(err)
		}
		replayed := before
		for _, d := range rep.Dropped {
			delete(replayed, graph.Arc{From: d.From, To: d.To})
		}
		for _, rc := range rep.Recolored {
			a := graph.Arc{From: rc.From, To: rc.To}
			if replayed[a] == rc.Slot {
				t.Fatalf("update %d: recolor entry %v is a no-op — delta not minimal", i, rc)
			}
			if rc.Slot == coloring.None {
				delete(replayed, a)
			} else {
				replayed[a] = rc.Slot
			}
		}
		if !reflect.DeepEqual(replayed, up.Assignment()) {
			t.Fatalf("update %d: replaying the delta does not reproduce the schedule", i)
		}
	}
}

// TestBatchRollbackIsAtomic feeds batches whose tail event is invalid and
// asserts the topology and schedule come back untouched.
func TestBatchRollbackIsAtomic(t *testing.T) {
	up := newUpdater(t, 16, 30, 7)
	gBefore := up.Graph().Clone()
	asBefore := up.Assignment().Clone()

	// Find a missing edge for the valid head and an existing edge to
	// re-add illegally for the tail.
	var u, v int
	found := false
	for u = 0; u < 16 && !found; u++ {
		for v = u + 1; v < 16; v++ {
			if !gBefore.HasEdge(u, v) {
				found = true
				break
			}
		}
	}
	u--
	ed := gBefore.Edges()[0]
	batch := []dynamic.Event{
		{Kind: dynamic.LinkUp, U: u, V: v},         // valid
		{Kind: dynamic.LinkDown, U: ed.U, V: ed.V}, // valid
		{Kind: dynamic.LinkUp, U: 3, V: 3},         // self link: invalid
	}
	_, err := up.Apply(batch)
	if !errors.Is(err, ErrBadDelta) {
		t.Fatalf("want ErrBadDelta, got %v", err)
	}
	if !up.Graph().Equal(gBefore) {
		t.Fatal("failed batch mutated the topology")
	}
	if !reflect.DeepEqual(up.Assignment(), asBefore) {
		t.Fatal("failed batch mutated the schedule")
	}
	if up.Updates() != 0 {
		t.Fatalf("failed batch counted as an update: %d", up.Updates())
	}
}

// TestBadDeltas enumerates the client-error shapes; every one must wrap
// ErrBadDelta and leave no trace.
func TestBadDeltas(t *testing.T) {
	up := newUpdater(t, 10, 15, 8)
	ed := up.Graph().Edges()[0]
	var missU, missV int
	for missU = 0; missU < 10; missU++ {
		done := false
		for missV = missU + 1; missV < 10; missV++ {
			if !up.Graph().HasEdge(missU, missV) {
				done = true
				break
			}
		}
		if done {
			break
		}
	}
	cases := []struct {
		name string
		ev   dynamic.Event
	}{
		{"node out of range", dynamic.Event{Kind: dynamic.LinkUp, U: 0, V: 99}},
		{"negative node", dynamic.Event{Kind: dynamic.LinkDown, U: -1, V: 2}},
		{"self link", dynamic.Event{Kind: dynamic.LinkUp, U: 4, V: 4}},
		{"link-up on existing edge", dynamic.Event{Kind: dynamic.LinkUp, U: ed.U, V: ed.V}},
		{"link-down on missing edge", dynamic.Event{Kind: dynamic.LinkDown, U: missU, V: missV}},
		{"join peer out of range", dynamic.Event{Kind: dynamic.NodeJoin, U: missU, Peers: []int{404}}},
		{"move peer out of range", dynamic.Event{Kind: dynamic.NodeMove, U: missU, Peers: []int{-2}}},
		{"fail out of range", dynamic.Event{Kind: dynamic.NodeFail, U: 10}},
		{"unknown kind", dynamic.Event{Kind: dynamic.EventKind(42), U: 1, V: 2}},
	}
	for _, tc := range cases {
		if _, err := up.Apply([]dynamic.Event{tc.ev}); !errors.Is(err, ErrBadDelta) {
			t.Errorf("%s: want ErrBadDelta, got %v", tc.name, err)
		}
	}
	if viols := coloring.Verify(up.Graph(), up.Assignment()); len(viols) != 0 {
		t.Fatalf("bad deltas damaged the schedule: %v", viols[0])
	}
}

// TestNodeLifecycleEvents exercises NodeFail / NodeJoin / NodeMove batches.
func TestNodeLifecycleEvents(t *testing.T) {
	up := newUpdater(t, 20, 50, 9)
	victim := 0
	peers := up.Graph().Neighbors(victim)
	rep, err := up.Apply([]dynamic.Event{{Kind: dynamic.NodeFail, U: victim}})
	if err != nil {
		t.Fatal(err)
	}
	if up.Graph().Degree(victim) != 0 {
		t.Fatal("NodeFail left links behind")
	}
	if len(rep.Dropped) != 2*len(peers) {
		t.Fatalf("NodeFail dropped %d arcs, want %d", len(rep.Dropped), 2*len(peers))
	}
	if _, err := up.Apply([]dynamic.Event{{Kind: dynamic.NodeJoin, U: victim, Peers: peers}}); err != nil {
		t.Fatal(err)
	}
	if up.Graph().Degree(victim) != len(peers) {
		t.Fatal("NodeJoin did not restore the links")
	}
	newPeers := []int{peers[0], (victim + 7) % 20}
	if newPeers[1] == newPeers[0] || up.Graph().HasEdge(victim, newPeers[1]) && newPeers[1] != peers[0] {
		newPeers[1] = (victim + 11) % 20
	}
	if _, err := up.Apply([]dynamic.Event{{Kind: dynamic.NodeMove, U: victim, Peers: newPeers}}); err != nil {
		t.Fatal(err)
	}
	got := up.Graph().Neighbors(victim)
	if len(got) != len(newPeers) {
		t.Fatalf("NodeMove neighbors %v, want %v", got, newPeers)
	}
	if viols := coloring.Verify(up.Graph(), up.Assignment()); len(viols) != 0 {
		t.Fatalf("lifecycle batch left violations: %v", viols[0])
	}
}

// TestApplyDeterministic runs the same seeded stream through two fresh
// updaters and asserts deeply equal reports — the in-process half of the
// GOMAXPROCS byte-determinism contract the session API test pins over HTTP.
func TestApplyDeterministic(t *testing.T) {
	mk := func() (*Updater, *rand.Rand) {
		rng := rand.New(rand.NewSource(12))
		g := graph.ConnectedGNM(24, 60, rng)
		up, err := New(g, coloring.Greedy(g, nil))
		if err != nil {
			t.Fatal(err)
		}
		return up, rng
	}
	upA, rngA := mk()
	upB, rngB := mk()
	targetM := upA.Graph().M()
	for i := 0; i < 200; i++ {
		evA := randomEvent(upA, targetM, rngA)
		evB := randomEvent(upB, targetM, rngB)
		if !reflect.DeepEqual(evA, evB) {
			t.Fatalf("update %d: event streams diverged: %v vs %v", i, evA, evB)
		}
		repA, errA := upA.Apply([]dynamic.Event{evA})
		repB, errB := upB.Apply([]dynamic.Event{evB})
		if errA != nil || errB != nil {
			t.Fatalf("update %d: %v / %v", i, errA, errB)
		}
		if !reflect.DeepEqual(repA, repB) {
			t.Fatalf("update %d: reports diverged:\n%+v\n%+v", i, repA, repB)
		}
	}
}

// TestNewRejectsInvalidSchedule pins the constructor's validation.
func TestNewRejectsInvalidSchedule(t *testing.T) {
	g := graph.Path(4)
	as := coloring.NewAssignment(g)
	for _, a := range g.ArcsView() {
		as[a] = 1 // every conflicting pair clashes
	}
	if _, err := New(g, as); err == nil {
		t.Fatal("New accepted a conflicting schedule")
	}
}
