// Load harness for the incremental rescheduling service: drives a long
// seeded update stream at an in-process fdlspd-equivalent server over real
// HTTP, reports p50/p99 update latency, and pins byte-identical response
// transcripts across GOMAXPROCS. Lives in the external test package so it
// can exercise internal/httpapi (which imports incr) without a cycle.
package incr_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"fdlsp/internal/graph"
	"fdlsp/internal/httpapi"
	"fdlsp/internal/obs"
)

// loadUpdates is the full stream length — the acceptance floor is 1e5
// seeded updates sustained with a deterministic transcript. The full stream
// runs only when FDLSP_LOAD=full (the CI load job sets it); the plain and
// -short test runs use trimmed streams so `go test ./...` stays quick.
const loadUpdates = 100_000

// p99Budget is the smoke gate on per-update latency. An in-process loopback
// update on a small graph costs well under a millisecond of repair work now
// that topology mutations patch the distance-2 conflict cache in place
// instead of forcing a whole-graph rebuild per batch; the budget still
// leaves an order of magnitude for shared-runner noise and GC pauses, but is
// tight enough that a regression back to rebuild-per-update (or any other
// whole-graph cost sneaking into the update path) blows through it.
const p99Budget = 20 * time.Millisecond

// runLoad replays `updates` seeded link flips against a fresh server and
// session, collecting per-update wall latency and a running digest of the
// raw response bodies. The event stream depends only on the seed, so two
// runs must produce byte-identical transcripts.
func runLoad(tb testing.TB, updates int) (digest string, lat []time.Duration) {
	tb.Helper()
	srv := httptest.NewServer(httpapi.NewMuxWith(obs.NewRegistry()))
	defer srv.Close()
	client := srv.Client()

	rng := rand.New(rand.NewSource(1234))
	shadow := graph.ConnectedGNM(30, 70, rng)
	gjson, err := json.Marshal(shadow)
	if err != nil {
		tb.Fatal(err)
	}
	createBody := []byte(fmt.Sprintf(`{"graph":%s,"algorithm":"greedy"}`, gjson))
	resp, err := client.Post(srv.URL+"/v1/session", "application/json", bytes.NewReader(createBody))
	if err != nil {
		tb.Fatal(err)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		tb.Fatal(err)
	}
	resp.Body.Close()
	if created.ID == "" {
		tb.Fatal("session create returned no id")
	}
	upURL := srv.URL + "/v1/session/" + created.ID + "/update"

	h := sha256.New()
	targetM := shadow.M()
	lat = make([]time.Duration, 0, updates)
	for i := 0; i < updates; i++ {
		ev := flipLink(shadow, targetM, rng)
		body := []byte(fmt.Sprintf(`{"events":[%s]}`, ev))
		start := time.Now()
		resp, err := client.Post(upURL, "application/json", bytes.NewReader(body))
		if err != nil {
			tb.Fatalf("update %d: %v", i, err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		lat = append(lat, time.Since(start))
		if err != nil {
			tb.Fatalf("update %d: %v", i, err)
		}
		if resp.StatusCode != http.StatusOK {
			tb.Fatalf("update %d: status %d: %s", i, resp.StatusCode, data)
		}
		h.Write(data)
	}
	return hex.EncodeToString(h.Sum(nil)), lat
}

// flipLink mutates the shadow graph with one valid link flip and returns
// the event's JSON. Flips alternate add/remove around the target edge count
// so density stays flat for the whole stream — a generator that just flips
// random pairs is biased toward additions (most pairs are non-edges) and
// densifies the graph toward complete, which measures cache-rebuild cost on
// an unrealistic topology instead of steady-state repair. Drops keep every
// endpoint's degree positive so the session never fragments.
func flipLink(g *graph.Graph, targetM int, rng *rand.Rand) string {
	if g.M() > targetM {
		for {
			e := g.Edges()[rng.Intn(g.M())]
			if g.Degree(e.U) <= 1 || g.Degree(e.V) <= 1 {
				continue
			}
			g.RemoveEdge(e.U, e.V)
			return fmt.Sprintf(`{"kind":"link-down","u":%d,"v":%d}`, e.U, e.V)
		}
	}
	for {
		u, v := rng.Intn(g.N()), rng.Intn(g.N())
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.AddEdge(u, v)
		return fmt.Sprintf(`{"kind":"link-up","u":%d,"v":%d}`, u, v)
	}
}

func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// TestLoadSessionUpdates is the load harness: a full seeded stream at
// GOMAXPROCS=NumCPU with latency percentiles and a p99 budget, then the
// same stream serial at GOMAXPROCS=1 — the two response transcripts must
// hash identically, which is the byte-determinism acceptance criterion at
// scale.
func TestLoadSessionUpdates(t *testing.T) {
	updates := 5_000
	if os.Getenv("FDLSP_LOAD") == "full" {
		updates = loadUpdates
	}
	if testing.Short() {
		updates = 1_000
	}

	prev := runtime.GOMAXPROCS(runtime.NumCPU())
	defer runtime.GOMAXPROCS(prev)
	digestPar, lat := runLoad(t, updates)

	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	p50 := percentile(lat, 0.50)
	p99 := percentile(lat, 0.99)
	t.Logf("load: %d updates, p50=%v p99=%v max=%v", updates, p50, p99, lat[len(lat)-1])
	if p99 > p99Budget {
		t.Fatalf("p99 update latency %v exceeds budget %v", p99, p99Budget)
	}

	runtime.GOMAXPROCS(1)
	digestSerial, _ := runLoad(t, updates)
	if digestPar != digestSerial {
		t.Fatalf("response transcripts diverge across GOMAXPROCS: %s vs %s", digestPar, digestSerial)
	}
}
