package incr_test

import (
	"math/rand"
	"testing"

	"fdlsp/internal/coloring"
	"fdlsp/internal/dynamic"
	"fdlsp/internal/graph"
	"fdlsp/internal/incr"
)

// BenchmarkApplySingleFlip is the local proxy for the benchkit incr rows:
// one drop-and-readd batch on a live session, the steady-state op of the
// rescheduling service.
func BenchmarkApplySingleFlip(b *testing.B) {
	g := graph.ConnectedGNM(256, 768, rand.New(rand.NewSource(1)))
	up, err := incr.New(g, coloring.Greedy(g, nil))
	if err != nil {
		b.Fatal(err)
	}
	e := g.Edges()[0]
	batch := []dynamic.Event{
		{Kind: dynamic.LinkDown, U: e.U, V: e.V},
		{Kind: dynamic.LinkUp, U: e.U, V: e.V},
	}
	if _, err := up.Apply(batch); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := up.Apply(batch); err != nil {
			b.Fatal(err)
		}
	}
}
