package incr

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"fdlsp/internal/coloring"
	"fdlsp/internal/dynamic"
	"fdlsp/internal/graph"
)

// snapshot captures the updater state a failed batch must restore exactly.
type updaterSnapshot struct {
	g       *graph.Graph
	as      coloring.Assignment
	updates int64
	slots   int
}

func snapshotUpdater(up *Updater) updaterSnapshot {
	return updaterSnapshot{
		g:       up.Graph().Clone(),
		as:      up.Assignment().Clone(),
		updates: up.Updates(),
		slots:   up.Slots(),
	}
}

func (s updaterSnapshot) diff(up *Updater) error {
	if !s.g.Equal(up.Graph()) {
		return errors.New("topology differs from snapshot")
	}
	if !reflect.DeepEqual(s.as, up.Assignment()) {
		return fmt.Errorf("schedule differs from snapshot: %v vs %v", up.Assignment(), s.as)
	}
	if up.Updates() != s.updates {
		return fmt.Errorf("updates counter %d, snapshot %d", up.Updates(), s.updates)
	}
	if up.Slots() != s.slots {
		return fmt.Errorf("frame %d, snapshot %d", up.Slots(), s.slots)
	}
	return nil
}

// TestRepairFailureRollsBack forces coloring.Stabilize to fail and asserts
// the batch is atomic anyway: the topology, the schedule (byte-diffed
// against a snapshot), the frame length, and the updates counter are all
// exactly pre-batch, and the very same batch succeeds on retry once the
// injected failure is removed — the session survives a repair failure.
func TestRepairFailureRollsBack(t *testing.T) {
	up := newUpdater(t, 20, 45, 31)
	targetM := up.Graph().M()
	rng := rand.New(rand.NewSource(32))

	injected := errors.New("injected repair failure")
	for i := 0; i < 25; i++ {
		batch := []dynamic.Event{
			randomEvent(up, targetM, rng),
		}
		// A second event that stays valid relative to the first: flip an
		// edge untouched by it, found by probing a clone.
		probe, err := New(up.Graph(), up.Assignment())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := probe.Apply(batch); err != nil {
			t.Fatal(err)
		}
		batch = append(batch, randomEvent(probe, targetM, rng))

		before := snapshotUpdater(up)

		// Fail the repair after it has already recolored: run the real rule
		// to completion, then report failure — the worst case for rollback.
		up.stabilize = func(g *graph.Graph, as coloring.Assignment, dirty map[graph.Arc]bool) (int, float64, error) {
			rounds, minU, err := coloring.Stabilize(g, as, dirty)
			if err != nil {
				return rounds, minU, err
			}
			return rounds, minU, injected
		}
		if _, err := up.Apply(batch); !errors.Is(err, injected) {
			t.Fatalf("iteration %d: Apply error = %v, want injected failure", i, err)
		}
		if err := before.diff(up); err != nil {
			t.Fatalf("iteration %d: state not rolled back after repair failure: %v", i, err)
		}

		// Retry the identical batch with the real rule: must succeed and
		// leave a valid schedule.
		up.stabilize = nil
		if _, err := up.Apply(batch); err != nil {
			t.Fatalf("iteration %d: retry after rollback failed: %v", i, err)
		}
		if viols := coloring.Verify(up.Graph(), up.Assignment()); len(viols) != 0 {
			t.Fatalf("iteration %d: retry left %d violations", i, len(viols))
		}
	}
}

// TestUpdatesCountsOnlySuccesses: failed batches (validation or repair) do
// not advance the batch counter.
func TestUpdatesCountsOnlySuccesses(t *testing.T) {
	up := newUpdater(t, 10, 14, 33)
	if up.Updates() != 0 {
		t.Fatalf("fresh updater has %d updates", up.Updates())
	}
	// Validation failure: second event references a missing edge.
	_, err := up.Apply([]dynamic.Event{
		{Kind: dynamic.LinkDown, U: 0, V: up.Graph().Neighbors(0)[0]},
		{Kind: dynamic.LinkDown, U: 0, V: up.Graph().Neighbors(0)[0]},
	})
	if !errors.Is(err, ErrBadDelta) {
		t.Fatalf("want ErrBadDelta, got %v", err)
	}
	if up.Updates() != 0 {
		t.Fatalf("validation failure advanced updates to %d", up.Updates())
	}
	// Repair failure.
	boom := errors.New("boom")
	up.stabilize = func(*graph.Graph, coloring.Assignment, map[graph.Arc]bool) (int, float64, error) {
		return 0, 1, boom
	}
	u, v := pickAbsentEdge(up.Graph())
	if _, err := up.Apply([]dynamic.Event{{Kind: dynamic.LinkUp, U: u, V: v}}); !errors.Is(err, boom) {
		t.Fatalf("want injected error, got %v", err)
	}
	if up.Updates() != 0 {
		t.Fatalf("repair failure advanced updates to %d", up.Updates())
	}
	up.stabilize = nil
	if _, err := up.Apply([]dynamic.Event{{Kind: dynamic.LinkUp, U: u, V: v}}); err != nil {
		t.Fatal(err)
	}
	if up.Updates() != 1 {
		t.Fatalf("successful batch counted as %d updates", up.Updates())
	}
}

func pickAbsentEdge(g *graph.Graph) (int, int) {
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			if !g.HasEdge(u, v) {
				return u, v
			}
		}
	}
	panic("complete graph")
}

// TestRemoveThenReaddSameArc: a batch that drops and re-adds the same edge
// must behave like a recoloring of that edge — the topology is unchanged,
// the schedule valid, and the arcs (possibly) recolored, never dropped.
func TestRemoveThenReaddSameArc(t *testing.T) {
	up := newUpdater(t, 16, 30, 34)
	for i := 0; i < 50; i++ {
		e := up.Graph().Edges()[i%up.Graph().M()]
		gBefore := up.Graph().Clone()
		rep, err := up.Apply([]dynamic.Event{
			{Kind: dynamic.LinkDown, U: e.U, V: e.V},
			{Kind: dynamic.LinkUp, U: e.U, V: e.V},
		})
		if err != nil {
			t.Fatalf("flip %d: %v", i, err)
		}
		if !gBefore.Equal(up.Graph()) {
			t.Fatalf("flip %d: remove+readd changed the topology", i)
		}
		if len(rep.Dropped) != 0 {
			t.Fatalf("flip %d: remove+readd reported drops: %v", i, rep.Dropped)
		}
		for _, rc := range rep.Recolored {
			if up.Assignment()[graph.Arc{From: rc.From, To: rc.To}] != rc.Slot {
				t.Fatalf("flip %d: recolor entry %v disagrees with schedule", i, rc)
			}
		}
		if viols := coloring.Verify(up.Graph(), up.Assignment()); len(viols) != 0 {
			t.Fatalf("flip %d: %d violations", i, len(viols))
		}
	}
}

// TestNodeMoveFailOverlappingDirtySets: batches pairing a NodeMove with a
// NodeFail of an adjacent node exercise overlapping dirty regions — the
// mover's new links and the failer's dropped links share 2-hop
// neighborhoods. The schedule must stay valid and every drop accounted.
func TestNodeMoveFailOverlappingDirtySets(t *testing.T) {
	up := newUpdater(t, 24, 60, 35)
	rng := rand.New(rand.NewSource(36))
	for i := 0; i < 60; i++ {
		g := up.Graph()
		// Mover: relocate next to a random node's neighborhood. Failer: a
		// current neighbor of the mover, so the dirty sets overlap.
		mover := rng.Intn(g.N())
		nbrs := g.Neighbors(mover)
		if len(nbrs) == 0 {
			continue
		}
		failer := nbrs[rng.Intn(len(nbrs))]
		anchor := rng.Intn(g.N())
		peers := []int{}
		for _, w := range g.Neighbors(anchor) {
			if w != mover && w != failer {
				peers = append(peers, w)
			}
		}
		if anchor != mover && anchor != failer {
			peers = append(peers, anchor)
		}
		if len(peers) == 0 {
			continue
		}
		before := up.Assignment().Clone()
		rep, err := up.Apply([]dynamic.Event{
			{Kind: dynamic.NodeMove, U: mover, Peers: peers},
			{Kind: dynamic.NodeFail, U: failer},
		})
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if viols := coloring.Verify(up.Graph(), up.Assignment()); len(viols) != 0 {
			t.Fatalf("batch %d: %d violations, first %v", i, len(viols), viols[0])
		}
		if up.Graph().Degree(failer) != 0 {
			t.Fatalf("batch %d: failed node %d still has %d links", i, failer, up.Graph().Degree(failer))
		}
		// Every dropped entry names the slot the arc actually held.
		for _, d := range rep.Dropped {
			a := graph.Arc{From: d.From, To: d.To}
			if before[a] != d.Slot {
				t.Fatalf("batch %d: drop %v reported slot %d, had %d", i, a, d.Slot, before[a])
			}
			if _, live := up.Assignment()[a]; live {
				t.Fatalf("batch %d: dropped arc %v still colored", i, a)
			}
		}
	}
}

// TestFrameTracksNumColors pins the O(1) frame accounting to the full-scan
// definition across a long mutation stream, including frame shrinkage when
// high slots retire.
func TestFrameTracksNumColors(t *testing.T) {
	up := newUpdater(t, 18, 40, 37)
	targetM := up.Graph().M()
	rng := rand.New(rand.NewSource(38))
	if up.Slots() != up.Assignment().NumColors() {
		t.Fatalf("fresh updater frame %d, scan %d", up.Slots(), up.Assignment().NumColors())
	}
	for i := 0; i < 300; i++ {
		if _, err := up.Apply([]dynamic.Event{randomEvent(up, targetM, rng)}); err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		if got, want := up.Slots(), up.Assignment().NumColors(); got != want {
			t.Fatalf("update %d: tracked frame %d, full scan %d", i, got, want)
		}
	}
}

// TestApplyReportsCachePatches: steady-state batches are served by conflict
// cache patches, not rebuilds.
func TestApplyReportsCachePatches(t *testing.T) {
	up := newUpdater(t, 20, 45, 39)
	targetM := up.Graph().M()
	rng := rand.New(rand.NewSource(40))
	// Warm-up batch may pay the initial build.
	if _, err := up.Apply([]dynamic.Event{randomEvent(up, targetM, rng)}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		rep, err := up.Apply([]dynamic.Event{randomEvent(up, targetM, rng)})
		if err != nil {
			t.Fatalf("update %d: %v", i, err)
		}
		if rep.CacheRebuilds != 0 {
			t.Fatalf("update %d: steady-state batch paid %d cache rebuilds", i, rep.CacheRebuilds)
		}
		if rep.CachePatches == 0 || rep.CachePatchedArcs == 0 {
			t.Fatalf("update %d: no cache patch recorded: %+v", i, rep)
		}
	}
}
