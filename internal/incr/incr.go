// Package incr is the incremental rescheduling service core: where
// internal/dynamic repairs one topology event at a time and internal/soak
// drives an unbounded simulated churn stream, this package accepts *client*
// deltas — a batch of dynamic.Events — against a long-lived schedule and
// answers with the minimal recolor set, the repair-round count, and the new
// frame length. It is the engine behind fdlspd's POST /v1/session API, the
// bridge from "simulator" to "service" the roadmap names.
//
// Per batch the Updater applies the topology delta, derives the dirty arc
// set on the warm distance-2 conflict cache (the new arcs plus every
// existing pair the new adjacency makes clash — the paper's locality
// argument guarantees nothing outside the 2-hop neighborhood of a change
// can need a new slot), and repairs it with coloring.Stabilize, the same
// distributed-round rule the churn soak proves the ≤|dirty| convergence
// bound for. Batches are atomic: every event is validated as it applies and
// a failed batch rolls the topology and schedule back to their pre-batch
// state, so a client error (ErrBadDelta) never corrupts the session.
//
// Determinism contract: Apply is a pure function of the initial schedule
// and the event-batch sequence. Worklists are sorted before use and no map
// iteration order reaches the result, so a fixed update stream produces
// byte-identical reports at any GOMAXPROCS — the session API's determinism
// tests pin this.
package incr

import (
	"errors"
	"fmt"
	"sort"

	"fdlsp/internal/coloring"
	"fdlsp/internal/dynamic"
	"fdlsp/internal/graph"
)

// ErrBadDelta marks validation failures of a client's event batch — an
// out-of-range node, a link-up on an existing edge, a link-down on a
// missing one, a self link, an unknown event kind. Callers (the HTTP
// layer) classify these as the client's bug, not the service's.
var ErrBadDelta = errors.New("bad delta")

// ArcSlot is one arc→slot binding of a recolor delta.
type ArcSlot struct {
	From int `json:"from"`
	To   int `json:"to"`
	Slot int `json:"slot"`
}

// Report is the outcome of one applied batch: the minimal recolor delta
// plus the repair accounting.
type Report struct {
	// Events is the number of events the batch carried.
	Events int
	// DirtyArcs is the size of the dirty set entering repair.
	DirtyArcs int
	// Rounds is the distributed repair rounds the stabilizer needed
	// (bounded by |dirty|).
	Rounds int
	// MinUsable is the worst usable-frame fraction observed during repair.
	MinUsable float64
	// Recolored lists, sorted by (from, to), every arc still in the
	// topology whose slot differs from before the batch — new arcs with
	// their first slot, plus repaired neighbors. This is the minimal
	// re-deployment set: nodes not incident to these arcs keep their
	// timetable untouched.
	Recolored []ArcSlot
	// Dropped lists, sorted by (from, to), the arcs removed with their
	// links, each with the slot it freed.
	Dropped []ArcSlot
	// FrameLength is the TDMA frame length after the batch.
	FrameLength int
	// CachePatches and CachePatchedArcs count the incremental distance-2
	// conflict-cache syncs this batch cost and the rows they rewrote;
	// CacheRebuilds counts full rebuilds (0 on the steady-state patch
	// path). The session layer exports them per session.
	CachePatches     uint64
	CachePatchedArcs uint64
	CacheRebuilds    uint64
}

// Updater is a live schedule under incremental maintenance. Methods are not
// safe for concurrent use; the session layer serializes access.
type Updater struct {
	g       *graph.Graph
	as      coloring.Assignment
	updates int64

	// Frame accounting, maintained from the per-batch color diff so Slots
	// and Report.FrameLength cost O(1) instead of a full O(m) scan of the
	// assignment per batch: colorCount holds the number of arcs per color,
	// frame the largest color in use.
	colorCount map[int]int
	frame      int

	// stabilize is the repair rule; nil means coloring.Stabilize. Tests
	// inject failures here to exercise the repair-failure rollback path.
	stabilize func(*graph.Graph, coloring.Assignment, map[graph.Arc]bool) (int, float64, error)
}

// New wraps a valid schedule for incremental maintenance. The graph is
// cloned and the assignment copied, so the caller's instances stay free.
func New(g *graph.Graph, as coloring.Assignment) (*Updater, error) {
	if viols := coloring.Verify(g, as); len(viols) != 0 {
		return nil, fmt.Errorf("incr: initial schedule invalid: %v", viols[0])
	}
	up := &Updater{g: g.Clone(), as: as.Clone(), colorCount: make(map[int]int)}
	for _, c := range up.as {
		if c != coloring.None {
			up.colorCount[c]++
			if c > up.frame {
				up.frame = c
			}
		}
	}
	return up, nil
}

// Graph returns the current topology (read-only by convention).
func (up *Updater) Graph() *graph.Graph { return up.g }

// Assignment returns the current schedule (read-only by convention).
func (up *Updater) Assignment() coloring.Assignment { return up.as }

// Slots returns the current frame length (maintained incrementally — O(1)).
func (up *Updater) Slots() int { return up.frame }

// Updates returns the number of batches applied so far.
func (up *Updater) Updates() int64 { return up.updates }

// mutation is one journaled edge change. Colors are not journaled here:
// rollback restores them from the batch's first-touch snapshot, which also
// covers colors the repair phase rewrote.
type mutation struct {
	added bool
	u, v  int
}

// Apply performs one batch of topology deltas and repairs the schedule.
// The batch is atomic: on any error — a validation failure (ErrBadDelta in
// the chain) or a repair failure — the topology and schedule are exactly as
// before the call, updates is not incremented, and the session stays
// serviceable (the same or a corrected batch can be retried). On success
// the schedule is conflict-free and complete for the updated topology, and
// the returned report carries the minimal recolor delta.
func (up *Updater) Apply(events []dynamic.Event) (*Report, error) {
	cacheBefore := coloring.CacheStats(up.g)
	// Phase 1 — apply the delta, journaling every edge change and the
	// pre-batch color of every touched arc (first touch wins, so colors
	// snapshot the state before the batch regardless of event order).
	var muts []mutation
	oldColor := make(map[graph.Arc]int)
	for i, ev := range events {
		if err := up.applyEvent(ev, &muts, oldColor); err != nil {
			up.rollback(muts, oldColor)
			return nil, fmt.Errorf("incr: event %d %v: %w", i, ev, err)
		}
	}
	rep := &Report{Events: len(events), MinUsable: 1}

	// Phase 2 — dirty set. Touched arcs still present are the batch's new
	// arcs (removal deleted their colors, so a removed-then-readded arc is
	// new again); they enter uncolored. A link insertion can only violate
	// pairs whose both members appear in the new arcs' conflict sets, so
	// auditing those colored neighbors covers every violation the delta
	// introduced (link removals only remove conflicts and need no repair).
	touched := sortedArcs(oldColor)
	dirty := make(map[graph.Arc]bool)
	var added []graph.Arc
	for _, a := range touched {
		if up.g.HasEdge(a.From, a.To) {
			added = append(added, a)
			dirty[a] = true
		}
	}
	for _, a := range added {
		for _, b := range coloring.ConflictingArcs(up.g, a) {
			if up.as[b] == coloring.None {
				continue
			}
			for _, w := range coloring.AuditArcs(up.g, up.as, []graph.Arc{b}) {
				for _, d := range []graph.Arc{w.A, w.B} {
					if !dirty[d] {
						dirty[d] = true
						if _, ok := oldColor[d]; !ok {
							oldColor[d] = up.as[d]
						}
					}
				}
			}
		}
	}
	rep.DirtyArcs = len(dirty)

	// Phase 3 — repair with the shared stabilize rule, then diff against
	// the pre-batch snapshot. Only dirty arcs can act, so the delta below
	// is complete; it is minimal because an arc that kept its slot (even a
	// dirty one repaired by its partner moving) produces no entry. A repair
	// failure rolls everything back: every arc the stabilizer touched is in
	// the dirty set, every dirty arc is first-touch snapshotted, so
	// restoring the snapshot recovers the exact pre-batch schedule.
	stab := up.stabilize
	if stab == nil {
		stab = coloring.Stabilize
	}
	rounds, minUsable, err := stab(up.g, up.as, dirty)
	if err != nil {
		up.rollback(muts, oldColor)
		return nil, fmt.Errorf("incr: repair failed: %w", err)
	}
	up.updates++
	rep.Rounds = rounds
	rep.MinUsable = minUsable
	for _, a := range sortedArcs(oldColor) {
		old := oldColor[a]
		cur := up.as[a]
		if up.g.HasEdge(a.From, a.To) {
			if cur != old {
				rep.Recolored = append(rep.Recolored, ArcSlot{From: a.From, To: a.To, Slot: cur})
			}
		} else if old != coloring.None {
			rep.Dropped = append(rep.Dropped, ArcSlot{From: a.From, To: a.To, Slot: old})
		}
		// Frame accounting: every color change in the batch runs through
		// this diff, so adjusting per-color counts here keeps frame exact
		// without rescanning the assignment.
		if cur != old {
			up.uncount(old)
			up.count(cur)
		}
	}
	rep.FrameLength = up.frame
	cacheAfter := coloring.CacheStats(up.g)
	if cacheAfter.Patches >= cacheBefore.Patches && cacheAfter.Builds >= cacheBefore.Builds {
		rep.CachePatches = cacheAfter.Patches - cacheBefore.Patches
		rep.CachePatchedArcs = cacheAfter.PatchedArcs - cacheBefore.PatchedArcs
		rep.CacheRebuilds = cacheAfter.Builds - cacheBefore.Builds
	} else {
		// The cache object itself was replaced mid-batch (counters reset);
		// report the new object's absolute counts rather than a bogus diff.
		rep.CachePatches = cacheAfter.Patches
		rep.CachePatchedArcs = cacheAfter.PatchedArcs
		rep.CacheRebuilds = cacheAfter.Builds
	}
	return rep, nil
}

// count/uncount maintain the per-color arc counts and the running frame
// length. Lowering the frame walks down past emptied colors; the walk is
// paid for by the increments that raised it.
func (up *Updater) count(c int) {
	if c == coloring.None {
		return
	}
	up.colorCount[c]++
	if c > up.frame {
		up.frame = c
	}
}

func (up *Updater) uncount(c int) {
	if c == coloring.None {
		return
	}
	up.colorCount[c]--
	if up.colorCount[c] == 0 {
		delete(up.colorCount, c)
	}
	for up.frame > 0 && up.colorCount[up.frame] == 0 {
		up.frame--
	}
}

// applyEvent applies one event to the live topology, journaling each edge
// change into muts. Validation failures wrap ErrBadDelta and leave muts
// holding exactly the changes made so far, for rollback.
func (up *Updater) applyEvent(ev dynamic.Event, muts *[]mutation, oldColor map[graph.Arc]int) error {
	switch ev.Kind {
	case dynamic.LinkUp:
		return up.addLink(ev.U, ev.V, muts, oldColor)
	case dynamic.LinkDown:
		return up.dropLink(ev.U, ev.V, muts, oldColor)
	case dynamic.NodeFail:
		if err := up.checkNode(ev.U); err != nil {
			return err
		}
		for _, w := range up.g.Neighbors(ev.U) {
			if err := up.dropLink(ev.U, w, muts, oldColor); err != nil {
				return err
			}
		}
		return nil
	case dynamic.NodeJoin:
		if err := up.checkNode(ev.U); err != nil {
			return err
		}
		for _, w := range ev.Peers {
			if err := up.addLink(ev.U, w, muts, oldColor); err != nil {
				return err
			}
		}
		return nil
	case dynamic.NodeMove:
		if err := up.checkNode(ev.U); err != nil {
			return err
		}
		want := make(map[int]bool, len(ev.Peers))
		for _, w := range ev.Peers {
			if err := up.checkNode(w); err != nil {
				return err
			}
			want[w] = true
		}
		for _, w := range up.g.Neighbors(ev.U) {
			if !want[w] {
				if err := up.dropLink(ev.U, w, muts, oldColor); err != nil {
					return err
				}
			}
		}
		for _, w := range ev.Peers {
			if !up.g.HasEdge(ev.U, w) {
				if err := up.addLink(ev.U, w, muts, oldColor); err != nil {
					return err
				}
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown event kind %d: %w", int(ev.Kind), ErrBadDelta)
	}
}

func (up *Updater) checkNode(v int) error {
	if v < 0 || v >= up.g.N() {
		return fmt.Errorf("node %d outside [0,%d): %w", v, up.g.N(), ErrBadDelta)
	}
	return nil
}

func (up *Updater) addLink(u, v int, muts *[]mutation, oldColor map[graph.Arc]int) error {
	if err := up.checkNode(u); err != nil {
		return err
	}
	if err := up.checkNode(v); err != nil {
		return err
	}
	if u == v {
		return fmt.Errorf("self link {%d,%d}: %w", u, v, ErrBadDelta)
	}
	if up.g.HasEdge(u, v) {
		return fmt.Errorf("link-up on existing edge {%d,%d}: %w", u, v, ErrBadDelta)
	}
	au, av := graph.Arc{From: u, To: v}, graph.Arc{From: v, To: u}
	firstTouch(oldColor, up.as, au)
	firstTouch(oldColor, up.as, av)
	up.g.AddEdge(u, v)
	*muts = append(*muts, mutation{added: true, u: u, v: v})
	return nil
}

func (up *Updater) dropLink(u, v int, muts *[]mutation, oldColor map[graph.Arc]int) error {
	if err := up.checkNode(u); err != nil {
		return err
	}
	if err := up.checkNode(v); err != nil {
		return err
	}
	if u == v {
		return fmt.Errorf("self link {%d,%d}: %w", u, v, ErrBadDelta)
	}
	if !up.g.HasEdge(u, v) {
		return fmt.Errorf("link-down on missing edge {%d,%d}: %w", u, v, ErrBadDelta)
	}
	au, av := graph.Arc{From: u, To: v}, graph.Arc{From: v, To: u}
	firstTouch(oldColor, up.as, au)
	firstTouch(oldColor, up.as, av)
	*muts = append(*muts, mutation{added: false, u: u, v: v})
	delete(up.as, au)
	delete(up.as, av)
	up.g.RemoveEdge(u, v)
	return nil
}

// rollback restores the exact pre-batch state after a failed batch: the
// journaled edge changes are undone in reverse, then every first-touched
// arc gets its snapshotted color back. The snapshot covers everything that
// can have changed — phase 1 first-touches every arc it recolors or drops,
// phase 2 first-touches every arc it dirties, and the stabilizer only
// recolors dirty arcs — so after restoration the schedule is byte-identical
// to the pre-batch one, whether the batch failed validation or repair.
func (up *Updater) rollback(muts []mutation, oldColor map[graph.Arc]int) {
	for i := len(muts) - 1; i >= 0; i-- {
		m := muts[i]
		if m.added {
			up.g.RemoveEdge(m.u, m.v)
		} else {
			up.g.AddEdge(m.u, m.v)
		}
	}
	for _, a := range sortedArcs(oldColor) {
		if c := oldColor[a]; c == coloring.None {
			delete(up.as, a)
		} else {
			up.as[a] = c
		}
	}
}

// firstTouch snapshots a's pre-batch color the first time the batch touches
// it; later touches keep the original.
func firstTouch(oldColor map[graph.Arc]int, as coloring.Assignment, a graph.Arc) {
	if _, ok := oldColor[a]; !ok {
		oldColor[a] = as[a]
	}
}

// sortedArcs returns the keys of m ordered by (From, To).
func sortedArcs(m map[graph.Arc]int) []graph.Arc {
	out := make([]graph.Arc, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}
