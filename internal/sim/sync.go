package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"fdlsp/internal/graph"
)

// SyncNode is the behavior of one processor under the synchronous model.
// Implementations keep all mutable state inside themselves; the engine
// guarantees Step is never called concurrently for the same node.
type SyncNode interface {
	// Step executes one synchronous round: inbox holds the messages sent to
	// this node in the previous round (sorted by sender), and sends are
	// issued through env. It returns true when the node has terminated
	// locally; a terminated node still receives messages (its Step keeps
	// being called while traffic addressed to it exists) so protocols may
	// keep serving queries after deciding.
	Step(env *SyncEnv, inbox []Message) bool
}

// SyncEnv is the per-node view of the synchronous engine passed to Step.
type SyncEnv struct {
	ID        int
	Round     int
	Neighbors []int // sorted, fixed for the run
	Rand      *rand.Rand

	engine *SyncEngine
	outbox []Message
}

// Send enqueues a message to neighbor "to" for delivery next round. Sending
// to a non-neighbor panics: the model only has channels along edges.
func (e *SyncEnv) Send(to int, payload any) {
	if !e.engine.g.HasEdge(e.ID, to) {
		panic(fmt.Sprintf("sim: node %d sending to non-neighbor %d", e.ID, to))
	}
	e.outbox = append(e.outbox, Message{From: e.ID, To: to, Payload: payload})
}

// Broadcast sends payload to every neighbor.
func (e *SyncEnv) Broadcast(payload any) {
	for _, u := range e.Neighbors {
		e.Send(u, payload)
	}
}

// SyncEngine drives a set of SyncNodes over a communication graph in
// lock-step rounds. Node steps within a round run in parallel.
type SyncEngine struct {
	g     *graph.Graph
	nodes []SyncNode
	envs  []*SyncEnv
	// MaxRounds bounds the run; exceeded runs return an error. Zero means
	// the default of 10_000 + 100·n rounds.
	MaxRounds int
	// Trace optionally receives round, send, and node-termination events.
	Trace Tracer

	stats Stats
}

// NewSyncEngine builds an engine for graph g with one node per vertex,
// produced by factory. Seed derives each node's private RNG (deterministic
// runs for a fixed seed regardless of scheduling, since parallelism never
// crosses node state).
func NewSyncEngine(g *graph.Graph, seed int64, factory func(id int) SyncNode) *SyncEngine {
	eng := &SyncEngine{g: g, nodes: make([]SyncNode, g.N()), envs: make([]*SyncEnv, g.N())}
	for v := 0; v < g.N(); v++ {
		eng.nodes[v] = factory(v)
		//lint:ignore envowner the engine is the constructor-owner; Step never runs concurrently for the same node
		eng.envs[v] = &SyncEnv{
			ID:        v,
			Neighbors: g.Neighbors(v),
			Rand:      rand.New(rand.NewSource(seed ^ int64(v)*0x5851F42D4C957F2D ^ 0x5BF03635)),
			engine:    eng,
		}
	}
	return eng
}

// Stats returns the accounting of the last Run.
func (eng *SyncEngine) Stats() Stats { return eng.stats }

// Run executes rounds until every node has reported termination and no
// messages remain in flight, or the round budget is exhausted (error).
func (eng *SyncEngine) Run() error {
	n := eng.g.N()
	maxRounds := eng.MaxRounds
	if maxRounds == 0 {
		maxRounds = 10_000 + 100*n
	}
	inboxes := make([][]Message, n)
	done := make([]bool, n)
	doneSeen := make([]bool, n)
	eng.stats = Stats{}

	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	for round := 0; ; round++ {
		if round > maxRounds {
			return fmt.Errorf("sim: synchronous run exceeded %d rounds", maxRounds)
		}
		allDone := true
		pending := false
		for v := 0; v < n; v++ {
			if !done[v] {
				allDone = false
			}
			if len(inboxes[v]) > 0 {
				pending = true
			}
		}
		if allDone && !pending {
			eng.stats.Rounds = int64(round)
			return nil
		}
		if eng.Trace != nil {
			eng.Trace.Emit(Event{Kind: EventRoundStart, Time: int64(round)})
		}

		// Parallel step: each worker owns a disjoint stripe of nodes. A
		// panicking node aborts the run with an error instead of killing
		// the process.
		var wg sync.WaitGroup
		panics := make([]error, workers)
		chunk := (n + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if hi > n {
				hi = n
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						panics[w] = fmt.Errorf("sim: node step panicked: %v", r)
					}
				}()
				for v := lo; v < hi; v++ {
					//lint:ignore envowner workers own disjoint node stripes; the wg.Wait barrier serializes rounds
					env := eng.envs[v]
					env.Round = round
					env.outbox = env.outbox[:0]
					inbox := inboxes[v]
					sort.SliceStable(inbox, func(i, j int) bool { return inbox[i].From < inbox[j].From })
					done[v] = eng.nodes[v].Step(env, inbox)
				}
			}(w, lo, hi)
		}
		wg.Wait()
		for _, err := range panics {
			if err != nil {
				return err
			}
		}

		// Deliver for next round, deterministically in node order.
		for v := range inboxes {
			inboxes[v] = inboxes[v][:0]
		}
		for v := 0; v < n; v++ {
			for _, m := range eng.envs[v].outbox {
				m.When = int64(round + 1)
				inboxes[m.To] = append(inboxes[m.To], m)
				eng.stats.Messages++
				if eng.Trace != nil {
					eng.Trace.Emit(Event{Kind: EventSend, Time: int64(round), From: m.From, To: m.To, Payload: payloadName(m.Payload)})
				}
			}
			if eng.Trace != nil && done[v] && !doneSeen[v] {
				doneSeen[v] = true
				eng.Trace.Emit(Event{Kind: EventNodeDone, Time: int64(round), From: v, To: -1})
			}
		}
	}
}
