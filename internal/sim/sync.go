package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"fdlsp/internal/graph"
	"fdlsp/internal/obs"
)

// SyncNode is the behavior of one processor under the synchronous model.
// Implementations keep all mutable state inside themselves; the engine
// guarantees Step is never called concurrently for the same node.
type SyncNode interface {
	// Step executes one synchronous round: inbox holds the messages sent to
	// this node in the previous round (sorted by sender), and sends are
	// issued through env. It returns true when the node has terminated
	// locally; a terminated node still receives messages (its Step keeps
	// being called while traffic addressed to it exists) so protocols may
	// keep serving queries after deciding.
	Step(env *SyncEnv, inbox []Message) bool
}

// SyncEnv is the per-node view of the synchronous engine passed to Step.
type SyncEnv struct {
	ID        int
	Round     int
	Neighbors []int // sorted, fixed for the run
	Rand      *rand.Rand
	// Advance is the engine synchronizer's signal for RoundGate nodes: true
	// when every gated node reported GateReady at the end of the previous
	// round, i.e. the current logical round's traffic has fully settled and
	// the next logical round may begin. Nodes that do not implement RoundGate
	// can ignore it.
	Advance bool

	engine *SyncEngine
	outbox []Message
}

// RoundGate is optionally implemented by SyncNodes that run a logical round
// structure on top of an unreliable physical network (see
// internal/transport). The engine polls GateReady after every physical
// round; once all live gated nodes are ready it sets Advance on the next
// round's envs, which is the global signal that every logical-round message
// has either been acknowledged or given up on — the synchronous analogue of
// an asynchronous-round synchronizer, computed by the simulator the same way
// it already detects global termination.
type RoundGate interface {
	// GateReady reports that this node has no unacknowledged outbound
	// traffic for the current logical round.
	GateReady() bool
}

// Send enqueues a message to neighbor "to" for delivery next round. Sending
// to a non-neighbor panics: the model only has channels along edges.
func (e *SyncEnv) Send(to int, payload any) {
	if !e.engine.g.HasEdge(e.ID, to) {
		panic(fmt.Sprintf("sim: node %d sending to non-neighbor %d", e.ID, to))
	}
	e.outbox = append(e.outbox, Message{From: e.ID, To: to, Payload: payload})
}

// Broadcast sends payload to every neighbor.
func (e *SyncEnv) Broadcast(payload any) {
	for _, u := range e.Neighbors {
		e.Send(u, payload)
	}
}

// SyncEngine drives a set of SyncNodes over a communication graph in
// lock-step rounds. Within a round, node steps — and, on fault-free runs,
// message delivery — shard across a bounded worker pool; the merge order is
// fixed, so schedules, traces and metrics snapshots are byte-identical per
// seed at any Workers or GOMAXPROCS setting (DESIGN.md §13).
type SyncEngine struct {
	g     *graph.Graph
	nodes []SyncNode
	envs  []*SyncEnv
	// MaxRounds bounds the run; exceeded runs return an error. Zero means
	// the default of 10_000 + 100·n rounds.
	MaxRounds int
	// Trace optionally receives round, send, and node-termination events.
	Trace Tracer
	// Fault optionally injects message loss, duplication, reordering, and
	// node crashes. nil means a perfectly reliable network.
	Fault *FaultPlan
	// Metrics optionally receives the run's accounting (fdlsp_sim_* counter
	// families, engine="sync") when Run finishes, successfully or not. The
	// published values are the deterministic Stats, so snapshots are
	// byte-identical per seed regardless of GOMAXPROCS. Workers never touch
	// the registry: publication happens once, from the sequential epilogue.
	Metrics *obs.Registry
	// OnRound, when set, is invoked once per executed round from the
	// engine's sequential section, after the round's steps have run and its
	// sends have been delivered. Protocol drivers use it to probe global
	// state mid-run (e.g. residual conflicts during repair) without stopping
	// the protocol; the hook runs with no shard goroutines alive, so it may
	// read node state freely. It must not mutate engine or node state.
	OnRound func(round int64)
	// Workers bounds the engine's worker pool: node steps (and, when no
	// fault plan is active, message delivery) shard across min(Workers, n)
	// persistent workers. 0 means GOMAXPROCS. 1 is the serial special case:
	// every phase runs inline on the calling goroutine, with no pool. The
	// run's outcome — schedule, trace, metrics — is byte-identical at every
	// setting; Workers only changes wall clock. The field persists across
	// Reset (it describes the execution substrate, not one run).
	Workers int

	stats    Stats
	crashed  []int
	returned []int

	// Per-run scratch, reused across Run and Reset cycles so repeated runs
	// (DistMIS drives one engine through many phases) stop re-allocating
	// per-node buffers.
	inboxes  [][]Message
	done     []bool
	doneSeen []bool
	panics   []error

	// Worker pool state. The pool is started once per Run (workers > 1) and
	// torn down when Run returns; rounds dispatch phase tokens over the
	// per-worker channels instead of spawning goroutines, so the steady
	// state allocates nothing per round. round/advance are written in the
	// sequential section before a dispatch and read by workers after the
	// channel receive (which provides the happens-before edge).
	work    []chan poolOp
	wg      sync.WaitGroup
	shardLo []int
	shardHi []int
	round   int
	advance bool

	// sources and gates cache, per Run, which nodes implement EventSource
	// and RoundGate, replacing two per-node type assertions per round.
	sources []sourceAt
	gates   []gateAt
}

// poolOp is a phase token dispatched to the worker pool.
type poolOp uint8

const (
	opStep    poolOp = iota + 1 // step the worker's own shard of nodes
	opDeliver                   // deliver this round's sends into the worker's shard of inboxes
)

type sourceAt struct {
	v   int
	src EventSource
}

type gateAt struct {
	v    int
	gate RoundGate
}

// envSeed derives node v's private RNG seed from the run seed.
func envSeed(seed int64, v int) int64 {
	return seed ^ int64(v)*0x5851F42D4C957F2D ^ 0x5BF03635
}

// seedEnvs (re-)seeds every env's RNG, fanning the work out across workers
// when the graph is large enough to amortize the goroutines: math/rand's
// Seed initializes a 607-word feedback register per call, which profiles as
// the single largest sequential cost of a multi-phase protocol run (DistMIS
// re-seeds all n RNGs per phase). Each goroutine touches a disjoint range of
// envs and the derived streams depend only on (seed, v), so the result is
// byte-identical to the serial loop.
func seedEnvs(envs []*SyncEnv, seed int64, workers int) {
	seedRange := func(lo, hi int) {
		for v := lo; v < hi; v++ {
			s := envSeed(seed, v)
			if envs[v].Rand == nil {
				envs[v].Rand = rand.New(rand.NewSource(s))
			} else {
				// rand.Rand.Seed(s) restarts the exact stream
				// rand.NewSource(s) starts, so re-seeded envs are
				// byte-equivalent to freshly constructed ones.
				envs[v].Rand.Seed(s)
			}
		}
	}
	const minParallelSeed = 128
	if workers > len(envs) {
		workers = len(envs)
	}
	if workers <= 1 || len(envs) < minParallelSeed {
		seedRange(0, len(envs))
		return
	}
	var wg sync.WaitGroup
	chunk := (len(envs) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(envs) {
			hi = len(envs)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			seedRange(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// NewSyncEngine builds an engine for graph g with one node per vertex,
// produced by factory. Seed derives each node's private RNG (deterministic
// runs for a fixed seed regardless of scheduling, since parallelism never
// crosses node state). The factory is always called serially, in node
// order; only the RNG seeding is parallelized.
func NewSyncEngine(g *graph.Graph, seed int64, factory func(id int) SyncNode) *SyncEngine {
	eng := &SyncEngine{g: g, nodes: make([]SyncNode, g.N()), envs: make([]*SyncEnv, g.N())}
	for v := 0; v < g.N(); v++ {
		eng.nodes[v] = factory(v)
		eng.envs[v] = &SyncEnv{
			ID:        v,
			Neighbors: g.Neighbors(v),
			engine:    eng,
		}
	}
	seedEnvs(eng.envs, seed, runtime.GOMAXPROCS(0))
	return eng
}

// Reset re-arms the engine for a fresh run with new nodes and a new seed,
// reusing the per-node environments and scratch buffers. Each env's RNG is
// re-seeded exactly as NewSyncEngine would, so a Reset engine is
// byte-for-byte equivalent to a freshly constructed one. MaxRounds, Trace,
// Fault, Metrics and OnRound are cleared; callers set them again as needed.
// Workers persists: it configures the engine, not one run. The factory is
// called serially; the re-seeding shards across the worker budget.
func (eng *SyncEngine) Reset(seed int64, factory func(id int) SyncNode) {
	for v := range eng.nodes {
		eng.nodes[v] = factory(v)
		env := eng.envs[v]
		env.Round = 0
		env.Advance = false
		env.outbox = env.outbox[:0]
	}
	seedEnvs(eng.envs, seed, eng.workerCount())
	eng.MaxRounds = 0
	eng.Trace = nil
	eng.Fault = nil
	eng.Metrics = nil
	eng.OnRound = nil
}

// workerCount resolves Workers to the effective pool size for this engine.
func (eng *SyncEngine) workerCount() int {
	w := eng.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if n := len(eng.nodes); w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Stats returns the accounting of the last Run.
func (eng *SyncEngine) Stats() Stats { return eng.stats }

// Crashed returns the nodes whose crash-stop windows fired during the last
// Run, in ascending id order.
func (eng *SyncEngine) Crashed() []int { return append([]int(nil), eng.crashed...) }

// Returned returns the nodes whose restart marks fired during the last Run
// (including nodes listed in FaultPlan.Rejoins), ascending, deduplicated.
// These nodes were handed a NodeRestarted notice and are live unless a
// later crash-stop window also fired.
func (eng *SyncEngine) Returned() []int { return append([]int(nil), eng.returned...) }

// noteReturn records a restart mark and builds the NodeRestarted notice.
func noteReturn(returned *[]int, restarts map[int]int, v int) NodeRestarted {
	restarts[v]++
	seen := false
	for _, u := range *returned {
		if u == v {
			seen = true
			break
		}
	}
	if !seen {
		*returned = append(*returned, v)
		sort.Ints(*returned)
	}
	return NodeRestarted{Restarts: restarts[v]}
}

// startPool launches the per-Run worker pool: workers parked on their
// dispatch channels, each owning the contiguous node shard [shardLo[w],
// shardHi[w]). The channels and shard tables are recycled across Runs when
// the worker count is unchanged.
func (eng *SyncEngine) startPool(workers int) {
	n := len(eng.nodes)
	if len(eng.work) != workers {
		eng.work = make([]chan poolOp, workers)
		eng.shardLo = make([]int, workers)
		eng.shardHi = make([]int, workers)
		for w := range eng.work {
			eng.work[w] = make(chan poolOp, 1)
		}
	}
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if lo > n {
			lo = n
		}
		if hi > n {
			hi = n
		}
		eng.shardLo[w], eng.shardHi[w] = lo, hi
		go eng.workerLoop(w, eng.work[w])
	}
}

// stopPool releases the parked workers; their channels stay allocated for
// the next Run.
func (eng *SyncEngine) stopPool() {
	for _, ch := range eng.work {
		close(ch)
	}
	// Channels must be remade before reuse: a closed channel cannot carry
	// the next Run's tokens.
	for w := range eng.work {
		eng.work[w] = make(chan poolOp, 1)
	}
}

// workerLoop runs one pool worker: execute each dispatched phase over the
// worker's own shard, then report the barrier. Any panic is captured into
// the worker's error slot so the coordinator can fail the Run instead of
// the process dying (or deadlocking on a missing wg.Done).
func (eng *SyncEngine) workerLoop(w int, ops <-chan poolOp) {
	for op := range ops {
		eng.panics[w] = eng.runOp(w, op)
		eng.wg.Done()
	}
}

func (eng *SyncEngine) runOp(w int, op poolOp) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sim: engine worker: %v", r)
		}
	}()
	switch op {
	case opStep:
		return eng.runStripe(eng.round, eng.advance, eng.shardLo[w], eng.shardHi[w])
	case opDeliver:
		eng.deliverShard(eng.shardLo[w], eng.shardHi[w], eng.round)
	}
	return nil
}

// dispatch hands op to every worker and blocks until the barrier. The
// coordinator's writes to round/advance (and the previous phase's results)
// happen before the channel sends; the workers' writes happen before
// wg.Wait returns.
func (eng *SyncEngine) dispatch(op poolOp, workers int) error {
	eng.dispatchAsync(op, workers)
	return eng.await(workers)
}

// dispatchAsync hands op to every worker without waiting; the caller may
// overlap sequential work (trace emission) with the workers and must call
// await before touching any shard state.
func (eng *SyncEngine) dispatchAsync(op poolOp, workers int) {
	eng.wg.Add(workers)
	for w := 0; w < workers; w++ {
		eng.work[w] <- op
	}
}

func (eng *SyncEngine) await(workers int) error {
	eng.wg.Wait()
	for _, err := range eng.panics[:workers] {
		if err != nil {
			return err
		}
	}
	return nil
}

// Run executes rounds until every node has reported termination and no
// messages remain in flight, or the round budget is exhausted (error).
// Crash-stopped nodes count as terminated; their pending traffic is dropped.
func (eng *SyncEngine) Run() error {
	defer func() { publishStats(eng.Metrics, "sync", eng.stats) }()
	n := eng.g.N()
	if err := eng.Fault.Validate(n); err != nil {
		return err
	}
	maxRounds := eng.MaxRounds
	if maxRounds == 0 {
		maxRounds = 10_000 + 100*n
	}
	if eng.inboxes == nil {
		eng.inboxes = make([][]Message, n)
		eng.done = make([]bool, n)
		eng.doneSeen = make([]bool, n)
	} else {
		for v := 0; v < n; v++ {
			eng.inboxes[v] = eng.inboxes[v][:0]
			eng.done[v] = false
			eng.doneSeen[v] = false
		}
	}
	inboxes := eng.inboxes
	eng.stats = Stats{}
	eng.crashed = nil

	plan := eng.Fault
	var faultRand *rand.Rand
	var future map[int64][]Message
	var marks []crashMark
	if plan != nil {
		faultRand = rand.New(rand.NewSource(plan.Seed ^ 0x6A09E667F3BCC909))
		future = make(map[int64][]Message)
		marks = plan.crashMarks()
	}
	markIdx := 0
	advance := true
	eng.returned = nil
	var restarts map[int]int
	if plan != nil {
		restarts = make(map[int]int)
		// Nodes whose outage elapsed before this run get their rejoin
		// notice at time zero, before any round runs.
		for _, v := range plan.Rejoins {
			note := noteReturn(&eng.returned, restarts, v)
			inboxes[v] = append(inboxes[v], Message{From: -1, To: v, Payload: note})
			if eng.Trace != nil {
				eng.Trace.Emit(Event{Kind: EventNodeRestart, Time: 0, From: v, To: -1})
			}
		}
	}

	// Cache, per Run, which nodes implement the optional engine interfaces;
	// the round loop then iterates only implementors instead of
	// type-asserting every node every round.
	eng.sources = eng.sources[:0]
	eng.gates = eng.gates[:0]
	for v, nd := range eng.nodes {
		if src, ok := nd.(EventSource); ok {
			eng.sources = append(eng.sources, sourceAt{v: v, src: src})
		}
		if gate, ok := nd.(RoundGate); ok {
			eng.gates = append(eng.gates, gateAt{v: v, gate: gate})
		}
	}

	workers := eng.workerCount()
	if cap(eng.panics) < workers {
		eng.panics = make([]error, workers)
	}
	if workers > 1 {
		eng.startPool(workers)
		defer eng.stopPool()
	}

	for round := 0; ; round++ {
		if round > maxRounds {
			return fmt.Errorf("sim: synchronous run exceeded %d rounds", maxRounds)
		}

		// Mature reordered messages for this round, dropping arrivals into a
		// crash window. Delivery order within a round is the deterministic
		// order the messages were deferred in.
		if future != nil {
			for _, m := range future[int64(round)] {
				if plan.CrashedAt(m.To, int64(round)) {
					eng.stats.DroppedFault++
					if eng.Trace != nil {
						eng.Trace.Emit(Event{Kind: EventDropFault, Time: int64(round), From: m.From, To: m.To, Payload: payloadName(m.Payload)})
					}
					continue
				}
				inboxes[m.To] = append(inboxes[m.To], m)
			}
			delete(future, int64(round))
		}
		for markIdx < len(marks) && marks[markIdx].at <= int64(round) {
			mk := marks[markIdx]
			markIdx++
			kind := EventNodeCrash
			if mk.restart {
				kind = EventNodeRestart
				note := noteReturn(&eng.returned, restarts, mk.node)
				inboxes[mk.node] = append(inboxes[mk.node], Message{From: -1, To: mk.node, Payload: note})
			} else if plan.DeadBy(mk.node, mk.at) {
				eng.crashed = append(eng.crashed, mk.node)
			}
			if eng.Trace != nil {
				eng.Trace.Emit(Event{Kind: kind, Time: mk.at, From: mk.node, To: -1})
			}
		}

		if eng.quiescent(plan, int64(round), len(future) > 0) {
			eng.stats.Rounds = int64(round)
			return nil
		}
		if eng.Trace != nil {
			eng.Trace.Emit(Event{Kind: EventRoundStart, Time: int64(round)})
		}

		// Step phase: each worker owns a disjoint shard of nodes. A
		// panicking node aborts the run with an error instead of killing
		// the process. Nodes inside a crash window skip their step and lose
		// any queued input. With a single worker the shard runs inline — no
		// pool, no dispatch — and produces the identical sequential
		// semantics.
		if workers == 1 {
			if err := eng.runStripe(round, advance, 0, n); err != nil {
				return err
			}
		} else {
			eng.round, eng.advance = round, advance
			if err := eng.dispatch(opStep, workers); err != nil {
				return err
			}
		}

		// Drain events queued by protocol layers during the parallel step, in
		// node-id order, so the trace stays deterministic across worker
		// counts.
		for _, sa := range eng.sources {
			evs := sa.src.TakeEvents()
			if eng.Trace == nil {
				continue
			}
			for _, ev := range evs {
				eng.Trace.Emit(ev)
			}
		}

		if plan != nil {
			// Fault path: faults are decided message by message in one
			// sequential pass, so a single fault RNG yields identical fault
			// scripts regardless of the worker count.
			eng.deliverFaulty(plan, faultRand, future, round)
		} else {
			// Fault-free path: every send is delivered to round+1, so
			// delivery shards by destination — worker w scans all outboxes
			// in (node, seq) order and keeps the messages addressed to its
			// own shard, producing inboxes byte-identical to the sequential
			// merge. Sends are counted and traced from the sequential
			// section (the trace emission overlaps the workers' delivery:
			// both only read the outboxes).
			for v := 0; v < n; v++ {
				eng.stats.Messages += int64(len(eng.envs[v].outbox))
			}
			if workers == 1 {
				if eng.Trace != nil {
					eng.emitRoundTrace(round)
				}
				eng.deliverShard(0, n, round)
			} else {
				eng.round = round
				eng.dispatchAsync(opDeliver, workers)
				if eng.Trace != nil {
					eng.emitRoundTrace(round)
				}
				if err := eng.await(workers); err != nil {
					return err
				}
			}
		}

		// Probe hook: the round's steps have run and its sends are delivered;
		// no shard goroutine is mid-phase, so the hook may read node state.
		if eng.OnRound != nil {
			eng.OnRound(int64(round))
		}

		// Poll the logical-round synchronizer: the next physical round may
		// open a new logical round only when every live gated node has no
		// unacknowledged traffic outstanding.
		advance = true
		for _, ga := range eng.gates {
			if plan.CrashedAt(ga.v, int64(round+1)) {
				continue
			}
			if !ga.gate.GateReady() {
				advance = false
				break
			}
		}
	}
}

// quiescent reports global termination: every live node done and no traffic
// in flight.
func (eng *SyncEngine) quiescent(plan *FaultPlan, round int64, futurePending bool) bool {
	for v := range eng.done {
		if !eng.done[v] && !plan.DeadBy(v, round) {
			return false
		}
	}
	if futurePending {
		return false
	}
	for v := range eng.inboxes {
		if len(eng.inboxes[v]) > 0 {
			return false
		}
	}
	return true
}

// emitRoundTrace emits the round's send and node-termination events in the
// fixed (node, seq) order of the sequential engine. Fault-free path only:
// under a fault plan the events interleave with fault decisions inside
// deliverFaulty instead.
func (eng *SyncEngine) emitRoundTrace(round int) {
	for v := 0; v < len(eng.nodes); v++ {
		for _, m := range eng.envs[v].outbox {
			eng.Trace.Emit(Event{Kind: EventSend, Time: int64(round), From: m.From, To: m.To, Payload: payloadName(m.Payload)})
		}
		if eng.done[v] && !eng.doneSeen[v] {
			eng.doneSeen[v] = true
			eng.Trace.Emit(Event{Kind: EventNodeDone, Time: int64(round), From: v, To: -1})
		}
	}
}

// deliverShard clears and refills the inboxes of destination nodes in
// [dlo, dhi) from every node's outbox, in (sender, seq) order — the same
// order the sequential merge produces. Workers own disjoint destination
// ranges and only read the outboxes, so concurrent shards never conflict.
// Fault-free path only: every message matures exactly one round later.
func (eng *SyncEngine) deliverShard(dlo, dhi, round int) {
	for v := dlo; v < dhi; v++ {
		eng.inboxes[v] = eng.inboxes[v][:0]
	}
	when := int64(round + 1)
	for v := 0; v < len(eng.nodes); v++ {
		out := eng.envs[v].outbox
		for i := range out {
			to := out[i].To
			if to < dlo || to >= dhi {
				continue
			}
			m := out[i]
			m.When = when
			eng.inboxes[to] = append(eng.inboxes[to], m)
		}
	}
}

// deliverFaulty is the sequential delivery phase used under a fault plan:
// loss, reordering and duplication are decided per message from the single
// fault RNG, so the fault script is a pure function of the plan seed. It
// also accounts traffic lost to crash windows and emits the round's trace
// events in their canonical interleaving.
func (eng *SyncEngine) deliverFaulty(plan *FaultPlan, faultRand *rand.Rand, future map[int64][]Message, round int) {
	n := len(eng.nodes)
	inboxes := eng.inboxes

	// A crashed node's queued input is lost with it (accounted after the
	// step barrier so the trace stays ordered).
	for v := 0; v < n; v++ {
		if !plan.CrashedAt(v, int64(round)) {
			continue
		}
		for _, m := range inboxes[v] {
			eng.stats.DroppedFault++
			if eng.Trace != nil {
				eng.Trace.Emit(Event{Kind: EventDropFault, Time: int64(round), From: m.From, To: m.To, Payload: payloadName(m.Payload)})
			}
		}
	}

	for v := range inboxes {
		inboxes[v] = inboxes[v][:0]
	}
	for v := 0; v < n; v++ {
		for _, m := range eng.envs[v].outbox {
			eng.stats.Messages++
			if eng.Trace != nil {
				eng.Trace.Emit(Event{Kind: EventSend, Time: int64(round), From: m.From, To: m.To, Payload: payloadName(m.Payload)})
			}
			when := int64(round + 1)
			if p := plan.lossAt(m.From, m.To); p > 0 && faultRand.Float64() < p {
				eng.stats.DroppedFault++
				if eng.Trace != nil {
					eng.Trace.Emit(Event{Kind: EventDropFault, Time: when, From: m.From, To: m.To, Payload: payloadName(m.Payload)})
				}
				continue
			}
			if plan.Reorder > 0 {
				when += faultRand.Int63n(plan.Reorder + 1)
			}
			if plan.Dup > 0 && faultRand.Float64() < plan.Dup {
				dup := m
				dup.When = when + 1 + faultRand.Int63n(plan.Reorder+2)
				eng.stats.Duplicated++
				if eng.Trace != nil {
					eng.Trace.Emit(Event{Kind: EventDup, Time: dup.When, From: m.From, To: m.To, Payload: payloadName(m.Payload)})
				}
				future[dup.When] = append(future[dup.When], dup)
			}
			m.When = when
			if when > int64(round+1) {
				future[when] = append(future[when], m)
			} else {
				inboxes[m.To] = append(inboxes[m.To], m)
			}
		}
		if eng.Trace != nil && eng.done[v] && !eng.doneSeen[v] {
			eng.doneSeen[v] = true
			eng.Trace.Emit(Event{Kind: EventNodeDone, Time: int64(round), From: v, To: -1})
		}
	}
}

// runStripe steps the nodes in [lo, hi) for one round, converting a node
// panic into an error. Each stripe touches only its own nodes' state, which
// is what makes the parallel step deterministic.
func (eng *SyncEngine) runStripe(round int, advance bool, lo, hi int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sim: node step panicked: %v", r)
		}
	}()
	plan := eng.Fault
	for v := lo; v < hi; v++ {
		env := eng.envs[v]
		env.Round = round
		env.Advance = advance
		env.outbox = env.outbox[:0]
		if plan.CrashedAt(v, int64(round)) {
			continue
		}
		inbox := eng.inboxes[v]
		SortByFrom(inbox)
		eng.done[v] = eng.nodes[v].Step(env, inbox)
	}
	return nil
}

// SortByFrom stable-sorts messages by sender id in place. Inboxes are small
// and nearly sorted (outboxes drain in node order), so an insertion sort
// beats sort.SliceStable here and, unlike it, allocates nothing.
func SortByFrom(ms []Message) {
	for i := 1; i < len(ms); i++ {
		m := ms[i]
		j := i - 1
		for j >= 0 && ms[j].From > m.From {
			ms[j+1] = ms[j]
			j--
		}
		ms[j+1] = m
	}
}
