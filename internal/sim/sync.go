package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"fdlsp/internal/graph"
	"fdlsp/internal/obs"
)

// SyncNode is the behavior of one processor under the synchronous model.
// Implementations keep all mutable state inside themselves; the engine
// guarantees Step is never called concurrently for the same node.
type SyncNode interface {
	// Step executes one synchronous round: inbox holds the messages sent to
	// this node in the previous round (sorted by sender), and sends are
	// issued through env. It returns true when the node has terminated
	// locally; a terminated node still receives messages (its Step keeps
	// being called while traffic addressed to it exists) so protocols may
	// keep serving queries after deciding.
	Step(env *SyncEnv, inbox []Message) bool
}

// SyncEnv is the per-node view of the synchronous engine passed to Step.
type SyncEnv struct {
	ID        int
	Round     int
	Neighbors []int // sorted, fixed for the run
	Rand      *rand.Rand
	// Advance is the engine synchronizer's signal for RoundGate nodes: true
	// when every gated node reported GateReady at the end of the previous
	// round, i.e. the current logical round's traffic has fully settled and
	// the next logical round may begin. Nodes that do not implement RoundGate
	// can ignore it.
	Advance bool

	engine *SyncEngine
	outbox []Message
}

// RoundGate is optionally implemented by SyncNodes that run a logical round
// structure on top of an unreliable physical network (see
// internal/transport). The engine polls GateReady after every physical
// round; once all live gated nodes are ready it sets Advance on the next
// round's envs, which is the global signal that every logical-round message
// has either been acknowledged or given up on — the synchronous analogue of
// an asynchronous-round synchronizer, computed by the simulator the same way
// it already detects global termination.
type RoundGate interface {
	// GateReady reports that this node has no unacknowledged outbound
	// traffic for the current logical round.
	GateReady() bool
}

// Send enqueues a message to neighbor "to" for delivery next round. Sending
// to a non-neighbor panics: the model only has channels along edges.
func (e *SyncEnv) Send(to int, payload any) {
	if !e.engine.g.HasEdge(e.ID, to) {
		panic(fmt.Sprintf("sim: node %d sending to non-neighbor %d", e.ID, to))
	}
	e.outbox = append(e.outbox, Message{From: e.ID, To: to, Payload: payload})
}

// Broadcast sends payload to every neighbor.
func (e *SyncEnv) Broadcast(payload any) {
	for _, u := range e.Neighbors {
		e.Send(u, payload)
	}
}

// SyncEngine drives a set of SyncNodes over a communication graph in
// lock-step rounds. Node steps within a round run in parallel.
type SyncEngine struct {
	g     *graph.Graph
	nodes []SyncNode
	envs  []*SyncEnv
	// MaxRounds bounds the run; exceeded runs return an error. Zero means
	// the default of 10_000 + 100·n rounds.
	MaxRounds int
	// Trace optionally receives round, send, and node-termination events.
	Trace Tracer
	// Fault optionally injects message loss, duplication, reordering, and
	// node crashes. nil means a perfectly reliable network.
	Fault *FaultPlan
	// Metrics optionally receives the run's accounting (fdlsp_sim_* counter
	// families, engine="sync") when Run finishes, successfully or not. The
	// published values are the deterministic Stats, so snapshots are
	// byte-identical per seed regardless of GOMAXPROCS.
	Metrics *obs.Registry
	// OnRound, when set, is invoked once per executed round from the
	// engine's sequential section, after the round's steps have run and its
	// sends have been delivered. Protocol drivers use it to probe global
	// state mid-run (e.g. residual conflicts during repair) without stopping
	// the protocol; the hook runs with no stripe goroutines alive, so it may
	// read node state freely. It must not mutate engine or node state.
	OnRound func(round int64)

	stats    Stats
	crashed  []int
	returned []int

	// Per-run scratch, reused across Run and Reset cycles so repeated runs
	// (DistMIS drives one engine through many phases) stop re-allocating
	// per-node buffers.
	inboxes  [][]Message
	done     []bool
	doneSeen []bool
	panics   []error
}

// NewSyncEngine builds an engine for graph g with one node per vertex,
// produced by factory. Seed derives each node's private RNG (deterministic
// runs for a fixed seed regardless of scheduling, since parallelism never
// crosses node state).
func NewSyncEngine(g *graph.Graph, seed int64, factory func(id int) SyncNode) *SyncEngine {
	eng := &SyncEngine{g: g, nodes: make([]SyncNode, g.N()), envs: make([]*SyncEnv, g.N())}
	for v := 0; v < g.N(); v++ {
		eng.nodes[v] = factory(v)
		eng.envs[v] = &SyncEnv{
			ID:        v,
			Neighbors: g.Neighbors(v),
			Rand:      rand.New(rand.NewSource(seed ^ int64(v)*0x5851F42D4C957F2D ^ 0x5BF03635)),
			engine:    eng,
		}
	}
	return eng
}

// Reset re-arms the engine for a fresh run with new nodes and a new seed,
// reusing the per-node environments and scratch buffers. Each env's RNG is
// re-seeded exactly as NewSyncEngine would, so a Reset engine is
// byte-for-byte equivalent to a freshly constructed one: rand.Rand.Seed(s)
// restarts the same stream rand.NewSource(s) starts. MaxRounds, Trace,
// Fault, and Metrics are cleared; callers set them again as needed.
func (eng *SyncEngine) Reset(seed int64, factory func(id int) SyncNode) {
	for v := range eng.nodes {
		eng.nodes[v] = factory(v)
		env := eng.envs[v]
		env.Rand.Seed(seed ^ int64(v)*0x5851F42D4C957F2D ^ 0x5BF03635)
		env.Round = 0
		env.Advance = false
		env.outbox = env.outbox[:0]
	}
	eng.MaxRounds = 0
	eng.Trace = nil
	eng.Fault = nil
	eng.Metrics = nil
	eng.OnRound = nil
}

// Stats returns the accounting of the last Run.
func (eng *SyncEngine) Stats() Stats { return eng.stats }

// Crashed returns the nodes whose crash-stop windows fired during the last
// Run, in ascending id order.
func (eng *SyncEngine) Crashed() []int { return append([]int(nil), eng.crashed...) }

// Returned returns the nodes whose restart marks fired during the last Run
// (including nodes listed in FaultPlan.Rejoins), ascending, deduplicated.
// These nodes were handed a NodeRestarted notice and are live unless a
// later crash-stop window also fired.
func (eng *SyncEngine) Returned() []int { return append([]int(nil), eng.returned...) }

// noteReturn records a restart mark and builds the NodeRestarted notice.
func noteReturn(returned *[]int, restarts map[int]int, v int) NodeRestarted {
	restarts[v]++
	seen := false
	for _, u := range *returned {
		if u == v {
			seen = true
			break
		}
	}
	if !seen {
		*returned = append(*returned, v)
		sort.Ints(*returned)
	}
	return NodeRestarted{Restarts: restarts[v]}
}

// Run executes rounds until every node has reported termination and no
// messages remain in flight, or the round budget is exhausted (error).
// Crash-stopped nodes count as terminated; their pending traffic is dropped.
func (eng *SyncEngine) Run() error {
	defer func() { publishStats(eng.Metrics, "sync", eng.stats) }()
	n := eng.g.N()
	if err := eng.Fault.Validate(n); err != nil {
		return err
	}
	maxRounds := eng.MaxRounds
	if maxRounds == 0 {
		maxRounds = 10_000 + 100*n
	}
	if eng.inboxes == nil {
		eng.inboxes = make([][]Message, n)
		eng.done = make([]bool, n)
		eng.doneSeen = make([]bool, n)
	} else {
		for v := 0; v < n; v++ {
			eng.inboxes[v] = eng.inboxes[v][:0]
			eng.done[v] = false
			eng.doneSeen[v] = false
		}
	}
	inboxes := eng.inboxes
	done := eng.done
	doneSeen := eng.doneSeen
	eng.stats = Stats{}
	eng.crashed = nil

	plan := eng.Fault
	var faultRand *rand.Rand
	var future map[int64][]Message
	var marks []crashMark
	if plan != nil {
		faultRand = rand.New(rand.NewSource(plan.Seed ^ 0x6A09E667F3BCC909))
		future = make(map[int64][]Message)
		marks = plan.crashMarks()
	}
	markIdx := 0
	advance := true
	eng.returned = nil
	var restarts map[int]int
	if plan != nil {
		restarts = make(map[int]int)
		// Nodes whose outage elapsed before this run get their rejoin
		// notice at time zero, before any round runs.
		for _, v := range plan.Rejoins {
			note := noteReturn(&eng.returned, restarts, v)
			inboxes[v] = append(inboxes[v], Message{From: -1, To: v, Payload: note})
			if eng.Trace != nil {
				eng.Trace.Emit(Event{Kind: EventNodeRestart, Time: 0, From: v, To: -1})
			}
		}
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	if cap(eng.panics) < workers {
		eng.panics = make([]error, workers)
	}
	panics := eng.panics[:workers]

	for round := 0; ; round++ {
		if round > maxRounds {
			return fmt.Errorf("sim: synchronous run exceeded %d rounds", maxRounds)
		}

		// Mature reordered messages for this round, dropping arrivals into a
		// crash window. Delivery order within a round is the deterministic
		// order the messages were deferred in.
		if future != nil {
			for _, m := range future[int64(round)] {
				if plan.CrashedAt(m.To, int64(round)) {
					eng.stats.DroppedFault++
					if eng.Trace != nil {
						eng.Trace.Emit(Event{Kind: EventDropFault, Time: int64(round), From: m.From, To: m.To, Payload: payloadName(m.Payload)})
					}
					continue
				}
				inboxes[m.To] = append(inboxes[m.To], m)
			}
			delete(future, int64(round))
		}
		for markIdx < len(marks) && marks[markIdx].at <= int64(round) {
			mk := marks[markIdx]
			markIdx++
			kind := EventNodeCrash
			if mk.restart {
				kind = EventNodeRestart
				note := noteReturn(&eng.returned, restarts, mk.node)
				inboxes[mk.node] = append(inboxes[mk.node], Message{From: -1, To: mk.node, Payload: note})
			} else if plan.DeadBy(mk.node, mk.at) {
				eng.crashed = append(eng.crashed, mk.node)
			}
			if eng.Trace != nil {
				eng.Trace.Emit(Event{Kind: kind, Time: mk.at, From: mk.node, To: -1})
			}
		}

		allDone := true
		pending := len(future) > 0
		for v := 0; v < n; v++ {
			if !done[v] && !plan.DeadBy(v, int64(round)) {
				allDone = false
			}
			if len(inboxes[v]) > 0 {
				pending = true
			}
		}
		if allDone && !pending {
			eng.stats.Rounds = int64(round)
			return nil
		}
		if eng.Trace != nil {
			eng.Trace.Emit(Event{Kind: EventRoundStart, Time: int64(round)})
		}

		// Step phase: each worker owns a disjoint stripe of nodes. A
		// panicking node aborts the run with an error instead of killing
		// the process. Nodes inside a crash window skip their step and lose
		// any queued input. With a single worker (GOMAXPROCS=1) the stripe
		// runs inline — no goroutine, no per-round spawn allocations — and
		// produces the identical sequential semantics.
		if workers == 1 {
			if err := eng.runStripe(round, advance, 0, n); err != nil {
				return err
			}
		} else {
			var wg sync.WaitGroup
			chunk := (n + workers - 1) / workers
			for w := 0; w < workers; w++ {
				lo, hi := w*chunk, (w+1)*chunk
				if hi > n {
					hi = n
				}
				if lo >= hi {
					break
				}
				wg.Add(1)
				go func(w, lo, hi int) {
					defer wg.Done()
					panics[w] = eng.runStripe(round, advance, lo, hi)
				}(w, lo, hi)
			}
			wg.Wait()
			for _, err := range panics {
				if err != nil {
					return err
				}
			}
		}

		// Drain events queued by protocol layers during the parallel step, in
		// node-id order, so the trace stays deterministic across GOMAXPROCS.
		for v := 0; v < n; v++ {
			src, ok := eng.nodes[v].(EventSource)
			if !ok {
				continue
			}
			for _, ev := range src.TakeEvents() {
				if eng.Trace != nil {
					eng.Trace.Emit(ev)
				}
			}
		}

		// A crashed node's queued input is lost with it (accounted after the
		// barrier so the trace stays ordered).
		for v := 0; v < n; v++ {
			if !plan.CrashedAt(v, int64(round)) {
				continue
			}
			for _, m := range inboxes[v] {
				eng.stats.DroppedFault++
				if eng.Trace != nil {
					eng.Trace.Emit(Event{Kind: EventDropFault, Time: int64(round), From: m.From, To: m.To, Payload: payloadName(m.Payload)})
				}
			}
		}

		// Deliver for next round, deterministically in node order. Faults are
		// decided here, in the single sequential section, so one fault RNG
		// yields identical fault scripts regardless of GOMAXPROCS.
		for v := range inboxes {
			inboxes[v] = inboxes[v][:0]
		}
		for v := 0; v < n; v++ {
			for _, m := range eng.envs[v].outbox {
				eng.stats.Messages++
				if eng.Trace != nil {
					eng.Trace.Emit(Event{Kind: EventSend, Time: int64(round), From: m.From, To: m.To, Payload: payloadName(m.Payload)})
				}
				when := int64(round + 1)
				if plan != nil {
					if p := plan.lossAt(m.From, m.To); p > 0 && faultRand.Float64() < p {
						eng.stats.DroppedFault++
						if eng.Trace != nil {
							eng.Trace.Emit(Event{Kind: EventDropFault, Time: when, From: m.From, To: m.To, Payload: payloadName(m.Payload)})
						}
						continue
					}
					if plan.Reorder > 0 {
						when += faultRand.Int63n(plan.Reorder + 1)
					}
					if plan.Dup > 0 && faultRand.Float64() < plan.Dup {
						dup := m
						dup.When = when + 1 + faultRand.Int63n(plan.Reorder+2)
						eng.stats.Duplicated++
						if eng.Trace != nil {
							eng.Trace.Emit(Event{Kind: EventDup, Time: dup.When, From: m.From, To: m.To, Payload: payloadName(m.Payload)})
						}
						future[dup.When] = append(future[dup.When], dup)
					}
				}
				m.When = when
				if when > int64(round+1) {
					future[when] = append(future[when], m)
				} else {
					inboxes[m.To] = append(inboxes[m.To], m)
				}
			}
			if eng.Trace != nil && done[v] && !doneSeen[v] {
				doneSeen[v] = true
				eng.Trace.Emit(Event{Kind: EventNodeDone, Time: int64(round), From: v, To: -1})
			}
		}

		// Probe hook: the round's steps have run and its sends are delivered;
		// no stripe goroutine is alive, so the hook may read node state.
		if eng.OnRound != nil {
			eng.OnRound(int64(round))
		}

		// Poll the logical-round synchronizer: the next physical round may
		// open a new logical round only when every live gated node has no
		// unacknowledged traffic outstanding.
		advance = true
		for v := 0; v < n; v++ {
			gate, ok := eng.nodes[v].(RoundGate)
			if !ok || plan.CrashedAt(v, int64(round+1)) {
				continue
			}
			if !gate.GateReady() {
				advance = false
				break
			}
		}
	}
}

// runStripe steps the nodes in [lo, hi) for one round, converting a node
// panic into an error. Each stripe touches only its own nodes' state, which
// is what makes the parallel step deterministic.
func (eng *SyncEngine) runStripe(round int, advance bool, lo, hi int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sim: node step panicked: %v", r)
		}
	}()
	plan := eng.Fault
	for v := lo; v < hi; v++ {
		env := eng.envs[v]
		env.Round = round
		env.Advance = advance
		env.outbox = env.outbox[:0]
		if plan.CrashedAt(v, int64(round)) {
			continue
		}
		inbox := eng.inboxes[v]
		SortByFrom(inbox)
		eng.done[v] = eng.nodes[v].Step(env, inbox)
	}
	return nil
}

// SortByFrom stable-sorts messages by sender id in place. Inboxes are small
// and nearly sorted (outboxes drain in node order), so an insertion sort
// beats sort.SliceStable here and, unlike it, allocates nothing.
func SortByFrom(ms []Message) {
	for i := 1; i < len(ms); i++ {
		m := ms[i]
		j := i - 1
		for j >= 0 && ms[j].From > m.From {
			ms[j+1] = ms[j]
			j--
		}
		ms[j+1] = m
	}
}
