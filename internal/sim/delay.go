package sim

import "math/rand"

// Delay presets for failure injection in the asynchronous engine. All are
// deterministic per seed (they only draw from the sending node's dedicated
// delay generator, which is kept separate from the protocol-facing env.Rand
// so injected delays never perturb a protocol's random stream) and only
// stretch virtual time — protocol correctness must not depend on timing,
// which the tests exercise by running every async algorithm under each
// preset.

// NoDelay is the identity: every hop costs exactly one time unit.
func NoDelay() DelayFn { return nil }

// UniformDelay adds 0..max extra units to every message, independently.
func UniformDelay(max int64) DelayFn {
	return func(from, to int, rng *rand.Rand) int64 {
		if max <= 0 {
			return 0
		}
		return rng.Int63n(max + 1)
	}
}

// HeavyTailDelay is mostly fast but occasionally very slow: with
// probability 1/16 a message takes up to spike extra units, otherwise at
// most 1. Models interference bursts.
func HeavyTailDelay(spike int64) DelayFn {
	return func(from, to int, rng *rand.Rand) int64 {
		if rng.Intn(16) == 0 {
			if spike <= 0 {
				return 0
			}
			return rng.Int63n(spike + 1)
		}
		return rng.Int63n(2)
	}
}

// SlowLinkDelay degrades exactly the links for which slow returns true
// (e.g. one congested region) by a fixed penalty each way.
func SlowLinkDelay(penalty int64, slow func(u, v int) bool) DelayFn {
	return func(from, to int, rng *rand.Rand) int64 {
		if slow(from, to) {
			return penalty
		}
		return 0
	}
}

// SlowNodeDelay penalizes every message sent by the given nodes (duty-
// cycled or failing senders).
func SlowNodeDelay(penalty int64, nodes ...int) DelayFn {
	set := make(map[int]struct{}, len(nodes))
	for _, v := range nodes {
		set[v] = struct{}{}
	}
	return func(from, to int, rng *rand.Rand) int64 {
		if _, ok := set[from]; ok {
			return penalty
		}
		return 0
	}
}
