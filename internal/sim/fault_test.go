package sim

import (
	"testing"

	"fdlsp/internal/graph"
)

func TestSyncTotalLossStopsFlood(t *testing.T) {
	g := graph.Path(4)
	heard := make([]bool, g.N())
	eng := NewSyncEngine(g, 1, func(id int) SyncNode {
		return stepFunc(func(env *SyncEnv, in []Message) bool {
			if env.ID == 0 && env.Round == 0 {
				env.Broadcast("token")
			}
			if len(in) > 0 {
				heard[env.ID] = true
			}
			return env.Round >= 1
		})
	})
	eng.Fault = &FaultPlan{Seed: 3, Loss: 1.0}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for v := 1; v < g.N(); v++ {
		if heard[v] {
			t.Errorf("node %d heard the flood through a fully lossy network", v)
		}
	}
	st := eng.Stats()
	if st.DroppedFault != st.Messages || st.Messages == 0 {
		t.Errorf("want every message dropped: %+v", st)
	}
}

func TestSyncDupDeliversTwice(t *testing.T) {
	g := graph.Path(2)
	heard := 0
	eng := NewSyncEngine(g, 1, func(id int) SyncNode {
		return stepFunc(func(env *SyncEnv, in []Message) bool {
			if env.ID == 0 && env.Round == 0 {
				env.Send(1, "x")
			}
			if env.ID == 1 {
				heard += len(in)
			}
			return true
		})
	})
	eng.Fault = &FaultPlan{Seed: 1, Dup: 1.0}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if heard != 2 {
		t.Errorf("heard %d copies, want 2 (original + duplicate)", heard)
	}
	if st := eng.Stats(); st.Duplicated != 1 || st.Messages != 1 {
		t.Errorf("stats = %+v, want 1 message 1 duplicate", st)
	}
}

func TestSyncCrashStopNodeExcluded(t *testing.T) {
	g := graph.Path(3)
	stepped := make([]int, g.N())
	eng := NewSyncEngine(g, 1, func(id int) SyncNode {
		return stepFunc(func(env *SyncEnv, in []Message) bool {
			stepped[env.ID]++
			if env.Round < 3 {
				env.Broadcast("beat")
			}
			return env.Round >= 2
		})
	})
	eng.Fault = &FaultPlan{Seed: 1, Crashes: []Crash{{Node: 1, At: 1}}}
	rec := &Recorder{}
	eng.Trace = rec
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if stepped[1] != 1 {
		t.Errorf("crashed node stepped %d times, want 1 (only round 0)", stepped[1])
	}
	if got := eng.Crashed(); len(got) != 1 || got[0] != 1 {
		t.Errorf("Crashed() = %v, want [1]", got)
	}
	if n := rec.Count(EventNodeCrash); n != 1 {
		t.Errorf("crash events = %d, want 1", n)
	}
	if st := eng.Stats(); st.DroppedFault == 0 {
		t.Errorf("traffic into the crashed node should be dropped: %+v", st)
	}
}

func TestSyncCrashRestartResumes(t *testing.T) {
	g := graph.Path(2)
	stepped := 0
	eng := NewSyncEngine(g, 1, func(id int) SyncNode {
		return stepFunc(func(env *SyncEnv, in []Message) bool {
			if env.ID == 1 {
				stepped++
			}
			return env.Round >= 6
		})
	})
	eng.Fault = &FaultPlan{Seed: 1, Crashes: []Crash{{Node: 1, At: 2, RestartAt: 5}}}
	rec := &Recorder{}
	eng.Trace = rec
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Rounds 0..6 minus the outage [2,5) = rounds 0,1,5,6.
	if stepped != 4 {
		t.Errorf("restarting node stepped %d times, want 4", stepped)
	}
	if rec.Count(EventNodeCrash) != 1 || rec.Count(EventNodeRestart) != 1 {
		t.Errorf("want one crash and one restart event, got %d/%d",
			rec.Count(EventNodeCrash), rec.Count(EventNodeRestart))
	}
}

// faultyEcho floods "hello" and re-broadcasts on first hearing; bounded by
// virtual time so lossy runs always die out.
func faultyEcho(env *AsyncEnv) {
	if env.ID == 0 {
		env.Broadcast("hello")
	}
	heard := false
	for {
		m, ok := env.Recv()
		if !ok {
			return
		}
		if !heard && m.Payload == "hello" && env.Clock() < 50 {
			heard = true
			env.Broadcast("hello")
		}
	}
}

func TestAsyncFaultRunDeterministic(t *testing.T) {
	run := func() (Stats, []Event, []int) {
		g := graph.Path(8)
		rec := &Recorder{}
		eng := NewAsyncEngine(g, 7, func(id int) AsyncNode { return asyncFunc(faultyEcho) })
		eng.Trace = rec
		eng.Fault = &FaultPlan{Seed: 99, Loss: 0.3, Dup: 0.2, Reorder: 3,
			Crashes: []Crash{{Node: 3, At: 4}}}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return eng.Stats(), rec.Events(), eng.Crashed()
	}
	s1, e1, c1 := run()
	s2, e2, c2 := run()
	if s1 != s2 {
		t.Fatalf("stats differ: %+v vs %+v", s1, s2)
	}
	if len(e1) != len(e2) {
		t.Fatalf("trace lengths differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("trace[%d] differs: %v vs %v", i, e1[i], e2[i])
		}
	}
	if len(c1) != len(c2) {
		t.Fatalf("crashed lists differ: %v vs %v", c1, c2)
	}
}

func TestAsyncSetTimer(t *testing.T) {
	g := graph.Path(2)
	var fired int64
	eng := NewAsyncEngine(g, 1, func(id int) AsyncNode {
		return asyncFunc(func(env *AsyncEnv) {
			if env.ID != 0 {
				return
			}
			env.SetTimer(17, "alarm")
			for {
				m, ok := env.Recv()
				if !ok {
					return
				}
				if m.Payload == "alarm" && m.From == env.ID {
					fired = m.When
				}
			}
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 17 {
		t.Errorf("timer fired at %d, want 17", fired)
	}
	if st := eng.Stats(); st.Messages != 0 {
		t.Errorf("timers must not count as messages: %+v", st)
	}
}

func TestAsyncEventBudget(t *testing.T) {
	g := graph.Path(2)
	eng := NewAsyncEngine(g, 1, func(id int) AsyncNode {
		return asyncFunc(func(env *AsyncEnv) {
			if env.ID == 0 {
				env.Send(1, "ping")
			}
			for {
				m, ok := env.Recv()
				if !ok {
					return
				}
				env.Send(m.From, "pong") // rally forever
			}
		})
	})
	eng.MaxEvents = 100
	if err := eng.Run(); err == nil {
		t.Fatal("expected event-budget error for a never-ending rally")
	}
}

func TestAsyncCrashWindowDropsDeliveries(t *testing.T) {
	g := graph.Path(2)
	var heard []int64
	eng := NewAsyncEngine(g, 1, func(id int) AsyncNode {
		return asyncFunc(func(env *AsyncEnv) {
			if env.ID == 0 {
				// One message per time unit: pace with timers.
				for i := 0; i < 10; i++ {
					env.SetTimer(1, "tick")
					if _, ok := env.Recv(); !ok {
						return
					}
					env.Send(1, "data")
				}
				return
			}
			for {
				m, ok := env.Recv()
				if !ok {
					return
				}
				heard = append(heard, m.When)
			}
		})
	})
	eng.Fault = &FaultPlan{Seed: 5, Crashes: []Crash{{Node: 1, At: 4, RestartAt: 8}}}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for _, w := range heard {
		if w >= 4 && w < 8 {
			t.Errorf("delivery at %d inside crash window [4,8)", w)
		}
	}
	if len(heard) == 0 {
		t.Error("no deliveries at all")
	}
	if st := eng.Stats(); st.DroppedFault == 0 {
		t.Errorf("want crash-window drops counted: %+v", st)
	}
}
