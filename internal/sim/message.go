// Package sim is the distributed message-passing runtime used by every
// algorithm in this repository. It provides two engines matching the
// paper's two communication models (Section 1):
//
//   - a synchronous round engine: in each round every node receives the
//     messages sent to it in the previous round, computes, and sends to
//     neighbors; node steps within a round execute in parallel on a worker
//     pool; the engine counts rounds and messages;
//
//   - an asynchronous engine: each node runs as its own goroutine exchanging
//     messages over channels; virtual time is tracked with Lamport-style
//     clocks (each hop costs at least one time unit, plus any injected
//     delay), so the reported time is the worst-case causal chain length,
//     the asynchronous notion of "communication rounds" used by the paper.
//
// Both engines deliver messages only along edges of the communication graph
// and count every message sent.
package sim

import "fmt"

// Message is a payload in flight between two adjacent nodes.
type Message struct {
	From, To int
	// When is the virtual time at which the message is delivered (set by the
	// engines; in the synchronous engine it is the delivery round).
	When int64
	// Payload is the algorithm-specific content.
	Payload any
}

func (m Message) String() string {
	return fmt.Sprintf("msg %d->%d @%d: %v", m.From, m.To, m.When, m.Payload)
}

// Stats aggregates the cost accounting of one run.
type Stats struct {
	Rounds   int64 // synchronous rounds, or async virtual completion time
	Messages int64 // total messages sent
	// DroppedDead counts messages discarded because the destination node had
	// already terminated — engine bookkeeping, not a fault.
	DroppedDead int64
	// DroppedFault counts messages removed by the FaultPlan: link loss plus
	// arrivals inside a destination's crash window.
	DroppedFault int64
	// Duplicated counts extra message copies injected by the FaultPlan.
	Duplicated int64
}

// Add accumulates other into s; drivers composing several engine runs into
// one protocol execution use it to report whole-run totals.
func (s *Stats) Add(other Stats) {
	s.Rounds += other.Rounds
	s.Messages += other.Messages
	s.DroppedDead += other.DroppedDead
	s.DroppedFault += other.DroppedFault
	s.Duplicated += other.Duplicated
}
