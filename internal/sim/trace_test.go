package sim

import (
	"strings"
	"sync/atomic"
	"testing"

	"fdlsp/internal/graph"
)

func TestRecorderSyncEngine(t *testing.T) {
	g := graph.Path(4)
	rec := &Recorder{}
	nodes := make([]*floodNode, g.N())
	eng := NewSyncEngine(g, 1, func(id int) SyncNode {
		nodes[id] = &floodNode{source: id == 0}
		return nodes[id]
	})
	eng.Trace = rec
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if rec.Count(EventRoundStart) == 0 {
		t.Error("no rounds recorded")
	}
	if got, want := rec.Count(EventSend), eng.Stats().Messages; got != want {
		t.Errorf("recorded %d sends, engine counted %d", got, want)
	}
	if rec.Count(EventNodeDone) != int64(g.N()) {
		t.Errorf("node-done events = %d, want %d", rec.Count(EventNodeDone), g.N())
	}
	bd := rec.MessageBreakdown()
	if bd["string"] != eng.Stats().Messages {
		t.Errorf("payload breakdown %v does not match %d string sends", bd, eng.Stats().Messages)
	}
	if !strings.Contains(rec.Summary(), "sends by payload type") {
		t.Error("summary missing breakdown")
	}
}

func TestRecorderAsyncEngine(t *testing.T) {
	g := graph.Path(2)
	rec := &Recorder{}
	var last atomic.Int64
	eng := NewAsyncEngine(g, 1, func(id int) AsyncNode { return &pingPong{limit: 6, last: &last} })
	eng.Trace = rec
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if rec.Count(EventSend) != 6 {
		t.Errorf("sends = %d, want 6", rec.Count(EventSend))
	}
	if rec.Count(EventDeliver) != rec.Count(EventSend)+1 { // +1 for... no injection here
		// ping-pong starts with a direct Send, so delivers == sends.
		if rec.Count(EventDeliver) != rec.Count(EventSend) {
			t.Errorf("delivers = %d, sends = %d", rec.Count(EventDeliver), rec.Count(EventSend))
		}
	}
	if rec.Count(EventNodeDone) != 2 {
		t.Errorf("node-done = %d", rec.Count(EventNodeDone))
	}
}

func TestRecorderRingBuffer(t *testing.T) {
	rec := &Recorder{Cap: 4}
	for i := 0; i < 10; i++ {
		rec.Emit(Event{Kind: EventSend, Time: int64(i)})
	}
	evs := rec.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	if evs[0].Time != 6 || evs[3].Time != 9 {
		t.Errorf("wrong window retained: %v", evs)
	}
	if rec.Count(EventSend) != 10 {
		t.Error("counts must survive eviction")
	}
	if !strings.Contains(rec.Summary(), "6 dropped") {
		t.Errorf("summary: %s", rec.Summary())
	}
}

func TestEventString(t *testing.T) {
	e := Event{Kind: EventSend, Time: 3, From: 1, To: 2, Payload: "x"}
	if !strings.Contains(e.String(), "1->2") {
		t.Error("send string")
	}
	e = Event{Kind: EventNodeDone, Time: 3, From: 1, To: -1}
	if !strings.Contains(e.String(), "node=1") {
		t.Error("done string")
	}
	if EventKind(200).String() != "invalid" {
		t.Error("invalid kind")
	}
}
