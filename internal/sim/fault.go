package sim

import (
	"fmt"
	"sort"
)

// FaultPlan is a seeded, deterministic description of the runtime faults a
// sensor network suffers during one run: per-link frame loss, duplication,
// bounded reordering, and node crashes with optional restart. Both engines
// honor the plan — the synchronous engine applies it in its sequential
// delivery phase, the asynchronous engine inside its single-threaded event
// scheduler — so a fixed (seed, plan) pair reproduces the same faults
// byte-for-byte regardless of GOMAXPROCS. Every injected fault is emitted to
// the Trace (EventDropFault, EventDup, EventNodeCrash, EventNodeRestart) and
// counted in Stats, making faulty runs auditable.
//
// The plan composes with DelayFn: delay stretches time, the plan removes,
// repeats, and jumbles frames. Protocols built directly on the engines will
// generally misbehave under a non-zero plan — that is the point; see
// internal/transport for the reliable-delivery layer that restores exactly-
// once semantics on top.
type FaultPlan struct {
	// Seed drives the plan's private RNG, kept separate from the protocol
	// RNGs so injected faults never perturb a protocol's random stream.
	Seed int64
	// Loss is the per-message drop probability applied to every link.
	Loss float64
	// LossOf optionally overrides Loss per directed link; it must be a pure
	// function. nil means use Loss everywhere.
	LossOf func(from, to int) float64
	// Dup is the probability a delivered message is duplicated once; the
	// copy arrives slightly later (exercising receiver-side dedup).
	Dup float64
	// Reorder bounds the extra delivery displacement, in rounds (sync) or
	// virtual time units (async), added uniformly at random to each message.
	// Zero disables reordering.
	Reorder int64
	// Crashes lists node outages, applied in addition to message faults.
	Crashes []Crash
	// Rejoins lists nodes whose restart happened before this engine run
	// began (their window fully elapsed in an earlier run, or the driver
	// fast-forwarded virtual time across the outage). Each listed node is
	// handed a NodeRestarted notice at time zero so it can run its
	// protocol-level rejoin, and a NodeRestart trace event is emitted.
	// Drivers set this on the plan returned by Shifted; Shifted itself
	// clears it, since the field describes one engine run, not the script.
	Rejoins []int
}

// Crash is one node outage: the node stops participating at virtual time
// (or synchronous round) At. If RestartAt > At the node resumes there with
// its volatile state intact — a radio outage rather than a reboot; traffic
// addressed to the node inside the window is lost. RestartAt == At (with
// At > 0) is a zero-length outage: the node crashes and rejoins inside the
// same virtual-time tick, losing no traffic but still receiving a
// NodeRestarted notice so it runs its rejoin resync (the radio blipped; the
// node cannot know nothing was missed). RestartAt == 0 means the node never
// comes back (crash-stop).
type Crash struct {
	Node      int
	At        int64
	RestartAt int64
}

// stop reports whether this outage is a crash-stop: the node never returns.
// RestartAt == 0 is the documented sentinel; a RestartAt before At is
// ill-formed (Validate rejects it) and treated as crash-stop defensively.
func (c Crash) stop() bool { return c.RestartAt == 0 || c.RestartAt < c.At }

// Validate checks the plan against the n-node network it will be applied to
// and returns a descriptive error for ill-formed input: rates out of range,
// nodes out of range, negative times, a restart before its crash, or
// overlapping outage windows on one node. Engines validate the plan before
// running it, so a bad script fails loudly instead of silently misbehaving
// (an out-of-range crash would never fire; overlapping windows would make
// restart notices and dead-node accounting disagree).
func (p *FaultPlan) Validate(n int) error {
	if p == nil {
		return nil
	}
	if p.Loss < 0 || p.Loss > 1 {
		return fmt.Errorf("sim: fault plan loss %v outside [0,1]", p.Loss)
	}
	if p.Dup < 0 || p.Dup > 1 {
		return fmt.Errorf("sim: fault plan dup %v outside [0,1]", p.Dup)
	}
	if p.Reorder < 0 {
		return fmt.Errorf("sim: fault plan reorder %d negative", p.Reorder)
	}
	for _, v := range p.Rejoins {
		if v < 0 || v >= n {
			return fmt.Errorf("sim: fault plan rejoin node %d outside [0,%d)", v, n)
		}
	}
	byNode := make(map[int][]Crash)
	for _, c := range p.Crashes {
		if c.Node < 0 || c.Node >= n {
			return fmt.Errorf("sim: crash node %d outside [0,%d)", c.Node, n)
		}
		if c.At < 0 {
			return fmt.Errorf("sim: crash of node %d at negative time %d", c.Node, c.At)
		}
		if c.RestartAt < 0 {
			return fmt.Errorf("sim: crash of node %d restarts at negative time %d", c.Node, c.RestartAt)
		}
		if c.RestartAt > 0 && c.RestartAt < c.At {
			return fmt.Errorf("sim: crash of node %d restarts at %d before it crashes at %d", c.Node, c.RestartAt, c.At)
		}
		byNode[c.Node] = append(byNode[c.Node], c)
	}
	for node, wins := range byNode {
		sort.Slice(wins, func(i, j int) bool { return wins[i].At < wins[j].At })
		for i := 1; i < len(wins); i++ {
			prev := wins[i-1]
			if prev.stop() {
				return fmt.Errorf("sim: node %d crash-stops at %d but has another outage at %d",
					node, prev.At, wins[i].At)
			}
			if wins[i].At < prev.RestartAt {
				return fmt.Errorf("sim: node %d outage at %d overlaps the window [%d,%d)",
					node, wins[i].At, prev.At, prev.RestartAt)
			}
		}
	}
	return nil
}

// lossAt returns the drop probability of the directed link from->to.
func (p *FaultPlan) lossAt(from, to int) float64 {
	if p.LossOf != nil {
		return p.LossOf(from, to)
	}
	return p.Loss
}

// CrashedAt reports whether node v is inside a crash window at time t. A
// zero-length outage (RestartAt == At) covers no tick: the node crashed and
// rejoined inside one tick, so no tick ever observes it down.
func (p *FaultPlan) CrashedAt(v int, t int64) bool {
	if p == nil {
		return false
	}
	for _, c := range p.Crashes {
		if c.Node == v && t >= c.At && (c.stop() || t < c.RestartAt) {
			return true
		}
	}
	return false
}

// DeadBy reports whether node v has crash-stopped (a window with no
// restart) at or before time t. Protocol drivers use this to exclude a
// node's arcs from the schedule they assemble.
func (p *FaultPlan) DeadBy(v int, t int64) bool {
	if p == nil {
		return false
	}
	for _, c := range p.Crashes {
		if c.Node == v && c.stop() && t >= c.At {
			return true
		}
	}
	return false
}

// Shifted returns a copy of the plan with every crash time moved earlier by
// offset (clamped at zero) and the fault RNG reseeded with salt. Drivers
// that run a protocol as a sequence of engine runs (DistMIS phases, DFS
// recovery epochs) use this to keep one wall-clock fault script aligned
// across the per-run virtual clocks.
//
// A bounded outage whose restart lies at or before the offset has fully
// elapsed: it is dropped from the shifted plan rather than clamped to a
// degenerate window, which would re-crash the node at the start of every
// subsequent run. The driver that advanced the clock past the restart is
// responsible for listing the node in Rejoins on the next run if the
// restart mark never fired inside an engine.
func (p *FaultPlan) Shifted(offset int64, salt int64) *FaultPlan {
	if p == nil {
		return nil
	}
	q := *p
	q.Seed = p.Seed ^ salt*0x2545F4914F6CDD1D
	q.Rejoins = nil
	q.Crashes = make([]Crash, 0, len(p.Crashes))
	for _, c := range p.Crashes {
		if !c.stop() && c.RestartAt-offset <= 0 {
			continue // outage (possibly zero-length) fully in the past
		}
		c.At -= offset
		if c.At < 0 {
			c.At = 0
		}
		if c.RestartAt > 0 {
			c.RestartAt -= offset
			if c.RestartAt < 1 {
				c.RestartAt = 1
			}
		}
		q.Crashes = append(q.Crashes, c)
	}
	return &q
}

// NodeRestarted is the notice an engine delivers (with From == -1) to a
// node at the moment its crash window closes, and at time zero to every
// node listed in FaultPlan.Rejoins. Protocols treat it as the trigger for
// their rejoin handshake: re-sync distance-2 state from live neighbors and
// re-enter the computation. Restarts is the number of windows the node has
// completed so far in this run, starting at 1; protocols use it to
// generation-tag re-announced state so floods are not dedup-dropped.
type NodeRestarted struct {
	Restarts int
}

// crashMark is one edge of a crash window, used by the engines to emit
// NodeCrash / NodeRestart trace events in virtual-time order.
type crashMark struct {
	at      int64
	node    int
	restart bool
}

// crashMarks flattens the plan's windows into time-sorted trace marks.
func (p *FaultPlan) crashMarks() []crashMark {
	if p == nil {
		return nil
	}
	var marks []crashMark
	for _, c := range p.Crashes {
		marks = append(marks, crashMark{at: c.At, node: c.Node})
		if !c.stop() {
			marks = append(marks, crashMark{at: c.RestartAt, node: c.Node, restart: true})
		}
	}
	sort.Slice(marks, func(i, j int) bool {
		if marks[i].at != marks[j].at {
			return marks[i].at < marks[j].at
		}
		if marks[i].node != marks[j].node {
			return marks[i].node < marks[j].node
		}
		return !marks[i].restart && marks[j].restart
	})
	return marks
}
