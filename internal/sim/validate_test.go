package sim

import (
	"strings"
	"testing"

	"fdlsp/internal/graph"
)

func TestFaultPlanValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		plan FaultPlan
		want string // substring of the error
	}{
		{"loss negative", FaultPlan{Loss: -0.1}, "loss"},
		{"loss above one", FaultPlan{Loss: 1.5}, "loss"},
		{"dup negative", FaultPlan{Dup: -0.5}, "dup"},
		{"dup above one", FaultPlan{Dup: 1.01}, "dup"},
		{"reorder negative", FaultPlan{Reorder: -3}, "reorder"},
		{"rejoin node negative", FaultPlan{Rejoins: []int{-1}}, "rejoin node"},
		{"rejoin node too large", FaultPlan{Rejoins: []int{4}}, "rejoin node"},
		{"crash node negative",
			FaultPlan{Crashes: []Crash{{Node: -1, At: 1}}}, "crash node"},
		{"crash node too large",
			FaultPlan{Crashes: []Crash{{Node: 4, At: 1}}}, "crash node"},
		{"negative crash time",
			FaultPlan{Crashes: []Crash{{Node: 0, At: -2}}}, "negative time"},
		{"negative restart time",
			FaultPlan{Crashes: []Crash{{Node: 0, At: 1, RestartAt: -5}}}, "negative time"},
		{"restart before crash",
			FaultPlan{Crashes: []Crash{{Node: 0, At: 10, RestartAt: 5}}}, "before it crashes"},
		{"overlapping windows",
			FaultPlan{Crashes: []Crash{
				{Node: 2, At: 3, RestartAt: 9},
				{Node: 2, At: 7, RestartAt: 12},
			}}, "overlaps"},
		{"outage after crash-stop",
			FaultPlan{Crashes: []Crash{
				{Node: 1, At: 5},
				{Node: 1, At: 8, RestartAt: 10},
			}}, "crash-stops"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.plan.Validate(4)
			if err == nil {
				t.Fatalf("Validate accepted %+v", tc.plan)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestFaultPlanValidateAccepts(t *testing.T) {
	cases := []struct {
		name string
		plan *FaultPlan
	}{
		{"nil plan", nil},
		{"empty plan", &FaultPlan{}},
		{"rates in range", &FaultPlan{Loss: 0.5, Dup: 0.99, Reorder: 7}},
		{"crash-stop", &FaultPlan{Crashes: []Crash{{Node: 3, At: 2}}}},
		{"bounded outage", &FaultPlan{Crashes: []Crash{{Node: 0, At: 2, RestartAt: 6}}}},
		{"zero-length outage", &FaultPlan{Crashes: []Crash{{Node: 0, At: 2, RestartAt: 2}}}},
		{"back-to-back windows", &FaultPlan{Crashes: []Crash{
			{Node: 1, At: 2, RestartAt: 5},
			{Node: 1, At: 5, RestartAt: 9},
		}}},
		{"final crash-stop after outage", &FaultPlan{Crashes: []Crash{
			{Node: 1, At: 2, RestartAt: 5},
			{Node: 1, At: 20},
		}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.plan.Validate(4); err != nil {
				t.Errorf("Validate rejected a well-formed plan: %v", err)
			}
		})
	}
}

func TestEnginesRejectInvalidPlan(t *testing.T) {
	bad := &FaultPlan{Crashes: []Crash{{Node: 99, At: 1}}}
	g := graph.Path(2)

	sy := NewSyncEngine(g, 1, func(id int) SyncNode {
		return stepFunc(func(env *SyncEnv, in []Message) bool { return true })
	})
	sy.Fault = bad
	if err := sy.Run(); err == nil || !strings.Contains(err.Error(), "crash node") {
		t.Errorf("sync engine ran under an invalid plan (err=%v)", err)
	}

	as := NewAsyncEngine(g, 1, func(id int) AsyncNode {
		return asyncFunc(func(env *AsyncEnv) {})
	})
	as.Fault = bad
	if err := as.Run(); err == nil || !strings.Contains(err.Error(), "crash node") {
		t.Errorf("async engine ran under an invalid plan (err=%v)", err)
	}
}

// A zero-length outage (RestartAt == At) must deliver a NodeRestarted notice
// without the node ever being observed down or losing traffic.
func TestSyncZeroLengthOutage(t *testing.T) {
	g := graph.Path(2)
	stepped := 0
	restarts := 0
	heard := 0
	eng := NewSyncEngine(g, 1, func(id int) SyncNode {
		return stepFunc(func(env *SyncEnv, in []Message) bool {
			if env.ID == 0 {
				if env.Round < 5 {
					env.Send(1, "beat")
				}
				return env.Round >= 5
			}
			stepped++
			for _, m := range in {
				if _, ok := m.Payload.(NodeRestarted); ok {
					restarts++
				} else {
					heard++
				}
			}
			return env.Round >= 5
		})
	})
	eng.Fault = &FaultPlan{Seed: 9, Crashes: []Crash{{Node: 1, At: 3, RestartAt: 3}}}
	rec := &Recorder{}
	eng.Trace = rec
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if stepped != 6 {
		t.Errorf("node stepped %d rounds, want all 6 (never observed down)", stepped)
	}
	if restarts != 1 {
		t.Errorf("NodeRestarted notices = %d, want 1", restarts)
	}
	if heard != 5 {
		t.Errorf("heard %d beats, want 5 (zero-length outage loses no traffic)", heard)
	}
	if rec.Count(EventNodeCrash) != 1 || rec.Count(EventNodeRestart) != 1 {
		t.Errorf("want one crash and one restart event, got %d/%d",
			rec.Count(EventNodeCrash), rec.Count(EventNodeRestart))
	}
	if st := eng.Stats(); st.DroppedFault != 0 {
		t.Errorf("zero-length outage dropped traffic: %+v", st)
	}
	if got := eng.Crashed(); len(got) != 0 {
		t.Errorf("Crashed() = %v, want empty (the node came back)", got)
	}
}

func TestAsyncZeroLengthOutage(t *testing.T) {
	g := graph.Path(2)
	restarts := 0
	heard := 0
	eng := NewAsyncEngine(g, 1, func(id int) AsyncNode {
		return asyncFunc(func(env *AsyncEnv) {
			if env.ID == 0 {
				for i := 0; i < 8; i++ {
					env.SetTimer(1, "tick")
					if _, ok := env.Recv(); !ok {
						return
					}
					env.Send(1, "data")
				}
				return
			}
			for {
				m, ok := env.Recv()
				if !ok {
					return
				}
				if _, isRestart := m.Payload.(NodeRestarted); isRestart {
					restarts++
				} else {
					heard++
				}
			}
		})
	})
	eng.Fault = &FaultPlan{Seed: 5, Crashes: []Crash{{Node: 1, At: 4, RestartAt: 4}}}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if restarts != 1 {
		t.Errorf("NodeRestarted notices = %d, want 1", restarts)
	}
	if heard != 8 {
		t.Errorf("heard %d messages, want 8 (zero-length outage loses no traffic)", heard)
	}
	if st := eng.Stats(); st.DroppedFault != 0 {
		t.Errorf("zero-length outage dropped traffic: %+v", st)
	}
}

// Shifted must drop a fully-elapsed zero-length window instead of clamping it
// into a window that would re-crash the node at the start of every later run.
func TestShiftedDropsElapsedZeroLengthWindow(t *testing.T) {
	p := &FaultPlan{Crashes: []Crash{
		{Node: 0, At: 3, RestartAt: 3},  // fully in the past after offset 5
		{Node: 1, At: 2, RestartAt: 9},  // still open: clamps
		{Node: 2, At: 4},                // crash-stop: always kept
		{Node: 3, At: 8, RestartAt: 12}, // entirely in the future
	}}
	q := p.Shifted(5, 1)
	if len(q.Crashes) != 3 {
		t.Fatalf("shifted crashes = %+v, want the elapsed zero-length window dropped", q.Crashes)
	}
	for _, c := range q.Crashes {
		if c.Node == 0 {
			t.Fatalf("elapsed zero-length window survived the shift: %+v", c)
		}
	}
	if q.CrashedAt(1, 0) != true || q.CrashedAt(1, 4) != false {
		t.Errorf("clamped open window wrong: %+v", q.Crashes)
	}
	if !q.DeadBy(2, 0) {
		t.Errorf("crash-stop lost by shift: %+v", q.Crashes)
	}
}
