package sim

// FaultStream is an open-ended, seeded source of faults: where a FaultPlan
// scripts one finite run, a stream describes perpetual churn — nodes keep
// crashing and restarting forever at a given rate, the self-stabilization
// regime of Herman & Tixeuil rather than the terminating-experiment regime
// of a scripted plan. Drivers that run a protocol as an unbounded sequence
// of engine runs (internal/soak) consume the stream one bounded window at a
// time via Plan; every draw is a pure function of (Seed, epoch, node), so
// any window can be re-materialized independently — there is no cursor to
// keep in sync, two consumers of one stream see the same faults, and the
// stream composes with the engines' GOMAXPROCS-invariance: a fixed seed
// reproduces the same unbounded fault script byte-for-byte.
type FaultStream struct {
	// Seed drives every draw; windows are pure functions of (Seed, epoch).
	Seed int64
	// Loss, Dup and Reorder are copied into every materialized window.
	Loss    float64
	Dup     float64
	Reorder int64
	// CrashRate is the per-node probability of starting one bounded outage
	// inside a window.
	CrashRate float64
	// MinOutage and MaxOutage bound the outage length in virtual time
	// units. A zero-length draw (MinOutage 0) crashes and rejoins the node
	// inside the same tick. The stream models sustained bounded churn;
	// permanent departures are the consuming driver's business.
	MinOutage, MaxOutage int64
}

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche mix used to
// derive independent uniform draws from (seed, epoch, node, dim) without any
// sequential RNG state.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// draw returns a uniform [0,1) variate for the given coordinates.
func (s *FaultStream) draw(epoch int64, node, dim int) float64 {
	x := splitmix64(uint64(s.Seed) ^ splitmix64(uint64(epoch)*0x9E3779B97F4A7C15^uint64(node)<<20^uint64(dim)))
	return float64(x>>11) / (1 << 53)
}

// drawInt returns a uniform integer in [0, n) for the given coordinates.
func (s *FaultStream) drawInt(epoch int64, node, dim int, n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(s.draw(epoch, node, dim) * float64(n))
}

// Plan materializes the stream's faults for one bounded window: a FaultPlan
// an engine run can consume, carrying the stream's message-fault rates and
// a fresh set of bounded outages among the live nodes. Crash times fall in
// [1, horizon/2] and restarts at most MaxOutage later, so a sustained-churn
// driver probing with horizon windows sees every outage open and close
// inside the same engine run (the synchronous engine spins rounds until a
// pending restart fires, so a restart is never lost to an early
// termination). live may be nil, meaning every node of an n-node network is
// eligible; epoch salts both the draws and the materialized plan's fault
// RNG, so consecutive windows fault differently.
func (s *FaultStream) Plan(epoch int64, n int, live []bool, horizon int64) *FaultPlan {
	if horizon < 4 {
		horizon = 4
	}
	plan := &FaultPlan{
		Seed:    s.Seed ^ (epoch+1)*0x2545F4914F6CDD1D,
		Loss:    s.Loss,
		Dup:     s.Dup,
		Reorder: s.Reorder,
	}
	maxLen := s.MaxOutage
	if maxLen < s.MinOutage {
		maxLen = s.MinOutage
	}
	for v := 0; v < n; v++ {
		if live != nil && !live[v] {
			continue
		}
		if s.draw(epoch, v, 0) >= s.CrashRate {
			continue
		}
		at := 1 + s.drawInt(epoch, v, 1, horizon/2)
		length := s.MinOutage + s.drawInt(epoch, v, 2, maxLen-s.MinOutage+1)
		plan.Crashes = append(plan.Crashes, Crash{Node: v, At: at, RestartAt: at + length})
	}
	return plan
}
