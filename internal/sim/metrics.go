package sim

import "fdlsp/internal/obs"

// Metric families of the simulation engines. Both engines publish their run
// accounting into an optional obs.Registry at the end of every Run, from the
// single-threaded epilogue — the hot path stays untouched, and the published
// values are exactly the deterministic Stats the engines already guarantee,
// so per-seed registry snapshots are byte-identical regardless of
// GOMAXPROCS.
const (
	metricRuns       = "fdlsp_sim_runs_total"
	metricRounds     = "fdlsp_sim_rounds_total"
	metricMessages   = "fdlsp_sim_messages_total"
	metricDropped    = "fdlsp_sim_dropped_messages_total"
	metricDuplicated = "fdlsp_sim_duplicated_messages_total"
)

// RegisterMetrics creates the engines' metric families in reg without
// recording any samples, so a scrape exposes them from process start.
// Idempotent.
func RegisterMetrics(reg *obs.Registry) {
	reg.CounterVec(metricRuns, "Engine runs completed, including aborted ones.", "engine")
	reg.CounterVec(metricRounds, "Synchronous rounds executed (sync) or virtual completion time accumulated (async).", "engine")
	reg.CounterVec(metricMessages, "Messages sent through the engines.", "engine")
	reg.CounterVec(metricDropped, "Messages discarded before delivery, by reason (dead = receiver already terminated, fault = FaultPlan loss or crash window).", "engine", "reason")
	reg.CounterVec(metricDuplicated, "Extra message copies injected by the FaultPlan.", "engine")
}

// publishStats folds one run's Stats into reg under the engine label
// ("sync" or "async").
func publishStats(reg *obs.Registry, engine string, st Stats) {
	if reg == nil {
		return
	}
	RegisterMetrics(reg)
	reg.CounterVec(metricRuns, "", "engine").With(engine).Inc()
	reg.CounterVec(metricRounds, "", "engine").With(engine).Add(float64(st.Rounds))
	reg.CounterVec(metricMessages, "", "engine").With(engine).Add(float64(st.Messages))
	drops := reg.CounterVec(metricDropped, "", "engine", "reason")
	drops.With(engine, "dead").Add(float64(st.DroppedDead))
	drops.With(engine, "fault").Add(float64(st.DroppedFault))
	reg.CounterVec(metricDuplicated, "", "engine").With(engine).Add(float64(st.Duplicated))
}
