package sim

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"fdlsp/internal/graph"
	"fdlsp/internal/obs"
)

// collectTracer records every event, unbounded, for byte-level trace
// comparison across worker counts. The engine only emits from its sequential
// section, but the mutex keeps the tracer honest under -race if that ever
// changes.
type collectTracer struct {
	mu     sync.Mutex
	events []Event
}

func (t *collectTracer) Emit(ev Event) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// gossipNode exercises every engine surface the parallel shards touch: it
// draws from the per-node RNG each round, folds its inbox (including the
// From:-1 NodeRestarted notices crash windows deliver) into a running hash,
// and keeps gossiping until its round budget runs out.
type gossipNode struct {
	rounds int
	hash   uint64
}

func (n *gossipNode) Step(env *SyncEnv, inbox []Message) bool {
	for _, m := range inbox {
		n.hash = n.hash*0x100000001B3 + uint64(m.From+1)
		switch p := m.Payload.(type) {
		case int64:
			n.hash ^= uint64(p)
		case NodeRestarted:
			n.hash ^= 0xDEAD<<32 | uint64(p.Restarts)
		}
	}
	if env.Round < n.rounds {
		env.Broadcast(env.Rand.Int63n(1 << 30))
	}
	return env.Round >= n.rounds
}

// runSignature captures everything a run produces that the determinism
// contract pins: stats, per-node protocol state, fault churn, the trace,
// and the metrics snapshot.
type runSignature struct {
	Stats    Stats
	Hashes   []uint64
	Crashed  []int
	Returned []int
	Events   []Event
	Metrics  string
}

func runGossip(t *testing.T, g *graph.Graph, seed int64, workers int, plan *FaultPlan, rounds int) runSignature {
	t.Helper()
	nodes := make([]*gossipNode, g.N())
	eng := NewSyncEngine(g, seed, func(id int) SyncNode {
		nodes[id] = &gossipNode{rounds: rounds}
		return nodes[id]
	})
	eng.Workers = workers
	eng.Fault = plan
	tr := &collectTracer{}
	eng.Trace = tr
	reg := obs.NewRegistry()
	eng.Metrics = reg
	if err := eng.Run(); err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	sig := runSignature{
		Stats:    eng.Stats(),
		Hashes:   make([]uint64, g.N()),
		Crashed:  eng.Crashed(),
		Returned: eng.Returned(),
		Events:   tr.events,
		Metrics:  reg.Text(),
	}
	for v, nd := range nodes {
		sig.Hashes[v] = nd.hash
	}
	return sig
}

// TestParallelEngineFaultDeterminism runs the same faulty workload at
// worker counts 1 (the serial special case), 2, 3 and 8 and demands
// byte-identical signatures: stats, node state, crash/rejoin churn, the
// full trace, and the metrics snapshot. Under -race this doubles as the
// data-race gate for the pool's step phase interleaving with the fault
// machinery.
func TestParallelEngineFaultDeterminism(t *testing.T) {
	g := graph.GNM(64, 180, rand.New(rand.NewSource(11)))
	plan := &FaultPlan{
		Seed:    77,
		Loss:    0.12,
		Dup:     0.08,
		Reorder: 3,
		Crashes: []Crash{
			{Node: 5, At: 4, RestartAt: 9},
			{Node: 20, At: 6},
			{Node: 41, At: 2, RestartAt: 3},
		},
		Rejoins: []int{50},
	}
	base := runGossip(t, g, 9001, 1, plan, 25)
	if base.Stats.DroppedFault == 0 || base.Stats.Duplicated == 0 {
		t.Fatalf("fault plan did not bite: %+v", base.Stats)
	}
	for _, w := range []int{2, 3, 8} {
		got := runGossip(t, g, 9001, w, plan, 25)
		if !reflect.DeepEqual(base, got) {
			t.Errorf("workers=%d: run signature diverged from serial\nserial:   %+v\nparallel: %+v", w, base.Stats, got.Stats)
		}
	}
}

// TestParallelEngineFaultFreeDeterminism pins the fault-free fast path,
// where delivery itself shards by destination and the trace is emitted
// concurrently with the workers' inbox refill.
func TestParallelEngineFaultFreeDeterminism(t *testing.T) {
	g := graph.GNM(96, 300, rand.New(rand.NewSource(12)))
	base := runGossip(t, g, 4242, 1, nil, 20)
	if base.Stats.Messages == 0 {
		t.Fatal("no traffic generated")
	}
	for _, w := range []int{2, 3, 8} {
		got := runGossip(t, g, 4242, w, nil, 20)
		if !reflect.DeepEqual(base, got) {
			t.Errorf("workers=%d: fault-free run signature diverged from serial", w)
		}
	}
}

// TestParallelEngineChurnStream drives the parallel engine through
// consecutive FaultStream windows — the sustained-churn regime internal/soak
// runs in — and checks each epoch's signature against the serial engine.
// Reset carries the pool across epochs, so this also covers pool
// start/stop/restart and Reset's parallel re-seeding under -race.
func TestParallelEngineChurnStream(t *testing.T) {
	g := graph.GNM(48, 120, rand.New(rand.NewSource(13)))
	stream := &FaultStream{
		Seed:      2025,
		Loss:      0.1,
		Dup:       0.05,
		Reorder:   2,
		CrashRate: 0.15,
		MinOutage: 1,
		MaxOutage: 4,
	}
	run := func(workers int) []runSignature {
		var sigs []runSignature
		for epoch := int64(0); epoch < 3; epoch++ {
			plan := stream.Plan(epoch, g.N(), nil, 40)
			sigs = append(sigs, runGossip(t, g, 333+epoch, workers, plan, 18))
		}
		return sigs
	}
	base := run(1)
	for _, w := range []int{2, 8} {
		got := run(w)
		if !reflect.DeepEqual(base, got) {
			t.Errorf("workers=%d: churn-stream signatures diverged from serial", w)
		}
	}
}

// TestParallelEngineWorkerPanic checks a panicking node on a pooled worker
// surfaces as a run error (not a crash or a deadlocked barrier), and that
// the engine remains usable afterwards.
func TestParallelEngineWorkerPanic(t *testing.T) {
	g := graph.Star(16)
	boom := true
	factory := func(id int) SyncNode {
		return stepFunc(func(env *SyncEnv, in []Message) bool {
			if boom && env.ID == 7 {
				panic("node bug")
			}
			return true
		})
	}
	eng := NewSyncEngine(g, 1, factory)
	eng.Workers = 4
	if err := eng.Run(); err == nil {
		t.Fatal("expected the pooled engine to surface the node panic as an error")
	}
	boom = false
	eng.Reset(2, factory)
	eng.Workers = 4
	if err := eng.Run(); err != nil {
		t.Fatalf("engine not reusable after a worker panic: %v", err)
	}
}
