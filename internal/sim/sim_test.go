package sim

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"fdlsp/internal/graph"
)

// floodNode implements a simple synchronous BFS flood: the source sends a
// token in round 0; every node records the round it first hears it and
// relays once.
type floodNode struct {
	source  bool
	heardAt int
	relayed bool
}

func (n *floodNode) Step(env *SyncEnv, inbox []Message) bool {
	if env.Round == 0 {
		n.heardAt = -1
		if n.source {
			n.heardAt = 0
			env.Broadcast("token")
			n.relayed = true
		}
		return n.relayed
	}
	if n.heardAt < 0 && len(inbox) > 0 {
		n.heardAt = env.Round
		if !n.relayed {
			env.Broadcast("token")
			n.relayed = true
		}
	}
	return n.heardAt >= 0
}

func TestSyncEngineBFSFloodTiming(t *testing.T) {
	g := graph.Path(6)
	nodes := make([]*floodNode, g.N())
	eng := NewSyncEngine(g, 1, func(id int) SyncNode {
		nodes[id] = &floodNode{source: id == 0}
		return nodes[id]
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for v, nd := range nodes {
		if nd.heardAt != v {
			t.Errorf("node %d heard at round %d, want %d (flood travels one hop per round)", v, nd.heardAt, v)
		}
	}
	st := eng.Stats()
	// Each node broadcasts exactly once: sum of degrees = 2m messages.
	if st.Messages != int64(2*g.M()) {
		t.Errorf("messages = %d, want %d", st.Messages, 2*g.M())
	}
}

func TestSyncEngineRoundBudget(t *testing.T) {
	g := graph.Path(2)
	eng := NewSyncEngine(g, 1, func(id int) SyncNode { return stepFunc(func(env *SyncEnv, in []Message) bool { return false }) })
	eng.MaxRounds = 10
	if err := eng.Run(); err == nil {
		t.Fatal("expected round-budget error for never-terminating nodes")
	}
}

type stepFunc func(*SyncEnv, []Message) bool

func (f stepFunc) Step(env *SyncEnv, in []Message) bool { return f(env, in) }

func TestSyncSendToNonNeighborFailsRun(t *testing.T) {
	g := graph.Path(3) // 0-1-2; 0 and 2 not adjacent
	eng := NewSyncEngine(g, 1, func(id int) SyncNode {
		return stepFunc(func(env *SyncEnv, in []Message) bool {
			if env.ID == 0 {
				env.Send(2, "illegal")
			}
			return true
		})
	})
	if err := eng.Run(); err == nil {
		t.Fatal("expected the engine to surface the illegal send as an error")
	}
}

func TestAsyncNodePanicFailsRun(t *testing.T) {
	g := graph.Path(2)
	eng := NewAsyncEngine(g, 1, func(id int) AsyncNode {
		return asyncFunc(func(env *AsyncEnv) {
			if env.ID == 1 {
				panic("node bug")
			}
			for {
				if _, ok := env.Recv(); !ok {
					return
				}
			}
		})
	})
	if err := eng.Run(); err == nil {
		t.Fatal("expected the engine to surface the node panic as an error")
	}
}

func TestSyncInboxSortedBySender(t *testing.T) {
	g := graph.Star(5)
	var bad atomic.Bool
	eng := NewSyncEngine(g, 1, func(id int) SyncNode {
		return stepFunc(func(env *SyncEnv, in []Message) bool {
			if env.Round == 0 && env.ID != 0 {
				env.Send(0, env.ID)
				return true
			}
			for i := 1; i < len(in); i++ {
				if in[i-1].From > in[i].From {
					bad.Store(true)
				}
			}
			return true
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if bad.Load() {
		t.Error("inbox not sorted by sender")
	}
}

func TestSyncDeterministicAcrossRuns(t *testing.T) {
	g := graph.GNM(20, 50, rand.New(rand.NewSource(3)))
	run := func() []int64 {
		var draws []int64
		eng := NewSyncEngine(g, 42, func(id int) SyncNode {
			return stepFunc(func(env *SyncEnv, in []Message) bool {
				if env.Round == 0 && env.ID == 7 {
					draws = append(draws, env.Rand.Int63())
				}
				return true
			})
		})
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return draws
	}
	a, b := run(), run()
	if len(a) != 1 || len(b) != 1 || a[0] != b[0] {
		t.Errorf("per-node RNG not deterministic per seed: %v vs %v", a, b)
	}
}

// pingPong bounces a counter between two async nodes k times.
type pingPong struct {
	limit int
	last  *atomic.Int64
}

func (p *pingPong) Run(env *AsyncEnv) {
	if env.ID == 0 {
		env.Send(1, 1)
	}
	for {
		m, ok := env.Recv()
		if !ok {
			return
		}
		k := m.Payload.(int)
		p.last.Store(int64(k))
		if k >= p.limit {
			env.FinishAll()
			return
		}
		env.Send(m.From, k+1)
	}
}

func TestAsyncPingPong(t *testing.T) {
	g := graph.Path(2)
	var last atomic.Int64
	eng := NewAsyncEngine(g, 1, func(id int) AsyncNode { return &pingPong{limit: 10, last: &last} })
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if last.Load() != 10 {
		t.Errorf("ping-pong stopped at %d", last.Load())
	}
	st := eng.Stats()
	if st.Messages != 10 {
		t.Errorf("messages = %d, want 10", st.Messages)
	}
	// Each hop advances virtual time by >= 1: 10 hops => clock >= 10.
	if st.Rounds < 10 {
		t.Errorf("virtual time %d < 10 hops", st.Rounds)
	}
}

func TestAsyncQuiescenceDetection(t *testing.T) {
	// Nodes that just wait must not deadlock: the engine detects global
	// quiescence and shuts down.
	g := graph.Path(3)
	eng := NewAsyncEngine(g, 1, func(id int) AsyncNode {
		return asyncFunc(func(env *AsyncEnv) {
			for {
				if _, ok := env.Recv(); !ok {
					return
				}
			}
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

type asyncFunc func(*AsyncEnv)

func (f asyncFunc) Run(env *AsyncEnv) { f(env) }

func TestAsyncInjectAndDelay(t *testing.T) {
	g := graph.Path(2)
	var sawWhen atomic.Int64
	eng := NewAsyncEngine(g, 1, func(id int) AsyncNode {
		return asyncFunc(func(env *AsyncEnv) {
			for {
				m, ok := env.Recv()
				if !ok {
					return
				}
				if env.ID == 0 {
					env.Send(1, "hi")
				} else {
					sawWhen.Store(m.When)
					env.FinishAll()
					return
				}
			}
		})
	})
	eng.Delay = func(from, to int, rng *rand.Rand) int64 { return 41 }
	eng.Inject(0, "go")
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if got := sawWhen.Load(); got != 42 {
		t.Errorf("delayed message arrived at %d, want clock 0 + 1 hop + 41 delay = 42", got)
	}
}

func TestAsyncDeadNodeTrafficDropped(t *testing.T) {
	// Node 1 exits immediately; node 0 sends to it then waits. The engine
	// must not hang on the undeliverable message.
	g := graph.Path(2)
	eng := NewAsyncEngine(g, 1, func(id int) AsyncNode {
		return asyncFunc(func(env *AsyncEnv) {
			if env.ID == 1 {
				return // dies instantly
			}
			env.Send(1, "into the void")
			for {
				if _, ok := env.Recv(); !ok {
					return
				}
			}
		})
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEventHeapOrder(t *testing.T) {
	// Events pop in (When, insertion sequence) order: virtual time first,
	// FIFO among equal times.
	var h eventHeap
	push := func(when, seq int64) { h.push(desEvent{m: Message{When: when}, seq: seq}) }
	push(5, 1)
	push(1, 2)
	push(1, 3)
	push(0, 4)
	push(5, 5)
	want := [][2]int64{{0, 4}, {1, 2}, {1, 3}, {5, 1}, {5, 5}}
	for i, w := range want {
		e := h.pop()
		if e.m.When != w[0] || e.seq != w[1] {
			t.Fatalf("pop %d: got (when=%d seq=%d), want (%d, %d)", i, e.m.When, e.seq, w[0], w[1])
		}
	}
	if len(h) != 0 {
		t.Errorf("heap not empty: %d", len(h))
	}
}
