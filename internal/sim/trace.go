package sim

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"sync"
)

// EventKind classifies trace events.
type EventKind uint8

const (
	// EventRoundStart marks the beginning of a synchronous round.
	EventRoundStart EventKind = iota
	// EventSend is a message entering the network.
	EventSend
	// EventDeliver is a message reaching its destination (async engine).
	EventDeliver
	// EventNodeDone marks a node's local termination.
	EventNodeDone
	// EventDropDead is a message discarded because its destination had
	// terminated (async engine bookkeeping, not an injected fault).
	EventDropDead
	// EventDropFault is a message removed by the FaultPlan: link loss, or
	// arrival inside the destination's crash window.
	EventDropFault
	// EventDup is an extra copy of a message injected by the FaultPlan.
	EventDup
	// EventNodeCrash marks a node entering a FaultPlan crash window.
	EventNodeCrash
	// EventNodeRestart marks a node resuming after a crash window.
	EventNodeRestart
	// EventPeerDown marks a transport endpoint giving up on a peer after
	// exhausting retransmissions (From = the endpoint, To = the peer).
	EventPeerDown
	// EventPeerUp marks a transport endpoint rescinding an earlier give-up
	// because contact with the peer resumed (From = the endpoint, To = the
	// peer).
	EventPeerUp
)

func (k EventKind) String() string {
	switch k {
	case EventRoundStart:
		return "round"
	case EventSend:
		return "send"
	case EventDeliver:
		return "deliver"
	case EventNodeDone:
		return "done"
	case EventDropDead:
		return "drop-dead"
	case EventDropFault:
		return "drop-fault"
	case EventDup:
		return "dup"
	case EventNodeCrash:
		return "crash"
	case EventNodeRestart:
		return "restart"
	case EventPeerDown:
		return "peer-down"
	case EventPeerUp:
		return "peer-up"
	default:
		return "invalid"
	}
}

// Event is one observable step of a simulation.
type Event struct {
	Kind     EventKind
	Time     int64 // round (sync) or virtual time (async)
	From, To int   // message endpoints, or (node, -1)
	Payload  string
}

func (e Event) String() string {
	switch e.Kind {
	case EventSend, EventDeliver, EventDropDead, EventDropFault, EventDup, EventPeerDown, EventPeerUp:
		return fmt.Sprintf("[%6d] %-7s %d->%d %s", e.Time, e.Kind, e.From, e.To, e.Payload)
	default:
		return fmt.Sprintf("[%6d] %-7s node=%d", e.Time, e.Kind, e.From)
	}
}

// Tracer receives simulation events. Implementations must be safe for
// concurrent use: both engines emit from multiple goroutines.
type Tracer interface {
	Emit(Event)
}

// Recorder is a bounded, thread-safe Tracer: it keeps the last Cap events
// and aggregate counts per kind and per payload type. The zero value is
// unbounded below the default cap.
type Recorder struct {
	// Cap bounds retained events (default 4096; older events are dropped).
	Cap int

	mu      sync.Mutex
	events  []Event
	dropped int64
	byKind  map[EventKind]int64
	byPay   map[string]int64
}

// Emit implements Tracer.
func (r *Recorder) Emit(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cap := r.Cap
	if cap == 0 {
		cap = 4096
	}
	if r.byKind == nil {
		r.byKind = make(map[EventKind]int64)
		r.byPay = make(map[string]int64)
	}
	r.byKind[e.Kind]++
	if e.Kind == EventSend && e.Payload != "" {
		r.byPay[e.Payload]++
	}
	if len(r.events) >= cap {
		r.events = r.events[1:]
		r.dropped++
	}
	r.events = append(r.events, e)
}

// Events returns a copy of the retained events.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Count returns the total number of events of the given kind.
func (r *Recorder) Count(k EventKind) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byKind[k]
}

// MessageBreakdown returns sends per payload type name.
func (r *Recorder) MessageBreakdown() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.byPay))
	for k, v := range r.byPay {
		out[k] = v
	}
	return out
}

// Summary renders the aggregate counts.
func (r *Recorder) Summary() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "events: %d retained, %d dropped\n", len(r.events), r.dropped)
	for _, k := range []EventKind{EventRoundStart, EventSend, EventDeliver, EventNodeDone,
		EventDropDead, EventDropFault, EventDup, EventNodeCrash, EventNodeRestart,
		EventPeerDown, EventPeerUp} {
		if n := r.byKind[k]; n > 0 {
			fmt.Fprintf(&b, "  %-8s %d\n", k, n)
		}
	}
	if len(r.byPay) > 0 {
		b.WriteString("  sends by payload type:\n")
		names := make([]string, 0, len(r.byPay))
		for name := range r.byPay {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(&b, "    %-30s %d\n", name, r.byPay[name])
		}
	}
	return b.String()
}

// payloadName returns a compact type name for breakdowns. Pointer payloads
// report their element type: protocols pool messages and send *T where they
// used to send T, and the trace vocabulary (and the committed goldens built
// on it) must not depend on that representation choice.
func payloadName(p any) string {
	t := reflect.TypeOf(p)
	for t != nil && t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	if t == nil {
		return "<nil>"
	}
	return t.String()
}

// EventSource is implemented by protocol layers (the reliable transport
// wrappers) that generate their own trace events from contexts where
// emitting directly would be racy or non-deterministically ordered — the
// synchronous engine runs node Steps on parallel worker stripes. The engine
// drains each node's queued events in node-id order after the round
// barrier, so traces stay byte-identical across GOMAXPROCS.
type EventSource interface {
	TakeEvents() []Event
}
