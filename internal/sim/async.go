package sim

import (
	"fmt"
	"math/rand"

	"fdlsp/internal/graph"
	"fdlsp/internal/obs"
)

// AsyncNode is the behavior of one processor under the asynchronous model:
// Run is the node's whole life, executed on its own goroutine. It typically
// loops on env.Recv and returns when the protocol is over for this node (or
// when Recv reports shutdown).
type AsyncNode interface {
	Run(env *AsyncEnv)
}

// DelayFn injects extra delivery delay (in virtual time units) per message;
// the base cost of a hop is always 1 unit. rng is the sending node's private
// delay generator — separate from the protocol's env.Rand, so failure
// injection can never shift the random stream a protocol draws from (the
// number of sends a node performs may differ between runs when concurrent
// floods race for dedup slots, and a shared stream would leak that timing
// into protocol decisions). Delays are deterministic per seed given the
// node's send sequence. A nil DelayFn means no extra delay.
type DelayFn func(from, to int, rng *rand.Rand) int64

// AsyncEnv is the per-node handle on the asynchronous engine. Only the
// owning goroutine may use it, and the engine's scheduler guarantees at most
// one node goroutine runs at any instant (see AsyncEngine).
type AsyncEnv struct {
	ID        int
	Neighbors []int
	Rand      *rand.Rand

	engine    *AsyncEngine
	wake      chan wakeEvt
	clock     int64
	shutdown  bool
	delayRand *rand.Rand // feeds DelayFn only; see DelayFn
}

// wakeEvt is the scheduler's handoff to a node goroutine: a delivery, or a
// shutdown notice (ok=false).
type wakeEvt struct {
	m  Message
	ok bool
}

// Clock returns the node's Lamport-style virtual time.
func (e *AsyncEnv) Clock() int64 { return e.clock }

// Send transmits payload to the neighbor "to". The message is stamped with
// the sender's clock plus one hop plus any injected delay, then passes
// through the engine's FaultPlan (loss, reordering, duplication). Sending to
// a non-neighbor panics. Messages to nodes that already finished are counted
// and dropped at delivery time, mirroring a transceiver switched off.
func (e *AsyncEnv) Send(to int, payload any) {
	eng := e.engine
	if !eng.g.HasEdge(e.ID, to) {
		panic(fmt.Sprintf("sim: node %d sending to non-neighbor %d", e.ID, to))
	}
	when := e.clock + 1
	if eng.Delay != nil {
		when += eng.Delay(e.ID, to, e.delayRand)
	}
	eng.stats.Messages++
	if eng.Trace != nil {
		eng.Trace.Emit(Event{Kind: EventSend, Time: when, From: e.ID, To: to, Payload: payloadName(payload)})
	}
	m := Message{From: e.ID, To: to, When: when, Payload: payload}
	if plan := eng.Fault; plan != nil {
		if p := plan.lossAt(e.ID, to); p > 0 && eng.faultRand.Float64() < p {
			eng.stats.DroppedFault++
			if eng.Trace != nil {
				eng.Trace.Emit(Event{Kind: EventDropFault, Time: when, From: e.ID, To: to, Payload: payloadName(payload)})
			}
			return
		}
		if plan.Reorder > 0 {
			m.When += eng.faultRand.Int63n(plan.Reorder + 1)
		}
		if plan.Dup > 0 && eng.faultRand.Float64() < plan.Dup {
			dup := m
			dup.When += 1 + eng.faultRand.Int63n(plan.Reorder+2)
			eng.stats.Duplicated++
			if eng.Trace != nil {
				eng.Trace.Emit(Event{Kind: EventDup, Time: dup.When, From: e.ID, To: to, Payload: payloadName(payload)})
			}
			eng.enqueue(dup, false)
		}
	}
	eng.enqueue(m, false)
}

// Broadcast sends payload to every neighbor.
func (e *AsyncEnv) Broadcast(payload any) {
	for _, u := range e.Neighbors {
		e.Send(u, payload)
	}
}

// SetTimer schedules a local alarm: after "after" time units (minimum 1) the
// node receives a Message from itself (From == ID) carrying payload. Timers
// are internal — they are not messages, so they bypass the FaultPlan and the
// message counters, and pending timers are discarded once the run begins
// shutting down. Reliable-transport retransmission is the intended use.
func (e *AsyncEnv) SetTimer(after int64, payload any) {
	if after < 1 {
		after = 1
	}
	e.engine.enqueue(Message{From: e.ID, To: e.ID, When: e.clock + after, Payload: payload}, true)
}

// Recv blocks until a message arrives and returns it, advancing the node's
// clock to the message's delivery time. It returns ok=false when the run is
// shutting down (a node called FinishAll, or the whole system went
// quiescent), at which point the node should return from Run.
func (e *AsyncEnv) Recv() (Message, bool) {
	if e.shutdown {
		return Message{}, false
	}
	eng := e.engine
	eng.sched <- schedSignal{node: e.ID}
	evt := <-e.wake
	if !evt.ok {
		e.shutdown = true
		return Message{}, false
	}
	if evt.m.When > e.clock {
		e.clock = evt.m.When
	}
	if e.clock > eng.maxClock {
		eng.maxClock = e.clock
	}
	if eng.Trace != nil {
		eng.Trace.Emit(Event{Kind: EventDeliver, Time: evt.m.When, From: evt.m.From, To: evt.m.To, Payload: payloadName(evt.m.Payload)})
	}
	return evt.m, true
}

// FinishAll signals global termination: queued messages still get delivered,
// then all Recv calls return ok=false. Typically invoked by a designated
// node that detects the protocol is complete (e.g. the DFS root when the
// token returns).
func (e *AsyncEnv) FinishAll() { e.engine.stopped = true }

// AsyncEngine runs one goroutine per node over the communication graph,
// scheduled as a discrete-event simulation: a central scheduler delivers
// events in (virtual time, send order) and runs exactly one node goroutine
// at a time, handing control back and forth at Recv boundaries. Runs are
// therefore fully deterministic per seed — schedules, message counts, the
// virtual completion time, fault scripts, and trace order are all identical
// regardless of GOMAXPROCS — while node code keeps the natural blocking
// Recv-loop style of the asynchronous model.
type AsyncEngine struct {
	g     *graph.Graph
	nodes []AsyncNode
	envs  []*AsyncEnv
	// Delay optionally injects per-message delivery delay (adversarial
	// scheduling).
	Delay DelayFn
	// Trace optionally receives send, deliver, fault, and termination
	// events, in deterministic order.
	Trace Tracer
	// Fault optionally injects message loss, duplication, reordering, and
	// node crashes. nil means a perfectly reliable network.
	Fault *FaultPlan
	// MaxEvents bounds deliveries per Run; exceeding it aborts with an
	// error. Zero means unlimited (matching the pre-fault engine, which
	// likewise ran until quiescence or FinishAll).
	MaxEvents int64
	// Metrics optionally receives the run's accounting (fdlsp_sim_* counter
	// families, engine="async") when Run finishes, successfully or not.
	Metrics *obs.Registry

	queue     eventHeap
	seq       int64
	sched     chan schedSignal
	dead      []bool
	faultRand *rand.Rand
	maxClock  int64
	stopped   bool
	stats     Stats
	crashed   []int
	returned  []int
	err       error
}

// schedSignal is a node goroutine yielding control back to the scheduler:
// it is now idle in Recv, or its Run returned (died).
type schedSignal struct {
	node int
	died bool
}

// NewAsyncEngine builds an asynchronous engine over g; factory produces the
// node behavior for each vertex. Seed derives per-node private RNGs.
func NewAsyncEngine(g *graph.Graph, seed int64, factory func(id int) AsyncNode) *AsyncEngine {
	eng := &AsyncEngine{
		g:     g,
		nodes: make([]AsyncNode, g.N()),
		envs:  make([]*AsyncEnv, g.N()),
		dead:  make([]bool, g.N()),
		sched: make(chan schedSignal),
	}
	for v := 0; v < g.N(); v++ {
		eng.nodes[v] = factory(v)
		eng.envs[v] = &AsyncEnv{
			ID:        v,
			Neighbors: g.Neighbors(v),
			Rand:      rand.New(rand.NewSource(seed ^ int64(v)*0x5851F42D4C957F2D ^ 0x7C15F0B3)),
			delayRand: rand.New(rand.NewSource(seed ^ int64(v)*0x5851F42D4C957F2D ^ 0x3C6EF372)),
			engine:    eng,
			wake:      make(chan wakeEvt, 1),
		}
	}
	return eng
}

// enqueue inserts a delivery event; callers run in scheduler-exclusive
// context so the insertion sequence (the tie-break for equal times) is
// deterministic.
func (eng *AsyncEngine) enqueue(m Message, timer bool) {
	eng.seq++
	eng.queue.push(desEvent{m: m, seq: eng.seq, timer: timer})
}

// Inject queues an external kick-off message (e.g. a Start token) for node
// "to" at virtual time 0 before the run begins.
func (eng *AsyncEngine) Inject(to int, payload any) {
	eng.enqueue(Message{From: -1, To: to, When: 0, Payload: payload}, false)
}

// Stats returns the accounting of the last Run: Rounds is the worst-case
// causal chain length (the asynchronous time complexity), Messages the
// total number of messages sent.
func (eng *AsyncEngine) Stats() Stats { return eng.stats }

// Crashed returns the nodes whose crash-stop windows fired during the last
// Run, in firing order.
func (eng *AsyncEngine) Crashed() []int { return append([]int(nil), eng.crashed...) }

// Returned returns the nodes whose restart marks fired during the last Run
// (including FaultPlan.Rejoins entries), ascending, deduplicated. Each was
// handed a NodeRestarted notice at its restart time.
func (eng *AsyncEngine) Returned() []int { return append([]int(nil), eng.returned...) }

// Emit forwards a protocol-layer trace event (e.g. transport peer-down /
// peer-up) to the engine tracer. All node activity is serialized by the
// scheduler, so direct emission keeps deterministic order here; the
// synchronous engine instead drains EventSource queues after its round
// barrier.
func (e *AsyncEnv) Emit(ev Event) {
	if e.engine.Trace != nil {
		e.engine.Trace.Emit(ev)
	}
}

// Run executes the simulation and blocks until every node goroutine has
// returned. If every live node is blocked in Recv with no event pending, the
// engine declares quiescence and shuts the run down (so a protocol bug
// cannot hang the caller).
func (eng *AsyncEngine) Run() error {
	n := eng.g.N()
	if err := eng.Fault.Validate(n); err != nil {
		return err
	}
	eng.stats = Stats{}
	eng.maxClock = 0
	eng.crashed = nil
	eng.err = nil
	plan := eng.Fault
	if plan != nil {
		eng.faultRand = rand.New(rand.NewSource(plan.Seed ^ 0x6A09E667F3BCC909))
	}
	marks := plan.crashMarks()
	markIdx := 0
	eng.returned = nil
	restarts := make(map[int]int)
	emitMarks := func(upTo int64) {
		for markIdx < len(marks) && marks[markIdx].at <= upTo {
			mk := marks[markIdx]
			markIdx++
			kind := EventNodeCrash
			if mk.restart {
				kind = EventNodeRestart
				noteReturn(&eng.returned, restarts, mk.node)
			} else if plan.DeadBy(mk.node, mk.at) {
				eng.crashed = append(eng.crashed, mk.node)
			}
			if eng.Trace != nil {
				eng.Trace.Emit(Event{Kind: kind, Time: mk.at, From: mk.node, To: -1})
			}
		}
	}
	if plan != nil {
		// Rejoin notices: nodes whose outage elapsed before this run get
		// theirs at time zero; every in-run restart mark schedules one at the
		// moment the window closes. The count per node feeds NodeRestarted's
		// generation number in mark order.
		pending := make(map[int]int)
		for _, v := range plan.Rejoins {
			note := noteReturn(&eng.returned, restarts, v)
			pending[v] = note.Restarts
			eng.enqueue(Message{From: -1, To: v, When: 0, Payload: note}, false)
			if eng.Trace != nil {
				eng.Trace.Emit(Event{Kind: EventNodeRestart, Time: 0, From: v, To: -1})
			}
		}
		for _, mk := range marks {
			if mk.restart {
				pending[mk.node]++
				eng.enqueue(Message{From: -1, To: mk.node, When: mk.at, Payload: NodeRestarted{Restarts: pending[mk.node]}}, false)
			}
		}
	}

	idle := make([]bool, n)
	alive := n

	// Start the nodes one at a time: each runs exclusively until it first
	// blocks in Recv (or returns), so startup sends are ordered by node id.
	launch := func(v int) {
		go func() {
			func() {
				defer func() {
					if r := recover(); r != nil && eng.err == nil {
						eng.err = fmt.Errorf("sim: node %d panicked: %v", v, r)
					}
				}()
				//lint:ignore envowner ownership transfer: this goroutine IS node v's owner; the scheduler serializes it against all others
				eng.nodes[v].Run(eng.envs[v])
			}()
			if eng.Trace != nil {
				eng.Trace.Emit(Event{Kind: EventNodeDone, Time: eng.envs[v].clock, From: v, To: -1})
			}
			eng.sched <- schedSignal{node: v, died: true}
		}()
	}
	waitYield := func() {
		sig := <-eng.sched
		if sig.died {
			eng.dead[sig.node] = true
			alive--
		} else {
			idle[sig.node] = true
		}
	}
	for v := 0; v < n; v++ {
		launch(v)
		waitYield()
	}

	var delivered int64
	for {
		// Deliver events in (virtual time, send order) until the queue runs
		// dry. All live nodes are idle here, so each delivery hands exclusive
		// control to one node and waits for it to yield.
		for len(eng.queue) > 0 {
			if eng.MaxEvents > 0 && delivered >= eng.MaxEvents {
				if eng.err == nil {
					eng.err = fmt.Errorf("sim: asynchronous run exceeded %d events", eng.MaxEvents)
				}
				eng.stopped = true
				eng.queue = eng.queue[:0]
				break
			}
			e := eng.queue.pop()
			delivered++
			emitMarks(e.m.When)
			if e.timer && eng.stopped {
				continue // alarms are moot once the run is over
			}
			if eng.dead[e.m.To] {
				if !e.timer {
					eng.stats.DroppedDead++
					if eng.Trace != nil {
						eng.Trace.Emit(Event{Kind: EventDropDead, Time: e.m.When, From: e.m.From, To: e.m.To, Payload: payloadName(e.m.Payload)})
					}
				}
				continue
			}
			if plan.CrashedAt(e.m.To, e.m.When) {
				if !e.timer {
					eng.stats.DroppedFault++
					if eng.Trace != nil {
						eng.Trace.Emit(Event{Kind: EventDropFault, Time: e.m.When, From: e.m.From, To: e.m.To, Payload: payloadName(e.m.Payload)})
					}
				}
				continue
			}
			idle[e.m.To] = false
			eng.envs[e.m.To].wake <- wakeEvt{m: e.m, ok: true}
			waitYield()
		}

		// Queue empty: quiescence (or FinishAll). Shut down the remaining
		// nodes in id order; a tearing-down node may still send, in which
		// case the new traffic is delivered before the next shutdown.
		if alive == 0 {
			break
		}
		v := -1
		for u := 0; u < n; u++ {
			if !eng.dead[u] && idle[u] {
				v = u
				break
			}
		}
		if v < 0 {
			break
		}
		eng.stopped = true
		idle[v] = false
		eng.envs[v].wake <- wakeEvt{ok: false}
		waitYield()
	}
	emitMarks(eng.maxClock)
	eng.stats.Rounds = eng.maxClock
	publishStats(eng.Metrics, "async", eng.stats)
	return eng.err
}

// desEvent is one scheduled delivery in the discrete-event queue.
type desEvent struct {
	m     Message
	seq   int64
	timer bool
}

// eventHeap is a binary min-heap of events ordered by (When, insertion
// sequence). It is hand-rolled rather than wrapped in container/heap: the
// interface-based API boxes every desEvent on Push and Pop, and the event
// queue is the async engine's hottest allocation site.
type eventHeap []desEvent

func (h eventHeap) less(i, j int) bool {
	if h[i].m.When != h[j].m.When {
		return h[i].m.When < h[j].m.When
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(e desEvent) {
	*h = append(*h, e)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *eventHeap) pop() desEvent {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = desEvent{} // release payload reference
	q = q[:n]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		child := l
		if r < n && q.less(r, l) {
			child = r
		}
		if !q.less(child, i) {
			break
		}
		q[i], q[child] = q[child], q[i]
		i = child
	}
	return top
}
