package sim

import (
	"fmt"
	"math/rand"
	"sync"

	"fdlsp/internal/graph"
)

// AsyncNode is the behavior of one processor under the asynchronous model:
// Run is the node's whole life, executed on its own goroutine. It typically
// loops on env.Recv and returns when the protocol is over for this node (or
// when Recv reports shutdown).
type AsyncNode interface {
	Run(env *AsyncEnv)
}

// DelayFn injects extra delivery delay (in virtual time units) per message;
// the base cost of a hop is always 1 unit. rng is the sending node's private
// delay generator — separate from the protocol's env.Rand, so failure
// injection can never shift the random stream a protocol draws from (the
// number of sends a node performs may differ between runs when concurrent
// floods race for dedup slots, and a shared stream would leak that timing
// into protocol decisions). Delays are deterministic per seed given the
// node's send sequence. A nil DelayFn means no extra delay.
type DelayFn func(from, to int, rng *rand.Rand) int64

// AsyncEnv is the per-node handle on the asynchronous engine. Only the
// owning goroutine may use it.
type AsyncEnv struct {
	ID        int
	Neighbors []int
	Rand      *rand.Rand

	engine    *AsyncEngine
	inbox     *msgQueue
	clock     int64
	delayRand *rand.Rand // feeds DelayFn only; see DelayFn
}

// Clock returns the node's Lamport-style virtual time.
func (e *AsyncEnv) Clock() int64 { return e.clock }

// Send transmits payload to the neighbor "to". The message is stamped with
// the sender's clock plus one hop plus any injected delay. Sending to a
// non-neighbor panics. Messages to nodes that already finished are counted
// and dropped, mirroring a transceiver that was switched off.
func (e *AsyncEnv) Send(to int, payload any) {
	eng := e.engine
	if !eng.g.HasEdge(e.ID, to) {
		panic(fmt.Sprintf("sim: node %d sending to non-neighbor %d", e.ID, to))
	}
	when := e.clock + 1
	if eng.Delay != nil {
		when += eng.Delay(e.ID, to, e.delayRand)
	}
	m := Message{From: e.ID, To: to, When: when, Payload: payload}
	eng.mu.Lock()
	eng.stats.Messages++
	if eng.dead[to] {
		eng.mu.Unlock()
		return
	}
	eng.inflight++
	eng.inboxes[to].push(m)
	eng.mu.Unlock()
	if eng.Trace != nil {
		eng.Trace.Emit(Event{Kind: EventSend, Time: when, From: e.ID, To: to, Payload: payloadName(payload)})
	}
}

// Broadcast sends payload to every neighbor.
func (e *AsyncEnv) Broadcast(payload any) {
	for _, u := range e.Neighbors {
		e.Send(u, payload)
	}
}

// Recv blocks until a message arrives and returns it, advancing the node's
// clock to the message's delivery time. It returns ok=false when the run is
// shutting down (a node called FinishAll, or the whole system went
// quiescent), at which point the node should return from Run.
func (e *AsyncEnv) Recv() (Message, bool) {
	eng := e.engine
	for {
		if m, ok := e.inbox.tryPop(); ok {
			e.consume(m)
			return m, true
		}
		eng.enterBlocked()
		select {
		case <-e.inbox.notify:
			eng.exitBlocked()
		case <-eng.stop:
			eng.exitBlocked()
			// Prefer delivering queued traffic over shutting down, so a
			// FinishAll racing with late messages never drops work silently.
			if m, ok := e.inbox.tryPop(); ok {
				e.consume(m)
				return m, true
			}
			return Message{}, false
		}
	}
}

func (e *AsyncEnv) consume(m Message) {
	if m.When > e.clock {
		e.clock = m.When
	}
	eng := e.engine
	eng.mu.Lock()
	eng.inflight--
	if e.clock > eng.maxClock {
		eng.maxClock = e.clock
	}
	eng.mu.Unlock()
	if eng.Trace != nil {
		eng.Trace.Emit(Event{Kind: EventDeliver, Time: m.When, From: m.From, To: m.To, Payload: payloadName(m.Payload)})
	}
}

// FinishAll signals global termination: all Recv calls (current and future)
// return ok=false. Typically invoked by a designated node that detects the
// protocol is complete (e.g. the DFS root when the token returns).
func (e *AsyncEnv) FinishAll() { e.engine.finish() }

// AsyncEngine runs one goroutine per node over the communication graph.
type AsyncEngine struct {
	g     *graph.Graph
	nodes []AsyncNode
	envs  []*AsyncEnv
	// Delay optionally injects per-message delivery delay (failure
	// injection / adversarial scheduling).
	Delay DelayFn
	// Trace optionally receives send, deliver, and termination events; the
	// tracer must be safe for concurrent use.
	Trace Tracer

	inboxes []*msgQueue
	stop    chan struct{}

	mu       sync.Mutex
	inflight int64
	blocked  int
	alive    int
	dead     []bool
	maxClock int64
	stopped  bool
	stats    Stats
}

// NewAsyncEngine builds an asynchronous engine over g; factory produces the
// node behavior for each vertex. Seed derives per-node private RNGs.
func NewAsyncEngine(g *graph.Graph, seed int64, factory func(id int) AsyncNode) *AsyncEngine {
	eng := &AsyncEngine{
		g:       g,
		nodes:   make([]AsyncNode, g.N()),
		envs:    make([]*AsyncEnv, g.N()),
		inboxes: make([]*msgQueue, g.N()),
		dead:    make([]bool, g.N()),
		stop:    make(chan struct{}),
	}
	for v := 0; v < g.N(); v++ {
		eng.nodes[v] = factory(v)
		eng.inboxes[v] = newMsgQueue()
		//lint:ignore envowner the engine is the constructor-owner; envs are handed to node goroutines before any concurrent use
		eng.envs[v] = &AsyncEnv{
			ID:        v,
			Neighbors: g.Neighbors(v),
			Rand:      rand.New(rand.NewSource(seed ^ int64(v)*0x5851F42D4C957F2D ^ 0x7C15F0B3)),
			delayRand: rand.New(rand.NewSource(seed ^ int64(v)*0x5851F42D4C957F2D ^ 0x3C6EF372)),
			engine:    eng,
			inbox:     eng.inboxes[v],
		}
	}
	return eng
}

// Inject queues an external kick-off message (e.g. a Start token) for node
// "to" at virtual time 0 before the run begins.
func (eng *AsyncEngine) Inject(to int, payload any) {
	eng.mu.Lock()
	eng.inflight++
	eng.inboxes[to].push(Message{From: -1, To: to, When: 0, Payload: payload})
	eng.mu.Unlock()
}

// Run starts every node goroutine and blocks until all have returned. If
// every live node is blocked in Recv with no message in flight, the engine
// declares quiescence and shuts the run down (so a protocol bug cannot hang
// the caller).
func (eng *AsyncEngine) Run() error {
	n := eng.g.N()
	eng.mu.Lock()
	eng.alive = n
	eng.mu.Unlock()
	var wg sync.WaitGroup
	panics := make([]error, n)
	for v := 0; v < n; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			func() {
				defer func() {
					if r := recover(); r != nil {
						panics[v] = fmt.Errorf("sim: node %d panicked: %v", v, r)
					}
				}()
				//lint:ignore envowner ownership transfer: this goroutine IS node v's owner for the whole run
				eng.nodes[v].Run(eng.envs[v])
			}()
			if eng.Trace != nil {
				eng.Trace.Emit(Event{Kind: EventNodeDone, Time: eng.envs[v].clock, From: v, To: -1})
			}
			eng.mu.Lock()
			eng.dead[v] = true
			eng.alive--
			// Undelivered traffic to a finished node can never be consumed;
			// drop it so it does not mask quiescence.
			eng.inflight -= eng.inboxes[v].drain()
			quiet := eng.alive == 0 || (eng.blocked == eng.alive && eng.inflight == 0)
			eng.mu.Unlock()
			if quiet {
				eng.finish()
			}
		}(v)
	}
	wg.Wait()
	eng.mu.Lock()
	eng.stats.Rounds = eng.maxClock
	eng.mu.Unlock()
	for _, err := range panics {
		if err != nil {
			return err
		}
	}
	return nil
}

// Stats returns the accounting of the last Run: Rounds is the worst-case
// causal chain length (the asynchronous time complexity), Messages the
// total number of messages sent.
func (eng *AsyncEngine) Stats() Stats {
	eng.mu.Lock()
	defer eng.mu.Unlock()
	return eng.stats
}

func (eng *AsyncEngine) enterBlocked() {
	eng.mu.Lock()
	eng.blocked++
	quiet := eng.alive > 0 && eng.blocked == eng.alive && eng.inflight == 0
	eng.mu.Unlock()
	if quiet {
		eng.finish()
	}
}

func (eng *AsyncEngine) exitBlocked() {
	eng.mu.Lock()
	eng.blocked--
	eng.mu.Unlock()
}

func (eng *AsyncEngine) finish() {
	eng.mu.Lock()
	defer eng.mu.Unlock()
	if !eng.stopped {
		eng.stopped = true
		close(eng.stop)
	}
}

// msgQueue is an unbounded FIFO mailbox. push never blocks; the owner waits
// on notify (capacity 1, so a wakeup is never lost) and pops under the lock.
type msgQueue struct {
	mu     sync.Mutex
	buf    []Message
	notify chan struct{}
}

func newMsgQueue() *msgQueue {
	return &msgQueue{notify: make(chan struct{}, 1)}
}

func (q *msgQueue) push(m Message) {
	q.mu.Lock()
	q.buf = append(q.buf, m)
	q.mu.Unlock()
	select {
	case q.notify <- struct{}{}:
	default:
	}
}

func (q *msgQueue) tryPop() (Message, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.buf) == 0 {
		return Message{}, false
	}
	m := q.buf[0]
	q.buf = q.buf[1:]
	return m, true
}

// drain discards all queued messages and returns how many were dropped.
func (q *msgQueue) drain() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := int64(len(q.buf))
	q.buf = nil
	return n
}
