package sim

import (
	"testing"

	"fdlsp/internal/graph"
)

// chatterNode broadcasts a zero-size token every round until the budget is
// exhausted: the densest steady-state traffic the sync engine's hot loop
// can see, with no protocol-side allocation at all.
type chatterNode struct{ rounds int }

func (n *chatterNode) Step(env *SyncEnv, inbox []Message) bool {
	if env.Round < n.rounds {
		env.Broadcast(struct{}{})
	}
	return env.Round >= n.rounds
}

// TestSyncEngineSteadyStateAllocs pins the engine's pooled hot path: after a
// warm-up run, a full Reset+Run cycle over a 64-node graph with every node
// broadcasting every round must reuse the recycled inbox/outbox buffers and
// scratch state instead of reallocating them. The budget is a small constant
// plus the per-Run worker-pool launch — rounds themselves allocate nothing:
// the pool is persistent, so dispatching a round is a channel send, not a
// goroutine spawn. Before pooling, this run cost tens of thousands of
// allocations (fresh inbox slices per node per round).
func TestSyncEngineSteadyStateAllocs(t *testing.T) {
	for _, w := range []int{1, 4} {
		g := graph.Star(64)
		const rounds = 50
		factory := func(id int) SyncNode { return &chatterNode{rounds: rounds} }
		eng := NewSyncEngine(g, 1, factory)
		eng.Workers = w
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		avg := testing.AllocsPerRun(10, func() {
			eng.Reset(1, factory)
			if err := eng.Run(); err != nil {
				t.Fatal(err)
			}
		})
		// Per run: n node constructions (the factory allocates one
		// chatterNode each) plus the pool launch (one goroutine and one
		// replacement dispatch channel per worker). NO per-round term: a
		// regression that reintroduces per-round spawns or buffer churn
		// blows this budget ~rounds× over.
		budget := float64(g.N() + 24 + 8*w)
		if avg > budget {
			t.Errorf("workers=%d: steady-state Reset+Run costs %.0f allocs, budget %.0f — engine buffer recycling regressed", w, avg, budget)
		}
	}
}
