package sim

import (
	"runtime"
	"testing"

	"fdlsp/internal/graph"
)

// chatterNode broadcasts a zero-size token every round until the budget is
// exhausted: the densest steady-state traffic the sync engine's hot loop
// can see, with no protocol-side allocation at all.
type chatterNode struct{ rounds int }

func (n *chatterNode) Step(env *SyncEnv, inbox []Message) bool {
	if env.Round < n.rounds {
		env.Broadcast(struct{}{})
	}
	return env.Round >= n.rounds
}

// TestSyncEngineSteadyStateAllocs pins the engine's pooled hot path: after a
// warm-up run, a full Reset+Run cycle over a 64-node graph with every node
// broadcasting every round must reuse the recycled inbox/outbox buffers and
// scratch state instead of reallocating them. The budget is a small constant
// plus the per-round worker goroutines — before pooling, this run cost tens
// of thousands of allocations (fresh inbox slices per node per round).
func TestSyncEngineSteadyStateAllocs(t *testing.T) {
	g := graph.Star(64)
	const rounds = 50
	factory := func(id int) SyncNode { return &chatterNode{rounds: rounds} }
	eng := NewSyncEngine(g, 1, factory)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(10, func() {
		eng.Reset(1, factory)
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
	})
	// Per run: n node constructions (the factory allocates one chatterNode
	// each) plus per-round worker goroutine launches; everything else must
	// come from the recycled buffers.
	workers := runtime.GOMAXPROCS(0)
	if workers > g.N() {
		workers = g.N()
	}
	budget := float64(g.N() + 16 + (rounds+2)*(2*workers+4))
	if avg > budget {
		t.Errorf("steady-state Reset+Run costs %.0f allocs, budget %.0f — engine buffer recycling regressed", avg, budget)
	}
}
