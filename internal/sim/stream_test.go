package sim

import (
	"reflect"
	"testing"

	"fdlsp/internal/graph"
)

func TestFaultStreamWindowsDeterministic(t *testing.T) {
	s := &FaultStream{Seed: 42, Loss: 0.1, CrashRate: 0.3, MinOutage: 2, MaxOutage: 10}
	for epoch := int64(0); epoch < 5; epoch++ {
		a := s.Plan(epoch, 20, nil, 64)
		b := s.Plan(epoch, 20, nil, 64)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("epoch %d re-materialized differently:\n%+v\n%+v", epoch, a, b)
		}
		if err := a.Validate(20); err != nil {
			t.Fatalf("epoch %d produced an invalid plan: %v", epoch, err)
		}
	}
}

func TestFaultStreamEpochsDiffer(t *testing.T) {
	s := &FaultStream{Seed: 7, CrashRate: 0.5, MaxOutage: 8}
	crashed := make(map[int]bool)
	distinct := false
	var prev *FaultPlan
	for epoch := int64(0); epoch < 8; epoch++ {
		p := s.Plan(epoch, 30, nil, 64)
		for _, c := range p.Crashes {
			crashed[c.Node] = true
		}
		if prev != nil && !reflect.DeepEqual(prev.Crashes, p.Crashes) {
			distinct = true
		}
		prev = p
	}
	if !distinct {
		t.Error("eight epochs at crash rate 0.5 produced identical crash sets")
	}
	if len(crashed) < 10 {
		t.Errorf("only %d of 30 nodes ever crashed over 8 epochs at rate 0.5", len(crashed))
	}
}

func TestFaultStreamWindowBounds(t *testing.T) {
	s := &FaultStream{Seed: 3, CrashRate: 1.0, MinOutage: 2, MaxOutage: 6}
	const horizon = 40
	p := s.Plan(0, 25, nil, horizon)
	if len(p.Crashes) != 25 {
		t.Fatalf("crash rate 1.0 crashed %d of 25 nodes", len(p.Crashes))
	}
	for _, c := range p.Crashes {
		if c.At < 1 || c.At > horizon/2 {
			t.Errorf("crash of %d at %d outside [1,%d]", c.Node, c.At, horizon/2)
		}
		length := c.RestartAt - c.At
		if length < 2 || length > 6 {
			t.Errorf("outage of %d has length %d outside [2,6]", c.Node, length)
		}
	}
}

func TestFaultStreamHonorsLiveMask(t *testing.T) {
	s := &FaultStream{Seed: 11, CrashRate: 1.0, MaxOutage: 4}
	live := make([]bool, 10)
	live[2], live[7] = true, true
	p := s.Plan(3, 10, live, 32)
	if len(p.Crashes) != 2 {
		t.Fatalf("crashes = %+v, want exactly the two live nodes", p.Crashes)
	}
	for _, c := range p.Crashes {
		if !live[c.Node] {
			t.Errorf("dead node %d drew a crash", c.Node)
		}
	}
}

func TestFaultStreamZeroLengthOutagesValid(t *testing.T) {
	// MinOutage 0 can draw zero-length windows; they must validate and run.
	s := &FaultStream{Seed: 5, CrashRate: 1.0, MinOutage: 0, MaxOutage: 0}
	p := s.Plan(0, 6, nil, 16)
	if err := p.Validate(6); err != nil {
		t.Fatal(err)
	}
	sawZero := false
	for _, c := range p.Crashes {
		if c.RestartAt != c.At {
			t.Errorf("MaxOutage 0 drew a non-zero window %+v", c)
		}
		sawZero = true
	}
	if !sawZero {
		t.Fatal("crash rate 1.0 drew no crashes")
	}
}

func TestSyncOnRoundHook(t *testing.T) {
	g := graph.Path(3)
	eng := NewSyncEngine(g, 1, func(id int) SyncNode {
		return stepFunc(func(env *SyncEnv, in []Message) bool {
			if env.Round < 2 {
				env.Broadcast("beat")
			}
			return env.Round >= 3
		})
	})
	var rounds []int64
	eng.OnRound = func(round int64) { rounds = append(rounds, round) }
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if len(rounds) == 0 {
		t.Fatal("OnRound never fired")
	}
	for i, r := range rounds {
		if r != int64(i) {
			t.Fatalf("OnRound sequence %v is not 0,1,2,...", rounds)
		}
	}
	eng.Reset(1, func(id int) SyncNode {
		return stepFunc(func(env *SyncEnv, in []Message) bool { return true })
	})
	if eng.OnRound != nil {
		t.Error("Reset must clear OnRound")
	}
}
