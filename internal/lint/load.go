package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// flows is the package's dataflow layer (per-function CFG fixpoints and
	// escape placements), computed once at load time and shared by every
	// analyzer run over the package.
	flows *packageFlows
}

// summaries returns the store the package's flows were computed against,
// or nil for a hand-assembled Package (the Pass then builds its own).
func (p *Package) summaries() *SummaryStore {
	if p.flows != nil {
		return p.flows.store
	}
	return nil
}

// Loader parses and type-checks packages from source, sharing a file set
// and import cache across loads (stdlib-only: the "source" compiler
// importer resolves both std and module-local imports).
type Loader struct {
	Fset *token.FileSet
	// IncludeTests additionally loads _test.go files of the package itself
	// (external _test packages are not supported).
	IncludeTests bool

	imp *cachingImporter

	// summaries accumulates function summaries across every LoadDir call.
	// Dependencies are loaded before their importers (the driver orders
	// directories topologically), so by the time a package is summarized its
	// callees' summaries are present, and type identity is preserved by the
	// caching importer.
	summaries *SummaryStore
}

// NewLoader returns a loader with a fresh file set.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{Fset: fset, imp: newCachingImporter(fset), summaries: NewSummaryStore()}
}

// cachingImporter resolves imports through the source importer but first
// consults a cache holding every package this loader has already
// typechecked — as a LoadDir target or as a transitive import. The source
// importer memoizes its own loads, but without the extra layer a package
// both linted and imported elsewhere is typechecked twice (once by
// LoadDir, once by the importer); seeding the cache from LoadDir makes
// whole-repo runs typecheck each module package and the stdlib exactly
// once, provided dependencies are visited before their importers.
type cachingImporter struct {
	src  types.ImporterFrom
	pkgs map[string]*types.Package
}

func newCachingImporter(fset *token.FileSet) *cachingImporter {
	return &cachingImporter{
		src:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs: make(map[string]*types.Package),
	}
}

func (c *cachingImporter) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, "", 0)
}

func (c *cachingImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := c.pkgs[path]; ok && p.Complete() {
		return p, nil
	}
	p, err := c.src.ImportFrom(path, dir, mode)
	if err == nil && p.Complete() {
		c.pkgs[path] = p
	}
	return p, err
}

// Cached reports whether the loader already holds a typechecked package
// for the import path (diagnostic; used by tests and tooling).
func (l *Loader) Cached(importPath string) bool {
	_, ok := l.imp.pkgs[importPath]
	return ok
}

// LoadDir loads the package in dir under the given import path. Files are
// parsed in name order so positions and diagnostics are deterministic.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !l.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		if !buildTagsSatisfied(src) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", importPath, err)
	}
	// Seed the import cache so later directories importing this package
	// reuse the typechecked result instead of re-importing from source.
	// Skip test-inclusive loads (a package checked with its _test.go files
	// may declare test-only symbols importers must not see) and never
	// replace an entry: if the source importer already loaded this package
	// for an earlier directory, that copy is what previously-checked
	// packages reference — swapping it would split type identity.
	if _, ok := l.imp.pkgs[importPath]; !ok && !l.IncludeTests {
		l.imp.pkgs[importPath] = tpkg
	}
	pkg := &Package{Path: importPath, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	pkg.flows = computeFlows(files, info, l.summaries)
	return pkg, nil
}

// buildTagsSatisfied evaluates the file's //go:build (or // +build)
// constraint against the loader's fixed tag set: the host GOOS/GOARCH, the
// gc toolchain, and every go1.x release tag. Files constrained out — most
// commonly `//go:build ignore` helper programs, but also contradictory
// ("cyclic-looking") expressions like `//go:build a && !a` — are skipped
// exactly as the go tool would skip them.
func buildTagsSatisfied(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if constraint.IsGoBuild(trimmed) || constraint.IsPlusBuild(trimmed) {
			expr, err := constraint.Parse(trimmed)
			if err != nil {
				continue // malformed constraint: let the parser complain
			}
			if !expr.Eval(buildTagActive) {
				return false
			}
			continue
		}
		// Constraints must precede the package clause; stop at the first
		// non-comment, non-blank line.
		if trimmed != "" && !strings.HasPrefix(trimmed, "//") && !strings.HasPrefix(trimmed, "/*") {
			break
		}
	}
	return true
}

// buildTagActive reports whether one build tag is satisfied in the
// loader's environment.
func buildTagActive(tag string) bool {
	if tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc" {
		return true
	}
	if v, ok := strings.CutPrefix(tag, "go1."); ok {
		if n, err := fmt.Sscanf(v, "%d", new(int)); n == 1 && err == nil {
			return true // this toolchain satisfies every declared go1.x floor it compiles under
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Suppression directives.

const ignorePrefix = "//lint:ignore"

// ignoreDirective is one analyzer name of one //lint:ignore comment, with
// a usage bit so the run can report directives that suppressed nothing.
type ignoreDirective struct {
	name string
	pos  token.Pos
	used bool
}

// ignoreSet maps "file:line" to the directives active there ("*"
// suppresses every analyzer).
type ignoreSet map[string][]*ignoreDirective

// directives collects every well-formed //lint:ignore comment and reports
// malformed ones (missing analyzer list or missing reason) as diagnostics
// of the pseudo-analyzer "lint".
func directives(fset *token.FileSet, files []*ast.File) (ignoreSet, []Diagnostic) {
	set := ignoreSet{}
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "lint",
						Message:  "malformed directive: want //lint:ignore <analyzer>[,<analyzer>] <reason>",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, name := range strings.Split(fields[0], ",") {
					set[key] = append(set[key], &ignoreDirective{name: name, pos: c.Pos()})
				}
			}
		}
	}
	return set, bad
}

// suppresses reports whether d is covered by a directive on its line or on
// the line directly above, marking the directive used.
func (s ignoreSet) suppresses(fset *token.FileSet, d Diagnostic) bool {
	if d.Analyzer == "lint" {
		return false // malformed directives are never self-suppressed
	}
	pos := fset.Position(d.Pos)
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, dir := range s[fmt.Sprintf("%s:%d", pos.Filename, line)] {
			if dir.name == d.Analyzer || dir.name == "*" {
				dir.used = true
				return true
			}
		}
	}
	return false
}

// unused reports directives that suppressed nothing during the run, for
// analyzers that actually ran (a directive for an analyzer excluded from
// the run's set is not judged). Stale suppressions hide future regressions
// — the code they excused has been fixed or moved — so the driver treats
// them as findings.
func (s ignoreSet) unused(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, dirs := range s {
		for _, dir := range dirs {
			if dir.used || (dir.name != "*" && !ran[dir.name]) {
				continue
			}
			out = append(out, Diagnostic{
				Pos:      dir.pos,
				Analyzer: "lint",
				Message:  fmt.Sprintf("unused //lint:ignore %s directive: nothing is suppressed here; delete it", dir.name),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// ---------------------------------------------------------------------------
// Module discovery and package enumeration (shared with cmd/fdlsplint).

// FindModule locates the enclosing go.mod, walking up from dir, and returns
// the module root directory and module path.
func FindModule(dir string) (root, module string, err error) {
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// ExpandPatterns resolves package patterns ("dir", "dir/...") into package
// directories. Recursive walks skip testdata, vendor, hidden, and
// underscore directories; explicitly named directories must exist and
// contain Go files.
func ExpandPatterns(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
			if pat == "." || pat == "" {
				pat = root
			}
		}
		if !filepath.IsAbs(pat) {
			pat = filepath.Join(root, pat)
		}
		if !recursive {
			// An explicitly named directory must exist and contain Go files;
			// only the recursive walk skips silently.
			if st, err := os.Stat(pat); err != nil {
				return nil, err
			} else if !st.IsDir() {
				return nil, fmt.Errorf("%s is not a directory", pat)
			}
			if !hasGoFiles(pat) {
				return nil, fmt.Errorf("no Go files in %s", pat)
			}
			add(pat)
			continue
		}
		err := filepath.WalkDir(pat, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != pat && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir holds at least one non-test Go file.
func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}

// DependencyOrder sorts the package directories so module-local imports
// come before their importers (ties and unrelated packages stay in the
// incoming order). Import lists are read with a cheap imports-only parse;
// cycles cannot occur in compilable Go, and if the parse fails the
// directory is simply ordered as-is — LoadDir will report the real error.
// Loading in this order is what lets the loader's caches (typechecked
// packages, function summaries) hit instead of re-deriving.
func DependencyOrder(dirs []string, importPaths map[string]string) []string {
	byPath := make(map[string]string, len(dirs)) // import path -> dir
	for dir, path := range importPaths {
		byPath[path] = dir
	}
	imports := make(map[string][]string, len(dirs)) // dir -> module-local import dirs
	fset := token.NewFileSet()
	for _, dir := range dirs {
		ents, err := os.ReadDir(dir)
		if err != nil {
			continue
		}
		seen := map[string]bool{}
		for _, e := range ents {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") ||
				strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ImportsOnly)
			if err != nil {
				continue
			}
			for _, spec := range f.Imports {
				path, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					continue
				}
				if dep, ok := byPath[path]; ok && dep != dir && !seen[dep] {
					seen[dep] = true
					imports[dir] = append(imports[dir], dep)
				}
			}
		}
		sort.Strings(imports[dir])
	}
	ordered := make([]string, 0, len(dirs))
	state := make(map[string]int, len(dirs)) // 0 new, 1 visiting, 2 done
	var visit func(dir string)
	visit = func(dir string) {
		if state[dir] != 0 {
			return
		}
		state[dir] = 1
		for _, dep := range imports[dir] {
			visit(dep)
		}
		state[dir] = 2
		ordered = append(ordered, dir)
	}
	for _, dir := range dirs {
		visit(dir)
	}
	return ordered
}
