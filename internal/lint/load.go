package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages from source, sharing a file set
// and import cache across loads (stdlib-only: the "source" compiler
// importer resolves both std and module-local imports).
type Loader struct {
	Fset *token.FileSet
	// IncludeTests additionally loads _test.go files of the package itself
	// (external _test packages are not supported).
	IncludeTests bool

	imp *cachingImporter
}

// NewLoader returns a loader with a fresh file set.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{Fset: fset, imp: newCachingImporter(fset)}
}

// cachingImporter resolves imports through the source importer but first
// consults a cache holding every package this loader has already
// typechecked — as a LoadDir target or as a transitive import. The source
// importer memoizes its own loads, but without the extra layer a package
// both linted and imported elsewhere is typechecked twice (once by
// LoadDir, once by the importer); seeding the cache from LoadDir makes
// whole-repo runs typecheck each module package and the stdlib exactly
// once, provided dependencies are visited before their importers.
type cachingImporter struct {
	src  types.ImporterFrom
	pkgs map[string]*types.Package
}

func newCachingImporter(fset *token.FileSet) *cachingImporter {
	return &cachingImporter{
		src:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs: make(map[string]*types.Package),
	}
}

func (c *cachingImporter) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, "", 0)
}

func (c *cachingImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := c.pkgs[path]; ok && p.Complete() {
		return p, nil
	}
	p, err := c.src.ImportFrom(path, dir, mode)
	if err == nil && p.Complete() {
		c.pkgs[path] = p
	}
	return p, err
}

// Cached reports whether the loader already holds a typechecked package
// for the import path (diagnostic; used by tests and tooling).
func (l *Loader) Cached(importPath string) bool {
	_, ok := l.imp.pkgs[importPath]
	return ok
}

// LoadDir loads the package in dir under the given import path. Files are
// parsed in name order so positions and diagnostics are deterministic.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !l.IncludeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", importPath, err)
	}
	// Seed the import cache so later directories importing this package
	// reuse the typechecked result instead of re-importing from source.
	// Skip test-inclusive loads (a package checked with its _test.go files
	// may declare test-only symbols importers must not see) and never
	// replace an entry: if the source importer already loaded this package
	// for an earlier directory, that copy is what previously-checked
	// packages reference — swapping it would split type identity.
	if _, ok := l.imp.pkgs[importPath]; !ok && !l.IncludeTests {
		l.imp.pkgs[importPath] = tpkg
	}
	return &Package{Path: importPath, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// ---------------------------------------------------------------------------
// Suppression directives.

const ignorePrefix = "//lint:ignore"

// ignoreSet maps "file:line" to the analyzer names suppressed there ("*"
// suppresses every analyzer).
type ignoreSet map[string][]string

// directives collects every well-formed //lint:ignore comment and reports
// malformed ones (missing analyzer list or missing reason) as diagnostics
// of the pseudo-analyzer "lint".
func directives(fset *token.FileSet, files []*ast.File) (ignoreSet, []Diagnostic) {
	set := ignoreSet{}
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "lint",
						Message:  "malformed directive: want //lint:ignore <analyzer>[,<analyzer>] <reason>",
					})
					continue
				}
				pos := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				set[key] = append(set[key], strings.Split(fields[0], ",")...)
			}
		}
	}
	return set, bad
}

// suppresses reports whether d is covered by a directive on its line or on
// the line directly above.
func (s ignoreSet) suppresses(fset *token.FileSet, d Diagnostic) bool {
	if d.Analyzer == "lint" {
		return false // malformed directives are never self-suppressed
	}
	pos := fset.Position(d.Pos)
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range s[fmt.Sprintf("%s:%d", pos.Filename, line)] {
			if name == d.Analyzer || name == "*" {
				return true
			}
		}
	}
	return false
}
