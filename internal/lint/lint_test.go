package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts the expectation regexp from a `// want `+"`...`"+“ comment.
var wantRe = regexp.MustCompile("// want `([^`]+)`")

// expectation is one expected diagnostic: a regexp anchored to a line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	dir := filepath.Join("testdata", name)
	pkg, err := NewLoader().LoadDir(dir, "fdlsp/internal/lint/testdata/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

// collectWants scans the fixture sources for want comments.
func collectWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*expectation
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			re, err := regexp.Compile(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp: %v", path, i+1, err)
			}
			wants = append(wants, &expectation{file: path, line: i + 1, re: re})
		}
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s declares no expectations", dir)
	}
	return wants
}

// checkFixture runs the analyzer over its fixture and matches diagnostics
// against want comments in both directions, so the test fails both on
// missed findings (analyzer disabled or broken) and on false positives.
func checkFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	pkg := loadFixture(t, name)
	diags, err := Run(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, filepath.Join("testdata", name))
	matched := make([]bool, len(wants))
outer:
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		for i, w := range wants {
			if matched[i] || !sameFile(w.file, pos.Filename) || w.line != pos.Line {
				continue
			}
			if !w.re.MatchString(d.Message) {
				t.Errorf("%s:%d: [%s] %q does not match want `%s`", pos.Filename, pos.Line, d.Analyzer, d.Message, w.re)
			}
			matched[i] = true
			continue outer
		}
		t.Errorf("unexpected diagnostic %s:%d: [%s] %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: expected diagnostic matching `%s`, got none", w.file, w.line, w.re)
		}
	}
}

func sameFile(a, b string) bool {
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	return err1 == nil && err2 == nil && aa == bb
}

func TestDetRandFixture(t *testing.T)    { checkFixture(t, DetRand, "detrand") }
func TestEnvOwnerFixture(t *testing.T)   { checkFixture(t, EnvOwner, "envowner") }
func TestMapIterFixture(t *testing.T)    { checkFixture(t, MapIter, "mapiter") }
func TestMsgShareFixture(t *testing.T)   { checkFixture(t, MsgShare, "msgshare") }
func TestPooledLifeFixture(t *testing.T) { checkFixture(t, PooledLife, "pooledlife") }

// TestSuppression exercises //lint:ignore: directives on the reported line
// or the line above silence the named analyzers (or all, with "*"), while
// misdirected and malformed directives leave diagnostics standing.
func TestSuppression(t *testing.T) {
	pkg := loadFixture(t, "suppress")
	diags, err := Run(pkg, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("[%s] %s", d.Analyzer, d.Message))
	}
	byAnalyzer := map[string]int{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer]++
	}
	if byAnalyzer["detrand"] != 2 {
		t.Errorf("want 2 surviving detrand diagnostics (wrongAnalyzer, missingReason), got %d:\n%s",
			byAnalyzer["detrand"], strings.Join(got, "\n"))
	}
	if byAnalyzer["lint"] != 1 {
		t.Errorf("want 1 malformed-directive diagnostic, got %d:\n%s", byAnalyzer["lint"], strings.Join(got, "\n"))
	}
	if byAnalyzer["mapiter"] != 0 {
		t.Errorf("wildcard directive should suppress mapiter, got %d:\n%s", byAnalyzer["mapiter"], strings.Join(got, "\n"))
	}
	if len(diags) != 3 {
		t.Errorf("want exactly 3 surviving diagnostics, got %d:\n%s", len(diags), strings.Join(got, "\n"))
	}
	for _, d := range diags {
		if d.Analyzer == "lint" && !strings.Contains(d.Message, "malformed directive") {
			t.Errorf("lint diagnostic should explain the malformed directive, got %q", d.Message)
		}
	}
}

// TestRepoProtocolPackagesClean pins the acceptance invariant: the shipped
// protocol, simulator, and substrate packages carry no outstanding
// diagnostics (modulo their audited //lint:ignore sites).
func TestRepoProtocolPackagesClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecking the module from source is not -short friendly")
	}
	loader := NewLoader()
	for _, rel := range []string{"core", "sim", "mis", "dmgc", "graph", "coloring", "weighted"} {
		dir := filepath.Join("..", rel)
		pkg, err := loader.LoadDir(dir, "fdlsp/internal/"+rel)
		if err != nil {
			t.Fatalf("loading %s: %v", rel, err)
		}
		diags, err := Run(pkg, Analyzers())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			t.Errorf("%s:%d: [%s] %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
}
