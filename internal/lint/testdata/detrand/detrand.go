// Package detrand is a fixture for the detrand analyzer: every flagged
// line carries a `want` comment with a regexp the diagnostic must match.
package detrand

import (
	"math/rand"
	"time"
)

// bad draws from the process-global generator and observes the wall clock.
func bad() int64 {
	v := rand.Int63()                  // want `use of math/rand\.Int63 in protocol code`
	rand.Shuffle(3, func(i, j int) {}) // want `use of math/rand\.Shuffle`
	rand.Seed(42)                      // want `reseeding the global source hides the run's seed`
	seed := time.Now().UnixNano()      // want `use of time\.Now in protocol code.*virtual clock`
	time.Sleep(time.Millisecond)       // want `use of time\.Sleep.*message delivery, not timing`
	_ = time.Since(time.Unix(seed, 0)) // want `use of time\.Since`
	f := rand.Intn                     // want `use of math/rand\.Intn`
	return v + int64(f(10))
}

// good uses an injected, explicitly seeded generator: the only sanctioned
// randomness. Constructors are not draws and stay allowed.
func good(seed int64) int64 {
	rng := rand.New(rand.NewSource(seed))
	d := time.Duration(rng.Int63n(100)) * time.Millisecond // time arithmetic is fine
	return int64(d) + rng.Int63()
}

// shadowed: a local identifier named rand is not the package.
func shadowed() int {
	rand := struct{ Intn func(int) int }{Intn: func(n int) int { return n - 1 }}
	return rand.Intn(7)
}
