// Package mapiter is a fixture for the mapiter analyzer.
package mapiter

import (
	"fmt"
	"sort"
	"strings"
)

type env struct{}

func (env) Send(to int, payload any) {}
func (env) Broadcast(payload any)    {}

// badAppend builds a slice in map order and never sorts it.
func badAppend(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want `appends to keys in iteration order of map m`
	}
	return keys
}

// goodCollectSort is the canonical idiom: collect then sort.
func goodCollectSort(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// goodLocalSort sorts through a helper whose name mentions sort.
func goodLocalSort(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sortKeys(keys)
	return keys
}

func sortKeys(ks []int) { sort.Ints(ks) }

// badSend emits protocol messages in map order.
func badSend(e env, colors map[int]int) {
	for u, c := range colors {
		e.Send(u, c) // want `sends messages in iteration order of map colors`
	}
	for _, c := range colors {
		e.Broadcast(c) // want `sends messages in iteration order of map colors`
	}
}

// badPrint writes human-visible output in map order.
func badPrint(m map[string]int) string {
	var b strings.Builder
	for k, v := range m {
		fmt.Fprintf(&b, "%s=%d\n", k, v) // want `emits output in iteration order of map m`
	}
	for k := range m {
		b.WriteString(k) // want `writes output in iteration order of map m`
	}
	return b.String()
}

// goodFold is order-independent: map-to-map and aggregation bodies pass.
func goodFold(m map[int]int) (map[int]int, int) {
	out := make(map[int]int, len(m))
	max := 0
	for k, v := range m {
		out[k] = v
		if v > max {
			max = v
		}
	}
	return out, max
}

// goodLoopLocal appends to a slice declared inside the loop body.
func goodLoopLocal(m map[int][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}
