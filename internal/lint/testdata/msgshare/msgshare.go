// Package msgshare is a fixture for the msgshare analyzer.
package msgshare

type env struct{}

func (env) Send(to int, payload any)   {}
func (env) Broadcast(payload any)      {}
func (env) Inject(to int, payload any) {}

type reply struct {
	Table map[int]int
	Buf   []byte
}

type node struct {
	table map[int]int
	buf   []byte
}

// badSliceReuse sends a buffer and keeps writing into it.
func badSliceReuse(e env, buf []byte) {
	e.Send(1, buf) // want `payload aliases buf, which is mutated after the send`
	buf[0] = 7
}

// badMapField ships a live table inside a struct payload, then mutates it.
func (n *node) badMapField(e env) {
	e.Broadcast(reply{Table: n.table}) // want `payload aliases n\.table, which is mutated after the send`
	n.table[3] = 4
}

// badLoopReuse reuses one scratch buffer across loop iterations: iteration
// i+1 overwrites what iteration i sent.
func badLoopReuse(e env, dst []int) {
	scratch := make([]byte, 8)
	for _, to := range dst {
		e.Send(to, scratch) // want `payload aliases scratch, which is mutated after the send`
		scratch[0] = byte(to)
	}
}

// badPointer shares a pointer into sender state.
func (n *node) badPointer(e env) {
	e.Inject(0, &n.buf) // want `payload aliases n\.buf, which is mutated after the send`
	n.buf = append(n.buf, 1)
}

// badPersistentTable answers a state-sync request with the live table. No
// local write follows the send, but the table is node state: later steps
// mutate it while the receiver still holds the payload.
func (n *node) badPersistentTable(e env) {
	e.Send(1, reply{Table: n.table}) // want `payload aliases n\.table, long-lived state behind pointer n`
}

// badPersistentBuf ships a slice field of node state bare, outside any
// wrapper struct.
func (n *node) badPersistentBuf(e env) {
	e.Broadcast(n.buf) // want `payload aliases n\.buf, long-lived state behind pointer n`
}

// badGetterAlias sends the result of a getter that returns the live table.
// The old syntactic pass treated any call result as fresh; the callee
// summary proves the result aliases receiver state.
func (n *node) badGetterAlias(e env) {
	e.Send(1, n.view()) // want `payload aliases n\.table via view`
}

func (n *node) view() map[int]int { return n.table }

// badGetterField hides the getter-aliased table inside a struct payload.
func (n *node) badGetterField(e env) {
	e.Broadcast(reply{Table: n.view()}) // want `payload aliases n\.table via view`
}

// goodConstructorCall sends a helper-built table the summary proves fresh.
func (n *node) goodConstructorCall(e env) {
	e.Send(1, emptyTable(4))
	n.table[9] = 9
}

func emptyTable(size int) map[int]int { return make(map[int]int, size) }

// goodArenaHandout sends a pointer to one element of sender-owned storage:
// an arena handout whose lifetime discipline belongs to pooledlife, not to
// the aliasing rule (the summary path crosses an element boundary).
func (n *node) goodArenaHandout(e env) {
	e.Send(1, n.slot())
}

func (n *node) slot() *byte { return &n.buf[0] }

// goodValueReceiverField sends a map field of a by-value parameter: the
// persistent-state rule requires a pointer base, and the local-mutation
// rule sees no write, so this stays clean.
func goodValueReceiverField(e env, r reply) {
	e.Send(1, r.Table)
}

// goodFreshCopy copies before sending: the receiver owns the copy.
func (n *node) goodFreshCopy(e env) {
	cp := make(map[int]int, len(n.table))
	for k, v := range n.table {
		cp[k] = v
	}
	e.Broadcast(reply{Table: cp})
	n.table[3] = 4
}

// goodCallResult sends a function result, which is treated as fresh.
func (n *node) goodCallResult(e env) {
	e.Send(1, n.snapshot())
	n.table[5] = 6
}

func (n *node) snapshot() map[int]int {
	cp := make(map[int]int, len(n.table))
	for k, v := range n.table {
		cp[k] = v
	}
	return cp
}

// goodValuePayload sends a value struct with no reference fields.
func goodValuePayload(e env) {
	type token struct{ From, TTL int }
	t := token{From: 1, TTL: 2}
	e.Send(1, t)
	t.TTL = 0
}

// goodRebind rebinding the variable does not touch the sent backing array.
func goodRebind(e env, buf []byte) {
	e.Send(1, buf)
	buf = make([]byte, 4)
	_ = buf
}
