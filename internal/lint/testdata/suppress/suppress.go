// Package suppress is a fixture for //lint:ignore handling: directives on
// the reported line or the line above suppress matching analyzers, "*"
// suppresses every analyzer, comma lists name several, and a directive
// without a reason is itself reported. Expected surviving diagnostics are
// asserted by TestSuppression: two detrand findings (wrongAnalyzer and
// missingReason) plus one malformed-directive finding, nothing else.
package suppress

import "math/rand"

func suppressedAbove() int {
	//lint:ignore detrand fixture exercises line-above suppression
	return rand.Intn(8)
}

func suppressedTrailing() int {
	return rand.Intn(8) //lint:ignore detrand fixture exercises same-line suppression
}

func suppressedStar(m map[int]int) []int {
	var ks []int
	for k := range m {
		//lint:ignore * fixture exercises wildcard suppression
		ks = append(ks, k)
	}
	_ = ks
	//lint:ignore mapiter,detrand fixture exercises comma-separated analyzer lists
	return []int{rand.Int()}
}

func wrongAnalyzer() int {
	//lint:ignore mapiter directive names the wrong analyzer, so detrand still fires
	return rand.Int()
}

// The next directive is malformed (no reason) and is reported itself; it
// suppresses nothing, so the rand.Int below it also fires.
func missingReason() int {
	//lint:ignore detrand
	return rand.Int()
}
