// Package pooledlife is a fixture for the pooledlife analyzer. The local
// slab type mirrors internal/core's arena allocator; the analyzer matches
// the type and method names.
package pooledlife

type env struct{}

func (env) Send(to int, payload any) {}
func (env) Broadcast(payload any)    {}

// slab mimics internal/core's bump allocator.
type slab[T any] struct{ chunk []T }

// put appends v and hands out a pointer to the stored copy. The arena's own
// element access is exempt from the lifetime rule.
func (s *slab[T]) put(v T) *T {
	s.chunk = append(s.chunk, v)
	return &s.chunk[len(s.chunk)-1]
}

type ann struct{ Color, Seq int }

type wrap struct{ A *ann }

type node struct {
	anns    slab[ann]
	last    *ann
	byColor map[int]*ann
	log     []*ann
}

var lastGlobal *ann

// goodSendPatterns exercise every legitimate use: pooled pointers flowing
// straight into sends, through locals, and inside fresh message composites.
func (n *node) goodSendPatterns(e env, peers []int) {
	e.Send(1, n.anns.put(ann{Color: 3}))
	fp := n.anns.put(ann{Color: 4})
	for _, u := range peers {
		e.Send(u, fp)
	}
	e.Broadcast(wrap{A: n.anns.put(ann{Color: 5})})
	msg := wrap{A: fp}
	e.Send(2, msg)
}

// badFieldRetention stores the pooled pointer into node state that outlives
// the send round.
func (n *node) badFieldRetention(e env) {
	fp := n.anns.put(ann{Color: 1})
	e.Broadcast(fp)
	n.last = fp // want `pooled payload pointer stored in state outliving the send`
}

// badMapRetention caches pooled pointers in a long-lived index.
func (n *node) badMapRetention(e env) {
	fp := n.anns.put(ann{Color: 2})
	n.byColor[2] = fp // want `pooled payload pointer stored in state outliving the send`
	e.Send(1, fp)
}

// badLogRetention appends pooled pointers to a field slice.
func (n *node) badLogRetention(e env) {
	fp := n.anns.put(ann{Color: 6})
	e.Send(1, fp)
	n.log = append(n.log, fp) // want `pooled payload pointer stored in state outliving the send`
}

// badReturn hands the pooled pointer to the caller, whose frame outlives
// the arena round.
func (n *node) badReturn() *ann {
	return n.anns.put(ann{Color: 7}) // want `pooled payload pointer returned`
}

// badGlobal parks a pooled pointer in package state.
func (n *node) badGlobal() {
	lastGlobal = n.anns.put(ann{Color: 8}) // want `pooled payload pointer stored in package-level state`
}

// badChannel pushes the pooled pointer to another goroutine on a raw
// channel, outside the engine's delivery discipline.
func (n *node) badChannel(ch chan *ann) {
	ch <- n.anns.put(ann{Color: 9}) // want `pooled payload pointer sent on a raw channel`
}

// badCompositeRetention builds a composite around the pooled pointer and
// then retains the composite: the indirection does not launder the slot.
func (n *node) badCompositeRetention(e env) {
	w := &wrap{A: n.anns.put(ann{Color: 10})} // want `pooled payload pointer stored in state outliving the send`
	e.Send(1, w)
	keepWrap(w)
}

var kept *wrap

func keepWrap(w *wrap) { kept = w }
