// Package envowner is a fixture for the envowner analyzer. The local
// AsyncEnv/SyncEnv types stand in for the simulator's per-node handles;
// the analyzer matches the type names.
package envowner

// AsyncEnv mimics sim.AsyncEnv.
type AsyncEnv struct{ ID int }

// Recv mimics the owner-only receive.
func (e *AsyncEnv) Recv() (int, bool) { return 0, false }

// SyncEnv mimics sim.SyncEnv.
type SyncEnv struct{ ID int }

type holder struct {
	env *AsyncEnv
}

type runner interface{ run() }

func (h *holder) run() {}

var global *SyncEnv

var registry []*holder

// leakToGoroutine spawns goroutines that capture or receive the env.
func leakToGoroutine(env *AsyncEnv) {
	go func() {
		env.Recv() // want `\*AsyncEnv reaches a spawned goroutine via env`
	}()
	go consume(env) // want `\*AsyncEnv reaches a spawned goroutine via env`
	// Handing a goroutine its own fresh env is ownership transfer, not a leak.
	go func(own *AsyncEnv) {
		own.Recv()
	}(&AsyncEnv{ID: 1}) // the literal has no root variable outside the go statement
}

func consume(e *AsyncEnv) { e.Recv() }

// leakToStorage stores envs into structures that outlive the frame.
func leakToStorage(env *AsyncEnv, senv *SyncEnv, shared *holder) {
	shared.env = env // want `\*AsyncEnv stored in a shared structure`
	global = senv    // want `\*SyncEnv stored in package-level state`
	ch := make(chan *SyncEnv, 1)
	ch <- senv             // want `\*SyncEnv sent on a channel`
	h := &holder{env: env} // want `\*AsyncEnv stored in a shared structure`
	registry = append(registry, h)
	_ = ch
}

// leakByReturn hands the received env back to the caller — invisible to a
// store-site scan, caught by the escape analysis.
func leakByReturn(env *AsyncEnv) *AsyncEnv {
	alias := env
	return alias // want `\*AsyncEnv returned from the function`
}

// leakByInterface boxes the received env into an interface value.
func leakByInterface(env *AsyncEnv) {
	sink(env) // want `\*AsyncEnv passed as an interface value`
}

func sink(v any) { _ = v }

// leakByClosure captures the received env in a closure that escapes.
func leakByClosure(env *AsyncEnv) func() {
	return func() {
		env.Recv() // want `\*AsyncEnv captured by an escaping closure`
	}
}

// leakByCallee hands the env to a helper whose summary stores it.
func leakByCallee(env *AsyncEnv, shared *holder) {
	stash(shared, env) // want `\*AsyncEnv retained by the callee`
}

func stash(h *holder, env *AsyncEnv) {
	h.env = env // want `\*AsyncEnv stored in a shared structure`
}

// localUse keeps the handle on the owning stack: all clean.
func localUse(env *AsyncEnv) {
	alias := env
	alias.Recv()
	// Storing into a local struct that never escapes is not a leak.
	h := holder{}
	h.env = env
	byID := map[int]*AsyncEnv{}
	byID[env.ID] = env
	var locals []*AsyncEnv
	locals = append(locals, env)
	// Passing down the stack to a callee that only reads is not a leak.
	inspect(env)
	// A closure that stays local may use the env on the same goroutine.
	step := func() { env.Recv() }
	step()
	_ = byID
	_ = locals
}

func inspect(e *AsyncEnv) { _, _ = e.Recv() }

// freshOwner creates handles: the creator may place them anywhere.
func freshOwner() *holder {
	env := &AsyncEnv{ID: 7}
	h := &holder{env: env}
	registry = append(registry, h)
	return h
}
