// Package envowner is a fixture for the envowner analyzer. The local
// AsyncEnv/SyncEnv types stand in for the simulator's per-node handles;
// the analyzer matches the type names.
package envowner

// AsyncEnv mimics sim.AsyncEnv.
type AsyncEnv struct{ ID int }

// Recv mimics the owner-only receive.
func (e *AsyncEnv) Recv() (int, bool) { return 0, false }

// SyncEnv mimics sim.SyncEnv.
type SyncEnv struct{ ID int }

type holder struct {
	env *AsyncEnv
}

var global *SyncEnv

// leakToGoroutine spawns goroutines that capture or receive the env.
func leakToGoroutine(env *AsyncEnv) {
	go func() {
		env.Recv() // want `\*AsyncEnv reaches a spawned goroutine via env`
	}()
	go consume(env) // want `\*AsyncEnv reaches a spawned goroutine via env`
	// Handing a goroutine its own fresh env is ownership transfer, not a leak.
	go func(own *AsyncEnv) {
		own.Recv()
	}(&AsyncEnv{ID: 1}) // the literal has no root variable outside the go statement
}

func consume(e *AsyncEnv) { e.Recv() }

// leakToStorage stores envs into shared structures.
func leakToStorage(env *AsyncEnv, senv *SyncEnv) {
	h := holder{}
	h.env = env // want `\*AsyncEnv stored in a shared structure`
	var envs []*AsyncEnv
	envs = append(envs, env) // want `\*AsyncEnv appended to a slice`
	byID := map[int]*AsyncEnv{}
	byID[env.ID] = env   // want `\*AsyncEnv stored in a shared structure`
	global = senv        // plain rebinding of a package variable is a store through an ident, allowed here
	_ = holder{env: env} // want `\*AsyncEnv stored in a composite literal`
	ch := make(chan *SyncEnv, 1)
	ch <- senv // want `\*SyncEnv sent on a channel`
	_ = envs
	_ = byID
	_ = ch
}

// localAlias keeps the handle on the owning stack: fine.
func localAlias(env *AsyncEnv) {
	alias := env
	alias.Recv()
}
