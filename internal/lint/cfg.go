package lint

// Control-flow graph construction for the dataflow analyses (dataflow.go).
// One cfg is built per function body; blocks hold the "atomic" nodes of the
// function — assignments, expression statements, conditions, returns — in
// execution order, with successor edges describing how control may move
// between blocks. Nested function literals are NOT inlined: a FuncLit is an
// ordinary value expression here, and its body is analyzed as a separate
// function (see analyzeFuncLits in dataflow.go).
//
// The builder handles the full statement grammar the repo uses: if/else,
// for, range, switch, type switch (with per-case bindings), select,
// labeled break/continue, fallthrough, defer/go, and return. goto is
// modeled conservatively as a jump to the function exit; the module has no
// gotos, so the imprecision is theoretical.

import "go/ast"

// cfgBlock is one basic block: a maximal run of atomic nodes with a single
// entry and ordered successors.
type cfgBlock struct {
	id    int
	nodes []ast.Node
	succs []*cfgBlock
}

// cfg is the control-flow graph of one function body.
type cfg struct {
	entry  *cfgBlock
	exit   *cfgBlock
	blocks []*cfgBlock

	// caseSubject maps a type-switch case clause to the switch subject
	// expression, so the dataflow transfer can bind the per-case implicit
	// variable to the subject's abstract value.
	caseSubject map[*ast.CaseClause]ast.Expr
}

// cfgBuilder threads the "current" block and the break/continue targets
// through the recursive statement walk.
type cfgBuilder struct {
	g      *cfg
	cur    *cfgBlock
	frames []ctrlFrame
}

// ctrlFrame is one enclosing breakable construct (loop, switch, select).
type ctrlFrame struct {
	label      string
	breakTo    *cfgBlock
	continueTo *cfgBlock // nil for switch/select
}

func buildCFG(body *ast.BlockStmt) *cfg {
	g := &cfg{caseSubject: map[*ast.CaseClause]ast.Expr{}}
	b := &cfgBuilder{g: g}
	g.entry = b.newBlock()
	g.exit = b.newBlock()
	b.cur = g.entry
	b.stmtList(body.List, "")
	b.edge(b.cur, g.exit) // fall off the end of the body
	return g
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{id: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.nodes = append(b.cur.nodes, n)
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt, label string) {
	for i, s := range list {
		lbl := ""
		if i == 0 {
			lbl = label
		}
		b.stmt(s, lbl)
	}
}

// stmt lowers one statement. label is the pending label naming this
// statement (from an enclosing LabeledStmt), consumed by loops and
// switches for labeled break/continue.
func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch st := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(st.List, "")
	case *ast.LabeledStmt:
		b.stmt(st.Stmt, st.Label.Name)
	case *ast.IfStmt:
		if st.Init != nil {
			b.stmt(st.Init, "")
		}
		b.add(st.Cond)
		thenB, join := b.newBlock(), b.newBlock()
		b.edge(b.cur, thenB)
		elseTarget := join
		var elseB *cfgBlock
		if st.Else != nil {
			elseB = b.newBlock()
			elseTarget = elseB
		}
		b.edge(b.cur, elseTarget)
		b.cur = thenB
		b.stmtList(st.Body.List, "")
		b.edge(b.cur, join)
		if st.Else != nil {
			b.cur = elseB
			b.stmt(st.Else, "")
			b.edge(b.cur, join)
		}
		b.cur = join
	case *ast.ForStmt:
		if st.Init != nil {
			b.stmt(st.Init, "")
		}
		head, body, post, join := b.newBlock(), b.newBlock(), b.newBlock(), b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		b.add(st.Cond)
		b.edge(head, body)
		b.edge(head, join) // also for cond==nil: break exits via frame, edge is harmless over-approximation
		b.frames = append(b.frames, ctrlFrame{label: label, breakTo: join, continueTo: post})
		b.cur = body
		b.stmtList(st.Body.List, "")
		b.frames = b.frames[:len(b.frames)-1]
		b.edge(b.cur, post)
		b.cur = post
		if st.Post != nil {
			b.stmt(st.Post, "")
		}
		b.edge(b.cur, head)
		b.cur = join
	case *ast.RangeStmt:
		head, body, join := b.newBlock(), b.newBlock(), b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		b.add(st) // the transfer function binds Key/Value from X here
		b.edge(head, body)
		b.edge(head, join)
		b.frames = append(b.frames, ctrlFrame{label: label, breakTo: join, continueTo: head})
		b.cur = body
		b.stmtList(st.Body.List, "")
		b.frames = b.frames[:len(b.frames)-1]
		b.edge(b.cur, head)
		b.cur = join
	case *ast.SwitchStmt:
		if st.Init != nil {
			b.stmt(st.Init, "")
		}
		b.add(st.Tag)
		b.switchClauses(st.Body.List, label, nil)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			b.stmt(st.Init, "")
		}
		subject := typeSwitchSubject(st)
		b.add(subject)
		b.switchClauses(st.Body.List, label, subject)
	case *ast.SelectStmt:
		join := b.newBlock()
		b.frames = append(b.frames, ctrlFrame{label: label, breakTo: join})
		entry := b.cur
		for _, c := range st.Body.List {
			comm := c.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(entry, blk)
			b.cur = blk
			if comm.Comm != nil {
				b.stmt(comm.Comm, "")
			}
			b.stmtList(comm.Body, "")
			b.edge(b.cur, join)
		}
		b.frames = b.frames[:len(b.frames)-1]
		if len(st.Body.List) == 0 {
			b.edge(entry, join)
		}
		b.cur = join
	case *ast.ReturnStmt:
		b.add(st)
		b.edge(b.cur, b.g.exit)
		b.cur = b.newBlock() // unreachable continuation
	case *ast.BranchStmt:
		switch st.Tok.String() {
		case "break", "continue":
			if t := b.branchTarget(st); t != nil {
				b.edge(b.cur, t)
			}
		case "goto":
			b.edge(b.cur, b.g.exit) // conservative: no gotos in this module
		}
		if st.Tok.String() != "fallthrough" { // fallthrough edges are added by switchClauses
			b.cur = b.newBlock()
		}
	case *ast.GoStmt, *ast.DeferStmt, *ast.ExprStmt, *ast.AssignStmt,
		*ast.DeclStmt, *ast.IncDecStmt, *ast.SendStmt:
		b.add(st)
	case *ast.EmptyStmt:
	}
}

// switchClauses lowers the case list of a switch or type switch. subject is
// non-nil for type switches and is recorded per clause for implicit-variable
// binding.
func (b *cfgBuilder) switchClauses(clauses []ast.Stmt, label string, subject ast.Expr) {
	join := b.newBlock()
	entry := b.cur
	b.frames = append(b.frames, ctrlFrame{label: label, breakTo: join})
	hasDefault := false
	bodies := make([]*cfgBlock, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	for i, c := range clauses {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		b.edge(entry, bodies[i])
		b.cur = bodies[i]
		if subject != nil {
			b.g.caseSubject[cc] = subject
			b.add(cc)
		}
		b.stmtList(cc.Body, "")
		if n := len(cc.Body); n > 0 {
			if br, ok := cc.Body[n-1].(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" && i+1 < len(bodies) {
				b.edge(b.cur, bodies[i+1])
				continue
			}
		}
		b.edge(b.cur, join)
	}
	b.frames = b.frames[:len(b.frames)-1]
	if !hasDefault || len(clauses) == 0 {
		b.edge(entry, join)
	}
	b.cur = join
}

// branchTarget resolves a break/continue to its frame's target block.
func (b *cfgBuilder) branchTarget(st *ast.BranchStmt) *cfgBlock {
	isBreak := st.Tok.String() == "break"
	for i := len(b.frames) - 1; i >= 0; i-- {
		fr := b.frames[i]
		if st.Label != nil && fr.label != st.Label.Name {
			continue
		}
		if isBreak {
			return fr.breakTo
		}
		if fr.continueTo != nil {
			return fr.continueTo
		}
		// continue skips switch/select frames to the enclosing loop.
	}
	return nil
}

// typeSwitchSubject extracts the switched-on expression of `switch x :=
// y.(type)` or `switch y.(type)`.
func typeSwitchSubject(st *ast.TypeSwitchStmt) ast.Expr {
	switch a := st.Assign.(type) {
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			if ta, ok := a.Rhs[0].(*ast.TypeAssertExpr); ok {
				return ta.X
			}
		}
	case *ast.ExprStmt:
		if ta, ok := a.X.(*ast.TypeAssertExpr); ok {
			return ta.X
		}
	}
	return nil
}
