package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MsgShare flags message payloads that alias mutable storage: a pointer,
// slice, or map handed to Send/Broadcast/Inject while the sender keeps
// mutating it afterwards. Both engines deliver the payload value as-is
// (`any` boxes the header, not the data), so the receiver's goroutine and
// the sender then share the same backing memory — a data race in the async
// engine and a causality leak in both. The analyzer resolves the reference
// roots of the payload expression (identifiers and field paths feeding the
// message, including composite-literal fields and &x), then scans the rest
// of the enclosing function for writes through those roots: any assignment
// or append after the send, or — when the send sits in a loop — anywhere in
// that loop's body.
//
// A second rule covers state-snapshot payloads like the rejoin handshake's
// resync replies, where the mutation is invisible to a single-function
// scan: a reference-typed selector path rooted at a pointer (n.table sent
// from a *node method) is long-lived node state by construction — later
// steps of the same node mutate it after the send returns — so it is
// flagged even without a local write. Fresh values (function-call results
// such as snapshotLocal(), value structs, locally built copies) are never
// flagged; the fix is always to copy before sending.
var MsgShare = &Analyzer{
	Name: "msgshare",
	Doc:  "flag Send/Broadcast payloads aliasing state mutated after the send",
	Run:  runMsgShare,
}

func runMsgShare(pass *Pass) error {
	for _, f := range pass.Files {
		walkWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !mapiterSendNames[sel.Sel.Name] || len(call.Args) == 0 {
				return true
			}
			if _, _, isPkg := pkgFuncRef(pass.Info, sel); isPkg {
				return true // package function, not an env/engine method
			}
			payload := call.Args[len(call.Args)-1]
			checkPayloadCallAliases(pass, call, payload)
			var roots []ast.Expr
			collectPayloadRoots(pass, payload, &roots)
			if len(roots) == 0 {
				return true
			}
			funcBody := enclosingFuncBody(append(stack, n))
			if funcBody == nil {
				return true
			}
			loop := enclosingLoop(stack)
			for _, root := range roots {
				path := exprPath(root)
				if path == "" {
					continue
				}
				if mpos := mutationAfter(pass, funcBody, loop, call.End(), path); mpos.IsValid() {
					pass.Reportf(call.Pos(),
						"payload aliases %s, which is mutated after the send (%s): receiver and sender share the backing memory; copy before sending",
						path, pass.Fset.Position(mpos))
					continue
				}
				if base := persistentStateBase(pass, root); base != "" {
					pass.Reportf(call.Pos(),
						"payload aliases %s, long-lived state behind pointer %s: the engines deliver payloads by reference, so the receiver shares the live structure with every later mutation; send a fresh snapshot instead",
						path, base)
				}
			}
			return true
		})
	}
	return nil
}

// checkPayloadCallAliases flags payload-producing calls whose summary says
// the result aliases long-lived sender state — the getter-that-returns-a-
// view pattern a single-function scan cannot see (`n.table()` returning the
// receiver's live map). Genuinely-fresh constructors (snapshotLocal and
// friends) have fresh summaries and pass without suppression. Result paths
// crossing an element boundary are arena handouts (slab.put returning
// &s.chunk[i]): their lifetime discipline is pooledlife's concern, not
// aliasing-by-the-sender, so they are excluded here.
func checkPayloadCallAliases(pass *Pass, send *ast.CallExpr, payload ast.Expr) {
	ast.Inspect(payload, func(n ast.Node) bool {
		c, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if tv, ok := pass.Info.Types[c]; !ok || !tv.IsValue() || !isRefType(tv.Type) {
			return true // non-reference result cannot alias sender storage
		}
		callee := calleeFunc(pass.Info, c)
		sum := pass.Summaries.lookup(callee)
		if sum == nil || len(sum.results) != 1 {
			return true // unsummarized (stdlib, interface method): treated fresh
		}
		for _, term := range sum.results[0].aliases {
			if term.elem {
				continue
			}
			target := callArgExpr(c, term.ref)
			if target == nil {
				continue
			}
			base := persistentAliasBase(pass, target)
			if base == "" {
				continue
			}
			what := exprPath(target)
			if term.path != "" {
				what = joinPath(what, term.path)
			}
			pass.Reportf(send.Pos(),
				"payload aliases %s via %s: the call returns a view of long-lived state behind pointer %s, not a copy; send a fresh snapshot instead",
				what, callee.Name(), base)
			return true
		}
		return true
	})
}

// persistentAliasBase returns the base identifier's name when e is rooted
// at a pointer-typed variable (the receiver or another long-lived handle),
// else "". Mirrors persistentStateBase but accepts bare identifiers too:
// the aliased storage is named by the summary path, not the expression.
func persistentAliasBase(pass *Pass, e ast.Expr) string {
	base := baseIdent(e)
	if base == nil {
		return ""
	}
	obj := pass.Info.Uses[base]
	if obj == nil {
		return ""
	}
	if _, isPtr := obj.Type().Underlying().(*types.Pointer); !isPtr {
		return ""
	}
	return base.Name
}

// collectPayloadRoots gathers the sub-expressions of a payload that carry
// references into the sender's storage. Call results are treated as fresh.
func collectPayloadRoots(pass *Pass, e ast.Expr, out *[]ast.Expr) {
	switch x := e.(type) {
	case *ast.Ident, *ast.SelectorExpr:
		if tv, ok := pass.Info.Types[e]; ok && isRefType(tv.Type) {
			*out = append(*out, e)
		}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			*out = append(*out, x.X)
		}
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				collectPayloadRoots(pass, kv.Value, out)
			} else {
				collectPayloadRoots(pass, elt, out)
			}
		}
	case *ast.SliceExpr:
		collectPayloadRoots(pass, x.X, out)
	case *ast.IndexExpr:
		if tv, ok := pass.Info.Types[e]; ok && isRefType(tv.Type) {
			*out = append(*out, e)
		}
	case *ast.ParenExpr:
		collectPayloadRoots(pass, x.X, out)
	}
}

// enclosingLoop returns the innermost for/range statement in stack that is
// still within the innermost function, or nil.
func enclosingLoop(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return stack[i]
		case *ast.FuncDecl, *ast.FuncLit:
			return nil
		}
	}
	return nil
}

// mutationAfter returns the position of the first write through root after
// pos in funcBody (or anywhere inside loop, since a later iteration's write
// follows this iteration's send), or token.NoPos.
func mutationAfter(pass *Pass, funcBody *ast.BlockStmt, loop ast.Node, pos token.Pos, root string) token.Pos {
	hit := token.NoPos
	consider := func(n ast.Node) bool {
		if n.Pos() >= pos {
			return true
		}
		return loop != nil && insideNode(n.Pos(), loop)
	}
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if hit.IsValid() {
			return false
		}
		switch st := n.(type) {
		case *ast.AssignStmt:
			if !consider(st) {
				return true
			}
			for i, lhs := range st.Lhs {
				lp := exprPath(lhs)
				if lp == "" {
					continue
				}
				deref := false
				if _, isStar := unparen(lhs).(*ast.StarExpr); isStar {
					deref = true
				}
				// Writing x[i], x.f or *x mutates root x; plain "x = v"
				// rebinding does not touch the sent memory unless it is an
				// append through the same backing array.
				if (lp != root || deref) && pathWithin(lp, root) {
					hit = st.Pos()
					return false
				}
				if lp == root && i < len(st.Rhs) && isAppendOf(pass, st.Rhs[min(i, len(st.Rhs)-1)], root) {
					hit = st.Pos()
					return false
				}
			}
		case *ast.IncDecStmt:
			if !consider(st) {
				return true
			}
			if lp := exprPath(st.X); lp != "" && lp != root && pathWithin(lp, root) {
				hit = st.Pos()
				return false
			}
		}
		return true
	})
	return hit
}

// persistentStateBase reports whether root is a reference-typed selector
// path hanging off a pointer-typed identifier — n.table inside a *node
// method — and returns that base identifier's name (else ""). Such a path
// is long-lived node state: it survives the enclosing call, and the node's
// later steps mutate it concurrently with the receiver reading the payload,
// even though no write is visible to a single-function scan.
func persistentStateBase(pass *Pass, root ast.Expr) string {
	sel, ok := unparen(root).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if tv, ok := pass.Info.Types[root]; !ok || !isRefType(tv.Type) {
		return ""
	}
	base := baseIdent(sel)
	if base == nil {
		return ""
	}
	obj := pass.Info.Uses[base]
	if obj == nil {
		return ""
	}
	if _, isPtr := obj.Type().Underlying().(*types.Pointer); !isPtr {
		return ""
	}
	return base.Name
}

// baseIdent returns the leftmost identifier of an access path, or nil.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isAppendOf reports whether e is append(root, ...), which may write into
// the backing array shared with an earlier send of root[:...].
func isAppendOf(pass *Pass, e ast.Expr, root string) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || !isBuiltin(pass, id) {
		return false
	}
	return exprPath(call.Args[0]) == root
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
