package lint

// Intraprocedural dataflow engine. For each function body a CFG (cfg.go) is
// interpreted over a small abstract domain of value *origins*: every local
// variable maps to the set of places its value may have come from —
// parameters, allocations in this function, call results, or loads out of
// storage the function does not own. The fixpoint is a classic forward
// may-analysis (join = union), so the per-use facts are flow-sensitive:
// `h := holder{}; h.env = env` knows h is a fresh local, while
// `w.senv = env` knows w is a received handle.
//
// On top of the value tracking sit *placements*: every site where a value is
// put somewhere — stored into a structure, appended, returned, sent on a
// channel, converted to an interface, captured by a closure, passed to a
// callee — paired with the abstract value of the thing placed and of the
// container receiving it. Escape solving (solveEscapes) closes the
// placement graph: a value escapes if it is placed beyond the function's
// frame, or into a container that itself escapes. The envowner, msgshare,
// and pooledlife analyzers and the summary builder (summary.go) are all
// consumers of this one engine.

import (
	"go/ast"
	"go/types"
	"strings"
)

// originKind classifies where an abstract value came from.
type originKind uint8

const (
	// oUnknown is a load out of storage this function does not own: a field
	// path rooted at a parameter or package variable, an element of an
	// outside container, or a free variable of a closure.
	oUnknown originKind = iota
	// oFresh is an allocation made by this function: composite literal,
	// make, new, or the address of a literal.
	oFresh
	// oParam is the value of a parameter or receiver as at function entry.
	oParam
	// oCall is the result of a call at a given site.
	oCall
	// oClosure is a function literal created in this function.
	oClosure
)

// maxLoadPath caps the dotted access path recorded for oUnknown origins so
// `x = x.next` loops converge instead of growing the path each iteration.
const maxLoadPath = 4

// origin is one interned abstract value source. Identity is managed by
// funcFlow.intern, so origins compare with ==.
type origin struct {
	kind   originKind
	obj    *types.Var  // oParam: the parameter; oUnknown: the root variable of the load path (nil when unresolvable)
	path   string      // oUnknown: access path below obj ("know.obuf", "chunk[]"), "" otherwise
	site   ast.Node    // oFresh/oCall/oClosure: the allocation/call/literal site
	callee *types.Func // oCall: statically resolved callee (generic origin), or nil
}

type originKey struct {
	kind originKind
	obj  *types.Var
	path string
	site ast.Node
}

// valueSet is a set of origins a value may have.
type valueSet map[*origin]struct{}

func (s valueSet) add(o *origin) bool {
	if _, ok := s[o]; ok {
		return false
	}
	s[o] = struct{}{}
	return true
}

func (s valueSet) clone() valueSet {
	c := make(valueSet, len(s))
	for o := range s {
		c[o] = struct{}{}
	}
	return c
}

// flowState maps local variables to their abstract values.
type flowState map[*types.Var]valueSet

func (st flowState) clone() flowState {
	c := make(flowState, len(st))
	for v, s := range st {
		c[v] = s.clone()
	}
	return c
}

// join unions other into st, reporting whether st changed.
func (st flowState) join(other flowState) bool {
	changed := false
	for v, s := range other {
		dst, ok := st[v]
		if !ok {
			st[v] = s.clone()
			changed = true
			continue
		}
		for o := range s {
			if dst.add(o) {
				changed = true
			}
		}
	}
	return changed
}

// escMask records how a value escapes its function.
type escMask uint8

const (
	escReturn  escMask = 1 << iota
	escStore           // stored into a structure that outlives the frame
	escIface           // converted to an interface value
	escSend            // sent on a channel
	escCall            // handed to a callee whose summary says the parameter escapes
	escClosure         // captured by a closure that itself escapes
	escGlobal          // assigned to a package-level variable
)

// placeKind classifies one placement site.
type placeKind uint8

const (
	pStore        placeKind = iota // x.f = v, x[i] = v, *p = v
	pStoreGlobal                   // g = v for package-level g
	pCompositeElt                  // T{... v ...}
	pAppend                        // append(dst, v)
	pReturn                        // return v
	pSend                          // ch <- v
	pIfaceArg                      // f(v) where the parameter is interface-typed
	pCallArg                       // f(v) with a concrete parameter type
	pCapture                       // v is a free variable referenced by a closure
)

// placement is one site where a value is put somewhere.
type placement struct {
	kind    placeKind
	val     ast.Expr // the placed expression (for pCapture: the first reference inside the closure)
	origins valueSet
	target  valueSet    // container origins for pStore/pCompositeElt/pAppend/pCapture
	callee  *types.Func // pCallArg
	recvArg bool        // pCallArg: the value is the method receiver
	argIdx  int         // pCallArg: argument index in the callee signature
	capture *types.Var  // pCapture: the captured variable
}

// funcFlow is the dataflow result for one function (declaration or literal).
type funcFlow struct {
	info  *types.Info
	fn    ast.Node // *ast.FuncDecl or *ast.FuncLit
	body  *ast.BlockStmt
	sig   *types.Signature
	graph *cfg
	in    map[*cfgBlock]flowState

	interned   map[originKey]*origin
	placements []placement // filled by collectPlacements, in source order per block

	// Escape solution cache, valid once the package summary fixpoint has
	// finished (analyzers run after loading, so the store is complete).
	escDone  bool
	escSol   *escapeSolution
	escKinds []escMask
}

// escapes returns the (cached) escape solution for analyzer consumption.
// The summary fixpoint must not use this cache — it calls solveEscapes
// directly while the store is still converging.
func (ff *funcFlow) escapes(store *SummaryStore) (*escapeSolution, []escMask) {
	if !ff.escDone {
		ff.escSol, ff.escKinds = ff.solveEscapes(store)
		ff.escDone = true
	}
	return ff.escSol, ff.escKinds
}

// analyzeFunc builds the CFG for fn and runs the origin fixpoint.
func analyzeFunc(info *types.Info, fn ast.Node) *funcFlow {
	ff := &funcFlow{info: info, fn: fn, interned: map[originKey]*origin{}}
	switch d := fn.(type) {
	case *ast.FuncDecl:
		if d.Body == nil {
			return nil
		}
		ff.body = d.Body
		if obj, ok := info.Defs[d.Name].(*types.Func); ok {
			ff.sig, _ = obj.Type().(*types.Signature)
		}
	case *ast.FuncLit:
		ff.body = d.Body
		if tv, ok := info.Types[d]; ok {
			ff.sig, _ = tv.Type.Underlying().(*types.Signature)
		}
	default:
		return nil
	}
	if ff.sig == nil {
		return nil
	}
	ff.graph = buildCFG(ff.body)
	ff.run()
	ff.collectPlacements()
	return ff
}

// entryState binds the receiver and parameters to oParam origins.
func (ff *funcFlow) entryState() flowState {
	st := flowState{}
	bind := func(v *types.Var) {
		if v != nil && v.Name() != "" && v.Name() != "_" {
			st[v] = valueSet{ff.intern(originKey{kind: oParam, obj: v}): struct{}{}}
		}
	}
	bind(ff.sig.Recv())
	for i := 0; i < ff.sig.Params().Len(); i++ {
		bind(ff.sig.Params().At(i))
	}
	return st
}

func (ff *funcFlow) intern(k originKey) *origin {
	if o, ok := ff.interned[k]; ok {
		return o
	}
	o := &origin{kind: k.kind, obj: k.obj, path: k.path, site: k.site}
	ff.interned[k] = o
	return o
}

func (ff *funcFlow) internCall(site ast.Node, callee *types.Func) *origin {
	k := originKey{kind: oCall, site: site}
	if o, ok := ff.interned[k]; ok {
		return o
	}
	o := &origin{kind: oCall, site: site, callee: callee}
	ff.interned[k] = o
	return o
}

// run iterates the transfer function to fixpoint over the CFG.
func (ff *funcFlow) run() {
	ff.in = map[*cfgBlock]flowState{ff.graph.entry: ff.entryState()}
	work := []*cfgBlock{ff.graph.entry}
	queued := map[*cfgBlock]bool{ff.graph.entry: true}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false
		out := ff.in[b].clone()
		for _, n := range b.nodes {
			ff.transfer(n, out)
		}
		for _, s := range b.succs {
			dst, ok := ff.in[s]
			if !ok {
				ff.in[s] = out.clone()
			} else if !dst.join(out) {
				continue
			}
			if !queued[s] {
				queued[s] = true
				work = append(work, s)
			}
		}
	}
}

// transfer applies one atomic node's effect to st.
func (ff *funcFlow) transfer(n ast.Node, st flowState) {
	switch t := n.(type) {
	case *ast.AssignStmt:
		ff.transferAssign(t, st)
	case *ast.DeclStmt:
		gd, ok := t.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				v := ff.localVar(name)
				if v == nil {
					continue
				}
				if i < len(vs.Values) {
					st[v] = ff.exprOrigins(vs.Values[i], st)
				} else if len(vs.Values) == 1 {
					st[v] = ff.exprOrigins(vs.Values[0], st) // n names, one call
				} else {
					st[v] = valueSet{}
				}
			}
		}
	case *ast.RangeStmt:
		elem := ff.compose(ff.exprOrigins(t.X, st), "[]")
		for _, e := range []ast.Expr{t.Key, t.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				if v := ff.localVar(id); v != nil {
					st[v] = elem.clone()
				}
			}
		}
	case *ast.CaseClause:
		subject := ff.graph.caseSubject[t]
		if subject == nil {
			return
		}
		if v, ok := ff.info.Implicits[t].(*types.Var); ok {
			st[v] = ff.exprOrigins(subject, st)
		}
	}
}

func (ff *funcFlow) transferAssign(t *ast.AssignStmt, st flowState) {
	if len(t.Lhs) == len(t.Rhs) {
		// Evaluate every RHS against the pre-state first (x, y = y, x).
		vals := make([]valueSet, len(t.Rhs))
		for i, r := range t.Rhs {
			vals[i] = ff.exprOrigins(r, st)
		}
		for i, l := range t.Lhs {
			if id, ok := unparen(l).(*ast.Ident); ok && id.Name != "_" {
				if v := ff.localVar(id); v != nil {
					st[v] = vals[i]
				}
			}
		}
		return
	}
	// x, y := f() / m[k] / x.(T) / <-ch with comma-ok.
	if len(t.Rhs) != 1 {
		return
	}
	vals := ff.exprOrigins(t.Rhs[0], st)
	for i, l := range t.Lhs {
		if id, ok := unparen(l).(*ast.Ident); ok && id.Name != "_" {
			if v := ff.localVar(id); v != nil {
				if i == 0 || isCall(t.Rhs[0]) {
					st[v] = vals.clone()
				} else {
					st[v] = valueSet{} // the comma-ok bool
				}
			}
		}
	}
}

func isCall(e ast.Expr) bool {
	_, ok := unparen(e).(*ast.CallExpr)
	return ok
}

// localVar resolves an identifier to the variable object it defines or
// uses, or nil for non-variables.
func (ff *funcFlow) localVar(id *ast.Ident) *types.Var {
	if v, ok := ff.info.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := ff.info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// compose extends every origin in s with one more access-path segment
// (field name or "[]"), capping path growth for convergence.
func (ff *funcFlow) compose(s valueSet, seg string) valueSet {
	out := valueSet{}
	for o := range s {
		switch o.kind {
		case oParam:
			out.add(ff.intern(originKey{kind: oUnknown, obj: o.obj, path: seg}))
		case oUnknown:
			path := o.path
			if strings.Count(path, ".") < maxLoadPath {
				if seg == "[]" || path == "" {
					path += seg
				} else {
					path += "." + seg
				}
			}
			out.add(ff.intern(originKey{kind: oUnknown, obj: o.obj, path: path}))
		default:
			// Loading out of a fresh object, call result, or closure: the
			// content is not tracked.
			out.add(ff.intern(originKey{kind: oUnknown}))
		}
	}
	if len(s) == 0 {
		out.add(ff.intern(originKey{kind: oUnknown}))
	}
	return out
}

// exprOrigins evaluates the abstract value of e under st.
func (ff *funcFlow) exprOrigins(e ast.Expr, st flowState) valueSet {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		obj := ff.info.Uses[x]
		if obj == nil {
			obj = ff.info.Defs[x]
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return valueSet{} // nil, constants, funcs, types
		}
		if s, ok := st[v]; ok {
			return s.clone()
		}
		// Package-level variable or a closure free variable: outside storage.
		return valueSet{ff.intern(originKey{kind: oUnknown, obj: v}): struct{}{}}
	case *ast.SelectorExpr:
		if _, _, isPkg := pkgFuncRef(ff.info, x); isPkg {
			// Qualified package name: pkg.Var is a root load, pkg.Func no value.
			if v, ok := ff.info.Uses[x.Sel].(*types.Var); ok {
				return valueSet{ff.intern(originKey{kind: oUnknown, obj: v}): struct{}{}}
			}
			return valueSet{}
		}
		if _, ok := ff.info.Uses[x.Sel].(*types.Func); ok {
			return valueSet{} // method value
		}
		return ff.compose(ff.exprOrigins(x.X, st), x.Sel.Name)
	case *ast.IndexExpr:
		if tv, ok := ff.info.Types[x.Index]; ok && tv.IsType() {
			return ff.exprOrigins(x.X, st) // generic instantiation
		}
		return ff.compose(ff.exprOrigins(x.X, st), "[]")
	case *ast.IndexListExpr:
		return ff.exprOrigins(x.X, st)
	case *ast.StarExpr:
		return ff.compose(ff.exprOrigins(x.X, st), "*")
	case *ast.UnaryExpr:
		if x.Op.String() == "&" {
			// &T{...} shares the literal's fresh origin (so placements into
			// the literal resolve against the same container); &x.f / &x[i]
			// / &x alias the addressed storage: the pointer grants access to
			// whatever the operand's origins name.
			return ff.exprOrigins(x.X, st)
		}
		if x.Op.String() == "<-" {
			return valueSet{ff.intern(originKey{kind: oUnknown}): struct{}{}}
		}
		return valueSet{}
	case *ast.CompositeLit:
		return valueSet{ff.intern(originKey{kind: oFresh, site: x}): struct{}{}}
	case *ast.FuncLit:
		return valueSet{ff.intern(originKey{kind: oClosure, site: x}): struct{}{}}
	case *ast.CallExpr:
		return ff.callOrigins(x, st)
	case *ast.SliceExpr:
		return ff.exprOrigins(x.X, st) // same backing array
	case *ast.TypeAssertExpr:
		return ff.exprOrigins(x.X, st)
	}
	return valueSet{}
}

// callOrigins evaluates a call expression: conversions are transparent,
// allocating builtins are fresh, everything else is a call-site origin.
func (ff *funcFlow) callOrigins(call *ast.CallExpr, st flowState) valueSet {
	if tv, ok := ff.info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return ff.exprOrigins(call.Args[0], st)
		}
		return valueSet{}
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok && isBuiltinObj(ff.info, id) {
		switch id.Name {
		case "make", "new":
			return valueSet{ff.intern(originKey{kind: oFresh, site: call}): struct{}{}}
		case "append":
			if len(call.Args) == 0 {
				return valueSet{}
			}
			// The result may share arg0's backing array or a freshly grown one.
			out := ff.exprOrigins(call.Args[0], st)
			out.add(ff.intern(originKey{kind: oFresh, site: call}))
			return out
		default:
			return valueSet{}
		}
	}
	return valueSet{ff.internCall(call, calleeFunc(ff.info, call)): struct{}{}}
}

// calleeFunc statically resolves the called function or method, returning
// the generic origin so summary lookups are instantiation-independent.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := unparen(call.Fun)
	if ix, ok := fun.(*ast.IndexExpr); ok {
		fun = unparen(ix.X) // explicit generic instantiation
	}
	if ix, ok := fun.(*ast.IndexListExpr); ok {
		fun = unparen(ix.X)
	}
	var obj types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[f]
	case *ast.SelectorExpr:
		obj = info.Uses[f.Sel]
	}
	if fn, ok := obj.(*types.Func); ok {
		return fn.Origin()
	}
	return nil
}

// ---------------------------------------------------------------------------
// Placement collection.

// collectPlacements re-walks every block with its fixpoint in-state and
// records one placement per syntactic site, in deterministic source order.
func (ff *funcFlow) collectPlacements() {
	for _, b := range ff.graph.blocks {
		st, ok := ff.in[b]
		if !ok {
			continue // unreachable block
		}
		st = st.clone()
		for _, n := range b.nodes {
			ff.nodePlacements(n, st)
			ff.transfer(n, st)
		}
	}
}

func (ff *funcFlow) emit(p placement) {
	ff.placements = append(ff.placements, p)
}

// nodePlacements emits the placements of one atomic node.
func (ff *funcFlow) nodePlacements(n ast.Node, st flowState) {
	switch t := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range t.Lhs {
			var rhs ast.Expr
			if len(t.Lhs) == len(t.Rhs) {
				rhs = t.Rhs[i]
			} else if len(t.Rhs) == 1 && i == 0 {
				rhs = t.Rhs[0]
			}
			if rhs == nil {
				continue
			}
			ff.storePlacement(lhs, rhs, st)
		}
		for _, r := range t.Rhs {
			ff.exprPlacements(r, st)
		}
		for _, l := range t.Lhs {
			// Index expressions on the LHS still evaluate their operands.
			if ix, ok := unparen(l).(*ast.IndexExpr); ok {
				ff.exprPlacements(ix.Index, st)
			}
		}
	case *ast.DeclStmt:
		if gd, ok := t.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						ff.exprPlacements(v, st)
					}
				}
			}
		}
	case *ast.SendStmt:
		ff.emit(placement{kind: pSend, val: t.Value, origins: ff.exprOrigins(t.Value, st)})
		ff.exprPlacements(t.Value, st)
		ff.exprPlacements(t.Chan, st)
	case *ast.ReturnStmt:
		for _, r := range t.Results {
			ff.emit(placement{kind: pReturn, val: r, origins: ff.exprOrigins(r, st)})
			ff.exprPlacements(r, st)
		}
	case *ast.ExprStmt:
		ff.exprPlacements(t.X, st)
	case *ast.DeferStmt:
		ff.exprPlacements(t.Call, st)
	case *ast.GoStmt:
		// Ownership transfer at goroutine spawn is the envowner go-capture
		// rule's concern; generic placements are not emitted for go calls.
	case *ast.IncDecStmt, *ast.RangeStmt, *ast.CaseClause:
	default:
		if e, ok := n.(ast.Expr); ok { // bare condition / switch tag
			ff.exprPlacements(e, st)
		}
	}
}

// storePlacement classifies an assignment target. Plain rebinding of a
// local is not a placement; everything else places the RHS value somewhere.
func (ff *funcFlow) storePlacement(lhs, rhs ast.Expr, st flowState) {
	val := ff.exprOrigins(rhs, st)
	switch l := unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		if v := ff.localVar(l); v != nil && !isPackageLevel(v) {
			return // local rebinding, tracked by the transfer function
		}
		ff.emit(placement{kind: pStoreGlobal, val: rhs, origins: val})
	case *ast.SelectorExpr:
		if _, _, isPkg := pkgFuncRef(ff.info, l); isPkg {
			ff.emit(placement{kind: pStoreGlobal, val: rhs, origins: val})
			return
		}
		ff.emit(placement{kind: pStore, val: rhs, origins: val, target: ff.exprOrigins(l.X, st)})
	case *ast.IndexExpr:
		ff.emit(placement{kind: pStore, val: rhs, origins: val, target: ff.exprOrigins(l.X, st)})
	case *ast.StarExpr:
		ff.emit(placement{kind: pStore, val: rhs, origins: val, target: ff.exprOrigins(l.X, st)})
	}
}

// isPackageLevel reports whether v is a package-scoped variable.
func isPackageLevel(v *types.Var) bool {
	if v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}

// exprPlacements walks an expression tree emitting composite-literal,
// call-argument, append, and closure-capture placements. Function literal
// bodies are not descended into — each literal is analyzed as its own
// function — but the literal value itself and its captures are placed.
func (ff *funcFlow) exprPlacements(e ast.Expr, st flowState) {
	if e == nil {
		return
	}
	switch x := unparen(e).(type) {
	case *ast.CompositeLit:
		target := ff.exprOrigins(x, st)
		for _, elt := range x.Elts {
			val := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				val = kv.Value
			}
			ff.emit(placement{kind: pCompositeElt, val: val, origins: ff.exprOrigins(val, st), target: target})
			ff.exprPlacements(val, st)
		}
	case *ast.CallExpr:
		ff.callPlacements(x, st)
	case *ast.FuncLit:
		ff.capturePlacements(x, st)
	case *ast.UnaryExpr:
		ff.exprPlacements(x.X, st)
	case *ast.StarExpr:
		ff.exprPlacements(x.X, st)
	case *ast.BinaryExpr:
		ff.exprPlacements(x.X, st)
		ff.exprPlacements(x.Y, st)
	case *ast.SelectorExpr:
		ff.exprPlacements(x.X, st)
	case *ast.IndexExpr:
		ff.exprPlacements(x.X, st)
		ff.exprPlacements(x.Index, st)
	case *ast.SliceExpr:
		ff.exprPlacements(x.X, st)
	case *ast.TypeAssertExpr:
		ff.exprPlacements(x.X, st)
	case *ast.KeyValueExpr:
		ff.exprPlacements(x.Value, st)
	}
}

// callPlacements emits one placement per argument: interface conversions
// for interface-typed parameters, callee-summary placements otherwise.
func (ff *funcFlow) callPlacements(call *ast.CallExpr, st flowState) {
	ff.exprPlacements(call.Fun, st)
	for _, a := range call.Args {
		ff.exprPlacements(a, st)
	}
	if tv, ok := ff.info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok && isBuiltinObj(ff.info, id) {
		if id.Name == "append" && len(call.Args) > 1 {
			target := ff.exprOrigins(call.Args[0], st)
			for _, a := range call.Args[1:] {
				ff.emit(placement{kind: pAppend, val: a, origins: ff.exprOrigins(a, st), target: target})
			}
		}
		return
	}
	sig := ff.callSignature(call)
	if sig == nil {
		return
	}
	callee := calleeFunc(ff.info, call)
	// Method receiver: using your own handle is not a placement (design:
	// calling methods on a value is the normal ownership pattern).
	for i, a := range call.Args {
		pt := paramTypeAt(sig, i)
		if pt == nil {
			continue
		}
		at, ok := ff.info.Types[a]
		if !ok {
			continue
		}
		if types.IsInterface(pt.Underlying()) && at.Type != nil && !types.IsInterface(at.Type.Underlying()) {
			ff.emit(placement{kind: pIfaceArg, val: a, origins: ff.exprOrigins(a, st)})
			continue
		}
		ff.emit(placement{kind: pCallArg, val: a, origins: ff.exprOrigins(a, st), callee: callee, argIdx: i})
	}
}

// callSignature returns the (instantiated) signature of the called value.
func (ff *funcFlow) callSignature(call *ast.CallExpr) *types.Signature {
	tv, ok := ff.info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// paramTypeAt returns the type of argument index i under sig, unrolling the
// variadic tail. nil when i is out of range (e.g. a ... spread call).
func paramTypeAt(sig *types.Signature, i int) types.Type {
	n := sig.Params().Len()
	if sig.Variadic() {
		if i >= n-1 {
			last := sig.Params().At(n - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				return sl.Elem()
			}
			return nil
		}
		return sig.Params().At(i).Type()
	}
	if i < n {
		return sig.Params().At(i).Type()
	}
	return nil
}

// capturePlacements emits one pCapture placement per free variable of a
// function literal: the captured value is placed "into" the closure, and
// escapes when the closure does.
func (ff *funcFlow) capturePlacements(lit *ast.FuncLit, st flowState) {
	target := ff.exprOrigins(lit, st)
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := ff.info.Uses[id].(*types.Var)
		if !ok || seen[v] || isPackageLevel(v) {
			return true
		}
		// Free iff declared outside the literal.
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true
		}
		seen[v] = true
		var origins valueSet
		if s, ok := st[v]; ok {
			origins = s.clone()
		} else {
			origins = valueSet{ff.intern(originKey{kind: oUnknown, obj: v}): struct{}{}}
		}
		ff.emit(placement{kind: pCapture, val: id, origins: origins, target: target, capture: v})
		return true
	})
}

// ---------------------------------------------------------------------------
// Escape solving.

// escapeSolution holds, for every origin, the ways values with that origin
// escape the function.
type escapeSolution struct {
	byOrigin map[*origin]escMask
}

func (es *escapeSolution) mark(s valueSet, m escMask) bool {
	changed := false
	for o := range s {
		if es.byOrigin[o]&m != m {
			es.byOrigin[o] |= m
			changed = true
		}
	}
	return changed
}

// escaped reports whether any origin in s escapes (with the union of kinds).
func (es *escapeSolution) escaped(s valueSet) escMask {
	var m escMask
	for o := range s {
		m |= es.byOrigin[o]
	}
	return m
}

// outsideTarget reports whether a container origin names storage beyond the
// function frame: parameters, loads, call results the function does not
// track into.
func outsideTarget(o *origin) bool {
	switch o.kind {
	case oParam, oUnknown, oCall:
		return true
	}
	return false
}

// solveEscapes closes the placement graph over the summary store: a
// placement escapes when its destination is outside the frame, or into a
// fresh container/closure that itself escapes. Returns the per-origin
// escape masks and the per-placement escape kind (escMask(0) = does not
// escape).
func (ff *funcFlow) solveEscapes(store *SummaryStore) (*escapeSolution, []escMask) {
	es := &escapeSolution{byOrigin: map[*origin]escMask{}}
	kinds := make([]escMask, len(ff.placements))
	for changed := true; changed; {
		changed = false
		for i := range ff.placements {
			p := &ff.placements[i]
			m := ff.placementEscape(p, es, store)
			if m != 0 && kinds[i] == 0 {
				kinds[i] = m
			}
			if m != 0 && es.mark(p.origins, m) {
				changed = true
			}
		}
	}
	return es, kinds
}

// placementEscape decides whether one placement escapes under the current
// partial solution.
func (ff *funcFlow) placementEscape(p *placement, es *escapeSolution, store *SummaryStore) escMask {
	switch p.kind {
	case pReturn:
		return escReturn
	case pSend:
		return escSend
	case pIfaceArg:
		return escIface
	case pStoreGlobal:
		return escGlobal
	case pStore, pCompositeElt, pAppend:
		for o := range p.target {
			if outsideTarget(o) {
				return escStore
			}
			if es.byOrigin[o] != 0 {
				return escStore
			}
		}
		return 0
	case pCapture:
		for o := range p.target {
			if es.byOrigin[o] != 0 {
				return escClosure
			}
		}
		return 0
	case pCallArg:
		if store == nil || p.callee == nil {
			return 0
		}
		if isSlabPut(p.callee) {
			// Arena adoption: the slab stores its argument by design, and
			// the stored copy shares the pooled lifetime discipline —
			// a hand-off like a send, not retention (see pooledlife).
			return 0
		}
		if sum := store.lookup(p.callee); sum != nil {
			// A callee that merely returns its argument hands the value
			// back to our frame — the call-site origin carries it onward
			// and later placements of the result are judged on their own.
			if m := sum.paramEscapeAt(p.argIdx) &^ escReturn; m != 0 {
				return m | escCall
			}
		}
		return 0
	}
	return 0
}

// describeEscape renders an escape mask for diagnostics (dominant kind).
func describeEscape(m escMask) string {
	switch {
	case m&escReturn != 0:
		return "returned"
	case m&escIface != 0:
		return "converted to an interface"
	case m&escSend != 0:
		return "sent on a channel"
	case m&escGlobal != 0:
		return "stored in package-level state"
	case m&escClosure != 0:
		return "captured by an escaping closure"
	case m&escCall != 0:
		return "leaked by the callee"
	default:
		return "stored in a shared structure"
	}
}

// isBuiltinObj reports whether id resolves to a language builtin (append,
// len, ...) rather than a user-defined name shadowing it.
func isBuiltinObj(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}
