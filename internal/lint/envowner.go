package lint

import (
	"go/ast"
	"go/types"
)

// EnvOwner enforces the simulator's ownership contract: an AsyncEnv (or
// SyncEnv) is the per-node handle on the engine and only the goroutine
// running that node may touch it — Recv/Send/Rand are not synchronized for
// outside callers, and a leaked handle turns "deterministic per seed" into
// a data race.
//
// The analyzer is a flow-sensitive escape analysis over the dataflow
// engine (dataflow.go). A handle the function *received* — a parameter, a
// load out of shared storage, a call result — must stay on the owning
// goroutine's stack: it is flagged when it is returned, stored into a
// structure that outlives the frame, converted to an interface, sent on a
// channel, captured by a closure that escapes, or passed to a callee whose
// summary says the parameter is retained. A handle the function *created*
// (fresh allocation) is its own to place: engine constructors wiring
// `eng.envs[v] = &AsyncEnv{...}` are the ownership hand-off the contract
// is built on, and need no suppression. Escape is transitive — storing a
// received env into a fresh local struct is clean until the struct itself
// escapes. A separate syntactic rule flags env handles reaching a
// go statement from outside it (the spawned-goroutine capture), which the
// per-function escape analysis cannot see.
var EnvOwner = &Analyzer{
	Name: "envowner",
	Doc:  "flag AsyncEnv/SyncEnv handles escaping their owning goroutine",
	Run:  runEnvOwner,
}

func runEnvOwner(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.GoStmt:
				checkGoCapture(pass, st)
			case *ast.FuncDecl, *ast.FuncLit:
				checkEnvEscapes(pass, st)
			}
			return true
		})
	}
	return nil
}

// checkEnvEscapes reports every escaping placement of a received env
// handle in one function.
func checkEnvEscapes(pass *Pass, fn ast.Node) {
	ff := pass.flowFor(fn)
	if ff == nil {
		return
	}
	_, kinds := ff.escapes(pass.Summaries)
	for i := range ff.placements {
		p := &ff.placements[i]
		if kinds[i] == 0 {
			continue
		}
		name := envTypeOf(pass, p.val)
		if name == "" {
			continue
		}
		if !receivedOrigin(p.origins) {
			continue // freshly created here: the creator owns its placement
		}
		pass.Reportf(p.val.Pos(), "*%s %s: env handles must stay on the owning goroutine's stack", name, envEscapePhrase(kinds[i]))
	}
}

// receivedOrigin reports whether the value may be a handle this function
// did not create: a parameter, a load from shared storage, a call result.
func receivedOrigin(s valueSet) bool {
	for o := range s {
		switch o.kind {
		case oParam, oUnknown, oCall:
			return true
		}
	}
	return false
}

// envEscapePhrase renders the dominant escape kind of a flagged placement.
func envEscapePhrase(m escMask) string {
	switch {
	case m&escSend != 0:
		return "sent on a channel"
	case m&escReturn != 0:
		return "returned from the function"
	case m&escIface != 0:
		return "passed as an interface value"
	case m&escGlobal != 0:
		return "stored in package-level state"
	case m&escClosure != 0:
		return "captured by an escaping closure"
	case m&escCall != 0:
		return "retained by the callee"
	default:
		return "stored in a shared structure"
	}
}

// envTypeOf returns "AsyncEnv"/"SyncEnv" when e is a value expression whose
// type is a pointer to one of the simulator env types, else "".
func envTypeOf(pass *Pass, e ast.Expr) string {
	tv, ok := pass.Info.Types[e]
	if !ok || !tv.IsValue() {
		return ""
	}
	return envPointerName(tv.Type)
}

// checkGoCapture reports env-typed expressions inside a go statement whose
// root variable is declared outside it (captured shared state rather than a
// goroutine-local handle).
func checkGoCapture(pass *Pass, st *ast.GoStmt) {
	reported := map[string]bool{}
	ast.Inspect(st.Call, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		name := envTypeOf(pass, e)
		if name == "" {
			return true
		}
		root := rootIdent(e)
		if root == nil {
			return true
		}
		obj, isVar := pass.Info.Uses[root].(*types.Var)
		if !isVar || (obj.Pos() >= st.Pos() && obj.Pos() <= st.End()) {
			return true // not a variable, or declared by the goroutine itself
		}
		key := exprPath(e)
		if reported[key] {
			return false
		}
		reported[key] = true
		pass.Reportf(e.Pos(),
			"*%s reaches a spawned goroutine via %s: only the owning goroutine may use its env", name, key)
		return false
	})
}

// rootIdent returns the leftmost identifier of a selector/index/deref
// chain, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
