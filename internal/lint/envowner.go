package lint

import (
	"go/ast"
	"go/types"
)

// EnvOwner enforces the simulator's ownership contract: an AsyncEnv (or
// SyncEnv) is the per-node handle on the engine and only the goroutine
// running that node may touch it — Recv/Send/Rand are not synchronized for
// outside callers, and a leaked handle turns "deterministic per seed" into
// a data race. The analyzer flags env handles (1) referenced inside a
// go-statement from outside it — captured by the spawned closure or passed
// as its argument — and (2) escaping into shared storage: struct fields,
// slice/map elements, composite literals, append, or channel sends.
// The engine's own construction and hand-off sites are the two legitimate
// owners and carry //lint:ignore directives with the ownership argument.
var EnvOwner = &Analyzer{
	Name: "envowner",
	Doc:  "flag AsyncEnv/SyncEnv handles escaping their owning goroutine",
	Run:  runEnvOwner,
}

func runEnvOwner(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.GoStmt:
				checkGoCapture(pass, st)
			case *ast.AssignStmt:
				if len(st.Lhs) == len(st.Rhs) {
					for i, rhs := range st.Rhs {
						if name := envTypeOf(pass, rhs); name != "" {
							switch st.Lhs[i].(type) {
							case *ast.SelectorExpr, *ast.IndexExpr:
								pass.Reportf(st.Lhs[i].Pos(),
									"*%s stored in a shared structure: env handles must stay on the owning goroutine's stack", name)
							}
						}
					}
				}
			case *ast.CompositeLit:
				for _, elt := range st.Elts {
					val := elt
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						val = kv.Value
					}
					if name := envTypeOf(pass, val); name != "" {
						pass.Reportf(val.Pos(),
							"*%s stored in a composite literal: env handles must stay on the owning goroutine's stack", name)
					}
				}
			case *ast.CallExpr:
				if id, ok := st.Fun.(*ast.Ident); ok && id.Name == "append" && isBuiltin(pass, id) {
					for _, arg := range st.Args[1:] {
						if name := envTypeOf(pass, arg); name != "" {
							pass.Reportf(arg.Pos(),
								"*%s appended to a slice: env handles must stay on the owning goroutine's stack", name)
						}
					}
				}
			case *ast.SendStmt:
				if name := envTypeOf(pass, st.Value); name != "" {
					pass.Reportf(st.Value.Pos(),
						"*%s sent on a channel: env handles must not cross goroutines", name)
				}
			}
			return true
		})
	}
	return nil
}

// envTypeOf returns "AsyncEnv"/"SyncEnv" when e is a value expression whose
// type is a pointer to one of the simulator env types, else "".
func envTypeOf(pass *Pass, e ast.Expr) string {
	tv, ok := pass.Info.Types[e]
	if !ok || !tv.IsValue() {
		return ""
	}
	return envPointerName(tv.Type)
}

// checkGoCapture reports env-typed expressions inside a go statement whose
// root variable is declared outside it (captured shared state rather than a
// goroutine-local handle).
func checkGoCapture(pass *Pass, st *ast.GoStmt) {
	reported := map[string]bool{}
	ast.Inspect(st.Call, func(n ast.Node) bool {
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		name := envTypeOf(pass, e)
		if name == "" {
			return true
		}
		root := rootIdent(e)
		if root == nil {
			return true
		}
		obj, isVar := pass.Info.Uses[root].(*types.Var)
		if !isVar || (obj.Pos() >= st.Pos() && obj.Pos() <= st.End()) {
			return true // not a variable, or declared by the goroutine itself
		}
		key := exprPath(e)
		if reported[key] {
			return false
		}
		reported[key] = true
		pass.Reportf(e.Pos(),
			"*%s reaches a spawned goroutine via %s: only the owning goroutine may use its env", name, key)
		return false
	})
}

// rootIdent returns the leftmost identifier of a selector/index/deref
// chain, or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
