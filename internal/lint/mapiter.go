package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapIter flags `range` over a map whose body performs an order-sensitive
// effect — appending to a slice declared outside the loop, sending
// messages (Send/Broadcast/Inject), or emitting output (fmt printers,
// Write* methods) — without the collected slice being sorted afterwards in
// the same function. Go randomizes map iteration order on purpose, so any
// slot assignment, message sequence, or report built this way differs from
// run to run even with a fixed seed. Order-independent bodies (folding
// into another map, computing a max) are not flagged, and the canonical
// "collect keys then sort" idiom is recognized and exempted.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "flag order-sensitive effects driven by nondeterministic map iteration",
	Run:  runMapIter,
}

// mapiterSendNames are method names that enqueue protocol messages.
var mapiterSendNames = map[string]bool{"Send": true, "Broadcast": true, "Inject": true}

// mapiterFmtNames are fmt functions whose call order is observable.
var mapiterFmtNames = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// mapiterWriteNames are writer methods whose call order is observable.
var mapiterWriteNames = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

func runMapIter(pass *Pass) error {
	for _, f := range pass.Files {
		walkWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(pass, rng, enclosingFuncBody(append(stack, n)))
			return true
		})
	}
	return nil
}

func checkMapRangeBody(pass *Pass, rng *ast.RangeStmt, funcBody *ast.BlockStmt) {
	over := exprPath(rng.X)
	if over == "" {
		over = "map"
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "append" && isBuiltin(pass, fun) && len(call.Args) > 0 {
				target, ok := call.Args[0].(*ast.Ident)
				if !ok {
					return true // appends into map/slice elements group per key
				}
				obj := pass.Info.Uses[target]
				if obj == nil || insideNode(obj.Pos(), rng) {
					return true // loop-local accumulator
				}
				if sortedAfter(pass, funcBody, rng.End(), obj) {
					return true // collect-then-sort idiom
				}
				pass.Reportf(call.Pos(),
					"appends to %s in iteration order of map %s, which is nondeterministic: sort %s afterwards or iterate sorted keys",
					target.Name, over, target.Name)
			}
		case *ast.SelectorExpr:
			name := fun.Sel.Name
			if path, pkgName, ok := pkgFuncRef(pass.Info, fun); ok {
				if path == "fmt" && mapiterFmtNames[pkgName] {
					pass.Reportf(call.Pos(),
						"emits output in iteration order of map %s, which is nondeterministic: iterate sorted keys", over)
				}
				return true
			}
			if mapiterSendNames[name] {
				pass.Reportf(call.Pos(),
					"sends messages in iteration order of map %s, which is nondeterministic: iterate sorted keys", over)
			} else if mapiterWriteNames[name] {
				pass.Reportf(call.Pos(),
					"writes output in iteration order of map %s, which is nondeterministic: iterate sorted keys", over)
			}
		}
		return true
	})
}

// insideNode reports whether pos falls within n's source range.
func insideNode(pos token.Pos, n ast.Node) bool {
	return pos >= n.Pos() && pos <= n.End()
}

// sortedAfter reports whether, somewhere after pos in the enclosing
// function, obj is passed (possibly wrapped) to a sorting call — sort.*,
// slices.Sort*, or any function whose name mentions sort.
func sortedAfter(pass *Pass, funcBody *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	if funcBody == nil {
		return false
	}
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if path, name, ok := pkgFuncRef(pass.Info, fun); ok {
			return path == "sort" || (path == "slices" && strings.HasPrefix(name, "Sort"))
		}
		return strings.Contains(strings.ToLower(fun.Sel.Name), "sort")
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fun.Name), "sort")
	}
	return false
}
