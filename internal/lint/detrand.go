package lint

import (
	"go/ast"
)

// DetRand forbids ambient nondeterminism in protocol code: top-level
// math/rand draws (which consume the process-global, possibly time-seeded
// source) and wall-clock time. Every random bit in a protocol must come
// from the node's injected *rand.Rand (env.Rand or an explicitly seeded
// rand.New(rand.NewSource(seed))), and every notion of time from the
// engine's virtual clock — otherwise schedules stop being reproducible per
// seed and the delay-preset robustness tests lose their meaning.
// Constructors (rand.New, rand.NewSource, rand.NewZipf, ...) stay allowed.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc:  "forbid global math/rand draws and wall-clock time in protocol code",
	Run:  runDetRand,
}

// detrandForbidden maps package path -> banned top-level name -> advice.
var detrandForbidden = map[string]map[string]string{
	"math/rand": {
		"Int": "", "Intn": "", "Int31": "", "Int31n": "", "Int63": "", "Int63n": "",
		"Uint32": "", "Uint64": "", "Float32": "", "Float64": "",
		"ExpFloat64": "", "NormFloat64": "", "Perm": "", "Shuffle": "",
		"Read": "", "Seed": "reseeding the global source hides the run's seed",
	},
	"math/rand/v2": {
		"Int": "", "IntN": "", "Int32": "", "Int32N": "", "Int64": "", "Int64N": "",
		"Uint": "", "UintN": "", "Uint32": "", "Uint32N": "", "Uint64": "", "Uint64N": "",
		"Float32": "", "Float64": "", "ExpFloat64": "", "NormFloat64": "",
		"N": "", "Perm": "", "Shuffle": "",
	},
	"time": {
		"Now":   "use the engine's virtual clock (env.Clock / Round)",
		"Since": "use the engine's virtual clock (env.Clock / Round)",
		"Until": "use the engine's virtual clock (env.Clock / Round)",
		"Sleep": "protocol progress must come from message delivery, not timing",
		"Tick":  "", "After": "", "AfterFunc": "", "NewTimer": "", "NewTicker": "",
	},
}

func runDetRand(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path, name, ok := pkgFuncRef(pass.Info, sel)
			if !ok {
				return true
			}
			banned, ok := detrandForbidden[path]
			if !ok {
				return true
			}
			advice, ok := banned[name]
			if !ok {
				return true
			}
			if advice == "" {
				advice = "draw from the node's injected *rand.Rand instead"
				if path == "time" {
					advice = "protocol code must not observe wall-clock time"
				}
			}
			pass.Reportf(sel.Pos(), "use of %s.%s in protocol code: %s", path, name, advice)
			return true
		})
	}
	return nil
}
