// Package lint is a small stdlib-only static-analysis framework (go/ast +
// go/parser + go/types) enforcing the determinism and goroutine-ownership
// invariants the simulator's guarantees rest on: reproducible schedules per
// seed, delay-preset robustness, and verifier soundness. The ownership
// analyzers share a flow-sensitive dataflow layer — a per-function CFG
// (cfg.go), an origin-lattice fixpoint with escape placements
// (dataflow.go), and cross-package function summaries (summary.go)
// computed at load time. It ships five analyzers:
//
//   - detrand: forbids ambient nondeterminism (global math/rand draws,
//     wall-clock time) in protocol packages — all randomness must flow
//     through a node's injected *rand.Rand;
//   - envowner: flags AsyncEnv/SyncEnv handles received from outside the
//     function that escape it — captured by go-statement closures, stored
//     into shared or global state, returned, sent, interface-boxed, or
//     retained by a callee (per its summary);
//   - mapiter: flags ranging over a map while appending to an outer slice,
//     sending messages, or emitting output — the classic source of
//     schedule nondeterminism — unless the collected slice is sorted
//     afterwards;
//   - msgshare: flags Send/Broadcast/Inject payloads that alias mutable
//     state (pointers, slices, maps) mutated after the send, including
//     aliases handed out by callees (getters returning views of sender
//     state, per their summaries);
//   - pooledlife: flags slab-allocated payload pointers stored into state
//     that outlives the send (fields, maps, logs, globals, returns, raw
//     channels) — slab slots are recycled between runs.
//
// Diagnostics are suppressed by an explicit, audited escape hatch:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the reported line or the line directly above it. The reason is
// mandatory, and a directive that suppresses nothing is itself reported
// when RunOptions.ReportUnused is set. The cmd/fdlsplint driver runs every
// analyzer over the module with unused reporting on and exits nonzero on
// findings.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-line description shown by the driver.
	Doc string
	// Run inspects the package via pass and reports findings.
	Run func(pass *Pass) error
}

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass carries one type-checked package through one analyzer run.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// Summaries resolves callee behavior (parameter escapes, result
	// aliasing) for every function the loader has summarized so far.
	Summaries *SummaryStore

	flows    *packageFlows
	analyzer string
	report   func(Diagnostic)
}

// flowFor returns the dataflow result of one function declaration or
// literal, computing the package's flows on demand when the pass was built
// without a loader (hand-assembled test passes).
func (p *Pass) flowFor(fn ast.Node) *funcFlow {
	if p.flows == nil {
		store := p.Summaries
		if store == nil {
			store = NewSummaryStore()
			p.Summaries = store
		}
		p.flows = computeFlows(p.Files, p.Info, store)
	}
	return p.flows.byNode[fn]
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.analyzer, Message: fmt.Sprintf(format, args...)})
}

// Analyzers is the full suite in deterministic order.
func Analyzers() []*Analyzer {
	return []*Analyzer{DetRand, EnvOwner, MapIter, MsgShare, PooledLife}
}

// RunOptions adjusts a Run over one package.
type RunOptions struct {
	// ReportUnused additionally reports //lint:ignore directives that
	// suppressed nothing (stale suppressions), for analyzers in the run's
	// set. Off by default: a partial run (-only) must not condemn
	// directives belonging to analyzers it skipped.
	ReportUnused bool
}

// Run applies the analyzers to pkg, filters suppressed findings through the
// package's //lint:ignore directives, and returns the survivors sorted by
// position. Malformed directives are themselves reported (analyzer "lint").
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunWith(pkg, analyzers, RunOptions{})
}

// RunWith is Run with options.
func RunWith(pkg *Package, analyzers []*Analyzer, opts RunOptions) ([]Diagnostic, error) {
	var diags []Diagnostic
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
		pass := &Pass{
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			Info:      pkg.Info,
			Summaries: pkg.summaries(),
			flows:     pkg.flows,
			analyzer:  a.Name,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: analyzer %s on %s: %w", a.Name, pkg.Path, err)
		}
	}
	dirs, bad := directives(pkg.Fset, pkg.Files)
	diags = append(diags, bad...)
	kept := diags[:0]
	for _, d := range diags {
		if !dirs.suppresses(pkg.Fset, d) {
			kept = append(kept, d)
		}
	}
	if opts.ReportUnused {
		kept = append(kept, dirs.unused(ran)...)
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Pos != kept[j].Pos {
			return kept[i].Pos < kept[j].Pos
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept, nil
}

// ---------------------------------------------------------------------------
// Shared type helpers.

// pkgFuncRef resolves sel as a reference to a package-level name (e.g.
// rand.Intn), returning the imported package path and the name.
func pkgFuncRef(info *types.Info, sel *ast.SelectorExpr) (path, name string, ok bool) {
	id, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// envPointerName returns the type name when t is a pointer to a named type
// called AsyncEnv or SyncEnv (the simulator's per-node handles), else "".
func envPointerName(t types.Type) string {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return ""
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return ""
	}
	if n := named.Obj().Name(); n == "AsyncEnv" || n == "SyncEnv" {
		return n
	}
	return ""
}

// isRefType reports whether t aliases underlying storage when copied:
// pointers, slices, and maps (the payload kinds msgshare cares about).
func isRefType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}

// exprPath flattens an lvalue-ish expression to a dotted access path:
// nd.know.know -> "nd.know.know", buf[i] -> "buf[]", *p -> "p". It returns
// "" for expressions that cannot name stable storage (calls, literals).
func exprPath(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		if base := exprPath(x.X); base != "" {
			return base + "." + x.Sel.Name
		}
	case *ast.IndexExpr:
		if base := exprPath(x.X); base != "" {
			return base + "[]"
		}
	case *ast.StarExpr:
		return exprPath(x.X)
	case *ast.ParenExpr:
		return exprPath(x.X)
	}
	return ""
}

// pathWithin reports whether a write to lhs mutates storage reachable from
// root: lhs extends root through a field or element access ("x" covers
// "x[]" and "x.f"), or equals it.
func pathWithin(lhs, root string) bool {
	if lhs == root {
		return true
	}
	return strings.HasPrefix(lhs, root+".") || strings.HasPrefix(lhs, root+"[")
}

// isBuiltin reports whether id resolves to a language builtin (append,
// len, ...) rather than a user-defined name shadowing it.
func isBuiltin(pass *Pass, id *ast.Ident) bool {
	_, ok := pass.Info.Uses[id].(*types.Builtin)
	return ok
}

// enclosingFuncBody returns the body of the innermost function declaration
// or literal in stack (a path of ancestors, outermost first).
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

// walkWithStack traverses the file like ast.Inspect but also hands fn the
// ancestor path (outermost first, not including n itself).
func walkWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false // not descending: Inspect sends no closing nil
		}
		stack = append(stack, n)
		return true
	})
}
