package lint

import (
	"go/ast"
	"go/types"
)

// PooledLife enforces the lifetime discipline of slab-allocated message
// payloads (internal/core's slab[T]). A pointer returned by slab.put is an
// arena handout: it is valid for the message in flight — handed to
// Send/Broadcast, embedded in another pooled message — but the arena is
// reset between runs, so a pooled pointer stored into state that outlives
// the send (a receiver field, a map or slice hanging off long-lived state,
// a package variable) or returned to the caller silently aliases a recycled
// slot: the retained "message" mutates when the slot is reused, the exact
// nondeterminism class the conformance suite can only catch after the fact.
//
// The analyzer tracks put results through the dataflow engine: locals,
// aliases, and composite payloads are followed flow-sensitively. Placing a
// pooled pointer into a fresh composite that is itself sent stays clean;
// the same composite stored into node state is flagged. Methods of the
// slab type itself are exempt — the arena may touch its own slots.
var PooledLife = &Analyzer{
	Name: "pooledlife",
	Doc:  "flag slab-pooled payload pointers retained past the send",
	Run:  runPooledLife,
}

func runPooledLife(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if slabReceiver(pass, fn) {
					return false // the arena's own methods manage their slots
				}
				checkPooledPlacements(pass, fn)
			case *ast.FuncLit:
				checkPooledPlacements(pass, fn)
			}
			return true
		})
	}
	return nil
}

// checkPooledPlacements flags every placement that retains a pooled pointer
// beyond the send in flight.
func checkPooledPlacements(pass *Pass, fn ast.Node) {
	ff := pass.flowFor(fn)
	if ff == nil {
		return
	}
	es, _ := ff.escapes(pass.Summaries)
	for i := range ff.placements {
		p := &ff.placements[i]
		if !hasPooledOrigin(p.origins) {
			continue
		}
		switch p.kind {
		case pReturn:
			pass.Reportf(p.val.Pos(),
				"pooled payload pointer returned: slab slots are recycled between runs; the caller would hold an aliasing view of the arena")
		case pStoreGlobal:
			pass.Reportf(p.val.Pos(),
				"pooled payload pointer stored in package-level state: slab slots are recycled between runs; copy the payload instead")
		case pSend:
			pass.Reportf(p.val.Pos(),
				"pooled payload pointer sent on a raw channel: the receiving goroutine outlives the send round; copy the payload instead")
		case pStore, pAppend, pCompositeElt, pCapture:
			if retainedTarget(p.target, es) {
				pass.Reportf(p.val.Pos(),
					"pooled payload pointer stored in state outliving the send: slab slots are recycled between runs and the retained pointer silently aliases the next occupant; copy the payload instead")
			}
		}
	}
}

// retainedTarget reports whether the container receiving the pooled pointer
// outlives the send: long-lived storage directly (reachable from the
// receiver, a parameter, or a package variable), or a fresh container that
// itself ends up retained (stored, returned, or assigned globally). A
// container that escapes only as a message — interface-converted payload or
// argument to a summarized callee like a nested slab.put — is the send in
// flight, not retention.
func retainedTarget(target valueSet, es *escapeSolution) bool {
	const retained = escStore | escGlobal | escReturn | escSend
	for o := range target {
		if outsideTarget(o) {
			return true
		}
		if es.byOrigin[o]&retained != 0 {
			return true
		}
	}
	return false
}

// hasPooledOrigin reports whether the value may be a slab.put result.
func hasPooledOrigin(s valueSet) bool {
	for o := range s {
		if o.kind == oCall && isSlabPut(o.callee) {
			return true
		}
	}
	return false
}

// isSlabPut matches the arena allocator: a method named put on a type
// named slab (any package — fixtures mirror internal/core's arena).
func isSlabPut(fn *types.Func) bool {
	if fn == nil || fn.Name() != "put" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return namedTypeName(sig.Recv().Type()) == "slab"
}

// slabReceiver reports whether fn is a method of the slab type.
func slabReceiver(pass *Pass, fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	tv, ok := pass.Info.Types[fn.Recv.List[0].Type]
	if !ok {
		return false
	}
	return namedTypeName(tv.Type) == "slab"
}

// namedTypeName returns the name of t's (pointer-dereferenced) named type.
func namedTypeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
