package lint

// Function summaries. For every function declaration the loader analyzes,
// the store records (a) which parameters and the receiver escape the callee
// — returned, stored, converted to an interface, sent, or captured — and
// (b) how each result relates to the arguments: freshly allocated, an alias
// of a parameter (optionally through a field path), or unknown. Summaries
// are computed bottom-up: the loader typechecks packages in dependency
// order, so by the time a package is summarized its imports' summaries are
// already in the store, and within a package the computation iterates to a
// fixpoint so intra-package call chains (constructor → helper → getter)
// resolve without declaration-order sensitivity.
//
// Consumers: envowner refines call-argument escapes ("does sendFlood leak
// the env it was handed?"), msgshare classifies payload-producing calls
// ("does table() alias receiver state or build a snapshot?"), and
// pooledlife recognizes arena handouts (result paths crossing an element
// boundary, like slab.put returning &s.chunk[i]).

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// paramRef names one parameter of a summarized function.
type paramRef struct {
	recv  bool
	index int
}

// aliasTerm says a result aliases storage reachable from one parameter.
// path is the access path below the parameter ("" = the parameter value
// itself, "table" = a field, "chunk[]" = an element). elem marks paths that
// cross an element boundary: the result is a handout of one slot of a
// container the callee owns (arena pattern), not the container itself.
type aliasTerm struct {
	ref  paramRef
	path string
	elem bool
}

// resultAlias describes one result of a summarized function.
type resultAlias struct {
	// fresh: every origin of the result is allocated inside the callee.
	fresh bool
	// unknown: at least one origin could not be resolved (unsummarized
	// callee, load from package state). Consumers must not assume fresh.
	unknown bool
	aliases []aliasTerm
}

// funcSummary is the interprocedural abstract of one function declaration.
type funcSummary struct {
	recvEscape  escMask
	paramEscape []escMask
	results     []resultAlias
}

// paramEscapeAt returns the escape mask of the parameter binding call
// argument i, folding variadic tails onto the last parameter.
func (s *funcSummary) paramEscapeAt(i int) escMask {
	if len(s.paramEscape) == 0 {
		return 0
	}
	if i >= len(s.paramEscape) {
		i = len(s.paramEscape) - 1
	}
	return s.paramEscape[i]
}

// key renders the summary for fixpoint-convergence comparison.
func (s *funcSummary) key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "r%d|", s.recvEscape)
	for _, m := range s.paramEscape {
		fmt.Fprintf(&b, "p%d|", m)
	}
	for _, r := range s.results {
		fmt.Fprintf(&b, "[f%v u%v", r.fresh, r.unknown)
		for _, a := range r.aliases {
			fmt.Fprintf(&b, " %v/%d/%s/%v", a.ref.recv, a.ref.index, a.path, a.elem)
		}
		b.WriteString("]")
	}
	return b.String()
}

// SummaryStore holds function summaries across packages. It is owned by the
// Loader and shared by every LoadDir call, which works because the caching
// importer preserves type identity: a *types.Func seen while summarizing
// package A is the same object when package B calls it. Lookups go through
// types.Func.Origin so generic instantiations share their origin's summary.
type SummaryStore struct {
	m map[*types.Func]*funcSummary
}

// NewSummaryStore returns an empty store.
func NewSummaryStore() *SummaryStore {
	return &SummaryStore{m: map[*types.Func]*funcSummary{}}
}

func (st *SummaryStore) lookup(fn *types.Func) *funcSummary {
	if st == nil || fn == nil {
		return nil
	}
	return st.m[fn.Origin()]
}

// maxSummaryRounds bounds the intra-package fixpoint. Call chains deeper
// than this between mutually recursive functions degrade to "unknown",
// never to "fresh" — the sound direction.
const maxSummaryRounds = 5

// maxAliasDepth bounds recursive alias substitution through call sites.
const maxAliasDepth = 4

// packageFlows is the dataflow layer of one loaded package: one funcFlow
// per function declaration and function literal, plus the shared store.
type packageFlows struct {
	store *SummaryStore
	info  *types.Info
	// decls in file order; lits in source order per file.
	decls  []*funcFlow
	lits   []*funcFlow
	byFn   map[*types.Func]*funcFlow
	byNode map[ast.Node]*funcFlow
}

// computeFlows analyzes every function in the package and computes
// summaries for the declarations, iterating the package to a fixpoint.
func computeFlows(files []*ast.File, info *types.Info, store *SummaryStore) *packageFlows {
	pf := &packageFlows{store: store, info: info, byFn: map[*types.Func]*funcFlow{}, byNode: map[ast.Node]*funcFlow{}}
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			ff := analyzeFunc(info, fd)
			if ff == nil {
				continue
			}
			pf.decls = append(pf.decls, ff)
			pf.byNode[fd] = ff
			if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
				pf.byFn[obj.Origin()] = ff
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				if ff := analyzeFunc(info, lit); ff != nil {
					pf.lits = append(pf.lits, ff)
					pf.byNode[lit] = ff
				}
			}
			return true
		})
	}
	for round := 0; round < maxSummaryRounds; round++ {
		changed := false
		for _, ff := range pf.decls {
			fd := ff.fn.(*ast.FuncDecl)
			obj, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sum := ff.summarize(store)
			prev := store.m[obj.Origin()]
			if prev == nil || prev.key() != sum.key() {
				store.m[obj.Origin()] = sum
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return pf
}

// summarize computes this function's summary under the current store.
func (ff *funcFlow) summarize(store *SummaryStore) *funcSummary {
	es, _ := ff.solveEscapes(store)
	sum := &funcSummary{paramEscape: make([]escMask, ff.sig.Params().Len())}
	if recv := ff.sig.Recv(); recv != nil {
		sum.recvEscape = es.byOrigin[ff.intern(originKey{kind: oParam, obj: recv})]
	}
	for i := 0; i < ff.sig.Params().Len(); i++ {
		p := ff.sig.Params().At(i)
		sum.paramEscape[i] = es.byOrigin[ff.intern(originKey{kind: oParam, obj: p})]
	}
	sum.results = ff.resultAliases(store)
	return sum
}

// resultAliases joins the alias classification of every return site, result
// by result. Functions without results get an empty slice.
func (ff *funcFlow) resultAliases(store *SummaryStore) []resultAlias {
	n := ff.sig.Results().Len()
	if n == 0 {
		return nil
	}
	out := make([]resultAlias, n)
	for i := range out {
		out[i].fresh = true // no return sites seen yet: join identity
	}
	ff.visitReturns(func(results []ast.Expr, st flowState) {
		if len(results) == n {
			for i, r := range results {
				out[i] = joinAlias(out[i], ff.aliasOf(ff.exprOrigins(r, st), st, store, maxAliasDepth))
			}
			return
		}
		if len(results) == 1 && n > 1 {
			// return f() forwarding a multi-result call: unknown per result.
			for i := range out {
				out[i] = joinAlias(out[i], resultAlias{unknown: true})
			}
			return
		}
		// Naked return: read the named result variables' state.
		for i := 0; i < n; i++ {
			rv := ff.sig.Results().At(i)
			if rv.Name() == "" || rv.Name() == "_" {
				out[i] = joinAlias(out[i], resultAlias{unknown: true})
				continue
			}
			if s, ok := st[rv]; ok {
				out[i] = joinAlias(out[i], ff.aliasOf(s, st, store, maxAliasDepth))
			}
			// Never assigned: zero value, stays fresh.
		}
	})
	for i := range out {
		sortAliases(out[i].aliases)
	}
	return out
}

// visitReturns walks every reachable block with its fixpoint in-state and
// calls fn at each return statement with the state as of that point.
func (ff *funcFlow) visitReturns(fn func(results []ast.Expr, st flowState)) {
	for _, b := range ff.graph.blocks {
		st, ok := ff.in[b]
		if !ok {
			continue
		}
		st = st.clone()
		for _, n := range b.nodes {
			if ret, ok := n.(*ast.ReturnStmt); ok {
				fn(ret.Results, st)
			}
			ff.transfer(n, st)
		}
	}
}

// aliasOf classifies a value's origins against the function's parameters,
// substituting callee summaries through call-site origins.
func (ff *funcFlow) aliasOf(origins valueSet, st flowState, store *SummaryStore, depth int) resultAlias {
	ra := resultAlias{fresh: true}
	for o := range origins {
		switch o.kind {
		case oFresh, oClosure:
			// allocated here: contributes nothing
		case oParam:
			if ref, ok := ff.paramRefOf(o.obj); ok {
				ra.aliases = append(ra.aliases, aliasTerm{ref: ref})
				ra.fresh = false
			} else {
				ra.fresh = false
				ra.unknown = true
			}
		case oUnknown:
			if o.obj != nil {
				if ref, ok := ff.paramRefOf(o.obj); ok {
					ra.aliases = append(ra.aliases, aliasTerm{
						ref: ref, path: o.path, elem: strings.Contains(o.path, "[]"),
					})
					ra.fresh = false
					continue
				}
			}
			ra.fresh = false
			ra.unknown = true
		case oCall:
			sub := ff.callAlias(o, st, store, depth)
			ra = joinAlias(ra, sub)
		}
	}
	return ra
}

// callAlias resolves a call-site origin through the callee's summary,
// mapping the callee's parameter aliases back onto our own arguments.
func (ff *funcFlow) callAlias(o *origin, st flowState, store *SummaryStore, depth int) resultAlias {
	if depth <= 0 {
		return resultAlias{unknown: true}
	}
	call, ok := o.site.(*ast.CallExpr)
	if !ok {
		return resultAlias{unknown: true}
	}
	sum := store.lookup(o.callee)
	if sum == nil || len(sum.results) == 0 {
		return resultAlias{unknown: true}
	}
	// Multi-result calls lose the result index in the origin; only
	// single-result callees resolve precisely.
	if len(sum.results) != 1 {
		return resultAlias{unknown: true}
	}
	src := sum.results[0]
	ra := resultAlias{fresh: true, unknown: src.unknown}
	if src.unknown {
		ra.fresh = false
	}
	for _, term := range src.aliases {
		target := callArgExpr(call, term.ref)
		if target == nil {
			ra.fresh = false
			ra.unknown = true
			continue
		}
		sub := ff.aliasOf(ff.exprOrigins(target, st), st, store, depth-1)
		ra.fresh = false
		ra.unknown = ra.unknown || sub.unknown
		for _, t := range sub.aliases {
			joined := joinPath(t.path, term.path)
			ra.aliases = append(ra.aliases, aliasTerm{
				ref:  t.ref,
				path: joined,
				elem: t.elem || term.elem || strings.Contains(joined, "[]"),
			})
		}
	}
	return ra
}

// callArgExpr maps a callee parameter reference to the argument expression
// at a call site (the receiver expression for method receivers).
func callArgExpr(call *ast.CallExpr, ref paramRef) ast.Expr {
	if ref.recv {
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			return sel.X
		}
		return nil
	}
	if ref.index < len(call.Args) {
		return call.Args[ref.index]
	}
	return nil
}

// paramRefOf maps a variable to its parameter slot in this function.
func (ff *funcFlow) paramRefOf(v *types.Var) (paramRef, bool) {
	if recv := ff.sig.Recv(); recv != nil && v == recv {
		return paramRef{recv: true}, true
	}
	for i := 0; i < ff.sig.Params().Len(); i++ {
		if ff.sig.Params().At(i) == v {
			return paramRef{index: i}, true
		}
	}
	return paramRef{}, false
}

// joinPath concatenates an argument-side access path with the callee's
// result path ("know" + "table" = "know.table").
func joinPath(outer, inner string) string {
	switch {
	case outer == "":
		return inner
	case inner == "":
		return outer
	case strings.HasPrefix(inner, "["):
		return outer + inner
	default:
		return outer + "." + inner
	}
}

// joinAlias merges the classifications of two control-flow paths.
func joinAlias(a, b resultAlias) resultAlias {
	out := resultAlias{
		fresh:   a.fresh && b.fresh,
		unknown: a.unknown || b.unknown,
	}
	out.aliases = append(out.aliases, a.aliases...)
	for _, t := range b.aliases {
		dup := false
		for _, u := range out.aliases {
			if u == t {
				dup = true
				break
			}
		}
		if !dup {
			out.aliases = append(out.aliases, t)
		}
	}
	return out
}

func sortAliases(ts []aliasTerm) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].ref.recv != ts[j].ref.recv {
			return ts[i].ref.recv
		}
		if ts[i].ref.index != ts[j].ref.index {
			return ts[i].ref.index < ts[j].ref.index
		}
		return ts[i].path < ts[j].path
	})
}
