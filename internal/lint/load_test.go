package lint

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestLoaderCachesTypecheckedPackages pins the cross-directory import
// cache: a package typechecked by LoadDir must be reused — same
// *types.Package — when a later directory imports it, instead of being
// re-typechecked from source by the importer.
func TestLoaderCachesTypecheckedPackages(t *testing.T) {
	l := NewLoader()
	dep, err := l.LoadDir("../graph", "fdlsp/internal/graph")
	if err != nil {
		t.Fatal(err)
	}
	if !l.Cached("fdlsp/internal/graph") {
		t.Fatal("LoadDir did not seed the import cache")
	}
	pkg, err := l.LoadDir("../coloring", "fdlsp/internal/coloring")
	if err != nil {
		t.Fatal(err)
	}
	for _, imp := range pkg.Types.Imports() {
		if imp.Path() == "fdlsp/internal/graph" {
			if imp != dep.Types {
				t.Fatal("import resolved to a re-typechecked copy, not the cached package")
			}
			return
		}
	}
	t.Fatal("coloring no longer imports graph; pick another fixture pair")
}

// TestLoaderTestInclusiveLoadsNotCached: packages checked with their
// _test.go files must not be served to importers (test-only symbols).
func TestLoaderTestInclusiveLoadsNotCached(t *testing.T) {
	l := NewLoader()
	l.IncludeTests = true
	if _, err := l.LoadDir("../graph", "fdlsp/internal/graph"); err != nil {
		t.Fatal(err)
	}
	if l.Cached("fdlsp/internal/graph") {
		t.Fatal("test-inclusive load leaked into the import cache")
	}
}

// writeTree materializes a file tree under a fresh temp dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestLoadDirSkipsConstrainedFiles: files excluded by build constraints —
// `//go:build ignore` helpers, contradictory ("cyclic-looking")
// expressions, and inactive `// +build` lines — must be dropped before
// parsing. The skipped files deliberately declare other package names, so
// any failure to skip breaks the typecheck loudly.
func TestLoadDirSkipsConstrainedFiles(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"a.go":    "package p\n\nconst A = 1\n",
		"gen.go":  "//go:build ignore\n\npackage main\n\nfunc main() {}\n",
		"cyc.go":  "//go:build fdlsptag && !fdlsptag\n\npackage q\n\nconst B = 2\n",
		"plus.go": "// +build !gc\n\npackage r\n",
	})
	pkg, err := NewLoader().LoadDir(dir, "example.com/p")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("want 1 buildable file, got %d", len(pkg.Files))
	}
	if pkg.Types.Scope().Lookup("A") == nil {
		t.Error("constant A from the buildable file is missing")
	}
}

// TestLoadDirKeepsSatisfiedConstraints: constraints the loader's
// environment satisfies (gc toolchain, go1.x floors, host GOOS) must not
// exclude the file.
func TestLoadDirKeepsSatisfiedConstraints(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"a.go": "//go:build gc && go1.18\n\npackage p\n\nconst A = 1\n",
		"b.go": "//go:build " + runtime.GOOS + "\n\npackage p\n\nconst B = 2\n",
	})
	pkg, err := NewLoader().LoadDir(dir, "example.com/p")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if len(pkg.Files) != 2 {
		t.Fatalf("want 2 buildable files, got %d", len(pkg.Files))
	}
}

// TestLoadDirAllFilesConstrainedOut: a directory whose every file is
// constrained away is an explicit error, not an empty package.
func TestLoadDirAllFilesConstrainedOut(t *testing.T) {
	dir := writeTree(t, map[string]string{
		"gen.go": "//go:build ignore\n\npackage main\n\nfunc main() {}\n",
	})
	_, err := NewLoader().LoadDir(dir, "example.com/p")
	if err == nil || !strings.Contains(err.Error(), "no buildable Go files") {
		t.Fatalf("want 'no buildable Go files' error, got %v", err)
	}
}

// TestExpandPatternsSkips: the recursive walk must pass over vendor,
// testdata, hidden, and underscore directories, while explicitly named
// directories are honored even inside those trees — and a missing explicit
// directory is an error, not a silent no-op.
func TestExpandPatternsSkips(t *testing.T) {
	root := writeTree(t, map[string]string{
		"a/a.go":              "package a\n",
		"b/b.go":              "package b\n",
		"vendor/dep/dep.go":   "package dep\n",
		"b/testdata/fix/f.go": "package fix\n",
		"b/testdata/plain.go": "package plain\n",
		".hidden/h.go":        "package h\n",
		"_scratch/s.go":       "package s\n",
		"c/onlytest_test.go":  "package c\n",
		"d/sub/vendor/v/v.go": "package v\n",
		"d/sub/real/real.go":  "package real\n",
	})
	dirs, err := ExpandPatterns(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var rel []string
	for _, d := range dirs {
		r, err := filepath.Rel(root, d)
		if err != nil {
			t.Fatal(err)
		}
		rel = append(rel, filepath.ToSlash(r))
	}
	want := []string{"a", "b", "d/sub/real"}
	if strings.Join(rel, ",") != strings.Join(want, ",") {
		t.Errorf("recursive expansion = %v, want %v", rel, want)
	}

	explicit, err := ExpandPatterns(root, []string{"vendor/dep"})
	if err != nil {
		t.Fatalf("explicitly named vendored dir should load: %v", err)
	}
	if len(explicit) != 1 {
		t.Errorf("want the one explicit dir, got %v", explicit)
	}

	if _, err := ExpandPatterns(root, []string{"nosuch"}); err == nil {
		t.Error("missing explicit directory should be an error")
	}
	if _, err := ExpandPatterns(root, []string{"c"}); err == nil {
		t.Error("explicit directory with only test files should be an error")
	}
}

// TestFindModule walks up from a nested directory to the enclosing go.mod.
func TestFindModule(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod":   "module example.com/mod\n\ngo 1.24\n",
		"x/y/y.go": "package y\n",
	})
	gotRoot, gotModule, err := FindModule(filepath.Join(root, "x", "y"))
	if err != nil {
		t.Fatal(err)
	}
	if gotRoot != root || gotModule != "example.com/mod" {
		t.Errorf("FindModule = (%q, %q), want (%q, %q)", gotRoot, gotModule, root, "example.com/mod")
	}
}

// TestDependencyOrder: module-local imports come before their importers so
// the loader's typecheck cache is hit instead of re-deriving packages.
func TestDependencyOrder(t *testing.T) {
	root := writeTree(t, map[string]string{
		"app/app.go":   "package app\n\nimport (\n\t_ \"example.com/mod/base\"\n\t_ \"example.com/mod/mid\"\n)\n",
		"base/base.go": "package base\n",
		"mid/mid.go":   "package mid\n\nimport _ \"example.com/mod/base\"\n",
	})
	dirs := []string{
		filepath.Join(root, "app"),
		filepath.Join(root, "base"),
		filepath.Join(root, "mid"),
	}
	paths := map[string]string{
		dirs[0]: "example.com/mod/app",
		dirs[1]: "example.com/mod/base",
		dirs[2]: "example.com/mod/mid",
	}
	ordered := DependencyOrder(dirs, paths)
	idx := map[string]int{}
	for i, d := range ordered {
		r, _ := filepath.Rel(root, d)
		idx[filepath.ToSlash(r)] = i
	}
	if !(idx["base"] < idx["mid"] && idx["mid"] < idx["app"]) {
		t.Errorf("dependency order = %v, want base < mid < app", ordered)
	}
}
