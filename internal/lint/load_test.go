package lint

import "testing"

// TestLoaderCachesTypecheckedPackages pins the cross-directory import
// cache: a package typechecked by LoadDir must be reused — same
// *types.Package — when a later directory imports it, instead of being
// re-typechecked from source by the importer.
func TestLoaderCachesTypecheckedPackages(t *testing.T) {
	l := NewLoader()
	dep, err := l.LoadDir("../graph", "fdlsp/internal/graph")
	if err != nil {
		t.Fatal(err)
	}
	if !l.Cached("fdlsp/internal/graph") {
		t.Fatal("LoadDir did not seed the import cache")
	}
	pkg, err := l.LoadDir("../coloring", "fdlsp/internal/coloring")
	if err != nil {
		t.Fatal(err)
	}
	for _, imp := range pkg.Types.Imports() {
		if imp.Path() == "fdlsp/internal/graph" {
			if imp != dep.Types {
				t.Fatal("import resolved to a re-typechecked copy, not the cached package")
			}
			return
		}
	}
	t.Fatal("coloring no longer imports graph; pick another fixture pair")
}

// TestLoaderTestInclusiveLoadsNotCached: packages checked with their
// _test.go files must not be served to importers (test-only symbols).
func TestLoaderTestInclusiveLoadsNotCached(t *testing.T) {
	l := NewLoader()
	l.IncludeTests = true
	if _, err := l.LoadDir("../graph", "fdlsp/internal/graph"); err != nil {
		t.Fatal(err)
	}
	if l.Cached("fdlsp/internal/graph") {
		t.Fatal("test-inclusive load leaked into the import cache")
	}
}
