package coloring

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"fdlsp/internal/graph"
)

// referenceStabilize is the pre-extraction soak implementation: identical
// rule, but the usable fraction re-audited from scratch every round with
// UsableFraction. Stabilize must match it exactly — same rounds, same
// minUsable bits, same final schedule — which is the equivalence assertion
// for the incremental usable-count tracker.
func referenceStabilize(g *graph.Graph, as Assignment, dirty map[graph.Arc]bool) (rounds int, minUsable float64, err error) {
	minUsable = 1
	if len(dirty) == 0 {
		return 0, minUsable, nil
	}
	work := make([]graph.Arc, 0, len(dirty))
	for a := range dirty {
		work = append(work, a)
	}
	sort.Slice(work, func(i, j int) bool { return less(work[i], work[j]) })

	budget := 2*len(work) + 8
	for {
		live := work[:0]
		for _, a := range work {
			if !dirty[a] {
				continue
			}
			if arcDirty(g, as, a) {
				live = append(live, a)
			} else {
				dirty[a] = false
			}
		}
		work = live
		if len(work) == 0 {
			return rounds, minUsable, nil
		}
		if rounds >= budget {
			return rounds, minUsable, fmt.Errorf("reference: exceeded %d rounds", budget)
		}
		if u := UsableFraction(g, as); u < minUsable {
			minUsable = u
		}
		rounds++
		actors := make([]graph.Arc, 0, len(work))
		for _, a := range work {
			if actsThisRound(g, a, dirty) {
				actors = append(actors, a)
			}
		}
		for _, a := range actors {
			delete(as, a)
			AssignGreedyLocal(g, as, []graph.Arc{a})
			dirty[a] = false
		}
	}
}

// perturb jams or clears a random subset of arcs and returns the dirty set
// covering every violation it introduced (the perturbed arcs plus their
// clashing partners, via the incremental audit).
func perturb(g *graph.Graph, as Assignment, rng *rand.Rand) map[graph.Arc]bool {
	arcs := g.ArcsView()
	dirty := make(map[graph.Arc]bool)
	var touched []graph.Arc
	for i := 0; i < len(arcs)/3+1; i++ {
		a := arcs[rng.Intn(len(arcs))]
		if rng.Intn(2) == 0 {
			delete(as, a)
		} else {
			as[a] = 1 + rng.Intn(3)
		}
		touched = append(touched, a)
		dirty[a] = true
	}
	for _, v := range AuditArcs(g, as, touched) {
		dirty[v.A] = true
		dirty[v.B] = true
	}
	return dirty
}

func cloneDirty(d map[graph.Arc]bool) map[graph.Arc]bool {
	c := make(map[graph.Arc]bool, len(d))
	for k, v := range d {
		c[k] = v
	}
	return c
}

// TestStabilizeMatchesFullAuditReference pins the incremental usable-count
// tracker to the full per-round audit: across random graphs and
// perturbations both implementations must agree on rounds, the exact
// minUsable float, and the repaired schedule.
func TestStabilizeMatchesFullAuditReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 8 + rng.Intn(24)
		m := n + rng.Intn(2*n)
		g := graph.ConnectedGNM(n, m, rng)
		as := Greedy(g, nil)
		dirty := perturb(g, as, rng)

		asRef := as.Clone()
		rounds, minU, err := Stabilize(g, as, cloneDirty(dirty))
		roundsRef, minURef, errRef := referenceStabilize(g, asRef, cloneDirty(dirty))
		if (err == nil) != (errRef == nil) {
			t.Fatalf("trial %d: error mismatch: %v vs %v", trial, err, errRef)
		}
		if rounds != roundsRef {
			t.Fatalf("trial %d: rounds %d, reference %d", trial, rounds, roundsRef)
		}
		if minU != minURef {
			t.Fatalf("trial %d: minUsable %v, reference %v", trial, minU, minURef)
		}
		if !reflect.DeepEqual(as, asRef) {
			t.Fatalf("trial %d: repaired schedules diverge", trial)
		}
		if viols := Verify(g, as); len(viols) != 0 {
			t.Fatalf("trial %d: %d residual violations after repair", trial, len(viols))
		}
	}
}

// TestUsableTrackerMatchesUsableArcs drives the tracker through random
// recolorings and asserts its running count equals a fresh UsableArcs audit
// after every step.
func TestUsableTrackerMatchesUsableArcs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := graph.ConnectedGNM(20, 45, rng)
	as := Greedy(g, nil)
	// A complete greedy schedule has no unusable arcs, so the empty seed is
	// the exact sparse state to start from.
	ut := newUsableTracker(g, as, nil)
	arcs := g.ArcsView()
	for step := 0; step < 300; step++ {
		a := arcs[rng.Intn(len(arcs))]
		switch rng.Intn(3) {
		case 0:
			delete(as, a)
		case 1:
			as[a] = 1 + rng.Intn(4)
		default:
			delete(as, a)
			AssignGreedyLocal(g, as, []graph.Arc{a})
		}
		// Incremental maintenance: the changed arc and its conflict set.
		ut.recheck(a)
		for _, b := range ConflictingArcs(g, a) {
			ut.recheck(b)
		}
		wantUsable, wantTotal := UsableArcs(g, as)
		if ut.usableCount() != wantUsable || ut.total != wantTotal {
			t.Fatalf("step %d: tracker %d/%d, full audit %d/%d",
				step, ut.usableCount(), ut.total, wantUsable, wantTotal)
		}
	}
}

// TestStabilizeEmptyDirty pins the trivial path: nothing dirty, no rounds,
// fully usable.
func TestStabilizeEmptyDirty(t *testing.T) {
	g := graph.Path(4)
	as := Greedy(g, nil)
	rounds, minU, err := Stabilize(g, as, map[graph.Arc]bool{})
	if err != nil || rounds != 0 || minU != 1 {
		t.Fatalf("got rounds=%d minUsable=%v err=%v, want 0, 1, nil", rounds, minU, err)
	}
}
