package coloring

import "fdlsp/internal/graph"

// AuditArcs checks just the given arcs against the schedule: each is
// reported uncolored (a Violation with B == A and Color None) or checked for
// a color clash against its distance-2 conflict set from the warm per-graph
// cache. Each violated pair is reported once, ordered (smaller arc first),
// in a deterministic order. This is the incremental counterpart of Verify:
// auditing the dirty arcs after a perturbation costs O(|dirty|·Δ²) on the
// cached conflict sets instead of re-verifying the whole schedule, which is
// what lets a churn soak probe residual conflicts every repair round.
//
// Soundness of dirty-set auditing: a topology change can only create a new
// violated pair if at least one member's conflict set changed, and a
// recoloring only if a member was recolored — so auditing the changed and
// recolored arcs (and trusting the prior schedule for the rest) sees every
// violation introduced since the schedule was last clean.
func AuditArcs(g *graph.Graph, as Assignment, arcs []graph.Arc) []Violation {
	var viols []Violation
	seen := make(map[Violation]bool)
	for _, a := range arcs {
		c := as[a]
		if c == None {
			v := Violation{A: a, B: a, Color: None}
			if !seen[v] {
				seen[v] = true
				viols = append(viols, v)
			}
			continue
		}
		for _, b := range ConflictingArcs(g, a) {
			if as[b] != c {
				continue
			}
			v := Violation{A: a, B: b, Color: c}
			if less(b, a) {
				v.A, v.B = b, a
			}
			if !seen[v] {
				seen[v] = true
				viols = append(viols, v)
			}
		}
	}
	return viols
}

// UsableArcs counts the arcs of g whose slot can actually fire under as: the
// arc is colored and no conflicting arc shares its color. During repair this
// is the live capacity of the TDMA frame — a conflicting pair jams both
// transmissions, an uncolored arc has no slot at all — and usable/total is
// the fraction-of-frame-usable metric the soak driver tracks while the
// schedule heals. Runs on the warm conflict cache: O(m·Δ²), no allocation
// beyond the cache itself.
func UsableArcs(g *graph.Graph, as Assignment) (usable, total int) {
	arcs := g.ArcsView()
	total = len(arcs)
	for _, a := range arcs {
		c := as[a]
		if c == None {
			continue
		}
		ok := true
		for _, b := range ConflictingArcs(g, a) {
			if as[b] == c {
				ok = false
				break
			}
		}
		if ok {
			usable++
		}
	}
	return usable, total
}

// UsableFraction returns UsableArcs as a ratio in [0,1]; an empty graph
// counts as fully usable (there is nothing to schedule).
func UsableFraction(g *graph.Graph, as Assignment) float64 {
	usable, total := UsableArcs(g, as)
	if total == 0 {
		return 1
	}
	return float64(usable) / float64(total)
}

// less orders arcs lexicographically by (From, To).
func less(a, b graph.Arc) bool {
	if a.From != b.From {
		return a.From < b.From
	}
	return a.To < b.To
}
