package coloring

import (
	"math/rand"
	"reflect"
	"testing"

	"fdlsp/internal/graph"
)

// TestConflictCachePatchMatchesRebuild drives a random mutation stream
// through a warm conflict cache and, after every flip, compares each live
// arc's patched conflict row against a cold rebuild on an identical graph.
// This is the package-local half of the conformance patch-vs-rebuild
// oracle.
func TestConflictCachePatchMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const n = 14
	g := graph.GNM(n, 24, rng)
	// Warm both topology and conflict caches so mutations take the patch
	// path from the first flip.
	for _, a := range g.ArcsView() {
		_ = ConflictingArcs(g, a)
	}

	for step := 0; step < 300; step++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if g.HasEdge(u, v) {
			g.RemoveEdge(u, v)
		} else {
			g.AddEdge(u, v)
		}

		ref := g.Clone() // cold caches: rows computed from scratch
		refArcs := ref.ArcsView()
		gotArcs := g.ArcsView()
		if !reflect.DeepEqual(gotArcs, refArcs) {
			t.Fatalf("step %d: arc sets diverge", step)
		}
		for _, a := range gotArcs {
			got := ConflictingArcs(g, a)
			want := ConflictingArcs(ref, a)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("step %d: conflict row of %v diverges\n patched: %v\n rebuilt: %v",
					step, a, got, want)
			}
		}
	}

	st := CacheStats(g)
	if st.Builds != 1 {
		t.Fatalf("cache rebuilt %d times across a patched mutation stream, want 1", st.Builds)
	}
	if st.Patches == 0 || st.PatchedArcs == 0 {
		t.Fatalf("no patches recorded: %+v", st)
	}
}

// TestConflictCacheBatchedSync: k flips between reads cost one patch, not k.
func TestConflictCacheBatchedSync(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.ConnectedGNM(10, 14, rng)
	_ = ConflictingArcs(g, g.ArcsView()[0])
	before := CacheStats(g)

	g.AddEdge(0, 5)
	g.AddEdge(1, 6)
	g.RemoveEdge(0, 5)
	_ = ConflictingArcs(g, g.ArcsView()[0])

	after := CacheStats(g)
	if d := after.Patches - before.Patches; d != 1 {
		t.Fatalf("3-flip batch cost %d patches, want 1", d)
	}
	if after.Builds != before.Builds {
		t.Fatalf("batch forced a rebuild")
	}
}

// TestConflictCacheRebuildsAfterJournalTruncation: a consumer too far behind
// the bounded journal falls back to a full rebuild and is correct again.
func TestConflictCacheRebuildsAfterJournalTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := graph.ConnectedGNM(8, 10, rng)
	_ = ConflictingArcs(g, g.ArcsView()[0])
	before := CacheStats(g)

	// Far more unread flips than the journal retains.
	for i := 0; i < 1500; i++ {
		if g.HasEdge(0, 5) {
			g.RemoveEdge(0, 5)
		} else {
			g.AddEdge(0, 5)
		}
	}
	for _, a := range g.ArcsView() {
		got := ConflictingArcs(g, a)
		want := appendConflicts(g, a, nil)
		if !reflect.DeepEqual(append([]graph.Arc{}, got...), want) {
			t.Fatalf("row of %v wrong after truncation fallback", a)
		}
	}
	after := CacheStats(g)
	if after.Builds != before.Builds+1 {
		t.Fatalf("truncated journal should cost exactly one rebuild: %+v -> %+v", before, after)
	}
}
