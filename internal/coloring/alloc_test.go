package coloring

import (
	"math/rand"
	"testing"

	"fdlsp/internal/graph"
)

// TestConflictingArcsWarmCacheAllocFree pins the distance-2 conflict cache:
// once the per-graph cache is built, ConflictingArcs must answer every query
// by slicing the shared flat arena — zero allocations — instead of
// recomputing the conflict set.
func TestConflictingArcsWarmCacheAllocFree(t *testing.T) {
	g := graph.ConnectedGNM(48, 144, rand.New(rand.NewSource(7)))
	arcs := g.ArcsView()
	ConflictingArcs(g, arcs[0]) // build the cache
	avg := testing.AllocsPerRun(20, func() {
		for _, a := range arcs {
			if len(ConflictingArcs(g, a)) == 0 {
				t.Fatal("empty conflict set on a connected graph")
			}
		}
	})
	if avg != 0 {
		t.Errorf("warm-cache ConflictingArcs allocates %.1f per sweep, want 0", avg)
	}
}

// TestGreedyAllocsBounded pins the coloring hot path end to end: greedy
// coloring over a warm cache allocates only the assignment map and the
// occasional pooled occupancy buffer, nothing per arc per query.
func TestGreedyAllocsBounded(t *testing.T) {
	g := graph.ConnectedGNM(48, 144, rand.New(rand.NewSource(7)))
	Greedy(g, nil) // warm cache and pool
	arcs := float64(2 * g.M())
	avg := testing.AllocsPerRun(10, func() { Greedy(g, nil) })
	// The assignment map dominates; the old per-call conflict set rebuild
	// cost several allocations per arc.
	if avg > 2*arcs {
		t.Errorf("Greedy allocates %.0f for %d arcs — conflict caching regressed", avg, 2*g.M())
	}
}
