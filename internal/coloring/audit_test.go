package coloring

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"fdlsp/internal/graph"
)

// normalize sorts violations and orders each pair for set comparison.
func normalize(viols []Violation) []Violation {
	out := make([]Violation, 0, len(viols))
	for _, v := range viols {
		if less(v.B, v.A) {
			v.A, v.B = v.B, v.A
		}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.A != b.A {
			return less(a.A, b.A)
		}
		if a.B != b.B {
			return less(a.B, b.B)
		}
		return a.Color < b.Color
	})
	keep := out[:0]
	for i, v := range out {
		if i == 0 || v != out[i-1] {
			keep = append(keep, v)
		}
	}
	return keep
}

func TestAuditArcsMatchesVerifyOnFullArcSet(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		g := graph.GNM(24, 50, rng)
		as := Greedy(g, nil)
		// Corrupt the schedule: clobber some colors, erase others.
		for _, a := range g.ArcsView() {
			switch rng.Intn(6) {
			case 0:
				as[a] = 1 + rng.Intn(3)
			case 1:
				delete(as, a)
			}
		}
		want := normalize(Verify(g, as))
		got := normalize(AuditArcs(g, as, g.Arcs()))
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d: audit and verify disagree:\nverify: %v\naudit:  %v",
				trial, want, got)
		}
	}
}

func TestAuditArcsDirtySubsetFindsLocalViolations(t *testing.T) {
	g := graph.Path(4)
	// All-distinct colors: trivially valid, and jamming one pair introduces
	// exactly one clash.
	as := Assignment{}
	for i, arc := range g.Arcs() {
		as[arc] = i + 1
	}
	if len(Verify(g, as)) != 0 {
		t.Fatal("distinct-color schedule invalid")
	}
	a := graph.Arc{From: 0, To: 1}
	b := graph.Arc{From: 2, To: 3}
	as[a] = as[b] // introduce one clash
	viols := AuditArcs(g, as, []graph.Arc{a})
	if len(viols) != 1 {
		t.Fatalf("audit of the dirty arc found %v, want exactly the new pair", viols)
	}
	if v := viols[0]; v.A != a || v.B != b || v.Color != as[a] {
		t.Errorf("violation = %v, want {%v %v %d}", v, a, b, as[a])
	}
	// Auditing both members must not double-report the pair.
	viols = AuditArcs(g, as, []graph.Arc{a, b})
	if len(viols) != 1 {
		t.Errorf("pair double-reported: %v", viols)
	}
}

func TestUsableArcs(t *testing.T) {
	g := graph.Path(4)
	as := Assignment{}
	for i, arc := range g.Arcs() {
		as[arc] = i + 1
	}
	usable, total := UsableArcs(g, as)
	if usable != total || total != 6 {
		t.Fatalf("clean schedule: usable=%d total=%d, want 6/6", usable, total)
	}
	if f := UsableFraction(g, as); f != 1 {
		t.Errorf("clean fraction = %v, want 1", f)
	}

	// Jam one pair: both members become unusable, the rest keep their slots.
	a := graph.Arc{From: 0, To: 1}
	b := graph.Arc{From: 2, To: 3}
	as[a] = as[b]
	usable, total = UsableArcs(g, as)
	if usable != 4 || total != 6 {
		t.Errorf("jammed pair: usable=%d total=%d, want 4/6", usable, total)
	}

	// An uncolored arc has no slot at all.
	delete(as, a)
	usable, _ = UsableArcs(g, as)
	if usable != 5 {
		t.Errorf("after uncoloring the jammed arc: usable=%d, want 5", usable)
	}

	empty := graph.New(3)
	if f := UsableFraction(empty, Assignment{}); f != 1 {
		t.Errorf("empty graph fraction = %v, want 1", f)
	}
}
