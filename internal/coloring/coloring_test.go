package coloring

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fdlsp/internal/graph"
)

func arcsOf(g *graph.Graph) []graph.Arc { return g.Arcs() }

func TestConflictSharedEndpoints(t *testing.T) {
	g := graph.Path(4) // 0-1-2-3
	cases := []struct {
		a, b graph.Arc
		want bool
	}{
		{graph.Arc{From: 0, To: 1}, graph.Arc{From: 0, To: 1}, false}, // identity
		{graph.Arc{From: 0, To: 1}, graph.Arc{From: 1, To: 0}, true},  // opposite arcs
		{graph.Arc{From: 0, To: 1}, graph.Arc{From: 1, To: 2}, true},  // consecutive
		{graph.Arc{From: 0, To: 1}, graph.Arc{From: 2, To: 1}, true},  // same head
		{graph.Arc{From: 1, To: 0}, graph.Arc{From: 1, To: 2}, true},  // same tail
	}
	for _, tc := range cases {
		if got := Conflict(g, tc.a, tc.b); got != tc.want {
			t.Errorf("Conflict(%v,%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestConflictHiddenTerminal(t *testing.T) {
	// Figure 1/2 of the paper: path u-v-w-x = 0-1-2-3.
	g := graph.Path(4)
	// (0,1) and (2,3): transmitter 2 is adjacent to receiver 1 → conflict.
	if !Conflict(g, graph.Arc{From: 0, To: 1}, graph.Arc{From: 2, To: 3}) {
		t.Error("hidden terminal not detected")
	}
	// (1,0) and (2,3): receivers 0 and 3, transmitters 1,2 adjacent — but a
	// transmitter next to a transmitter is fine; 2 is not adjacent to 0.
	if Conflict(g, graph.Arc{From: 1, To: 0}, graph.Arc{From: 2, To: 3}) {
		t.Error("false positive: adjacent transmitters are allowed")
	}
	// (0,1) and (3,2): receivers 1,2 adjacent — two receivers are fine;
	// transmitter 3 not adjacent to receiver 1, transmitter 0 not adjacent
	// to receiver 2.
	if Conflict(g, graph.Arc{From: 0, To: 1}, graph.Arc{From: 3, To: 2}) {
		t.Error("false positive: adjacent receivers are allowed")
	}
	// Distance-3 arcs never conflict: extend the path.
	g5 := graph.Path(6)
	if Conflict(g5, graph.Arc{From: 0, To: 1}, graph.Arc{From: 4, To: 5}) {
		t.Error("distant arcs conflict")
	}
}

func TestConflictSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		g := graph.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		arcs := arcsOf(g)
		if len(arcs) == 0 {
			return true
		}
		a := arcs[rng.Intn(len(arcs))]
		b := arcs[rng.Intn(len(arcs))]
		return Conflict(g, a, b) == Conflict(g, b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestConflictingArcsMatchesPredicate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(12)
		g := graph.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		arcs := arcsOf(g)
		for _, a := range arcs {
			set := map[graph.Arc]bool{}
			for _, b := range ConflictingArcs(g, a) {
				set[b] = true
			}
			for _, b := range arcs {
				if want := Conflict(g, a, b); want != set[b] {
					t.Fatalf("trial %d: arc %v vs %v: predicate %v, enumeration %v", trial, a, b, want, set[b])
				}
			}
		}
	}
}

func TestConflictingArcsBoundedByLemma6(t *testing.T) {
	// |conflicting arcs| <= 2Δ² - 1.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(15)
		g := graph.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		d := g.MaxDegree()
		for _, a := range arcsOf(g) {
			if got := len(ConflictingArcs(g, a)); got > 2*d*d-1 {
				t.Fatalf("arc %v has %d conflicts > 2Δ²-1 = %d", a, got, 2*d*d-1)
			}
		}
	}
}

func TestAssignmentBasics(t *testing.T) {
	g := graph.Path(3)
	as := NewAssignment(g)
	if as.NumColors() != 0 || as.Complete(g) {
		t.Error("fresh assignment state")
	}
	a := graph.Arc{From: 0, To: 1}
	as.Set(a, 3)
	if as.Color(a) != 3 || as.NumColors() != 3 {
		t.Error("set/get")
	}
	cl := as.Clone()
	cl.Set(graph.Arc{From: 1, To: 0}, 1)
	if as.Color(graph.Arc{From: 1, To: 0}) != None {
		t.Error("clone aliases original")
	}
}

func TestSetInvalidColorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewAssignment(graph.Path(2)).Set(graph.Arc{From: 0, To: 1}, 0)
}

func TestVerifyCatchesViolations(t *testing.T) {
	g := graph.Path(3)
	as := NewAssignment(g)
	// Deliberately conflicting: opposite arcs share a color.
	as.Set(graph.Arc{From: 0, To: 1}, 1)
	as.Set(graph.Arc{From: 1, To: 0}, 1)
	as.Set(graph.Arc{From: 1, To: 2}, 2)
	// Leave (2,1) uncolored.
	viols := Verify(g, as)
	var uncolored, conflicts int
	for _, v := range viols {
		if v.Color == None {
			uncolored++
		} else {
			conflicts++
		}
	}
	if uncolored != 1 || conflicts != 1 {
		t.Fatalf("got %d uncolored, %d conflicts (%v)", uncolored, conflicts, viols)
	}
	if Valid(g, as) {
		t.Error("Valid should be false")
	}
}

func TestGreedyValidOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(25)
		g := graph.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		as := Greedy(g, nil)
		if !Valid(g, as) {
			t.Fatalf("trial %d: greedy invalid on %v", trial, g)
		}
		d := g.MaxDegree()
		if got := as.NumColors(); got > 2*d*d {
			t.Fatalf("trial %d: greedy used %d > 2Δ²=%d colors", trial, got, 2*d*d)
		}
	}
}

func TestGreedyRespectsOrder(t *testing.T) {
	g := graph.Path(2)
	a, b := graph.Arc{From: 0, To: 1}, graph.Arc{From: 1, To: 0}
	as := Greedy(g, []graph.Arc{b, a})
	if as[b] != 1 || as[a] != 2 {
		t.Errorf("order not respected: %v", as)
	}
}

func TestAssignGreedyLocalSkipsColored(t *testing.T) {
	g := graph.Path(3)
	know := NewAssignment(g)
	a := graph.Arc{From: 0, To: 1}
	know.Set(a, 7)
	colored := AssignGreedyLocal(g, know, []graph.Arc{a, {From: 1, To: 0}})
	if len(colored) != 1 || colored[0] != (graph.Arc{From: 1, To: 0}) {
		t.Fatalf("colored = %v", colored)
	}
	if know[a] != 7 {
		t.Error("pre-colored arc was overwritten")
	}
}

func TestConflictGraphProperties(t *testing.T) {
	g := graph.Complete(3) // K3: all 6 arcs pairwise conflicting
	cg, arcs := ConflictGraph(g)
	if cg.N() != 6 || len(arcs) != 6 {
		t.Fatalf("conflict graph n=%d", cg.N())
	}
	if cg.M() != 15 {
		t.Errorf("K3 conflict graph should be complete: m=%d", cg.M())
	}
	// A proper coloring of the conflict graph is a valid schedule.
	rng := rand.New(rand.NewSource(6))
	h := graph.GNM(8, 14, rng)
	cg2, arcs2 := ConflictGraph(h)
	// Greedy vertex coloring of cg2.
	colors := make([]int, cg2.N())
	for v := 0; v < cg2.N(); v++ {
		used := map[int]bool{}
		for _, u := range cg2.Neighbors(v) {
			used[colors[u]] = true
		}
		c := 1
		for used[c] {
			c++
		}
		colors[v] = c
	}
	as := NewAssignment(h)
	for i, a := range arcs2 {
		as.Set(a, colors[i])
	}
	if !Valid(h, as) {
		t.Error("proper conflict-graph coloring is not a valid schedule")
	}
}

// Property: greedy never leaves an arc uncolored and never exceeds the
// Lemma 6 budget, on arbitrary random graphs.
func TestGreedyPropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(18)
		g := graph.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		as := Greedy(g, nil)
		d := g.MaxDegree()
		return Valid(g, as) && as.NumColors() <= 2*d*d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestDistinctColorsGappedAssignment pins the NumColors/DistinctColors
// distinction the CLI and metrics report: NumColors is the frame length
// (largest color), DistinctColors the colors actually in use. A gapped
// assignment — as crash recovery produces when it retires a color without
// compacting the frame — must diverge.
func TestDistinctColorsGappedAssignment(t *testing.T) {
	g := graph.Path(4) // arcs 0→1, 1→2, 2→3 and reverses
	as := NewAssignment(g)
	as.Set(graph.Arc{From: 0, To: 1}, 1)
	as.Set(graph.Arc{From: 2, To: 3}, 3) // color 2 never used: a gap
	if got := as.NumColors(); got != 3 {
		t.Errorf("NumColors = %d, want 3 (frame length is the largest color)", got)
	}
	if got := as.DistinctColors(); got != 2 {
		t.Errorf("DistinctColors = %d, want 2 (colors {1,3} in use)", got)
	}

	// Complete greedy colorings have no gaps: the arc that picked the
	// maximum color saw every smaller color occupied.
	full := Greedy(graph.ConnectedGNM(32, 96, rand.New(rand.NewSource(3))), nil)
	if full.NumColors() != full.DistinctColors() {
		t.Errorf("greedy coloring gapped: NumColors %d != DistinctColors %d",
			full.NumColors(), full.DistinctColors())
	}
}
