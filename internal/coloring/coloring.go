// Package coloring defines the FDLSP conflict semantics — distance-2 edge
// coloring of a bi-directed graph (paper, Definition 2 and the ILP of
// Section 4) — together with a schedule verifier, a sequential greedy
// colorer (the Δ-approximation reference of Lemma 9/10), local greedy
// coloring used by the distributed algorithms, and the conflict-graph
// construction of Lemma 6.
//
// A color is a TDMA time slot; colors are 1-based and 0 (None) means
// "uncolored". Arc (u,v) colored c means u transmits to v in slot c.
package coloring

import (
	"fmt"
	"sort"
	"sync"

	"fdlsp/internal/graph"
)

// None is the color of an uncolored arc.
const None = 0

// Conflict reports whether arcs a and b may NOT share a color in graph g.
// Two distinct arcs conflict iff they share an endpoint (ILP constraints
// 4–6) or the head of one is adjacent to the tail of the other (hidden
// terminal problem, ILP constraint 2). An arc never conflicts with itself.
func Conflict(g *graph.Graph, a, b graph.Arc) bool {
	if a == b {
		return false
	}
	// Shared endpoint in any combination.
	if a.From == b.From || a.From == b.To || a.To == b.From || a.To == b.To {
		return true
	}
	// Hidden terminal: a's receiver hears b's transmitter, or vice versa.
	if g.HasEdge(a.To, b.From) || g.HasEdge(b.To, a.From) {
		return true
	}
	return false
}

// conflictCache is the per-graph distance-2 conflict structure: for every
// arc (by graph.ArcIndex) the sorted slice of conflicting arcs, stored as
// spans into one flat slab. It hangs off the graph's topology cache via
// graph.Aux, so it is built once per topology, immutable after build, safe
// for concurrent readers, and discarded automatically when the graph
// mutates.
type conflictCache struct {
	spans []span
	flat  []graph.Arc
	// scratch pools the []bool color-occupancy buffers smallestFeasible
	// uses; pooling keeps the greedy inner loop allocation-free without
	// affecting determinism (buffers are cleared on every use).
	scratch sync.Pool
}

type span struct{ lo, hi int32 }

type conflictAuxKey struct{}

func cacheOf(g *graph.Graph) *conflictCache {
	return g.Aux(conflictAuxKey{}, func() any { return buildConflictCache(g) }).(*conflictCache)
}

func buildConflictCache(g *graph.Graph) *conflictCache {
	arcs := g.ArcsView()
	c := &conflictCache{spans: make([]span, len(arcs))}
	c.scratch.New = func() any { return new([]bool) }
	var buf []graph.Arc
	for i, a := range arcs {
		buf = appendConflicts(g, a, buf[:0])
		c.spans[i] = span{lo: int32(len(c.flat)), hi: int32(len(c.flat) + len(buf))}
		c.flat = append(c.flat, buf...)
	}
	return c
}

// appendConflicts appends the sorted conflict set of a to dst. It gathers
// the Lemma 6 candidates (arcs touching a's endpoints, out-arcs of a.To's
// neighbors, in-arcs of a.From's neighbors), then sorts and dedups in place.
func appendConflicts(g *graph.Graph, a graph.Arc, dst []graph.Arc) []graph.Arc {
	base := len(dst)
	dst = append(dst, g.IncidentArcsView(a.From)...)
	dst = append(dst, g.IncidentArcsView(a.To)...)
	// Out-arcs from neighbors of a.To (their transmissions interfere at a.To).
	for _, w := range g.NeighborsView(a.To) {
		dst = append(dst, g.OutArcsView(w)...)
	}
	// In-arcs to neighbors of a.From (a.From's transmission interferes there).
	for _, w := range g.NeighborsView(a.From) {
		dst = append(dst, g.InArcsView(w)...)
	}
	cand := dst[base:]
	sortArcs(cand)
	keep := 0
	for i, b := range cand {
		if b == a || (i > 0 && b == cand[i-1]) {
			continue
		}
		cand[keep] = b
		keep++
	}
	return dst[:base+keep]
}

// ConflictingArcs returns every arc of g that conflicts with a, sorted. Per
// Lemma 6 this set has at most 2Δ²-1 members: arcs touching a's endpoints,
// out-arcs of a.To's neighbors and in-arcs of a.From's neighbors.
//
// The result is a shared slice from the per-graph conflict cache: callers
// must treat it as read-only. It stays valid until the next AddEdge or
// RemoveEdge on g.
func ConflictingArcs(g *graph.Graph, a graph.Arc) []graph.Arc {
	if i, ok := g.ArcIndex(a); ok {
		c := cacheOf(g)
		s := c.spans[i]
		return c.flat[s.lo:s.hi:s.hi]
	}
	// a is not an arc of g (callers probing hypothetical links): compute a
	// fresh set without touching the cache.
	return appendConflicts(g, a, nil)
}

func sortArcs(arcs []graph.Arc) {
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].From != arcs[j].From {
			return arcs[i].From < arcs[j].From
		}
		return arcs[i].To < arcs[j].To
	})
}

// Assignment maps each arc of the bi-directed graph to a color (time slot).
type Assignment map[graph.Arc]int

// NewAssignment returns an empty assignment sized for every arc of g. Use
// NewAssignmentSized when the expected table is a local or pruned view much
// smaller than the full graph — pre-sizing per-node tables at 2*g.M() wastes
// memory quadratically across n nodes.
func NewAssignment(g *graph.Graph) Assignment {
	return make(Assignment, 2*g.M())
}

// NewAssignmentSized returns an empty assignment pre-sized for about `arcs`
// entries.
func NewAssignmentSized(arcs int) Assignment {
	return make(Assignment, arcs)
}

// Color returns the color of a, or None.
func (as Assignment) Color(a graph.Arc) int { return as[a] }

// Set colors arc a with c (c must be >= 1).
func (as Assignment) Set(a graph.Arc, c int) {
	if c < 1 {
		panic(fmt.Sprintf("coloring: invalid color %d for %v", c, a))
	}
	as[a] = c
}

// NumColors returns the largest color in use, i.e. the TDMA frame length.
// It is not the number of colors used: crash/rejoin runs can retire colors
// and leave gaps, so report DistinctColors alongside it where they can
// diverge.
func (as Assignment) NumColors() int {
	max := 0
	for _, c := range as {
		if c > max {
			max = c
		}
	}
	return max
}

// DistinctColors returns the number of distinct colors in use. For complete
// fault-free greedy colorings every color below the maximum is used
// somewhere (the arc that picked the max saw all smaller colors occupied),
// so DistinctColors == NumColors; after crashes discard part of a schedule
// the remaining colors can have gaps and DistinctColors < NumColors.
func (as Assignment) DistinctColors() int {
	seen := make(map[int]struct{}, 16)
	for _, c := range as {
		if c != None {
			seen[c] = struct{}{}
		}
	}
	return len(seen)
}

// Complete reports whether every arc of g is colored.
func (as Assignment) Complete(g *graph.Graph) bool {
	for _, a := range g.ArcsView() {
		if as[a] == None {
			return false
		}
	}
	return true
}

// Clone returns a copy of the assignment.
func (as Assignment) Clone() Assignment {
	c := make(Assignment, len(as))
	for a, col := range as {
		c[a] = col
	}
	return c
}

// Violation describes a pair of same-colored conflicting arcs.
type Violation struct {
	A, B  graph.Arc
	Color int
}

func (v Violation) String() string {
	return fmt.Sprintf("arcs %v and %v both use slot %d", v.A, v.B, v.Color)
}

// Verify checks that as is a complete, feasible FDLSP schedule for g: every
// arc colored and no two conflicting arcs share a color. It returns all
// violations found (uncolored arcs are reported as a violation with B equal
// to A and Color None).
func Verify(g *graph.Graph, as Assignment) []Violation {
	var viols []Violation
	arcs := g.ArcsView()
	byColor := make(map[int][]graph.Arc)
	for _, a := range arcs {
		c := as[a]
		if c == None {
			viols = append(viols, Violation{A: a, B: a, Color: None})
			continue
		}
		byColor[c] = append(byColor[c], a)
	}
	colors := make([]int, 0, len(byColor))
	for c := range byColor {
		colors = append(colors, c)
	}
	sort.Ints(colors)
	for _, c := range colors {
		class := byColor[c]
		for i := 0; i < len(class); i++ {
			for j := i + 1; j < len(class); j++ {
				if Conflict(g, class[i], class[j]) {
					viols = append(viols, Violation{A: class[i], B: class[j], Color: c})
				}
			}
		}
	}
	return viols
}

// Valid reports whether as is a complete and feasible schedule for g.
func Valid(g *graph.Graph, as Assignment) bool { return len(Verify(g, as)) == 0 }

// smallestFeasible returns the smallest color >= 1 not used by any arc
// conflicting with a under the (possibly partial) knowledge know. The answer
// is at most |conflicts(a)|+1, so a pooled []bool occupancy buffer of that
// size replaces the per-call map the function used to allocate.
func smallestFeasible(g *graph.Graph, know Assignment, a graph.Arc) int {
	cc := cacheOf(g)
	confs := ConflictingArcs(g, a)
	n := len(confs) + 2
	bufp := cc.scratch.Get().(*[]bool)
	used := *bufp
	if cap(used) < n {
		used = make([]bool, n)
	} else {
		used = used[:n]
		clear(used)
	}
	for _, b := range confs {
		if c := know[b]; c != None && c < n {
			used[c] = true
		}
	}
	res := n - 1 // pigeonhole: some color in [1, len(confs)+1] is free
	for c := 1; c < n; c++ {
		if !used[c] {
			res = c
			break
		}
	}
	*bufp = used
	cc.scratch.Put(bufp)
	return res
}

// AssignGreedyLocal colors each arc of arcs (in order, skipping already
// colored ones) with the smallest color feasible against the colors recorded
// in know, writing the result into know. It returns the newly colored arcs.
// This is the per-node coloring step shared by DistMIS and the DFS
// algorithm: know is the node's distance-2 color knowledge.
func AssignGreedyLocal(g *graph.Graph, know Assignment, arcs []graph.Arc) []graph.Arc {
	var colored []graph.Arc
	for _, a := range arcs {
		if know[a] != None {
			continue
		}
		know.Set(a, smallestFeasible(g, know, a))
		colored = append(colored, a)
	}
	return colored
}

// Greedy sequentially colors every arc of g in the given order (all arcs of
// g, by default in lexicographic order when order is nil) with the smallest
// feasible color. This is the greedyColor reference algorithm of Lemma 9:
// it uses at most 2Δ² colors (Lemma 6) and is therefore a Δ-approximation
// (Theorem 2).
func Greedy(g *graph.Graph, order []graph.Arc) Assignment {
	if order == nil {
		order = g.Arcs()
	}
	as := NewAssignment(g)
	AssignGreedyLocal(g, as, order)
	return as
}

// ConflictGraph builds the conflict graph G' of Lemma 6: one vertex per arc
// of g, an edge between two vertices when their arcs conflict. It returns
// the graph and the arc corresponding to each vertex. Any proper vertex
// coloring of the result is a feasible FDLSP schedule for g.
func ConflictGraph(g *graph.Graph) (*graph.Graph, []graph.Arc) {
	arcs := g.Arcs()
	cg := graph.New(len(arcs))
	for i, a := range arcs {
		for _, b := range ConflictingArcs(g, a) {
			j, _ := g.ArcIndex(b)
			if i < j {
				cg.AddEdge(i, j)
			}
		}
	}
	return cg, arcs
}
