// Package coloring defines the FDLSP conflict semantics — distance-2 edge
// coloring of a bi-directed graph (paper, Definition 2 and the ILP of
// Section 4) — together with a schedule verifier, a sequential greedy
// colorer (the Δ-approximation reference of Lemma 9/10), local greedy
// coloring used by the distributed algorithms, and the conflict-graph
// construction of Lemma 6.
//
// A color is a TDMA time slot; colors are 1-based and 0 (None) means
// "uncolored". Arc (u,v) colored c means u transmits to v in slot c.
package coloring

import (
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"fdlsp/internal/graph"
)

// None is the color of an uncolored arc.
const None = 0

// Conflict reports whether arcs a and b may NOT share a color in graph g.
// Two distinct arcs conflict iff they share an endpoint (ILP constraints
// 4–6) or the head of one is adjacent to the tail of the other (hidden
// terminal problem, ILP constraint 2). An arc never conflicts with itself.
func Conflict(g *graph.Graph, a, b graph.Arc) bool {
	if a == b {
		return false
	}
	// Shared endpoint in any combination.
	if a.From == b.From || a.From == b.To || a.To == b.From || a.To == b.To {
		return true
	}
	// Hidden terminal: a's receiver hears b's transmitter, or vice versa.
	if g.HasEdge(a.To, b.From) || g.HasEdge(b.To, a.From) {
		return true
	}
	return false
}

// conflictCache is the per-graph distance-2 conflict structure: for every
// arc (by its stable graph.ArcIndex id) the sorted slice of conflicting
// arcs. A fresh build lays all rows out as spans of one flat slab; after a
// topology mutation the cache is *patched*, not rebuilt — it survives on
// the graph's aux table (AuxSurvivesMutation) and re-syncs lazily from the
// graph's edge-delta journal, replacing only the rows of arcs within
// distance 2 of the flipped edges' endpoints. Only when the journal has
// been truncated (or the graph disabled patching) does it fall back to a
// full rebuild.
//
// Readers never lock: rows are immutable once published and the synced
// epoch is advanced with a release store after all row writes, so the
// epoch-equality fast path in cacheOf orders reads after the patch.
type conflictCache struct {
	conflicts [][]graph.Arc // by stable arc id; nil for unassigned/freed ids
	epoch     atomic.Uint64 // graph.MutEpoch the rows are synced to
	mu        sync.Mutex    // serializes sync (patch or rebuild)

	builds      atomic.Uint64 // full row-set (re)builds
	patches     atomic.Uint64 // incremental syncs applied
	patchedArcs atomic.Uint64 // rows rewritten by incremental syncs

	// scratch pools the []bool color-occupancy buffers smallestFeasible
	// uses; pooling keeps the greedy inner loop allocation-free without
	// affecting determinism (buffers are cleared on every use).
	scratch sync.Pool
}

// AuxSurvivesMutation marks the cache as patchable: the graph keeps it
// across AddEdge/RemoveEdge instead of discarding it, and cacheOf re-syncs
// it from the mutation journal.
func (*conflictCache) AuxSurvivesMutation() {}

type conflictAuxKey struct{}

func cacheOf(g *graph.Graph) *conflictCache {
	c := g.Aux(conflictAuxKey{}, func() any { return newConflictCache(g) }).(*conflictCache)
	if c.epoch.Load() != g.MutEpoch() {
		c.sync(g)
	}
	return c
}

func newConflictCache(g *graph.Graph) *conflictCache {
	c := &conflictCache{}
	c.scratch.New = func() any { return new([]bool) }
	c.rebuild(g)
	c.epoch.Store(g.MutEpoch())
	return c
}

// rebuild recomputes every row from the live topology into one flat slab.
func (c *conflictCache) rebuild(g *graph.Graph) {
	arcs := g.ArcsView()
	conflicts := make([][]graph.Arc, g.ArcIDBound())
	var flat []graph.Arc
	var buf []graph.Arc
	spans := make([][2]int, len(arcs))
	for i, a := range arcs {
		buf = appendConflicts(g, a, buf[:0])
		spans[i] = [2]int{len(flat), len(flat) + len(buf)}
		flat = append(flat, buf...)
	}
	// Rows are carved out of flat only once it stops growing, so the
	// subslices alias the final backing array.
	for i, a := range arcs {
		id, _ := g.ArcIndex(a)
		conflicts[id] = flat[spans[i][0]:spans[i][1]:spans[i][1]]
	}
	c.conflicts = conflicts
	c.builds.Add(1)
}

// sync brings the rows up to the graph's current mutation epoch: replay the
// edge-delta journal when it is contiguous from the cache's epoch (patching
// only the 2-hop neighborhood of the flipped edges), or rebuild everything
// when it is not.
func (c *conflictCache) sync(g *graph.Graph) {
	target := g.MutEpoch()
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.epoch.Load()
	if cur == target {
		return
	}
	if ds, ok := g.EdgeDeltasSince(cur); ok {
		c.patch(g, ds)
	} else {
		c.rebuild(g)
	}
	c.epoch.Store(target)
}

// patch replays journaled edge flips against the rows. Correctness rests on
// the paper's locality argument: flipping edge {u,v} changes the conflict
// set only of arcs with an endpoint in {u,v} ∪ N(u) ∪ N(v) — everything
// within distance 2 of the flip, nothing beyond. Replaying a whole batch
// against the final topology is sound by maximality: for the last journaled
// flip affecting an arc a, either a touches that flip's endpoints directly,
// or the adjacency that put a in its 2-hop set still holds at the final
// topology (any later change to it would itself be a later affecting flip).
// So clearing the flipped arcs' rows and recomputing every live arc
// incident to S = ∪ {u_i,v_i} ∪ N(u_i) ∪ N(v_i) (N at the final topology)
// rewrites a superset of the stale rows, each from current adjacency.
func (c *conflictCache) patch(g *graph.Graph, ds []graph.EdgeDelta) {
	if bound := g.ArcIDBound(); bound > len(c.conflicts) {
		grown := make([][]graph.Arc, bound)
		copy(grown, c.conflicts)
		c.conflicts = grown
	}
	nodes := make(map[int]struct{}, 4*len(ds))
	for _, d := range ds {
		// Clear first: rows of removed arcs must die, and a freed id
		// recycled by a later addition in the same batch is recomputed
		// below (its endpoints are in S too).
		c.conflicts[d.IDUV] = nil
		c.conflicts[d.IDVU] = nil
		nodes[d.U] = struct{}{}
		nodes[d.V] = struct{}{}
		for _, w := range g.NeighborsView(d.U) {
			nodes[w] = struct{}{}
		}
		for _, w := range g.NeighborsView(d.V) {
			nodes[w] = struct{}{}
		}
	}
	order := make([]int, 0, len(nodes))
	for v := range nodes {
		order = append(order, v)
	}
	sort.Ints(order)
	touched := make(map[int32]struct{}, 8*len(ds))
	for _, v := range order {
		for _, a := range g.IncidentArcsView(v) {
			id, _ := g.ArcIndex(a)
			if _, done := touched[int32(id)]; done {
				continue
			}
			touched[int32(id)] = struct{}{}
			row := appendConflicts(g, a, nil)
			c.conflicts[id] = row[:len(row):len(row)]
		}
	}
	c.patches.Add(1)
	c.patchedArcs.Add(uint64(len(touched)))
}

// CacheStatsSnapshot reports the lifetime work of a graph's conflict cache:
// full row-set builds, incremental patches, and rows rewritten by patches.
type CacheStatsSnapshot struct {
	Builds      uint64
	Patches     uint64
	PatchedArcs uint64
}

// CacheStats returns the conflict cache's maintenance counters for g,
// creating (and syncing) the cache if needed. Counters reset when the
// cache itself is discarded (a non-patched mutation or deserialization).
func CacheStats(g *graph.Graph) CacheStatsSnapshot {
	c := cacheOf(g)
	return CacheStatsSnapshot{
		Builds:      c.builds.Load(),
		Patches:     c.patches.Load(),
		PatchedArcs: c.patchedArcs.Load(),
	}
}

// appendConflicts appends the sorted conflict set of a to dst. It gathers
// the Lemma 6 candidates (arcs touching a's endpoints, out-arcs of a.To's
// neighbors, in-arcs of a.From's neighbors), then sorts and dedups in place.
func appendConflicts(g *graph.Graph, a graph.Arc, dst []graph.Arc) []graph.Arc {
	base := len(dst)
	dst = append(dst, g.IncidentArcsView(a.From)...)
	dst = append(dst, g.IncidentArcsView(a.To)...)
	// Out-arcs from neighbors of a.To (their transmissions interfere at a.To).
	for _, w := range g.NeighborsView(a.To) {
		dst = append(dst, g.OutArcsView(w)...)
	}
	// In-arcs to neighbors of a.From (a.From's transmission interferes there).
	for _, w := range g.NeighborsView(a.From) {
		dst = append(dst, g.InArcsView(w)...)
	}
	cand := dst[base:]
	sortArcs(cand)
	keep := 0
	for i, b := range cand {
		if b == a || (i > 0 && b == cand[i-1]) {
			continue
		}
		cand[keep] = b
		keep++
	}
	return dst[:base+keep]
}

// ConflictingArcs returns every arc of g that conflicts with a, sorted. Per
// Lemma 6 this set has at most 2Δ²-1 members: arcs touching a's endpoints,
// out-arcs of a.To's neighbors and in-arcs of a.From's neighbors.
//
// The result is a shared slice from the per-graph conflict cache: callers
// must treat it as read-only. It stays valid until the next AddEdge or
// RemoveEdge on g.
func ConflictingArcs(g *graph.Graph, a graph.Arc) []graph.Arc {
	if i, ok := g.ArcIndex(a); ok {
		return cacheOf(g).conflicts[i]
	}
	// a is not an arc of g (callers probing hypothetical links): compute a
	// fresh set without touching the cache.
	return appendConflicts(g, a, nil)
}

// sortArcs orders arcs by (From, To). slices.SortFunc rather than
// sort.Slice: the reflection-based swapper moving 16-byte Arc values was
// ~70% of a conflict-row recomputation under profile, and row recomputation
// is the whole cost of a cache patch.
func sortArcs(arcs []graph.Arc) {
	slices.SortFunc(arcs, func(a, b graph.Arc) int {
		if a.From != b.From {
			return a.From - b.From
		}
		return a.To - b.To
	})
}

// Assignment maps each arc of the bi-directed graph to a color (time slot).
type Assignment map[graph.Arc]int

// NewAssignment returns an empty assignment sized for every arc of g. Use
// NewAssignmentSized when the expected table is a local or pruned view much
// smaller than the full graph — pre-sizing per-node tables at 2*g.M() wastes
// memory quadratically across n nodes.
func NewAssignment(g *graph.Graph) Assignment {
	return make(Assignment, 2*g.M())
}

// NewAssignmentSized returns an empty assignment pre-sized for about `arcs`
// entries.
func NewAssignmentSized(arcs int) Assignment {
	return make(Assignment, arcs)
}

// Color returns the color of a, or None.
func (as Assignment) Color(a graph.Arc) int { return as[a] }

// Set colors arc a with c (c must be >= 1).
func (as Assignment) Set(a graph.Arc, c int) {
	if c < 1 {
		panic(fmt.Sprintf("coloring: invalid color %d for %v", c, a))
	}
	as[a] = c
}

// NumColors returns the largest color in use, i.e. the TDMA frame length.
// It is not the number of colors used: crash/rejoin runs can retire colors
// and leave gaps, so report DistinctColors alongside it where they can
// diverge.
func (as Assignment) NumColors() int {
	max := 0
	for _, c := range as {
		if c > max {
			max = c
		}
	}
	return max
}

// DistinctColors returns the number of distinct colors in use. For complete
// fault-free greedy colorings every color below the maximum is used
// somewhere (the arc that picked the max saw all smaller colors occupied),
// so DistinctColors == NumColors; after crashes discard part of a schedule
// the remaining colors can have gaps and DistinctColors < NumColors.
func (as Assignment) DistinctColors() int {
	seen := make(map[int]struct{}, 16)
	for _, c := range as {
		if c != None {
			seen[c] = struct{}{}
		}
	}
	return len(seen)
}

// Complete reports whether every arc of g is colored.
func (as Assignment) Complete(g *graph.Graph) bool {
	for _, a := range g.ArcsView() {
		if as[a] == None {
			return false
		}
	}
	return true
}

// Clone returns a copy of the assignment.
func (as Assignment) Clone() Assignment {
	c := make(Assignment, len(as))
	for a, col := range as {
		c[a] = col
	}
	return c
}

// Violation describes a pair of same-colored conflicting arcs.
type Violation struct {
	A, B  graph.Arc
	Color int
}

func (v Violation) String() string {
	return fmt.Sprintf("arcs %v and %v both use slot %d", v.A, v.B, v.Color)
}

// Verify checks that as is a complete, feasible FDLSP schedule for g: every
// arc colored and no two conflicting arcs share a color. It returns all
// violations found (uncolored arcs are reported as a violation with B equal
// to A and Color None).
func Verify(g *graph.Graph, as Assignment) []Violation {
	var viols []Violation
	arcs := g.ArcsView()
	byColor := make(map[int][]graph.Arc)
	for _, a := range arcs {
		c := as[a]
		if c == None {
			viols = append(viols, Violation{A: a, B: a, Color: None})
			continue
		}
		byColor[c] = append(byColor[c], a)
	}
	colors := make([]int, 0, len(byColor))
	for c := range byColor {
		colors = append(colors, c)
	}
	sort.Ints(colors)
	for _, c := range colors {
		class := byColor[c]
		for i := 0; i < len(class); i++ {
			for j := i + 1; j < len(class); j++ {
				if Conflict(g, class[i], class[j]) {
					viols = append(viols, Violation{A: class[i], B: class[j], Color: c})
				}
			}
		}
	}
	return viols
}

// Valid reports whether as is a complete and feasible schedule for g.
func Valid(g *graph.Graph, as Assignment) bool { return len(Verify(g, as)) == 0 }

// smallestFeasible returns the smallest color >= 1 not used by any arc
// conflicting with a under the (possibly partial) knowledge know. The answer
// is at most |conflicts(a)|+1, so a pooled []bool occupancy buffer of that
// size replaces the per-call map the function used to allocate.
func smallestFeasible(g *graph.Graph, know Assignment, a graph.Arc) int {
	cc := cacheOf(g)
	confs := ConflictingArcs(g, a)
	n := len(confs) + 2
	bufp := cc.scratch.Get().(*[]bool)
	used := *bufp
	if cap(used) < n {
		used = make([]bool, n)
	} else {
		used = used[:n]
		clear(used)
	}
	for _, b := range confs {
		if c := know[b]; c != None && c < n {
			used[c] = true
		}
	}
	res := n - 1 // pigeonhole: some color in [1, len(confs)+1] is free
	for c := 1; c < n; c++ {
		if !used[c] {
			res = c
			break
		}
	}
	*bufp = used
	cc.scratch.Put(bufp)
	return res
}

// AssignGreedyLocal colors each arc of arcs (in order, skipping already
// colored ones) with the smallest color feasible against the colors recorded
// in know, writing the result into know. It returns the newly colored arcs.
// This is the per-node coloring step shared by DistMIS and the DFS
// algorithm: know is the node's distance-2 color knowledge.
func AssignGreedyLocal(g *graph.Graph, know Assignment, arcs []graph.Arc) []graph.Arc {
	var colored []graph.Arc
	for _, a := range arcs {
		if know[a] != None {
			continue
		}
		know.Set(a, smallestFeasible(g, know, a))
		colored = append(colored, a)
	}
	return colored
}

// Greedy sequentially colors every arc of g in the given order (all arcs of
// g, by default in lexicographic order when order is nil) with the smallest
// feasible color. This is the greedyColor reference algorithm of Lemma 9:
// it uses at most 2Δ² colors (Lemma 6) and is therefore a Δ-approximation
// (Theorem 2).
func Greedy(g *graph.Graph, order []graph.Arc) Assignment {
	if order == nil {
		order = g.Arcs()
	}
	as := NewAssignment(g)
	AssignGreedyLocal(g, as, order)
	return as
}

// ConflictGraph builds the conflict graph G' of Lemma 6: one vertex per arc
// of g, an edge between two vertices when their arcs conflict. It returns
// the graph and the arc corresponding to each vertex. Any proper vertex
// coloring of the result is a feasible FDLSP schedule for g.
func ConflictGraph(g *graph.Graph) (*graph.Graph, []graph.Arc) {
	arcs := g.Arcs()
	// Vertex numbering follows the sorted arc list, not graph.ArcIndex:
	// stable arc ids drift from sorted positions once the topology has been
	// patched, and the conflict graph's vertices must stay position-keyed.
	pos := make(map[graph.Arc]int, len(arcs))
	for i, a := range arcs {
		pos[a] = i
	}
	cg := graph.New(len(arcs))
	for i, a := range arcs {
		for _, b := range ConflictingArcs(g, a) {
			if j := pos[b]; i < j {
				cg.AddEdge(i, j)
			}
		}
	}
	return cg, arcs
}
