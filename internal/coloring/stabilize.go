package coloring

import (
	"fmt"
	"sort"

	"fdlsp/internal/graph"
)

// Stabilize repairs the schedule from the given dirty set using a
// distributed-round local rule, and returns the number of rounds taken plus
// the worst usable-frame fraction observed while repair was in progress.
// It is the one stabilization implementation shared by the churn soak
// (internal/soak) and the incremental rescheduling service (internal/incr):
// both feed it a dirty set derived from a topology delta and rely on the
// same convergence bound. Entries of dirty are flipped to false as arcs come
// clean; the map is consumed, not preserved.
//
// The rule models what each sensor could do with its distance-2 color
// knowledge: per round, every dirty arc (uncolored, or sharing its slot with
// a conflicting arc) *acts* iff it is the smallest dirty arc in its own
// conflict set; an actor drops its color and greedily re-picks the smallest
// slot feasible against every currently colored conflicting arc. Convergence
// argument: (1) actors are pairwise non-conflicting — if two dirty arcs
// conflict, only the smaller acts — so the round's simultaneous moves cannot
// clash with each other; (2) an actor's new slot is feasible against every
// colored conflicting arc and later moves stay feasible against it, so an
// arc that acted is clean for good; (3) the globally smallest dirty arc is
// always an actor, so the dirty set strictly shrinks every round and repair
// converges within |dirty| rounds. Topology is frozen during repair, which
// is what lets the round count stand in for convergence time.
//
// The usable-frame fraction is sampled at the top of every round. It is
// maintained incrementally and sparsely: the tracker audits only the dirty
// set at startup (sound because every unusable arc is dirty — see
// usableTracker), then per-round updates are confined to the actors and
// their conflict sets — only an arc whose color changed, or whose conflict
// set contains such an arc, can change usable status. Repair therefore
// costs O(|dirty|·Δ²) to start and O(|actors|·Δ⁴) per round, never a term
// proportional to the whole graph's arc count.
func Stabilize(g *graph.Graph, as Assignment, dirty map[graph.Arc]bool) (rounds int, minUsable float64, err error) {
	minUsable = 1
	if len(dirty) == 0 {
		return 0, minUsable, nil
	}
	// Deterministic worklist: sorted arcs, membership in the map.
	work := make([]graph.Arc, 0, len(dirty))
	for a := range dirty {
		work = append(work, a)
	}
	sort.Slice(work, func(i, j int) bool { return less(work[i], work[j]) })

	ut := newUsableTracker(g, as, work)
	budget := 2*len(work) + 8
	for {
		// Re-filter: an arc is still dirty if uncolored or clashing.
		live := work[:0]
		for _, a := range work {
			if !dirty[a] {
				continue
			}
			if arcDirty(g, as, a) {
				live = append(live, a)
			} else {
				dirty[a] = false
			}
		}
		work = live
		if len(work) == 0 {
			return rounds, minUsable, nil
		}
		if rounds >= budget {
			return rounds, minUsable, fmt.Errorf(
				"coloring: stabilization exceeded %d rounds with %d dirty arcs", budget, len(work))
		}
		if u := ut.fraction(); u < minUsable {
			minUsable = u
		}
		rounds++
		// Select the round's actors against the frozen dirty set first, then
		// apply: selection must not observe earlier actors of the same round
		// (all sensors decide simultaneously on the previous round's state).
		actors := make([]graph.Arc, 0, len(work))
		for _, a := range work {
			if actsThisRound(g, a, dirty) {
				actors = append(actors, a)
			}
		}
		for _, a := range actors {
			delete(as, a)
			AssignGreedyLocal(g, as, []graph.Arc{a})
			dirty[a] = false
		}
		// Incremental usable maintenance: only the actors and the arcs in
		// their conflict sets can have changed status this round.
		for _, a := range actors {
			ut.recheck(a)
			for _, b := range ConflictingArcs(g, a) {
				ut.recheck(b)
			}
		}
	}
}

// arcDirty reports whether a needs repair under as: no slot, or a
// conflicting arc holds the same slot.
func arcDirty(g *graph.Graph, as Assignment, a graph.Arc) bool {
	c := as[a]
	if c == None {
		return true
	}
	for _, b := range ConflictingArcs(g, a) {
		if as[b] == c {
			return true
		}
	}
	return false
}

// actsThisRound implements the local priority rule: a acts iff no smaller
// dirty arc conflicts with it.
func actsThisRound(g *graph.Graph, a graph.Arc, dirty map[graph.Arc]bool) bool {
	for _, b := range ConflictingArcs(g, a) {
		if dirty[b] && less(b, a) {
			return false
		}
	}
	return true
}

// usableTracker maintains UsableArcs incrementally across recolorings by
// tracking only the *unusable* arcs (uncolored, or clashing with a
// conflicting arc). Seeding it from the caller's dirty set is exact under
// Stabilize's own precondition — every arc violating the schedule is in the
// dirty set (clashes are symmetric: both members of a same-slot pair are
// unusable AND dirty, so unusable ⊆ dirty) — which makes startup
// O(|dirty|·Δ²) instead of the O(arcs·Δ²) full audit plus O(arcs)
// allocation the tracker used to pay. fraction is exactly UsableFraction
// (same integer counts, same division). recheck re-derives one arc's status
// after its color, or a conflicting arc's color, changed.
type usableTracker struct {
	g        *graph.Graph
	as       Assignment
	unusable map[graph.Arc]struct{}
	total    int
}

func newUsableTracker(g *graph.Graph, as Assignment, seed []graph.Arc) *usableTracker {
	t := &usableTracker{
		g:        g,
		as:       as,
		unusable: make(map[graph.Arc]struct{}, len(seed)),
		total:    2 * g.M(),
	}
	for _, a := range seed {
		if !arcUsable(g, as, a) {
			t.unusable[a] = struct{}{}
		}
	}
	return t
}

// arcUsable mirrors the per-arc predicate of UsableArcs: colored, and no
// conflicting arc shares the slot.
func arcUsable(g *graph.Graph, as Assignment, a graph.Arc) bool {
	c := as[a]
	if c == None {
		return false
	}
	for _, b := range ConflictingArcs(g, a) {
		if as[b] == c {
			return false
		}
	}
	return true
}

func (t *usableTracker) recheck(a graph.Arc) {
	if _, ok := t.g.ArcIndex(a); !ok {
		delete(t.unusable, a)
		return
	}
	if arcUsable(t.g, t.as, a) {
		delete(t.unusable, a)
	} else {
		t.unusable[a] = struct{}{}
	}
}

func (t *usableTracker) usableCount() int { return t.total - len(t.unusable) }

func (t *usableTracker) fraction() float64 {
	if t.total == 0 {
		return 1
	}
	return float64(t.usableCount()) / float64(t.total)
}
