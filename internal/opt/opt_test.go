package opt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fdlsp/internal/coloring"
	"fdlsp/internal/core"
	"fdlsp/internal/exact"
	"fdlsp/internal/geom"
	"fdlsp/internal/graph"
	"fdlsp/internal/weighted"
)

func TestCompactNeverWorsensAndStaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(25)
		g := graph.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		as := coloring.Greedy(g, nil)
		// Artificially inflate: shift all colors up by a random offset.
		off := 1 + rng.Intn(5)
		inflated := coloring.NewAssignment(g)
		for a, c := range as {
			inflated.Set(a, c+off)
		}
		out, passes := Compact(g, inflated)
		if !coloring.Valid(g, out) {
			t.Fatalf("trial %d: compacted schedule invalid", trial)
		}
		if out.NumColors() > inflated.NumColors() {
			t.Fatalf("trial %d: compaction worsened %d -> %d", trial, inflated.NumColors(), out.NumColors())
		}
		if g.M() > 0 && out.NumColors() > as.NumColors() {
			t.Errorf("trial %d: compaction (%d) did not recover the greedy frame (%d)", trial, out.NumColors(), as.NumColors())
		}
		if passes < 1 {
			t.Error("no passes recorded")
		}
	}
}

func TestIteratedGreedyNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 15; trial++ {
		n := 5 + rng.Intn(25)
		g := graph.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		as := coloring.Greedy(g, nil)
		out := IteratedGreedy(g, as, 6, int64(trial))
		if !coloring.Valid(g, out) {
			t.Fatalf("trial %d: invalid", trial)
		}
		if out.NumColors() > as.NumColors() {
			t.Fatalf("trial %d: iterated greedy worsened %d -> %d", trial, as.NumColors(), out.NumColors())
		}
	}
}

func TestImproveShortensDistributedSchedules(t *testing.T) {
	// The distributed algorithms trade frame length for round complexity;
	// offline improvement should reclaim some of it on average.
	rng := rand.New(rand.NewSource(3))
	var before, after int
	for trial := 0; trial < 5; trial++ {
		g, _ := geom.RandomUDG(60, 8, 1.4, rng)
		res, err := core.DistMIS(g, core.Options{Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		improved := Improve(g, res.Assignment, 9, int64(trial))
		if !coloring.Valid(g, improved) {
			t.Fatal("improved schedule invalid")
		}
		if improved.NumColors() > res.Slots {
			t.Fatalf("improvement worsened %d -> %d", res.Slots, improved.NumColors())
		}
		before += res.Slots
		after += improved.NumColors()
	}
	if after > before {
		t.Errorf("no aggregate improvement: %d -> %d", before, after)
	}
	t.Logf("aggregate slots: %d -> %d", before, after)
}

func TestImproveApproachesOptimumOnSmallInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 5; trial++ {
		g, _ := geom.RandomUDG(12, 4, 1.4, rng)
		if g.M() == 0 {
			continue
		}
		_, col := exact.MinSlots(g, exact.Options{})
		as := coloring.Greedy(g, nil)
		improved := Improve(g, as, 12, int64(trial))
		if improved.NumColors() < col.K {
			t.Fatalf("trial %d: improved below proven optimum?! %d < %d", trial, improved.NumColors(), col.K)
		}
	}
}

// Property: Improve output is always a valid schedule no longer than its
// input.
func TestImprovePropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		g := graph.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		as := coloring.Greedy(g, nil)
		out := Improve(g, as, 4, seed)
		return coloring.Valid(g, out) && out.NumColors() <= as.NumColors()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCompactWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 12; trial++ {
		n := 2 + rng.Intn(18)
		g := graph.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		d := weighted.Demand{PerArc: map[graph.Arc]int{}, Default: 1}
		for _, a := range g.Arcs() {
			d.PerArc[a] = 1 + rng.Intn(3)
		}
		as, _, err := weighted.DFS(g, d, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		out, passes := CompactWeighted(g, d, as)
		if passes < 1 {
			t.Error("no passes")
		}
		if !weighted.Valid(g, d, out) {
			t.Fatalf("trial %d: compacted weighted schedule invalid", trial)
		}
		if out.Slots() > as.Slots() {
			t.Fatalf("trial %d: compaction worsened %d -> %d", trial, as.Slots(), out.Slots())
		}
	}
}
