// Package opt post-optimizes feasible FDLSP schedules. The distributed
// algorithms aim at few communication rounds; once a valid frame exists, a
// base station (or any offline pass) can shorten it without touching the
// protocol: Compact greedily recolors arcs downward, and IteratedGreedy
// re-runs the greedy colorer over permutations of the existing color
// classes — the classic graph-coloring improvement that provably never
// increases the number of colors. Both preserve feasibility by
// construction, which the tests verify against the distance-2 checker.
package opt

import (
	"math/rand"
	"sort"

	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
	"fdlsp/internal/weighted"
)

// Compact recolors every arc to the smallest color feasible against the
// rest of the assignment, repeating until a fixpoint. The frame length
// never increases; dense tails of the palette migrate downward. It returns
// the improved copy and the number of full passes performed.
func Compact(g *graph.Graph, as coloring.Assignment) (coloring.Assignment, int) {
	out := as.Clone()
	arcs := g.Arcs()
	// Recolor from the highest colors first: those are the arcs a shorter
	// frame must get rid of.
	passes := 0
	for {
		passes++
		sort.SliceStable(arcs, func(i, j int) bool { return out[arcs[i]] > out[arcs[j]] })
		changed := false
		for _, a := range arcs {
			cur := out[a]
			best := smallestFeasibleExcept(g, out, a)
			if best < cur {
				out[a] = best
				changed = true
			}
		}
		if !changed {
			return out, passes
		}
	}
}

// smallestFeasibleExcept returns the smallest color usable by arc a given
// every other arc's current color.
func smallestFeasibleExcept(g *graph.Graph, as coloring.Assignment, a graph.Arc) int {
	used := make(map[int]struct{})
	for _, b := range coloring.ConflictingArcs(g, a) {
		if c := as[b]; c != coloring.None {
			used[c] = struct{}{}
		}
	}
	for c := 1; ; c++ {
		if _, busy := used[c]; !busy {
			return c
		}
	}
}

// IteratedGreedy improves a valid schedule by repeatedly re-running the
// greedy colorer with arcs ordered by permuted color classes. Processing
// the arcs of one class consecutively guarantees the result uses at most as
// many colors as before (arcs sharing a class are mutually conflict-free,
// so the class collapses onto at most one fresh color each); permuting and
// re-sorting classes lets colors merge across iterations. iters rounds,
// seeded permutations; the best schedule found is returned.
func IteratedGreedy(g *graph.Graph, as coloring.Assignment, iters int, seed int64) coloring.Assignment {
	rng := rand.New(rand.NewSource(seed))
	best := as.Clone()
	cur := as.Clone()
	for it := 0; it < iters; it++ {
		order := classOrder(g, cur, rng, it)
		cur = coloring.Greedy(g, order)
		if cur.NumColors() <= best.NumColors() {
			best = cur.Clone()
		}
	}
	return best
}

// classOrder returns all arcs grouped by color class under as; the class
// order cycles between largest-first, smallest-first and random shuffles,
// the standard iterated-greedy mix.
func classOrder(g *graph.Graph, as coloring.Assignment, rng *rand.Rand, it int) []graph.Arc {
	byColor := make(map[int][]graph.Arc)
	for _, a := range g.Arcs() {
		byColor[as[a]] = append(byColor[as[a]], a)
	}
	classes := make([]int, 0, len(byColor))
	for c := range byColor {
		classes = append(classes, c)
	}
	switch it % 3 {
	case 0: // largest class first
		sort.Slice(classes, func(i, j int) bool {
			if len(byColor[classes[i]]) != len(byColor[classes[j]]) {
				return len(byColor[classes[i]]) > len(byColor[classes[j]])
			}
			return classes[i] < classes[j]
		})
	case 1: // reverse color order
		sort.Sort(sort.Reverse(sort.IntSlice(classes)))
	default:
		sort.Ints(classes)
		rng.Shuffle(len(classes), func(i, j int) { classes[i], classes[j] = classes[j], classes[i] })
	}
	var order []graph.Arc
	for _, c := range classes {
		class := byColor[c]
		sort.Slice(class, func(i, j int) bool {
			if class[i].From != class[j].From {
				return class[i].From < class[j].From
			}
			return class[i].To < class[j].To
		})
		order = append(order, class...)
	}
	return order
}

// Improve runs Compact followed by IteratedGreedy followed by a final
// Compact — the full post-optimization pipeline.
func Improve(g *graph.Graph, as coloring.Assignment, iters int, seed int64) coloring.Assignment {
	out, _ := Compact(g, as)
	out = IteratedGreedy(g, out, iters, seed)
	out, _ = Compact(g, out)
	return out
}

// CompactWeighted recolors each arc's slot set to the lexicographically
// smallest feasible set of the same size, repeating until a fixpoint. The
// per-arc maxima are pointwise non-increasing, so the frame never grows.
func CompactWeighted(g *graph.Graph, d weighted.Demand, as weighted.Assignment) (weighted.Assignment, int) {
	out := make(weighted.Assignment, len(as))
	for a, ss := range as {
		out[a] = append([]int(nil), ss...)
	}
	arcs := g.Arcs()
	passes := 0
	for {
		passes++
		changed := false
		for _, a := range arcs {
			used := make(map[int]bool)
			for _, b := range coloring.ConflictingArcs(g, a) {
				for _, s := range out[b] {
					used[s] = true
				}
			}
			w := d.Of(a)
			fresh := make([]int, 0, w)
			for s := 1; len(fresh) < w; s++ {
				if !used[s] {
					fresh = append(fresh, s)
				}
			}
			if !equalInts(fresh, out[a]) {
				out[a] = fresh
				changed = true
			}
		}
		if !changed {
			return out, passes
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
