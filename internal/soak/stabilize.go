package soak

import (
	"fmt"
	"sort"

	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
)

// stabilize repairs the schedule from the given dirty set using a
// distributed-round local rule, and returns the number of rounds taken plus
// the worst usable-frame fraction observed while repair was in progress.
//
// The rule models what each sensor could do with its distance-2 color
// knowledge: per round, every dirty arc (uncolored, or sharing its slot with
// a conflicting arc) *acts* iff it is the smallest dirty arc in its own
// conflict set; an actor drops its color and greedily re-picks the smallest
// slot feasible against every currently colored conflicting arc. Convergence
// argument: (1) actors are pairwise non-conflicting — if two dirty arcs
// conflict, only the smaller acts — so the round's simultaneous moves cannot
// clash with each other; (2) an actor's new slot is feasible against every
// colored conflicting arc and later moves stay feasible against it, so an
// arc that acted is clean for good; (3) the globally smallest dirty arc is
// always an actor, so the dirty set strictly shrinks every round and repair
// converges within |dirty| rounds. Topology is frozen during repair, which
// is what lets the round count stand in for convergence time.
func (s *Soak) stabilize(dirty map[graph.Arc]bool) (rounds int, minUsable float64, err error) {
	minUsable = 1
	if len(dirty) == 0 {
		return 0, minUsable, nil
	}
	// Deterministic worklist: sorted arcs, membership in the map.
	work := make([]graph.Arc, 0, len(dirty))
	for a := range dirty {
		work = append(work, a)
	}
	sort.Slice(work, func(i, j int) bool { return arcLess(work[i], work[j]) })

	budget := 2*len(work) + 8
	for {
		// Re-filter: an arc is still dirty if uncolored or clashing.
		live := work[:0]
		for _, a := range work {
			if !dirty[a] {
				continue
			}
			if s.arcDirty(a) {
				live = append(live, a)
			} else {
				dirty[a] = false
			}
		}
		work = live
		if len(work) == 0 {
			return rounds, minUsable, nil
		}
		if rounds >= budget {
			return rounds, minUsable, fmt.Errorf(
				"soak: stabilization exceeded %d rounds with %d dirty arcs", budget, len(work))
		}
		if u := coloring.UsableFraction(s.g, s.as); u < minUsable {
			minUsable = u
		}
		rounds++
		// Select the round's actors against the frozen dirty set first, then
		// apply: selection must not observe earlier actors of the same round
		// (all sensors decide simultaneously on the previous round's state).
		actors := make([]graph.Arc, 0, len(work))
		for _, a := range work {
			if s.actsThisRound(a, dirty) {
				actors = append(actors, a)
			}
		}
		for _, a := range actors {
			delete(s.as, a)
			coloring.AssignGreedyLocal(s.g, s.as, []graph.Arc{a})
			dirty[a] = false
		}
	}
}

// arcDirty reports whether a needs repair: no slot, or a conflicting arc
// holds the same slot.
func (s *Soak) arcDirty(a graph.Arc) bool {
	c := s.as[a]
	if c == coloring.None {
		return true
	}
	for _, b := range coloring.ConflictingArcs(s.g, a) {
		if s.as[b] == c {
			return true
		}
	}
	return false
}

// actsThisRound implements the local priority rule: a acts iff no smaller
// dirty arc conflicts with it.
func (s *Soak) actsThisRound(a graph.Arc, dirty map[graph.Arc]bool) bool {
	for _, b := range coloring.ConflictingArcs(s.g, a) {
		if dirty[b] && arcLess(b, a) {
			return false
		}
	}
	return true
}

// arcLess orders arcs lexicographically by (From, To).
func arcLess(a, b graph.Arc) bool {
	if a.From != b.From {
		return a.From < b.From
	}
	return a.To < b.To
}
