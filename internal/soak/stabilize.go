package soak

import (
	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
)

// stabilize repairs the schedule from the given dirty set in measured
// distributed rounds. The rule, its ≤|dirty| convergence bound, and the
// incremental usable-fraction tracking live in coloring.Stabilize — one
// implementation shared with the incremental rescheduling service
// (internal/incr), so the soak's proved repair behavior is exactly what the
// service ships.
func (s *Soak) stabilize(dirty map[graph.Arc]bool) (rounds int, minUsable float64, err error) {
	return coloring.Stabilize(s.g, s.as, dirty)
}
