package soak

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"fdlsp/internal/coloring"
	"fdlsp/internal/obs"
)

// churnConfig is the acceptance scenario: sustained crash/restart churn,
// mobility, leaves and joins, message loss 0.1 on the periodic engine
// reschedules.
func churnConfig(seed int64) Config {
	return Config{
		Seed: seed, N: 32, Side: 9, Radius: 2.4, Alpha: 0.8, GrayP: 0.4,
		Step: 0.35, MoveRate: 0.3,
		CrashRate: 0.06, MinOutage: 1, MaxOutage: 4,
		LeaveRate: 0.02, MinAway: 2, MaxAway: 6,
		Loss: 0.1, ProbeEvery: 250,
	}
}

func TestSoakThousandEpochsConvergesEveryEpoch(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak")
	}
	before := runtime.NumGoroutine()
	s, err := New(churnConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	sum, err := s.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Epochs != 1000 {
		t.Fatalf("completed %d epochs, want 1000", sum.Epochs)
	}
	if sum.TotalPerturbations == 0 {
		t.Fatal("soak applied no perturbations — the churn stream is dead")
	}
	if sum.EngineProbes != 3 {
		t.Errorf("engine probes = %d, want 3 (epochs 250/500/750)", sum.EngineProbes)
	}
	// Convergence-time budget: the stabilizer's bound is |dirty| rounds and
	// per-epoch dirty sets are local; double digits would mean repair is
	// cascading. (Every epoch already re-verified the full schedule — Step
	// fails on any residual conflict.)
	if sum.MaxConvergence > 64 {
		t.Errorf("worst epoch convergence = %d rounds, budget 64", sum.MaxConvergence)
	}
	if viols := coloring.Verify(s.Graph(), s.Assignment()); len(viols) != 0 {
		t.Fatalf("final schedule invalid: %v", viols[0])
	}
	// The driver spawns no goroutines of its own and engine probes join
	// theirs, so a sustained rise here is a leak. Allow slack for runtime
	// background goroutines.
	time.Sleep(10 * time.Millisecond)
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutines grew from %d to %d over the soak", before, after)
	}
}

// TestSoakDeterministicAcrossGOMAXPROCS is the acceptance determinism check:
// the full epoch-report stream AND the metrics exposition must be
// byte-identical across parallelism levels for a fixed seed.
func TestSoakDeterministicAcrossGOMAXPROCS(t *testing.T) {
	run := func() (string, string) {
		reg := obs.NewRegistry()
		cfg := churnConfig(7)
		cfg.ProbeEvery = 40
		cfg.Metrics = reg
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for i := 0; i < 90; i++ {
			rep, err := s.Step()
			if err != nil {
				t.Fatal(err)
			}
			probe := rep.EngineProbe
			rep.EngineProbe = nil
			fmt.Fprintf(&sb, "%+v", rep)
			if probe != nil {
				fmt.Fprintf(&sb, " probe=%+v", *probe)
			}
			sb.WriteByte('\n')
		}
		return sb.String(), reg.Text()
	}
	var reports, texts []string
	for _, procs := range []int{1, 8} {
		old := runtime.GOMAXPROCS(procs)
		rep, txt := run()
		runtime.GOMAXPROCS(old)
		reports = append(reports, rep)
		texts = append(texts, txt)
	}
	if reports[0] != reports[1] {
		t.Errorf("epoch reports differ across GOMAXPROCS:\n%s\nvs\n%s",
			firstDiff(reports[0], reports[1]), "")
	}
	if texts[0] != texts[1] {
		t.Errorf("metrics exposition differs across GOMAXPROCS:\n%s",
			firstDiff(texts[0], texts[1]))
	}
	if !strings.Contains(texts[0], "fdlsp_soak_convergence_rounds") ||
		!strings.Contains(texts[0], "fdlsp_soak_usable_fraction") {
		t.Error("soak families missing from exposition")
	}
}

func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  %s\n  %s", i, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}

// TestSoakAdversarialInits starts from the all-zero and maximally
// conflicting colorings: epoch 0 must converge to a conflict-free schedule,
// and the usable fraction during that repair must dip below 1 (the metric
// actually observes the broken frame) before recovering.
func TestSoakAdversarialInits(t *testing.T) {
	for _, mode := range []InitMode{InitZero, InitConflict} {
		cfg := churnConfig(3)
		cfg.Init = mode
		cfg.ProbeEvery = 0
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := s.Step()
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if rep.DirtyArcs == 0 || rep.ConvergenceRounds == 0 {
			t.Errorf("%s: adversarial start repaired for free: %+v", mode, rep)
		}
		if rep.MinUsable >= 1 {
			t.Errorf("%s: usable fraction never dipped during repair", mode)
		}
		if rep.Usable != 1 || rep.Residual != 0 {
			t.Errorf("%s: epoch 0 did not fully heal: %+v", mode, rep)
		}
		if viols := coloring.Verify(s.Graph(), s.Assignment()); len(viols) != 0 {
			t.Fatalf("%s: schedule invalid after epoch 0: %v", mode, viols[0])
		}
	}
}

func TestSoakConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"crash rate", func(c *Config) { c.CrashRate = 1.5 }, "crash rate"},
		{"move rate", func(c *Config) { c.MoveRate = -0.1 }, "move rate"},
		{"leave rate", func(c *Config) { c.LeaveRate = 2 }, "leave rate"},
		{"loss", func(c *Config) { c.Loss = 1 }, "loss"},
		{"init mode", func(c *Config) { c.Init = "chaotic" }, "init mode"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := churnConfig(1)
			tc.mut(&cfg)
			_, err := New(cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("New accepted bad config (err=%v)", err)
			}
		})
	}
}

// TestSoakEngineProbeAdoptsValidSchedule forces an early reschedule and
// checks the adopted schedule verifies and the probe observed the run.
func TestSoakEngineProbeAdoptsValidSchedule(t *testing.T) {
	cfg := churnConfig(5)
	cfg.N = 20
	cfg.ProbeEvery = 3
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var probe *ProbeReport
	for i := 0; i < 4; i++ {
		rep, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if rep.EngineProbe != nil {
			probe = rep.EngineProbe
		}
	}
	if probe == nil {
		t.Fatal("no engine probe ran in 4 epochs with ProbeEvery=3")
	}
	if probe.Rounds == 0 || probe.ProbePoints == 0 {
		t.Errorf("probe did not observe the run: %+v", probe)
	}
	if viols := coloring.Verify(s.Graph(), s.Assignment()); len(viols) != 0 {
		t.Fatalf("adopted schedule invalid: %v", viols[0])
	}
}
