// Package soak is the self-stabilizing continuous-operation driver: where
// the rest of the repository runs terminating experiments — a protocol run
// ends, a fault plan is exhausted, a verifier inspects the corpse — the soak
// keeps a TDMA schedule alive under an unbounded stream of perturbations and
// measures stabilization while it happens. Per Herman & Tixeuil's survey of
// self-stabilizing TDMA (PAPERS.md, arXiv:cs/0405042) the property of
// interest is convergence from any state under perpetual churn: sensors
// crash and restart, leave and rejoin, walk across the plan (quasi unit disk
// connectivity re-derived from positions each epoch), and the schedule may
// even start from an adversarial coloring (all arcs uncolored, or all arcs
// jammed into slot 1).
//
// Each epoch the driver draws a deterministic batch of perturbations,
// applies the resulting topology delta, and repairs the schedule with a
// distributed-round local rule (see stabilize.go) whose round count is the
// epoch's convergence time. While repair runs the driver tracks the usable
// fraction of the TDMA frame — transmissions whose slot actually fires —
// and the residual conflict count, publishing everything through
// fdlsp_soak_* metric families. Periodically it hands the live topology
// back to the full DistMIS protocol under a lossy, crash-laden engine run
// (sim.FaultStream materializes the window) and adopts the fresh schedule,
// probing the protocol's own repair progress mid-run via core's ProbePoint
// hook.
//
// Every draw is a pure function of (Seed, epoch, node) — the same
// splitmix64 scheme as sim.FaultStream and geom.Mobility — and every
// consumer of randomness is either sequential or already GOMAXPROCS
// invariant (the sim engines), so a fixed seed reproduces an unbounded soak
// byte-for-byte at any parallelism.
package soak

import (
	"fmt"

	"fdlsp/internal/coloring"
	"fdlsp/internal/geom"
	"fdlsp/internal/graph"
	"fdlsp/internal/obs"
	"fdlsp/internal/sim"
)

// InitMode selects the initial coloring the soak starts from.
type InitMode string

const (
	// InitGreedy starts from a valid greedy schedule (steady-state entry).
	InitGreedy InitMode = "greedy"
	// InitZero starts with every arc uncolored — the all-zero adversarial
	// state: no transmission has a slot until the stabilizer assigns one.
	InitZero InitMode = "zero"
	// InitConflict starts with every arc in slot 1 — the maximally
	// conflicting adversarial state: every pair of conflicting arcs clashes.
	InitConflict InitMode = "conflict"
)

// Config parameterizes a soak. The zero value of most fields picks a
// sensible default (see New); rates are probabilities in [0,1].
type Config struct {
	// Seed drives every draw of the soak: churn, mobility, engine probes.
	Seed int64
	// N is the number of sensors; Side the plan's side length; Radius the
	// transmission radius. Alpha and GrayP are the QUDG parameters (gray-zone
	// coins are frozen across epochs so link churn comes from movement).
	N      int
	Side   float64
	Radius float64
	Alpha  float64
	GrayP  float64
	// Step and MoveRate parameterize the reflecting random walk: each epoch
	// a node moves with probability MoveRate by at most Step per axis.
	Step     float64
	MoveRate float64
	// CrashRate is the per-node per-epoch probability of starting an outage
	// of MinOutage..MaxOutage epochs (a crashed sensor loses its links; its
	// arcs leave the schedule until it restarts).
	CrashRate            float64
	MinOutage, MaxOutage int64
	// LeaveRate is the per-node per-epoch probability of an orderly
	// departure of MinAway..MaxAway epochs — operationally identical to an
	// outage but accounted as leave/join churn.
	LeaveRate        float64
	MinAway, MaxAway int64
	// Init is the initial coloring mode (default InitGreedy).
	Init InitMode
	// Loss is the message-loss probability of engine probe runs, and
	// ProbeEvery their period in epochs (0 disables them). Each probe run
	// subjects the live topology to a full DistMIS execution over the
	// reliable transport with loss and a sim.FaultStream crash window, then
	// adopts the resulting schedule — the soak's periodic protocol-level
	// reschedule.
	Loss       float64
	ProbeEvery int64
	// ProbeHorizon bounds the crash windows of probe runs in virtual-time
	// units (default 200).
	ProbeHorizon int64
	// Metrics optionally receives the fdlsp_soak_* families.
	Metrics *obs.Registry
}

// EpochReport is the outcome of one churn epoch.
type EpochReport struct {
	Epoch int64
	// Churn applied this epoch.
	Crashes, Restarts  int
	Leaves, Joins      int
	Moves              int
	LinksUp, LinksDown int
	// DirtyArcs is the size of the repair's initial dirty set;
	// ConvergenceRounds the distributed rounds the stabilizer needed.
	DirtyArcs         int
	ConvergenceRounds int
	// MinUsable is the worst usable-frame fraction observed during repair;
	// Usable the fraction after repair (1 unless the epoch failed).
	MinUsable float64
	Usable    float64
	// Residual is the conflict count after repair (always 0 on success).
	Residual int
	// Live and Slots describe the network after the epoch.
	Live  int
	Slots int
	// EngineProbe is set on epochs that ran a protocol-level reschedule.
	EngineProbe *ProbeReport
}

// Summary aggregates a bounded soak run.
type Summary struct {
	Epochs             int64
	TotalPerturbations int64
	MaxConvergence     int
	SumConvergence     int64
	MinUsable          float64
	EngineProbes       int
	FinalSlots         int
	FinalLive          int
}

// MeanConvergence returns the average convergence time per epoch.
func (s Summary) MeanConvergence() float64 {
	if s.Epochs == 0 {
		return 0
	}
	return float64(s.SumConvergence) / float64(s.Epochs)
}

// Soak is a running churn soak. Not safe for concurrent use; drive it from
// one goroutine (it spawns none of its own — engine probes join theirs
// before returning).
type Soak struct {
	cfg Config
	mob *geom.Mobility

	pts   []geom.Point
	g     *graph.Graph // current topology: live-node links only
	as    coloring.Assignment
	down  []int64 // node is crashed until this epoch
	away  []int64 // node has left until this epoch
	epoch int64

	stream *sim.FaultStream
	m      *metrics
}

// New builds a soak from the config and establishes the initial schedule.
func New(cfg Config) (*Soak, error) {
	if cfg.N <= 0 {
		cfg.N = 48
	}
	if cfg.Side == 0 {
		cfg.Side = 12
	}
	if cfg.Radius == 0 {
		cfg.Radius = 2.5
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.75
	}
	if cfg.Step == 0 {
		cfg.Step = 0.3
	}
	if cfg.Init == "" {
		cfg.Init = InitGreedy
	}
	if cfg.MinOutage == 0 {
		cfg.MinOutage = 1
	}
	if cfg.MaxOutage < cfg.MinOutage {
		cfg.MaxOutage = cfg.MinOutage + 3
	}
	if cfg.MinAway == 0 {
		cfg.MinAway = 2
	}
	if cfg.MaxAway < cfg.MinAway {
		cfg.MaxAway = cfg.MinAway + 6
	}
	if cfg.ProbeHorizon == 0 {
		cfg.ProbeHorizon = 200
	}
	for _, r := range []struct {
		name string
		v    float64
	}{{"move rate", cfg.MoveRate}, {"crash rate", cfg.CrashRate},
		{"leave rate", cfg.LeaveRate}, {"gray-p", cfg.GrayP}} {
		if r.v < 0 || r.v > 1 {
			return nil, fmt.Errorf("soak: %s %v outside [0,1]", r.name, r.v)
		}
	}
	if cfg.Loss < 0 || cfg.Loss >= 1 {
		return nil, fmt.Errorf("soak: loss %v outside [0,1)", cfg.Loss)
	}
	switch cfg.Init {
	case InitGreedy, InitZero, InitConflict:
	default:
		return nil, fmt.Errorf("soak: unknown init mode %q", cfg.Init)
	}

	s := &Soak{
		cfg: cfg,
		mob: &geom.Mobility{
			Seed: cfg.Seed ^ 0x715EA5ED, Side: cfg.Side, Step: cfg.Step,
			MoveRate: cfg.MoveRate, Radius: cfg.Radius, Alpha: cfg.Alpha,
			GrayP: cfg.GrayP,
		},
		down: make([]int64, cfg.N),
		away: make([]int64, cfg.N),
		stream: &sim.FaultStream{
			Seed: cfg.Seed ^ 0x57AB1E, Loss: cfg.Loss,
			CrashRate: cfg.CrashRate, MinOutage: 4, MaxOutage: 40,
		},
		m: newMetrics(cfg.Metrics),
	}
	// Deterministic placement: hash draws, same scheme as the walk itself.
	s.pts = make([]geom.Point, cfg.N)
	for v := range s.pts {
		s.pts[v] = geom.Point{
			X: s.hash01(-1, v, 0) * cfg.Side,
			Y: s.hash01(-1, v, 1) * cfg.Side,
		}
	}
	s.g = s.mob.GraphAt(s.pts, 0)

	switch cfg.Init {
	case InitGreedy:
		s.as = coloring.Greedy(s.g, nil)
	case InitZero:
		s.as = coloring.NewAssignment(s.g)
	case InitConflict:
		s.as = coloring.NewAssignment(s.g)
		for _, a := range s.g.ArcsView() {
			s.as[a] = 1
		}
	}
	return s, nil
}

// Graph returns the current live topology (read-only by convention).
func (s *Soak) Graph() *graph.Graph { return s.g }

// Assignment returns the current schedule (read-only by convention).
func (s *Soak) Assignment() coloring.Assignment { return s.as }

// Epoch returns the number of epochs completed so far.
func (s *Soak) Epoch() int64 { return s.epoch }

// hash01 returns a uniform [0,1) draw for (epoch, node, dim).
func (s *Soak) hash01(epoch int64, node, dim int) float64 {
	x := splitmix64(uint64(s.cfg.Seed) ^ splitmix64(uint64(epoch)*0x9E3779B97F4A7C15^uint64(node)<<20^uint64(dim)^0x50AC))
	return float64(x>>11) / (1 << 53)
}

// hashInt returns a uniform draw in [0, n).
func (s *Soak) hashInt(epoch int64, node, dim int, n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(s.hash01(epoch, node, dim) * float64(n))
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// live reports whether node v participates in the network at epoch e.
func (s *Soak) live(v int, e int64) bool {
	return s.down[v] <= e && s.away[v] <= e
}

// Step runs one churn epoch: draw perturbations, apply the topology delta,
// stabilize the schedule, and (periodically) reschedule via a full engine
// run. The returned report is a pure function of (Config, epoch index).
func (s *Soak) Step() (EpochReport, error) {
	e := s.epoch
	rep := EpochReport{Epoch: e, MinUsable: 1, Usable: 1}

	// 1. Lifecycle churn: restarts/joins happen when a timer expires; new
	// outages and departures are drawn among currently-live nodes.
	for v := 0; v < s.cfg.N; v++ {
		wasLive := e == 0 || s.live(v, e-1)
		if s.down[v] == e && s.down[v] > 0 {
			rep.Restarts++
		}
		if s.away[v] == e && s.away[v] > 0 {
			rep.Joins++
		}
		if !s.live(v, e) {
			continue
		}
		if wasLive && s.cfg.CrashRate > 0 && s.hash01(e, v, 2) < s.cfg.CrashRate {
			length := s.cfg.MinOutage + s.hashInt(e, v, 3, s.cfg.MaxOutage-s.cfg.MinOutage+1)
			s.down[v] = e + 1 + length
			rep.Crashes++
			continue
		}
		if wasLive && s.cfg.LeaveRate > 0 && s.hash01(e, v, 4) < s.cfg.LeaveRate {
			length := s.cfg.MinAway + s.hashInt(e, v, 5, s.cfg.MaxAway-s.cfg.MinAway+1)
			s.away[v] = e + 1 + length
			rep.Leaves++
		}
	}

	// 2. Mobility: every node walks, live or not — a crashed sensor drifts
	// and rejoins wherever it has moved to.
	for v := 0; v < s.cfg.N; v++ {
		if s.mob.Moves(e, v) {
			rep.Moves++
		}
	}
	s.mob.Advance(e, s.pts)

	// 3. Topology delta: desired = position-derived links between live
	// nodes; gray-zone coins frozen (salt 0) so link churn tracks movement.
	desired := s.mob.GraphAt(s.pts, 0)
	var gone []graph.Edge
	for _, ed := range s.g.Edges() {
		if !desired.HasEdge(ed.U, ed.V) || !s.live(ed.U, e) || !s.live(ed.V, e) {
			gone = append(gone, ed)
		}
	}
	var fresh []graph.Edge
	for _, ed := range desired.Edges() {
		if s.live(ed.U, e) && s.live(ed.V, e) && !s.g.HasEdge(ed.U, ed.V) {
			fresh = append(fresh, ed)
		}
	}
	for _, ed := range gone {
		s.g.RemoveEdge(ed.U, ed.V)
		delete(s.as, graph.Arc{From: ed.U, To: ed.V})
		delete(s.as, graph.Arc{From: ed.V, To: ed.U})
	}
	newArcs := make([]graph.Arc, 0, 2*len(fresh))
	for _, ed := range fresh {
		s.g.AddEdge(ed.U, ed.V)
		newArcs = append(newArcs, graph.Arc{From: ed.U, To: ed.V}, graph.Arc{From: ed.V, To: ed.U})
	}
	rep.LinksDown, rep.LinksUp = len(gone), len(fresh)

	// 4. Dirty set: the new arcs plus every existing arc their adjacency
	// now clashes with. A link insertion can only violate pairs whose both
	// members share an endpoint with the new edge (they appear in the new
	// arcs' conflict sets), so this covers every violation the delta
	// introduced; on epoch 0 an adversarial init dirties everything.
	dirty := make(map[graph.Arc]bool)
	if e == 0 && s.cfg.Init != InitGreedy {
		for _, a := range s.g.ArcsView() {
			dirty[a] = true
		}
	}
	for _, a := range newArcs {
		dirty[a] = true
	}
	for _, a := range newArcs {
		for _, b := range coloring.ConflictingArcs(s.g, a) {
			if c := s.as[b]; c != coloring.None {
				for _, w := range coloring.AuditArcs(s.g, s.as, []graph.Arc{b}) {
					dirty[w.A] = true
					dirty[w.B] = true
				}
			}
		}
	}
	rep.DirtyArcs = len(dirty)

	// 5. Stabilize in measured distributed rounds.
	rounds, minUsable, err := s.stabilize(dirty)
	if err != nil {
		return rep, err
	}
	rep.ConvergenceRounds = rounds
	rep.MinUsable = minUsable
	rep.Usable = coloring.UsableFraction(s.g, s.as)
	rep.Residual = len(coloring.Verify(s.g, s.as))
	if rep.Residual != 0 {
		return rep, fmt.Errorf("soak: epoch %d left %d residual conflicts", e, rep.Residual)
	}

	// 6. Periodic protocol-level reschedule under loss and engine churn.
	if s.cfg.ProbeEvery > 0 && e > 0 && e%s.cfg.ProbeEvery == 0 {
		pr, err := s.engineProbe(e)
		if err != nil {
			return rep, err
		}
		rep.EngineProbe = &pr
	}

	for v := 0; v < s.cfg.N; v++ {
		if s.live(v, e) {
			rep.Live++
		}
	}
	rep.Slots = s.as.NumColors()
	s.epoch++
	s.m.publish(rep)
	return rep, nil
}

// Run drives the soak for the given number of epochs and aggregates.
func (s *Soak) Run(epochs int) (Summary, error) {
	sum := Summary{MinUsable: 1}
	for i := 0; i < epochs; i++ {
		rep, err := s.Step()
		if err != nil {
			return sum, err
		}
		sum.Epochs++
		sum.TotalPerturbations += int64(rep.Crashes + rep.Restarts + rep.Leaves +
			rep.Joins + rep.Moves + rep.LinksUp + rep.LinksDown)
		if rep.ConvergenceRounds > sum.MaxConvergence {
			sum.MaxConvergence = rep.ConvergenceRounds
		}
		sum.SumConvergence += int64(rep.ConvergenceRounds)
		if rep.MinUsable < sum.MinUsable {
			sum.MinUsable = rep.MinUsable
		}
		if rep.EngineProbe != nil {
			sum.EngineProbes++
		}
		sum.FinalSlots = rep.Slots
		sum.FinalLive = rep.Live
	}
	return sum, nil
}
