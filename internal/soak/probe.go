package soak

import (
	"fmt"

	"fdlsp/internal/core"
)

// ProbeReport is the outcome of one protocol-level reschedule: the soak
// hands the live topology to DistMIS under message loss and a materialized
// window of the crash/restart stream, watches the schedule being built via
// the mid-run probe hook, and adopts the result.
type ProbeReport struct {
	Epoch int64
	// Rounds and Messages account the engine run.
	Rounds   int64
	Messages int64
	// Returned counts nodes that crashed and rejoined inside the run.
	Returned int
	// ProbePoints is the number of mid-run observations; ConvergedAt the
	// protocol-global round at which the first observation saw every arc of
	// the live topology colored (-1 if only the final state did).
	ProbePoints int
	ConvergedAt int64
	// Slots is the frame length of the adopted schedule.
	Slots int
}

// engineProbe runs the periodic reschedule for epoch e. The run's fault
// window comes from the soak's sim.FaultStream — sustained bounded
// crash/restart churn *inside* the protocol run, on top of message loss —
// so the probe exercises exactly the regime the soak exists to measure:
// convergence while the network keeps failing. All outages are bounded, so
// every node rejoins and the schedule covers the whole live topology, which
// the epoch's verifier then re-checks.
func (s *Soak) engineProbe(e int64) (ProbeReport, error) {
	rep := ProbeReport{Epoch: e, ConvergedAt: -1}
	live := make([]bool, s.cfg.N)
	for v := range live {
		live[v] = s.live(v, e)
	}
	plan := s.stream.Plan(e, s.cfg.N, live, s.cfg.ProbeHorizon)
	target := len(s.g.ArcsView())
	res, err := core.DistMIS(s.g, core.Options{
		Seed:       s.cfg.Seed ^ (e+1)*0x9E3779B9,
		Fault:      plan,
		Metrics:    s.cfg.Metrics,
		ProbeEvery: 16,
		Probe: func(p core.ProbePoint) {
			rep.ProbePoints++
			if rep.ConvergedAt < 0 && p.ColoredArcs() >= target {
				rep.ConvergedAt = p.Elapsed + p.Round
			}
		},
	})
	if err != nil {
		return rep, fmt.Errorf("soak: engine probe at epoch %d: %w", e, err)
	}
	if len(res.Crashed) != 0 {
		return rep, fmt.Errorf("soak: engine probe at epoch %d lost nodes %v (outages are bounded)", e, res.Crashed)
	}
	s.as = res.Assignment
	rep.Rounds = res.Stats.Rounds
	rep.Messages = res.Stats.Messages
	rep.Returned = len(res.Rejoin.Returned)
	rep.Slots = res.Slots
	return rep, nil
}
