package soak

import "fdlsp/internal/obs"

// metrics bundles the fdlsp_soak_* families. A nil registry disables
// publication (every method guards), so the soak runs identically with and
// without observability — the metrics are derived from the deterministic
// EpochReport, never the other way around.
type metrics struct {
	epochs       *obs.Counter
	perturb      *obs.CounterVec
	convergence  *obs.Histogram
	dirty        *obs.Gauge
	usable       *obs.Gauge
	minUsable    *obs.Gauge
	residual     *obs.Gauge
	live         *obs.Gauge
	slots        *obs.Gauge
	engineProbes *obs.Counter
	probeRounds  *obs.Histogram
}

func newMetrics(r *obs.Registry) *metrics {
	if r == nil {
		return nil
	}
	convBuckets := []float64{0, 1, 2, 4, 8, 16, 32, 64, 128}
	roundBuckets := []float64{50, 100, 200, 400, 800, 1600, 3200, 6400}
	return &metrics{
		epochs: r.Counter("fdlsp_soak_epochs_total",
			"Churn epochs completed by the soak driver."),
		perturb: r.CounterVec("fdlsp_soak_perturbations_total",
			"Perturbations applied, by kind.", "kind"),
		convergence: r.Histogram("fdlsp_soak_convergence_rounds",
			"Distributed repair rounds from perturbation to a conflict-free schedule.",
			convBuckets),
		dirty: r.Gauge("fdlsp_soak_dirty_arcs",
			"Dirty arcs entering the last epoch's repair."),
		usable: r.Gauge("fdlsp_soak_usable_fraction",
			"Usable fraction of the TDMA frame after the last repair."),
		minUsable: r.Gauge("fdlsp_soak_min_usable_fraction",
			"Worst usable fraction observed during the last repair."),
		residual: r.Gauge("fdlsp_soak_residual_conflicts",
			"Conflicts remaining after the last repair (0 on success)."),
		live: r.Gauge("fdlsp_soak_live_nodes",
			"Nodes currently participating in the network."),
		slots: r.Gauge("fdlsp_soak_slots",
			"TDMA frame length of the maintained schedule."),
		engineProbes: r.Counter("fdlsp_soak_engine_probes_total",
			"Protocol-level reschedules run against the live topology."),
		probeRounds: r.Histogram("fdlsp_soak_engine_probe_rounds",
			"Protocol rounds per engine reschedule under loss and churn.",
			roundBuckets),
	}
}

func (m *metrics) publish(rep EpochReport) {
	if m == nil {
		return
	}
	m.epochs.Inc()
	m.perturb.With("crash").Add(float64(rep.Crashes))
	m.perturb.With("restart").Add(float64(rep.Restarts))
	m.perturb.With("leave").Add(float64(rep.Leaves))
	m.perturb.With("join").Add(float64(rep.Joins))
	m.perturb.With("move").Add(float64(rep.Moves))
	m.perturb.With("link_up").Add(float64(rep.LinksUp))
	m.perturb.With("link_down").Add(float64(rep.LinksDown))
	m.convergence.Observe(float64(rep.ConvergenceRounds))
	m.dirty.Set(float64(rep.DirtyArcs))
	m.usable.Set(rep.Usable)
	m.minUsable.Set(rep.MinUsable)
	m.residual.Set(float64(rep.Residual))
	m.live.Set(float64(rep.Live))
	m.slots.Set(float64(rep.Slots))
	if rep.EngineProbe != nil {
		m.engineProbes.Inc()
		m.probeRounds.Observe(float64(rep.EngineProbe.Rounds))
	}
}
