package dmgc

import (
	"fmt"
	"sort"

	"fdlsp/internal/core"
	"fdlsp/internal/graph"
	"fdlsp/internal/sim"
)

// DistributedEdgeColoring colors the edges of g with at most 2Δ-1 colors by
// a fully distributed randomized protocol (Luby-style proposals), measured
// on the synchronous engine. This is the cheap alternative to D-MGC's
// Vizing/Misra–Gries phase 1: it needs no fans, no cd-path inversions and
// no locks, converging in O(log m) rounds w.h.p., but spends up to 2Δ-1
// instead of Δ+1 colors — ScheduleDistributed and the ablation benchmarks
// quantify what that costs in TDMA slots.
//
// Protocol (2 rounds per iteration): the higher-ID endpoint of every
// uncolored edge proposes a random color that is free at its side and
// distinct among its own proposals; the lower-ID endpoint adjudicates all
// proposals it receives in one round — rejecting colors used at its side
// and, among same-color proposals, accepting only the highest proposer —
// and replies; accepted proposals become final and both endpoints update
// their used sets.
func DistributedEdgeColoring(g *graph.Graph, seed int64) (EdgeColoring, sim.Stats, error) {
	palette := 2*g.MaxDegree() - 1
	if g.M() == 0 {
		return EdgeColoring{}, sim.Stats{}, nil
	}
	nodes := make([]*ecNode, g.N())
	eng := sim.NewSyncEngine(g, seed, func(id int) sim.SyncNode {
		nodes[id] = newECNode(id, g, palette)
		return nodes[id]
	})
	if err := eng.Run(); err != nil {
		return nil, sim.Stats{}, err
	}
	col := make(EdgeColoring, g.M())
	for _, nd := range nodes {
		for e, c := range nd.owned {
			col[e] = c
		}
	}
	for _, e := range g.Edges() {
		if col[e] == 0 {
			return nil, sim.Stats{}, fmt.Errorf("dmgc: distributed coloring left %v uncolored", e)
		}
	}
	if err := verifyBudget(g, col, palette); err != nil {
		return nil, sim.Stats{}, err
	}
	return col, eng.Stats(), nil
}

// verifyBudget checks properness within an explicit palette (the exported
// VerifyEdgeColoring insists on Δ+1, which the distributed protocol does
// not promise).
func verifyBudget(g *graph.Graph, col EdgeColoring, budget int) error {
	seen := make(map[[2]int]graph.Edge)
	for _, e := range g.Edges() {
		c := col[e]
		if c < 1 || c > budget {
			return fmt.Errorf("dmgc: edge %v color %d outside palette %d", e, c, budget)
		}
		for _, v := range []int{e.U, e.V} {
			key := [2]int{v, c}
			if other, dup := seen[key]; dup {
				return fmt.Errorf("dmgc: %v and %v share color %d at node %d", e, other, c, v)
			}
			seen[key] = e
		}
	}
	return nil
}

// Message types of the edge-coloring protocol.
type (
	ecPropose struct {
		Edge  graph.Edge
		Color int
	}
	ecVerdict struct {
		Edge     graph.Edge
		Color    int
		Accepted bool
	}
)

type ecNode struct {
	id      int
	g       *graph.Graph
	palette int

	used     map[int]bool       // colors on my incident edges
	owned    map[graph.Edge]int // edges I own (higher-ID endpoint), 0 = pending
	pending  map[graph.Edge]int // my proposals in flight
	finished bool
}

func newECNode(id int, g *graph.Graph, palette int) *ecNode {
	nd := &ecNode{
		id:      id,
		g:       g,
		palette: palette,
		used:    make(map[int]bool),
		owned:   make(map[graph.Edge]int),
		pending: make(map[graph.Edge]int),
	}
	for _, u := range g.Neighbors(id) {
		if id > u {
			nd.owned[graph.NormEdge(id, u)] = 0
		}
	}
	return nd
}

// other returns the endpoint of e that is not this node.
func (nd *ecNode) other(e graph.Edge) int {
	if e.U == nd.id {
		return e.V
	}
	return e.U
}

func (nd *ecNode) Step(env *sim.SyncEnv, inbox []sim.Message) bool {
	if env.Round%2 == 0 {
		// Adjudication results from the previous round arrive here.
		for _, m := range inbox {
			v, ok := m.Payload.(ecVerdict)
			if !ok {
				panic(fmt.Sprintf("dmgc: unexpected %T in propose round", m.Payload))
			}
			if v.Accepted {
				nd.owned[v.Edge] = v.Color
				nd.used[v.Color] = true
			}
			delete(nd.pending, v.Edge)
		}
		// Propose random distinct free colors for still-uncolored edges.
		taken := make(map[int]bool)
		edges := nd.pendingEdges()
		for _, e := range edges {
			c := nd.randomFree(env, taken)
			if c == 0 {
				continue // no free color left this round for this edge
			}
			taken[c] = true
			nd.pending[e] = c
			env.Send(nd.other(e), ecPropose{Edge: e, Color: c})
		}
	} else {
		// Adjudicate: group proposals by color; colors used at my side are
		// rejected outright; among same-color proposals the highest
		// proposer wins.
		byColor := make(map[int][]ecPropose)
		for _, m := range inbox {
			p, ok := m.Payload.(ecPropose)
			if !ok {
				panic(fmt.Sprintf("dmgc: unexpected %T in adjudication round", m.Payload))
			}
			byColor[p.Color] = append(byColor[p.Color], p)
		}
		colors := make([]int, 0, len(byColor))
		for c := range byColor {
			colors = append(colors, c)
		}
		sort.Ints(colors)
		// Colors of this node's own in-flight proposals are off limits too:
		// the remote adjudicator may accept them this very round, and a
		// simultaneous local acceptance of the same color would collide
		// here.
		inFlight := make(map[int]bool, len(nd.pending))
		for _, c := range nd.pending {
			inFlight[c] = true
		}
		for _, c := range colors {
			group := byColor[c]
			sort.Slice(group, func(i, j int) bool { return proposer(group[i].Edge) > proposer(group[j].Edge) })
			for i, p := range group {
				accept := i == 0 && !nd.used[c] && !inFlight[c]
				if accept {
					nd.used[c] = true
				}
				env.Send(proposer(p.Edge), ecVerdict{Edge: p.Edge, Color: c, Accepted: accept})
			}
		}
	}
	nd.finished = len(nd.pendingEdges())+len(nd.pending) == 0
	return nd.finished
}

func (nd *ecNode) pendingEdges() []graph.Edge {
	var out []graph.Edge
	for e, c := range nd.owned {
		if c == 0 {
			if _, inFlight := nd.pending[e]; !inFlight {
				out = append(out, e)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

func (nd *ecNode) randomFree(env *sim.SyncEnv, taken map[int]bool) int {
	var free []int
	for c := 1; c <= nd.palette; c++ {
		if !nd.used[c] && !taken[c] {
			free = append(free, c)
		}
	}
	if len(free) == 0 {
		return 0
	}
	return free[env.Rand.Intn(len(free))]
}

// proposer is the owning (higher-ID) endpoint of an edge.
func proposer(e graph.Edge) int {
	if e.U > e.V {
		return e.U
	}
	return e.V
}

// ScheduleDistributed is D-MGC with the fully distributed phase 1: the
// (2Δ-1)-color randomized edge coloring replaces Misra–Gries, then the
// usual orientation, injection and doubling run. Stats carry the measured
// phase-1 rounds/messages — making this the variant whose communication is
// fully measured rather than partially analytic. The price is a longer
// frame than Schedule's (more base colors to double), which the ablation
// benchmarks quantify.
func ScheduleDistributed(g *graph.Graph, seed int64) (*core.Result, error) {
	ec, stats, err := DistributedEdgeColoring(g, seed)
	if err != nil {
		return nil, err
	}
	res, err := scheduleFromColoring(g, ec)
	if err != nil {
		return nil, err
	}
	res.Algorithm = "d-mgc-distributed"
	res.Stats = stats
	return res, nil
}
