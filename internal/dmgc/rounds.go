package dmgc

import (
	"fmt"

	"fdlsp/internal/graph"
	"fdlsp/internal/sim"
)

// Phase1Rounds measures, on the sim engine, the communication rounds of
// D-MGC's first phase under its scheduling discipline: "a node colors its
// incident edges exclusively when all of its 2-hop neighbors with higher ID
// have finished edge-coloring" [8]. Completion notices travel two hops (one
// relay round); the reported number is the rounds until every node has
// colored. cd-path inversions would only add to this, so the measurement is
// a lower bound on the real phase-1 cost.
func Phase1Rounds(g *graph.Graph, seed int64) (int64, error) {
	nodes := make([]*phase1Node, g.N())
	eng := sim.NewSyncEngine(g, seed, func(id int) sim.SyncNode {
		waiting := make(map[int]struct{})
		for _, u := range g.Within(id, 2) {
			if u > id {
				waiting[u] = struct{}{}
			}
		}
		nodes[id] = &phase1Node{waiting: waiting}
		return nodes[id]
	})
	if err := eng.Run(); err != nil {
		return 0, err
	}
	return eng.Stats().Rounds, nil
}

// phase1Done is flooded two hops when a node finishes coloring.
type phase1Done struct {
	Origin int
	TTL    int
}

type phase1Node struct {
	waiting map[int]struct{} // higher-ID 2-hop neighbors not yet done
	colored bool
	seen    map[int]struct{}
}

func (nd *phase1Node) Step(env *sim.SyncEnv, inbox []sim.Message) bool {
	if nd.seen == nil {
		nd.seen = make(map[int]struct{})
	}
	for _, m := range inbox {
		d, ok := m.Payload.(phase1Done)
		if !ok {
			panic(fmt.Sprintf("dmgc: unexpected payload %T", m.Payload))
		}
		if _, dup := nd.seen[d.Origin]; dup {
			continue
		}
		nd.seen[d.Origin] = struct{}{}
		delete(nd.waiting, d.Origin)
		if d.TTL > 1 {
			env.Broadcast(phase1Done{Origin: d.Origin, TTL: d.TTL - 1})
		}
	}
	if !nd.colored && len(nd.waiting) == 0 {
		// Our turn: color (abstracted; the actual colors come from the
		// centralized Misra–Gries result) and announce completion two hops.
		nd.colored = true
		nd.seen[env.ID] = struct{}{}
		env.Broadcast(phase1Done{Origin: env.ID, TTL: 2})
	}
	return nd.colored
}

// Phase2RoundsEstimate returns the direction-assignment phase's cost per
// the paper's own accounting: one DFS tree per color, each walking the
// network in O(n) rounds, with only the highest-ID initiator surviving —
// (Δ+1) colors × 2n rounds. (The paper bounds the phase by O(nmΔ) with
// lock contention; this estimate is deliberately charitable to D-MGC.)
func Phase2RoundsEstimate(g *graph.Graph) int64 {
	return int64(g.MaxDegree()+1) * 2 * int64(g.N())
}

// MeasuredRounds combines the simulated phase 1 with the charitable phase-2
// estimate — the number used alongside DistMIS's fully measured rounds in
// the Figures 13–15 comparison tables.
func MeasuredRounds(g *graph.Graph, seed int64) (int64, error) {
	p1, err := Phase1Rounds(g, seed)
	if err != nil {
		return 0, err
	}
	return p1 + Phase2RoundsEstimate(g), nil
}
