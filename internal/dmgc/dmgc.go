package dmgc

import (
	"fmt"
	"sort"

	"fdlsp/internal/coloring"
	"fdlsp/internal/core"
	"fdlsp/internal/graph"
)

// Schedule runs the D-MGC baseline on g and returns the full duplex TDMA
// schedule: Misra–Gries Δ+1 edge coloring, per-class direction assignment
// with color injection, then doubling (each oriented class yields two
// slots, one per direction). Stats are left zero — the paper compares
// D-MGC's slot counts, not measured rounds; use AnalyticRounds for its
// round bound.
func Schedule(g *graph.Graph) (*core.Result, error) {
	ec, err := MisraGries(g)
	if err != nil {
		return nil, err
	}
	if err := VerifyEdgeColoring(g, ec); err != nil {
		return nil, fmt.Errorf("dmgc: phase 1 produced improper coloring: %w", err)
	}
	return scheduleFromColoring(g, ec)
}

// scheduleFromColoring runs D-MGC's phase 2 (orientation, injection,
// doubling) on any proper edge coloring.
func scheduleFromColoring(g *graph.Graph, ec EdgeColoring) (*core.Result, error) {
	// Group edges by color, deterministically.
	byColor := make(map[int][]graph.Edge)
	for e, c := range ec {
		byColor[c] = append(byColor[c], e)
	}
	colors := make([]int, 0, len(byColor))
	for c := range byColor {
		colors = append(colors, c)
	}
	sort.Ints(colors)

	var classes []orientedClass
	var injected []graph.Edge
	for _, c := range colors {
		edges := byColor[c]
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].U != edges[j].U {
				return edges[i].U < edges[j].U
			}
			return edges[i].V < edges[j].V
		})
		class, evicted := orientClass(g, edges)
		if len(class) > 0 {
			classes = append(classes, class)
		}
		injected = append(injected, evicted...)
	}
	classes = append(classes, packInjected(g, injected)...)

	// Doubling: class k occupies slots 2k-1 (chosen directions) and 2k
	// (reversed).
	as := coloring.NewAssignment(g)
	for k, class := range classes {
		fwd, rev := 2*(k+1)-1, 2*(k+1)
		for _, a := range class {
			as.Set(a, fwd)
			as.Set(a.Reverse(), rev)
		}
	}
	return &core.Result{
		Algorithm:  "d-mgc",
		Assignment: as,
		Slots:      as.NumColors(),
	}, nil
}

// AnalyticRounds returns the paper's worst-case communication-round bound
// for D-MGC, O(n²m + nmΔ), evaluated with unit constants.
func AnalyticRounds(g *graph.Graph) int64 {
	n, m, d := int64(g.N()), int64(g.M()), int64(g.MaxDegree())
	return n*n*m + n*m*d
}
