package dmgc

import (
	"sort"

	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
)

// orientedClass is one final slot-pair worth of links: a set of arcs that
// can transmit simultaneously (its wholesale reversal is equally feasible,
// because the hidden-terminal condition is symmetric under reversing both
// arcs of a pair).
type orientedClass []graph.Arc

// arcFor returns the arc of edge e under the boolean orientation (true
// means U→V of the canonical edge).
func arcFor(e graph.Edge, dir bool) graph.Arc {
	if dir {
		return graph.Arc{From: e.U, To: e.V}
	}
	return graph.Arc{From: e.V, To: e.U}
}

// orientClass tries to direct every edge of one color class (a matching) so
// that no two arcs conflict under the distance-2 rules. It returns the
// oriented class plus the edges that had to be evicted ("injected" with
// fresh colors by the caller) because the class admitted no consistent
// orientation with them in it.
func orientClass(g *graph.Graph, edges []graph.Edge) (orientedClass, []graph.Edge) {
	var injected []graph.Edge
	work := append([]graph.Edge(nil), edges...)
	for {
		if len(work) == 0 {
			return nil, injected
		}
		sat := newTwoSAT(len(work))
		conflicts := make([]int, len(work)) // constraint degree per edge
		feasible := true
		for i := 0; i < len(work) && feasible; i++ {
			for j := i + 1; j < len(work); j++ {
				pairConstrained := false
				allForbidden := true
				for _, di := range []bool{true, false} {
					for _, dj := range []bool{true, false} {
						if coloring.Conflict(g, arcFor(work[i], di), arcFor(work[j], dj)) {
							sat.forbid(lit(i, di), lit(j, dj))
							pairConstrained = true
						} else {
							allForbidden = false
						}
					}
				}
				if pairConstrained {
					conflicts[i]++
					conflicts[j]++
				}
				if allForbidden {
					feasible = false
					break
				}
			}
		}
		var assign []bool
		if feasible {
			assign, feasible = sat.solve()
		}
		if feasible {
			out := make(orientedClass, len(work))
			for i, e := range work {
				out[i] = arcFor(e, assign[i])
			}
			return out, injected
		}
		// Unsatisfiable: evict the most constrained edge and retry — this is
		// the "inject more colors" step of D-MGC.
		worst := 0
		for i := range work {
			if conflicts[i] > conflicts[worst] {
				worst = i
			}
		}
		injected = append(injected, work[worst])
		work = append(work[:worst], work[worst+1:]...)
	}
}

// packInjected greedily first-fits the injected edges into fresh classes:
// an edge joins the first class where some orientation conflicts with no
// arc already placed there, otherwise it opens a new class. This mirrors
// the baseline's color injection, which reuses injected colors only
// opportunistically.
func packInjected(g *graph.Graph, edges []graph.Edge) []orientedClass {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	var classes []orientedClass
next:
	for _, e := range edges {
		for ci, class := range classes {
			for _, dir := range []bool{true, false} {
				a := arcFor(e, dir)
				ok := true
				for _, b := range class {
					if coloring.Conflict(g, a, b) {
						ok = false
						break
					}
				}
				if ok {
					classes[ci] = append(classes[ci], a)
					continue next
				}
			}
		}
		classes = append(classes, orientedClass{arcFor(e, true)})
	}
	return classes
}
