package dmgc

import (
	"math/rand"
	"testing"

	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
)

func TestOrientClassMatchingOnPath(t *testing.T) {
	// Path 0-1-2-3-4-5: the matching {0,1},{2,3},{4,5} is one Vizing class.
	g := graph.Path(6)
	edges := []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}, {U: 4, V: 5}}
	class, injected := orientClass(g, edges)
	if len(injected) != 0 {
		t.Fatalf("path matching should orient without injection, evicted %v", injected)
	}
	if len(class) != 3 {
		t.Fatalf("class size %d", len(class))
	}
	for i := 0; i < len(class); i++ {
		for j := i + 1; j < len(class); j++ {
			if coloring.Conflict(g, class[i], class[j]) {
				t.Fatalf("oriented class self-conflicts: %v vs %v", class[i], class[j])
			}
		}
	}
}

func TestOrientClassForcedInjection(t *testing.T) {
	// In K4 any two disjoint edges see all four orientation combinations
	// forbidden (every endpoint adjacent to every other), so one edge must
	// be evicted.
	g := graph.Complete(4)
	edges := []graph.Edge{{U: 0, V: 1}, {U: 2, V: 3}}
	class, injected := orientClass(g, edges)
	if len(injected) != 1 || len(class) != 1 {
		t.Fatalf("K4 matching: class %v injected %v", class, injected)
	}
}

func TestOrientClassEmpty(t *testing.T) {
	g := graph.Path(2)
	class, injected := orientClass(g, nil)
	if len(class) != 0 || len(injected) != 0 {
		t.Fatal("empty class should stay empty")
	}
}

func TestPackInjectedProducesConflictFreeClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(12)
		g := graph.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		classes := packInjected(g, g.Edges())
		seen := 0
		for _, class := range classes {
			seen += len(class)
			for i := 0; i < len(class); i++ {
				for j := i + 1; j < len(class); j++ {
					if coloring.Conflict(g, class[i], class[j]) {
						t.Fatalf("trial %d: packed class conflicts: %v vs %v", trial, class[i], class[j])
					}
				}
			}
		}
		if seen != g.M() {
			t.Fatalf("trial %d: packed %d of %d edges", trial, seen, g.M())
		}
	}
}

func TestArcFor(t *testing.T) {
	e := graph.Edge{U: 2, V: 5}
	if arcFor(e, true) != (graph.Arc{From: 2, To: 5}) {
		t.Error("forward orientation")
	}
	if arcFor(e, false) != (graph.Arc{From: 5, To: 2}) {
		t.Error("reverse orientation")
	}
}

// TestReversalSymmetry validates the doubling step's soundness argument: a
// conflict-free oriented class stays conflict-free when every arc is
// reversed.
func TestReversalSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(12)
		g := graph.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		classes := packInjected(g, g.Edges())
		for _, class := range classes {
			for i := 0; i < len(class); i++ {
				for j := i + 1; j < len(class); j++ {
					a, b := class[i].Reverse(), class[j].Reverse()
					if coloring.Conflict(g, a, b) {
						t.Fatalf("trial %d: reversed class conflicts: %v vs %v", trial, a, b)
					}
				}
			}
		}
	}
}
