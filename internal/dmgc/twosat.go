package dmgc

// twoSAT is a small 2-SAT solver (implication graph + Tarjan SCC) used to
// decide whether one color class admits a consistent direction assignment.
// Variable i has literals 2i (true) and 2i+1 (false).
type twoSAT struct {
	n   int
	adj [][]int32
}

func newTwoSAT(n int) *twoSAT {
	return &twoSAT{n: n, adj: make([][]int32, 2*n)}
}

func lit(v int, val bool) int32 {
	if val {
		return int32(2 * v)
	}
	return int32(2*v + 1)
}

func neg(l int32) int32 { return l ^ 1 }

// addClause adds (a ∨ b).
func (s *twoSAT) addClause(a, b int32) {
	s.adj[neg(a)] = append(s.adj[neg(a)], b)
	s.adj[neg(b)] = append(s.adj[neg(b)], a)
}

// forbid adds the constraint ¬(a ∧ b): the two literals may not both hold.
func (s *twoSAT) forbid(a, b int32) { s.addClause(neg(a), neg(b)) }

// solve returns a satisfying assignment, or ok=false when unsatisfiable.
func (s *twoSAT) solve() (assign []bool, ok bool) {
	n2 := 2 * s.n
	comp := make([]int32, n2)
	for i := range comp {
		comp[i] = -1
	}
	low := make([]int32, n2)
	num := make([]int32, n2)
	onStack := make([]bool, n2)
	for i := range num {
		num[i] = -1
	}
	var stack, callStack []int32
	var iterIdx []int32
	var counter, ncomp int32

	for start := int32(0); start < int32(n2); start++ {
		if num[start] >= 0 {
			continue
		}
		callStack = append(callStack[:0], start)
		iterIdx = append(iterIdx[:0], 0)
		num[start], low[start] = counter, counter
		counter++
		stack = append(stack, start)
		onStack[start] = true
		for len(callStack) > 0 {
			v := callStack[len(callStack)-1]
			if int(iterIdx[len(iterIdx)-1]) < len(s.adj[v]) {
				w := s.adj[v][iterIdx[len(iterIdx)-1]]
				iterIdx[len(iterIdx)-1]++
				if num[w] < 0 {
					num[w], low[w] = counter, counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, w)
					iterIdx = append(iterIdx, 0)
				} else if onStack[w] && num[w] < low[v] {
					low[v] = num[w]
				}
				continue
			}
			// Post-visit.
			callStack = callStack[:len(callStack)-1]
			iterIdx = iterIdx[:len(iterIdx)-1]
			if len(callStack) > 0 {
				p := callStack[len(callStack)-1]
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] == num[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
		}
	}

	assign = make([]bool, s.n)
	for v := 0; v < s.n; v++ {
		t, f := comp[2*v], comp[2*v+1]
		if t == f {
			return nil, false
		}
		// Tarjan numbers components in reverse topological order, so the
		// later component is the implied value.
		assign[v] = t < f
	}
	return assign, true
}
