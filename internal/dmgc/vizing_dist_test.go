package dmgc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
)

func TestDistributedVizingSmallFixed(t *testing.T) {
	cases := map[string]*graph.Graph{
		"edge":   graph.Path(2),
		"path5":  graph.Path(5),
		"cycle6": graph.Cycle(6),
		"cycle7": graph.Cycle(7),
		"star8":  graph.Star(8),
		"k4":     graph.Complete(4),
		"k5":     graph.Complete(5),
		"k33":    graph.CompleteBipartite(3, 3),
		"grid":   graph.Grid(4, 4),
	}
	for name, g := range cases {
		col, stats, err := DistributedVizing(g, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := VerifyEdgeColoring(g, col); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.M() > 0 && stats.Messages == 0 {
			t.Errorf("%s: no messages measured", name)
		}
	}
}

func TestDistributedVizingRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(30)
		g := graph.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		col, _, err := DistributedVizing(g, int64(trial))
		if err != nil {
			t.Fatalf("trial %d (%v): %v", trial, g, err)
		}
		if err := VerifyEdgeColoring(g, col); err != nil {
			t.Fatalf("trial %d (%v): %v", trial, g, err)
		}
	}
}

func TestDistributedVizingTreesNeverInvert(t *testing.T) {
	// On trees the protocol must still produce Δ+1 colorings (fans rarely
	// need inversions but the machinery must not break).
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 15; trial++ {
		g := graph.RandomTree(2+rng.Intn(60), rng)
		col, _, err := DistributedVizing(g, int64(trial))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := VerifyEdgeColoring(g, col); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestDistributedVizingDense(t *testing.T) {
	// Dense graphs exercise inversions and lock contention heavily.
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 8; trial++ {
		n := 10 + rng.Intn(15)
		maxM := n * (n - 1) / 2
		g := graph.GNM(n, maxM*3/4, rng)
		col, _, err := DistributedVizing(g, int64(trial))
		if err != nil {
			t.Fatalf("trial %d (%v): %v", trial, g, err)
		}
		if err := VerifyEdgeColoring(g, col); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestDistributedVizingMatchesCentralizedBudget(t *testing.T) {
	// Both must stay within Δ+1 (VerifyEdgeColoring enforces it); spot the
	// larger instance for confidence.
	g := graph.ConnectedGNM(120, 420, rand.New(rand.NewSource(44)))
	col, stats, err := DistributedVizing(g, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyEdgeColoring(g, col); err != nil {
		t.Fatal(err)
	}
	t.Logf("n=%d m=%d Δ=%d: %d virtual time units, %d messages",
		g.N(), g.M(), g.MaxDegree(), stats.Rounds, stats.Messages)
}

func TestScheduleVizingDistributed(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 6; trial++ {
		g := graph.ConnectedGNM(30, 80, rng)
		res, err := ScheduleVizingDistributed(g, int64(trial))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if viols := coloring.Verify(g, res.Assignment); len(viols) != 0 {
			t.Fatalf("trial %d: invalid FDLSP schedule: %v", trial, viols[0])
		}
		if res.Stats.Rounds == 0 {
			t.Errorf("trial %d: no measured phase-1 cost", trial)
		}
		// Same phase 2 as the centralized variant: slots should be close to
		// Schedule's (identical palette), certainly within the 2Δ² bound.
		d := g.MaxDegree()
		if res.Slots > 2*d*d {
			t.Errorf("trial %d: %d slots above 2Δ²", trial, res.Slots)
		}
	}
}

// Property: the protocol terminates and colors properly on arbitrary random
// graphs and seeds.
func TestDistributedVizingPropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(18)
		g := graph.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		col, _, err := DistributedVizing(g, seed)
		if err != nil {
			return false
		}
		return VerifyEdgeColoring(g, col) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestDistributedVizingStress hammers the protocol across many seeds and
// densities — lock contention, aborted attempts and chased releases all
// occur in this mix (kept moderate; a 600-seed sweep was run during
// development).
func TestDistributedVizingStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for trial := 0; trial < 150; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 7919))
		n := 2 + rng.Intn(25)
		g := graph.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		col, _, err := DistributedVizing(g, int64(trial))
		if err != nil {
			t.Fatalf("trial %d (%v): %v", trial, g, err)
		}
		if err := VerifyEdgeColoring(g, col); err != nil {
			t.Fatalf("trial %d (%v): %v", trial, g, err)
		}
	}
}
