// Package dmgc re-implements the comparison baseline of the paper's
// evaluation: the D-MGC full duplex link scheduling algorithm of Gandham,
// Dawande and Prakash [8]. Phase 1 edge-colors the undirected graph with at
// most Δ+1 colors (Misra–Gries, the distributed variant's sequential core);
// phase 2 assigns a direction to every edge of each color class so that the
// hidden terminal problem is avoided, injecting fresh colors for edges whose
// class admits no consistent orientation; finally every oriented class is
// doubled (all directions reversed) to obtain the full duplex schedule.
//
// The re-implementation is output-faithful: the paper's figures compare the
// number of TDMA slots produced, which this package reproduces; the round
// complexity of D-MGC is not measured but reported from the paper's own
// analysis, O(n²m + nmΔ) (see DESIGN.md, "Substitutions").
package dmgc

import (
	"fmt"

	"fdlsp/internal/graph"
)

// EdgeColoring is a proper edge coloring: no two edges sharing an endpoint
// have the same color. Colors are 1-based.
type EdgeColoring map[graph.Edge]int

// MisraGries edge-colors g with at most Δ+1 colors using the Misra–Gries
// constructive proof of Vizing's theorem (fans, cd-path inversion, fan
// rotation).
func MisraGries(g *graph.Graph) (EdgeColoring, error) {
	mg := &mgState{
		g:      g,
		colors: g.MaxDegree() + 1,
		col:    make(EdgeColoring, g.M()),
		at:     make([]map[int]int, g.N()),
	}
	for v := range mg.at {
		mg.at[v] = make(map[int]int)
	}
	for _, e := range g.Edges() {
		if err := mg.colorEdge(e.U, e.V); err != nil {
			return nil, err
		}
	}
	return mg.col, nil
}

// VerifyEdgeColoring checks properness and completeness of col on g and the
// Δ+1 budget; it returns a descriptive error on the first problem found.
func VerifyEdgeColoring(g *graph.Graph, col EdgeColoring) error {
	budget := g.MaxDegree() + 1
	seen := make(map[[2]int]graph.Edge) // (vertex, color) -> edge
	for _, e := range g.Edges() {
		c, ok := col[e]
		if !ok || c < 1 {
			return fmt.Errorf("dmgc: edge %v uncolored", e)
		}
		if c > budget {
			return fmt.Errorf("dmgc: edge %v uses color %d > Δ+1 = %d", e, c, budget)
		}
		for _, v := range []int{e.U, e.V} {
			key := [2]int{v, c}
			if other, dup := seen[key]; dup {
				return fmt.Errorf("dmgc: edges %v and %v share color %d at node %d", e, other, c, v)
			}
			seen[key] = e
		}
	}
	return nil
}

// mgState carries the evolving partial coloring. at[v] maps a color to the
// neighbor reached by the edge of that color at v (each vertex has at most
// one edge per color).
type mgState struct {
	g      *graph.Graph
	colors int
	col    EdgeColoring
	at     []map[int]int
}

func (mg *mgState) colorOf(u, v int) int { return mg.col[graph.NormEdge(u, v)] }

func (mg *mgState) setColor(u, v, c int) {
	e := graph.NormEdge(u, v)
	if old, ok := mg.col[e]; ok {
		delete(mg.at[u], old)
		delete(mg.at[v], old)
	}
	if c == 0 {
		delete(mg.col, e)
		return
	}
	if x, busy := mg.at[u][c]; busy && x != v {
		panic(fmt.Sprintf("dmgc: color %d already used at %d for (%d,%d)", c, u, u, x))
	}
	if x, busy := mg.at[v][c]; busy && x != u {
		panic(fmt.Sprintf("dmgc: color %d already used at %d for (%d,%d)", c, v, v, x))
	}
	mg.col[e] = c
	mg.at[u][c] = v
	mg.at[v][c] = u
}

// isFree reports whether color c is unused at v.
func (mg *mgState) isFree(v, c int) bool {
	_, used := mg.at[v][c]
	return !used
}

// freeColor returns the smallest color in 1..Δ+1 free at v.
func (mg *mgState) freeColor(v int) int {
	for c := 1; c <= mg.colors; c++ {
		if mg.isFree(v, c) {
			return c
		}
	}
	return 0 // impossible: deg(v) <= Δ < Δ+1 colors
}

// colorEdge colors the uncolored edge (u,v).
func (mg *mgState) colorEdge(u, v int) error {
	// Maximal fan of u starting at v: fan[i+1] is a neighbor x of u with
	// (u,x) colored and that color free on fan[i].
	fan := []int{v}
	inFan := map[int]bool{v: true}
	for {
		extended := false
		for _, x := range mg.g.Neighbors(u) {
			if inFan[x] {
				continue
			}
			cx := mg.colorOf(u, x)
			if cx != 0 && mg.isFree(fan[len(fan)-1], cx) {
				fan = append(fan, x)
				inFan[x] = true
				extended = true
				break
			}
		}
		if !extended {
			break
		}
	}

	c := mg.freeColor(u)
	d := mg.freeColor(fan[len(fan)-1])
	if c == 0 || d == 0 {
		return fmt.Errorf("dmgc: no free color at %d or fan end (internal)", u)
	}
	if c != d {
		mg.invertPath(u, c, d)
	}
	// After inversion d is free on u. Find the shortest fan prefix ending at
	// a vertex where d is free; the prefix must still be a valid fan under
	// the (possibly changed) coloring.
	w := -1
	for i, x := range fan {
		if i > 0 {
			cx := mg.colorOf(u, fan[i])
			if cx == 0 || !mg.isFree(fan[i-1], cx) {
				break // prefix no longer a fan beyond here
			}
		}
		if mg.isFree(x, d) {
			w = i
			break
		}
	}
	if w < 0 {
		return fmt.Errorf("dmgc: no rotatable fan vertex for edge (%d,%d) (internal)", u, v)
	}
	// Rotate the prefix: edge (u,fan[i]) takes the color of (u,fan[i+1]) and
	// (u,fan[w]) takes d. Clear all prefix edges before re-setting — the
	// shifted colors transiently collide at u otherwise.
	shift := make([]int, w+1)
	for i := 0; i < w; i++ {
		shift[i] = mg.colorOf(u, fan[i+1])
	}
	shift[w] = d
	for i := 0; i <= w; i++ {
		mg.setColor(u, fan[i], 0)
	}
	for i := 0; i <= w; i++ {
		mg.setColor(u, fan[i], shift[i])
	}
	return nil
}

// invertPath swaps colors c and d along the maximal cd-alternating path
// starting at u. u has no c-edge (c is free there), so the path begins with
// the d-edge at u, if any; after inversion d is free at u. The path is
// simple: every vertex carries at most one edge per color, and it cannot
// return to u because that would require a c-edge at u.
func (mg *mgState) invertPath(u, c, d int) {
	type hop struct{ a, b, color int }
	var path []hop
	prev, want := u, d
	for {
		next, ok := mg.at[prev][want]
		if !ok {
			break
		}
		path = append(path, hop{a: prev, b: next, color: want})
		prev = next
		if want == d {
			want = c
		} else {
			want = d
		}
	}
	// Clear first, then recolor: recoloring in place would transiently give
	// a vertex two edges of one color and corrupt the at-maps.
	for _, h := range path {
		mg.setColor(h.a, h.b, 0)
	}
	for _, h := range path {
		swapped := c
		if h.color == c {
			swapped = d
		}
		mg.setColor(h.a, h.b, swapped)
	}
}
