package dmgc

import (
	"fmt"
	"sort"

	"fdlsp/internal/core"
	"fdlsp/internal/graph"
	"fdlsp/internal/sim"
)

// This file implements D-MGC's phase 1 as the fully distributed protocol
// the paper describes in its review of [8]: nodes color their incident
// edges with at most Δ+1 colors under the "all higher-ID 2-hop neighbors
// finish first" discipline, using Vizing fans locally and cd-path
// inversions walked hop-by-hop through the network, with wound-wait
// locking to serialize concurrent inversions (the paper: "if more than one
// cd-path to be inverted are overlapping, then one cd-path inversion only
// proceeds, the rest are locked").
//
// Concurrency structure:
//
//   - active initiators are pairwise more than 2 hops apart (the
//     discipline), so their neighborhood locks never collide; only remote
//     cd-paths can cross a neighborhood or another path;
//   - every lock names its operation (initiator, attempt); a request
//     hitting a foreign lock applies wound-wait on the initiator ID: a
//     lower-priority requester queues, a higher-priority requester wounds
//     the holder, whose initiator aborts the attempt, releases everything
//     (abort notifications route back along the same hops the locks came
//     from) and retries; attempt numbers make stale replies harmless;
//   - once an inversion starts flipping colors it ignores wounds and
//     completes — it acquires no further locks then, so the wounding
//     operation simply waits in the lock queue; this keeps inversions
//     atomic and the system deadlock-free (any wait chain is strictly
//     priority-increasing);
//   - the highest-priority initiator is never forced to abort and always
//     completes, which gives global progress.
//
// The result is a measured — not analytic — round count for D-MGC's
// phase 1 with genuine lock contention, used by ScheduleVizingDistributed.

// opID names one attempt of one initiator's per-edge operation.
type opID struct {
	Init    int // initiator node = priority (higher wins)
	Attempt int
}

// Messages of the distributed Vizing protocol.
type (
	vzLock  struct{ Op opID }
	vzGrant struct {
		Op    opID
		Table map[int]int // grantee's neighbor -> color view
	}
	vzWound    struct{ Op opID }
	vzPathLock struct {
		Op    opID
		C, D  int
		Trace []int // nodes visited, initiator first
	}
	vzPathEnd struct {
		Op    opID
		Trace []int
		Back  int // trace index the message is currently addressed to
	}
	vzFlip struct {
		Op   opID
		C, D int
	}
	vzFlipDone struct {
		Op    opID
		Trace []int
		Back  int
	}
	// vzUnlockPath chases the walk along remembered forwarding pointers;
	// TTL bounds the chase when pointers outlive their locks.
	vzUnlockPath struct {
		Op  opID
		TTL int
	}
	vzUnlock    struct{ Op opID }
	vzSet       struct{ Color int }
	vzDoneFlood struct {
		Origin int
		TTL    int
	}
)

type vzPhase int

const (
	vzIdle vzPhase = iota
	vzLocking
	vzWalking
	vzFlipping
)

type vzNode struct {
	id      int
	g       *graph.Graph
	palette int

	colors map[int]int // neighbor -> edge color (0 uncolored)

	// Lock state (as a lock grantee / path participant).
	lockedBy *opID
	lockFrom int // hop the lock arrived from (-1 = direct or own)
	// walkNexts remembers, per operation, where this node forwarded that
	// operation's walk; the release chase follows and deletes the entry, so
	// interleaved walks through the same node cannot misroute each other's
	// chases.
	walkNexts map[opID]int
	flipTrace []int
	queue     []sim.Message
	woundSent bool

	// Activation bookkeeping.
	waitingOn map[int]struct{}
	doneSeen  map[int]struct{}
	active    bool
	done      bool

	// Initiator state.
	phase     vzPhase
	wantStart bool
	attempt   int
	target    int
	grants    map[int]map[int]int
	pendingG  int
	fan       []int
	fanC      int
	fanD      int
	pathNext  int
}

func newVZNode(id int, g *graph.Graph, palette int) *vzNode {
	waiting := make(map[int]struct{})
	for _, u := range g.Within(id, 2) {
		if u > id {
			waiting[u] = struct{}{}
		}
	}
	return &vzNode{
		id:        id,
		g:         g,
		palette:   palette,
		colors:    make(map[int]int),
		lockFrom:  -1,
		walkNexts: make(map[opID]int),
		pathNext:  -1,
		waitingOn: waiting,
		doneSeen:  make(map[int]struct{}),
	}
}

func (nd *vzNode) Run(env *sim.AsyncEnv) {
	nd.maybeActivate(env)
	for {
		m, ok := env.Recv()
		if !ok {
			return
		}
		nd.handle(env, m)
	}
}

func (nd *vzNode) op() opID { return opID{Init: nd.id, Attempt: nd.attempt} }

func other(col, c, d int) int {
	if col == c {
		return d
	}
	return c
}

func (nd *vzNode) handle(env *sim.AsyncEnv, m sim.Message) {
	switch p := m.Payload.(type) {
	case vzDoneFlood:
		if _, dup := nd.doneSeen[p.Origin]; dup {
			return
		}
		nd.doneSeen[p.Origin] = struct{}{}
		delete(nd.waitingOn, p.Origin)
		if p.TTL > 1 {
			env.Broadcast(vzDoneFlood{Origin: p.Origin, TTL: p.TTL - 1})
		}
		nd.maybeActivate(env)
	case vzSet:
		nd.colors[m.From] = p.Color
	case vzLock:
		nd.serveLock(env, m)
	case vzPathLock:
		nd.servePathLock(env, m)
	case vzUnlock:
		// Purge queued requests of the released operation first: a request
		// that was waiting here must never execute for an aborted attempt.
		nd.purgeQueue(p.Op)
		if nd.lockedBy != nil && *nd.lockedBy == p.Op {
			nd.unlock(env)
		}
	case vzUnlockPath:
		nd.purgeQueue(p.Op)
		next, walked := nd.walkNexts[p.Op]
		delete(nd.walkNexts, p.Op)
		if nd.lockedBy != nil && *nd.lockedBy == p.Op {
			nd.unlock(env)
		}
		// Forward along this operation's own pointer even if the lock was
		// already released by a direct neighborhood unlock — the chase must
		// still reach the chain beyond this node.
		if walked && next >= 0 && p.TTL > 1 {
			env.Send(next, vzUnlockPath{Op: p.Op, TTL: p.TTL - 1})
		}
	case vzWound:
		nd.routeWound(env, p)
	case vzGrant:
		switch {
		case nd.phase == vzLocking && p.Op == nd.op():
			nd.grants[m.From] = p.Table
			nd.pendingG--
			if nd.pendingG == 0 {
				nd.colorLockedEdge(env)
			}
		case p.Op.Init == nd.id && p.Op != nd.op():
			// A grant for an aborted attempt: release the grantee.
			env.Send(m.From, vzUnlock{Op: p.Op})
		}
	case vzPathEnd:
		nd.relayBack(env, p.Op, p.Trace, p.Back, true)
	case vzFlip:
		nd.serveFlip(env, m.From, p)
	case vzFlipDone:
		nd.relayBack(env, p.Op, p.Trace, p.Back, false)
	default:
		panic(fmt.Sprintf("dmgc: vizing node %d got %T", nd.id, m.Payload))
	}
}

// ---------------------------------------------------------------------------
// Lock service (passive side).

func (nd *vzNode) serveLock(env *sim.AsyncEnv, m sim.Message) {
	p := m.Payload.(vzLock)
	switch {
	case nd.lockedBy == nil:
		op := p.Op
		nd.lockedBy = &op
		nd.lockFrom = -1
		env.Send(m.From, vzGrant{Op: p.Op, Table: nd.table()})
	case *nd.lockedBy == p.Op:
		env.Send(m.From, vzGrant{Op: p.Op, Table: nd.table()})
	case p.Op.Init > nd.lockedBy.Init:
		nd.queue = append(nd.queue, m)
		nd.wound(env)
	default:
		nd.queue = append(nd.queue, m)
	}
}

func (nd *vzNode) servePathLock(env *sim.AsyncEnv, m sim.Message) {
	p := m.Payload.(vzPathLock)
	switch {
	case nd.lockedBy == nil || *nd.lockedBy == p.Op:
		if nd.lockedBy == nil {
			op := p.Op
			nd.lockedBy = &op
			nd.lockFrom = m.From
		}
		nd.continueWalk(env, m.From, p)
	case p.Op.Init > nd.lockedBy.Init:
		nd.queue = append(nd.queue, m)
		nd.wound(env)
	default:
		nd.queue = append(nd.queue, m)
	}
}

func (nd *vzNode) continueWalk(env *sim.AsyncEnv, from int, p vzPathLock) {
	incoming := nd.colors[from]
	wantNext := other(incoming, p.C, p.D)
	next := nd.neighborWithColor(wantNext)
	trace := append(append([]int(nil), p.Trace...), nd.id)
	if next >= 0 {
		nd.walkNexts[p.Op] = next
		env.Send(next, vzPathLock{Op: p.Op, C: p.C, D: p.D, Trace: trace})
		return
	}
	// Path ends here.
	delete(nd.walkNexts, p.Op)
	nd.flipTrace = trace
	env.Send(from, vzPathEnd{Op: p.Op, Trace: trace, Back: len(trace) - 2})
}

func (nd *vzNode) neighborWithColor(c int) int {
	for _, u := range nd.g.Neighbors(nd.id) {
		if nd.colors[u] == c {
			return u
		}
	}
	return -1
}

// relayBack moves a traced reply one hop toward the initiator (Back is the
// index of the node currently holding the message).
func (nd *vzNode) relayBack(env *sim.AsyncEnv, op opID, trace []int, back int, isPathEnd bool) {
	if back < 0 || back >= len(trace) || trace[back] != nd.id {
		return // stale routing
	}
	if back > 0 {
		if isPathEnd {
			env.Send(trace[back-1], vzPathEnd{Op: op, Trace: trace, Back: back - 1})
		} else {
			env.Send(trace[back-1], vzFlipDone{Op: op, Trace: trace, Back: back - 1})
		}
		return
	}
	if op != nd.op() {
		return // stale attempt
	}
	if isPathEnd {
		nd.onPathEnd(env, trace)
	} else {
		nd.onFlipDone(env, trace)
	}
}

func (nd *vzNode) serveFlip(env *sim.AsyncEnv, from int, p vzFlip) {
	if nd.lockedBy == nil || *nd.lockedBy != p.Op {
		return // stale
	}
	nd.colors[from] = other(nd.colors[from], p.C, p.D)
	if next, walked := nd.walkNexts[p.Op]; walked && next >= 0 {
		nd.colors[next] = other(nd.colors[next], p.C, p.D)
		env.Send(next, p)
		return
	}
	// Send a copy: flipTrace is node state, and payloads must never alias a
	// structure the sender may later rebind or mutate.
	trace := append([]int(nil), nd.flipTrace...)
	env.Send(from, vzFlipDone{Op: p.Op, Trace: trace, Back: len(trace) - 2})
}

func (nd *vzNode) wound(env *sim.AsyncEnv) {
	if nd.woundSent || nd.lockedBy == nil {
		return
	}
	nd.woundSent = true
	w := vzWound{Op: *nd.lockedBy}
	switch {
	case nd.lockFrom >= 0:
		env.Send(nd.lockFrom, w)
	case nd.lockedBy.Init == nd.id:
		nd.onWound(env, w.Op)
	default:
		env.Send(nd.lockedBy.Init, w) // neighborhood lock: initiator adjacent
	}
}

func (nd *vzNode) routeWound(env *sim.AsyncEnv, p vzWound) {
	if p.Op.Init == nd.id {
		nd.onWound(env, p.Op)
		return
	}
	if nd.lockedBy != nil && *nd.lockedBy == p.Op {
		if nd.lockFrom >= 0 {
			env.Send(nd.lockFrom, p)
		} else {
			env.Send(p.Op.Init, p)
		}
	}
	// Otherwise the lock is already released and the abort under way.
}

func (nd *vzNode) unlock(env *sim.AsyncEnv) {
	nd.lockedBy = nil
	nd.lockFrom = -1
	// walkNexts deliberately survives the unlock: the per-op release chase
	// consumes its own entry later.
	nd.flipTrace = nil
	nd.woundSent = false
	if len(nd.queue) > 0 {
		sort.SliceStable(nd.queue, func(i, j int) bool {
			return queuePrio(nd.queue[i]) > queuePrio(nd.queue[j])
		})
		q := nd.queue
		nd.queue = nil
		for _, qm := range q {
			nd.handle(env, qm)
		}
	}
	if nd.lockedBy == nil && nd.wantStart {
		nd.wantStart = false
		nd.beginAttempt(env)
	}
}

// purgeQueue drops queued requests belonging to a released operation.
func (nd *vzNode) purgeQueue(op opID) {
	kept := nd.queue[:0]
	for _, qm := range nd.queue {
		if qOp, ok := queueOp(qm); ok && qOp == op {
			continue
		}
		kept = append(kept, qm)
	}
	nd.queue = kept
}

func queueOp(m sim.Message) (opID, bool) {
	switch p := m.Payload.(type) {
	case vzLock:
		return p.Op, true
	case vzPathLock:
		return p.Op, true
	default:
		return opID{}, false
	}
}

func queuePrio(m sim.Message) int {
	switch p := m.Payload.(type) {
	case vzLock:
		return p.Op.Init
	case vzPathLock:
		return p.Op.Init
	default:
		return -1
	}
}

func (nd *vzNode) table() map[int]int {
	out := make(map[int]int, len(nd.colors))
	for u, c := range nd.colors {
		out[u] = c
	}
	return out
}

// ---------------------------------------------------------------------------
// Initiator side.

func (nd *vzNode) maybeActivate(env *sim.AsyncEnv) {
	if nd.active || nd.done || len(nd.waitingOn) > 0 {
		return
	}
	nd.active = true
	nd.startNextEdge(env)
}

func (nd *vzNode) startNextEdge(env *sim.AsyncEnv) {
	nd.phase = vzIdle
	nd.target = -1
	for _, u := range nd.g.Neighbors(nd.id) {
		if nd.colors[u] == 0 {
			nd.target = u
			break
		}
	}
	if nd.target < 0 {
		nd.finish(env)
		return
	}
	nd.attempt++
	nd.beginAttempt(env)
}

func (nd *vzNode) beginAttempt(env *sim.AsyncEnv) {
	if nd.lockedBy != nil {
		nd.wantStart = true // a remote path holds us; resume on unlock
		return
	}
	op := nd.op()
	nd.lockedBy = &op
	nd.lockFrom = -1
	nd.phase = vzLocking
	nd.grants = make(map[int]map[int]int)
	nd.pathNext = -1
	nbrs := nd.g.Neighbors(nd.id)
	nd.pendingG = len(nbrs)
	for _, u := range nbrs {
		env.Send(u, vzLock{Op: op})
	}
}

// freeAt returns the smallest color (1..palette) absent from used, or 0.
func freeIn(used map[int]bool, palette int) int {
	for c := 1; c <= palette; c++ {
		if !used[c] {
			return c
		}
	}
	return 0
}

func usedOf(table map[int]int) map[int]bool {
	out := make(map[int]bool, len(table))
	for _, c := range table {
		if c != 0 {
			out[c] = true
		}
	}
	return out
}

// colorLockedEdge runs once the whole neighborhood is locked: Vizing's
// step for the edge (id, target) with full distance-1 tables in hand.
func (nd *vzNode) colorLockedEdge(env *sim.AsyncEnv) {
	myUsed := usedOf(nd.colors)
	tUsed := usedOf(nd.grants[nd.target])
	// Fast path: a color free at both endpoints.
	for c := 1; c <= nd.palette; c++ {
		if !myUsed[c] && !tUsed[c] {
			nd.assign(env, nd.target, c)
			nd.finishAttempt(env)
			return
		}
	}
	// Build the maximal fan from target.
	fan := []int{nd.target}
	inFan := map[int]bool{nd.target: true}
	for {
		lastUsed := usedOf(nd.grants[fan[len(fan)-1]])
		next := -1
		for _, x := range nd.g.Neighbors(nd.id) {
			if !inFan[x] && nd.colors[x] != 0 && !lastUsed[nd.colors[x]] {
				next = x
				break
			}
		}
		if next < 0 {
			break
		}
		fan = append(fan, next)
		inFan[next] = true
	}
	c := freeIn(myUsed, nd.palette)
	d := freeIn(usedOf(nd.grants[fan[len(fan)-1]]), nd.palette)
	if c == 0 || d == 0 {
		panic(fmt.Sprintf("dmgc: vizing node %d found no free color (palette %d)", nd.id, nd.palette))
	}
	if !myUsed[d] {
		// d free at this node too: rotate the whole fan directly.
		nd.rotate(env, fan, len(fan)-1, d)
		nd.finishAttempt(env)
		return
	}
	// Invert the cd-path starting along this node's d-edge.
	n1 := nd.neighborWithColor(d)
	if n1 < 0 {
		panic(fmt.Sprintf("dmgc: vizing node %d uses d=%d but has no d-edge", nd.id, d))
	}
	nd.fan = fan
	nd.fanC = c
	nd.fanD = d
	nd.pathNext = n1
	nd.phase = vzWalking
	env.Send(n1, vzPathLock{Op: nd.op(), C: c, D: d, Trace: []int{nd.id}})
}

// onPathEnd starts the atomic flip.
func (nd *vzNode) onPathEnd(env *sim.AsyncEnv, trace []int) {
	if nd.phase != vzWalking {
		return
	}
	nd.phase = vzFlipping
	if len(trace) == 1 {
		// Degenerate: no path beyond the initiator (cannot happen — the
		// walk started along an existing d-edge), but keep it safe.
		nd.onFlipDone(env, trace)
		return
	}
	nd.flipTrace = trace
	nd.colors[nd.pathNext] = other(nd.colors[nd.pathNext], nd.fanC, nd.fanD)
	env.Send(nd.pathNext, vzFlip{Op: nd.op(), C: nd.fanC, D: nd.fanD})
}

// onFlipDone finishes the Vizing step after the inversion: refresh the
// locked tables along the path, find the rotatable fan prefix, rotate.
func (nd *vzNode) onFlipDone(env *sim.AsyncEnv, trace []int) {
	if nd.phase != vzFlipping {
		return
	}
	c, d := nd.fanC, nd.fanD
	// Post-flip color of path edge k (between trace[k] and trace[k+1]):
	// pre-flip alternates d, c, d, ...; post-flip is the other.
	post := func(k int) int {
		if k%2 == 0 {
			return c
		}
		return d
	}
	for j := 1; j < len(trace); j++ {
		x := trace[j]
		tbl, mine := nd.grants[x]
		if !mine {
			continue // path node outside the locked neighborhood
		}
		tbl[trace[j-1]] = post(j - 1)
		if j+1 < len(trace) {
			tbl[trace[j+1]] = post(j)
		}
	}
	// Find the shortest valid fan prefix ending where d is free.
	w := -1
	for i, x := range nd.fan {
		if i > 0 {
			cx := nd.colors[nd.fan[i]]
			if cx == 0 || usedOf(nd.grants[nd.fan[i-1]])[cx] {
				break
			}
		}
		if !usedOf(nd.grants[x])[d] {
			w = i
			break
		}
	}
	if w < 0 {
		panic(fmt.Sprintf("dmgc: vizing node %d: no rotatable fan vertex after inversion", nd.id))
	}
	nd.rotate(env, nd.fan, w, d)
	nd.finishAttempt(env)
}

// rotate shifts fan colors toward the start and gives fan[w] color d,
// informing every affected neighbor.
func (nd *vzNode) rotate(env *sim.AsyncEnv, fan []int, w int, d int) {
	shift := make([]int, w+1)
	for i := 0; i < w; i++ {
		shift[i] = nd.colors[fan[i+1]]
	}
	shift[w] = d
	for i := 0; i <= w; i++ {
		nd.assign(env, fan[i], shift[i])
	}
}

// assign sets the color of edge (id, u) locally and at u.
func (nd *vzNode) assign(env *sim.AsyncEnv, u, c int) {
	nd.colors[u] = c
	env.Send(u, vzSet{Color: c})
}

// finishAttempt releases every lock and moves to the next edge.
func (nd *vzNode) finishAttempt(env *sim.AsyncEnv) {
	nd.releaseAll(env)
	nd.startNextEdge(env)
}

// onWound aborts the in-flight attempt (unless the flip already started,
// which completes unconditionally) and retries with a fresh attempt id.
func (nd *vzNode) onWound(env *sim.AsyncEnv, op opID) {
	if op != nd.op() || nd.phase == vzIdle || nd.phase == vzFlipping {
		return
	}
	nd.releaseAll(env)
	nd.attempt++
	nd.phase = vzIdle
	nd.beginAttempt(env)
}

// releaseAll drops the neighborhood and path locks of the current attempt.
func (nd *vzNode) releaseAll(env *sim.AsyncEnv) {
	op := nd.op()
	for _, u := range nd.g.Neighbors(nd.id) {
		env.Send(u, vzUnlock{Op: op})
	}
	if nd.pathNext >= 0 {
		env.Send(nd.pathNext, vzUnlockPath{Op: op, TTL: nd.g.N() + 1})
		nd.pathNext = -1
	}
	nd.phase = vzIdle
	if nd.lockedBy != nil && *nd.lockedBy == op {
		nd.unlock(env)
	}
}

func (nd *vzNode) finish(env *sim.AsyncEnv) {
	nd.done = true
	nd.doneSeen[nd.id] = struct{}{}
	env.Broadcast(vzDoneFlood{Origin: nd.id, TTL: 2})
}

// ---------------------------------------------------------------------------
// Runner.

// DistributedVizing runs the protocol and returns the Δ+1 edge coloring
// with the measured asynchronous cost (virtual time and messages).
func DistributedVizing(g *graph.Graph, seed int64) (EdgeColoring, sim.Stats, error) {
	if g.M() == 0 {
		return EdgeColoring{}, sim.Stats{}, nil
	}
	palette := g.MaxDegree() + 1
	nodes := make([]*vzNode, g.N())
	eng := sim.NewAsyncEngine(g, seed, func(id int) sim.AsyncNode {
		nodes[id] = newVZNode(id, g, palette)
		return nodes[id]
	})
	if err := eng.Run(); err != nil {
		return nil, sim.Stats{}, err
	}
	col := make(EdgeColoring, g.M())
	for _, nd := range nodes {
		if !nd.done {
			return nil, sim.Stats{}, fmt.Errorf("dmgc: vizing node %d never finished", nd.id)
		}
		for u, c := range nd.colors {
			e := graph.NormEdge(nd.id, u)
			if prev, ok := col[e]; ok && prev != c {
				return nil, sim.Stats{}, fmt.Errorf("dmgc: edge %v endpoint views disagree (%d vs %d)", e, prev, c)
			}
			col[e] = c
		}
	}
	if err := VerifyEdgeColoring(g, col); err != nil {
		return nil, sim.Stats{}, fmt.Errorf("dmgc: distributed vizing: %w", err)
	}
	return col, eng.Stats(), nil
}

// ScheduleVizingDistributed is D-MGC with the protocol-faithful phase 1:
// distributed Vizing coloring (fans, message-walked cd-path inversions,
// wound-wait locks) followed by the usual orientation, injection and
// doubling. Stats carry the measured phase-1 cost.
func ScheduleVizingDistributed(g *graph.Graph, seed int64) (*core.Result, error) {
	ec, stats, err := DistributedVizing(g, seed)
	if err != nil {
		return nil, err
	}
	res, err := scheduleFromColoring(g, ec)
	if err != nil {
		return nil, err
	}
	res.Algorithm = "d-mgc-vizing-distributed"
	res.Stats = stats
	return res, nil
}
