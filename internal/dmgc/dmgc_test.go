package dmgc

import (
	"math/rand"
	"testing"

	"fdlsp/internal/coloring"
	"fdlsp/internal/core"
	"fdlsp/internal/geom"
	"fdlsp/internal/graph"
)

func suite(tb testing.TB) map[string]*graph.Graph {
	tb.Helper()
	rng := rand.New(rand.NewSource(17))
	udg, _ := geom.RandomUDG(60, 8, 1.2, rng)
	return map[string]*graph.Graph{
		"edge":    graph.Path(2),
		"path10":  graph.Path(10),
		"cycle8":  graph.Cycle(8),
		"cycle9":  graph.Cycle(9),
		"star12":  graph.Star(12),
		"k4":      graph.Complete(4),
		"k5":      graph.Complete(5),
		"k7":      graph.Complete(7),
		"k33":     graph.CompleteBipartite(3, 3),
		"k44":     graph.CompleteBipartite(4, 4),
		"grid6x6": graph.Grid(6, 6),
		"tree50":  graph.RandomTree(50, rng),
		"gnm":     graph.GNM(50, 150, rng),
		"dense":   graph.GNM(20, 150, rng),
		"udg":     udg,
	}
}

func TestMisraGriesProperAndWithinBudget(t *testing.T) {
	for name, g := range suite(t) {
		ec, err := MisraGries(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := VerifyEdgeColoring(g, ec); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestMisraGriesRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 60; i++ {
		n := 5 + rng.Intn(30)
		maxM := n * (n - 1) / 2
		g := graph.GNM(n, rng.Intn(maxM+1), rng)
		ec, err := MisraGries(g)
		if err != nil {
			t.Fatalf("iteration %d (%v): %v", i, g, err)
		}
		if err := VerifyEdgeColoring(g, ec); err != nil {
			t.Fatalf("iteration %d (%v): %v", i, g, err)
		}
	}
}

func TestScheduleValid(t *testing.T) {
	for name, g := range suite(t) {
		res, err := Schedule(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if viols := coloring.Verify(g, res.Assignment); len(viols) != 0 {
			t.Errorf("%s: %d violations, first %v", name, len(viols), viols[0])
		}
		if res.Slots%2 != 0 && g.M() > 0 {
			t.Errorf("%s: doubling should give an even slot count, got %d", name, res.Slots)
		}
	}
}

func TestScheduleTreeUsesDoubledVizing(t *testing.T) {
	// On trees no injection is ever needed, so D-MGC uses at most 2(Δ+1)
	// slots.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 20; i++ {
		g := graph.RandomTree(3+rng.Intn(60), rng)
		res, err := Schedule(g)
		if err != nil {
			t.Fatal(err)
		}
		if want := 2 * (g.MaxDegree() + 1); res.Slots > want {
			t.Errorf("tree %v: %d slots > 2(Δ+1)=%d", g, res.Slots, want)
		}
	}
}

func TestScheduleCompleteGraph(t *testing.T) {
	// K_n forces one arc per slot: Δ²+Δ slots exactly (paper, Section 3).
	for _, n := range []int{3, 4, 5, 6} {
		g := graph.Complete(n)
		res, err := Schedule(g)
		if err != nil {
			t.Fatal(err)
		}
		want := (n - 1) * (n - 1) * 2 // upper sanity: 2Δ²
		if res.Slots < (n-1)*n {
			t.Errorf("K%d: %d slots below forced minimum %d", n, res.Slots, (n-1)*n)
		}
		if res.Slots > want {
			t.Errorf("K%d: %d slots above 2Δ²=%d", n, res.Slots, want)
		}
	}
}

func TestTwoSATBasics(t *testing.T) {
	// (x0 ∨ x1) ∧ (¬x0 ∨ x1) forces x1.
	s := newTwoSAT(2)
	s.addClause(lit(0, true), lit(1, true))
	s.addClause(lit(0, false), lit(1, true))
	assign, ok := s.solve()
	if !ok || !assign[1] {
		t.Fatalf("expected satisfiable with x1=true, got ok=%v assign=%v", ok, assign)
	}
	// x0 ∧ ¬x0 is unsatisfiable.
	s = newTwoSAT(1)
	s.addClause(lit(0, true), lit(0, true))
	s.addClause(lit(0, false), lit(0, false))
	if _, ok := s.solve(); ok {
		t.Fatal("expected unsatisfiable")
	}
}

func TestTwoSATRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		k := rng.Intn(12)
		type clause struct{ a, b int32 }
		var cs []clause
		s := newTwoSAT(n)
		for i := 0; i < k; i++ {
			a := lit(rng.Intn(n), rng.Intn(2) == 0)
			b := lit(rng.Intn(n), rng.Intn(2) == 0)
			cs = append(cs, clause{a, b})
			s.addClause(a, b)
		}
		eval := func(l int32, bits int) bool {
			v := int(l / 2)
			val := bits>>v&1 == 1
			if l%2 == 1 {
				val = !val
			}
			return val
		}
		bruteSat := false
		for bits := 0; bits < 1<<n; bits++ {
			good := true
			for _, c := range cs {
				if !eval(c.a, bits) && !eval(c.b, bits) {
					good = false
					break
				}
			}
			if good {
				bruteSat = true
				break
			}
		}
		assign, ok := s.solve()
		if ok != bruteSat {
			t.Fatalf("trial %d: solver says %v, brute force says %v (clauses %v)", trial, ok, bruteSat, cs)
		}
		if ok {
			bits := 0
			for v, val := range assign {
				if val {
					bits |= 1 << v
				}
			}
			for _, c := range cs {
				if !eval(c.a, bits) && !eval(c.b, bits) {
					t.Fatalf("trial %d: returned assignment violates clause %v", trial, c)
				}
			}
		}
	}
}

func TestPhase1Rounds(t *testing.T) {
	// A path colors in waves from the highest ID down; rounds grow with n
	// but stay linear.
	for _, n := range []int{5, 20, 60} {
		r, err := Phase1Rounds(graph.Path(n), 1)
		if err != nil {
			t.Fatal(err)
		}
		if r < 1 || r > int64(4*n) {
			t.Errorf("path %d: phase-1 rounds %d outside (0, 4n]", n, r)
		}
	}
	// A single node colors immediately.
	if r, err := Phase1Rounds(graph.New(1), 1); err != nil || r > 1 {
		t.Errorf("singleton rounds %d err %v", r, err)
	}
}

func TestMeasuredRoundsDominatesDistMISShape(t *testing.T) {
	// The headline comparison: D-MGC's round cost is far above DistMIS's on
	// the same instance (paper, Figures 13-15 discussion).
	rng := rand.New(rand.NewSource(9))
	g := graph.ConnectedGNM(100, 300, rng)
	dm, err := core.DistMIS(g, core.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dg, err := MeasuredRounds(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if dg <= dm.Stats.Rounds {
		t.Errorf("D-MGC rounds %d not above distMIS %d — comparison shape lost", dg, dm.Stats.Rounds)
	}
}

func TestDistributedEdgeColoring(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(30)
		g := graph.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		col, stats, err := DistributedEdgeColoring(g, int64(trial))
		if err != nil {
			t.Fatalf("trial %d (%v): %v", trial, g, err)
		}
		budget := 2*g.MaxDegree() - 1
		if err := verifyBudget(g, col, budget); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if g.M() > 0 && stats.Messages == 0 {
			t.Errorf("trial %d: no communication recorded", trial)
		}
	}
}

func TestDistributedEdgeColoringFastConvergence(t *testing.T) {
	// O(log m) iterations w.h.p.: a 400-node graph must finish in far fewer
	// rounds than nodes.
	g := graph.ConnectedGNM(400, 1600, rand.New(rand.NewSource(5)))
	_, stats, err := DistributedEdgeColoring(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds > 120 {
		t.Errorf("distributed coloring took %d rounds — not logarithmic", stats.Rounds)
	}
}

func TestScheduleDistributedValidAndLonger(t *testing.T) {
	// The fully distributed variant stays valid; across a few instances it
	// must not beat the Vizing-based frame in aggregate (that gap is the
	// reason D-MGC pays for phase 1).
	rng := rand.New(rand.NewSource(6))
	var vizing, distributed int
	for trial := 0; trial < 6; trial++ {
		g := graph.ConnectedGNM(40, 110, rng)
		a, err := Schedule(g)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ScheduleDistributed(g, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		if viols := coloring.Verify(g, b.Assignment); len(viols) != 0 {
			t.Fatalf("trial %d: distributed variant invalid: %v", trial, viols[0])
		}
		if b.Stats.Rounds == 0 {
			t.Errorf("trial %d: no rounds measured", trial)
		}
		vizing += a.Slots
		distributed += b.Slots
	}
	if distributed < vizing {
		t.Logf("note: distributed (%d) beat Vizing (%d) on this sample — unusual but possible", distributed, vizing)
	}
	t.Logf("aggregate slots: vizing=%d distributed=%d", vizing, distributed)
}
