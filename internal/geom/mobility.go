package geom

import (
	"fmt"

	"fdlsp/internal/graph"
)

// Mobility is a deterministic, seeded mobility model: a reflecting random
// walk of sensors inside the side×side plan, with connectivity re-derived
// from positions as a quasi unit disk graph whose gray-zone links are
// decided by a seeded hash instead of a shared RNG stream. Every draw —
// whether a node moves in an epoch, where it steps, whether a gray-zone
// pair links up — is a pure function of (Seed, epoch, node), the same
// cursor-free scheme as sim.FaultStream: any epoch's displacements can be
// re-derived independently, two consumers of one trace agree, and the
// resulting neighborhoods are pure functions of the positions (iteration
// order cannot perturb them), which keeps churn soaks byte-deterministic
// across GOMAXPROCS.
type Mobility struct {
	// Seed drives every draw.
	Seed int64
	// Side is the plan's side length; walkers reflect at the borders.
	Side float64
	// Step is the maximum per-axis displacement of one move.
	Step float64
	// MoveRate is the per-node probability of moving in a given epoch.
	MoveRate float64
	// Radius is the transmission radius; Alpha and GrayP are the QUDG
	// parameters (inner fraction and gray-zone link probability). Alpha 1
	// or GrayP 1 degenerate to the plain unit disk graph.
	Radius float64
	Alpha  float64
	GrayP  float64
}

// hash01 returns a uniform [0,1) variate for the given coordinates.
func (m *Mobility) hash01(epoch int64, node, dim int) float64 {
	x := splitmix64(uint64(m.Seed) ^ splitmix64(uint64(epoch)*0x9E3779B97F4A7C15^uint64(node)<<20^uint64(dim)))
	return float64(x>>11) / (1 << 53)
}

// splitmix64 is the SplitMix64 finalizer (also used by sim.FaultStream):
// a bijective avalanche mix deriving independent draws without RNG state.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Moves reports whether node v walks during the given epoch.
func (m *Mobility) Moves(epoch int64, v int) bool {
	return m.hash01(epoch, v, 0) < m.MoveRate
}

// Advance performs one epoch of the walk in place: each moving node steps
// uniformly in [-Step, Step] per axis and reflects off the plan borders.
// Calling it twice with the same epoch repeats the same displacement, so
// drivers advance epochs monotonically.
func (m *Mobility) Advance(epoch int64, pts []Point) {
	for v := range pts {
		if !m.Moves(epoch, v) {
			continue
		}
		pts[v].X = reflect(pts[v].X+(2*m.hash01(epoch, v, 1)-1)*m.Step, m.Side)
		pts[v].Y = reflect(pts[v].Y+(2*m.hash01(epoch, v, 2)-1)*m.Step, m.Side)
	}
}

// reflect folds x back into [0, side].
func reflect(x, side float64) float64 {
	for x < 0 || x > side {
		if x < 0 {
			x = -x
		}
		if x > side {
			x = 2*side - x
		}
	}
	return x
}

// GraphAt derives the connectivity graph from positions: pairs within
// Alpha·Radius always link, pairs beyond Radius never do, and gray-zone
// pairs link when a seeded hash of (salt, u, v) clears GrayP — a coin that
// depends only on the pair and the salt, never on iteration order, so the
// graph is a pure function of (positions, salt). Drivers pass the epoch as
// salt to make gray links flicker with the churn, or a constant to freeze
// them.
func (m *Mobility) GraphAt(pts []Point, salt int64) *graph.Graph {
	if m.Radius <= 0 {
		panic(fmt.Sprintf("geom: non-positive radius %v", m.Radius))
	}
	alpha := m.Alpha
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("geom: mobility alpha %v outside (0,1]", alpha))
	}
	inner := alpha * m.Radius
	g := graph.New(len(pts))
	full := UnitDisk(pts, m.Radius)
	for _, e := range full.Edges() {
		d := pts[e.U].Dist(pts[e.V])
		switch {
		case d <= inner:
			g.AddEdge(e.U, e.V)
		case m.pairCoin(salt, e.U, e.V) < m.GrayP:
			g.AddEdge(e.U, e.V)
		}
	}
	return g
}

// pairCoin returns the gray-zone coin for the unordered pair {u,v}.
func (m *Mobility) pairCoin(salt int64, u, v int) float64 {
	if u > v {
		u, v = v, u
	}
	x := splitmix64(uint64(m.Seed) ^ splitmix64(uint64(salt)*0xD6E8FEB86659FD93^uint64(u)<<24^uint64(v)))
	return float64(x>>11) / (1 << 53)
}
