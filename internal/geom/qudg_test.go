package geom

import (
	"math/rand"
	"testing"

	"fdlsp/internal/graph"
)

func TestQuasiUnitDiskBoundsUDG(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := RandomPoints(150, 12, rng)
	inner := UnitDisk(pts, 0.8) // alpha·radius with alpha=0.5, radius=1.6
	outer := UnitDisk(pts, 1.6)
	q := QuasiUnitDisk(pts, 1.6, 0.5, 0.5, rng)
	// Every certain edge present; nothing beyond the outer radius.
	for _, e := range inner.Edges() {
		if !q.HasEdge(e.U, e.V) {
			t.Fatalf("certain edge %v missing", e)
		}
	}
	for _, e := range q.Edges() {
		if !outer.HasEdge(e.U, e.V) {
			t.Fatalf("edge %v beyond the outer radius", e)
		}
	}
	if q.M() < inner.M() || q.M() > outer.M() {
		t.Errorf("QUDG edge count %d outside [%d,%d]", q.M(), inner.M(), outer.M())
	}
}

func TestQuasiUnitDiskExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pts := RandomPoints(80, 10, rng)
	// p=1 gives the full UDG regardless of alpha.
	q := QuasiUnitDisk(pts, 1.5, 0.3, 1, rng)
	if !q.Equal(UnitDisk(pts, 1.5)) {
		t.Error("p=1 should equal the UDG at the outer radius")
	}
	// p=0 gives the inner UDG.
	q = QuasiUnitDisk(pts, 1.5, 0.3, 0, rng)
	if !q.Equal(UnitDisk(pts, 0.3*1.5)) {
		t.Error("p=0 should equal the UDG at the inner radius")
	}
	// alpha=1: gray zone empty.
	q = QuasiUnitDisk(pts, 1.5, 1, 0, rng)
	if !q.Equal(UnitDisk(pts, 1.5)) {
		t.Error("alpha=1 should equal the UDG")
	}
}

func TestQuasiUnitDiskParamPanics(t *testing.T) {
	pts := []Point{{0, 0}, {1, 1}}
	rng := rand.New(rand.NewSource(3))
	for _, fn := range []func(){
		func() { QuasiUnitDisk(pts, 0, 0.5, 0.5, rng) },
		func() { QuasiUnitDisk(pts, 1, 0, 0.5, rng) },
		func() { QuasiUnitDisk(pts, 1, 1.5, 0.5, rng) },
		func() { QuasiUnitDisk(pts, 1, 0.5, -0.1, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestGrowthBoundUDGPolynomial(t *testing.T) {
	// Unit disk graphs are growth bounded with f(r) = O(r²): at most
	// (2r+1)² unit-disk-packed independent nodes fit in a radius-r ball.
	rng := rand.New(rand.NewSource(4))
	_, pts := RandomUDG(300, 10, 1.0, rng)
	g := UnitDisk(pts, 1.0)
	f := GrowthBound(g, 3)
	for r := 1; r <= 3; r++ {
		budget := (2*r + 1) * (2*r + 1) * 4 // generous O(r²) envelope
		if f[r] > budget {
			t.Errorf("f(%d) = %d exceeds the O(r²) envelope %d — not growth bounded?", r, f[r], budget)
		}
		if r > 1 && f[r] < f[r-1] {
			t.Errorf("growth function not monotone: f(%d)=%d < f(%d)=%d", r, f[r], r-1, f[r-1])
		}
	}
}

func TestGrowthBoundDistinguishesStars(t *testing.T) {
	// A star is NOT growth bounded as n grows: f(1) = n-1.
	star := graph.Star(60)
	f := GrowthBound(star, 1)
	if f[1] != 59 {
		t.Errorf("star f(1) = %d, want 59", f[1])
	}
	udg, _ := RandomUDG(200, 10, 1.0, rand.New(rand.NewSource(5)))
	fu := GrowthBound(udg, 1)
	if fu[1] >= 30 {
		t.Errorf("UDG f(1) = %d looks unbounded", fu[1])
	}
}

func TestRandomQUDG(t *testing.T) {
	g, pts := RandomQUDG(100, 10, 1.2, 0.6, 0.5, rand.New(rand.NewSource(6)))
	if g.N() != 100 || len(pts) != 100 {
		t.Fatal("sizes wrong")
	}
}
