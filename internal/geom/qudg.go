package geom

import (
	"fmt"
	"math/rand"

	"fdlsp/internal/graph"
)

// QuasiUnitDisk builds a quasi unit disk graph (QUDG), the more realistic
// connectivity model the paper's network-model discussion cites alongside
// UDG as a member of the growth bounded graph family: nodes within distance
// alpha·radius are always connected, nodes beyond radius never are, and
// pairs in the gray zone in between are connected independently with
// probability p (modeling fading, obstacles and battery-dependent range).
// alpha must be in (0,1]; alpha=1 degenerates to the plain unit disk graph.
func QuasiUnitDisk(pts []Point, radius, alpha, p float64, rng *rand.Rand) *graph.Graph {
	if radius <= 0 {
		panic(fmt.Sprintf("geom: non-positive radius %v", radius))
	}
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("geom: QUDG alpha %v outside (0,1]", alpha))
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("geom: QUDG probability %v outside [0,1]", p))
	}
	inner := alpha * radius
	g := graph.New(len(pts))
	// The outer radius bounds all candidate pairs; reuse the grid-bucket
	// sweep at that radius and classify each candidate.
	full := UnitDisk(pts, radius)
	for _, e := range full.Edges() {
		d := pts[e.U].Dist(pts[e.V])
		switch {
		case d <= inner:
			g.AddEdge(e.U, e.V)
		case rng.Float64() < p:
			g.AddEdge(e.U, e.V)
		}
	}
	return g
}

// RandomQUDG places n random points in a side×side plan and returns their
// quasi unit disk graph.
func RandomQUDG(n int, side, radius, alpha, p float64, rng *rand.Rand) (*graph.Graph, []Point) {
	pts := RandomPoints(n, side, rng)
	return QuasiUnitDisk(pts, radius, alpha, p, rng), pts
}

// GrowthBound empirically measures the growth-bounding function of g: for
// each r in 1..maxR it returns the largest number of pairwise independent
// nodes found (greedily) inside any ball N^r(v). Growth bounded graphs —
// the paper's network model — have f(r) polynomial in r and independent of
// n; unit disk graphs satisfy f(r) = O(r²). The greedy packing gives a
// lower bound on the true independence number of each ball, which is the
// standard empirical check.
func GrowthBound(g *graph.Graph, maxR int) []int {
	f := make([]int, maxR+1)
	for v := 0; v < g.N(); v++ {
		ball := append(g.Within(v, maxR), v)
		for r := 1; r <= maxR; r++ {
			var members []int
			if r == maxR {
				members = ball
			} else {
				members = append(g.Within(v, r), v)
			}
			// Greedy independent packing inside the ball.
			count := 0
			taken := make(map[int]bool)
			blocked := make(map[int]bool)
			for _, u := range members {
				if blocked[u] {
					continue
				}
				taken[u] = true
				blocked[u] = true
				count++
				for _, w := range g.Neighbors(u) {
					blocked[w] = true
				}
			}
			if count > f[r] {
				f[r] = count
			}
		}
	}
	return f
}
