package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	a, b := Point{X: 0, Y: 0}, Point{X: 3, Y: 4}
	if d := a.Dist(b); d != 5 {
		t.Errorf("dist = %v", d)
	}
	if d := a.Dist(a); d != 0 {
		t.Errorf("self dist = %v", d)
	}
}

func TestRandomPointsInsidePlan(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := RandomPoints(200, 15, rng)
	if len(pts) != 200 {
		t.Fatalf("got %d points", len(pts))
	}
	for _, p := range pts {
		if p.X < 0 || p.X >= 15 || p.Y < 0 || p.Y >= 15 {
			t.Fatalf("point %v outside 15x15 plan", p)
		}
	}
}

// TestUnitDiskMatchesBruteForce checks the grid-bucket construction against
// the O(n²) definition.
func TestUnitDiskMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(120)
		side := 1 + rng.Float64()*20
		radius := 0.1 + rng.Float64()*3
		pts := RandomPoints(n, side, rng)
		g := UnitDisk(pts, radius)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				want := pts[i].Dist(pts[j]) <= radius
				if g.HasEdge(i, j) != want {
					t.Fatalf("trial %d: edge(%d,%d)=%v want %v (d=%v r=%v)",
						trial, i, j, g.HasEdge(i, j), want, pts[i].Dist(pts[j]), radius)
				}
			}
		}
	}
}

func TestUnitDiskBadRadiusPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	UnitDisk([]Point{{0, 0}}, 0)
}

func TestRandomUDGDeterministicPerSeed(t *testing.T) {
	g1, pts1 := RandomUDG(50, 10, 1, rand.New(rand.NewSource(7)))
	g2, pts2 := RandomUDG(50, 10, 1, rand.New(rand.NewSource(7)))
	if !g1.Equal(g2) {
		t.Fatal("same seed, different graphs")
	}
	for i := range pts1 {
		if pts1[i] != pts2[i] {
			t.Fatal("same seed, different placements")
		}
	}
}

func TestRandomConnectedUDG(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, _, ok := RandomConnectedUDG(30, 5, 2.5, rng, 100)
	if !ok {
		t.Fatal("dense configuration should connect within 100 tries")
	}
	if !g.Connected() {
		t.Fatal("reported connected but is not")
	}
}

// Property: UDG edges are invariant under translation of the whole point
// set.
func TestUnitDiskTranslationInvariant(t *testing.T) {
	f := func(seed int64, dx, dy float64) bool {
		if math.IsNaN(dx) || math.IsInf(dx, 0) || math.IsNaN(dy) || math.IsInf(dy, 0) {
			return true
		}
		dx, dy = math.Mod(dx, 1e6), math.Mod(dy, 1e6)
		rng := rand.New(rand.NewSource(seed))
		pts := RandomPoints(40, 10, rng)
		moved := make([]Point, len(pts))
		for i, p := range pts {
			moved[i] = Point{X: p.X + dx, Y: p.Y + dy}
		}
		return UnitDisk(pts, 1.3).Equal(UnitDisk(moved, 1.3))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
