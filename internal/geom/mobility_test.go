package geom

import (
	"math/rand"
	"testing"
)

func TestMobilityAdvanceDeterministicAndBounded(t *testing.T) {
	m := &Mobility{Seed: 9, Side: 10, Step: 0.5, MoveRate: 0.6, Radius: 2, Alpha: 0.7, GrayP: 0.5}
	rng := rand.New(rand.NewSource(4))
	base := RandomPoints(40, m.Side, rng)

	a := append([]Point(nil), base...)
	b := append([]Point(nil), base...)
	for epoch := int64(0); epoch < 30; epoch++ {
		m.Advance(epoch, a)
		m.Advance(epoch, b)
	}
	moved := 0
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("node %d diverged between identical traces: %v vs %v", v, a[v], b[v])
		}
		if a[v].X < 0 || a[v].X > m.Side || a[v].Y < 0 || a[v].Y > m.Side {
			t.Errorf("node %d walked out of the plan: %v", v, a[v])
		}
		if a[v] != base[v] {
			moved++
		}
	}
	if moved < 20 {
		t.Errorf("only %d of 40 nodes moved over 30 epochs at rate 0.6", moved)
	}
}

func TestMobilityGraphAtPureInPositions(t *testing.T) {
	m := &Mobility{Seed: 3, Side: 8, Step: 0.4, MoveRate: 0.5, Radius: 2.5, Alpha: 0.6, GrayP: 0.4}
	rng := rand.New(rand.NewSource(11))
	pts := RandomPoints(30, m.Side, rng)

	g1 := m.GraphAt(pts, 7)
	g2 := m.GraphAt(pts, 7)
	if g1.M() != g2.M() {
		t.Fatalf("same positions and salt gave %d vs %d edges", g1.M(), g2.M())
	}
	for _, e := range g1.Edges() {
		if !g2.HasEdge(e.U, e.V) {
			t.Fatalf("edge %v not reproduced", e)
		}
	}

	// QUDG envelope: inner pairs always linked, outer pairs never.
	inner := m.Alpha * m.Radius
	for u := 0; u < len(pts); u++ {
		for v := u + 1; v < len(pts); v++ {
			d := pts[u].Dist(pts[v])
			if d <= inner && !g1.HasEdge(u, v) {
				t.Errorf("inner pair {%d,%d} at distance %v unlinked", u, v, d)
			}
			if d > m.Radius && g1.HasEdge(u, v) {
				t.Errorf("outer pair {%d,%d} at distance %v linked", u, v, d)
			}
		}
	}

	// A different salt should flip at least one gray-zone coin here.
	g3 := m.GraphAt(pts, 8)
	same := g1.M() == g3.M()
	if same {
		for _, e := range g1.Edges() {
			if !g3.HasEdge(e.U, e.V) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("salts 7 and 8 produced identical gray zones (coin not salted?)")
	}
}

func TestMobilityAlphaOneIsUnitDisk(t *testing.T) {
	m := &Mobility{Seed: 1, Side: 6, Radius: 2, Alpha: 1, GrayP: 0}
	rng := rand.New(rand.NewSource(2))
	pts := RandomPoints(25, m.Side, rng)
	got := m.GraphAt(pts, 0)
	want := UnitDisk(pts, m.Radius)
	if got.M() != want.M() {
		t.Fatalf("alpha=1: %d edges, unit disk has %d", got.M(), want.M())
	}
	for _, e := range want.Edges() {
		if !got.HasEdge(e.U, e.V) {
			t.Fatalf("alpha=1 missing unit-disk edge %v", e)
		}
	}
}
