// Package geom places sensors in the Euclidean plane and builds unit disk
// graphs (UDG), the network model used by the paper's evaluation: nodes are
// random points in a square plan and two sensors share a link when their
// distance is at most the transmission radius.
package geom

import (
	"fmt"
	"math"
	"math/rand"

	"fdlsp/internal/graph"
)

// Point is a sensor position in the plane.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Hypot(dx, dy)
}

// RandomPoints places n points uniformly at random in the side×side square.
func RandomPoints(n int, side float64, rng *rand.Rand) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * side, Y: rng.Float64() * side}
	}
	return pts
}

// UnitDisk builds the unit disk graph of pts with the given transmission
// radius: nodes i and j are adjacent iff dist(pts[i], pts[j]) <= radius.
// Neighbor search uses a uniform grid of radius-sized cells, so construction
// is near-linear for the uniform placements used in the experiments.
func UnitDisk(pts []Point, radius float64) *graph.Graph {
	if radius <= 0 {
		panic(fmt.Sprintf("geom: non-positive radius %v", radius))
	}
	g := graph.New(len(pts))
	// Bucket points into cells of side = radius; candidates for node i live
	// in its own cell and the 8 surrounding cells.
	type cell struct{ cx, cy int }
	buckets := make(map[cell][]int, len(pts))
	key := func(p Point) cell {
		return cell{cx: int(math.Floor(p.X / radius)), cy: int(math.Floor(p.Y / radius))}
	}
	for i, p := range pts {
		k := key(p)
		buckets[k] = append(buckets[k], i)
	}
	for i, p := range pts {
		k := key(p)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range buckets[cell{k.cx + dx, k.cy + dy}] {
					if j > i && p.Dist(pts[j]) <= radius {
						g.AddEdge(i, j)
					}
				}
			}
		}
	}
	return g
}

// RandomUDG generates n random points in a side×side plan and returns their
// unit disk graph with the given radius, plus the placement. This is exactly
// the workload generator of the paper's Figures 8–10 and 13 (side 15/17/20,
// radius 0.5).
func RandomUDG(n int, side, radius float64, rng *rand.Rand) (*graph.Graph, []Point) {
	pts := RandomPoints(n, side, rng)
	return UnitDisk(pts, radius), pts
}

// RandomConnectedUDG repeatedly samples placements until the UDG is
// connected, up to maxTries attempts (it returns the last attempt and false
// if none was connected). Sparse plans in the paper's settings are usually
// disconnected; the slot-count experiments accept that (each component is
// scheduled independently by DistMIS), but the DFS algorithm needs a
// connected instance, for which the harness uses this helper.
func RandomConnectedUDG(n int, side, radius float64, rng *rand.Rand, maxTries int) (*graph.Graph, []Point, bool) {
	var g *graph.Graph
	var pts []Point
	for try := 0; try < maxTries; try++ {
		g, pts = RandomUDG(n, side, radius, rng)
		if g.Connected() {
			return g, pts, true
		}
	}
	return g, pts, false
}
