package core

import (
	"fmt"
	"sort"

	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
	"fdlsp/internal/sim"
)

// Randomized implements a randomized synchronous algorithm in the spirit of
// the one the paper reports having attempted (Section 5: "It is possible to
// bypass [the secondary-MIS machinery] by randomization. We have attempted
// a randomized algorithm for the FDLSP..."). It replaces all MIS
// coordination with per-iteration random ranks: an uncolored arc whose rank
// is a strict local maximum among its still-uncolored conflicting arcs
// colors itself greedily in that iteration — a Luby-style random-order
// greedy on the conflict graph. It serves as the no-coordination ablation
// for DistMIS.
//
// Protocol (6 synchronous rounds per iteration):
//
//	round 6k+0   owners draw a random rank per uncolored out-arc and flood
//	             it 2 hops (conflicting arcs' owners are within 2 hops);
//	round 6k+2   all ranks have arrived; local maxima take the smallest
//	             color feasible against the known final colors — two local
//	             maxima never conflict, so simultaneous coloring is safe —
//	             and flood the final color 3 hops;
//	round 6k+6   next iteration, finals fully propagated.
//
// The strict global maximum always wins, so every iteration makes progress
// and the protocol terminates deterministically; with random ranks the
// expected number of iterations is logarithmic in practice.
func Randomized(g *graph.Graph, seed int64) (*Result, error) {
	nodes := make([]*randNode, g.N())
	eng := sim.NewSyncEngine(g, seed, func(id int) sim.SyncNode {
		nodes[id] = newRandNode(id, g)
		return nodes[id]
	})
	if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("core: randomized: %w", err)
	}
	as := coloring.NewAssignment(g)
	for _, nd := range nodes {
		for _, a := range nd.owned {
			c := nd.know.know[a]
			if c == coloring.None {
				return nil, fmt.Errorf("core: randomized left arc %v uncolored", a)
			}
			as[a] = c
		}
	}
	return &Result{
		Algorithm:      "randomized",
		Assignment:     as,
		Slots:          as.NumColors(),
		DistinctColors: as.DistinctColors(),
		Stats:          eng.Stats(),
	}, nil
}

// tentativeMsg floods one iteration's rank draw two hops.
type tentativeMsg struct {
	Arc  graph.Arc
	Rank int64
	Iter int
	TTL  int
}

type randNode struct {
	g     *graph.Graph
	know  *knowledge
	owned []graph.Arc // out-arcs, colored by this node

	iter     int
	myRank   map[graph.Arc]int64
	heard    []tentativeMsg
	seenTent map[tentKey]struct{}
}

type tentKey struct {
	arc  graph.Arc
	iter int
}

func newRandNode(id int, g *graph.Graph) *randNode {
	return &randNode{
		g:        g,
		know:     newKnowledge(id, g),
		owned:    g.OutArcs(id),
		myRank:   make(map[graph.Arc]int64),
		seenTent: make(map[tentKey]struct{}),
	}
}

func (nd *randNode) uncolored() []graph.Arc {
	var out []graph.Arc
	for _, a := range nd.owned {
		if nd.know.know[a] == coloring.None {
			out = append(out, a)
		}
	}
	return out
}

func (nd *randNode) Step(env *sim.SyncEnv, inbox []sim.Message) bool {
	for _, m := range inbox {
		switch p := m.Payload.(type) {
		case ColorAnnounce:
			for _, out := range nd.know.observe(p) {
				env.Broadcast(out)
			}
		case tentativeMsg:
			key := tentKey{arc: p.Arc, iter: p.Iter}
			if _, dup := nd.seenTent[key]; dup {
				break
			}
			nd.seenTent[key] = struct{}{}
			if p.Iter == nd.iter {
				nd.heard = append(nd.heard, p)
			}
			if p.TTL > 1 {
				relay := p
				relay.TTL--
				env.Broadcast(relay)
			}
		default:
			panic(fmt.Sprintf("core: randomized node %d got %T", env.ID, m.Payload))
		}
	}

	switch env.Round % 6 {
	case 0:
		nd.iter = env.Round / 6
		nd.heard = nd.heard[:0]
		nd.myRank = make(map[graph.Arc]int64)
		for _, a := range nd.uncolored() {
			r := env.Rand.Int63()
			nd.myRank[a] = r
			f := tentativeMsg{Arc: a, Rank: r, Iter: nd.iter, TTL: 2}
			nd.seenTent[tentKey{arc: a, iter: nd.iter}] = struct{}{}
			nd.heard = append(nd.heard, f)
			env.Broadcast(f)
		}
	case 2:
		var won []graph.Arc
		for a, r := range nd.myRank {
			if nd.localMax(a, r) {
				won = append(won, a)
			}
		}
		sort.Slice(won, func(i, j int) bool { return less(won[i], won[j]) })
		// Local maxima are pairwise non-conflicting, so coloring them in
		// sequence against the shared knowledge is exactly the simultaneous
		// coloring of independent conflict-graph vertices.
		coloring.AssignGreedyLocal(nd.g, nd.know.know, won)
		for _, f := range nd.know.announceOwnTTL(won, 3) {
			env.Broadcast(f)
		}
	}
	return len(nd.uncolored()) == 0
}

// localMax reports whether arc a's rank strictly dominates every
// still-competing conflicting arc heard this iteration (ties break on the
// arc identity, so the order is total and someone always wins).
func (nd *randNode) localMax(a graph.Arc, r int64) bool {
	for _, t := range nd.heard {
		if t.Arc == a || !coloring.Conflict(nd.g, a, t.Arc) {
			continue
		}
		if t.Rank > r || (t.Rank == r && less(a, t.Arc)) {
			return false
		}
	}
	return true
}

func less(a, b graph.Arc) bool {
	if a.From != b.From {
		return a.From < b.From
	}
	return a.To < b.To
}
