package core

import (
	"testing"

	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
)

func TestKnowledgeRecordAndAnnounce(t *testing.T) {
	g := graph.Path(4)
	k := newKnowledge(1, g)
	a := graph.Arc{From: 1, To: 2}
	k.record(a, 3)
	floods := k.announceOwn([]graph.Arc{a})
	if len(floods) != 1 || floods[0].TTL != 2 || floods[0].Color != 3 || floods[0].Origin != 1 {
		t.Fatalf("announce = %v", floods)
	}
	// Re-announcing the same arc is a no-op.
	if floods := k.announceOwn([]graph.Arc{a}); len(floods) != 0 {
		t.Errorf("duplicate announce emitted %v", floods)
	}
}

func TestKnowledgeRecolorPanics(t *testing.T) {
	g := graph.Path(3)
	k := newKnowledge(0, g)
	k.record(graph.Arc{From: 0, To: 1}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on recolor")
		}
	}()
	k.record(graph.Arc{From: 0, To: 1}, 2)
}

func TestKnowledgeAnnounceUncoloredPanics(t *testing.T) {
	g := graph.Path(3)
	k := newKnowledge(0, g)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	k.announceOwn([]graph.Arc{{From: 0, To: 1}})
}

func TestKnowledgeObserveRelaysAndEndpointRule(t *testing.T) {
	g := graph.Path(4) // 0-1-2-3
	// Node 2 observes a flood about arc (0,1) — not incident: relay only.
	k2 := newKnowledge(2, g)
	out := k2.observe(ColorAnnounce{Arc: graph.Arc{From: 0, To: 1}, Color: 5, Origin: 0, TTL: 2})
	if len(out) != 1 || out[0].TTL != 1 {
		t.Fatalf("relay = %v", out)
	}
	if k2.know[graph.Arc{From: 0, To: 1}] != 5 {
		t.Error("color not learned")
	}
	// Duplicate from the same origin: swallowed.
	if out := k2.observe(ColorAnnounce{Arc: graph.Arc{From: 0, To: 1}, Color: 5, Origin: 0, TTL: 2}); len(out) != 0 {
		t.Errorf("duplicate produced %v", out)
	}
	// Node 1 observes a flood about its OWN arc (1,2): endpoint rule fires
	// an extra flood from node 1.
	k1 := newKnowledge(1, g)
	out = k1.observe(ColorAnnounce{Arc: graph.Arc{From: 1, To: 2}, Color: 7, Origin: 2, TTL: 2})
	foundOwn := false
	for _, f := range out {
		if f.Origin == 1 && f.Arc == (graph.Arc{From: 1, To: 2}) && f.TTL == 2 {
			foundOwn = true
		}
	}
	if !foundOwn {
		t.Errorf("endpoint rule did not fire: %v", out)
	}
	// Exhausted TTL: no relay, but learning still happens.
	k3 := newKnowledge(3, g)
	out = k3.observe(ColorAnnounce{Arc: graph.Arc{From: 0, To: 1}, Color: 5, Origin: 1, TTL: 1})
	if len(out) != 0 {
		t.Errorf("TTL-1 flood relayed: %v", out)
	}
	if k3.know[graph.Arc{From: 0, To: 1}] != 5 {
		t.Error("TTL-1 flood not learned")
	}
}

func TestKnowledgeSnapshotLocalFilters(t *testing.T) {
	g := graph.Path(5) // 0-1-2-3-4
	k := newKnowledge(1, g)
	near := graph.Arc{From: 2, To: 1} // incident to 1
	mid := graph.Arc{From: 2, To: 3}  // incident to 1's neighbor 2
	far := graph.Arc{From: 3, To: 4}  // outside 1's local view
	k.record(near, 1)
	k.record(mid, 2)
	k.record(far, 3)
	snap := k.snapshotLocal()
	got := make(map[graph.Arc]int, len(snap))
	for i, e := range snap {
		got[e.Arc] = e.Color
		if i > 0 && !less(snap[i-1].Arc, e.Arc) {
			t.Errorf("snapshot not sorted: %v before %v", snap[i-1].Arc, e.Arc)
		}
	}
	if got[near] != 1 || got[mid] != 2 {
		t.Errorf("local arcs missing from snapshot: %v", snap)
	}
	if _, ok := got[far]; ok {
		t.Errorf("far arc leaked into snapshot: %v", snap)
	}
}

func TestKnowledgeMerge(t *testing.T) {
	g := graph.Path(3)
	k := newKnowledge(0, g)
	k.merge([]arcColor{
		{Arc: graph.Arc{From: 0, To: 1}, Color: 4},
		{Arc: graph.Arc{From: 1, To: 2}, Color: coloring.None}, // ignored
	})
	if k.know[graph.Arc{From: 0, To: 1}] != 4 {
		t.Error("merge lost a color")
	}
	if k.know[graph.Arc{From: 1, To: 2}] != coloring.None {
		t.Error("merge invented a color")
	}
}
