package core

import (
	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
	"fdlsp/internal/sim"
	"fdlsp/internal/transport"
)

// This file implements the protocol-level crash-rejoin handshake shared by
// both algorithms. A node whose outage ends receives sim.NodeRestarted from
// the engine and repairs its neighborhood in-protocol, without any
// out-of-band recomputation:
//
//  1. pull — it broadcasts resyncReq; each live neighbor answers with
//     resyncReply carrying its distance-1 color view (snapshotLocal), which
//     across all neighbors reconstructs exactly the distance-2 knowledge
//     feasible coloring needs.
//  2. push — it re-floods the colors of its own incident arcs (both those it
//     remembered across the outage and those it learns from replies) under a
//     bumped announcement generation, so 2-hop witnesses whose only flood
//     path ran through the crashed node are repaired too. Without the
//     generation bump, relays that saw the pre-crash flood would
//     deduplicate the repair away.
//
// The handshake makes a returned node indistinguishable from one that never
// crashed by the time it next competes: Result.Crashed lists only nodes
// still down at termination, and the schedule covers every arc between
// nodes live at termination.

// resyncReq asks a neighbor for its distance-1 color view; the first half of
// the rejoin handshake. It is also re-sent to a peer that comes back up
// (transport.PeerUp) after this node has itself restarted, covering the case
// where the original request was sent while the peer was still marked down.
type resyncReq struct{}

// resyncReply answers a resyncReq. Table is built fresh per reply by
// snapshotLocal — it must never alias the replier's live color table, since
// payloads outlive the Step that created them. It travels as a pointer so
// the slice header is not re-boxed per send.
type resyncReply struct {
	Table []arcColor
}

// RejoinStats accounts for the protocol-level crash-recovery work of one
// run.
type RejoinStats struct {
	// Returned lists the nodes that completed at least one crash window and
	// re-entered the protocol, ascending. Disjoint from Result.Crashed,
	// which keeps only nodes still down at termination.
	Returned []int
	// ResyncMsgs counts the protocol messages originated by rejoin
	// handshakes: resync requests, replies, and repair re-announcements
	// (relays of repair floods are indistinguishable from normal relays and
	// are not counted).
	ResyncMsgs int64
	// Rebased counts driver re-launches: recovery epochs beyond the first,
	// each started on a virtual clock re-based past the previous epoch
	// (asynchronous DFS driver only; the synchronous engine always runs
	// every window to its close inside a single launch per phase).
	Rebased int
}

// rejoinStep handles the rejoin-handshake payloads every synchronous phase
// node must understand regardless of which sub-protocol the phase runs. It
// reports whether the message was consumed; callers layer phase-specific
// reactions (abstaining from a competition, cancelling a pending coloring)
// on top for the NodeRestarted case.
func (st *nodeState) rejoinStep(env *transport.SyncEnv, m sim.Message) bool {
	switch p := m.Payload.(type) {
	case sim.NodeRestarted:
		st.resyncMsgs += int64(len(env.Neighbors))
		env.Broadcast(resyncReq{})
		for _, f := range st.know.reannounce(p.Restarts) {
			st.resyncMsgs += int64(len(env.Neighbors))
			env.Broadcast(st.anns.put(f))
		}
		return true
	case resyncReq:
		st.resyncMsgs++
		env.Send(m.From, &resyncReply{Table: st.know.snapshotLocal()})
		return true
	case *resyncReply:
		for _, f := range st.know.mergeIncident(p.Table) {
			st.resyncMsgs += int64(len(env.Neighbors))
			env.Broadcast(st.anns.put(f))
		}
		return true
	case *ColorAnnounce:
		// Repair floods can arrive in any phase, not just coloring waves:
		// a rejoin during an MIS phase re-announces colors immediately.
		for _, out := range st.know.observe(*p) {
			env.Broadcast(st.anns.put(out))
		}
		return true
	case transport.PeerUp:
		// A peer this endpoint had given up on is reachable again. If this
		// node has itself restarted, its resyncReq to that peer may have
		// been suppressed while the peer was marked down — ask again now.
		if st.know.gen > 0 {
			st.resyncMsgs++
			env.Send(p.Peer, resyncReq{})
		}
		return true
	}
	return false
}

// mergeIncident folds a resyncReply table into this node's knowledge and
// returns fresh generation-tagged floods for incident arcs whose colors the
// node just learned — the arcs were colored by a neighbor during this node's
// outage, so the push half of the handshake must cover them too. The table
// arrives sorted by arc (snapshotLocal's contract), so the floods come out
// in deterministic order without re-sorting; the seen set deduplicates
// across multiple replies. The result shares the knowledge's scratch buffer.
func (k *knowledge) mergeIncident(table []arcColor) []ColorAnnounce {
	out := k.obuf[:0]
	for _, e := range table {
		if e.Color == coloring.None {
			continue
		}
		fresh := k.incident(e.Arc) && k.know[e.Arc] == coloring.None
		k.record(e.Arc, e.Color)
		if !fresh {
			continue
		}
		key := annKey{origin: k.id, arc: e.Arc, gen: k.gen}
		if _, dup := k.seen[key]; dup {
			continue
		}
		k.seen[key] = struct{}{}
		out = append(out, ColorAnnounce{Arc: e.Arc, Color: k.know[e.Arc], Origin: k.id, TTL: 2, Gen: k.gen})
	}
	k.obuf = out[:0]
	return out
}

// enforceIndependence drops vacuous secondary-MIS winners before they color:
// under message loss a severed competition can elect two winners within the
// competition radius (each one's floods died before reaching the other), and
// letting both color concurrently could produce conflicting assignments. The
// driver — which already owns the global view to detect phase completion —
// keeps the lowest-id winner of every violating pair; dropped winners stay
// in the candidate set and recompete in a later iteration. Returns the
// number of winners dropped (always zero in correct fault-free executions).
func enforceIndependence(g *graph.Graph, radius int, selected []bool) int {
	dropped := 0
	dist := make(map[int]int)
	var queue []int
	for v := 0; v < len(selected); v++ {
		if !selected[v] {
			continue
		}
		// BFS from v to the competition radius; any still-selected node met
		// on the way has a smaller id (larger ids are not decided yet, and
		// dropped ones are cleared), so v is the loser of the pair.
		for q := range dist {
			delete(dist, q)
		}
		queue = append(queue[:0], v)
		dist[v] = 0
		conflict := false
		for len(queue) > 0 && !conflict {
			u := queue[0]
			queue = queue[1:]
			if dist[u] == radius {
				continue
			}
			for _, w := range g.NeighborsView(u) {
				if _, ok := dist[w]; ok {
					continue
				}
				dist[w] = dist[u] + 1
				if w < v && selected[w] {
					conflict = true
					break
				}
				queue = append(queue, w)
			}
		}
		if conflict {
			selected[v] = false
			dropped++
		}
	}
	return dropped
}

// standardSetColored reports whether every arc of v's standard set — the
// arcs a win obliges it to color: all incident arcs in the GBG variant, out
// arcs in the general variant — between live endpoints carries a color in
// v's own knowledge. The DistMIS driver only retires an h-member once this
// holds; a node whose coloring was cut short by an outage (its own or a
// peer's) stays in the candidate set and recompetes, so no arc is ever
// permanently excluded by a transient crash.
func standardSetColored(g *graph.Graph, st *nodeState, variant Variant, dead []bool) bool {
	arcs := g.IncidentArcsView(st.id)
	if variant == General {
		arcs = g.OutArcsView(st.id)
	}
	for _, a := range arcs {
		if arcAlive(a, dead) && st.know.know[a] == coloring.None {
			return false
		}
	}
	return true
}
