package core

import (
	"math/rand"
	"testing"

	"fdlsp/internal/bounds"
	"fdlsp/internal/coloring"
	"fdlsp/internal/geom"
	"fdlsp/internal/graph"
	"fdlsp/internal/mis"
)

// testGraphs returns a diverse fixed set of instances.
func testGraphs(tb testing.TB) map[string]*graph.Graph {
	tb.Helper()
	rng := rand.New(rand.NewSource(42))
	udg, _ := geom.RandomUDG(60, 8, 1.2, rng)
	return map[string]*graph.Graph{
		"empty":     graph.New(0),
		"singleton": graph.New(1),
		"edge":      graph.Path(2),
		"path10":    graph.Path(10),
		"cycle8":    graph.Cycle(8),
		"cycle9":    graph.Cycle(9),
		"star12":    graph.Star(12),
		"k5":        graph.Complete(5),
		"k33":       graph.CompleteBipartite(3, 3),
		"grid5x5":   graph.Grid(5, 5),
		"tree40":    graph.RandomTree(40, rng),
		"gnm":       graph.GNM(40, 120, rng),
		"udg":       udg,
	}
}

func checkResult(t *testing.T, name string, g *graph.Graph, res *Result, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if viols := coloring.Verify(g, res.Assignment); len(viols) != 0 {
		t.Fatalf("%s: %d violations, first: %v", name, len(viols), viols[0])
	}
	if g.M() > 0 {
		lb, ub := bounds.LowerBound(g), bounds.UpperBound(g)
		if res.Slots < 2*g.MaxDegree() {
			t.Errorf("%s: %d slots below trivial bound 2Δ=%d", name, res.Slots, 2*g.MaxDegree())
		}
		if res.Slots > ub {
			t.Errorf("%s: %d slots above upper bound %d", name, res.Slots, ub)
		}
		_ = lb
	}
}

func TestDistMISGBGValidOnSuite(t *testing.T) {
	for name, g := range testGraphs(t) {
		res, err := DistMIS(g, Options{Seed: 1})
		checkResult(t, "gbg/"+name, g, res, err)
	}
}

func TestDistMISGeneralValidOnSuite(t *testing.T) {
	for name, g := range testGraphs(t) {
		res, err := DistMIS(g, Options{Seed: 2, Variant: General})
		checkResult(t, "general/"+name, g, res, err)
	}
}

func TestDistMISDrawers(t *testing.T) {
	g := graph.GNM(30, 80, rand.New(rand.NewSource(7)))
	for _, d := range mis.Strategies() {
		res, err := DistMIS(g, Options{Seed: 3, Drawer: d})
		checkResult(t, d.Name(), g, res, err)
	}
}

func TestDFSValidOnSuite(t *testing.T) {
	for name, g := range testGraphs(t) {
		res, err := DFS(g, DFSOptions{Seed: 4})
		checkResult(t, "dfs/"+name, g, res, err)
	}
}

func TestDFSPolicies(t *testing.T) {
	g := graph.ConnectedGNM(30, 80, rand.New(rand.NewSource(9)))
	for _, p := range []ChildPolicy{MaxDegree, MinID, RandomChild} {
		res, err := DFS(g, DFSOptions{Seed: 5, Policy: p})
		checkResult(t, p.String(), g, res, err)
	}
}

func TestDFSWithAdversarialDelays(t *testing.T) {
	g := graph.ConnectedGNM(40, 100, rand.New(rand.NewSource(11)))
	delay := func(from, to int, rng *rand.Rand) int64 { return rng.Int63n(5) }
	res, err := DFS(g, DFSOptions{Seed: 6, Delay: delay})
	checkResult(t, "delayed", g, res, err)
}

func TestDFSRoundsLinear(t *testing.T) {
	// O(n) communication rounds: the token walks each tree edge at most
	// twice, plus a bounded number of ask/reply units per node.
	g := graph.ConnectedGNM(80, 200, rand.New(rand.NewSource(13)))
	res, err := DFS(g, DFSOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rounds > int64(10*g.N()) {
		t.Errorf("DFS rounds %d exceed 10n=%d", res.Stats.Rounds, 10*g.N())
	}
}

func TestDistMISBreakdownSumsToTotal(t *testing.T) {
	g := graph.GNM(40, 110, rand.New(rand.NewSource(31)))
	res, err := DistMIS(g, Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	var rounds, msgs int64
	for phase, st := range res.Breakdown {
		if st.Rounds <= 0 {
			t.Errorf("phase %q has no rounds", phase)
		}
		rounds += st.Rounds
		msgs += st.Messages
	}
	if rounds != res.Stats.Rounds || msgs != res.Stats.Messages {
		t.Errorf("breakdown sums (%d,%d) != total (%d,%d)", rounds, msgs, res.Stats.Rounds, res.Stats.Messages)
	}
	for _, phase := range []string{"primary-mis", "secondary-mis", "coloring"} {
		if _, ok := res.Breakdown[phase]; !ok {
			t.Errorf("missing phase %q", phase)
		}
	}
}

func TestDistMISDeterministicForSeed(t *testing.T) {
	g := graph.GNM(30, 70, rand.New(rand.NewSource(21)))
	a, err := DistMIS(g, Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	b, err := DistMIS(g, Options{Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if a.Slots != b.Slots || a.Stats != b.Stats {
		t.Errorf("same seed gave different runs: %+v vs %+v", a, b)
	}
	for arc, c := range a.Assignment {
		if b.Assignment[arc] != c {
			t.Fatalf("arc %v colored %d then %d", arc, c, b.Assignment[arc])
		}
	}
}
