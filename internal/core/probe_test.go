package core

import (
	"fmt"
	"strings"
	"testing"

	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
	"fdlsp/internal/sim"
)

// TestProbeObservesRepairInProgress runs DistMIS with a mid-run probe and
// checks the contract: probes fire at the configured period inside named
// phases, protocol-global time never goes backwards, the partial schedule is
// internally conflict-free at every observation (greedy local coloring never
// installs a clash in fault-free runs), and coloring progress is visible
// before the run ends — the protocol was observed, not stopped.
func TestProbeObservesRepairInProgress(t *testing.T) {
	g := faultUDG(t, 7, 24)
	type point struct {
		phase   string
		round   int64
		elapsed int64
		colored int
	}
	var pts []point
	maxColored := 0
	_, err := DistMIS(g, Options{Seed: 3, ProbeEvery: 2, Probe: func(p ProbePoint) {
		switch p.Phase {
		case "primary-mis", "secondary-mis", "coloring":
		default:
			t.Errorf("probe in unknown phase %q", p.Phase)
		}
		if p.Round%2 != 0 {
			t.Errorf("probe at round %d despite ProbeEvery=2", p.Round)
		}
		colored := p.ColoredArcs()
		if colored > maxColored {
			maxColored = colored
			as := p.PartialSchedule()
			if len(as) != colored {
				t.Errorf("PartialSchedule has %d arcs, ColoredArcs says %d", len(as), colored)
			}
			arcs := make([]graph.Arc, 0, len(as))
			for a := range as {
				arcs = append(arcs, a)
			}
			if viols := coloring.AuditArcs(g, as, arcs); len(viols) != 0 {
				t.Errorf("partial schedule has violations mid-run: %v", viols[0])
			}
		}
		pts = append(pts, point{p.Phase, p.Round, p.Elapsed, colored})
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("probe never fired")
	}
	last := int64(-1)
	partialSeen := false
	for _, p := range pts {
		global := p.elapsed + p.round
		if global < last {
			t.Fatalf("protocol-global time went backwards: %+v", pts)
		}
		last = global
		if p.colored > 0 && p.colored < 2*g.M() {
			partialSeen = true
		}
	}
	if !partialSeen {
		t.Error("no probe observed a partially built schedule")
	}
	if maxColored != 2*g.M() {
		t.Errorf("last observed coloring has %d arcs, want all %d", maxColored, 2*g.M())
	}
}

// TestProbeDeterministicAcrossGOMAXPROCS pins the probe stream to the seed:
// the full sequence of (phase, round, elapsed, colored) observations must be
// identical at any parallelism, including under a fault plan.
func TestProbeDeterministicAcrossGOMAXPROCS(t *testing.T) {
	g := faultUDG(t, 9, 18)
	plan := &sim.FaultPlan{
		Seed: 5, Loss: 0.15, Dup: 0.05, Reorder: 2,
		Crashes: []sim.Crash{{Node: 4, At: 40, RestartAt: 500}},
	}
	run := func() string {
		var sb strings.Builder
		_, err := DistMIS(g, Options{Seed: 11, Fault: plan, ProbeEvery: 8,
			Probe: func(p ProbePoint) {
				fmt.Fprintf(&sb, "%s/%d/%d/%d\n", p.Phase, p.Round, p.Elapsed, p.ColoredArcs())
			}})
		if err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	var outs []string
	for _, procs := range []int{1, 8} {
		withGOMAXPROCS(procs, func() { outs = append(outs, run()) })
	}
	if outs[0] != outs[1] {
		t.Errorf("probe stream differs across GOMAXPROCS:\n%s\nvs\n%s", outs[0], outs[1])
	}
	if len(outs[0]) == 0 {
		t.Error("probe never fired under the fault plan")
	}
}
