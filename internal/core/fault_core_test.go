package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"fdlsp/internal/coloring"
	"fdlsp/internal/geom"
	"fdlsp/internal/graph"
	"fdlsp/internal/sim"
)

// faultUDG builds a connected random unit-disk graph for the fault suite.
func faultUDG(t *testing.T, seed int64, n int) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, _, ok := geom.RandomConnectedUDG(n, 10, 4, rng, 50)
	if !ok {
		t.Fatalf("seed %d: no connected UDG after 50 tries", seed)
	}
	return g
}

// faultPlanFor is the acceptance scenario: 20% loss, duplication, bounded
// reordering, and one crash-stop partway into the run.
func faultPlanFor(seed int64, crashNode int) *sim.FaultPlan {
	return &sim.FaultPlan{
		Seed:    seed * 31,
		Loss:    0.2,
		Dup:     0.1,
		Reorder: 2,
		Crashes: []sim.Crash{{Node: crashNode, At: 40}},
	}
}

// verifySurviving checks the schedule against the surviving subgraph and
// that no arc of a dead node slipped into it.
func verifySurviving(t *testing.T, g *graph.Graph, res *Result, label string) {
	t.Helper()
	surv := SurvivingGraph(g, res.Crashed)
	if vs := coloring.Verify(surv, res.Assignment); len(vs) > 0 {
		t.Fatalf("%s: surviving-subgraph verification failed: %v", label, vs[0])
	}
	dead := deadMask(g.N(), res.Crashed)
	for a, c := range res.Assignment {
		if c != coloring.None && !arcAlive(a, dead) {
			t.Fatalf("%s: dead-incident arc %v carries color %d", label, a, c)
		}
	}
}

func TestDFSUnderFaults(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		n := 24 + int(seed)*4
		g := faultUDG(t, seed, n)
		plan := faultPlanFor(seed, n/3)
		opts := DFSOptions{Seed: seed, Fault: plan}

		res, err := DFS(g, opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(res.Crashed) != 1 || res.Crashed[0] != n/3 {
			t.Fatalf("seed %d: Crashed = %v, want [%d]", seed, res.Crashed, n/3)
		}
		if res.Transport.Retries == 0 {
			t.Errorf("seed %d: expected retransmissions under 20%% loss", seed)
		}
		verifySurviving(t, g, res, "dfs")

		again, err := DFS(g, opts)
		if err != nil {
			t.Fatalf("seed %d rerun: %v", seed, err)
		}
		if fingerprint(res.Assignment, res.Slots) != fingerprint(again.Assignment, again.Slots) {
			t.Fatalf("seed %d: schedule not reproducible", seed)
		}
		if res.Transport.String() != again.Transport.String() {
			t.Fatalf("seed %d: transport counters differ: %v vs %v", seed, res.Transport, again.Transport)
		}
	}
}

// TestFaultDeterminismAcrossGOMAXPROCS pins the full faulty pipeline —
// fault script, transport retries, crash set, and resulting schedule — to
// the seed alone: runs at 1, 2, and 8 procs must agree byte for byte, and
// the recorded fault traces must be identical event for event.
func TestFaultDeterminismAcrossGOMAXPROCS(t *testing.T) {
	g := faultUDG(t, 3, 30)
	plan := faultPlanFor(3, 10)
	type outcome struct {
		print   string
		tport   string
		crashed string
		trace   string
	}
	run := func(algo string) outcome {
		t.Helper()
		rec := &sim.Recorder{}
		var res *Result
		var err error
		switch algo {
		case "distmis":
			res, err = DistMIS(g, Options{Seed: 3, Fault: plan, Trace: rec})
		default:
			res, err = DFS(g, DFSOptions{Seed: 3, Fault: plan, Trace: rec})
		}
		if err != nil {
			t.Fatal(err)
		}
		var tr []string
		for _, e := range rec.Events() {
			switch e.Kind {
			case sim.EventDropFault, sim.EventDup, sim.EventNodeCrash, sim.EventNodeRestart:
				tr = append(tr, e.String())
			}
		}
		return outcome{
			print:   fingerprint(res.Assignment, res.Slots),
			tport:   res.Transport.String(),
			crashed: fmt.Sprint(res.Crashed),
			trace:   strings.Join(tr, "\n"),
		}
	}
	for _, algo := range []string{"distmis", "dfs"} {
		var outs []outcome
		for _, procs := range []int{1, 2, 8} {
			withGOMAXPROCS(procs, func() {
				outs = append(outs, run(algo))
			})
		}
		for i := 1; i < len(outs); i++ {
			if outs[i] != outs[0] {
				t.Errorf("%s: outcome differs between GOMAXPROCS runs:\n%+v\nvs\n%+v", algo, outs[0], outs[i])
			}
		}
	}
}

func TestDistMISUnderFaults(t *testing.T) {
	for _, variant := range []Variant{GBG, General} {
		for seed := int64(1); seed <= 5; seed++ {
			n := 24 + int(seed)*4
			g := faultUDG(t, seed, n)
			plan := faultPlanFor(seed, n/3)
			opts := Options{Variant: variant, Seed: seed, Fault: plan}
			label := variant.String()

			res, err := DistMIS(g, opts)
			if err != nil {
				t.Fatalf("%s seed %d: %v", label, seed, err)
			}
			if len(res.Crashed) != 1 || res.Crashed[0] != n/3 {
				t.Fatalf("%s seed %d: Crashed = %v, want [%d]", label, seed, res.Crashed, n/3)
			}
			if res.Transport.Retries == 0 {
				t.Errorf("%s seed %d: expected retransmissions under 20%% loss", label, seed)
			}
			verifySurviving(t, g, res, label)

			// Identical (seed, plan) must reproduce the run byte for byte:
			// schedule, crash set, and transport accounting.
			again, err := DistMIS(g, opts)
			if err != nil {
				t.Fatalf("%s seed %d rerun: %v", label, seed, err)
			}
			if fingerprint(res.Assignment, res.Slots) != fingerprint(again.Assignment, again.Slots) {
				t.Fatalf("%s seed %d: schedule not reproducible", label, seed)
			}
			if res.Transport.String() != again.Transport.String() {
				t.Fatalf("%s seed %d: transport counters differ: %v vs %v",
					label, seed, res.Transport, again.Transport)
			}
		}
	}
}
