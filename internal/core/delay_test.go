package core

import (
	"math/rand"
	"testing"

	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
	"fdlsp/internal/sim"
)

// TestDFSUnderEveryDelayPreset drives the asynchronous algorithm through
// all failure-injection presets: validity must be unconditional and the
// slot count must not depend on timing at all (the protocol serializes
// coloring through the token, so delays may only stretch the clock).
func TestDFSUnderEveryDelayPreset(t *testing.T) {
	g := graph.ConnectedGNM(50, 130, rand.New(rand.NewSource(7)))
	baseline, err := DFS(g, DFSOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	presets := map[string]sim.DelayFn{
		"none":       sim.NoDelay(),
		"uniform":    sim.UniformDelay(7),
		"heavy-tail": sim.HeavyTailDelay(50),
		"slow-link": sim.SlowLinkDelay(25, func(u, v int) bool {
			return u%5 == 0 || v%5 == 0
		}),
		"slow-node": sim.SlowNodeDelay(40, 0, 1, 2),
	}
	for name, d := range presets {
		res, err := DFS(g, DFSOptions{Seed: 3, Delay: d})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !coloring.Valid(g, res.Assignment) {
			t.Fatalf("%s: invalid schedule", name)
		}
		if res.Slots != baseline.Slots {
			t.Errorf("%s: slots %d differ from undelayed %d — timing leaked into the schedule",
				name, res.Slots, baseline.Slots)
		}
		if name != "none" && res.Stats.Rounds < baseline.Stats.Rounds {
			t.Errorf("%s: delays shortened the clock: %d < %d", name, res.Stats.Rounds, baseline.Stats.Rounds)
		}
	}
}
