package core

import (
	"math/rand"
	"testing"

	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
)

// TestColorPhaseKnowledgeRadius pins the safety lemma the coloring steps
// rely on: after a coloring wave, the color of every newly colored arc
// (x,y) is known to every node within two hops of x OR of y (the colorer's
// own TTL-2 flood plus the endpoint rule's re-flood from the other side).
// That radius is exactly what makes a later greedy choice at any such node
// conflict-free.
func TestColorPhaseKnowledgeRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 12; trial++ {
		n := 5 + rng.Intn(25)
		maxExtra := n*(n-1)/2 - (n - 1)
		extra := rng.Intn(2 * n)
		if extra > maxExtra {
			extra = maxExtra
		}
		g := graph.ConnectedGNM(n, n-1+extra, rng)
		states := make([]*nodeState, n)
		for v := 0; v < n; v++ {
			states[v] = &nodeState{id: v, know: newKnowledge(v, g)}
		}
		// One colorer, arbitrary node.
		colorer := rng.Intn(n)
		selected := make([]bool, n)
		selected[colorer] = true
		pr := newPhaseRunner(g, states, nil, nil, nil)
		if _, _, _, _, err := pr.color(int64(trial), selected, GBG, nil, nil, nil); err != nil {
			t.Fatal(err)
		}
		colored := states[colorer].ownColored
		if g.Degree(colorer) > 0 && len(colored) == 0 {
			t.Fatalf("trial %d: colorer %d colored nothing", trial, colorer)
		}
		for _, a := range colored {
			c := states[colorer].know.know[a]
			if c == coloring.None {
				t.Fatalf("trial %d: arc %v uncolored at colorer", trial, a)
			}
			for u := 0; u < n; u++ {
				dx := g.Dist(u, a.From)
				dy := g.Dist(u, a.To)
				within := (dx >= 0 && dx <= 2) || (dy >= 0 && dy <= 2)
				if !within {
					continue
				}
				if got := states[u].know.know[a]; got != c {
					t.Fatalf("trial %d: node %d (dist %d/%d from %v) knows color %d, want %d",
						trial, u, dx, dy, a, got, c)
				}
			}
		}
	}
}

// TestColorPhaseSimultaneousColorersStayConsistent runs a coloring wave
// with several far-apart colorers and checks the combined knowledge stays
// single-valued (no node ever sees two colors for one arc — the knowledge
// store panics on contradiction, so completing the phase is the assertion)
// and every colorer's arcs obey the verifier.
func TestColorPhaseSimultaneousColorersStayConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		n := 20 + rng.Intn(30)
		g := graph.ConnectedGNM(n, n-1+rng.Intn(n), rng) // n ≥ 20: always within the edge budget
		states := make([]*nodeState, n)
		for v := 0; v < n; v++ {
			states[v] = &nodeState{id: v, know: newKnowledge(v, g)}
		}
		// Pick colorers greedily at pairwise distance >= 4 (what a
		// secondary MIS guarantees in the GBG variant).
		selected := make([]bool, n)
		var chosen []int
		for v := 0; v < n; v++ {
			ok := true
			for _, u := range chosen {
				if d := g.Dist(v, u); d >= 0 && d < 4 {
					ok = false
					break
				}
			}
			if ok {
				selected[v] = true
				chosen = append(chosen, v)
			}
		}
		pr := newPhaseRunner(g, states, nil, nil, nil)
		if _, _, _, _, err := pr.color(int64(trial), selected, GBG, nil, nil, nil); err != nil {
			t.Fatal(err)
		}
		partial := coloring.NewAssignment(g)
		for _, st := range states {
			for _, a := range st.ownColored {
				partial[a] = st.know.know[a]
			}
		}
		// No conflicting same-colored pair among the colored arcs.
		arcs := make([]graph.Arc, 0, len(partial))
		for a := range partial {
			arcs = append(arcs, a)
		}
		for i := 0; i < len(arcs); i++ {
			for j := i + 1; j < len(arcs); j++ {
				if partial[arcs[i]] == partial[arcs[j]] && coloring.Conflict(g, arcs[i], arcs[j]) {
					t.Fatalf("trial %d: simultaneous colorers conflicted: %v and %v share %d",
						trial, arcs[i], arcs[j], partial[arcs[i]])
				}
			}
		}
	}
}
