// Package core implements the paper's two distributed FDLSP algorithms on
// top of the sim engines: the synchronous maximal-independent-set based
// algorithm DistMIS (Algorithm 1, Sections 5–6) and the asynchronous
// DFS-based token-passing algorithm (Algorithm 2, Section 7). Both produce
// feasible distance-2 edge colorings of the bi-directed input graph; the
// number of colors is the TDMA frame length.
package core

import (
	"fmt"

	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
)

// ColorAnnounce propagates the color of one arc. Whenever a node learns the
// color of an arc incident to itself it originates a TTL-2 flood, so the
// color of arc (x,y) becomes known everywhere within 2 hops of x and of y —
// exactly the distance-2 knowledge a node needs to color its own arcs
// feasibly (every arc conflicting with an arc at node u has an endpoint
// within 2 hops of u).
type ColorAnnounce struct {
	Arc    graph.Arc
	Color  int
	Origin int
	TTL    int
	// Gen is the origin's announcement generation. It is 0 for a node's
	// lifetime unless the node crashes and rejoins: the rejoin handshake
	// re-floods already-colored incident arcs under a bumped generation so
	// relays that saw (and deduplicated) the pre-crash flood still forward
	// the repair copy to neighborhoods the original flood never reached.
	Gen int
}

type annKey struct {
	origin int
	arc    graph.Arc
	gen    int
}

// knowledge is one node's view of arc colors, plus the flood bookkeeping
// that maintains it. It is owned by a single node (goroutine) at a time.
type knowledge struct {
	id   int
	g    *graph.Graph
	know coloring.Assignment

	originated map[graph.Arc]struct{} // arcs this node has flooded itself
	seen       map[annKey]struct{}    // relay dedupe
	gen        int                    // current announcement generation (bumped on rejoin)

	// tolerant relaxes the write-once invariant for faulty runs: when a
	// node crashes mid-announcement its partial flood can leave witnesses
	// that later see the surviving endpoint recolor the arc. Only arcs
	// incident to a crashed node can be recolored (live–live arcs announce
	// endpoint-to-endpoint over the reliable transport before anyone else
	// may color them), and those arcs are excluded from the assembled
	// schedule, so witnesses keep their first-seen color and move on.
	tolerant bool
}

func newKnowledge(id int, g *graph.Graph) *knowledge {
	return &knowledge{
		id:         id,
		g:          g,
		know:       coloring.NewAssignment(g),
		originated: make(map[graph.Arc]struct{}),
		seen:       make(map[annKey]struct{}),
	}
}

// record stores a color, guarding the write-once invariant (no algorithm in
// this repository ever recolors an arc).
func (k *knowledge) record(a graph.Arc, c int) {
	if prev := k.know[a]; prev != coloring.None && prev != c {
		if k.tolerant {
			return // first writer wins; see the tolerant field
		}
		panic(fmt.Sprintf("core: node %d saw arc %v recolored %d -> %d", k.id, a, prev, c))
	}
	k.know[a] = c
}

// incident reports whether arc a touches this node.
func (k *knowledge) incident(a graph.Arc) bool { return a.From == k.id || a.To == k.id }

// announceOwn returns the TTL-2 floods for newly self-colored arcs, marking
// them originated.
func (k *knowledge) announceOwn(arcs []graph.Arc) []ColorAnnounce {
	return k.announceOwnTTL(arcs, 2)
}

// announceOwnTTL is announceOwn with an explicit flood radius (the
// randomized algorithm floods finals 3 hops so the next iteration's gambles
// everywhere see them).
func (k *knowledge) announceOwnTTL(arcs []graph.Arc, ttl int) []ColorAnnounce {
	var out []ColorAnnounce
	for _, a := range arcs {
		c := k.know[a]
		if c == coloring.None {
			panic(fmt.Sprintf("core: node %d announcing uncolored arc %v", k.id, a))
		}
		if _, dup := k.originated[a]; dup {
			continue
		}
		k.originated[a] = struct{}{}
		f := ColorAnnounce{Arc: a, Color: c, Origin: k.id, TTL: ttl, Gen: k.gen}
		k.seen[annKey{origin: k.id, arc: a, gen: k.gen}] = struct{}{}
		out = append(out, f)
	}
	return out
}

// reannounce is the push half of the rejoin handshake: fresh TTL-2 floods
// for every arc incident to this node whose color it knows, under a new
// generation at least gen. Pre-crash floods from this origin may have died
// mid-relay when the crash severed the only path, leaving 2-hop witnesses
// blind; the bumped generation defeats relay dedupe so the repair flood
// travels the full radius again. Originated bookkeeping is left untouched —
// it is keyed per arc, and these arcs were already flooded once.
func (k *knowledge) reannounce(gen int) []ColorAnnounce {
	if gen > k.gen {
		k.gen = gen
	} else {
		k.gen++
	}
	var out []ColorAnnounce
	for _, a := range k.g.IncidentArcs(k.id) {
		c := k.know[a]
		if c == coloring.None {
			continue
		}
		f := ColorAnnounce{Arc: a, Color: c, Origin: k.id, TTL: 2, Gen: k.gen}
		k.seen[annKey{origin: k.id, arc: a, gen: k.gen}] = struct{}{}
		out = append(out, f)
	}
	return out
}

// observe ingests an incoming announce and returns the messages to send in
// response: the relayed copy (if the flood still travels) and, when the arc
// is incident to this node and not yet flooded from here, this endpoint's
// own TTL-2 flood (the "endpoint rule" that extends coverage to 2 hops from
// both endpoints).
func (k *knowledge) observe(f ColorAnnounce) []ColorAnnounce {
	var out []ColorAnnounce
	key := annKey{origin: f.Origin, arc: f.Arc, gen: f.Gen}
	if _, dup := k.seen[key]; !dup {
		k.seen[key] = struct{}{}
		k.record(f.Arc, f.Color)
		if f.TTL > 1 {
			relay := f
			relay.TTL--
			out = append(out, relay)
		}
	}
	if k.incident(f.Arc) {
		out = append(out, k.announceOwn([]graph.Arc{f.Arc})...)
	}
	return out
}

// merge folds a peer's color table into this node's knowledge (used by the
// DFS algorithm's explicit ask/reply exchange).
func (k *knowledge) merge(table map[graph.Arc]int) {
	for a, c := range table {
		if c != coloring.None {
			k.record(a, c)
		}
	}
}

// snapshotLocal returns the part of the node's color table an asking
// neighbor actually needs: colors of arcs incident to this node or to one
// of its neighbors (this node's distance-1 view). Together with the asker's
// own table, replies from all neighbors cover every arc within distance 2
// of the asker — the exact knowledge required for feasible coloring — while
// keeping reply sizes O(Δ²) instead of shipping the whole learned table.
func (k *knowledge) snapshotLocal() map[graph.Arc]int {
	local := make(map[int]struct{}, k.g.Degree(k.id)+1)
	local[k.id] = struct{}{}
	for _, u := range k.g.Neighbors(k.id) {
		local[u] = struct{}{}
	}
	out := make(map[graph.Arc]int)
	for a, c := range k.know {
		if _, ok := local[a.From]; ok {
			out[a] = c
			continue
		}
		if _, ok := local[a.To]; ok {
			out[a] = c
		}
	}
	return out
}
