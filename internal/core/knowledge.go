// Package core implements the paper's two distributed FDLSP algorithms on
// top of the sim engines: the synchronous maximal-independent-set based
// algorithm DistMIS (Algorithm 1, Sections 5–6) and the asynchronous
// DFS-based token-passing algorithm (Algorithm 2, Section 7). Both produce
// feasible distance-2 edge colorings of the bi-directed input graph; the
// number of colors is the TDMA frame length.
package core

import (
	"fmt"
	"sort"

	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
)

// ColorAnnounce propagates the color of one arc. Whenever a node learns the
// color of an arc incident to itself it originates a TTL-2 flood, so the
// color of arc (x,y) becomes known everywhere within 2 hops of x and of y —
// exactly the distance-2 knowledge a node needs to color its own arcs
// feasibly (every arc conflicting with an arc at node u has an endpoint
// within 2 hops of u).
type ColorAnnounce struct {
	Arc    graph.Arc
	Color  int
	Origin int
	TTL    int
	// Gen is the origin's announcement generation. It is 0 for a node's
	// lifetime unless the node crashes and rejoins: the rejoin handshake
	// re-floods already-colored incident arcs under a bumped generation so
	// relays that saw (and deduplicated) the pre-crash flood still forward
	// the repair copy to neighborhoods the original flood never reached.
	Gen int
}

type annKey struct {
	origin int
	arc    graph.Arc
	gen    int
}

// knowledge is one node's view of arc colors, plus the flood bookkeeping
// that maintains it. It is owned by a single node (goroutine) at a time.
type knowledge struct {
	id   int
	g    *graph.Graph
	know coloring.Assignment

	originated map[graph.Arc]struct{} // arcs this node has flooded itself
	seen       map[annKey]struct{}    // relay dedupe
	gen        int                    // current announcement generation (bumped on rejoin)

	// tolerant relaxes the write-once invariant for faulty runs: when a
	// node crashes mid-announcement its partial flood can leave witnesses
	// that later see the surviving endpoint recolor the arc. Only arcs
	// incident to a crashed node can be recolored (live–live arcs announce
	// endpoint-to-endpoint over the reliable transport before anyone else
	// may color them), and those arcs are excluded from the assembled
	// schedule, so witnesses keep their first-seen color and move on.
	tolerant bool

	// obuf is the scratch slice handed out by announceOwnTTL/observe/
	// reannounce. Callers consume the returned floods before the next call
	// on the same knowledge, so one buffer serves every announcement the
	// node ever makes.
	obuf []ColorAnnounce
}

type twoHopKey struct{}

// twoHopDegreeSum returns, for every vertex, the degree sum over its closed
// distance-2 neighborhood. TTL-2 floods deliver a node announces for
// exactly the arcs incident to that neighborhood, so this is the size
// scale of the knowledge table (one entry per heard arc) and the relay
// dedupe set (one entry per origin per arc). Cached per topology: every
// node of every run on the same graph shares one build.
func twoHopDegreeSum(g *graph.Graph) []int {
	return g.Aux(twoHopKey{}, func() any {
		sums := make([]int, g.N())
		mark := make([]int, g.N())
		for i := range mark {
			mark[i] = -1
		}
		for v := 0; v < g.N(); v++ {
			mark[v] = v
			s := g.Degree(v)
			for _, u := range g.NeighborsView(v) {
				if mark[u] != v {
					mark[u] = v
					s += g.Degree(u)
				}
				for _, w := range g.NeighborsView(u) {
					if mark[w] != v {
						mark[w] = v
						s += g.Degree(w)
					}
				}
			}
			sums[v] = s
		}
		return sums
	}).([]int)
}

func newKnowledge(id int, g *graph.Graph) *knowledge {
	// A node's table holds colors learned within its distance-2
	// neighborhood, not the whole graph: size for the local view (the maps
	// still grow on demand if the estimate falls short). Growing these maps
	// in place instead retains every doubled-and-discarded bucket array as
	// garbage — they are the protocol's largest per-node state.
	s2 := twoHopDegreeSum(g)[id]
	return &knowledge{
		id:         id,
		g:          g,
		know:       coloring.NewAssignmentSized(s2 + 8),
		originated: make(map[graph.Arc]struct{}, 2*g.Degree(id)),
		seen:       make(map[annKey]struct{}, 2*s2+8),
	}
}

// record stores a color, guarding the write-once invariant (no algorithm in
// this repository ever recolors an arc).
func (k *knowledge) record(a graph.Arc, c int) {
	if prev := k.know[a]; prev != coloring.None && prev != c {
		if k.tolerant {
			return // first writer wins; see the tolerant field
		}
		panic(fmt.Sprintf("core: node %d saw arc %v recolored %d -> %d", k.id, a, prev, c))
	}
	k.know[a] = c
}

// incident reports whether arc a touches this node.
func (k *knowledge) incident(a graph.Arc) bool { return a.From == k.id || a.To == k.id }

// announceOwn returns the TTL-2 floods for newly self-colored arcs, marking
// them originated.
func (k *knowledge) announceOwn(arcs []graph.Arc) []ColorAnnounce {
	return k.announceOwnTTL(arcs, 2)
}

// announceOwnTTL is announceOwn with an explicit flood radius (the
// randomized algorithm floods finals 3 hops so the next iteration's gambles
// everywhere see them). The result shares the knowledge's scratch buffer:
// consume it before the next announceOwnTTL/observe/reannounce call.
func (k *knowledge) announceOwnTTL(arcs []graph.Arc, ttl int) []ColorAnnounce {
	out := k.obuf[:0]
	for _, a := range arcs {
		out = k.appendOwn(out, a, ttl)
	}
	k.obuf = out[:0]
	return out
}

// appendOwn appends this node's own flood for arc a unless already
// originated, marking it originated and seen.
func (k *knowledge) appendOwn(out []ColorAnnounce, a graph.Arc, ttl int) []ColorAnnounce {
	c := k.know[a]
	if c == coloring.None {
		panic(fmt.Sprintf("core: node %d announcing uncolored arc %v", k.id, a))
	}
	if _, dup := k.originated[a]; dup {
		return out
	}
	k.originated[a] = struct{}{}
	k.seen[annKey{origin: k.id, arc: a, gen: k.gen}] = struct{}{}
	return append(out, ColorAnnounce{Arc: a, Color: c, Origin: k.id, TTL: ttl, Gen: k.gen})
}

// reannounce is the push half of the rejoin handshake: fresh TTL-2 floods
// for every arc incident to this node whose color it knows, under a new
// generation at least gen. Pre-crash floods from this origin may have died
// mid-relay when the crash severed the only path, leaving 2-hop witnesses
// blind; the bumped generation defeats relay dedupe so the repair flood
// travels the full radius again. Originated bookkeeping is left untouched —
// it is keyed per arc, and these arcs were already flooded once.
func (k *knowledge) reannounce(gen int) []ColorAnnounce {
	if gen > k.gen {
		k.gen = gen
	} else {
		k.gen++
	}
	out := k.obuf[:0]
	for _, a := range k.g.IncidentArcsView(k.id) {
		c := k.know[a]
		if c == coloring.None {
			continue
		}
		k.seen[annKey{origin: k.id, arc: a, gen: k.gen}] = struct{}{}
		out = append(out, ColorAnnounce{Arc: a, Color: c, Origin: k.id, TTL: 2, Gen: k.gen})
	}
	k.obuf = out[:0]
	return out
}

// observe ingests an incoming announce and returns the messages to send in
// response: the relayed copy (if the flood still travels) and, when the arc
// is incident to this node and not yet flooded from here, this endpoint's
// own TTL-2 flood (the "endpoint rule" that extends coverage to 2 hops from
// both endpoints).
func (k *knowledge) observe(f ColorAnnounce) []ColorAnnounce {
	out := k.obuf[:0]
	key := annKey{origin: f.Origin, arc: f.Arc, gen: f.Gen}
	if _, dup := k.seen[key]; !dup {
		k.seen[key] = struct{}{}
		k.record(f.Arc, f.Color)
		if f.TTL > 1 {
			relay := f
			relay.TTL--
			out = append(out, relay)
		}
	}
	if k.incident(f.Arc) {
		out = k.appendOwn(out, f.Arc, 2)
	}
	k.obuf = out[:0]
	return out
}

// arcColor is one entry of a serialized color table. Tables travel as sorted
// slices, not maps: a slice ships one backing array instead of a fresh map
// plus per-bucket allocations, and the sorted order makes every consumer
// deterministic without re-sorting.
type arcColor struct {
	Arc   graph.Arc
	Color int
}

// merge folds a peer's color table into this node's knowledge (used by the
// DFS algorithm's explicit ask/reply exchange).
func (k *knowledge) merge(table []arcColor) {
	for _, e := range table {
		if e.Color != coloring.None {
			k.record(e.Arc, e.Color)
		}
	}
}

// localTo reports whether arc a is incident to this node or to one of its
// neighbors (the node's distance-1 view).
func (k *knowledge) localTo(a graph.Arc) bool {
	if a.From == k.id || a.To == k.id {
		return true
	}
	return k.g.HasEdge(k.id, a.From) || k.g.HasEdge(k.id, a.To)
}

// snapshotLocal returns the part of the node's color table an asking
// neighbor actually needs: colors of arcs incident to this node or to one
// of its neighbors (this node's distance-1 view). Together with the asker's
// own table, replies from all neighbors cover every arc within distance 2
// of the asker — the exact knowledge required for feasible coloring — while
// keeping reply sizes O(Δ²) instead of shipping the whole learned table.
// The slice is freshly allocated and sorted by arc: it escapes into the
// simulator as a message payload and must never alias live node state.
func (k *knowledge) snapshotLocal() []arcColor {
	// Count first: local arcs are a small slice of the table, and the
	// snapshot escapes into a reply message, so it is sized exactly rather
	// than at the table's capacity.
	n := 0
	for a := range k.know {
		if k.localTo(a) {
			n++
		}
	}
	out := make([]arcColor, 0, n)
	for a, c := range k.know {
		if k.localTo(a) {
			out = append(out, arcColor{Arc: a, Color: c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Arc.From != out[j].Arc.From {
			return out[i].Arc.From < out[j].Arc.From
		}
		return out[i].Arc.To < out[j].Arc.To
	})
	return out
}
