package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"testing"

	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
	"fdlsp/internal/sim"
)

// fingerprint serializes a schedule to a canonical byte string: every arc
// with its slot in sorted order, then the frame length. Two runs are "the
// same schedule" iff their fingerprints are byte-identical.
func fingerprint(as coloring.Assignment, slots int) string {
	arcs := make([]graph.Arc, 0, len(as))
	for a := range as {
		arcs = append(arcs, a)
	}
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].From != arcs[j].From {
			return arcs[i].From < arcs[j].From
		}
		return arcs[i].To < arcs[j].To
	})
	var b strings.Builder
	for _, a := range arcs {
		fmt.Fprintf(&b, "%d->%d:%d\n", a.From, a.To, as[a])
	}
	fmt.Fprintf(&b, "slots:%d\n", slots)
	return b.String()
}

// withGOMAXPROCS runs fn under the given parallelism and restores the
// previous setting.
func withGOMAXPROCS(p int, fn func()) {
	prev := runtime.GOMAXPROCS(p)
	defer runtime.GOMAXPROCS(prev)
	fn()
}

// determinismGraphs is a small suite exercising multiple components, dense
// and sparse regions, and nontrivial size.
func determinismGraphs() map[string]*graph.Graph {
	rng := rand.New(rand.NewSource(7))
	multi := graph.New(25)
	for _, e := range graph.GNM(12, 30, rng).Edges() {
		multi.AddEdge(e.U, e.V)
	}
	for _, e := range graph.Cycle(9).Edges() {
		multi.AddEdge(e.U+12, e.V+12) // second component; nodes 21..24 stay isolated
	}
	return map[string]*graph.Graph{
		"gnm":   graph.GNM(40, 100, rng),
		"grid":  graph.Grid(6, 6),
		"multi": multi,
	}
}

// TestDistMISScheduleByteIdenticalAcrossGOMAXPROCS runs DistMIS twice per
// parallelism level with one seed and demands byte-identical schedules and
// identical cost accounting: the synchronous engine's worker striping must
// never leak scheduling order into results.
func TestDistMISScheduleByteIdenticalAcrossGOMAXPROCS(t *testing.T) {
	for name, g := range determinismGraphs() {
		for _, variant := range []Variant{GBG, General} {
			var prints []string
			var stats []sim.Stats
			for _, procs := range []int{1, 4, runtime.NumCPU()} {
				withGOMAXPROCS(procs, func() {
					for rep := 0; rep < 2; rep++ {
						res, err := DistMIS(g, Options{Seed: 1234, Variant: variant})
						if err != nil {
							t.Fatalf("%s/%v: %v", name, variant, err)
						}
						prints = append(prints, fingerprint(res.Assignment, res.Slots))
						stats = append(stats, res.Stats)
					}
				})
			}
			for i := 1; i < len(prints); i++ {
				if prints[i] != prints[0] {
					t.Errorf("%s/%v: run %d schedule differs from run 0:\n%s\nvs\n%s",
						name, variant, i, prints[i], prints[0])
				}
				if stats[i] != stats[0] {
					t.Errorf("%s/%v: run %d stats %+v differ from run 0 %+v", name, variant, i, stats[i], stats[0])
				}
			}
		}
	}
}

// TestDFSScheduleByteIdenticalAcrossGOMAXPROCS does the same for the
// asynchronous DFS algorithm: one goroutine per node, so this is the test
// that catches any schedule-affecting data race or queue-order dependence.
// (Message counts may vary across runs — concurrent floods of the same
// announcement race for the dedup slot with different remaining TTLs — but
// the schedule itself must not.)
func TestDFSScheduleByteIdenticalAcrossGOMAXPROCS(t *testing.T) {
	for name, g := range determinismGraphs() {
		for _, policy := range []ChildPolicy{MaxDegree, MinID, RandomChild} {
			for _, delay := range []struct {
				name string
				fn   sim.DelayFn
			}{
				{"nodelay", sim.NoDelay()},
				{"uniform", sim.UniformDelay(5)},
			} {
				var prints []string
				for _, procs := range []int{1, 4, runtime.NumCPU()} {
					withGOMAXPROCS(procs, func() {
						for rep := 0; rep < 2; rep++ {
							res, err := DFS(g, DFSOptions{Policy: policy, Seed: 777, Delay: delay.fn})
							if err != nil {
								t.Fatalf("%s/%v/%s: %v", name, policy, delay.name, err)
							}
							prints = append(prints, fingerprint(res.Assignment, res.Slots))
						}
					})
				}
				for i := 1; i < len(prints); i++ {
					if prints[i] != prints[0] {
						t.Errorf("%s/%v/%s: run %d schedule differs from run 0:\n%s\nvs\n%s",
							name, policy, delay.name, i, prints[i], prints[0])
					}
				}
			}
		}
	}
}

// TestRandomizedScheduleByteIdenticalAcrossGOMAXPROCS covers the
// no-coordination ablation, whose per-arc rank maps are the classic spot
// for map-iteration nondeterminism to slip back in.
func TestRandomizedScheduleByteIdenticalAcrossGOMAXPROCS(t *testing.T) {
	for name, g := range determinismGraphs() {
		var prints []string
		for _, procs := range []int{1, runtime.NumCPU()} {
			withGOMAXPROCS(procs, func() {
				for rep := 0; rep < 2; rep++ {
					res, err := Randomized(g, 4242)
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					prints = append(prints, fingerprint(res.Assignment, res.Slots))
				}
			})
		}
		for i := 1; i < len(prints); i++ {
			if prints[i] != prints[0] {
				t.Errorf("%s: run %d schedule differs from run 0", name, i)
			}
		}
	}
}
