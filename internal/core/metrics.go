package core

import (
	"fdlsp/internal/obs"
	"fdlsp/internal/sim"
	"fdlsp/internal/transport"
)

// Metric families of the scheduling algorithms. A run publishes its Result
// into the registry handed in via Options.Metrics / DFSOptions.Metrics:
// per-phase round/message breakdowns, iteration counts, slot counts, and
// the crash/rejoin accounting. The phase engines and the transport publish
// their own families (fdlsp_sim_*, fdlsp_transport_*) on the same registry,
// so one registry snapshot covers a run end to end. All published values
// derive from deterministic per-seed accounting.
const (
	metricRuns           = "fdlsp_core_runs_total"
	metricSlots          = "fdlsp_core_slots"
	metricDistinct       = "fdlsp_core_distinct_colors"
	metricPhaseRounds    = "fdlsp_core_phase_rounds_total"
	metricPhaseMessages  = "fdlsp_core_phase_messages_total"
	metricIterations     = "fdlsp_core_iterations_total"
	metricCrashedNodes   = "fdlsp_core_crashed_nodes_total"
	metricRejoinReturned = "fdlsp_core_rejoin_returned_total"
	metricRejoinResync   = "fdlsp_core_rejoin_resync_messages_total"
	metricRejoinRebased  = "fdlsp_core_rejoin_rebased_total"
)

// RegisterMetrics creates the algorithm metric families in reg — plus the
// engine and transport families a run also feeds — without recording any
// samples, so a scrape exposes the full schema from process start.
// Idempotent.
func RegisterMetrics(reg *obs.Registry) {
	reg.CounterVec(metricRuns, "Scheduling runs completed, by algorithm.", "algorithm")
	reg.GaugeVec(metricSlots, "TDMA frame length of the most recent run, by algorithm.", "algorithm")
	reg.GaugeVec(metricDistinct, "Distinct colors used by the most recent run, by algorithm (< slots when crash recovery leaves gaps).", "algorithm")
	reg.CounterVec(metricPhaseRounds, "Communication rounds, by algorithm and protocol phase.", "algorithm", "phase")
	reg.CounterVec(metricPhaseMessages, "Messages sent, by algorithm and protocol phase.", "algorithm", "phase")
	reg.CounterVec(metricIterations, "Protocol loop iterations (DistMIS outer/inner MIS peeling).", "algorithm", "loop")
	reg.CounterVec(metricCrashedNodes, "Nodes that crash-stopped and never returned.", "algorithm")
	reg.CounterVec(metricRejoinReturned, "Nodes that returned from a bounded outage and reintegrated in-protocol.", "algorithm")
	reg.CounterVec(metricRejoinResync, "Messages originated by the rejoin handshake (resyncReq/resyncReply and re-announcements).", "algorithm")
	reg.CounterVec(metricRejoinRebased, "Driver re-launches: DistMIS phase re-basings and DFS recovery epochs beyond the first.", "algorithm")
	sim.RegisterMetrics(reg)
	transport.RegisterMetrics(reg)
}

// publishResult folds one finished run into reg under an algorithm label
// ("distmis" or "dfs" — variants and policies are accounted together so
// dashboards aggregate naturally; the Result keeps the precise flavour).
func publishResult(reg *obs.Registry, algo string, res *Result) {
	if reg == nil {
		return
	}
	RegisterMetrics(reg)
	reg.CounterVec(metricRuns, "", "algorithm").With(algo).Inc()
	reg.GaugeVec(metricSlots, "", "algorithm").With(algo).Set(float64(res.Slots))
	reg.GaugeVec(metricDistinct, "", "algorithm").With(algo).Set(float64(res.DistinctColors))
	rounds := reg.CounterVec(metricPhaseRounds, "", "algorithm", "phase")
	msgs := reg.CounterVec(metricPhaseMessages, "", "algorithm", "phase")
	if len(res.Breakdown) > 0 {
		for _, phase := range []string{"primary-mis", "secondary-mis", "coloring"} {
			if st, ok := res.Breakdown[phase]; ok {
				rounds.With(algo, phase).Add(float64(st.Rounds))
				msgs.With(algo, phase).Add(float64(st.Messages))
			}
		}
	} else {
		rounds.With(algo, "traversal").Add(float64(res.Stats.Rounds))
		msgs.With(algo, "traversal").Add(float64(res.Stats.Messages))
	}
	iters := reg.CounterVec(metricIterations, "", "algorithm", "loop")
	if res.OuterIters > 0 || res.InnerIters > 0 {
		iters.With(algo, "outer").Add(float64(res.OuterIters))
		iters.With(algo, "inner").Add(float64(res.InnerIters))
	}
	reg.CounterVec(metricCrashedNodes, "", "algorithm").With(algo).Add(float64(len(res.Crashed)))
	reg.CounterVec(metricRejoinReturned, "", "algorithm").With(algo).Add(float64(len(res.Rejoin.Returned)))
	reg.CounterVec(metricRejoinResync, "", "algorithm").With(algo).Add(float64(res.Rejoin.ResyncMsgs))
	reg.CounterVec(metricRejoinRebased, "", "algorithm").With(algo).Add(float64(res.Rejoin.Rebased))
	transport.PublishTotals(reg, res.Transport)
}
