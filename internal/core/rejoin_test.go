package core

import (
	"fmt"
	"strings"
	"testing"

	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
	"fdlsp/internal/sim"
)

// outagePlanFor is the rejoin acceptance scenario: 20% loss, duplication,
// bounded reordering, and one bounded outage — the crashed node comes back
// mid-run and must be reintegrated by the protocol, not excluded.
func outagePlanFor(seed int64, node int) *sim.FaultPlan {
	return &sim.FaultPlan{
		Seed: seed * 31, Loss: 0.2, Dup: 0.1, Reorder: 2,
		Crashes: []sim.Crash{{Node: node, At: 40, RestartAt: 4000}},
	}
}

// assertReintegrated checks the rejoin contract for a run whose every crash
// was a bounded outage: nobody is reported crashed, the returned set is
// exactly the outage set, and the schedule is a complete feasible coloring
// of the FULL graph — no arc of a returned node may be missing.
func assertReintegrated(t *testing.T, label string, g *graph.Graph, res *Result, returned ...int) {
	t.Helper()
	if len(res.Crashed) != 0 {
		t.Fatalf("%s: Crashed = %v, want none (all outages were bounded)", label, res.Crashed)
	}
	if got := fmt.Sprint(res.Rejoin.Returned); got != fmt.Sprint(returned) {
		t.Fatalf("%s: Rejoin.Returned = %v, want %v", label, res.Rejoin.Returned, returned)
	}
	if res.Rejoin.ResyncMsgs == 0 {
		t.Errorf("%s: Rejoin.ResyncMsgs = 0, want handshake traffic", label)
	}
	if viols := coloring.Verify(g, res.Assignment); len(viols) != 0 {
		t.Fatalf("%s: %d violations on the full graph, first %v", label, len(viols), viols[0])
	}
	for _, a := range g.Arcs() {
		if res.Assignment[a] == coloring.None {
			t.Fatalf("%s: arc %v uncolored — rejoin left it permanently excluded", label, a)
		}
	}
}

func TestDistMISCrashRejoinReintegrates(t *testing.T) {
	for _, variant := range []Variant{GBG, General} {
		seeds := int64(3)
		if variant == General {
			seeds = 1 // the general variant shares the driver; one seed suffices
		}
		for seed := int64(1); seed <= seeds; seed++ {
			n := 24 + int(seed)*4
			g := faultUDG(t, seed, n)
			res, err := DistMIS(g, Options{Variant: variant, Seed: seed, Fault: outagePlanFor(seed, n/3)})
			if err != nil {
				t.Fatalf("%v seed %d: %v", variant, seed, err)
			}
			assertReintegrated(t, fmt.Sprintf("%v seed %d", variant, seed), g, res, n/3)
		}
	}
}

func TestDFSCrashRejoinReintegrates(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		n := 24 + int(seed)*4
		g := faultUDG(t, seed, n)
		res, err := DFS(g, DFSOptions{Seed: seed, Fault: outagePlanFor(seed, n/3)})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		assertReintegrated(t, fmt.Sprintf("seed %d", seed), g, res, n/3)
	}
}

// TestCrashStopAndRejoinMix drives both engines through a plan mixing a
// permanent crash-stop with a bounded outage: Crashed must list exactly the
// stop, Returned exactly the outage, and the schedule must cover every arc
// of the surviving subgraph — including all of the returned node's arcs.
func TestCrashStopAndRejoinMix(t *testing.T) {
	const seed = 2
	g := faultUDG(t, seed, 28)
	stop, outage := 5, 14
	plan := &sim.FaultPlan{
		Seed: seed * 31, Loss: 0.2, Dup: 0.1, Reorder: 2,
		Crashes: []sim.Crash{
			{Node: stop, At: 60},
			{Node: outage, At: 40, RestartAt: 4000},
		},
	}
	for _, algo := range []string{"distmis", "dfs"} {
		var res *Result
		var err error
		if algo == "distmis" {
			res, err = DistMIS(g, Options{Seed: seed, Fault: plan})
		} else {
			res, err = DFS(g, DFSOptions{Seed: seed, Fault: plan})
		}
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(res.Crashed) != 1 || res.Crashed[0] != stop {
			t.Fatalf("%s: Crashed = %v, want [%d]", algo, res.Crashed, stop)
		}
		if len(res.Rejoin.Returned) != 1 || res.Rejoin.Returned[0] != outage {
			t.Fatalf("%s: Returned = %v, want [%d]", algo, res.Rejoin.Returned, outage)
		}
		surv := SurvivingGraph(g, res.Crashed)
		if viols := coloring.Verify(surv, res.Assignment); len(viols) != 0 {
			t.Fatalf("%s: invalid on surviving subgraph: %v", algo, viols[0])
		}
		for _, a := range surv.IncidentArcs(outage) {
			if res.Assignment[a] == coloring.None {
				t.Fatalf("%s: returned node's arc %v uncolored", algo, a)
			}
		}
	}
}

// TestRejoinDeterminismAcrossGOMAXPROCS pins the crash+restart+rejoin
// pipeline to the seed: schedules, crash/returned sets, transport counters
// and the fault/lifecycle/detector trace must be byte-identical across
// parallelism levels, for both engines, over several seeds.
func TestRejoinDeterminismAcrossGOMAXPROCS(t *testing.T) {
	type outcome struct {
		print    string
		tport    string
		crashed  string
		returned string
		resync   int64
		trace    string
	}
	run := func(algo string, g *graph.Graph, seed int64, plan *sim.FaultPlan) outcome {
		t.Helper()
		rec := &sim.Recorder{}
		var res *Result
		var err error
		if algo == "distmis" {
			res, err = DistMIS(g, Options{Seed: seed, Fault: plan, Trace: rec})
		} else {
			res, err = DFS(g, DFSOptions{Seed: seed, Fault: plan, Trace: rec})
		}
		if err != nil {
			t.Fatal(err)
		}
		var tr []string
		for _, e := range rec.Events() {
			switch e.Kind {
			case sim.EventDropFault, sim.EventDup, sim.EventNodeCrash, sim.EventNodeRestart,
				sim.EventPeerDown, sim.EventPeerUp:
				tr = append(tr, e.String())
			}
		}
		return outcome{
			print:    fingerprint(res.Assignment, res.Slots),
			tport:    res.Transport.String(),
			crashed:  fmt.Sprint(res.Crashed),
			returned: fmt.Sprint(res.Rejoin.Returned),
			resync:   res.Rejoin.ResyncMsgs,
			trace:    strings.Join(tr, "\n"),
		}
	}
	for seed := int64(1); seed <= 5; seed++ {
		g := faultUDG(t, seed+10, 16)
		// Restart early: the synchronous engine spins physical rounds until
		// the restart mark, so a late mark would dominate the small graph's
		// natural run length.
		plan := &sim.FaultPlan{
			Seed: seed * 31, Loss: 0.2, Dup: 0.1, Reorder: 2,
			Crashes: []sim.Crash{{Node: int(seed) % 16, At: 40, RestartAt: 600}},
		}
		for _, algo := range []string{"distmis", "dfs"} {
			var outs []outcome
			for _, procs := range []int{1, 8} {
				withGOMAXPROCS(procs, func() {
					outs = append(outs, run(algo, g, seed, plan))
				})
			}
			for i := 1; i < len(outs); i++ {
				if outs[i] != outs[0] {
					t.Errorf("%s seed %d: outcome differs between GOMAXPROCS runs:\n%+v\nvs\n%+v",
						algo, seed, outs[0], outs[i])
				}
			}
		}
	}
}

// TestBackToBackRejoinDuringResync crashes a node again in the middle of its
// own resync handshake: the first outage ends at 60, and the second begins at
// 62 — within the round trip of the resyncReq/resyncReply exchange — so the
// half-finished resync is torn down with the node's volatile protocol
// progress. The node's second restart must still reintegrate it fully, and
// the whole pipeline must stay byte-identical across GOMAXPROCS.
func TestBackToBackRejoinDuringResync(t *testing.T) {
	for seed := int64(1); seed <= 2; seed++ {
		n := 20 + int(seed)*4
		g := faultUDG(t, seed+20, n)
		victim := n / 3
		plan := &sim.FaultPlan{
			Seed: seed * 31, Loss: 0.2, Dup: 0.1, Reorder: 2,
			Crashes: []sim.Crash{
				{Node: victim, At: 40, RestartAt: 60},
				{Node: victim, At: 62, RestartAt: 900},
			},
		}
		if err := plan.Validate(n); err != nil {
			t.Fatal(err)
		}
		for _, algo := range []string{"distmis", "dfs"} {
			var prints []string
			for _, procs := range []int{1, 8} {
				withGOMAXPROCS(procs, func() {
					var res *Result
					var err error
					if algo == "distmis" {
						res, err = DistMIS(g, Options{Seed: seed, Fault: plan})
					} else {
						res, err = DFS(g, DFSOptions{Seed: seed, Fault: plan})
					}
					if err != nil {
						t.Fatalf("%s seed %d: %v", algo, seed, err)
					}
					assertReintegrated(t, fmt.Sprintf("%s seed %d procs %d", algo, seed, procs),
						g, res, victim)
					prints = append(prints, fingerprint(res.Assignment, res.Slots)+
						fmt.Sprint(res.Rejoin.Returned, res.Rejoin.ResyncMsgs))
				})
			}
			for i := 1; i < len(prints); i++ {
				if prints[i] != prints[0] {
					t.Errorf("%s seed %d: back-to-back rejoin outcome differs across GOMAXPROCS:\n%s\nvs\n%s",
						algo, seed, prints[0], prints[i])
				}
			}
		}
	}
}
