package core

import "fdlsp/internal/coloring"

// ProbePoint is one mid-run observation handed to Options.Probe: a snapshot
// of where the protocol is (phase, round) together with read access to the
// schedule built so far. Probes run between engine rounds in the sequential
// section — the protocol is paused, not stopped — so the snapshot is
// consistent: no node is mid-step, no message is mid-delivery. Because the
// hook fires at deterministic rounds with deterministic state, anything a
// probe derives (conflict counts, usable-frame fractions) inherits the
// engines' GOMAXPROCS-invariance.
type ProbePoint struct {
	// Phase names the running sub-protocol: "primary-mis", "secondary-mis"
	// or "coloring".
	Phase string
	// Round is the physical round just executed within the current phase.
	Round int64
	// Elapsed is the number of physical rounds completed by earlier phases,
	// so Elapsed+Round is protocol-global time.
	Elapsed int64

	pr *phaseRunner
}

// PartialSchedule assembles the arcs colored so far into a fresh assignment:
// each node contributes the colors of the arcs it colored itself, exactly as
// the final assembly will. Auditing it (coloring.AuditArcs, UsableArcs)
// during repair yields the residual-conflict and frame-usability metrics of
// the churn soak; uncolored arcs are simply absent. The returned map is the
// caller's to keep.
func (p ProbePoint) PartialSchedule() coloring.Assignment {
	count := 0
	for _, st := range p.pr.states {
		count += len(st.ownColored)
	}
	as := coloring.NewAssignmentSized(count)
	for _, st := range p.pr.states {
		for _, a := range st.ownColored {
			if c := st.know.know[a]; c != coloring.None {
				as[a] = c
			}
		}
	}
	return as
}

// ColoredArcs returns how many arcs currently hold a color, without building
// the schedule — the cheap progress gauge for high-frequency probes.
func (p ProbePoint) ColoredArcs() int {
	count := 0
	for _, st := range p.pr.states {
		for _, a := range st.ownColored {
			if st.know.know[a] != coloring.None {
				count++
			}
		}
	}
	return count
}
