package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
)

func TestRandomizedValidOnSuite(t *testing.T) {
	for name, g := range testGraphs(t) {
		res, err := Randomized(g, 8)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if viols := coloring.Verify(g, res.Assignment); len(viols) != 0 {
			t.Fatalf("%s: %d violations, first %v", name, len(viols), viols[0])
		}
	}
}

func TestRandomizedDeterministicPerSeed(t *testing.T) {
	g := graph.GNM(25, 60, rand.New(rand.NewSource(2)))
	a, err := Randomized(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Randomized(g, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Slots != b.Slots || a.Stats != b.Stats {
		t.Errorf("same seed differs: %v vs %v", a.Stats, b.Stats)
	}
}

func TestRandomizedUsuallyLongerThanDistMIS(t *testing.T) {
	// The paper's observation: the randomized algorithm produces longer
	// schedules on average. Checked as an aggregate over several seeds (a
	// single instance may tie).
	rng := rand.New(rand.NewSource(9))
	var randTotal, misTotal int
	for trial := 0; trial < 6; trial++ {
		g := graph.ConnectedGNM(40, 120, rng)
		r, err := Randomized(g, int64(trial))
		if err != nil {
			t.Fatal(err)
		}
		m, err := DistMIS(g, Options{Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		randTotal += r.Slots
		misTotal += m.Slots
	}
	if randTotal < misTotal {
		t.Logf("note: randomized (%d) beat distMIS (%d) on this sample — acceptable but unusual", randTotal, misTotal)
	}
}

func TestRandomizedPropertyQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		g := graph.GNM(n, rng.Intn(n*(n-1)/2+1), rng)
		res, err := Randomized(g, seed)
		return err == nil && coloring.Valid(g, res.Assignment)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
