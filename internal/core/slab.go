package core

// slab is a chunked bump allocator for pooled message payloads. put hands out
// a stable pointer into the current chunk; when the chunk fills, a fresh one
// is started, so previously returned pointers are never moved or reused. One
// chunk amortizes a single heap allocation over slabChunk payloads, replacing
// the per-send boxing allocation protocols otherwise pay when a payload
// escapes into the simulator.
//
// Slabs never shrink and never reclaim: they are owned by per-node protocol
// state and live exactly as long as one algorithm run.
//
// Concurrency contract (the parallel sync engine depends on it): a slab is
// part of exactly one node's state, and the engine never runs two Steps of
// the same node concurrently, so put is only ever called from the goroutine
// currently stepping the owning node — shard-local by ownership, no locks
// or atomics needed. Readers on other shards only ever see pointers that
// were handed out in a previous round, published by the engine's round
// barrier, and never written again (payloads are immutable once sent), so
// cross-shard reads race with nothing. Do not share one slab between nodes
// and do not mutate a payload after putting it.
type slab[T any] struct {
	chunk []T
}

const slabChunk = 256

func (s *slab[T]) put(v T) *T {
	if len(s.chunk) == cap(s.chunk) {
		s.chunk = make([]T, 0, slabChunk)
	}
	s.chunk = append(s.chunk, v)
	return &s.chunk[len(s.chunk)-1]
}
