package core

import (
	"fmt"

	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
	"fdlsp/internal/mis"
	"fdlsp/internal/obs"
	"fdlsp/internal/sim"
	"fdlsp/internal/transport"
)

// Variant selects between the paper's two DistMIS flavours.
type Variant int

const (
	// GBG is the growth-bounded-graph variant (Section 5): the secondary MIS
	// competes over distance-3 and winners color all their incident arcs.
	GBG Variant = iota
	// General is the general-graph variant (Section 6): the secondary MIS
	// competes over distance-2 and winners color only their outgoing arcs,
	// cutting the number of secondary competitions by a factor of Δ.
	General
)

func (v Variant) String() string {
	if v == General {
		return "general"
	}
	return "gbg"
}

// Options configures a DistMIS run.
type Options struct {
	// Drawer is the MIS value strategy; nil means mis.Luby().
	Drawer mis.Drawer
	// Variant selects the GBG (default) or general-graph algorithm.
	Variant Variant
	// Seed drives all randomness in the run.
	Seed int64
	// Trace optionally observes every phase engine's events (rounds, sends,
	// node terminations); it must be safe for concurrent use.
	Trace sim.Tracer
	// Fault optionally subjects the run to message loss, duplication,
	// reordering, and node crashes. When set, every phase runs over the
	// reliable transport (internal/transport) and the run tolerates
	// crash-stop failures: a crashed node's arcs are excluded from the
	// schedule, which then covers exactly the surviving subgraph
	// (SurvivingGraph). nil keeps the original zero-overhead direct path.
	Fault *sim.FaultPlan
	// Transport tunes the ARQ machinery when Fault is set (zero value =
	// defaults); ignored otherwise.
	Transport transport.Options
	// Metrics optionally receives the run's accounting: the phase engines
	// publish fdlsp_sim_* families, the driver publishes fdlsp_core_* and
	// fdlsp_transport_* families when the run finishes. Values derive only
	// from deterministic per-seed accounting, so equal seeds yield
	// byte-identical registry snapshots.
	Metrics *obs.Registry
	// Probe, when set, observes the run in progress: it is invoked from each
	// phase engine's sequential section every ProbeEvery rounds (default:
	// every round) with a ProbePoint giving the phase, round, and read access
	// to the nodes' partial schedule. The protocol is not stopped — the hook
	// runs between rounds with no node goroutines alive — so drivers can
	// measure repair-in-progress quantities (residual conflicts, usable frame
	// fraction) while the algorithm heals. The hook must not mutate protocol
	// or engine state, and it runs on the synchronous (DistMIS) path only.
	Probe func(ProbePoint)
	// ProbeEvery is the probing period in physical rounds; values < 1 mean 1.
	ProbeEvery int64
	// Workers bounds the phase engines' worker pool (sim.SyncEngine.Workers):
	// 0 means GOMAXPROCS, 1 forces serial execution. Results, traces, and
	// metrics are byte-identical per seed at every setting — the knob only
	// trades wall clock for cores.
	Workers int
}

// Result is the outcome of one scheduling run (any algorithm).
type Result struct {
	Algorithm  string
	Assignment coloring.Assignment
	Slots      int // number of TDMA time slots used (largest color = frame length)
	// DistinctColors counts the colors actually used. Complete fault-free
	// greedy schedules use every slot up to Slots, so the two agree; crash
	// recovery can retire colors and leave gaps, making DistinctColors <
	// Slots (the frame still needs Slots slots — gaps are idle slots).
	DistinctColors int
	Stats          sim.Stats // communication rounds and messages
	// OuterIters counts primary-MIS phases and InnerIters secondary-MIS
	// phases (DistMIS only; zero for other algorithms).
	OuterIters int
	InnerIters int
	// Breakdown splits Stats by protocol phase (DistMIS fills
	// "primary-mis", "secondary-mis" and "coloring"); the parts sum to
	// Stats. Nil for algorithms without phases.
	Breakdown map[string]sim.Stats
	// Crashed lists the nodes that crash-stopped during the run (faulty runs
	// only), ascending. Nodes with bounded outages are NOT listed: they
	// rejoin in-protocol and appear in Rejoin.Returned instead, and their
	// arcs are part of the schedule. The Assignment covers the arcs of
	// SurvivingGraph(g, Crashed).
	Crashed []int
	// Rejoin accounts for protocol-level crash recovery: which nodes
	// returned from an outage and what the re-sync handshake cost.
	Rejoin RejoinStats
	// Transport aggregates the reliable-transport accounting across all
	// phase engines (faulty runs only; zero otherwise).
	Transport transport.Totals
}

// nodeState is the persistent per-node state shared across the phase
// engines of one DistMIS run.
type nodeState struct {
	id         int
	removed    bool
	know       *knowledge
	ownColored []graph.Arc
	resyncMsgs int64 // rejoin-handshake messages originated by this node

	// anns and floods pool the pointer payloads this node sends; the phase
	// nodes below are allocated once per run and re-armed per phase.
	anns      slab[ColorAnnounce]
	floods    slab[mis.Flood]
	misNode   *misPhaseNode
	colorNode *colorPhaseNode
}

// DistMIS runs Algorithm 1 on g and returns the schedule. The run is a
// sequence of synchronous sub-protocols on the sim engine — primary MIS,
// secondary MIS (flooded competition over distance 2 or 3), coloring wave —
// whose rounds and messages are accumulated; the simulator detects each
// phase's global completion in lieu of the analytical worst-case round
// bounds a deployed synchronous protocol would use (see DESIGN.md).
//
// Under a fault plan the phases run on the reliable transport and the
// driver treats crash-stopped nodes as permanently gone: they stop
// competing, their arcs are skipped by colorers and by the final assembly,
// and empty competitions caused by a mid-phase crash are retried. Logical
// rounds are rebuilt by the engine's RoundGate synchronizer, so the
// competition logic itself is unchanged (see DESIGN.md, "Failure model").
func DistMIS(g *graph.Graph, opts Options) (*Result, error) {
	drawer := opts.Drawer
	if drawer == nil {
		drawer = mis.Luby()
	}
	radius := 3
	if opts.Variant == General {
		radius = 2
	}
	faulty := opts.Fault != nil
	var topt *transport.Options
	if faulty {
		t := opts.Transport
		topt = &t
	}

	n := g.N()
	states := make([]*nodeState, n)
	for v := 0; v < n; v++ {
		states[v] = &nodeState{id: v, know: newKnowledge(v, g)}
		states[v].know.tolerant = faulty
	}

	var total sim.Stats
	var ttot transport.Totals
	breakdown := map[string]sim.Stats{}
	dead := make([]bool, n)
	returnedMask := make([]bool, n)
	elapsed := int64(0)
	// notePhase folds one phase's accounting into the run totals and reports
	// the fault churn: fresh permanently-dead nodes and completed rejoins. A
	// node that crashes and returns within the same phase shows up only in
	// returned; dead tracks crash-stops, never transient outages.
	notePhase := func(name string, st sim.Stats, tt transport.Totals, crashed, returned []int) (fresh, back int) {
		total.Add(st)
		b := breakdown[name]
		b.Add(st)
		breakdown[name] = b
		ttot.Add(tt)
		elapsed += st.Rounds
		for _, v := range returned {
			returnedMask[v] = true
		}
		return mergeCrashed(dead, crashed), len(returned)
	}
	var outer, inner int
	phase := int64(0)
	nextSeed := func() int64 {
		phase++
		return opts.Seed + phase*1_000_003
	}
	// Each phase gets the plan re-based to its own round zero (crash times
	// shift with the rounds already elapsed) and a phase-salted fault RNG.
	shiftedPlan := func() *sim.FaultPlan {
		if !faulty {
			return nil
		}
		return opts.Fault.Shifted(elapsed, phase)
	}

	// Removal makes progress at most n times and crash retries at most n
	// more, so 2n+2 outer iterations means a fault-free run is stuck. Every
	// completed outage can additionally void one primary selection (the
	// returned node abstains) and keep its h-members unretired for one extra
	// round trip, so restart plans widen both budgets.
	maxOuter := 2*n + 2
	maxInner := 4*n + 8
	if faulty {
		maxOuter += 4 * len(opts.Fault.Crashes)
		maxInner += 4 * len(opts.Fault.Crashes)
	}

	pr := newPhaseRunner(g, states, topt, opts.Trace, opts.Metrics)
	pr.probe = opts.Probe
	pr.probeEvery = opts.ProbeEvery
	pr.workers = opts.Workers

	for {
		competing := make([]bool, n)
		anyActive := false
		for v := 0; v < n; v++ {
			if !states[v].removed && !dead[v] {
				competing[v] = true
				anyActive = true
			}
		}
		if !anyActive {
			break
		}
		if outer > maxOuter {
			return nil, fmt.Errorf("core: DistMIS exceeded %d outer iterations", maxOuter)
		}
		outer++

		// Primary MIS among active nodes (radius-1 competition).
		seed := nextSeed()
		statuses, stats, tt, crashed, returned, err := pr.competition(seed, 1, competing, drawer, shiftedPlan(), deadList(dead))
		if err != nil {
			return nil, fmt.Errorf("core: DistMIS primary MIS: %w", err)
		}
		fresh, back := notePhase("primary-mis", stats, tt, crashed, returned)

		inS := make([]bool, n)
		remaining := 0
		for v := 0; v < n; v++ {
			if competing[v] && !dead[v] && statuses[v] == mis.InMIS {
				inS[v] = true
				remaining++
			}
		}
		if remaining == 0 {
			// A mid-phase crash can empty the selection (the only winners
			// died), and so can a mid-phase rejoin (returned nodes abstain);
			// the survivors simply recompete. Without either, an empty MIS
			// among live competitors is a protocol bug.
			if faulty && (fresh > 0 || back > 0) {
				continue
			}
			return nil, fmt.Errorf("core: DistMIS primary MIS selected nobody")
		}
		h := append([]bool(nil), inS...)

		// Inner loop: peel secondary MISes off S until S is exhausted.
		for remaining > 0 {
			if inner > maxInner {
				return nil, fmt.Errorf("core: DistMIS exceeded %d inner iterations", maxInner)
			}
			inner++
			seed := nextSeed()
			statuses, stats, tt, crashed, returned, err := pr.competition(seed, radius, inS, drawer, shiftedPlan(), deadList(dead))
			if err != nil {
				return nil, fmt.Errorf("core: DistMIS secondary MIS: %w", err)
			}
			fresh, back := notePhase("secondary-mis", stats, tt, crashed, returned)
			remaining -= dropDead(inS, dead)

			selected := make([]bool, n)
			selCount := 0
			for v := 0; v < n; v++ {
				if inS[v] && statuses[v] == mis.InMIS {
					selected[v] = true
					selCount++
				}
			}
			if faulty {
				// Message loss can sever a competition into vacuous multiple
				// winners; keep the lowest-id winner of any violating pair
				// (the dropped ones recompete).
				selCount -= enforceIndependence(g, radius, selected)
			}
			if selCount == 0 {
				if remaining == 0 {
					break
				}
				if faulty && (fresh > 0 || back > 0) {
					continue
				}
				return nil, fmt.Errorf("core: DistMIS secondary MIS selected nobody")
			}
			seed = nextSeed()
			stats, tt, crashed, returned, err = pr.color(seed, selected, opts.Variant, dead, shiftedPlan(), deadList(dead))
			if err != nil {
				return nil, fmt.Errorf("core: DistMIS color phase: %w", err)
			}
			notePhase("coloring", stats, tt, crashed, returned)
			remaining -= dropDead(inS, dead)
			for v := 0; v < n; v++ {
				if selected[v] && inS[v] {
					inS[v] = false
					remaining--
				}
			}
		}
		for v := 0; v < n; v++ {
			if !h[v] {
				continue
			}
			// Under faults an h-member's coloring can be cut short — its own
			// outage cancels a pending win, a peer's outage can strand an
			// announce — so it only retires once its standard arc set is
			// fully colored; otherwise it recompetes and no arc stays
			// permanently excluded. Fault-free runs retire unconditionally,
			// exactly as before.
			if !faulty || dead[v] || standardSetColored(g, states[v], opts.Variant, dead) {
				states[v].removed = true
			}
		}
	}

	as, err := assemble(g, states, dead)
	if err != nil {
		return nil, err
	}
	rej := RejoinStats{}
	for v := 0; v < n; v++ {
		rej.ResyncMsgs += states[v].resyncMsgs
		if returnedMask[v] && !dead[v] {
			rej.Returned = append(rej.Returned, v)
		}
	}
	res := &Result{
		Algorithm:      "distMIS-" + opts.Variant.String() + "/" + drawer.Name(),
		Assignment:     as,
		Slots:          as.NumColors(),
		DistinctColors: as.DistinctColors(),
		Stats:          total,
		OuterIters:     outer,
		InnerIters:     inner,
		Breakdown:      breakdown,
		Crashed:        deadList(dead),
		Rejoin:         rej,
		Transport:      ttot,
	}
	publishResult(opts.Metrics, "distmis", res)
	return res, nil
}

// dropDead clears mask entries for dead nodes, returning how many were
// cleared.
func dropDead(mask, dead []bool) int {
	dropped := 0
	for v := range mask {
		if mask[v] && dead[v] {
			mask[v] = false
			dropped++
		}
	}
	return dropped
}

// phaseRunner owns the engine and transport wrappers shared by every phase
// of one DistMIS run. In the fault-free direct path both engine and wrappers
// persist across phases: the engine is Reset (re-seeding the per-node RNGs
// exactly as a fresh construction would) and the wrappers Rebind to the next
// phase's protocol. Under a fault plan the wrappers carry per-run ARQ state
// (sequence numbers, RTT estimates, give-ups) and are rebuilt each phase;
// only the engine is reused.
type phaseRunner struct {
	g       *graph.Graph
	states  []*nodeState
	topt    *transport.Options
	trace   sim.Tracer
	metrics *obs.Registry

	eng   *sim.SyncEngine
	wraps []*transport.Sync

	// Probe wiring (see Options.Probe): phaseName is set by competition and
	// color before each run; elapsed accumulates the rounds of completed
	// phases so probes report protocol-global time.
	probe      func(ProbePoint)
	probeEvery int64
	phaseName  string
	elapsed    int64

	// workers is Options.Workers, applied to the engine before every phase.
	workers int
}

func newPhaseRunner(g *graph.Graph, states []*nodeState, topt *transport.Options, trace sim.Tracer, metrics *obs.Registry) *phaseRunner {
	return &phaseRunner{
		g:       g,
		states:  states,
		topt:    topt,
		trace:   trace,
		metrics: metrics,
		wraps:   make([]*transport.Sync, g.N()),
	}
}

// run executes one phase to global completion over the protocols returned by
// protoFor, returning the phase's stats, transport accounting, and fault
// churn (crash-stopped and returned nodes).
func (pr *phaseRunner) run(seed int64, plan *sim.FaultPlan, markDown []int, protoFor func(id int) transport.SyncProto) (sim.Stats, transport.Totals, []int, []int, error) {
	factory := func(id int) sim.SyncNode {
		if pr.topt == nil && pr.wraps[id] != nil {
			pr.wraps[id].Rebind(protoFor(id))
		} else {
			pr.wraps[id] = transport.NewSync(protoFor(id), pr.topt)
		}
		pr.wraps[id].MarkDown(markDown...)
		return pr.wraps[id]
	}
	if pr.eng == nil {
		pr.eng = sim.NewSyncEngine(pr.g, seed, factory)
	} else {
		pr.eng.Reset(seed, factory)
	}
	pr.eng.Workers = pr.workers
	pr.eng.Trace = pr.trace
	pr.eng.Fault = plan
	pr.eng.Metrics = pr.metrics
	if plan != nil {
		pr.eng.MaxRounds = faultyMaxRounds(pr.g.N())
	}
	if pr.probe != nil {
		every := pr.probeEvery
		if every < 1 {
			every = 1
		}
		phase, base := pr.phaseName, pr.elapsed
		pr.eng.OnRound = func(round int64) {
			if round%every != 0 {
				return
			}
			pr.probe(ProbePoint{Phase: phase, Round: round, Elapsed: base, pr: pr})
		}
	}
	if err := pr.eng.Run(); err != nil {
		return sim.Stats{}, transport.Totals{}, nil, nil, err
	}
	pr.elapsed += pr.eng.Stats().Rounds
	return pr.eng.Stats(), collectSync(pr.wraps), pr.eng.Crashed(), pr.eng.Returned(), nil
}

// misPhaseNode adapts a Competition to one phase engine. Non-competing
// nodes relay floods only (competition distances are measured in the
// physical graph; see DESIGN.md on the general-variant safety argument).
// Env rounds are logical rounds: under a fault plan the transport stretches
// each one over as many physical rounds as retransmission needs.
type misPhaseNode struct {
	radius    int
	competing bool
	drawer    mis.Drawer
	comp      *mis.Competition
	inited    bool // comp re-armed for the current phase (first Step ran)
	st        *nodeState
}

// prepare re-arms the node for the next competition phase; the Competition
// itself is lazily (re)built on the first Step, which has the env RNG.
func (nd *misPhaseNode) prepare(radius int, competing bool, drawer mis.Drawer) *misPhaseNode {
	nd.radius = radius
	nd.competing = competing
	nd.drawer = drawer
	nd.inited = false
	return nd
}

func (nd *misPhaseNode) Step(env *transport.SyncEnv, inbox []sim.Message) bool {
	if !nd.inited {
		nd.inited = true
		var draw func(int) int64
		if nd.competing {
			draw = nd.drawer.New(env.ID, env.Rand)
		}
		if nd.comp == nil {
			nd.comp = mis.NewCompetition(env.ID, nd.radius, nd.competing, draw)
		} else {
			nd.comp.Reset(nd.radius, nd.competing, draw)
		}
	}
	for _, m := range inbox {
		if nd.st.rejoinStep(env, m) {
			if _, restarted := m.Payload.(sim.NodeRestarted); restarted {
				// A returned node abstains for the rest of this competition:
				// its round counter is behind the survivors' and a late win
				// would be vacuous. It keeps relaying, recompetes next phase.
				nd.comp.Reset(nd.radius, false, nil)
			}
			continue
		}
		switch p := m.Payload.(type) {
		case transport.PeerDown:
			// The dead peer's floods simply stop arriving; the competition
			// self-heals across iterations among the survivors.
		case *mis.Flood:
			if relay, ok := nd.comp.Observe(*p); ok {
				env.Broadcast(nd.st.floods.put(relay))
			}
		default:
			panic(fmt.Sprintf("core: unexpected payload %T in MIS phase", m.Payload))
		}
	}
	for _, f := range nd.comp.StartRound(env.Round) {
		env.Broadcast(nd.st.floods.put(f))
	}
	return nd.comp.Done()
}

// competition executes one MIS competition to global completion and returns
// each node's final status (non-competitors report Dominated) plus the
// phase's transport accounting and the nodes that crash-stopped during it.
func (pr *phaseRunner) competition(seed int64, radius int, competing []bool, drawer mis.Drawer, plan *sim.FaultPlan, markDown []int) ([]mis.Status, sim.Stats, transport.Totals, []int, []int, error) {
	if radius == 1 {
		pr.phaseName = "primary-mis"
	} else {
		pr.phaseName = "secondary-mis"
	}
	states := pr.states
	stats, tt, crashed, returned, err := pr.run(seed, plan, markDown, func(id int) transport.SyncProto {
		if states[id].misNode == nil {
			states[id].misNode = &misPhaseNode{st: states[id]}
		}
		return states[id].misNode.prepare(radius, competing[id], drawer)
	})
	if err != nil {
		return nil, sim.Stats{}, transport.Totals{}, nil, nil, err
	}
	statuses := make([]mis.Status, pr.g.N())
	for id, st := range states {
		// A node crashed for the entire phase never stepped: its machine was
		// never re-armed for this competition and it reports Dominated.
		if nd := st.misNode; nd.inited {
			statuses[id] = nd.comp.Status()
		} else {
			statuses[id] = mis.Dominated
		}
	}
	return statuses, stats, tt, crashed, returned, nil
}

// colorPhaseNode runs one coloring wave: secondary-MIS winners greedily
// color their arcs in round 0 and flood the announcements; everyone relays.
// Arcs to nodes already known dead are skipped — they are excluded from the
// schedule anyway, and coloring them would only waste slots and churn the
// survivors' knowledge.
type colorPhaseNode struct {
	g        *graph.Graph
	st       *nodeState
	colorNow bool
	variant  Variant
	dead     []bool // snapshot at phase start; nil in fault-free runs
}

func (nd *colorPhaseNode) Step(env *transport.SyncEnv, inbox []sim.Message) bool {
	for _, m := range inbox {
		if nd.st.rejoinStep(env, m) {
			if _, restarted := m.Payload.(sim.NodeRestarted); restarted {
				// A pending win must not color late with pre-crash knowledge:
				// the node's logical round 0 fires only after its restart, by
				// which point the resync replies have not arrived yet. The
				// driver sees the standard set unfinished and recompetes it.
				nd.colorNow = false
			}
			continue
		}
		switch m.Payload.(type) {
		case transport.PeerDown:
			// Nothing to do: the transport already excludes the peer.
		default:
			panic(fmt.Sprintf("core: unexpected payload %T in color phase", m.Payload))
		}
	}
	if env.Round == 0 && nd.colorNow {
		arcs := nd.g.IncidentArcsView(env.ID)
		if nd.variant == General {
			arcs = nd.g.OutArcsView(env.ID)
		}
		if nd.dead != nil {
			live := make([]graph.Arc, 0, len(arcs))
			for _, a := range arcs {
				if arcAlive(a, nd.dead) {
					live = append(live, a)
				}
			}
			arcs = live
		}
		newly := coloring.AssignGreedyLocal(nd.g, nd.st.know.know, arcs)
		nd.st.ownColored = append(nd.st.ownColored, newly...)
		for _, f := range nd.st.know.announceOwn(newly) {
			env.Broadcast(nd.st.anns.put(f))
		}
	}
	return true
}

// color executes one coloring wave over the selected secondary-MIS winners.
func (pr *phaseRunner) color(seed int64, selected []bool, variant Variant, dead []bool, plan *sim.FaultPlan, markDown []int) (sim.Stats, transport.Totals, []int, []int, error) {
	pr.phaseName = "coloring"
	var snapshot []bool
	if plan != nil {
		snapshot = append([]bool(nil), dead...)
	}
	states := pr.states
	return pr.run(seed, plan, markDown, func(id int) transport.SyncProto {
		nd := states[id].colorNode
		if nd == nil {
			nd = &colorPhaseNode{g: pr.g, st: states[id]}
			states[id].colorNode = nd
		}
		nd.colorNow = selected[id]
		nd.variant = variant
		nd.dead = snapshot
		return nd
	})
}

// faultyMaxRounds is the round budget for one phase engine under a fault
// plan: logical rounds stretch over physical ones, and every (peer, crashed
// peer) pair burns the full retry ladder (~127·RTO physical rounds) once
// before giving up.
func faultyMaxRounds(n int) int { return 200_000 + 2_000*n }

// collectSync sums the transport accounting of one phase's wrappers.
func collectSync(wraps []*transport.Sync) transport.Totals {
	per := make([]transport.Counters, len(wraps))
	for i, w := range wraps {
		per[i] = w.Counters()
	}
	return transport.Collect(per)
}

// assemble collects every node's self-colored arcs into one assignment and
// checks completeness over the surviving subgraph: arcs incident to a dead
// node are out of scope (their colors, if any were assigned before the
// crash, are discarded with the node).
func assemble(g *graph.Graph, states []*nodeState, dead []bool) (coloring.Assignment, error) {
	// Size by what the survivors actually colored, not the full graph:
	// crash runs discard dead nodes' arcs.
	count := 0
	for _, st := range states {
		count += len(st.ownColored)
	}
	as := coloring.NewAssignmentSized(count)
	for _, st := range states {
		for _, a := range st.ownColored {
			if !arcAlive(a, dead) {
				continue
			}
			c := st.know.know[a]
			if c == coloring.None {
				return nil, fmt.Errorf("core: node %d lost color of own arc %v", st.id, a)
			}
			if prev, ok := as[a]; ok && prev != c {
				return nil, fmt.Errorf("core: arc %v colored twice (%d and %d)", a, prev, c)
			}
			as[a] = c
		}
	}
	for _, a := range g.Arcs() {
		if !arcAlive(a, dead) {
			continue
		}
		if as[a] == coloring.None {
			return nil, fmt.Errorf("core: arc %v left uncolored", a)
		}
	}
	return as, nil
}
