package core

import (
	"fmt"

	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
	"fdlsp/internal/mis"
	"fdlsp/internal/sim"
)

// Variant selects between the paper's two DistMIS flavours.
type Variant int

const (
	// GBG is the growth-bounded-graph variant (Section 5): the secondary MIS
	// competes over distance-3 and winners color all their incident arcs.
	GBG Variant = iota
	// General is the general-graph variant (Section 6): the secondary MIS
	// competes over distance-2 and winners color only their outgoing arcs,
	// cutting the number of secondary competitions by a factor of Δ.
	General
)

func (v Variant) String() string {
	if v == General {
		return "general"
	}
	return "gbg"
}

// Options configures a DistMIS run.
type Options struct {
	// Drawer is the MIS value strategy; nil means mis.Luby().
	Drawer mis.Drawer
	// Variant selects the GBG (default) or general-graph algorithm.
	Variant Variant
	// Seed drives all randomness in the run.
	Seed int64
	// Trace optionally observes every phase engine's events (rounds, sends,
	// node terminations); it must be safe for concurrent use.
	Trace sim.Tracer
}

// Result is the outcome of one scheduling run (any algorithm).
type Result struct {
	Algorithm  string
	Assignment coloring.Assignment
	Slots      int       // number of TDMA time slots used
	Stats      sim.Stats // communication rounds and messages
	// OuterIters counts primary-MIS phases and InnerIters secondary-MIS
	// phases (DistMIS only; zero for other algorithms).
	OuterIters int
	InnerIters int
	// Breakdown splits Stats by protocol phase (DistMIS fills
	// "primary-mis", "secondary-mis" and "coloring"); the parts sum to
	// Stats. Nil for algorithms without phases.
	Breakdown map[string]sim.Stats
}

// nodeState is the persistent per-node state shared across the phase
// engines of one DistMIS run.
type nodeState struct {
	id         int
	removed    bool
	know       *knowledge
	ownColored []graph.Arc
}

// DistMIS runs Algorithm 1 on g and returns the schedule. The run is a
// sequence of synchronous sub-protocols on the sim engine — primary MIS,
// secondary MIS (flooded competition over distance 2 or 3), coloring wave —
// whose rounds and messages are accumulated; the simulator detects each
// phase's global completion in lieu of the analytical worst-case round
// bounds a deployed synchronous protocol would use (see DESIGN.md).
func DistMIS(g *graph.Graph, opts Options) (*Result, error) {
	drawer := opts.Drawer
	if drawer == nil {
		drawer = mis.Luby()
	}
	radius := 3
	if opts.Variant == General {
		radius = 2
	}

	n := g.N()
	states := make([]*nodeState, n)
	for v := 0; v < n; v++ {
		states[v] = &nodeState{id: v, know: newKnowledge(v, g)}
	}

	var total sim.Stats
	breakdown := map[string]sim.Stats{}
	addStats := func(phase string, st sim.Stats) {
		total.Rounds += st.Rounds
		total.Messages += st.Messages
		b := breakdown[phase]
		b.Rounds += st.Rounds
		b.Messages += st.Messages
		breakdown[phase] = b
	}
	var outer, inner int
	phase := int64(0)
	nextSeed := func() int64 {
		phase++
		return opts.Seed + phase*1_000_003
	}

	for {
		competing := make([]bool, n)
		anyActive := false
		for v := 0; v < n; v++ {
			if !states[v].removed {
				competing[v] = true
				anyActive = true
			}
		}
		if !anyActive {
			break
		}
		if outer > n {
			return nil, fmt.Errorf("core: DistMIS exceeded %d outer iterations", n)
		}
		outer++

		// Primary MIS among active nodes (radius-1 competition).
		statuses, stats, err := runCompetitionPhase(g, nextSeed(), 1, competing, drawer, opts.Trace)
		if err != nil {
			return nil, fmt.Errorf("core: DistMIS primary MIS: %w", err)
		}
		addStats("primary-mis", stats)

		inS := make([]bool, n)
		remaining := 0
		for v := 0; v < n; v++ {
			if competing[v] && statuses[v] == mis.InMIS {
				inS[v] = true
				remaining++
			}
		}
		if remaining == 0 {
			return nil, fmt.Errorf("core: DistMIS primary MIS selected nobody")
		}
		h := append([]bool(nil), inS...)

		// Inner loop: peel secondary MISes off S until S is exhausted.
		for remaining > 0 {
			inner++
			statuses, stats, err := runCompetitionPhase(g, nextSeed(), radius, inS, drawer, opts.Trace)
			if err != nil {
				return nil, fmt.Errorf("core: DistMIS secondary MIS: %w", err)
			}
			addStats("secondary-mis", stats)

			selected := make([]bool, n)
			selCount := 0
			for v := 0; v < n; v++ {
				if inS[v] && statuses[v] == mis.InMIS {
					selected[v] = true
					selCount++
				}
			}
			if selCount == 0 {
				return nil, fmt.Errorf("core: DistMIS secondary MIS selected nobody")
			}
			stats, err = runColorPhase(g, nextSeed(), states, selected, opts.Variant, opts.Trace)
			if err != nil {
				return nil, fmt.Errorf("core: DistMIS color phase: %w", err)
			}
			addStats("coloring", stats)
			for v := 0; v < n; v++ {
				if selected[v] {
					inS[v] = false
					remaining--
				}
			}
		}
		for v := 0; v < n; v++ {
			if h[v] {
				states[v].removed = true
			}
		}
	}

	as, err := assemble(g, states)
	if err != nil {
		return nil, err
	}
	return &Result{
		Algorithm:  "distMIS-" + opts.Variant.String() + "/" + drawer.Name(),
		Assignment: as,
		Slots:      as.NumColors(),
		Stats:      total,
		OuterIters: outer,
		InnerIters: inner,
		Breakdown:  breakdown,
	}, nil
}

// misPhaseNode adapts a Competition to one phase engine. Non-competing
// nodes relay floods only (competition distances are measured in the
// physical graph; see DESIGN.md on the general-variant safety argument).
type misPhaseNode struct {
	radius    int
	competing bool
	drawer    mis.Drawer
	comp      *mis.Competition
}

func (nd *misPhaseNode) Step(env *sim.SyncEnv, inbox []sim.Message) bool {
	if nd.comp == nil {
		var draw func(int) int64
		if nd.competing {
			draw = nd.drawer.New(env.ID, env.Rand)
		}
		nd.comp = mis.NewCompetition(env.ID, nd.radius, nd.competing, draw)
	}
	for _, m := range inbox {
		f, ok := m.Payload.(mis.Flood)
		if !ok {
			panic(fmt.Sprintf("core: unexpected payload %T in MIS phase", m.Payload))
		}
		if relay, ok := nd.comp.Observe(f); ok {
			env.Broadcast(relay)
		}
	}
	for _, f := range nd.comp.StartRound(env.Round) {
		env.Broadcast(f)
	}
	return nd.comp.Done()
}

// runCompetitionPhase executes one MIS competition to global completion and
// returns each node's final status (non-competitors report Dominated).
func runCompetitionPhase(g *graph.Graph, seed int64, radius int, competing []bool, drawer mis.Drawer, trace sim.Tracer) ([]mis.Status, sim.Stats, error) {
	nodes := make([]*misPhaseNode, g.N())
	eng := sim.NewSyncEngine(g, seed, func(id int) sim.SyncNode {
		nodes[id] = &misPhaseNode{radius: radius, competing: competing[id], drawer: drawer}
		return nodes[id]
	})
	eng.Trace = trace
	if err := eng.Run(); err != nil {
		return nil, sim.Stats{}, err
	}
	statuses := make([]mis.Status, g.N())
	for id, nd := range nodes {
		if nd.comp != nil {
			statuses[id] = nd.comp.Status()
		} else {
			statuses[id] = mis.Dominated
		}
	}
	return statuses, eng.Stats(), nil
}

// colorPhaseNode runs one coloring wave: secondary-MIS winners greedily
// color their arcs in round 0 and flood the announcements; everyone relays.
type colorPhaseNode struct {
	g        *graph.Graph
	st       *nodeState
	colorNow bool
	variant  Variant
}

func (nd *colorPhaseNode) Step(env *sim.SyncEnv, inbox []sim.Message) bool {
	for _, m := range inbox {
		f, ok := m.Payload.(ColorAnnounce)
		if !ok {
			panic(fmt.Sprintf("core: unexpected payload %T in color phase", m.Payload))
		}
		for _, out := range nd.st.know.observe(f) {
			env.Broadcast(out)
		}
	}
	if env.Round == 0 && nd.colorNow {
		arcs := nd.g.IncidentArcs(env.ID)
		if nd.variant == General {
			arcs = nd.g.OutArcs(env.ID)
		}
		newly := coloring.AssignGreedyLocal(nd.g, nd.st.know.know, arcs)
		nd.st.ownColored = append(nd.st.ownColored, newly...)
		for _, f := range nd.st.know.announceOwn(newly) {
			env.Broadcast(f)
		}
	}
	return true
}

func runColorPhase(g *graph.Graph, seed int64, states []*nodeState, selected []bool, variant Variant, trace sim.Tracer) (sim.Stats, error) {
	eng := sim.NewSyncEngine(g, seed, func(id int) sim.SyncNode {
		return &colorPhaseNode{g: g, st: states[id], colorNow: selected[id], variant: variant}
	})
	eng.Trace = trace
	if err := eng.Run(); err != nil {
		return sim.Stats{}, err
	}
	return eng.Stats(), nil
}

// assemble collects every node's self-colored arcs into one assignment and
// checks completeness.
func assemble(g *graph.Graph, states []*nodeState) (coloring.Assignment, error) {
	as := coloring.NewAssignment(g)
	for _, st := range states {
		for _, a := range st.ownColored {
			c := st.know.know[a]
			if c == coloring.None {
				return nil, fmt.Errorf("core: node %d lost color of own arc %v", st.id, a)
			}
			if prev, ok := as[a]; ok && prev != c {
				return nil, fmt.Errorf("core: arc %v colored twice (%d and %d)", a, prev, c)
			}
			as[a] = c
		}
	}
	for _, a := range g.Arcs() {
		if as[a] == coloring.None {
			return nil, fmt.Errorf("core: arc %v left uncolored", a)
		}
	}
	return as, nil
}
