package core

import (
	"sort"

	"fdlsp/internal/graph"
)

// SurvivingGraph returns a copy of g with every edge incident to a crashed
// node removed. Node ids are preserved, so assignments produced on g verify
// directly against the surviving graph: exactly the arcs between pairs of
// live nodes remain, which is the set a faulty run's schedule is responsible
// for (a crashed radio neither sends nor receives, so its links need no TDMA
// slot).
func SurvivingGraph(g *graph.Graph, crashed []int) *graph.Graph {
	s := g.Clone()
	for _, v := range crashed {
		for _, u := range g.Neighbors(v) {
			s.RemoveEdge(v, u)
		}
	}
	return s
}

// deadMask spreads a crashed-node list over n booleans.
func deadMask(n int, crashed []int) []bool {
	dead := make([]bool, n)
	for _, v := range crashed {
		dead[v] = true
	}
	return dead
}

// deadList flattens a mask back to a sorted id list.
func deadList(dead []bool) []int {
	var out []int
	for v, d := range dead {
		if d {
			out = append(out, v)
		}
	}
	return out
}

// arcAlive reports whether neither endpoint of a is dead.
func arcAlive(a graph.Arc, dead []bool) bool { return !dead[a.From] && !dead[a.To] }

// mergeCrashed records newly crashed nodes into the mask and returns how
// many were new.
func mergeCrashed(dead []bool, crashed []int) int {
	fresh := 0
	for _, v := range crashed {
		if !dead[v] {
			dead[v] = true
			fresh++
		}
	}
	return fresh
}

// sortedUnique sorts ids ascending, dropping duplicates.
func sortedUnique(ids []int) []int {
	sort.Ints(ids)
	out := ids[:0]
	for i, v := range ids {
		if i == 0 || v != ids[i-1] {
			out = append(out, v)
		}
	}
	return out
}
