package core

import (
	"fmt"
	"sort"

	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
	"fdlsp/internal/sim"
)

// ChildPolicy selects which unvisited neighbor receives the DFS token next.
type ChildPolicy int

const (
	// MaxDegree passes to the unvisited neighbor with the largest degree
	// (ties to the lowest ID) — the paper's policy.
	MaxDegree ChildPolicy = iota
	// MinID passes to the lowest-ID unvisited neighbor (ablation).
	MinID
	// RandomChild passes to a uniformly random unvisited neighbor (ablation).
	RandomChild
)

func (p ChildPolicy) String() string {
	switch p {
	case MinID:
		return "min-id"
	case RandomChild:
		return "random"
	default:
		return "max-degree"
	}
}

// DFSOptions configures the asynchronous DFS algorithm.
type DFSOptions struct {
	Policy ChildPolicy
	Seed   int64
	// Delay optionally injects adversarial message delays (failure
	// injection); the schedule must stay valid regardless.
	Delay sim.DelayFn
	// Trace optionally observes engine events; must be concurrency-safe.
	Trace sim.Tracer
}

// Message payloads of the DFS protocol.
type (
	startMsg  struct{}                          // injected kick-off at the root
	tokenMsg  struct{}                          // the DFS token
	bounceMsg struct{}                          // token refused: receiver already visited
	askMsg    struct{}                          // request for the neighbor's color table
	replyMsg  struct{ Table map[graph.Arc]int } // color-table response
	annMsg    struct {                          // acknowledged color flood
		Ann ColorAnnounce
		Seq int64 // sender-local id echoed back by ackMsg
	}
	ackMsg struct{ Seq int64 } // annMsg fully processed, incl. everything it triggered
)

// floodGroup tracks one batch of flood messages awaiting acknowledgements
// (Dijkstra–Scholten-style diffusing-computation termination). A node that
// sends flood traffic — the token holder announcing its fresh colors, or any
// node relaying/re-originating on observe — acks upstream (or resumes the
// token, for the holder's own batch) only once every message in the batch
// has been acked, which in turn requires the receivers' whole cascades to
// have drained. The token therefore never moves until the previous holder's
// announcements are fully processed everywhere they can reach: without this
// barrier, a color colored at distance 3 races the token through a two-hop
// flood chain and the greedy conflict sets (hence the schedule) depend on
// goroutine scheduling.
type floodGroup struct {
	parent    int   // upstream sender to ack, or -1 for the token holder's own batch
	parentSeq int64 // seq to echo upstream
	remaining int
}

// dfsNode is one processor of Algorithm 2.
type dfsNode struct {
	g       *graph.Graph
	know    *knowledge
	policy  ChildPolicy
	degrees map[int]int // neighbor -> degree (local model knowledge)

	ownColored []graph.Arc

	nextSeq int64
	groups  map[int64]*floodGroup // my sent seq -> batch awaiting that ack
}

// sendFlood ships every announce in outs to all neighbors as one
// acknowledged batch and reports whether anything was sent. parent == -1
// marks the token holder's own batch (token resumes on drain); otherwise the
// drain acks (parent, parentSeq) upstream.
func (nd *dfsNode) sendFlood(env *sim.AsyncEnv, outs []ColorAnnounce, parent int, parentSeq int64) bool {
	if len(outs) == 0 || len(env.Neighbors) == 0 {
		return false
	}
	grp := &floodGroup{parent: parent, parentSeq: parentSeq, remaining: len(outs) * len(env.Neighbors)}
	for _, f := range outs {
		for _, u := range env.Neighbors {
			nd.nextSeq++
			nd.groups[nd.nextSeq] = grp
			env.Send(u, annMsg{Ann: f, Seq: nd.nextSeq})
		}
	}
	return true
}

func (nd *dfsNode) Run(env *sim.AsyncEnv) {
	visited := make(map[int]bool, len(env.Neighbors))
	selfVisited := false
	parent := -1
	awaitingChild := -1
	pendingReplies := 0

	completeToken := func() {
		// All replies merged: color every still-uncolored incident arc with
		// distance-2 knowledge, then announce. The token pass waits for the
		// announce flood to drain (see floodGroup) so the next holder's
		// knowledge is independent of goroutine scheduling.
		newly := coloring.AssignGreedyLocal(nd.g, nd.know.know, nd.g.IncidentArcs(env.ID))
		nd.ownColored = append(nd.ownColored, newly...)
		if !nd.sendFlood(env, nd.know.announceOwn(newly), -1, 0) {
			nd.passToken(env, visited, parent, &awaitingChild)
		}
	}

	beginToken := func() {
		if len(env.Neighbors) == 0 {
			completeToken() // isolated root: nothing to ask or color
			return
		}
		pendingReplies = len(env.Neighbors)
		for _, u := range env.Neighbors {
			env.Send(u, askMsg{})
		}
	}

	for {
		m, ok := env.Recv()
		if !ok {
			return
		}
		switch p := m.Payload.(type) {
		case startMsg:
			selfVisited = true
			beginToken()
		case askMsg:
			// The asker holds the token, hence is visited (paper: a neighbor
			// asking about colors is removed from the unvisited record).
			visited[m.From] = true
			env.Send(m.From, replyMsg{Table: nd.know.snapshotLocal()})
		case replyMsg:
			nd.know.merge(p.Table)
			if pendingReplies > 0 {
				pendingReplies--
				if pendingReplies == 0 {
					completeToken()
				}
			}
		case tokenMsg:
			switch {
			case !selfVisited:
				selfVisited = true
				parent = m.From
				visited[m.From] = true
				beginToken()
			case m.From == awaitingChild:
				// Child finished its subtree; resume.
				awaitingChild = -1
				nd.passToken(env, visited, parent, &awaitingChild)
			default:
				// Spurious pass from a node that had not yet heard we were
				// visited (asynchrony): refuse, sender will repick.
				env.Send(m.From, bounceMsg{})
			}
		case bounceMsg:
			if m.From == awaitingChild {
				awaitingChild = -1
				nd.passToken(env, visited, parent, &awaitingChild)
			}
		case annMsg:
			// Everything observe triggers (relays, endpoint re-floods) joins
			// one batch; the upstream ack waits for that batch to drain. A
			// flood that triggers nothing here is acked immediately.
			if !nd.sendFlood(env, nd.know.observe(p.Ann), m.From, p.Seq) {
				env.Send(m.From, ackMsg{Seq: p.Seq})
			}
		case ackMsg:
			grp, ok := nd.groups[p.Seq]
			if !ok {
				panic(fmt.Sprintf("core: DFS node %d got ack for unknown seq %d", env.ID, p.Seq))
			}
			delete(nd.groups, p.Seq)
			grp.remaining--
			if grp.remaining == 0 {
				if grp.parent >= 0 {
					env.Send(grp.parent, ackMsg{Seq: grp.parentSeq})
				} else {
					nd.passToken(env, visited, parent, &awaitingChild)
				}
			}
		default:
			panic(fmt.Sprintf("core: DFS node %d got unexpected payload %T", env.ID, m.Payload))
		}
	}
}

// passToken forwards the token to the next unvisited neighbor per policy,
// returns it to the parent when none remain, or — at the root — declares the
// protocol finished.
func (nd *dfsNode) passToken(env *sim.AsyncEnv, visited map[int]bool, parent int, awaitingChild *int) {
	var cands []int
	for _, u := range env.Neighbors {
		if !visited[u] {
			cands = append(cands, u)
		}
	}
	if len(cands) > 0 {
		next := nd.pickChild(env, cands)
		visited[next] = true
		*awaitingChild = next
		env.Send(next, tokenMsg{})
		return
	}
	if parent >= 0 {
		env.Send(parent, tokenMsg{})
		return
	}
	// Root with the whole graph visited: global termination.
	env.FinishAll()
}

func (nd *dfsNode) pickChild(env *sim.AsyncEnv, cands []int) int {
	switch nd.policy {
	case MinID:
		best := cands[0]
		for _, u := range cands[1:] {
			if u < best {
				best = u
			}
		}
		return best
	case RandomChild:
		return cands[env.Rand.Intn(len(cands))]
	default: // MaxDegree, ties to lowest ID
		sort.Ints(cands)
		best := cands[0]
		for _, u := range cands[1:] {
			if nd.degrees[u] > nd.degrees[best] {
				best = u
			}
		}
		return best
	}
}

// DFS runs Algorithm 2 on g. Disconnected inputs are scheduled per
// component (each component elects its own root and runs its own token);
// reported rounds are the maximum across components — they run in parallel —
// and messages are summed.
func DFS(g *graph.Graph, opts DFSOptions) (*Result, error) {
	as := coloring.NewAssignment(g)
	var total sim.Stats
	for ci, comp := range g.Components() {
		sub, ids := g.InducedSubgraph(comp)
		subAs, stats, err := dfsConnected(sub, opts, opts.Seed+int64(ci)*7_368_787)
		if err != nil {
			return nil, err
		}
		for a, c := range subAs {
			as[graph.Arc{From: ids[a.From], To: ids[a.To]}] = c
		}
		if stats.Rounds > total.Rounds {
			total.Rounds = stats.Rounds
		}
		total.Messages += stats.Messages
	}
	for _, a := range g.Arcs() {
		if as[a] == coloring.None {
			return nil, fmt.Errorf("core: DFS left arc %v uncolored", a)
		}
	}
	return &Result{
		Algorithm:  "dfs/" + opts.Policy.String(),
		Assignment: as,
		Slots:      as.NumColors(),
		Stats:      total,
	}, nil
}

// dfsConnected schedules one connected graph.
func dfsConnected(g *graph.Graph, opts DFSOptions, seed int64) (coloring.Assignment, sim.Stats, error) {
	if g.N() == 0 {
		return coloring.Assignment{}, sim.Stats{}, nil
	}
	root := electRoot(g)
	nodes := make([]*dfsNode, g.N())
	eng := sim.NewAsyncEngine(g, seed, func(id int) sim.AsyncNode {
		degs := make(map[int]int)
		for _, u := range g.Neighbors(id) {
			degs[u] = g.Degree(u)
		}
		nodes[id] = &dfsNode{g: g, know: newKnowledge(id, g), policy: opts.Policy, degrees: degs, groups: make(map[int64]*floodGroup)}
		return nodes[id]
	})
	eng.Delay = opts.Delay
	eng.Trace = opts.Trace
	eng.Inject(root, startMsg{})
	if err := eng.Run(); err != nil {
		return nil, sim.Stats{}, err
	}
	as := coloring.NewAssignment(g)
	for id, nd := range nodes {
		for _, a := range nd.ownColored {
			c := nd.know.know[a]
			if c == coloring.None {
				return nil, sim.Stats{}, fmt.Errorf("core: DFS node %d lost color of %v", id, a)
			}
			if prev, ok := as[a]; ok && prev != c {
				return nil, sim.Stats{}, fmt.Errorf("core: DFS arc %v colored twice (%d, %d)", a, prev, c)
			}
			as[a] = c
		}
	}
	return as, eng.Stats(), nil
}

// electRoot returns the designated starting node: maximum degree, ties to
// the lowest ID.
func electRoot(g *graph.Graph) int {
	root := 0
	for v := 1; v < g.N(); v++ {
		if g.Degree(v) > g.Degree(root) {
			root = v
		}
	}
	return root
}
