package core

import (
	"fmt"
	"sort"

	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
	"fdlsp/internal/sim"
	"fdlsp/internal/transport"
)

// ChildPolicy selects which unvisited neighbor receives the DFS token next.
type ChildPolicy int

const (
	// MaxDegree passes to the unvisited neighbor with the largest degree
	// (ties to the lowest ID) — the paper's policy.
	MaxDegree ChildPolicy = iota
	// MinID passes to the lowest-ID unvisited neighbor (ablation).
	MinID
	// RandomChild passes to a uniformly random unvisited neighbor (ablation).
	RandomChild
)

func (p ChildPolicy) String() string {
	switch p {
	case MinID:
		return "min-id"
	case RandomChild:
		return "random"
	default:
		return "max-degree"
	}
}

// DFSOptions configures the asynchronous DFS algorithm.
type DFSOptions struct {
	Policy ChildPolicy
	Seed   int64
	// Delay optionally injects adversarial message delays (failure
	// injection); the schedule must stay valid regardless.
	Delay sim.DelayFn
	// Trace optionally observes engine events; must be concurrency-safe.
	Trace sim.Tracer
	// Fault optionally subjects the run to message loss, duplication,
	// reordering, and node crashes. When set, the protocol runs over the
	// reliable transport and the driver recovers from token loss with
	// restart epochs (see dfsConnected). nil keeps the original
	// zero-overhead direct path.
	Fault *sim.FaultPlan
	// Transport tunes the ARQ machinery when Fault is set (zero value =
	// defaults); ignored otherwise.
	Transport transport.Options
}

// Message payloads of the DFS protocol.
type (
	startMsg  struct{}                          // injected kick-off at the root
	tokenMsg  struct{}                          // the DFS token
	bounceMsg struct{}                          // token refused: receiver already visited
	askMsg    struct{}                          // request for the neighbor's color table
	replyMsg  struct{ Table map[graph.Arc]int } // color-table response
	annMsg    struct {                          // acknowledged color flood
		Ann ColorAnnounce
		Seq int64 // sender-local id echoed back by ackMsg
	}
	ackMsg struct{ Seq int64 } // annMsg fully processed, incl. everything it triggered
)

// floodGroup tracks one batch of flood messages awaiting acknowledgements
// (Dijkstra–Scholten-style diffusing-computation termination). A node that
// sends flood traffic — the token holder announcing its fresh colors, or any
// node relaying/re-originating on observe — acks upstream (or resumes the
// token, for the holder's own batch) only once every message in the batch
// has been acked, which in turn requires the receivers' whole cascades to
// have drained. The token therefore never moves until the previous holder's
// announcements are fully processed everywhere they can reach: without this
// barrier, a color colored at distance 3 races the token through a two-hop
// flood chain and the greedy conflict sets (hence the schedule) depend on
// goroutine scheduling.
type floodGroup struct {
	parent    int   // upstream sender to ack, or -1 for the token holder's own batch
	parentSeq int64 // seq to echo upstream
	remaining int
}

// dfsNode is one processor of Algorithm 2. Its traversal state lives in
// struct fields (not Run locals) because a faulty run re-engages the same
// nodes across several engine runs — the recovery epochs — and knowledge,
// visit marks, and colored arcs must carry over.
type dfsNode struct {
	g       *graph.Graph
	know    *knowledge
	policy  ChildPolicy
	degrees map[int]int // neighbor -> degree (local model knowledge)
	faulty  bool

	ownColored []graph.Arc

	nextSeq int64
	groups  map[int64]*floodGroup // my sent seq -> batch awaiting that ack
	seqDest map[int64]int         // my sent seq -> receiver (PeerDown cleanup)

	visited        map[int]bool
	selfVisited    bool
	parent         int
	awaitingChild  int
	pendingReplies int
	awaitingReply  map[int]bool // neighbors whose replyMsg is outstanding
}

func newDFSNode(g *graph.Graph, id int, policy ChildPolicy, faulty bool) *dfsNode {
	degs := make(map[int]int)
	for _, u := range g.Neighbors(id) {
		degs[u] = g.Degree(u)
	}
	return &dfsNode{
		g:             g,
		know:          newKnowledge(id, g),
		policy:        policy,
		degrees:       degs,
		faulty:        faulty,
		groups:        make(map[int64]*floodGroup),
		seqDest:       make(map[int64]int),
		visited:       make(map[int]bool, g.Degree(id)),
		parent:        -1,
		awaitingChild: -1,
		awaitingReply: make(map[int]bool),
	}
}

// reopen clears the ask state of a node whose token visit stalled (a
// neighbor died holding the outstanding reply, or a reply's transport gave
// up) so a later epoch can re-visit and color it. Colors and knowledge are
// kept — the re-visit only colors what is still uncolored.
func (nd *dfsNode) reopen() {
	nd.selfVisited = false
	nd.parent = -1
	nd.awaitingChild = -1
	nd.pendingReplies = 0
	nd.awaitingReply = make(map[int]bool)
}

// sendFlood ships every announce in outs to all live neighbors as one
// acknowledged batch and reports whether anything was sent. parent == -1
// marks the token holder's own batch (token resumes on drain); otherwise the
// drain acks (parent, parentSeq) upstream. Peers the transport has given up
// on are skipped — counting them would leave the batch undrainable.
func (nd *dfsNode) sendFlood(env *transport.AsyncEnv, outs []ColorAnnounce, parent int, parentSeq int64) bool {
	var dests []int
	for _, u := range env.Neighbors {
		if !env.Down(u) {
			dests = append(dests, u)
		}
	}
	if len(outs) == 0 || len(dests) == 0 {
		return false
	}
	grp := &floodGroup{parent: parent, parentSeq: parentSeq, remaining: len(outs) * len(dests)}
	for _, f := range outs {
		for _, u := range dests {
			nd.nextSeq++
			nd.groups[nd.nextSeq] = grp
			nd.seqDest[nd.nextSeq] = u
			env.Send(u, annMsg{Ann: f, Seq: nd.nextSeq})
		}
	}
	return true
}

// beginToken opens this node's visit: ask every live neighbor for its color
// table. With no live neighbor there is nothing to learn (or conflict with),
// so the visit completes immediately.
func (nd *dfsNode) beginToken(env *transport.AsyncEnv) {
	nd.pendingReplies = 0
	for _, u := range env.Neighbors {
		if env.Down(u) {
			continue
		}
		nd.pendingReplies++
		nd.awaitingReply[u] = true
		env.Send(u, askMsg{})
	}
	if nd.pendingReplies == 0 {
		nd.completeToken(env)
	}
}

// completeToken runs once all replies are merged: color every still-uncolored
// incident arc with distance-2 knowledge, then announce. Arcs to peers known
// dead are skipped — they are excluded from the schedule anyway. The token
// pass waits for the announce flood to drain (see floodGroup) so the next
// holder's knowledge is independent of goroutine scheduling.
func (nd *dfsNode) completeToken(env *transport.AsyncEnv) {
	arcs := nd.g.IncidentArcs(env.ID)
	if nd.faulty {
		live := make([]graph.Arc, 0, len(arcs))
		for _, a := range arcs {
			other := a.From
			if other == env.ID {
				other = a.To
			}
			if !env.Down(other) {
				live = append(live, a)
			}
		}
		arcs = live
	}
	newly := coloring.AssignGreedyLocal(nd.g, nd.know.know, arcs)
	nd.ownColored = append(nd.ownColored, newly...)
	if !nd.sendFlood(env, nd.know.announceOwn(newly), -1, 0) {
		nd.passToken(env)
	}
}

// drainSeq retires one outstanding flood seq (acked, or its receiver was
// given up on) and fires the batch's completion action when it empties.
func (nd *dfsNode) drainSeq(env *transport.AsyncEnv, seq int64) {
	grp, ok := nd.groups[seq]
	delete(nd.seqDest, seq)
	if !ok {
		return
	}
	delete(nd.groups, seq)
	grp.remaining--
	if grp.remaining == 0 {
		if grp.parent >= 0 {
			env.Send(grp.parent, ackMsg{Seq: grp.parentSeq})
		} else {
			nd.passToken(env)
		}
	}
}

// peerDown is the node's failure-detector handler. The dead neighbor is
// struck from the unvisited record, every flood seq destined to it drains,
// and an outstanding reply from it stops being waited for. If the peer was
// the awaited child the node deliberately does NOT repick: the transport
// cannot tell whether the token died with the peer or was never delivered,
// and forwarding a replacement while the original might still roam would put
// two tokens in flight. The traversal quiesces instead and the driver's next
// epoch restarts it from a surviving root.
func (nd *dfsNode) peerDown(env *transport.AsyncEnv, peer int) {
	nd.visited[peer] = true
	var seqs []int64
	for q, dest := range nd.seqDest {
		if dest == peer {
			seqs = append(seqs, q)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, q := range seqs {
		nd.drainSeq(env, q)
	}
	if nd.awaitingReply[peer] {
		delete(nd.awaitingReply, peer)
		nd.pendingReplies--
		if nd.pendingReplies == 0 {
			nd.completeToken(env)
		}
	}
}

func (nd *dfsNode) Run(env *transport.AsyncEnv) {
	for {
		m, ok := env.Recv()
		if !ok {
			return
		}
		switch p := m.Payload.(type) {
		case startMsg:
			nd.selfVisited = true
			nd.beginToken(env)
		case askMsg:
			// The asker holds the token, hence is visited (paper: a neighbor
			// asking about colors is removed from the unvisited record).
			nd.visited[m.From] = true
			env.Send(m.From, replyMsg{Table: nd.know.snapshotLocal()})
		case replyMsg:
			nd.know.merge(p.Table)
			if nd.awaitingReply[m.From] {
				delete(nd.awaitingReply, m.From)
				nd.pendingReplies--
				if nd.pendingReplies == 0 {
					nd.completeToken(env)
				}
			}
		case tokenMsg:
			switch {
			case !nd.selfVisited:
				nd.selfVisited = true
				nd.parent = m.From
				nd.visited[m.From] = true
				nd.beginToken(env)
			case m.From == nd.awaitingChild:
				// Child finished its subtree; resume.
				nd.awaitingChild = -1
				nd.passToken(env)
			default:
				// Spurious pass from a node that had not yet heard we were
				// visited (asynchrony): refuse, sender will repick.
				env.Send(m.From, bounceMsg{})
			}
		case bounceMsg:
			if m.From == nd.awaitingChild {
				nd.awaitingChild = -1
				nd.passToken(env)
			}
		case annMsg:
			// Everything observe triggers (relays, endpoint re-floods) joins
			// one batch; the upstream ack waits for that batch to drain. A
			// flood that triggers nothing here is acked immediately.
			if !nd.sendFlood(env, nd.know.observe(p.Ann), m.From, p.Seq) {
				env.Send(m.From, ackMsg{Seq: p.Seq})
			}
		case ackMsg:
			if _, known := nd.groups[p.Seq]; !known && !nd.faulty {
				panic(fmt.Sprintf("core: DFS node %d got ack for unknown seq %d", env.ID, p.Seq))
			}
			// Under faults a late ack may race the PeerDown that already
			// drained its seq (the peer answered, then its link died);
			// drainSeq ignores retired seqs.
			nd.drainSeq(env, p.Seq)
		case transport.PeerDown:
			nd.peerDown(env, p.Peer)
		default:
			panic(fmt.Sprintf("core: DFS node %d got unexpected payload %T", env.ID, m.Payload))
		}
	}
}

// passToken forwards the token to the next unvisited neighbor per policy,
// returns it to the parent when none remain, or — at the root — declares the
// protocol finished. A send to a peer that died undetected is suppressed or
// given up on by the transport; the traversal then quiesces and the driver
// recovers with a new epoch.
func (nd *dfsNode) passToken(env *transport.AsyncEnv) {
	var cands []int
	for _, u := range env.Neighbors {
		if !nd.visited[u] {
			cands = append(cands, u)
		}
	}
	if len(cands) > 0 {
		next := nd.pickChild(env, cands)
		nd.visited[next] = true
		nd.awaitingChild = next
		env.Send(next, tokenMsg{})
		return
	}
	if nd.parent >= 0 {
		env.Send(nd.parent, tokenMsg{})
		return
	}
	// Root with its reachable subgraph visited: global termination.
	env.FinishAll()
}

func (nd *dfsNode) pickChild(env *transport.AsyncEnv, cands []int) int {
	switch nd.policy {
	case MinID:
		best := cands[0]
		for _, u := range cands[1:] {
			if u < best {
				best = u
			}
		}
		return best
	case RandomChild:
		return cands[env.Rand.Intn(len(cands))]
	default: // MaxDegree, ties to lowest ID
		sort.Ints(cands)
		best := cands[0]
		for _, u := range cands[1:] {
			if nd.degrees[u] > nd.degrees[best] {
				best = u
			}
		}
		return best
	}
}

// DFS runs Algorithm 2 on g. Disconnected inputs are scheduled per
// component (each component elects its own root and runs its own token);
// reported rounds are the maximum across components — they run in parallel —
// and messages are summed. Under a fault plan each component gets the plan
// restricted to its own nodes.
func DFS(g *graph.Graph, opts DFSOptions) (*Result, error) {
	as := coloring.NewAssignment(g)
	var total sim.Stats
	var ttot transport.Totals
	var crashed []int
	for ci, comp := range g.Components() {
		sub, ids := g.InducedSubgraph(comp)
		subOpts := opts
		subOpts.Fault = remapPlan(opts.Fault, ids, int64(ci))
		subAs, stats, tt, subCrashed, err := dfsConnected(sub, subOpts, opts.Seed+int64(ci)*7_368_787)
		if err != nil {
			return nil, err
		}
		for a, c := range subAs {
			as[graph.Arc{From: ids[a.From], To: ids[a.To]}] = c
		}
		for _, v := range subCrashed {
			crashed = append(crashed, ids[v])
		}
		rounds := total.Rounds
		if stats.Rounds > rounds {
			rounds = stats.Rounds
		}
		total.Add(stats)
		total.Rounds = rounds
		ttot.Add(transport.Totals{Counters: tt.Counters})
	}
	crashed = sortedUnique(crashed)
	dead := deadMask(g.N(), crashed)
	for _, a := range g.Arcs() {
		if !arcAlive(a, dead) {
			continue
		}
		if as[a] == coloring.None {
			return nil, fmt.Errorf("core: DFS left arc %v uncolored", a)
		}
	}
	return &Result{
		Algorithm:  "dfs/" + opts.Policy.String(),
		Assignment: as,
		Slots:      as.NumColors(),
		Stats:      total,
		Crashed:    crashed,
		Transport:  ttot,
	}, nil
}

// remapPlan restricts a fault plan to one component, translating global node
// ids to the induced subgraph's local ids (ids maps local -> global). Each
// component's engine gets its own salted fault RNG.
func remapPlan(p *sim.FaultPlan, ids []int, salt int64) *sim.FaultPlan {
	if p == nil {
		return nil
	}
	inv := make(map[int]int, len(ids))
	for local, global := range ids {
		inv[global] = local
	}
	q := &sim.FaultPlan{
		Seed:    p.Seed ^ (salt+1)*0x41C64E6D,
		Loss:    p.Loss,
		Dup:     p.Dup,
		Reorder: p.Reorder,
	}
	if lossOf := p.LossOf; lossOf != nil {
		q.LossOf = func(from, to int) float64 { return lossOf(ids[from], ids[to]) }
	}
	for _, c := range p.Crashes {
		if local, ok := inv[c.Node]; ok {
			q.Crashes = append(q.Crashes, sim.Crash{Node: local, At: c.At, RestartAt: c.RestartAt})
		}
	}
	return q
}

// dfsConnected schedules one connected graph. Fault-free runs are a single
// engine run, exactly the original algorithm. Under a fault plan the driver
// runs recovery epochs: whenever a crash strands the token (dead holder,
// dead awaited child, undeliverable pass), the run quiesces — the transport
// gives up, PeerDown handlers fire, and no node has anything left to say —
// and the driver starts a fresh engine over the same nodes, with dead peers
// pre-marked both down (transport) and visited (traversal), rooted at the
// highest-degree unvisited survivor. Visits stranded mid-ask are reopened so
// the new epoch re-colors them. Each epoch either visits its root or loses
// it to a crash, so n live roots plus n crashes bound the epoch count.
func dfsConnected(g *graph.Graph, opts DFSOptions, seed int64) (coloring.Assignment, sim.Stats, transport.Totals, []int, error) {
	if g.N() == 0 {
		return coloring.Assignment{}, sim.Stats{}, transport.Totals{}, nil, nil
	}
	faulty := opts.Fault != nil
	var topt *transport.Options
	if faulty {
		t := opts.Transport
		topt = &t
	}

	n := g.N()
	nodes := make([]*dfsNode, n)
	for id := 0; id < n; id++ {
		nodes[id] = newDFSNode(g, id, opts.Policy, faulty)
	}

	var total sim.Stats
	var ttot transport.Totals
	dead := make([]bool, n)
	elapsed := int64(0)

	for epoch := 0; ; epoch++ {
		root := electRoot(g)
		if epoch > 0 {
			root = nextRoot(g, nodes, dead)
			if root < 0 {
				break
			}
		}
		if epoch > 2*n+2 {
			return nil, sim.Stats{}, transport.Totals{}, nil, fmt.Errorf("core: DFS exceeded %d recovery epochs", 2*n+2)
		}

		deadIds := deadList(dead)
		for v := 0; v < n; v++ {
			if dead[v] {
				continue
			}
			for _, u := range deadIds {
				nodes[v].visited[u] = true
			}
		}
		wraps := make([]*transport.Async, n)
		eng := sim.NewAsyncEngine(g, seed+int64(epoch)*15_485_863, func(id int) sim.AsyncNode {
			wraps[id] = transport.NewAsync(nodes[id], topt)
			wraps[id].MarkDown(deadIds...)
			return wraps[id]
		})
		eng.Delay = opts.Delay
		eng.Trace = opts.Trace
		if faulty {
			eng.Fault = opts.Fault.Shifted(elapsed, int64(epoch))
		}
		eng.Inject(root, startMsg{})
		if err := eng.Run(); err != nil {
			return nil, sim.Stats{}, transport.Totals{}, nil, err
		}
		st := eng.Stats()
		total.Add(st)
		elapsed += st.Rounds
		ttot.Add(collectAsync(wraps))
		mergeCrashed(dead, eng.Crashed())
		for v := 0; v < n; v++ {
			if !dead[v] && nodes[v].pendingReplies > 0 {
				nodes[v].reopen()
			}
		}
		if !faulty {
			break
		}
	}

	as := coloring.NewAssignment(g)
	for id, nd := range nodes {
		for _, a := range nd.ownColored {
			if !arcAlive(a, dead) {
				continue
			}
			c := nd.know.know[a]
			if c == coloring.None {
				return nil, sim.Stats{}, transport.Totals{}, nil, fmt.Errorf("core: DFS node %d lost color of %v", id, a)
			}
			if prev, ok := as[a]; ok && prev != c {
				return nil, sim.Stats{}, transport.Totals{}, nil, fmt.Errorf("core: DFS arc %v colored twice (%d, %d)", a, prev, c)
			}
			as[a] = c
		}
	}
	return as, total, ttot, deadList(dead), nil
}

// nextRoot picks a recovery epoch's root: the highest-degree unvisited
// survivor (ties to the lowest id), or -1 when every survivor is visited.
func nextRoot(g *graph.Graph, nodes []*dfsNode, dead []bool) int {
	root := -1
	for v := 0; v < g.N(); v++ {
		if dead[v] || nodes[v].selfVisited {
			continue
		}
		if root < 0 || g.Degree(v) > g.Degree(root) {
			root = v
		}
	}
	return root
}

// collectAsync sums the transport accounting of one epoch's wrappers.
func collectAsync(wraps []*transport.Async) transport.Totals {
	per := make([]transport.Counters, len(wraps))
	for i, w := range wraps {
		per[i] = w.Counters()
	}
	return transport.Collect(per)
}

// electRoot returns the designated starting node: maximum degree, ties to
// the lowest ID.
func electRoot(g *graph.Graph) int {
	root := 0
	for v := 1; v < g.N(); v++ {
		if g.Degree(v) > g.Degree(root) {
			root = v
		}
	}
	return root
}
