package core

import (
	"fmt"
	"sort"

	"fdlsp/internal/coloring"
	"fdlsp/internal/graph"
	"fdlsp/internal/obs"
	"fdlsp/internal/sim"
	"fdlsp/internal/transport"
)

// ChildPolicy selects which unvisited neighbor receives the DFS token next.
type ChildPolicy int

const (
	// MaxDegree passes to the unvisited neighbor with the largest degree
	// (ties to the lowest ID) — the paper's policy.
	MaxDegree ChildPolicy = iota
	// MinID passes to the lowest-ID unvisited neighbor (ablation).
	MinID
	// RandomChild passes to a uniformly random unvisited neighbor (ablation).
	RandomChild
)

func (p ChildPolicy) String() string {
	switch p {
	case MinID:
		return "min-id"
	case RandomChild:
		return "random"
	default:
		return "max-degree"
	}
}

// DFSOptions configures the asynchronous DFS algorithm.
type DFSOptions struct {
	Policy ChildPolicy
	Seed   int64
	// Delay optionally injects adversarial message delays (failure
	// injection); the schedule must stay valid regardless.
	Delay sim.DelayFn
	// Trace optionally observes engine events; must be concurrency-safe.
	Trace sim.Tracer
	// Fault optionally subjects the run to message loss, duplication,
	// reordering, and node crashes. When set, the protocol runs over the
	// reliable transport and the driver recovers from token loss with
	// restart epochs (see dfsConnected). nil keeps the original
	// zero-overhead direct path.
	Fault *sim.FaultPlan
	// Transport tunes the ARQ machinery when Fault is set (zero value =
	// defaults); ignored otherwise.
	Transport transport.Options
	// Metrics optionally receives the run's accounting: the per-component
	// engines publish fdlsp_sim_* families, the driver publishes
	// fdlsp_core_* and fdlsp_transport_* families when the run finishes.
	Metrics *obs.Registry
}

// Message payloads of the DFS protocol. The zero-size signals travel as
// values (boxing a zero-size struct is allocation-free); annMsg, ackMsg, and
// replyMsg carry data and travel as pointers into per-node slabs so the hot
// flood/ack traffic does not allocate per send.
type (
	startMsg  struct{}                   // injected kick-off at the root
	tokenMsg  struct{}                   // the DFS token
	bounceMsg struct{}                   // token refused: receiver already visited
	askMsg    struct{}                   // request for the neighbor's color table
	replyMsg  struct{ Table []arcColor } // color-table response
	annMsg    struct {                   // acknowledged color flood
		// Ann points into the sender's payload slab: one flood goes to
		// every live neighbor under distinct seqs, so the 48-byte announce
		// is stored once per flood, not once per message.
		Ann *ColorAnnounce
		Seq int64 // sender-local id echoed back by ackMsg
	}
	ackMsg struct{ Seq int64 } // annMsg fully processed, incl. everything it triggered
)

// noParent marks a flood batch with no completion action: the rejoin
// handshake's repair floods are acked hop-by-hop like any other batch, but
// their drain neither acks an upstream sender (the rejoiner originated them)
// nor resumes a token (the rejoiner does not hold one).
const noParent = -2

// floodGroup tracks one batch of flood messages awaiting acknowledgements
// (Dijkstra–Scholten-style diffusing-computation termination). A node that
// sends flood traffic — the token holder announcing its fresh colors, or any
// node relaying/re-originating on observe — acks upstream (or resumes the
// token, for the holder's own batch) only once every message in the batch
// has been acked, which in turn requires the receivers' whole cascades to
// have drained. The token therefore never moves until the previous holder's
// announcements are fully processed everywhere they can reach: without this
// barrier, a color colored at distance 3 races the token through a two-hop
// flood chain and the greedy conflict sets (hence the schedule) depend on
// goroutine scheduling.
type floodGroup struct {
	parent    int   // upstream sender to ack, or -1 for the token holder's own batch
	parentSeq int64 // seq to echo upstream
	remaining int
}

// outFlood is one in-flight flood message: its seq, the batch it belongs
// to, and its receiver (for PeerDown cleanup). Flights live in a slice
// ordered by seq — seqs are issued in increasing order and removal keeps
// the order — because the in-flight window is small (a few batches) and a
// map here churns buckets on every send/ack cycle of the protocol's
// hottest path.
type outFlood struct {
	seq  int64
	grp  *floodGroup
	dest int
}

// dfsNode is one processor of Algorithm 2. Its traversal state lives in
// struct fields (not Run locals) because a faulty run re-engages the same
// nodes across several engine runs — the recovery epochs — and knowledge,
// visit marks, and colored arcs must carry over.
type dfsNode struct {
	g       *graph.Graph
	know    *knowledge
	policy  ChildPolicy
	degrees map[int]int // neighbor -> degree (local model knowledge)
	faulty  bool

	ownColored []graph.Arc

	nextSeq int64
	flights []outFlood // in-flight floods awaiting acks, ascending seq

	anns slab[annMsg]        // pooled outgoing floods
	acks slab[ackMsg]        // pooled outgoing acks
	pays slab[ColorAnnounce] // pooled flood payloads, shared across a flood's receivers

	dests []int // sendFlood scratch: live neighbors of the current batch

	visited        map[int]bool
	struck         map[int]bool // visited marks that came from PeerDown, not a real visit
	selfVisited    bool
	parent         int
	awaitingChild  int
	pendingReplies int
	awaitingReply  map[int]bool // neighbors whose replyMsg is outstanding

	resyncMsgs int64 // rejoin-handshake messages originated by this node
}

func newDFSNode(g *graph.Graph, id int, policy ChildPolicy, faulty bool) *dfsNode {
	degs := make(map[int]int, g.Degree(id))
	for _, u := range g.NeighborsView(id) {
		degs[u] = g.Degree(u)
	}
	return &dfsNode{
		g:             g,
		know:          newKnowledge(id, g),
		policy:        policy,
		degrees:       degs,
		faulty:        faulty,
		visited:       make(map[int]bool, g.Degree(id)),
		struck:        make(map[int]bool),
		parent:        -1,
		awaitingChild: -1,
		awaitingReply: make(map[int]bool),
	}
}

// reopen clears the ask state of a node whose token visit stalled (a
// neighbor died holding the outstanding reply, or a reply's transport gave
// up) so a later epoch can re-visit and color it. Colors and knowledge are
// kept — the re-visit only colors what is still uncolored.
func (nd *dfsNode) reopen() {
	nd.selfVisited = false
	nd.parent = -1
	nd.awaitingChild = -1
	nd.pendingReplies = 0
	nd.awaitingReply = make(map[int]bool)
}

// sendFlood ships every announce in outs to all live neighbors as one
// acknowledged batch and returns the number of messages sent. parent == -1
// marks the token holder's own batch (token resumes on drain), noParent a
// rejoin repair batch (drain is a no-op); otherwise the drain acks (parent,
// parentSeq) upstream. Peers the transport has given up on are skipped —
// counting them would leave the batch undrainable.
func (nd *dfsNode) sendFlood(env *transport.AsyncEnv, outs []ColorAnnounce, parent int, parentSeq int64) int {
	dests := nd.dests[:0]
	for _, u := range env.Neighbors {
		if !env.Down(u) {
			dests = append(dests, u)
		}
	}
	nd.dests = dests
	if len(outs) == 0 || len(dests) == 0 {
		return 0
	}
	grp := &floodGroup{parent: parent, parentSeq: parentSeq, remaining: len(outs) * len(dests)}
	for _, f := range outs {
		fp := nd.pays.put(f)
		for _, u := range dests {
			nd.nextSeq++
			nd.flights = append(nd.flights, outFlood{seq: nd.nextSeq, grp: grp, dest: u})
			env.Send(u, nd.anns.put(annMsg{Ann: fp, Seq: nd.nextSeq}))
		}
	}
	return grp.remaining
}

// beginToken opens this node's visit: ask every live neighbor for its color
// table. With no live neighbor there is nothing to learn (or conflict with),
// so the visit completes immediately.
func (nd *dfsNode) beginToken(env *transport.AsyncEnv) {
	nd.pendingReplies = 0
	for _, u := range env.Neighbors {
		if env.Down(u) {
			continue
		}
		nd.pendingReplies++
		nd.awaitingReply[u] = true
		env.Send(u, askMsg{})
	}
	if nd.pendingReplies == 0 {
		nd.completeToken(env)
	}
}

// completeToken runs once all replies are merged: color every still-uncolored
// incident arc with distance-2 knowledge, then announce. Arcs to peers known
// dead are skipped — they are excluded from the schedule anyway. The token
// pass waits for the announce flood to drain (see floodGroup) so the next
// holder's knowledge is independent of goroutine scheduling.
func (nd *dfsNode) completeToken(env *transport.AsyncEnv) {
	arcs := nd.g.IncidentArcsView(env.ID)
	if nd.faulty {
		live := make([]graph.Arc, 0, len(arcs))
		for _, a := range arcs {
			other := a.From
			if other == env.ID {
				other = a.To
			}
			if !env.Down(other) {
				live = append(live, a)
			}
		}
		arcs = live
	}
	newly := coloring.AssignGreedyLocal(nd.g, nd.know.know, arcs)
	nd.ownColored = append(nd.ownColored, newly...)
	if nd.sendFlood(env, nd.know.announceOwn(newly), -1, 0) == 0 {
		nd.passToken(env)
	}
}

// findFlight returns the index of seq in the ascending flights slice, or
// -1 when the seq is not in flight (already drained).
func (nd *dfsNode) findFlight(seq int64) int {
	i := sort.Search(len(nd.flights), func(i int) bool { return nd.flights[i].seq >= seq })
	if i < len(nd.flights) && nd.flights[i].seq == seq {
		return i
	}
	return -1
}

// drainSeq retires one outstanding flood seq (acked, or its receiver was
// given up on) and fires the batch's completion action when it empties.
func (nd *dfsNode) drainSeq(env *transport.AsyncEnv, seq int64) {
	i := nd.findFlight(seq)
	if i < 0 {
		return
	}
	grp := nd.flights[i].grp
	copy(nd.flights[i:], nd.flights[i+1:])
	nd.flights[len(nd.flights)-1] = outFlood{} // release the group reference
	nd.flights = nd.flights[:len(nd.flights)-1]
	grp.remaining--
	if grp.remaining == 0 {
		switch {
		case grp.parent >= 0:
			env.Send(grp.parent, nd.acks.put(ackMsg{Seq: grp.parentSeq}))
		case grp.parent == noParent:
			// Rejoin repair batch: fully delivered, nothing to resume.
		default:
			nd.passToken(env)
		}
	}
}

// peerDown is the node's failure-detector handler. The dead neighbor is
// struck from the unvisited record, every flood seq destined to it drains,
// and an outstanding reply from it stops being waited for. If the peer was
// the awaited child the node deliberately does NOT repick: the transport
// cannot tell whether the token died with the peer or was never delivered,
// and forwarding a replacement while the original might still roam would put
// two tokens in flight. The traversal quiesces instead and the driver's next
// epoch restarts it from a surviving root.
func (nd *dfsNode) peerDown(env *transport.AsyncEnv, peer int) {
	if !nd.visited[peer] {
		// Remember the mark came from the failure detector, not a real
		// visit, so a later PeerUp can rescind it.
		nd.struck[peer] = true
	}
	nd.visited[peer] = true
	// flights is ascending by seq, so collecting in slice order preserves
	// the drain order the protocol's traces pin.
	var seqs []int64
	for _, fl := range nd.flights {
		if fl.dest == peer {
			seqs = append(seqs, fl.seq)
		}
	}
	for _, q := range seqs {
		nd.drainSeq(env, q)
	}
	if nd.awaitingReply[peer] {
		delete(nd.awaitingReply, peer)
		nd.pendingReplies--
		if nd.pendingReplies == 0 {
			nd.completeToken(env)
		}
	}
}

// rejoin runs the protocol-level crash-recovery handshake when this node's
// outage ends (see rejoin.go): pull the neighborhood's colors with resyncReq
// and push this node's own incident colors under a bumped generation as an
// acked repair batch. Traversal state needs no touch-up — token passes,
// replies, and acks in flight across the outage ride the reliable transport
// and resume on their own once the restart notice re-arms the timers.
func (nd *dfsNode) rejoin(env *transport.AsyncEnv, restarts int) {
	for _, u := range env.Neighbors {
		if env.Down(u) {
			continue
		}
		nd.resyncMsgs++
		env.Send(u, resyncReq{})
	}
	nd.resyncMsgs += int64(nd.sendFlood(env, nd.know.reannounce(restarts), noParent, 0))
}

// peerUp handles a rescinded give-up: the peer is reachable after all. A
// visited mark that came only from the failure detector is withdrawn so the
// traversal can still pass the token there (a genuinely visited peer just
// bounces it back). If this node has itself restarted, it re-asks the peer
// for colors — its original resyncReq may have been suppressed while the
// peer was marked down.
func (nd *dfsNode) peerUp(env *transport.AsyncEnv, peer int) {
	if nd.struck[peer] {
		delete(nd.struck, peer)
		delete(nd.visited, peer)
	}
	if nd.know.gen > 0 {
		nd.resyncMsgs++
		env.Send(peer, resyncReq{})
	}
}

func (nd *dfsNode) Run(env *transport.AsyncEnv) {
	for {
		m, ok := env.Recv()
		if !ok {
			return
		}
		switch p := m.Payload.(type) {
		case startMsg:
			nd.selfVisited = true
			nd.beginToken(env)
		case askMsg:
			// The asker holds the token, hence is visited (paper: a neighbor
			// asking about colors is removed from the unvisited record).
			nd.visited[m.From] = true
			env.Send(m.From, &replyMsg{Table: nd.know.snapshotLocal()})
		case *replyMsg:
			nd.know.merge(p.Table)
			if nd.awaitingReply[m.From] {
				delete(nd.awaitingReply, m.From)
				nd.pendingReplies--
				if nd.pendingReplies == 0 {
					nd.completeToken(env)
				}
			}
		case tokenMsg:
			switch {
			case !nd.selfVisited:
				nd.selfVisited = true
				nd.parent = m.From
				nd.visited[m.From] = true
				nd.beginToken(env)
			case m.From == nd.awaitingChild:
				// Child finished its subtree; resume.
				nd.awaitingChild = -1
				nd.passToken(env)
			default:
				// Spurious pass from a node that had not yet heard we were
				// visited (asynchrony): refuse, sender will repick.
				env.Send(m.From, bounceMsg{})
			}
		case bounceMsg:
			if m.From == nd.awaitingChild {
				nd.awaitingChild = -1
				nd.passToken(env)
			}
		case *annMsg:
			// Everything observe triggers (relays, endpoint re-floods) joins
			// one batch; the upstream ack waits for that batch to drain. A
			// flood that triggers nothing here is acked immediately.
			if nd.sendFlood(env, nd.know.observe(*p.Ann), m.From, p.Seq) == 0 {
				env.Send(m.From, nd.acks.put(ackMsg{Seq: p.Seq}))
			}
		case *ackMsg:
			if nd.findFlight(p.Seq) < 0 && !nd.faulty {
				panic(fmt.Sprintf("core: DFS node %d got ack for unknown seq %d", env.ID, p.Seq))
			}
			// Under faults a late ack may race the PeerDown that already
			// drained its seq (the peer answered, then its link died);
			// drainSeq ignores retired seqs.
			nd.drainSeq(env, p.Seq)
		case transport.PeerDown:
			nd.peerDown(env, p.Peer)
		case transport.PeerUp:
			nd.peerUp(env, p.Peer)
		case sim.NodeRestarted:
			nd.rejoin(env, p.Restarts)
		case resyncReq:
			nd.resyncMsgs++
			env.Send(m.From, &resyncReply{Table: nd.know.snapshotLocal()})
		case *resyncReply:
			// Colors of own incident arcs learned from the reply are pushed
			// back out as a repair batch (the arc was colored by a neighbor
			// during this node's outage; 2-hop witnesses behind this node
			// may have missed it).
			nd.resyncMsgs += int64(nd.sendFlood(env, nd.know.mergeIncident(p.Table), noParent, 0))
		default:
			panic(fmt.Sprintf("core: DFS node %d got unexpected payload %T", env.ID, m.Payload))
		}
	}
}

// passToken forwards the token to the next unvisited neighbor per policy,
// returns it to the parent when none remain, or — at the root — declares the
// protocol finished. A send to a peer that died undetected is suppressed or
// given up on by the transport; the traversal then quiesces and the driver
// recovers with a new epoch.
func (nd *dfsNode) passToken(env *transport.AsyncEnv) {
	var cands []int
	for _, u := range env.Neighbors {
		if !nd.visited[u] {
			cands = append(cands, u)
		}
	}
	if len(cands) > 0 {
		next := nd.pickChild(env, cands)
		nd.visited[next] = true
		nd.awaitingChild = next
		env.Send(next, tokenMsg{})
		return
	}
	if nd.parent >= 0 {
		env.Send(nd.parent, tokenMsg{})
		return
	}
	// Root with its reachable subgraph visited: global termination.
	env.FinishAll()
}

func (nd *dfsNode) pickChild(env *transport.AsyncEnv, cands []int) int {
	switch nd.policy {
	case MinID:
		best := cands[0]
		for _, u := range cands[1:] {
			if u < best {
				best = u
			}
		}
		return best
	case RandomChild:
		return cands[env.Rand.Intn(len(cands))]
	default: // MaxDegree, ties to lowest ID
		sort.Ints(cands)
		best := cands[0]
		for _, u := range cands[1:] {
			if nd.degrees[u] > nd.degrees[best] {
				best = u
			}
		}
		return best
	}
}

// DFS runs Algorithm 2 on g. Disconnected inputs are scheduled per
// component (each component elects its own root and runs its own token);
// reported rounds are the maximum across components — they run in parallel —
// and messages are summed. Under a fault plan each component gets the plan
// restricted to its own nodes.
func DFS(g *graph.Graph, opts DFSOptions) (*Result, error) {
	as := coloring.NewAssignment(g)
	var total sim.Stats
	var ttot transport.Totals
	var crashed []int
	var rejoin RejoinStats
	for ci, comp := range g.Components() {
		sub, ids := g.InducedSubgraph(comp)
		subOpts := opts
		subOpts.Fault = remapPlan(opts.Fault, ids, int64(ci))
		subAs, stats, tt, subCrashed, subRejoin, err := dfsConnected(sub, subOpts, opts.Seed+int64(ci)*7_368_787)
		if err != nil {
			return nil, err
		}
		for a, c := range subAs {
			as[graph.Arc{From: ids[a.From], To: ids[a.To]}] = c
		}
		for _, v := range subCrashed {
			crashed = append(crashed, ids[v])
		}
		for _, v := range subRejoin.Returned {
			rejoin.Returned = append(rejoin.Returned, ids[v])
		}
		rejoin.ResyncMsgs += subRejoin.ResyncMsgs
		rejoin.Rebased += subRejoin.Rebased
		rounds := total.Rounds
		if stats.Rounds > rounds {
			rounds = stats.Rounds
		}
		total.Add(stats)
		total.Rounds = rounds
		ttot.Add(transport.Totals{Counters: tt.Counters})
	}
	crashed = sortedUnique(crashed)
	rejoin.Returned = sortedUnique(rejoin.Returned)
	dead := deadMask(g.N(), crashed)
	for _, a := range g.Arcs() {
		if !arcAlive(a, dead) {
			continue
		}
		if as[a] == coloring.None {
			return nil, fmt.Errorf("core: DFS left arc %v uncolored", a)
		}
	}
	res := &Result{
		Algorithm:      "dfs/" + opts.Policy.String(),
		Assignment:     as,
		Slots:          as.NumColors(),
		DistinctColors: as.DistinctColors(),
		Stats:          total,
		Crashed:        crashed,
		Rejoin:         rejoin,
		Transport:      ttot,
	}
	publishResult(opts.Metrics, "dfs", res)
	return res, nil
}

// remapPlan restricts a fault plan to one component, translating global node
// ids to the induced subgraph's local ids (ids maps local -> global). Each
// component's engine gets its own salted fault RNG.
func remapPlan(p *sim.FaultPlan, ids []int, salt int64) *sim.FaultPlan {
	if p == nil {
		return nil
	}
	inv := make(map[int]int, len(ids))
	for local, global := range ids {
		inv[global] = local
	}
	q := &sim.FaultPlan{
		Seed:    p.Seed ^ (salt+1)*0x41C64E6D,
		Loss:    p.Loss,
		Dup:     p.Dup,
		Reorder: p.Reorder,
	}
	if lossOf := p.LossOf; lossOf != nil {
		q.LossOf = func(from, to int) float64 { return lossOf(ids[from], ids[to]) }
	}
	for _, c := range p.Crashes {
		if local, ok := inv[c.Node]; ok {
			q.Crashes = append(q.Crashes, sim.Crash{Node: local, At: c.At, RestartAt: c.RestartAt})
		}
	}
	for _, v := range p.Rejoins {
		if local, ok := inv[v]; ok {
			q.Rejoins = append(q.Rejoins, local)
		}
	}
	return q
}

// dfsConnected schedules one connected graph. Fault-free runs are a single
// engine run, exactly the original algorithm. Under a fault plan the driver
// runs recovery epochs: whenever a crash strands the token (dead holder,
// dead awaited child, undeliverable pass), the run quiesces — the transport
// gives up, PeerDown handlers fire, and no node has anything left to say —
// and the driver starts a fresh engine over the same nodes, with dead peers
// pre-marked both down (transport) and visited (traversal), rooted at the
// highest-degree unvisited survivor. Visits stranded mid-ask — or cut short
// by an outage, leaving live incident arcs uncolored — are reopened so a
// later epoch re-visits and colors only what is missing. Bounded outages
// resolve inside the epoch that covers the restart time (the restart notice
// is itself a scheduled event, so the engine cannot quiesce before it), and
// the returned node rejoins in-protocol; only genuinely stuck runs — no new
// visit, color, crash, or rejoin for several consecutive epochs — abort.
func dfsConnected(g *graph.Graph, opts DFSOptions, seed int64) (coloring.Assignment, sim.Stats, transport.Totals, []int, RejoinStats, error) {
	if g.N() == 0 {
		return coloring.Assignment{}, sim.Stats{}, transport.Totals{}, nil, RejoinStats{}, nil
	}
	faulty := opts.Fault != nil
	var topt *transport.Options
	if faulty {
		t := opts.Transport
		topt = &t
	}

	n := g.N()
	nodes := make([]*dfsNode, n)
	for id := 0; id < n; id++ {
		nodes[id] = newDFSNode(g, id, opts.Policy, faulty)
	}

	var total sim.Stats
	var ttot transport.Totals
	var rejoin RejoinStats
	dead := make([]bool, n)
	returnedMask := make([]bool, n)
	everVisited := make([]bool, n)
	elapsed := int64(0)

	// n live roots plus crash retries bound fault-free epochs; every bounded
	// outage can burn two more (one rooted at a node still inside its
	// window, one to re-visit it after the rejoin).
	maxEpochs := 2*n + 2
	if faulty {
		maxEpochs = 2*n + 4*len(opts.Fault.Crashes) + 8
	}
	noProgress := 0

	for epoch := 0; ; epoch++ {
		root := electRoot(g)
		if epoch > 0 {
			root = nextRoot(g, nodes, dead)
			if root < 0 {
				break
			}
		}
		if epoch > maxEpochs {
			return nil, sim.Stats{}, transport.Totals{}, nil, RejoinStats{}, fmt.Errorf("core: DFS exceeded %d recovery epochs", maxEpochs)
		}
		if epoch > 0 {
			rejoin.Rebased++
		}

		deadIds := deadList(dead)
		for v := 0; v < n; v++ {
			if dead[v] {
				continue
			}
			for _, u := range deadIds {
				nodes[v].visited[u] = true
			}
		}
		coloredBefore := countColored(nodes)
		wraps := make([]*transport.Async, n)
		eng := sim.NewAsyncEngine(g, seed+int64(epoch)*15_485_863, func(id int) sim.AsyncNode {
			wraps[id] = transport.NewAsync(nodes[id], topt)
			wraps[id].MarkDown(deadIds...)
			return wraps[id]
		})
		eng.Delay = opts.Delay
		eng.Trace = opts.Trace
		eng.Metrics = opts.Metrics
		if faulty {
			eng.Fault = opts.Fault.Shifted(elapsed, int64(epoch))
		}
		eng.Inject(root, startMsg{})
		if err := eng.Run(); err != nil {
			return nil, sim.Stats{}, transport.Totals{}, nil, RejoinStats{}, err
		}
		st := eng.Stats()
		total.Add(st)
		elapsed += st.Rounds
		ttot.Add(collectAsync(wraps))
		progress := mergeCrashed(dead, eng.Crashed())
		for _, v := range eng.Returned() {
			if !returnedMask[v] {
				returnedMask[v] = true
				progress++
			}
		}
		for v := 0; v < n; v++ {
			if nodes[v].selfVisited && !everVisited[v] {
				everVisited[v] = true
				progress++
			}
		}
		progress += countColored(nodes) - coloredBefore
		if !faulty {
			break
		}
		if progress == 0 {
			// Tolerate a couple of barren epochs (a freak give-up can void a
			// visit without any counter moving) before declaring livelock.
			if noProgress++; noProgress > 2 {
				return nil, sim.Stats{}, transport.Totals{}, nil, RejoinStats{},
					fmt.Errorf("core: DFS made no progress for %d consecutive recovery epochs", noProgress)
			}
		} else {
			noProgress = 0
		}
		// Cross-epoch cleanup: in-flight batches died with the epoch's
		// transport, and a visit left mid-ask, mid-flood, or awaiting a
		// child token must be redone — as must one whose coloring an outage
		// cut short (live incident arcs still uncolored).
		for v := 0; v < n; v++ {
			if dead[v] {
				continue
			}
			nd := nodes[v]
			stale := nd.pendingReplies > 0 || nd.awaitingChild >= 0 || len(nd.flights) > 0
			clear(nd.flights) // release group references
			nd.flights = nd.flights[:0]
			if stale || needsRecolor(g, nd, dead) {
				nd.reopen()
			}
		}
	}

	// Size by what the survivors actually colored, not the full graph:
	// crash runs discard dead nodes' arcs.
	count := 0
	for _, nd := range nodes {
		count += len(nd.ownColored)
	}
	as := coloring.NewAssignmentSized(count)
	for id, nd := range nodes {
		rejoin.ResyncMsgs += nd.resyncMsgs
		for _, a := range nd.ownColored {
			if !arcAlive(a, dead) {
				continue
			}
			c := nd.know.know[a]
			if c == coloring.None {
				return nil, sim.Stats{}, transport.Totals{}, nil, RejoinStats{}, fmt.Errorf("core: DFS node %d lost color of %v", id, a)
			}
			if prev, ok := as[a]; ok && prev != c {
				return nil, sim.Stats{}, transport.Totals{}, nil, RejoinStats{}, fmt.Errorf("core: DFS arc %v colored twice (%d, %d)", a, prev, c)
			}
			as[a] = c
		}
	}
	for v := 0; v < n; v++ {
		if returnedMask[v] && !dead[v] {
			rejoin.Returned = append(rejoin.Returned, v)
		}
	}
	return as, total, ttot, deadList(dead), rejoin, nil
}

// countColored sums the arcs every node has colored itself so far (the
// driver's cross-epoch progress metric).
func countColored(nodes []*dfsNode) int {
	total := 0
	for _, nd := range nodes {
		total += len(nd.ownColored)
	}
	return total
}

// needsRecolor reports whether v is responsible for a live incident arc it
// has no color for: its visit was cut short (an outage of its own, or a
// false give-up that skipped arcs), so a later epoch must re-visit it.
func needsRecolor(g *graph.Graph, nd *dfsNode, dead []bool) bool {
	for _, a := range g.IncidentArcsView(nd.know.id) {
		if arcAlive(a, dead) && nd.know.know[a] == coloring.None {
			return true
		}
	}
	return false
}

// nextRoot picks a recovery epoch's root: the highest-degree unvisited
// survivor (ties to the lowest id), or -1 when every survivor is visited.
func nextRoot(g *graph.Graph, nodes []*dfsNode, dead []bool) int {
	root := -1
	for v := 0; v < g.N(); v++ {
		if dead[v] || nodes[v].selfVisited {
			continue
		}
		if root < 0 || g.Degree(v) > g.Degree(root) {
			root = v
		}
	}
	return root
}

// collectAsync sums the transport accounting of one epoch's wrappers.
func collectAsync(wraps []*transport.Async) transport.Totals {
	per := make([]transport.Counters, len(wraps))
	for i, w := range wraps {
		per[i] = w.Counters()
	}
	return transport.Collect(per)
}

// electRoot returns the designated starting node: maximum degree, ties to
// the lowest ID.
func electRoot(g *graph.Graph) int {
	root := 0
	for v := 1; v < g.N(); v++ {
		if g.Degree(v) > g.Degree(root) {
			root = v
		}
	}
	return root
}
